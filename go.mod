module hammingmesh

go 1.24
