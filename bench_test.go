// Package hammingmesh_test is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (see DESIGN.md §2 for the
// index and EXPERIMENTS.md for paper-vs-measured results). Each benchmark
// prints the corresponding rows/series once; run with
//
//	go test -bench=. -benchmem
//
// Heavy experiments use the small-cluster (≈1k accelerator) configurations
// with sampled iterations; the cmd/ tools expose the full parameter space.
package hammingmesh_test

import (
	"flag"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/analysis"
	"hammingmesh/internal/collective"
	"hammingmesh/internal/core"
	"hammingmesh/internal/cost"
	"hammingmesh/internal/dnn"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/runner"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
	"hammingmesh/internal/workload"
)

var printOnce sync.Map

func once(key string, f func()) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		f()
	}
}

// BenchmarkTable2Cost regenerates the cost column of Table II for both
// cluster sizes from the Appendix C inventories.
func BenchmarkTable2Cost(b *testing.B) {
	prices := cost.PaperPrices()
	for i := 0; i < b.N; i++ {
		small, large := cost.SmallCluster(), cost.LargeCluster()
		once("t2cost", func() {
			fmt.Println("\nTable II — cost [M$] (small / large; paper in parens)")
			for j, inv := range small {
				pw := cost.TableIICostMUSD[inv.Name]
				fmt.Printf("  %-22s %7.2f (%5.1f)   %7.1f (%5.1f)\n",
					inv.Name, inv.CostMUSD(prices), pw[0], large[j].CostMUSD(prices), pw[1])
			}
		})
	}
}

// BenchmarkTable2Diameter regenerates the diameter column: the paper's
// closed forms plus BFS ground truth on the built small-cluster graphs.
func BenchmarkTable2Diameter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := []struct {
			name        string
			closedSmall int
			closedLarge int
			graph       func() int
		}{
			{"nonblocking fat tree", analysis.FatTreeDiameter(1024, topo.NonblockingTree()),
				analysis.FatTreeDiameter(16384, topo.NonblockingTree()),
				func() int {
					return topo.EndpointDiameter(topo.NewFatTree(1024, topo.NonblockingTree(), topo.DefaultLinkParams()), 32)
				}},
			{"dragonfly", 4, analysis.DragonflyDiameter(32, 17, 16, 30),
				func() int {
					return topo.EndpointDiameter(topo.NewDragonfly(topo.SmallDragonfly(topo.DefaultLinkParams())), 32)
				}},
			{"2D hyperx", analysis.HxMeshDiameter(1, 1, 32, 32), analysis.HxMeshDiameter(1, 1, 128, 128),
				func() int {
					return topo.EndpointDiameter(topo.NewHyperX2D(32, 32, topo.DefaultLinkParams()).Network, 16)
				}},
			{"hx2mesh", analysis.HxMeshDiameter(2, 2, 16, 16), analysis.HxMeshDiameter(2, 2, 64, 64),
				func() int {
					return topo.EndpointDiameter(topo.NewHxMesh(2, 2, 16, 16, topo.DefaultLinkParams()).Network, 16)
				}},
			{"hx4mesh", analysis.HxMeshDiameter(4, 4, 8, 8), analysis.HxMeshDiameter(4, 4, 32, 32),
				func() int {
					return topo.EndpointDiameter(topo.NewHxMesh(4, 4, 8, 8, topo.DefaultLinkParams()).Network, 16)
				}},
			{"2D torus", analysis.TorusDiameter(32, 32), analysis.TorusDiameter(128, 128),
				func() int { return topo.EndpointDiameter(topo.NewTorus2D(32, 32, 2, 2, topo.DefaultLinkParams()), 8) }},
		}
		out := make([][3]int, len(rows))
		for j, r := range rows {
			out[j] = [3]int{r.closedSmall, r.closedLarge, r.graph()}
		}
		once("t2diam", func() {
			fmt.Println("\nTable II — diameter (closed form small/large, BFS on built small graph)")
			for j, r := range rows {
				fmt.Printf("  %-22s %3d / %3d   graph=%d\n", r.name, out[j][0], out[j][1], out[j][2])
			}
		})
	}
}

// BenchmarkTable2GlobalBW regenerates the global (alltoall) bandwidth
// column with the flow-level solver on the small clusters.
func BenchmarkTable2GlobalBW(b *testing.B) {
	paper := map[string]float64{
		"fattree": 99.9, "fattree50": 51.2, "fattree75": 25.7,
		"dragonfly": 62.9, "hyperx": 91.6, "hx2mesh": 25.4, "hx4mesh": 11.3, "torus": 2.0,
	}
	for _, name := range core.TopologyNames() {
		b.Run(name, func(b *testing.B) {
			// Built once outside the timed loop: iterations measure the
			// sweeps, and throwaway networks are not pinned per iteration.
			c, err := core.NewByName(name, core.Small)
			if err != nil {
				b.Fatal(err)
			}
			// Packet level uses 16 concurrent shifts (the unsynchronized
			// measurement). HyperX uses the switch-grid construction the
			// paper simulates (topo.NewHyperXDirect); Dragonfly uses UGAL
			// as in the paper's SST runs.
			comp := c.Comp
			if name == "hyperx" {
				comp = simcore.Compile(topo.NewHyperXDirect(32, 32, 4, topo.DefaultLinkParams()))
			}
			inj := 4 * 50.0
			if name == "fattree" || name == "fattree50" || name == "fattree75" || name == "dragonfly" {
				inj = 50.0
			}
			cfg := netsim.DefaultConfig()
			if name == "dragonfly" {
				cfg.UGAL = netsim.UGALConfig{Enable: true, Candidates: 2}
			}
			tab := c.Table
			if comp != c.Comp {
				tab = routing.NewTable(comp)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Flow-level serialized shifts (lower bound) ...
				shareFlow, err := c.AlltoallShare(2, 9)
				if err != nil {
					b.Fatal(err)
				}
				sharePkt, err := netsim.AlltoallShareConcurrent(comp, tab, cfg, 32<<10, 16, inj, 7)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*sharePkt, "%inject")
				once("t2glob-"+name, func() {
					fmt.Printf("  Table II global BW %-10s flow %5.1f%%  packet %5.1f%%  paper %5.1f%%\n",
						name, 100*shareFlow, 100*sharePkt, paper[name])
				})
			}
		})
	}
}

// BenchmarkTable2AllreduceBW regenerates the allreduce bandwidth column by
// packet-simulating steady ring traffic on the two Hamiltonian cycles.
func BenchmarkTable2AllreduceBW(b *testing.B) {
	paper := map[string]float64{
		"fattree": 98.9, "hx2mesh": 98.3, "hx4mesh": 98.4, "torus": 98.1,
	}
	for _, name := range []string{"fattree", "hx2mesh", "hx4mesh", "torus"} {
		b.Run(name, func(b *testing.B) {
			c, err := core.NewByName(name, core.Small)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				share, err := c.AllreduceShare(512 << 10)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*share, "%peak")
				once("t2ar-"+name, func() {
					fmt.Printf("  Table II allreduce %-10s measured %5.1f%%  paper %5.1f%%\n",
						name, 100*share, paper[name])
				})
			}
		})
	}
}

// BenchmarkFig7JobSizeCDF regenerates the job-size board CDF.
func BenchmarkFig7JobSizeCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := workload.AlibabaLike()
		cdf := d.BoardCDF()
		once("fig7", func() {
			fmt.Println("\nFig. 7 — proportion of boards allocated to jobs ≤ size (2x2 boards)")
			for j, s := range d.Sizes {
				fmt.Printf("  %7.1f boards (%4d accels): %5.1f%%\n", float64(s)/4, s, 100*cdf[j])
			}
			fmt.Printf("  below 100 boards: %.0f%% (paper: 39%%)\n", 100*d.BoardShareBelow(400))
		})
	}
}

// BenchmarkFig8Utilization regenerates the system-utilization study on the
// small 16x16 Hx2Mesh across all heuristic stacks (the paper also varies
// the cluster; cmd/hxalloc exposes that).
func BenchmarkFig8Utilization(b *testing.B) {
	const mixes = 15
	for i := 0; i < b.N; i++ {
		d := workload.AlibabaLike()
		results := map[string]workload.Stats{}
		for _, h := range workload.Fig8Stacks() {
			s := workload.NewSampler(d, 11)
			rng := rand.New(rand.NewSource(13))
			utils := make([]float64, 0, mixes)
			for m := 0; m < mixes; m++ {
				utils = append(utils, workload.RunMix(16, 16, s.Mix(256, 4), h, 0, rng).Utilization)
			}
			results[h.Name] = workload.Summarize(utils)
		}
		once("fig8", func() {
			fmt.Println("\nFig. 8 — system utilization, small 16x16 Hx2Mesh")
			for _, h := range workload.Fig8Stacks() {
				st := results[h.Name]
				fmt.Printf("  %-44s mean %5.1f%%  median %5.1f%%\n", h.Name, 100*st.Mean, 100*st.Median)
			}
		})
	}
}

// BenchmarkFig9UpperLayerTraffic regenerates the upper-level fat-tree
// traffic fractions for alltoall and allreduce traffic.
func BenchmarkFig9UpperLayerTraffic(b *testing.B) {
	const mixes = 6
	for i := 0; i < b.N; i++ {
		d := workload.AlibabaLike()
		type row struct {
			name    string
			a2a, ar float64
		}
		var rows []row
		for _, cl := range []struct {
			name string
			x, y int
			apb  int
		}{{"large 64x64 Hx2Mesh", 64, 64, 4}, {"large 32x32 Hx4Mesh", 32, 32, 16}} {
			for _, h := range []workload.HeuristicStack{
				{Name: "greedy"},
				{Name: "greedy+transpose+aspect+sort+locality", Transpose: true, Aspect: true, Sort: true, Locality: true},
			} {
				s := workload.NewSampler(d, 21)
				rng := rand.New(rand.NewSource(23))
				a2a, ar := 0.0, 0.0
				for m := 0; m < mixes; m++ {
					r := workload.RunMix(cl.x, cl.y, s.Mix(cl.x*cl.y, cl.apb), h, 0, rng)
					a2a += r.UpperA2A / mixes
					ar += r.UpperAllred / mixes
				}
				rows = append(rows, row{cl.name + " / " + h.Name, a2a, ar})
			}
		}
		once("fig9", func() {
			fmt.Println("\nFig. 9 — upper-layer fat-tree traffic (alltoall / allreduce)")
			for _, r := range rows {
				fmt.Printf("  %-64s %5.1f%% / %5.1f%%\n", r.name, 100*r.a2a, 100*r.ar)
			}
			fmt.Println("  (paper: alltoall < 50%, allreduce < 15%, locality < 25% on Hx4Mesh)")
		})
	}
}

// BenchmarkFig10Failures regenerates utilization under random board
// failures on the small clusters.
func BenchmarkFig10Failures(b *testing.B) {
	const mixes = 8
	for i := 0; i < b.N; i++ {
		d := workload.AlibabaLike()
		type point struct {
			cluster  string
			failures int
			sorted   bool
			util     float64
		}
		var pts []point
		for _, cl := range []struct {
			name string
			x, y int
			apb  int
		}{{"small 16x16 Hx2Mesh", 16, 16, 4}, {"small 8x8 Hx4Mesh", 8, 8, 16}} {
			for _, failures := range []int{0, 10, 20, 40} {
				if failures >= cl.x*cl.y {
					continue
				}
				for _, sorted := range []bool{false, true} {
					h := workload.HeuristicStack{Name: "stack", Transpose: true, Aspect: true, Sort: sorted}
					s := workload.NewSampler(d, 31)
					rng := rand.New(rand.NewSource(37))
					u := 0.0
					for m := 0; m < mixes; m++ {
						u += workload.RunMix(cl.x, cl.y, s.Mix(cl.x*cl.y, cl.apb), h, failures, rng).Utilization / mixes
					}
					pts = append(pts, point{cl.name, failures, sorted, u})
				}
			}
		}
		once("fig10", func() {
			fmt.Println("\nFig. 10 — utilization of working boards vs failed boards")
			for _, p := range pts {
				mode := "unsorted"
				if p.sorted {
					mode = "sorted"
				}
				fmt.Printf("  %-22s %3d failures %-8s %5.1f%%\n", p.cluster, p.failures, mode, 100*p.util)
			}
		})
	}
}

// BenchmarkFig11Alltoall regenerates the alltoall bandwidth vs message
// size curves (small topologies) from the schedule model with simulated
// sustained shares.
func BenchmarkFig11Alltoall(b *testing.B) {
	shares := map[string]float64{
		"fattree": 0.999, "fattree50": 0.512, "fattree75": 0.257,
		"dragonfly": 0.629, "hyperx": 0.916, "hx2mesh": 0.254, "hx4mesh": 0.113, "torus": 0.02,
	}
	sizes := []float64{1 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20}
	for i := 0; i < b.N; i++ {
		pr := collective.DefaultParams()
		out := map[string][]float64{}
		for name, share := range shares {
			for _, s := range sizes {
				out[name] = append(out[name], collective.AlltoallBandwidth(1024, s, share, pr))
			}
		}
		once("fig11", func() {
			fmt.Println("\nFig. 11 — alltoall bandwidth [GB/s per endpoint] vs message size, small topologies")
			fmt.Printf("  %-10s", "topology")
			for _, s := range sizes {
				fmt.Printf(" %8.0fKiB", s/1024)
			}
			fmt.Println()
			names := make([]string, 0, len(out))
			for n := range out {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("  %-10s", n)
				for _, v := range out[n] {
					fmt.Printf(" %11.1f", v)
				}
				fmt.Println()
			}
		})
	}
}

// BenchmarkFig12Permutation regenerates the per-endpoint bandwidth
// distribution under random permutation traffic (packet-level, small
// Hx2Mesh and fat tree).
func BenchmarkFig12Permutation(b *testing.B) {
	for _, name := range []string{"fattree", "hx2mesh", "hx4mesh"} {
		b.Run(name, func(b *testing.B) {
			c, err := core.NewByName(name, core.Small)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bws, err := c.PermutationGBps(64<<10, 5)
				if err != nil {
					b.Fatal(err)
				}
				sort.Float64s(bws)
				mean := 0.0
				for _, v := range bws {
					mean += v
				}
				mean /= float64(len(bws))
				b.ReportMetric(mean, "GB/s")
				once("fig12-"+name, func() {
					fmt.Printf("  Fig. 12 permutation %-10s min %5.1f  p50 %5.1f  max %5.1f  mean %5.1f GB/s\n",
						name, bws[0], bws[len(bws)/2], bws[len(bws)-1], mean)
				})
			}
		})
	}
}

// BenchmarkFig13Allreduce regenerates the large-cluster allreduce
// bandwidth curves: two bidirectional Hamiltonian rings vs the 2D-torus
// algorithm.
func BenchmarkFig13Allreduce(b *testing.B) {
	benchAllreduceCurves(b, "fig13", "Fig. 13 — global allreduce, large cluster (16,384 accelerators)", 16384)
}

// BenchmarkFig17AllreduceSmall is the small-cluster variant (Appendix G).
func BenchmarkFig17AllreduceSmall(b *testing.B) {
	benchAllreduceCurves(b, "fig17", "Fig. 17 — global allreduce, small cluster (1,024 accelerators)", 1024)
}

func benchAllreduceCurves(b *testing.B, key, title string, p int) {
	sizes := []float64{1 << 20, 16 << 20, 256 << 20, 1 << 30, 4 << 30, 16 << 30}
	for i := 0; i < b.N; i++ {
		pr := collective.DefaultParams()
		rings := make([]float64, len(sizes))
		torus := make([]float64, len(sizes))
		for j, s := range sizes {
			rings[j] = collective.AllreduceBandwidth(s, collective.TwoRingsAllreduceTime(p, s, pr))
			torus[j] = collective.AllreduceBandwidth(s, collective.Torus2DAllreduceTime(p, s, pr))
		}
		once(key, func() {
			fmt.Printf("\n%s [GB/s]\n  %-8s", title, "size")
			for _, s := range sizes {
				fmt.Printf(" %9.0fKiB", s/1024)
			}
			fmt.Printf("\n  %-8s", "rings")
			for _, v := range rings {
				fmt.Printf(" %12.1f", v)
			}
			fmt.Printf("\n  %-8s", "torus")
			for _, v := range torus {
				fmt.Printf(" %12.1f", v)
			}
			fmt.Println()
		})
	}
}

// BenchmarkFig6Tapering measures ring-allreduce and alltoall bandwidth on
// an HxMesh whose per-dimension trees are tapered (§III-F): ring traffic
// needs only two ports between neighboring switches, so allreduce holds
// while alltoall drops with the taper.
func BenchmarkFig6Tapering(b *testing.B) {
	for _, taper := range []float64{0, 0.5, 0.75} {
		b.Run(fmt.Sprintf("taper%.0f%%", 100*taper), func(b *testing.B) {
			lp := topo.DefaultLinkParams()
			h := topo.NewHxMeshConfig(topo.HxMeshConfig{
				A: 2, B: 2, X: 40, Y: 4, Taper: taper, LP: lp, // 2x=80 forces trees in x
			})
			r1, r2, err := collective.TwoRingsOnHxMesh(h)
			if err != nil {
				b.Fatal(err)
			}
			comp := simcore.Compile(h.Network)
			tab := routing.NewTable(comp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				share, err := collective.MeasureAllreduceShare(comp, tab,
					[][]topo.NodeID{r1, r2}, 256<<10, netsim.DefaultConfig(), 200)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*share, "%peak")
				once(fmt.Sprintf("fig6-%.2f", taper), func() {
					fmt.Printf("  Fig. 6/§III-F taper %.0f%%: ring allreduce %5.1f%% of peak (rings survive tapering)\n",
						100*taper, 100*share)
				})
			}
		})
	}
}

// BenchmarkFig15DNNCostSavings regenerates the Fig. 15 savings matrix.
func BenchmarkFig15DNNCostSavings(b *testing.B) {
	costs := map[string]float64{
		"fattree": 25.3, "fattree50": 17.6, "fattree75": 13.2, "dragonfly": 27.9,
		"hyperx": 10.8, "hx2mesh": 5.4, "hx4mesh": 2.7, "torus": 2.5,
	}
	for i := 0; i < b.N; i++ {
		perfs := dnn.StandardPerf()
		type cell struct {
			model, vs string
			val       float64
		}
		var table []cell
		for _, hx := range []string{"hx2mesh", "hx4mesh"} {
			hxPerf, _ := dnn.PerfByName(hx)
			for _, m := range dnn.Models() {
				for _, p := range perfs {
					if p.Name == hx || p.Name == "dragonfly" {
						continue
					}
					table = append(table, cell{m.Name, hx + " vs " + p.Name,
						dnn.CostSaving(m, costs[hx], costs[p.Name], hxPerf, p)})
				}
			}
		}
		once("fig15", func() {
			fmt.Println("\nFig. 15 — relative cost savings (>1 favors the HxMesh)")
			for _, c := range table {
				fmt.Printf("  %-12s %-24s %5.1fx\n", c.model, c.vs, c.val)
			}
		})
	}
}

// BenchmarkAblationAdaptive compares adaptive (least-queued), random and
// deterministic output selection under permutation traffic.
func BenchmarkAblationAdaptive(b *testing.B) {
	for _, choice := range []struct {
		name string
		c    netsim.Choice
	}{{"least-queued", netsim.LeastQueued}, {"random", netsim.RandomCandidate}, {"deterministic", netsim.FirstCandidate}} {
		b.Run(choice.name, func(b *testing.B) {
			h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
			rng := rand.New(rand.NewSource(3))
			flows := netsim.PermutationFlows(h.Endpoints, 256<<10, rng)
			for i := 0; i < b.N; i++ {
				cfg := netsim.DefaultConfig()
				cfg.Choice = choice.c
				res, err := netsim.NewNet(h.Network, nil, cfg).Run(flows)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.AggregateGBps(), "GB/s")
				once("abl-adaptive-"+choice.name, func() {
					fmt.Printf("  ablation routing %-14s aggregate %6.1f GB/s\n", choice.name, res.AggregateGBps())
				})
			}
		})
	}
}

// BenchmarkAblationFlowControl compares ideal buffers against credit-based
// flow control with small buffers.
func BenchmarkAblationFlowControl(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    netsim.Mode
	}{{"ideal", netsim.IdealBuffers}, {"credit", netsim.CreditFC}} {
		b.Run(mode.name, func(b *testing.B) {
			h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
			rng := rand.New(rand.NewSource(5))
			flows := netsim.PermutationFlows(h.Endpoints, 256<<10, rng)
			for i := 0; i < b.N; i++ {
				cfg := netsim.DefaultConfig()
				cfg.Mode = mode.m
				cfg.LP.BufferB = 128 << 10
				res, err := netsim.NewNet(h.Network, nil, cfg).Run(flows)
				if err != nil {
					b.Fatal(err)
				}
				if res.Deadlocked {
					b.Fatal("deadlock")
				}
				b.ReportMetric(res.AggregateGBps(), "GB/s")
				once("abl-fc-"+mode.name, func() {
					fmt.Printf("  ablation flow control %-7s aggregate %6.1f GB/s\n", mode.name, res.AggregateGBps())
				})
			}
		})
	}
}

// BenchmarkAblationAllreduceAlgo compares the four allreduce schedules at
// a representative size.
func BenchmarkAblationAllreduceAlgo(b *testing.B) {
	pr := collective.DefaultParams()
	for i := 0; i < b.N; i++ {
		type row struct {
			algo collective.AllreduceAlgorithm
			t    float64
		}
		var rows []row
		for _, a := range []collective.AllreduceAlgorithm{collective.AlgoRing, collective.AlgoBidirRing, collective.AlgoTwoRings, collective.AlgoTorus2D, collective.AlgoTree} {
			rows = append(rows, row{a, collective.AllreduceTime(a, 1024, 64<<20, pr)})
		}
		once("abl-ar", func() {
			fmt.Println("  ablation allreduce algorithms, p=1024, S=64 MiB:")
			for _, r := range rows {
				fmt.Printf("    %-10s %8.1f us\n", r.algo, r.t/1000)
			}
		})
	}
}

// BenchmarkHamiltonianRings measures the disjoint-ring construction.
func BenchmarkHamiltonianRings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r1, r2, err := collective.DisjointHamiltonianRings(64, 64)
		if err != nil {
			b.Fatal(err)
		}
		if len(r1) != 4096 || len(r2) != 4096 {
			b.Fatal("bad rings")
		}
	}
}

// BenchmarkAllocator measures the greedy allocator on a 1000x1000 grid
// (§IV-A reports sub-second allocation at that scale).
func BenchmarkAllocator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := alloc.NewGrid(1000, 1000)
		for j := int32(0); j < 100; j++ {
			if _, ok := g.Allocate(j, 10, 10, alloc.Options{Transpose: true}); !ok {
				b.Fatal("allocation failed")
			}
		}
	}
}

// BenchmarkPacketSim measures raw simulator throughput (events/sec) in the
// steady state of a sweep: one Sim reused across runs via Reset, the way
// the runner's sweep jobs drive it, so -benchmem tracks the engine's
// per-run allocations rather than construction.
func BenchmarkPacketSim(b *testing.B) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	rng := rand.New(rand.NewSource(9))
	flows := netsim.PermutationFlows(h.Endpoints, 512<<10, rng)
	sim := netsim.NewNet(h.Network, nil, netsim.DefaultConfig())
	if _, err := sim.Run(flows); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(flows)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

// BenchmarkTraceOverhead pins the obs contract on the packet engine's hot
// path: with instrumentation off ("off") a steady-state run allocates
// nothing and costs what BenchmarkPacketSim costs; with a registry and
// flight recorder attached ("on") the per-run delta stays within a few
// percent. Compare the two sub-benchmarks' time/op (the CI smoke asserts
// 0 B/op on "off").
func BenchmarkTraceOverhead(b *testing.B) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	rng := rand.New(rand.NewSource(9))
	flows := netsim.PermutationFlows(h.Endpoints, 512<<10, rng)
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := netsim.DefaultConfig()
			if mode == "on" {
				cfg.Metrics = obs.NewRegistry()
				cfg.Trace = obs.NewRecorder(0)
			}
			sim := netsim.NewNet(h.Network, nil, cfg)
			if _, err := sim.Run(flows); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(flows); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPacketSimQueue pits the two event-queue implementations
// against each other on the serial engine (identical results by the
// calendar-vs-heap property test; this measures the speed difference).
func BenchmarkPacketSimQueue(b *testing.B) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	rng := rand.New(rand.NewSource(9))
	flows := netsim.PermutationFlows(h.Endpoints, 512<<10, rng)
	for _, q := range []struct {
		name string
		kind netsim.QueueKind
	}{{"calendar", netsim.QueueCalendar}, {"heap", netsim.QueueHeap}} {
		b.Run(q.name, func(b *testing.B) {
			cfg := netsim.DefaultConfig()
			cfg.Queue = q.kind
			sim := netsim.NewNet(h.Network, nil, cfg)
			if _, err := sim.Run(flows); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(flows)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkPacketSimShards measures the sharded conservative-parallel
// engine on the 16,384-endpoint Hx2Mesh (the paper's headline scale) —
// the configuration the shard counts are meant for. Results are
// bit-identical across the sub-benchmarks; only events/sec moves. In
// -short mode (CI) a 2x2x16x16 mesh keeps the wall time down.
func BenchmarkPacketSimShards(b *testing.B) {
	w := 64
	if testing.Short() {
		w = 16
	}
	h := topo.NewHxMesh(2, 2, w, w, topo.DefaultLinkParams())
	comp := simcore.Of(h.Network)
	table := routing.NewTable(comp)
	flows := netsim.ShiftFlows(h.Endpoints, len(h.Endpoints)/4+1, 32<<10)
	for _, shards := range []int{1, 2, 4, 8} {
		// No dash before the count: bench.sh's JSON normalizer strips a
		// trailing -N (the GOMAXPROCS suffix) from benchmark names.
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			cfg := netsim.DefaultConfig()
			cfg.Shards = shards
			sim := netsim.New(comp, table, cfg)
			if _, err := sim.Run(flows); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(flows)
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			b.ReportMetric(float64(events)/float64(b.N), "events/op")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// benchWorkers returns the worker count for runner-based sweeps. It honors
// go test's standard -parallel flag (go test -bench ... -parallel N), so
// the runner's scaling can be measured directly:
//
//	go test -bench BenchmarkAlltoallSweep -short -parallel 1
//	go test -bench BenchmarkAlltoallSweep -short -parallel 8
func benchWorkers() int {
	if f := flag.Lookup("test.parallel"); f != nil {
		if g, ok := f.Value.(flag.Getter); ok {
			if n, ok := g.Get().(int); ok && n > 0 {
				return n
			}
		}
	}
	return runtime.GOMAXPROCS(0)
}

// BenchmarkAlltoallSweep measures the packet-level alltoall shift sweep
// (the Table II global-bandwidth estimator) submitted through the
// experiment runner. One simulation per sampled shift runs on each worker;
// the result is identical to the serial netsim.AlltoallShare for any
// worker count. With -short the tiny cluster is used as a smoke test.
func BenchmarkAlltoallSweep(b *testing.B) {
	size := core.Small
	shifts := 8
	bytes := int64(32 << 10)
	if testing.Short() {
		size = core.Tiny
		shifts = 4
	}
	pool := runner.NewSeeded(benchWorkers(), 7)
	c, err := pool.Cluster("hx2mesh", size)
	if err != nil {
		b.Fatal(err)
	}
	// Warm the shared routing table so the measurement isolates the sweep.
	if _, err := pool.AlltoallPacketShare(c, netsim.DefaultConfig(), 8<<10, shifts, 7); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share, err := pool.AlltoallPacketShare(c, netsim.DefaultConfig(), bytes, shifts, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*share, "%inject")
		once("a2asweep", func() {
			fmt.Printf("  alltoall sweep hx2mesh/%s: %d shifts on %d workers, share %.1f%%\n",
				size, shifts, pool.Workers(), 100*share)
		})
	}
}

// BenchmarkFlowSolverLarge measures the paper's headline scale end to end:
// a flow-level alltoall shift sweep on the 16,384-accelerator Hx2Mesh —
// the cluster whose Table II numbers cost the paper ~0.6M SST core-hours.
// The shared routing table is warmed in parallel outside the timed loop
// (distance vectors; candidate DAGs stay under the table's budget,
// routing.DefaultCandBudget, so peak memory is ~2 GB instead of the ~7 GB
// of unbounded DAG caching); each iteration
// then fans the per-shift incremental water-filling solves onto the pool.
// Runs in CI under -short to pin the large-cluster trajectory across PRs.
func BenchmarkFlowSolverLarge(b *testing.B) {
	shifts := 4
	if testing.Short() {
		shifts = 2
	}
	pool := runner.NewSeeded(benchWorkers(), 7)
	c, err := pool.Cluster("hx2mesh", core.Large)
	if err != nil {
		b.Fatal(err)
	}
	c.Table.PrecomputeParallel(c.Comp.Endpoints, pool.Workers())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share, err := pool.AlltoallFlowShare(c, c.FlowConfig(9), shifts, 9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*share, "%inject")
		once("flowlarge", func() {
			fmt.Printf("  flow solver hx2mesh/large: 16384 endpoints, %d shifts on %d workers, share %.1f%%\n",
				shifts, pool.Workers(), 100*share)
		})
	}
}

// BenchmarkTable2GlobalBWLarge regenerates the global (alltoall) bandwidth
// column of Table II at the paper's actual design point — the ≈16k
// accelerator clusters — with the flow-level solver, the measurement SST
// needed 0.6M core-hours for. Each topology gets its own pool so the
// multi-GB table caches can be collected between rows; skipped under
// -short (several minutes and a few GB per row when run in full).
func BenchmarkTable2GlobalBWLarge(b *testing.B) {
	if testing.Short() {
		b.Skip("large Table II sweep: run without -short")
	}
	paper := map[string]float64{
		"fattree": 99.9, "fattree50": 51.2, "fattree75": 25.7,
		"dragonfly": 62.9, "hyperx": 91.6, "hx2mesh": 25.4, "hx4mesh": 11.3, "torus": 2.0,
	}
	for _, name := range core.TopologyNames() {
		b.Run(name, func(b *testing.B) {
			pool := runner.NewSeeded(benchWorkers(), 7)
			c, err := pool.Cluster(name, core.Large)
			if err != nil {
				b.Fatal(err)
			}
			c.Table.PrecomputeParallel(c.AliveEndpoints(), pool.Workers())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				share, err := pool.AlltoallFlowShare(c, c.FlowConfig(9), 2, 9)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*share, "%inject")
				once("t2glob-large-"+name, func() {
					fmt.Printf("  Table II global BW (large) %-10s flow %5.1f%%  paper %5.1f%%\n",
						name, 100*share, paper[name])
				})
			}
		})
	}
}

// BenchmarkAlltoallSweepFaulted is the degraded-fabric variant of
// BenchmarkAlltoallSweep: the same shift sweep with 10% of the cables
// failed (connectivity-preserving, seeded), exercising the fault-masked
// routing tables in the hot path. The pair of benchmarks tracks both the
// pristine and the degraded packet-rate trajectory across PRs.
func BenchmarkAlltoallSweepFaulted(b *testing.B) {
	size := core.Small
	shifts := 8
	bytes := int64(32 << 10)
	if testing.Short() {
		size = core.Tiny
		shifts = 4
	}
	pool := runner.NewSeeded(benchWorkers(), 7)
	c, err := pool.Cluster("hx2mesh", size)
	if err != nil {
		b.Fatal(err)
	}
	fc := c.WithFaults(c.SampleLinkFaults(0.10, 7))
	if _, err := pool.AlltoallPacketShare(fc, netsim.DefaultConfig(), 8<<10, shifts, 7); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		share, err := pool.AlltoallPacketShare(fc, netsim.DefaultConfig(), bytes, shifts, 7)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*share, "%inject")
		once("a2asweepfault", func() {
			fmt.Printf("  alltoall sweep hx2mesh/%s with %d failed links: share %.1f%%\n",
				size, fc.Faults.FailedLinks(), 100*share)
		})
	}
}
