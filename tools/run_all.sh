#!/usr/bin/env bash
# run_all.sh — regenerate every paper-facing number from one resumable
# command. Each step writes its table to $outdir/<step>.txt and a .done
# marker on success, so a rerun after a crash, a Ctrl-C or a reboot picks
# up where the last run stopped: finished steps are skipped outright, and
# the long sweeps inside a step resume from their own crash-safe journal
# (-journal / internal/journal), so even a step killed mid-grid replays
# only the missing points.
#
#   Fig. 7    job-size board CDF                       hxalloc -cdf
#   Fig. 8    static allocation heuristics             hxalloc
#   Fig. 11   alltoall global bandwidth per topology   hxsim -pattern alltoall
#   Fig. 12   permutation bandwidth distribution       hxsim -pattern permutation
#   Fig. 13   ring allreduce share                     hxsim -pattern allreduce
#   §III-E    resilience under link failures           hxsim -pattern resilience (journaled)
#   §V sched  scheduler goodput grid                   hxalloc -mode sched (journaled)
#
# Usage:
#   tools/run_all.sh [outdir]           # default paper_numbers/
#
# Environment:
#   SIZE=tiny     cluster size for the hxsim steps (tiny = CI scale;
#                 use small/large for the paper-scale numbers)
#   FORCE=1       ignore .done markers and regenerate everything
set -euo pipefail
cd "$(dirname "$0")/.."

outdir="${1:-paper_numbers}"
size="${SIZE:-tiny}"
mkdir -p "$outdir"

echo "== build"
bindir="$(mktemp -d)"
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/hxalloc" ./cmd/hxalloc
go build -o "$bindir/hxsim" ./cmd/hxsim

# step <name> <cmd...>: run one pipeline step into $outdir/<name>.txt.
# The output is written to a temp file and moved into place only on
# success, so a killed step never leaves a half-written table; the .done
# marker makes a finished step free on the next run.
step() {
  local name="$1"; shift
  if [ "${FORCE:-0}" != "1" ] && [ -e "$outdir/$name.done" ]; then
    echo "== $name (done, skipping)"
    return 0
  fi
  echo "== $name"
  "$@" | tee "$outdir/$name.partial"
  mv "$outdir/$name.partial" "$outdir/$name.txt"
  : > "$outdir/$name.done"
}

step fig7_board_cdf      "$bindir/hxalloc" -cdf
step fig8_alloc_8x8      "$bindir/hxalloc" -grid 8x8 -mixes 25

for topo in hx2mesh fattree dragonfly torus; do
  step "fig11_alltoall_$topo" "$bindir/hxsim" -topo "$topo" -size "$size" \
    -pattern alltoall -shifts 4 -bytes 65536
done
step fig12_permutation   "$bindir/hxsim" -topo hx2mesh -size "$size" \
  -pattern permutation -perms 4 -bytes 65536
step fig13_allreduce     "$bindir/hxsim" -topo hx2mesh -size "$size" \
  -pattern allreduce -bytes 262144

# The two heavy grids run journaled: a kill mid-sweep costs only the
# in-flight points. The journal directories live next to the outputs and
# are bound to the sweep parameters, so changing a flag below refuses the
# stale journal instead of splicing old points in.
step resilience_sweep    "$bindir/hxsim" -topo hx2mesh -size "$size" \
  -pattern resilience -trials 3 -shifts 4 -bytes 65536 \
  -journal "$outdir/.journal-resilience"
step sched_goodput_grid  "$bindir/hxalloc" -mode sched -grid 8x8 \
  -jobs 120 -horizon 40 -mtbf 0,120,40,12 -ckpt 2 \
  -policies firstfit,bestfit,fragaware -trials 3 \
  -journal "$outdir/.journal-sched"

echo
echo "all paper numbers in $outdir/ (rerun to resume; FORCE=1 to regenerate)"
