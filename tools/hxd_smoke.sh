#!/usr/bin/env bash
# hxd_smoke.sh — end-to-end smoke of the hxd daemon over real HTTP:
# build the binary, start it on an ephemeral port (with -pprof mounted),
# POST the same experiment twice and require the second response to be a
# byte-identical cache hit, scrape /metrics — including the pool/engine
# series the unified obs registry adds — curl a pprof endpoint, validate
# an hxsim -trace flight recording as JSON, then SIGTERM and require a
# graceful exit.
#
# Usage:
#   tools/hxd_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
hxd_pid=""
cleanup() {
  [ -n "$hxd_pid" ] && kill -9 "$hxd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/hxd" ./cmd/hxd

echo "== start"
"$workdir/hxd" -addr 127.0.0.1:0 -workers 2 -pprof >"$workdir/stdout.log" 2>&1 &
hxd_pid=$!

addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/^hxd listening on //p' "$workdir/stdout.log" | head -n1)"
  [ -n "$addr" ] && break
  kill -0 "$hxd_pid" 2>/dev/null || { cat "$workdir/stdout.log"; echo "hxd died on startup"; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "hxd never announced its address"; exit 1; }
base="http://$addr"
echo "   daemon at $base"

req='{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}'
post() {
  curl -sS -D "$workdir/$1.hdr" -o "$workdir/$1.body" \
    -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/experiments"
}

echo "== first request (computes)"
post r1
grep -qi '^HTTP/.* 200' "$workdir/r1.hdr" || { cat "$workdir/r1.hdr" "$workdir/r1.body"; exit 1; }
cat "$workdir/r1.body"; echo

echo "== second request (must hit the cache, byte-identical)"
post r2
grep -qi '^x-hxd-cache: hit' "$workdir/r2.hdr" || {
  echo "second response was not a cache hit:"; cat "$workdir/r2.hdr"; exit 1; }
cmp "$workdir/r1.body" "$workdir/r2.body" || { echo "hit body differs from computed body"; exit 1; }

echo "== /metrics"
curl -sS "$base/metrics" >"$workdir/metrics.txt"
for m in 'hxd_cache_hits_total 1' 'hxd_computations_total 1' 'hxd_requests_total{kind="allreduce",status="ok"} 2'; do
  grep -qF "$m" "$workdir/metrics.txt" || { echo "metrics missing: $m"; cat "$workdir/metrics.txt"; exit 1; }
done

echo "== engine + pool series on the unified registry"
# A packet-level experiment drives the runner pool and the netsim engine,
# whose instruments land on the same /metrics page (obs promotion). This
# POST comes after the exact-count checks above so their counts hold.
req='{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","shifts":2}'
post r3
grep -qi '^HTTP/.* 200' "$workdir/r3.hdr" || { cat "$workdir/r3.hdr" "$workdir/r3.body"; exit 1; }
curl -sS "$base/metrics" >"$workdir/metrics2.txt"
for m in hxd_cluster_cache_entries netsim_events_total runner_jobs_total runner_job_seconds_count; do
  grep -q "^$m" "$workdir/metrics2.txt" || { echo "metrics missing: $m"; cat "$workdir/metrics2.txt"; exit 1; }
done

echo "== pprof"
curl -sSf "$base/debug/pprof/cmdline" >/dev/null || { echo "pprof not mounted under -pprof"; exit 1; }

echo "== hxsim -trace flight recording"
go build -o "$workdir/hxsim" ./cmd/hxsim
"$workdir/hxsim" -topo hx2mesh -size tiny -pattern alltoall -shifts 2 -bytes 32768 \
  -sim-shards 2 -trace "$workdir/trace.json" >/dev/null
python3 -mjson.tool "$workdir/trace.json" >/dev/null || { echo "hxsim -trace wrote invalid JSON"; exit 1; }
grep -q '"ph":"X"' "$workdir/trace.json" || { echo "trace has no spans"; exit 1; }

echo "== /healthz"
curl -sSf "$base/healthz"

echo "== graceful shutdown"
kill -TERM "$hxd_pid"
wait "$hxd_pid" || { echo "hxd exited non-zero after SIGTERM"; cat "$workdir/stdout.log"; exit 1; }
hxd_pid=""
grep -q 'drained, bye' "$workdir/stdout.log" || { echo "no drain message"; cat "$workdir/stdout.log"; exit 1; }

echo "hxd smoke OK"
