#!/usr/bin/env bash
# hxd_smoke.sh — end-to-end smoke of the hxd daemon over real HTTP:
# build the binary, start it on an ephemeral port (with -pprof mounted
# and a durable job journal), wait for /healthz with backoff, POST the
# same experiment twice and require the second response to be a
# byte-identical cache hit, scrape /metrics — including the pool/engine
# series the unified obs registry adds — curl a pprof endpoint, validate
# an hxsim -trace flight recording as JSON, SIGTERM and require a
# graceful exit, then kill -9 a fresh daemon and require the restart to
# replay its journal (rewarmed cache, first request already a hit).
#
# Usage:
#   tools/hxd_smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

workdir="$(mktemp -d)"
hxd_pid=""
cleanup() {
  [ -n "$hxd_pid" ] && kill -9 "$hxd_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# start_hxd <logfile> [extra flags...]: launch the daemon on an ephemeral
# port and wait until /healthz answers, retrying with backoff instead of
# a fixed sleep. Sets $hxd_pid and $base.
start_hxd() {
  local log="$1"; shift
  "$workdir/hxd" -addr 127.0.0.1:0 -workers 2 "$@" >"$log" 2>&1 &
  hxd_pid=$!
  local addr="" delay=0.05
  for _ in $(seq 1 60); do
    addr="$(sed -n 's/^hxd listening on //p' "$log" | head -n1)"
    if [ -n "$addr" ] && curl -sSf -m 2 "http://$addr/healthz" >/dev/null 2>&1; then
      base="http://$addr"
      echo "   daemon at $base (pid $hxd_pid)"
      return 0
    fi
    kill -0 "$hxd_pid" 2>/dev/null || { cat "$log"; echo "hxd died on startup"; exit 1; }
    sleep "$delay"
    # Exponential backoff, capped at half a second.
    delay="$(awk -v d="$delay" 'BEGIN { d *= 2; print (d > 0.5) ? 0.5 : d }')"
  done
  cat "$log"; echo "hxd never became healthy"; exit 1
}

echo "== build"
go build -o "$workdir/hxd" ./cmd/hxd

echo "== start (retry-until-healthy)"
start_hxd "$workdir/stdout.log" -pprof -journal-dir "$workdir/journal"

req='{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}'
post() {
  curl -sS -D "$workdir/$1.hdr" -o "$workdir/$1.body" \
    -X POST -H 'Content-Type: application/json' -d "$req" "$base/v1/experiments"
}

echo "== first request (computes)"
post r1
grep -qi '^HTTP/.* 200' "$workdir/r1.hdr" || { cat "$workdir/r1.hdr" "$workdir/r1.body"; exit 1; }
cat "$workdir/r1.body"; echo

echo "== second request (must hit the cache, byte-identical)"
post r2
grep -qi '^x-hxd-cache: hit' "$workdir/r2.hdr" || {
  echo "second response was not a cache hit:"; cat "$workdir/r2.hdr"; exit 1; }
cmp "$workdir/r1.body" "$workdir/r2.body" || { echo "hit body differs from computed body"; exit 1; }

echo "== /metrics"
curl -sS "$base/metrics" >"$workdir/metrics.txt"
for m in 'hxd_cache_hits_total 1' 'hxd_computations_total 1' 'hxd_requests_total{kind="allreduce",status="ok"} 2'; do
  grep -qF "$m" "$workdir/metrics.txt" || { echo "metrics missing: $m"; cat "$workdir/metrics.txt"; exit 1; }
done

echo "== engine + pool series on the unified registry"
# A packet-level experiment drives the runner pool and the netsim engine,
# whose instruments land on the same /metrics page (obs promotion). This
# POST comes after the exact-count checks above so their counts hold.
req='{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","shifts":2}'
post r3
grep -qi '^HTTP/.* 200' "$workdir/r3.hdr" || { cat "$workdir/r3.hdr" "$workdir/r3.body"; exit 1; }
curl -sS "$base/metrics" >"$workdir/metrics2.txt"
for m in hxd_cluster_cache_entries netsim_events_total runner_jobs_total runner_job_seconds_count; do
  grep -q "^$m" "$workdir/metrics2.txt" || { echo "metrics missing: $m"; cat "$workdir/metrics2.txt"; exit 1; }
done

echo "== pprof"
curl -sSf "$base/debug/pprof/cmdline" >/dev/null || { echo "pprof not mounted under -pprof"; exit 1; }

echo "== hxsim -trace flight recording"
go build -o "$workdir/hxsim" ./cmd/hxsim
"$workdir/hxsim" -topo hx2mesh -size tiny -pattern alltoall -shifts 2 -bytes 32768 \
  -sim-shards 2 -trace "$workdir/trace.json" >/dev/null
python3 -mjson.tool "$workdir/trace.json" >/dev/null || { echo "hxsim -trace wrote invalid JSON"; exit 1; }
grep -q '"ph":"X"' "$workdir/trace.json" || { echo "trace has no spans"; exit 1; }

echo "== /healthz"
curl -sSf "$base/healthz"

echo "== graceful shutdown"
kill -TERM "$hxd_pid"
wait "$hxd_pid" || { echo "hxd exited non-zero after SIGTERM"; cat "$workdir/stdout.log"; exit 1; }
hxd_pid=""
grep -q 'drained, bye' "$workdir/stdout.log" || { echo "no drain message"; cat "$workdir/stdout.log"; exit 1; }

echo "== kill -9 -> restart -> journal replay"
# A daemon that dies with no drain and no cleanup must come back with
# every journaled result rewarmed: the two computed above survive, and
# the very first request after the restart is already a cache hit.
start_hxd "$workdir/stdout2.log" -journal-dir "$workdir/journal"
kill -9 "$hxd_pid"
wait "$hxd_pid" 2>/dev/null || true
hxd_pid=""
start_hxd "$workdir/stdout3.log" -journal-dir "$workdir/journal"
grep -q '^hxd journal: 2 results rewarmed, 0 pending requests replaying$' "$workdir/stdout3.log" || {
  echo "restart did not replay the journal:"; cat "$workdir/stdout3.log"; exit 1; }
req='{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}'
post r4
grep -qi '^x-hxd-cache: hit' "$workdir/r4.hdr" || {
  echo "first request after kill -9 restart was not a rewarmed hit:"; cat "$workdir/r4.hdr"; exit 1; }
cmp "$workdir/r1.body" "$workdir/r4.body" || { echo "rewarmed body differs from the original"; exit 1; }
kill -TERM "$hxd_pid"
wait "$hxd_pid" || { echo "restarted hxd exited non-zero after SIGTERM"; cat "$workdir/stdout3.log"; exit 1; }
hxd_pid=""

echo "hxd smoke OK"
