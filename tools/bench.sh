#!/usr/bin/env bash
# bench.sh — run the tracked performance benchmarks and emit a JSON
# trajectory file (default BENCH_PR10.json) for CI artifacts, so the
# ns/op, allocs/op and events/op of the hot paths are comparable across
# PRs:
#
#   PacketSim            raw packet-engine throughput (Reset-reuse path)
#   PacketSimQueue/*     calendar queue vs the reference 4-ary heap
#   PacketSimShards/*    sharded parallel engine at 1/2/4/8 shards
#   TraceOverhead/off|on instrumentation cost: off must be 0 allocs/op
#   AlltoallSweep        pooled packet-level alltoall shift sweep
#   AlltoallSweepFaulted the same sweep on a 10%-degraded fabric
#   FlowSolverLarge      flow-level alltoall on the 16,384-endpoint Hx2Mesh
#   DaemonHit            hxd repeat-request path: HTTP + cache hit
#   DaemonDistinct       hxd miss path: canonicalize + batch + pool
#   JournalAppend/*      checkpoint append overhead, nosync and fsync
#   SweepResume/*        journaled sched sweep: fresh run vs journal replay
#   SchedContention/*    joint contention pricing vs isolation slowdowns,
#                        cold (solves/op) vs shared-model memoized (%memo)
#
# Usage:
#   tools/bench.sh [out.json]
#
# Environment:
#   SHORT=0       run the full-size benchmarks (default 1: -short, CI mode)
#   BENCHTIME=5x  override -benchtime (default 1x)
#
# Raw `go test -bench` output is kept next to the JSON as bench-raw.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_PR10.json}"
raw="bench-raw.txt"
args=(-run '^$'
  -bench 'BenchmarkPacketSim$|BenchmarkPacketSimQueue$|BenchmarkPacketSimShards$|BenchmarkTraceOverhead$|BenchmarkAlltoallSweep$|BenchmarkAlltoallSweepFaulted$|BenchmarkFlowSolverLarge$'
  -benchmem -benchtime "${BENCHTIME:-1x}")
if [ "${SHORT:-1}" = "1" ]; then
  args+=(-short)
fi

go test "${args[@]}" . | tee "$raw"

# Hard gate (obs zero-overhead contract): with instrumentation off the
# steady-state packet engine must not allocate.
grep -E 'BenchmarkTraceOverhead/off.*[[:space:]]0 B/op' "$raw" >/dev/null || {
  echo "BenchmarkTraceOverhead/off allocated — obs off is no longer free"; exit 1; }

# The daemon-path benchmarks (hxd serving layer) ride along in the same
# trajectory file: req/s for the cache-hit and full-miss paths.
go test -run '^$' -bench 'BenchmarkDaemonHit$|BenchmarkDaemonDistinct$' \
  -benchmem -benchtime "${BENCHTIME:-1x}" ./internal/serve | tee -a "$raw"

# Checkpointing trajectory: raw journal append cost (the per-point tax a
# journaled sweep pays, with and without fsync) and the wall-time gap
# between a fresh journaled sched sweep and a pure journal replay of the
# same grid (what a crash-resume recovers for free).
go test -run '^$' -bench 'BenchmarkJournalAppend$' \
  -benchmem -benchtime "${BENCHTIME:-1x}" ./internal/journal | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkSweepResume$' \
  -benchmem -benchtime "${BENCHTIME:-1x}" ./internal/runner | tee -a "$raw"

# Contention-pricing trajectory: what the joint flow solve adds on top of
# the isolation slowdown model per sched run, and how much the shared
# placement-set memo claws back (the sweep layer shares one model).
go test -run '^$' -bench 'BenchmarkSchedContention$' \
  -benchmem -benchtime "${BENCHTIME:-1x}" ./internal/sched | tee -a "$raw"

# One JSON object per benchmark line: name, iterations, then every
# value/unit metric pair go test printed (ns/op, B/op, allocs/op,
# events/op, %inject, ...).
awk '
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)
  sub(/^Benchmark/, "", name)
  printf "%s  {\"name\":\"%s\",\"iterations\":%s", sep, name, $2
  for (i = 3; i + 1 <= NF; i += 2) {
    printf ",\"%s\":%s", $(i + 1), $i
  }
  printf "}"
  sep = ",\n"
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$raw" > "$out"

echo "wrote $out"
