package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRenderGolden pins the deterministic text exposition: families
// sorted by name, series in registration order, histogram buckets
// cumulative. Any change to the rendering is a contract change for
// every /metrics consumer and must update this golden.
func TestRenderGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("zz_total", "", "last family by name")
	c.Add(7)
	r.Counter("aa_requests_total", `kind="b"`, "labeled counter").Add(2)
	r.Counter("aa_requests_total", `kind="a"`, "labeled counter").Inc()
	g := r.Gauge("mm_depth", "", "settable gauge")
	g.Set(3.5)
	r.GaugeFunc("mm_live", "", "gauge func", func() float64 { return 11 })
	h := r.Histogram("hh_seconds", "", "histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.Render(&sb)
	want := `# HELP aa_requests_total labeled counter
# TYPE aa_requests_total counter
aa_requests_total{kind="b"} 2
aa_requests_total{kind="a"} 1
# HELP hh_seconds histogram
# TYPE hh_seconds histogram
hh_seconds_bucket{le="0.1"} 1
hh_seconds_bucket{le="1"} 2
hh_seconds_bucket{le="+Inf"} 3
hh_seconds_sum 5.55
hh_seconds_count 3
# HELP mm_depth settable gauge
# TYPE mm_depth gauge
mm_depth 3.5
# HELP mm_live gauge func
# TYPE mm_live gauge
mm_live 11
# HELP zz_total last family by name
# TYPE zz_total counter
zz_total 7
`
	if got := sb.String(); got != want {
		t.Errorf("render mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	// Render twice: identical (determinism, no consumed state).
	var sb2 strings.Builder
	r.Render(&sb2)
	if sb2.String() != sb.String() {
		t.Errorf("second render differs from first")
	}
}

// TestRegistrationIdempotent verifies re-registering a (name, labels)
// pair returns the same instrument.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", `k="1"`, "h")
	b := r.Counter("x_total", `k="1"`, "h")
	if a != b {
		t.Fatalf("counter registration not idempotent")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("aliased counters diverged")
	}
	g1 := r.Gauge("y", "", "h")
	g2 := r.Gauge("y", "", "h")
	if g1 != g2 {
		t.Fatalf("gauge registration not idempotent")
	}
	h1 := r.Histogram("z_seconds", "", "h", []float64{1})
	h2 := r.Histogram("z_seconds", "", "h", []float64{1})
	if h1 != h2 {
		t.Fatalf("histogram registration not idempotent")
	}
}

// TestConcurrentInstruments hammers Inc/Observe/Set/registration/render
// from parallel goroutines; run under -race this pins the concurrency
// contract of the registry.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("par_total", "", "h")
	g := r.Gauge("par_gauge", "", "h")
	h := r.Histogram("par_seconds", "", "h", []float64{0.5})
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) + 0.25)
				// Lazy labeled registration from multiple goroutines.
				r.Counter("par_lazy_total", `w="a"`, "h").Inc()
				if i%100 == 0 {
					var sb strings.Builder
					r.Render(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Errorf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Errorf("gauge = %g, want %d", g.Value(), workers*iters)
	}
	if got := r.Counter("par_lazy_total", `w="a"`, "h").Value(); got != workers*iters {
		t.Errorf("lazy counter = %d, want %d", got, workers*iters)
	}
}

// TestDefaultRegistry checks the process default registry is shared.
func TestDefaultRegistry(t *testing.T) {
	if Default() == nil || Default() != Default() {
		t.Fatalf("Default() must return one stable registry")
	}
}

// BenchmarkCounterInc documents the hot-path cost of a warm counter.
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "", "h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
