// Package obs is the repository's dependency-free observability layer:
// a Prometheus-text-exposition metrics registry (promoted out of
// internal/serve, where PR 7 grew it for the daemon) and a deterministic
// flight recorder (trace.go) that exports Chrome trace-event JSON for
// Perfetto.
//
// The hard contract every instrumented layer honors: with instrumentation
// off (nil Registry / nil Recorder) the hot paths add zero allocations
// and results are bit-identical to the uninstrumented build; with
// instrumentation on, observers record but never perturb, so results stay
// bit-identical — the same discipline as sched's invariant observer.
// Instruments are lock-free atomics on the update path; the registry
// mutex is touched only at registration and render time, so engines keep
// plain per-run counters and flush them once per run.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a minimal Prometheus-text-exposition metrics registry —
// counters, gauges, gauge functions and histograms, optionally labeled.
// Families render sorted by name and series in registration order, so the
// output is deterministic. All instruments are safe for concurrent use,
// and registration is idempotent per (name, labels): re-registering
// fetches the existing instrument, so labeled counters can be created
// lazily per kind/status.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*metricFamily
}

type metricFamily struct {
	name, help, typ string
	keys            []string // label strings, registration order
	insts           map[string]any
	renders         map[string]func(w io.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*metricFamily)}
}

// defaultRegistry is the process-wide registry long-lived binaries (the
// hxd daemon) share, so daemon, pool and engine series land in one
// /metrics scrape. Tests and libraries use private registries.
var defaultRegistry = NewRegistry()

// Default returns the process default registry.
func Default() *Registry { return defaultRegistry }

// familyLocked returns the named family, creating it on first use; caller
// must hold r.mu.
func (r *Registry) familyLocked(name, help, typ string) *metricFamily {
	f, ok := r.fams[name]
	if !ok {
		f = &metricFamily{name: name, help: help, typ: typ,
			insts:   make(map[string]any),
			renders: make(map[string]func(io.Writer))}
		r.fams[name] = f
	}
	return f
}

func (f *metricFamily) add(labels string, inst any, render func(io.Writer)) {
	f.keys = append(f.keys, labels)
	f.insts[labels] = inst
	f.renders[labels] = render
}

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter registers (or fetches) the counter for the label string (e.g.
// `kind="alltoall_flow",status="ok"`; empty for an unlabeled series).
func (r *Registry) Counter(name, labels, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "counter")
	if inst, ok := f.insts[labels]; ok {
		return inst.(*Counter)
	}
	c := &Counter{}
	f.add(labels, c, func(w io.Writer) {
		fmt.Fprintf(w, "%s%s %d\n", name, bracized(labels), c.Value())
	})
	return c
}

// Gauge is a settable float64 (atomic on its bit pattern). Where a
// GaugeFunc reads live state at scrape time, a Gauge holds the last value
// an instrumented layer pushed — the right shape for per-run statistics
// flushed after each simulation.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v with a CAS loop.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge registers (or fetches) the settable gauge for the label string.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	if inst, ok := f.insts[labels]; ok {
		return inst.(*Gauge)
	}
	g := &Gauge{}
	f.add(labels, g, func(w io.Writer) {
		fmt.Fprintf(w, "%s%s %g\n", name, bracized(labels), g.Value())
	})
	return g
}

// GaugeFunc registers a gauge whose value is read at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "gauge")
	if _, ok := f.insts[labels]; ok {
		return
	}
	f.add(labels, fn, func(w io.Writer) {
		fmt.Fprintf(w, "%s%s %g\n", name, bracized(labels), fn())
	})
}

// Histogram counts observations into cumulative le-labeled buckets.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // one per bound, plus +Inf at the end
	sum    atomicFloat
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.sum.add(v)
}

// Histogram registers (or fetches) the histogram for the label string,
// with the given upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, labels, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyLocked(name, help, "histogram")
	if inst, ok := f.insts[labels]; ok {
		return inst.(*Histogram)
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(h.bounds)+1)
	f.add(labels, h, func(w io.Writer) {
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", name,
				bracized(joinLabels(labels, fmt.Sprintf(`le="%g"`, b))), cum)
		}
		cum += h.counts[len(h.bounds)].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bracized(joinLabels(labels, `le="+Inf"`)), cum)
		fmt.Fprintf(w, "%s_sum%s %g\n", name, bracized(labels), h.sum.load())
		fmt.Fprintf(w, "%s_count%s %d\n", name, bracized(labels), cum)
	})
	return h
}

// Render writes the Prometheus text exposition of every registered
// metric, families sorted by name. The registry lock is held across the
// render (registration may happen lazily per request), so gauge functions
// must not call back into the registry.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, k := range f.keys {
			f.renders[k](w)
		}
	}
}

// atomicFloat accumulates a float64 with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (a *atomicFloat) load() float64 { return math.Float64frombits(a.bits.Load()) }

func bracized(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

func joinLabels(a, b string) string {
	if a == "" {
		return b
	}
	return a + "," + b
}
