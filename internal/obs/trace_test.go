package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRecorderRing verifies fixed capacity with oldest-overwrite and the
// dropped counter.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 10; i++ {
		r.Instant(1, 1, "e", float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	// Survivors are the last 4 emissions (ts 6..9), sorted by TS.
	for i, e := range evs {
		if want := float64(6 + i); e.TS != want {
			t.Errorf("event %d TS = %g, want %g", i, e.TS, want)
		}
	}
}

// TestNilRecorderSafe pins the nil-recorder no-op contract relied on by
// every instrumented layer.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Emit(Event{})
	r.Span(1, 1, "s", "c", 0, 1)
	r.Instant(1, 1, "i", 0)
	r.Counter(1, 1, "c", "v", 0, 1)
	r.SetProcessName(1, "p")
	r.SetThreadName(1, 1, "t")
	if r.Len() != 0 || r.Dropped() != 0 || r.Events() != nil {
		t.Fatalf("nil recorder must be inert")
	}
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON on nil recorder: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("nil-recorder JSON invalid: %v", err)
	}
}

// TestCanonicalOrderDeterminism emits the same event set in two
// different interleavings (one concurrent) and requires byte-identical
// JSON exports — the property that makes traces from the parallel
// engine deterministic.
func TestCanonicalOrderDeterminism(t *testing.T) {
	build := func(concurrent bool) string {
		r := NewRecorder(64)
		r.SetProcessName(1, "netsim")
		r.SetThreadName(1, 3, "ch 3")
		emit := func(shard int) {
			for i := 0; i < 5; i++ {
				ts := float64(i*10 + shard)
				r.Span(1, int32(shard), "xmit", "net", ts, 2)
				r.Instant(2, int32(shard), "barrier", ts+1)
				r.Counter(1, 0, "occ", "events", ts, float64(i))
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for s := 1; s <= 3; s++ {
				wg.Add(1)
				go func(s int) { defer wg.Done(); emit(s) }(s)
			}
			wg.Wait()
		} else {
			for s := 3; s >= 1; s-- {
				emit(s)
			}
		}
		var sb strings.Builder
		if err := r.WriteJSON(&sb); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return sb.String()
	}
	a, b := build(false), build(true)
	if a != b {
		t.Errorf("export not canonical:\nserial:\n%s\nconcurrent:\n%s", a, b)
	}
}

// TestWriteJSONSchema validates the exported document against the
// Chrome trace-event shape Perfetto requires.
func TestWriteJSONSchema(t *testing.T) {
	r := NewRecorder(16)
	r.SetProcessName(7, "sched")
	r.SetThreadName(7, 42, "job 42")
	r.Span(7, 42, "run", "job", 100, 50)
	r.Instant(7, 42, "checkpoint", 125)
	r.Counter(7, 0, "util", "frac", 100, 0.75)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5 (2 metadata + 3 records)", len(doc.TraceEvents))
	}
	byPh := map[string]map[string]any{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing numeric pid: %v", e)
		}
		if _, ok := e["tid"].(float64); !ok {
			t.Fatalf("event missing numeric tid: %v", e)
		}
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event missing name: %v", e)
		}
		byPh[ph] = e
	}
	x := byPh["X"]
	if x == nil || x["ts"].(float64) != 100 || x["dur"].(float64) != 50 {
		t.Errorf("bad span event: %v", x)
	}
	in := byPh["i"]
	if in == nil || in["s"] != "t" {
		t.Errorf("instant missing scope: %v", in)
	}
	c := byPh["C"]
	if c == nil {
		t.Fatalf("no counter event")
	}
	args, _ := c["args"].(map[string]any)
	if args["frac"].(float64) != 0.75 {
		t.Errorf("counter args wrong: %v", c)
	}
	m := byPh["M"]
	if m == nil {
		t.Errorf("no metadata records")
	}
}

// TestEmitZeroAlloc pins the steady-state zero-allocation contract of
// the ring buffer.
func TestEmitZeroAlloc(t *testing.T) {
	r := NewRecorder(8)
	ev := Event{Ph: PhaseSpan, Pid: 1, Tid: 2, Name: "x", TS: 1, Dur: 2}
	allocs := testing.AllocsPerRun(1000, func() { r.Emit(ev) })
	if allocs != 0 {
		t.Errorf("Emit allocates %g allocs/op, want 0", allocs)
	}
}

// BenchmarkEmit documents emission cost.
func BenchmarkEmit(b *testing.B) {
	r := NewRecorder(1 << 12)
	ev := Event{Ph: PhaseSpan, Pid: 1, Tid: 2, Name: "x", TS: 1, Dur: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Emit(ev)
	}
}
