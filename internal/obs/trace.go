package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Event phase bytes, a subset of the Chrome trace-event format.
const (
	PhaseSpan    = 'X' // complete span: TS + Dur
	PhaseInstant = 'i' // instant marker at TS
	PhaseCounter = 'C' // counter sample: Arg at TS
)

// Event is one flight-recorder record. Timestamps and durations are in
// trace microseconds; each instrumented layer documents its mapping
// (netsim records 1 sim-ns as 1 trace-µs, sched records 1 sim-hour as
// 1e6 trace-µs = 1 s, wall-time stages record real microseconds). Name,
// Cat and ArgName must be static strings — the recorder copies events
// into a preallocated ring, so emission never allocates.
type Event struct {
	TS   float64 // microseconds
	Dur  float64 // microseconds (PhaseSpan only)
	Arg  float64 // counter value / instant payload
	Pid  int32   // process lane (one per instrumented layer)
	Tid  int32   // thread lane within the process (channel, shard, job id)
	Ph   byte    // PhaseSpan | PhaseInstant | PhaseCounter
	Name string
	Cat  string
	// ArgName labels Arg in the exported JSON ("value" when empty).
	ArgName string
}

// Recorder is a fixed-capacity ring buffer of trace events — a flight
// recorder: emission is mutex-push into preallocated storage (zero
// allocations in steady state, safe for concurrent emitters), and when
// the ring fills the oldest events are overwritten so a recorder can ride
// along arbitrarily long runs at bounded memory. Export sorts the
// surviving events into a canonical total order, so the serialized trace
// is deterministic even when concurrent shards interleaved their
// emissions nondeterministically.
//
// A nil *Recorder is a valid no-op recorder: every method is nil-safe, so
// instrumented layers hold an optional recorder without guarding each
// call site (hot paths still guard, to skip argument setup).
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int // next write slot
	wrapped bool
	dropped int64

	procNames   map[int32]string
	threadNames map[int64]string // pid<<32 | tid
}

// DefaultRecorderCap is the ring capacity NewRecorder(0) uses.
const DefaultRecorderCap = 1 << 16

// NewRecorder creates a recorder holding the last `capacity` events
// (<= 0 means DefaultRecorderCap).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{
		buf:         make([]Event, 0, capacity),
		procNames:   make(map[int32]string),
		threadNames: make(map[int64]string),
	}
}

// Emit records one event, overwriting the oldest once the ring is full.
func (r *Recorder) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.next == cap(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	if r.wrapped {
		r.buf[r.next] = e
		r.dropped++
	} else {
		r.buf = append(r.buf, e)
	}
	r.next++
	r.mu.Unlock()
}

// Span records a complete span of dur microseconds starting at ts.
func (r *Recorder) Span(pid, tid int32, name, cat string, ts, dur float64) {
	r.Emit(Event{Ph: PhaseSpan, Pid: pid, Tid: tid, Name: name, Cat: cat, TS: ts, Dur: dur})
}

// Instant records a point marker at ts.
func (r *Recorder) Instant(pid, tid int32, name string, ts float64) {
	r.Emit(Event{Ph: PhaseInstant, Pid: pid, Tid: tid, Name: name, TS: ts})
}

// Counter records a counter sample (rendered as a track in Perfetto).
func (r *Recorder) Counter(pid, tid int32, name, argName string, ts, v float64) {
	r.Emit(Event{Ph: PhaseCounter, Pid: pid, Tid: tid, Name: name, ArgName: argName, TS: ts, Arg: v})
}

// SetProcessName labels a pid lane in the exported trace. Call at setup
// time (it allocates map entries).
func (r *Recorder) SetProcessName(pid int32, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.procNames[pid] = name
	r.mu.Unlock()
}

// SetThreadName labels a (pid, tid) lane in the exported trace.
func (r *Recorder) SetThreadName(pid, tid int32, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.threadNames[int64(pid)<<32|int64(uint32(tid))] = name
	r.mu.Unlock()
}

// Len is the number of events currently held (≤ capacity).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Dropped is the number of events overwritten by ring wrap-around.
func (r *Recorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Events returns a copy of the held events in the canonical export order:
// sorted by (TS, Pid, Tid, Ph, Name, Dur, Arg). Concurrent shards may
// interleave emissions in any order; the canonical sort makes the
// exported trace a pure function of the set of recorded events.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := append([]Event(nil), r.buf...)
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		if a.Ph != b.Ph {
			return a.Ph < b.Ph
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Arg < b.Arg
	})
	return out
}

// WriteJSON serializes the recording as Chrome trace-event JSON
// ({"traceEvents": [...]}), the format Perfetto and chrome://tracing load
// directly: metadata (process/thread names) first, then the events in
// canonical order. Output is deterministic for a given set of events.
func (r *Recorder) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[\n")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}
	if r != nil {
		r.mu.Lock()
		pids := make([]int32, 0, len(r.procNames))
		for pid := range r.procNames {
			pids = append(pids, pid)
		}
		tkeys := make([]int64, 0, len(r.threadNames))
		for k := range r.threadNames {
			tkeys = append(tkeys, k)
		}
		procs, threads := r.procNames, r.threadNames
		r.mu.Unlock()
		sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
		sort.Slice(tkeys, func(i, j int) bool { return tkeys[i] < tkeys[j] })
		for _, pid := range pids {
			sep()
			fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%s}}`,
				pid, strconv.Quote(procs[pid]))
		}
		for _, k := range tkeys {
			sep()
			fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
				int32(k>>32), int32(uint32(k)), strconv.Quote(threads[k]))
		}
	}
	for _, e := range r.Events() {
		sep()
		switch e.Ph {
		case PhaseSpan:
			fmt.Fprintf(bw, `{"name":%s,%s"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
				strconv.Quote(e.Name), catField(e.Cat), e.Pid, e.Tid, jnum(e.TS), jnum(e.Dur))
		case PhaseInstant:
			fmt.Fprintf(bw, `{"name":%s,%s"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%s}`,
				strconv.Quote(e.Name), catField(e.Cat), e.Pid, e.Tid, jnum(e.TS))
		case PhaseCounter:
			arg := e.ArgName
			if arg == "" {
				arg = "value"
			}
			fmt.Fprintf(bw, `{"name":%s,"ph":"C","pid":%d,"tid":%d,"ts":%s,"args":{%s:%s}}`,
				strconv.Quote(e.Name), e.Pid, e.Tid, jnum(e.TS), strconv.Quote(arg), jnum(e.Arg))
		}
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

func catField(cat string) string {
	if cat == "" {
		return ""
	}
	return `"cat":` + strconv.Quote(cat) + `,`
}

// jnum formats a float as a JSON number (no exponent surprises for the
// magnitudes traces use; -1 precision keeps the shortest round-trip form).
func jnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
