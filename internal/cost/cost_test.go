package cost

import (
	"math"
	"testing"

	"hammingmesh/internal/topo"
)

func TestTableIICostsSmall(t *testing.T) {
	p := PaperPrices()
	for _, inv := range SmallCluster() {
		want := TableIICostMUSD[inv.Name][0]
		got := inv.CostMUSD(p)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%s small: %.2f M$, want %.1f M$ (Table II)", inv.Name, got, want)
		}
	}
}

func TestTableIICostsLarge(t *testing.T) {
	p := PaperPrices()
	for _, inv := range LargeCluster() {
		want := TableIICostMUSD[inv.Name][1]
		got := inv.CostMUSD(p)
		if math.Abs(got-want)/want > 0.02 {
			t.Errorf("%s large: %.2f M$, want %.1f M$ (Table II)", inv.Name, got, want)
		}
	}
}

func TestGraphInventoryMatchesAppendixHxMesh(t *testing.T) {
	// The graph-derived inventory of the built HxMeshes must equal the
	// hardcoded Appendix C inventory.
	lp := topo.DefaultLinkParams()
	cases := []struct {
		name    string
		build   *topo.Network
		tblName string
		small   bool
	}{
		{"hx2 small", topo.NewHxMesh(2, 2, 16, 16, lp).Network, "hx2mesh", true},
		{"hx4 small", topo.NewHxMesh(4, 4, 8, 8, lp).Network, "hx4mesh", true},
		{"hyperx small", topo.NewHyperX2D(32, 32, lp).Network, "2D hyperx", true},
	}
	table := SmallCluster()
	byName := map[string]Inventory{}
	for _, inv := range table {
		byName[inv.Name] = inv
	}
	for _, c := range cases {
		got := FromNetwork(c.build)
		want := byName[c.tblName]
		if got.SwitchesPerPlane != want.SwitchesPerPlane ||
			got.DACPerPlane != want.DACPerPlane ||
			got.AoCPerPlane != want.AoCPerPlane {
			t.Errorf("%s: graph inventory %+v != appendix %+v", c.name, got, want)
		}
	}
}

func TestGraphInventoryTorusPricedAsTable(t *testing.T) {
	lp := topo.DefaultLinkParams()
	n := topo.NewTorus2D(32, 32, 2, 2, lp)
	inv := FromNetwork(n)
	if inv.DACPerPlane != 0 || inv.AoCPerPlane != 1024 {
		t.Errorf("torus inventory %+v, want 1024 AoC (Table II pricing)", inv)
	}
	got := inv.CostMUSD(PaperPrices())
	if math.Abs(got-2.47) > 0.1 {
		t.Errorf("torus cost %.2f M$, want ≈2.5", got)
	}
}

func TestSavings(t *testing.T) {
	p := PaperPrices()
	small := SmallCluster()
	var ft, hx4 Inventory
	for _, inv := range small {
		switch inv.Name {
		case "nonblocking fat tree":
			ft = inv
		case "hx4mesh":
			hx4 = inv
		}
	}
	// Table II: allreduce saving of Hx4Mesh ≈ 9.3x vs nonblocking fat tree
	// (98.4% vs 98.9% of peak).
	s, err := PerBandwidthSaving(hx4, 0.984, ft, 0.989, p)
	if err != nil {
		t.Fatal(err)
	}
	if s < 8.5 || s > 10.5 {
		t.Errorf("Hx4 allreduce saving = %.1f, want ≈9.3", s)
	}
	if sv := SavingVersus(hx4, ft, p); sv < 9 || sv > 10 {
		t.Errorf("raw cost saving = %.1f, want ≈9.4", sv)
	}
	if _, err := PerBandwidthSaving(hx4, 0, ft, 1, p); err == nil {
		t.Error("zero bandwidth not rejected")
	}
}
