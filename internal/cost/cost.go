// Package cost implements the paper's capital-expenditure model (§III-C,
// Appendix C and E): 64-port switches at $14,280, 5 m DAC copper cables at
// $272 and 20 m active optical cables (AoC) at $603 (Colfaxdirect, April
// 2022). PCB traces and endpoint NICs are part of the accelerator package
// and free. The per-topology inventories reproduce the cable and switch
// counts of Appendix C, and therefore the cost column of Table II.
package cost

import (
	"fmt"

	"hammingmesh/internal/topo"
)

// Prices are unit prices in USD.
type Prices struct {
	SwitchUSD float64
	DACUSD    float64
	AoCUSD    float64
}

// PaperPrices are the Colfaxdirect prices used throughout the paper.
func PaperPrices() Prices { return Prices{SwitchUSD: 14280, DACUSD: 272, AoCUSD: 603} }

// Inventory is the network equipment of one topology (per plane, with the
// plane count the paper charges: 16 one-port planes for fat tree and
// Dragonfly endpoints, 4 four-port planes for HxMesh and torus).
type Inventory struct {
	Name             string
	Endpoints        int
	SwitchesPerPlane int
	DACPerPlane      int
	AoCPerPlane      int
	Planes           int
}

// Cost is the total capital expenditure in USD.
func (inv Inventory) Cost(p Prices) float64 {
	perPlane := float64(inv.SwitchesPerPlane)*p.SwitchUSD +
		float64(inv.DACPerPlane)*p.DACUSD +
		float64(inv.AoCPerPlane)*p.AoCUSD
	return perPlane * float64(inv.Planes)
}

// CostMUSD is the cost in millions of USD (the Table II unit).
func (inv Inventory) CostMUSD(p Prices) float64 { return inv.Cost(p) / 1e6 }

// SmallCluster returns the Appendix C inventories for the ≈1k-accelerator
// cluster, in Table II row order.
func SmallCluster() []Inventory {
	return []Inventory{
		{Name: "nonblocking fat tree", Endpoints: 1024, SwitchesPerPlane: 48, DACPerPlane: 1024, AoCPerPlane: 1024, Planes: 16},
		{Name: "50% tapered fat tree", Endpoints: 1050, SwitchesPerPlane: 34, DACPerPlane: 1050, AoCPerPlane: 550, Planes: 16},
		{Name: "75% tapered fat tree", Endpoints: 1071, SwitchesPerPlane: 26, DACPerPlane: 1071, AoCPerPlane: 273, Planes: 16},
		{Name: "dragonfly", Endpoints: 1024, SwitchesPerPlane: 64, DACPerPlane: 1920, AoCPerPlane: 512, Planes: 16},
		{Name: "2D hyperx", Endpoints: 1024, SwitchesPerPlane: 64, DACPerPlane: 2048, AoCPerPlane: 2048, Planes: 4},
		{Name: "hx2mesh", Endpoints: 1024, SwitchesPerPlane: 32, DACPerPlane: 1024, AoCPerPlane: 1024, Planes: 4},
		{Name: "hx4mesh", Endpoints: 1024, SwitchesPerPlane: 16, DACPerPlane: 512, AoCPerPlane: 512, Planes: 4},
		// Table II prices the torus' 1,024 inter-board cables per plane at
		// the AoC rate (matching its $2.5M/$39.5M totals), although the
		// Appendix text calls them DAC; we follow the table.
		{Name: "2D torus", Endpoints: 1024, SwitchesPerPlane: 0, DACPerPlane: 0, AoCPerPlane: 1024, Planes: 4},
	}
}

// LargeCluster returns the Appendix C inventories for the ≈16k-accelerator
// cluster. The tapered fat-tree per-plane switch counts are derived from
// the Table II totals (the Appendix's "794" and "8,304" figures mix per-
// plane and all-plane accounting).
func LargeCluster() []Inventory {
	return []Inventory{
		{Name: "nonblocking fat tree", Endpoints: 16384, SwitchesPerPlane: 1280, DACPerPlane: 16384, AoCPerPlane: 32768, Planes: 16},
		{Name: "50% tapered fat tree", Endpoints: 16380, SwitchesPerPlane: 794, DACPerPlane: 16380, AoCPerPlane: 17160, Planes: 16},
		{Name: "75% tapered fat tree", Endpoints: 16422, SwitchesPerPlane: 519, DACPerPlane: 16422, AoCPerPlane: 8372, Planes: 16},
		{Name: "dragonfly", Endpoints: 16320, SwitchesPerPlane: 960, DACPerPlane: 31200, AoCPerPlane: 7680, Planes: 16},
		{Name: "2D hyperx", Endpoints: 16384, SwitchesPerPlane: 3072, DACPerPlane: 32768, AoCPerPlane: 98304, Planes: 4},
		{Name: "hx2mesh", Endpoints: 16384, SwitchesPerPlane: 1536, DACPerPlane: 16384, AoCPerPlane: 49152, Planes: 4},
		{Name: "hx4mesh", Endpoints: 16384, SwitchesPerPlane: 256, DACPerPlane: 8192, AoCPerPlane: 8192, Planes: 4},
		{Name: "2D torus", Endpoints: 16384, SwitchesPerPlane: 0, DACPerPlane: 0, AoCPerPlane: 16384, Planes: 4},
	}
}

// TableIICostMUSD are the paper's published cost figures (M$), for
// verification.
var TableIICostMUSD = map[string][2]float64{ // name -> {small, large}
	"nonblocking fat tree": {25.3, 680},
	"50% tapered fat tree": {17.6, 419},
	"75% tapered fat tree": {13.2, 271},
	"dragonfly":            {27.9, 429},
	"2D hyperx":            {10.8, 448},
	"hx2mesh":              {5.4, 224},
	"hx4mesh":              {2.7, 43.3},
	"2D torus":             {2.5, 39.5},
}

// FromNetwork derives an inventory from a built single-plane graph, using
// the plane count recorded in the network metadata. The torus inter-board
// cables are priced as AoC to match Table II (see SmallCluster).
func FromNetwork(n *topo.Network) Inventory {
	cables := n.CableCount()
	inv := Inventory{
		Name:             n.Name,
		Endpoints:        n.NumEndpoints(),
		SwitchesPerPlane: n.NumSwitches(),
		DACPerPlane:      cables[topo.DAC],
		AoCPerPlane:      cables[topo.AoC],
		Planes:           n.Meta.Planes,
	}
	if n.Meta.Family == "torus" {
		inv.AoCPerPlane += inv.DACPerPlane
		inv.DACPerPlane = 0
	}
	if inv.Planes == 0 {
		inv.Planes = 1
	}
	return inv
}

// SavingVersus is the cost ratio other/this: how many times cheaper this
// inventory is (>1 means cheaper than other).
func SavingVersus(this, other Inventory, p Prices) float64 {
	c := this.Cost(p)
	if c <= 0 {
		return 0
	}
	return other.Cost(p) / c
}

// PerBandwidthSaving computes the Table II "saving" columns: the ratio of
// cost-per-bandwidth of a reference topology to this one. bwThis and bwRef
// are the respective bandwidths (any common unit).
func PerBandwidthSaving(this Inventory, bwThis float64, ref Inventory, bwRef float64, p Prices) (float64, error) {
	if bwThis <= 0 || bwRef <= 0 {
		return 0, fmt.Errorf("cost: bandwidths must be positive")
	}
	cpbThis := this.Cost(p) / bwThis
	cpbRef := ref.Cost(p) / bwRef
	return cpbRef / cpbThis, nil
}
