// Package simcore compiles a topo.Network into flat-array form shared by
// every simulator layer (routing, netsim, flowsim, collective). The builders
// in internal/topo favour readability — ports live in per-node slices and
// several consumers used to key auxiliary state by node or port id in Go
// maps, which dominates the hot loops of the packet simulator at scale.
//
// A Compiled network is built once per topology and is immutable afterwards:
//
//   - CSR adjacency: the directed ports of node u are
//     Ports[PortOff[u]:PortOff[u+1]], so a "global port id" (the CSR index)
//     doubles as the channel id of the link direction it represents.
//     Owner[pid] recovers the sending node of a port.
//   - Dense endpoint ranks: RankOf[node] is the endpoint rank (index into
//     Endpoints) or -1, replacing map[NodeID]… accounting.
//   - Parallel-link groups: ports that connect the same ordered node pair
//     (u,v) share a group id; GroupPorts[GroupOff[g]:GroupOff[g+1]] lists
//     them, replacing flowsim's map-of-slices round-robin state.
//
// Because mutable per-port and per-node simulator state is kept in slices
// indexed by these ids, a single Compiled value can back any number of
// concurrent simulations (see internal/runner).
package simcore

import (
	"math/bits"
	"sync"

	"hammingmesh/internal/topo"
)

// Port is one direction of a cable in compiled (CSR) form.
type Port struct {
	To      int32          // peer node index
	Rev     int32          // global port id of the reverse direction
	Class   topo.LinkClass // cable technology
	GBps    float64        // bandwidth, one direction
	Latency float64        // propagation latency in ns
}

// Compiled is the flat-array representation of a topo.Network. All fields
// are read-only after Compile returns; simulators allocate their own
// mutable state indexed by the node and port ids defined here.
type Compiled struct {
	Net *topo.Network

	// CSR adjacency: ports of node u are Ports[PortOff[u]:PortOff[u+1]].
	PortOff []int32
	Ports   []Port
	Owner   []int32 // global port id -> owning (sending) node

	// Per-node attributes, densely indexed by node id.
	Kind  []topo.NodeKind
	Level []int8

	// Endpoints in rank order (shared with Net.Endpoints) and the inverse
	// mapping; RankOf[node] is -1 for switches.
	Endpoints []topo.NodeID
	RankOf    []int32

	// Switches lists switch node ids in ascending order (used for Valiant
	// and UGAL intermediate sampling).
	Switches []topo.NodeID

	// Parallel-link groups: GroupOf[pid] is the group of ports connecting
	// the same ordered (owner, peer) pair; the group's members are
	// GroupPorts[GroupOff[g]:GroupOff[g+1]].
	GroupOf    []int32
	GroupOff   []int32
	GroupPorts []int32
}

// Compile flattens the network. The network must already satisfy
// (*topo.Network).Validate; Compile does not re-check invariants.
func Compile(n *topo.Network) *Compiled {
	nn := len(n.Nodes)
	c := &Compiled{
		Net:       n,
		PortOff:   make([]int32, nn+1),
		Kind:      make([]topo.NodeKind, nn),
		Level:     make([]int8, nn),
		Endpoints: n.Endpoints,
		RankOf:    make([]int32, nn),
	}
	total := 0
	for i := range n.Nodes {
		c.PortOff[i] = int32(total)
		total += len(n.Nodes[i].Ports)
		c.Kind[i] = n.Nodes[i].Kind
		c.Level[i] = n.Nodes[i].Level
		c.RankOf[i] = -1
		if n.Nodes[i].Kind == topo.Switch {
			c.Switches = append(c.Switches, topo.NodeID(i))
		}
	}
	c.PortOff[nn] = int32(total)
	for r, id := range n.Endpoints {
		c.RankOf[id] = int32(r)
	}

	c.Ports = make([]Port, total)
	c.Owner = make([]int32, total)
	for i := range n.Nodes {
		off := c.PortOff[i]
		for pi, p := range n.Nodes[i].Ports {
			c.Ports[off+int32(pi)] = Port{
				To:      int32(p.To),
				Rev:     c.PortOff[p.To] + p.ToPort,
				Class:   p.Class,
				GBps:    p.GBps,
				Latency: p.Latency,
			}
			c.Owner[off+int32(pi)] = int32(i)
		}
	}

	c.compileGroups()
	return c
}

// compileGroups assigns every directed port to its parallel-link group.
// Within one node the ports are few, so grouping scans earlier siblings
// instead of hashing.
func (c *Compiled) compileGroups() {
	c.GroupOf = make([]int32, len(c.Ports))
	nGroups := int32(0)
	for u := 0; u+1 < len(c.PortOff); u++ {
		off, end := c.PortOff[u], c.PortOff[u+1]
		for p := off; p < end; p++ {
			g := int32(-1)
			for q := off; q < p; q++ {
				if c.Ports[q].To == c.Ports[p].To {
					g = c.GroupOf[q]
					break
				}
			}
			if g < 0 {
				g = nGroups
				nGroups++
			}
			c.GroupOf[p] = g
		}
	}
	counts := make([]int32, nGroups+1)
	for _, g := range c.GroupOf {
		counts[g+1]++
	}
	for g := 1; g <= int(nGroups); g++ {
		counts[g] += counts[g-1]
	}
	c.GroupOff = counts
	c.GroupPorts = make([]int32, len(c.Ports))
	cursor := make([]int32, nGroups)
	for pid, g := range c.GroupOf {
		c.GroupPorts[c.GroupOff[g]+cursor[g]] = int32(pid)
		cursor[g]++
	}
}

// NumNodes returns the number of nodes.
func (c *Compiled) NumNodes() int { return len(c.Kind) }

// NumPorts returns the number of directed ports (== channels).
func (c *Compiled) NumPorts() int { return len(c.Ports) }

// NumEndpoints returns the number of endpoints.
func (c *Compiled) NumEndpoints() int { return len(c.Endpoints) }

// PortRange returns the half-open global port id range of node u.
func (c *Compiled) PortRange(u int32) (int32, int32) {
	return c.PortOff[u], c.PortOff[u+1]
}

// PortsOf returns the ports of node u as a sub-slice of the CSR array.
func (c *Compiled) PortsOf(u int32) []Port {
	return c.Ports[c.PortOff[u]:c.PortOff[u+1]]
}

// PortID converts a node-local port index to the global port id.
func (c *Compiled) PortID(u int32, local int) int32 {
	return c.PortOff[u] + int32(local)
}

// IsSwitch reports whether node u is a switch.
func (c *Compiled) IsSwitch(u int32) bool { return c.Kind[u] == topo.Switch }

// GroupTo returns the parallel-link group id of the ports u->v, or -1 when
// no such link exists.
func (c *Compiled) GroupTo(u, v int32) int32 {
	for p := c.PortOff[u]; p < c.PortOff[u+1]; p++ {
		if c.Ports[p].To == v {
			return c.GroupOf[p]
		}
	}
	return -1
}

// GroupMembers returns the global port ids of parallel-link group g.
func (c *Compiled) GroupMembers(g int32) []int32 {
	return c.GroupPorts[c.GroupOff[g]:c.GroupOff[g+1]]
}

// BFSFrom returns the hop distance of every node from src over the CSR
// adjacency, or -1 where unreachable. Semantics match topo.BFSFrom.
func (c *Compiled) BFSFrom(src topo.NodeID) []int32 {
	dist := make([]int32, c.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, c.NumNodes())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for p := c.PortOff[u]; p < c.PortOff[u+1]; p++ {
			v := c.Ports[p].To
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// PortMask is a bitset over global port ids marking ports that are down
// (failed link direction, failed switch port, failed endpoint). A nil mask
// means the pristine fabric. Masks are built by internal/faults and treated
// as immutable overlays: one Compiled network plus one PortMask fully
// describe a degraded fabric, and every downstream layer (routing, netsim,
// flowsim) shares that representation.
type PortMask []uint64

// NewPortMask returns an empty mask sized for nPorts ports.
func NewPortMask(nPorts int) PortMask { return make(PortMask, (nPorts+63)/64) }

// Get reports whether port pid is masked (down). A nil mask masks nothing.
func (m PortMask) Get(pid int32) bool {
	if m == nil {
		return false
	}
	return m[pid>>6]&(1<<(uint(pid)&63)) != 0
}

// Set marks port pid as down.
func (m PortMask) Set(pid int32) { m[pid>>6] |= 1 << (uint(pid) & 63) }

// Clear unmarks port pid.
func (m PortMask) Clear(pid int32) { m[pid>>6] &^= 1 << (uint(pid) & 63) }

// Count returns the number of masked ports.
func (m PortMask) Count() int {
	n := 0
	for _, w := range m {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns an independent copy of the mask (nil stays nil).
func (m PortMask) Clone() PortMask {
	if m == nil {
		return nil
	}
	out := make(PortMask, len(m))
	copy(out, m)
	return out
}

// BFSFromMask is BFSFrom over the degraded fabric: masked ports do not
// exist. Distances follow the packet direction toward src, so the traversal
// from src over port p (src side u -> peer v) admits v only when the
// reverse direction v -> u is up; faults that kill a single direction
// therefore degrade exactly the routes that would use it. A nil mask
// matches BFSFrom.
func (c *Compiled) BFSFromMask(src topo.NodeID, mask PortMask) []int32 {
	if mask == nil {
		return c.BFSFrom(src)
	}
	dist := make([]int32, c.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, c.NumNodes())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for p := c.PortOff[u]; p < c.PortOff[u+1]; p++ {
			if mask.Get(c.Ports[p].Rev) {
				continue
			}
			v := c.Ports[p].To
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// cache maps *topo.Network to its Compiled form so that the many call sites
// that build simulators straight from a Network share one compilation.
var cache sync.Map // *topo.Network -> *Compiled

// Of returns the cached compilation of n, compiling on first use. The
// network must not be mutated after the first call. Entries live for the
// process lifetime (an interning cache, like the cluster cache in
// internal/runner); code that churns through many throwaway networks
// should call Compile directly instead of pinning them here.
func Of(n *topo.Network) *Compiled {
	if v, ok := cache.Load(n); ok {
		return v.(*Compiled)
	}
	c := Compile(n)
	v, _ := cache.LoadOrStore(n, c)
	return v.(*Compiled)
}
