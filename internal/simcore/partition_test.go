package simcore

import (
	"testing"

	"hammingmesh/internal/topo"
)

func checkPartition(t *testing.T, c *Compiled, p *Partition, nShards int) {
	t.Helper()
	if p.NumShards != nShards {
		t.Fatalf("NumShards = %d, want %d", p.NumShards, nShards)
	}
	if len(p.Bounds) != nShards+1 || p.Bounds[0] != 0 || p.Bounds[nShards] != int32(c.NumNodes()) {
		t.Fatalf("bad bounds %v for %d nodes", p.Bounds, c.NumNodes())
	}
	for s := 0; s < nShards; s++ {
		if p.Bounds[s+1] <= p.Bounds[s] {
			t.Fatalf("shard %d is empty: bounds %v", s, p.Bounds)
		}
		for u := p.Bounds[s]; u < p.Bounds[s+1]; u++ {
			if p.NodeShard[u] != int32(s) {
				t.Fatalf("NodeShard[%d] = %d, want %d", u, p.NodeShard[u], s)
			}
		}
	}
}

func TestPartitionNodes(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := Of(h.Network)
	nn := c.NumNodes()
	for _, nShards := range []int{1, 2, 3, 4, 8, 16} {
		p := c.PartitionNodes(nShards)
		checkPartition(t, c, p, nShards)

		// Balance: each shard's port+node weight within 2x of the ideal
		// (contiguity limits how uneven the greedy cut can get on a
		// homogeneous fabric).
		total := int64(len(c.Ports) + nn)
		ideal := total / int64(nShards)
		for s := 0; s < nShards; s++ {
			var w int64
			for u := p.Bounds[s]; u < p.Bounds[s+1]; u++ {
				w += 1 + int64(c.PortOff[u+1]-c.PortOff[u])
			}
			if w > 2*ideal {
				t.Errorf("shard %d weight %d > 2x ideal %d (bounds %v)", s, w, ideal, p.Bounds)
			}
		}
	}
}

func TestPartitionNodesClamps(t *testing.T) {
	h := topo.NewHxMesh(1, 1, 2, 2, topo.DefaultLinkParams())
	c := Of(h.Network)
	nn := c.NumNodes()
	if p := c.PartitionNodes(0); p.NumShards != 1 {
		t.Errorf("nShards 0 -> %d shards, want 1", p.NumShards)
	}
	if p := c.PartitionNodes(-3); p.NumShards != 1 {
		t.Errorf("negative nShards -> %d shards, want 1", p.NumShards)
	}
	p := c.PartitionNodes(10 * nn)
	if p.NumShards != nn {
		t.Fatalf("oversized nShards -> %d shards, want %d", p.NumShards, nn)
	}
	checkPartition(t, c, p, nn)
}
