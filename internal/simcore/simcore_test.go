package simcore

import (
	"testing"

	"hammingmesh/internal/topo"
)

// tableIINetworks builds a tiny instance of every Table II topology family.
func tableIINetworks() map[string]*topo.Network {
	lp := topo.DefaultLinkParams()
	return map[string]*topo.Network{
		"fattree":   topo.NewFatTree(64, topo.NonblockingTree(), lp),
		"fattree50": topo.NewFatTree(64, topo.TaperedTree(0.5), lp),
		"fattree75": topo.NewFatTree(64, topo.TaperedTree(0.75), lp),
		"dragonfly": topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: lp}),
		"hyperx":    topo.NewHyperX2D(8, 8, lp).Network,
		"hx2mesh":   topo.NewHxMesh(2, 2, 4, 4, lp).Network,
		"hx4mesh":   topo.NewHxMesh(4, 4, 2, 2, lp).Network,
		"torus":     topo.NewTorus2D(8, 8, 2, 2, lp),
	}
}

// TestCompileRoundTrip checks that Compile preserves every port of every
// Table II topology family: order, peer, reverse port, class, bandwidth
// and latency, plus the endpoint rank index and switch list.
func TestCompileRoundTrip(t *testing.T) {
	for name, n := range tableIINetworks() {
		t.Run(name, func(t *testing.T) {
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
			c := Compile(n)
			if c.NumNodes() != len(n.Nodes) {
				t.Fatalf("NumNodes = %d, want %d", c.NumNodes(), len(n.Nodes))
			}
			totalPorts := 0
			for i := range n.Nodes {
				node := &n.Nodes[i]
				totalPorts += len(node.Ports)
				if got := c.Kind[i]; got != node.Kind {
					t.Fatalf("node %d kind %v, want %v", i, got, node.Kind)
				}
				if got := c.Level[i]; got != node.Level {
					t.Fatalf("node %d level %d, want %d", i, got, node.Level)
				}
				ports := c.PortsOf(int32(i))
				if len(ports) != len(node.Ports) {
					t.Fatalf("node %d has %d compiled ports, want %d", i, len(ports), len(node.Ports))
				}
				for pi, p := range node.Ports {
					cp := ports[pi]
					if topo.NodeID(cp.To) != p.To || cp.Class != p.Class ||
						cp.GBps != p.GBps || cp.Latency != p.Latency {
						t.Fatalf("node %d port %d mismatch: %+v vs %+v", i, pi, cp, p)
					}
					if want := c.PortID(int32(p.To), int(p.ToPort)); cp.Rev != want {
						t.Fatalf("node %d port %d Rev = %d, want %d", i, pi, cp.Rev, want)
					}
					if c.Owner[c.PortID(int32(i), pi)] != int32(i) {
						t.Fatalf("node %d port %d owner mismatch", i, pi)
					}
					// Reverse of the reverse is the port itself.
					if got := c.Ports[cp.Rev].Rev; got != c.PortID(int32(i), pi) {
						t.Fatalf("node %d port %d double-reverse = %d", i, pi, got)
					}
				}
			}
			if c.NumPorts() != totalPorts {
				t.Fatalf("NumPorts = %d, want %d", c.NumPorts(), totalPorts)
			}
			// Endpoint ranks round-trip.
			if c.NumEndpoints() != n.NumEndpoints() {
				t.Fatalf("NumEndpoints = %d, want %d", c.NumEndpoints(), n.NumEndpoints())
			}
			for r, id := range n.Endpoints {
				if c.Endpoints[r] != id || c.RankOf[id] != int32(r) {
					t.Fatalf("endpoint rank %d round-trip failed", r)
				}
			}
			nSwitches := 0
			for i := range n.Nodes {
				if n.Nodes[i].Kind == topo.Switch {
					if c.RankOf[i] != -1 {
						t.Fatalf("switch %d has rank %d", i, c.RankOf[i])
					}
					nSwitches++
				}
			}
			if len(c.Switches) != nSwitches {
				t.Fatalf("%d switches compiled, want %d", len(c.Switches), nSwitches)
			}
		})
	}
}

// TestCompileParallelGroups checks that every parallel-link group contains
// exactly the ports connecting one ordered node pair.
func TestCompileParallelGroups(t *testing.T) {
	for name, n := range tableIINetworks() {
		t.Run(name, func(t *testing.T) {
			c := Compile(n)
			nGroups := len(c.GroupOff) - 1
			covered := 0
			for g := 0; g < nGroups; g++ {
				members := c.GroupMembers(int32(g))
				if len(members) == 0 {
					t.Fatalf("group %d empty", g)
				}
				u, v := c.Owner[members[0]], c.Ports[members[0]].To
				for _, pid := range members {
					if c.Owner[pid] != u || c.Ports[pid].To != v {
						t.Fatalf("group %d mixes node pairs", g)
					}
					if c.GroupOf[pid] != int32(g) {
						t.Fatalf("port %d GroupOf mismatch", pid)
					}
				}
				if got := c.GroupTo(u, v); got != int32(g) {
					t.Fatalf("GroupTo(%d,%d) = %d, want %d", u, v, got, g)
				}
				covered += len(members)
			}
			if covered != c.NumPorts() {
				t.Fatalf("groups cover %d ports, want %d", covered, c.NumPorts())
			}
		})
	}
}

// TestBFSMatchesTopo checks the CSR BFS against the reference topo BFS.
func TestBFSMatchesTopo(t *testing.T) {
	for name, n := range tableIINetworks() {
		c := Compile(n)
		srcs := []topo.NodeID{0, n.Endpoints[0], n.Endpoints[len(n.Endpoints)-1]}
		for _, src := range srcs {
			want := topo.BFSFrom(n, src)
			got := c.BFSFrom(src)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: BFS from %d differs at node %d: %d vs %d", name, src, i, got[i], want[i])
				}
			}
		}
	}
}

// TestOfCaches checks that the network-keyed compilation cache returns the
// same Compiled for repeated calls.
func TestOfCaches(t *testing.T) {
	n := topo.NewTorus2D(4, 4, 2, 2, topo.DefaultLinkParams())
	if Of(n) != Of(n) {
		t.Fatal("Of did not cache")
	}
}
