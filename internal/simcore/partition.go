package simcore

// Partition splits the compiled nodes into contiguous ranges for the
// sharded-parallel packet engine. Because node ranges are contiguous and
// Ports is CSR-ordered by node, shard s also owns the contiguous port
// range Ports[PortOff[Bounds[s]]:PortOff[Bounds[s+1]]] — all mutable
// per-channel simulator state of a shard is a contiguous slice, touched
// by exactly one worker.
type Partition struct {
	NumShards int
	// Bounds has NumShards+1 entries; shard s owns nodes
	// [Bounds[s], Bounds[s+1]).
	Bounds []int32
	// NodeShard[u] is the shard owning node u.
	NodeShard []int32
}

// PartitionNodes splits the nodes into nShards contiguous ranges balanced
// by simulation weight (1 + port degree, a proxy for per-node event
// volume). nShards is clamped to [1, NumNodes] so every shard is
// non-empty; the result depends only on the compiled network and the
// clamped shard count, never on runtime conditions, which the parallel
// engine's determinism contract relies on.
func (c *Compiled) PartitionNodes(nShards int) *Partition {
	nn := c.NumNodes()
	if nShards < 1 {
		nShards = 1
	}
	if nShards > nn {
		nShards = nn
	}
	p := &Partition{
		NumShards: nShards,
		Bounds:    make([]int32, nShards+1),
		NodeShard: make([]int32, nn),
	}
	total := int64(len(c.Ports) + nn)
	var acc int64
	sh := 0
	for u := 0; u < nn; u++ {
		p.NodeShard[u] = int32(sh)
		acc += 1 + int64(c.PortOff[u+1]-c.PortOff[u])
		// Cut after u once this shard reached its quota — or must cut, when
		// the remaining nodes are only just enough for the remaining shards.
		rem := nShards - 1 - sh
		if rem > 0 && nn-(u+1) >= rem && (acc >= int64(sh+1)*total/int64(nShards) || nn-(u+1) == rem) {
			sh++
			p.Bounds[sh] = int32(u + 1)
		}
	}
	p.Bounds[nShards] = int32(nn)
	return p
}
