// Package routing computes minimal adaptive routes on the topologies built
// by internal/topo. For every destination it derives the all-shortest-path
// DAG by breadth-first search; at each node the candidate next hops are the
// ports whose peer is strictly closer to the destination. The simulator
// picks among candidates adaptively (least-loaded output), which yields the
// paper's routing behaviour on every topology:
//
//   - fat trees: up/down routing emerges from shortest paths,
//   - HxMesh: on-board torus adaptivity, closest-edge exit, intermediate
//     boards for cross-row-cross-column traffic (§IV-C),
//   - torus: dimension-adaptive minimal routing,
//   - Dragonfly: minimal (direct) routing, with an optional Valiant detour
//     for non-minimal load balancing.
//
// Deadlock freedom in the credit-based simulator uses the paper's virtual
// channel policy (§IV-C3): the VC is incremented every time a packet leaves
// a board and enters a dimension network, requiring at most three VCs.
package routing

import (
	"hammingmesh/internal/topo"
)

// MaxVCs is the number of virtual channels required by the HxMesh VC
// escalation policy (§IV-C3): a packet crosses at most two fat trees.
const MaxVCs = 3

// Table holds per-destination distance vectors, computed lazily and cached.
type Table struct {
	Net  *topo.Network
	dist map[topo.NodeID][]int32
}

// NewTable creates a routing table for the network.
func NewTable(n *topo.Network) *Table {
	return &Table{Net: n, dist: make(map[topo.NodeID][]int32)}
}

// Dist returns the hop-distance vector toward dst (computing it on first
// use). dist[v] is the number of links from v to dst.
func (t *Table) Dist(dst topo.NodeID) []int32 {
	if d, ok := t.dist[dst]; ok {
		return d
	}
	d := topo.BFSFrom(t.Net, dst)
	t.dist[dst] = d
	return d
}

// Precompute fills the cache for the given destinations (useful before
// timing-sensitive simulation loops).
func (t *Table) Precompute(dsts []topo.NodeID) {
	for _, d := range dsts {
		t.Dist(d)
	}
}

// NextPorts appends to buf the indexes of ports on node `at` that lie on a
// shortest path to dst and returns the extended slice. It returns buf
// unchanged if at == dst.
func (t *Table) NextPorts(at, dst topo.NodeID, buf []int) []int {
	if at == dst {
		return buf
	}
	d := t.Dist(dst)
	want := d[at] - 1
	for i, p := range t.Net.Nodes[at].Ports {
		if d[p.To] == want {
			buf = append(buf, i)
		}
	}
	return buf
}

// PathLen returns the shortest path length in links between two nodes.
func (t *Table) PathLen(a, b topo.NodeID) int { return int(t.Dist(b)[a]) }

// SamplePath returns one shortest path (as node ids, inclusive of both
// ends) selected deterministically by the seed among the shortest-path DAG
// branches. Used by the flow-level solver to enumerate path diversity.
func (t *Table) SamplePath(src, dst topo.NodeID, seed uint64) []topo.NodeID {
	d := t.Dist(dst)
	if d[src] < 0 {
		return nil
	}
	path := make([]topo.NodeID, 0, d[src]+1)
	path = append(path, src)
	at := src
	rng := seed
	for at != dst {
		want := d[at] - 1
		// Count candidates, then pick the rng-th.
		n := 0
		for _, p := range t.Net.Nodes[at].Ports {
			if d[p.To] == want {
				n++
			}
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		pick := int(rng>>33) % n
		for _, p := range t.Net.Nodes[at].Ports {
			if d[p.To] == want {
				if pick == 0 {
					at = p.To
					break
				}
				pick--
			}
		}
		path = append(path, at)
	}
	return path
}

// VCPolicy decides the virtual channel of a packet after it traverses a
// hop. The HxMesh policy (§IV-C3) increments the VC whenever the packet
// jumps from a board into a dimension network (an endpoint-to-switch hop),
// so board-internal north-last routing and in-tree up/down routing each
// stay within one VC and at most three VCs are used.
func VCPolicy(n *topo.Network, from, to topo.NodeID, vc int8) int8 {
	if n.Nodes[from].Kind == topo.Endpoint && n.Nodes[to].Kind == topo.Switch {
		if vc < MaxVCs-1 {
			return vc + 1
		}
		return vc
	}
	return vc
}

// Valiant holds an optional non-minimal routing decision: route first
// minimally to Mid, then minimally to the destination. Used for UGAL-style
// load balancing on Dragonfly (the paper uses UGAL-L there).
type Valiant struct {
	Mid topo.NodeID
}

// NextPortsVia routes toward mid until reached, then toward dst.
func (t *Table) NextPortsVia(at, mid, dst topo.NodeID, reachedMid bool, buf []int) ([]int, bool) {
	if !reachedMid && at == mid {
		reachedMid = true
	}
	if reachedMid {
		return t.NextPorts(at, dst, buf), true
	}
	return t.NextPorts(at, mid, buf), false
}
