// Package routing computes minimal adaptive routes on the topologies built
// by internal/topo. For every destination it derives the all-shortest-path
// DAG by breadth-first search; at each node the candidate next hops are the
// ports whose peer is strictly closer to the destination. The simulator
// picks among candidates adaptively (least-loaded output), which yields the
// paper's routing behaviour on every topology:
//
//   - fat trees: up/down routing emerges from shortest paths,
//   - HxMesh: on-board torus adaptivity, closest-edge exit, intermediate
//     boards for cross-row-cross-column traffic (§IV-C),
//   - torus: dimension-adaptive minimal routing,
//   - Dragonfly: minimal (direct) routing, with an optional Valiant detour
//     for non-minimal load balancing.
//
// Deadlock freedom in the credit-based simulator uses the paper's virtual
// channel policy (§IV-C3): the VC is incremented every time a packet leaves
// a board and enters a dimension network, requiring at most three VCs.
//
// Tables operate on the compiled flat-array network (internal/simcore):
// distance vectors are cached in a dense per-node slice, so the per-packet
// lookup in the simulator's hot loop is two array indexes. A Table is safe
// for concurrent use — vectors are published through atomic pointers, which
// lets the experiment runner share one table across parallel simulations.
//
// Degraded fabrics (internal/faults) are first-class: NewTableMask builds a
// table over a port-mask overlay, recomputing distance vectors and
// candidate DAGs as if masked ports did not exist, and lookups that hit an
// unreachable destination return a typed *ErrUnreachable instead of
// silently producing empty candidate sets or indexing a -1 distance.
package routing

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// ErrUnreachable reports that no route exists between two nodes on the
// (possibly degraded) fabric. Callers match it with errors.As.
type ErrUnreachable struct {
	From, To topo.NodeID
}

func (e *ErrUnreachable) Error() string {
	return fmt.Sprintf("routing: node %d unreachable from node %d", e.To, e.From)
}

// MaxVCs is the number of virtual channels required by the HxMesh VC
// escalation policy (§IV-C3): a packet crosses at most two fat trees.
const MaxVCs = 3

// Table holds per-destination distance vectors and candidate-port lists,
// computed lazily and cached in dense slices indexed by destination node
// id. Construction is lock-free: workers that race on the same cold
// destination each compute the vector and the first CompareAndSwap wins
// (duplicate work is bounded and rare), so distinct destinations build
// concurrently during parallel sweeps.
type Table struct {
	C *simcore.Compiled

	// mask is the port-mask overlay of a degraded fabric (nil = pristine).
	// Distance vectors and candidate DAGs are computed as if masked ports
	// did not exist, so every consumer of the table routes around faults.
	mask simcore.PortMask

	dist []atomic.Pointer[[]int32]
	cand []atomic.Pointer[candVec]

	// candBytes approximates the memory held by cached candidate DAGs; the
	// path sampler stops *adding* DAGs beyond candBudget (Candidates keeps
	// building unconditionally — the packet simulator requires them).
	candBytes  atomic.Int64
	candBudget int64
}

// DefaultCandBudget is the candidate-DAG cache memory (in bytes) that path
// sampling is allowed to grow per table, snapshot into each Table at
// construction (see Table.SetCandBudget). Sampling walks a cached DAG in
// O(1) per hop; past the budget it falls back to an adjacency scan that
// yields bit-identical paths, so on 16k-endpoint clusters — where DAGs for
// every destination would cost several GiB — memory stays bounded while
// small tables get the fast path for free.
const DefaultCandBudget = int64(512 << 20)

// candVec is the compiled shortest-path DAG toward one destination: the
// minimal candidate output ports of node u are
// ports[off[u]:off[u+1]] (global port ids == channel ids).
type candVec struct {
	off   []int32
	ports []int32
}

// NewTable creates a routing table over a compiled network.
func NewTable(c *simcore.Compiled) *Table { return NewTableMask(c, nil) }

// NewTableMask creates a routing table over a degraded fabric: ports set in
// the mask do not exist for route computation. A nil mask is the pristine
// fabric. The mask must not change after the table is created (a new fault
// scenario is a new table).
func NewTableMask(c *simcore.Compiled, mask simcore.PortMask) *Table {
	return &Table{
		C:          c,
		mask:       mask,
		dist:       make([]atomic.Pointer[[]int32], c.NumNodes()),
		cand:       make([]atomic.Pointer[candVec], c.NumNodes()),
		candBudget: DefaultCandBudget,
	}
}

// SetCandBudget overrides this table's candidate-DAG cache budget (bytes);
// see DefaultCandBudget. Call it right after construction, before the
// table is shared across goroutines.
func (t *Table) SetCandBudget(bytes int64) { t.candBudget = bytes }

// NewTableNet is a convenience constructor from a raw network (compiled via
// the simcore cache).
func NewTableNet(n *topo.Network) *Table { return NewTable(simcore.Of(n)) }

// Mask returns the table's port-mask overlay (nil when pristine). Shared,
// read-only.
func (t *Table) Mask() simcore.PortMask { return t.mask }

// Dist returns the hop-distance vector toward dst (computing it on first
// use). dist[v] is the number of links from v to dst, or -1 when dst is
// unreachable from v on the (possibly degraded) fabric.
func (t *Table) Dist(dst topo.NodeID) []int32 {
	if p := t.dist[dst].Load(); p != nil {
		return *p
	}
	d := t.C.BFSFromMask(dst, t.mask)
	if t.dist[dst].CompareAndSwap(nil, &d) {
		return d
	}
	return *t.dist[dst].Load()
}

// Reachable reports whether dst is reachable from src.
func (t *Table) Reachable(src, dst topo.NodeID) bool {
	return src == dst || t.Dist(dst)[src] >= 0
}

// Candidates returns the global port ids (channel ids) of the minimal
// candidate outputs of node `at` toward dst, in port order. The
// per-destination DAG is compiled once from the distance vector and cached,
// so the per-packet cost in the simulator's hot loop is slicing a flat
// array. The slice is shared and must not be mutated.
func (t *Table) Candidates(at int32, dst topo.NodeID) []int32 {
	cv := t.cand[dst].Load()
	if cv == nil {
		cv = t.buildCand(dst)
	}
	return cv.ports[cv.off[at]:cv.off[at+1]]
}

// CandidatesErr is Candidates with explicit unreachability: when node `at`
// has no minimal candidate toward dst (dst is cut off on the degraded
// fabric) it returns a typed *ErrUnreachable instead of an empty slice the
// caller would have to interpret.
func (t *Table) CandidatesErr(at int32, dst topo.NodeID) ([]int32, error) {
	cands := t.Candidates(at, dst)
	if len(cands) == 0 && int32(dst) != at {
		return nil, &ErrUnreachable{From: topo.NodeID(at), To: dst}
	}
	return cands, nil
}

func (t *Table) buildCand(dst topo.NodeID) *candVec {
	d := t.Dist(dst)
	c := t.C
	cv := &candVec{off: make([]int32, c.NumNodes()+1)}
	cv.ports = make([]int32, 0, c.NumPorts()/2)
	for u := 0; u < c.NumNodes(); u++ {
		cv.off[u] = int32(len(cv.ports))
		if int32(u) == int32(dst) || d[u] < 0 {
			continue
		}
		want := d[u] - 1
		off, end := c.PortRange(int32(u))
		for pid := off; pid < end; pid++ {
			if t.mask.Get(pid) {
				continue
			}
			if d[c.Ports[pid].To] == want {
				cv.ports = append(cv.ports, pid)
			}
		}
	}
	cv.off[c.NumNodes()] = int32(len(cv.ports))
	if t.cand[dst].CompareAndSwap(nil, cv) {
		t.candBytes.Add(4 * int64(len(cv.off)+len(cv.ports)))
		return cv
	}
	return t.cand[dst].Load()
}

// MemoryBytes approximates the memory retained by the table's lazily
// built caches: four bytes per entry of every cached distance vector plus
// the candidate-DAG bytes already tracked against the sampling budget.
// The value grows as the table warms, so callers that budget table memory
// (runner.Pool's cluster cache) should re-estimate rather than snapshot.
// Safe for concurrent use.
func (t *Table) MemoryBytes() int64 {
	built := 0
	for i := range t.dist {
		if t.dist[i].Load() != nil {
			built++
		}
	}
	return 4*int64(built)*int64(t.C.NumNodes()) + t.candBytes.Load()
}

// candUnderBudget reports whether one more candidate DAG fits the table's
// budget, using the worst-case per-destination footprint.
func (t *Table) candUnderBudget() bool {
	estimate := 4 * int64(t.C.NumNodes()+1+t.C.NumPorts()/2)
	return t.candBytes.Load()+estimate <= t.candBudget
}

// Precompute fills the cache for the given destinations (useful before
// timing-sensitive simulation loops or before sharing the table across
// runner workers).
func (t *Table) Precompute(dsts []topo.NodeID) {
	for _, d := range dsts {
		t.Dist(d)
	}
}

// PrecomputeParallel warms the distance vectors — and, while the cache
// fits the candidate budget, the candidate DAGs — of the given destinations, fanned
// over the given number of goroutines. Vectors build lock-free (distinct
// destinations never contend), so warming scales with cores; on the
// 16k-endpoint clusters the serial warm-up dominates the first flow-level
// solve and this cuts it by the worker count — and pre-warming avoids the
// bounded-but-wasteful duplicate builds that racing cold sweep jobs would
// otherwise perform.
func (t *Table) PrecomputeParallel(dsts []topo.NodeID, workers int) {
	if workers > len(dsts) {
		workers = len(dsts)
	}
	if workers < 1 {
		workers = 1
	}
	warm := func(d topo.NodeID) {
		if t.cand[d].Load() == nil && t.candUnderBudget() {
			t.buildCand(d) // builds the distance vector as a side effect
		} else {
			t.Dist(d)
		}
	}
	if workers == 1 {
		for _, d := range dsts {
			warm(d)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(dsts)) {
					return
				}
				warm(dsts[i])
			}
		}()
	}
	wg.Wait()
}

// NextPorts appends to buf the node-local indexes of ports on node `at`
// that lie on a shortest path to dst and returns the extended slice. It
// returns buf unchanged if at == dst; see NextPortsErr for explicit
// unreachability reporting.
func (t *Table) NextPorts(at, dst topo.NodeID, buf []int) []int {
	if at == dst {
		return buf
	}
	d := t.Dist(dst)
	if d[at] < 0 {
		return buf
	}
	want := d[at] - 1
	off := t.C.PortID(int32(at), 0)
	for i, p := range t.C.PortsOf(int32(at)) {
		if t.mask.Get(off + int32(i)) {
			continue
		}
		if d[p.To] == want {
			buf = append(buf, i)
		}
	}
	return buf
}

// NextPortsErr is NextPorts with a typed *ErrUnreachable when dst cannot be
// reached from `at` (historically this case fell through to a -1 distance
// and an empty port list the caller had to guess about).
func (t *Table) NextPortsErr(at, dst topo.NodeID, buf []int) ([]int, error) {
	if at != dst && t.Dist(dst)[at] < 0 {
		return buf, &ErrUnreachable{From: at, To: dst}
	}
	return t.NextPorts(at, dst, buf), nil
}

// PathLen returns the shortest path length in links between two nodes, or
// -1 when b is unreachable from a.
func (t *Table) PathLen(a, b topo.NodeID) int { return int(t.Dist(b)[a]) }

// SamplePath returns one shortest path (as node ids, inclusive of both
// ends) selected deterministically by the seed among the shortest-path DAG
// branches, or nil when dst is unreachable (see SamplePathErr). Used by
// the flow-level solver to enumerate path diversity.
func (t *Table) SamplePath(src, dst topo.NodeID, seed uint64) []topo.NodeID {
	path, _ := t.SamplePathErr(src, dst, seed)
	return path
}

// SamplePathErr is SamplePath with a typed *ErrUnreachable instead of a nil
// path when no route exists.
func (t *Table) SamplePathErr(src, dst topo.NodeID, seed uint64) ([]topo.NodeID, error) {
	return t.AppendSamplePath(nil, src, dst, seed)
}

// AppendSamplePath is SamplePathErr appending into buf (usually buf[:0] of
// a buffer from a previous sample), so hot path-sampling loops — the
// flow-level solver draws PathsPerFlow samples per flow per shift — reuse
// one backing array instead of allocating every path. On error buf may hold
// a partial walk; only the returned slice is meaningful.
func (t *Table) AppendSamplePath(buf []topo.NodeID, src, dst topo.NodeID, seed uint64) ([]topo.NodeID, error) {
	path, _, err := t.AppendSamplePathPorts(buf, nil, src, dst, seed)
	return path, err
}

// AppendSamplePathPorts is AppendSamplePath that also appends the global
// port id chosen at every hop into portBuf (skipped when portBuf is nil),
// so callers that need the traversed channels — the flow-level solver maps
// each hop to its parallel-link group — avoid re-scanning the adjacency
// for every path edge. The walk, the rng draw sequence and the chosen
// branches are identical to SamplePath for equal seeds.
func (t *Table) AppendSamplePathPorts(buf []topo.NodeID, portBuf []int32, src, dst topo.NodeID, seed uint64) ([]topo.NodeID, []int32, error) {
	d := t.Dist(dst)
	if d[src] < 0 {
		return nil, portBuf, &ErrUnreachable{From: src, To: dst}
	}
	// Prefer walking the precompiled candidate DAG: buildCand enumerates,
	// per node, exactly the unmasked ports whose peer is one hop closer to
	// dst, in port order — the same candidate set and order the adjacency
	// scan below produces, at one slice index per hop. The DAG is built on
	// first sample while the cache fits the table's budget; beyond it (16k-dst
	// tables) the scan fallback keeps memory bounded with identical paths.
	cv := t.cand[dst].Load()
	if cv == nil && t.candUnderBudget() {
		cv = t.buildCand(dst)
	}
	path := append(buf, src)
	at := int32(src)
	rng := seed
	mask := t.mask
	ports := t.C.Ports
	// Candidate buffer for the scan fallback: the minimal fan-out is the
	// node radix, so a fixed stack buffer covers all but degenerate nodes,
	// which rescan for the picked candidate.
	var cbuf [64]int32
	for at != int32(dst) {
		var n int
		var cands []int32
		if cv != nil {
			cands = cv.ports[cv.off[at]:cv.off[at+1]]
			n = len(cands)
		} else {
			// Collect unmasked minimal ports in port order. Masked ports
			// are not candidates even when their peer is at the right
			// distance (the peer may be reachable through a live port).
			want := d[at] - 1
			off, end := t.C.PortRange(at)
			for pid := off; pid < end; pid++ {
				if !mask.Get(pid) && d[ports[pid].To] == want {
					if n < len(cbuf) {
						cbuf[n] = pid
					}
					n++
				}
			}
			cands = cbuf[:min(n, len(cbuf))]
		}
		if n == 0 {
			// Unreachable mid-walk cannot happen when the distance vector
			// and the mask agree; guard anyway so a future inconsistency
			// surfaces as an error, not a modulo-by-zero panic.
			return nil, portBuf, &ErrUnreachable{From: topo.NodeID(at), To: dst}
		}
		rng = rng*6364136223846793005 + 1442695040888963407
		pick := int(rng>>33) % n
		var chosen int32
		if pick < len(cands) {
			chosen = cands[pick]
		} else {
			// Wider-than-buffer fan-out in scan mode: rescan for the
			// pick-th candidate.
			want := d[at] - 1
			off, end := t.C.PortRange(at)
			for pid := off; pid < end; pid++ {
				if !mask.Get(pid) && d[ports[pid].To] == want {
					if pick == 0 {
						chosen = pid
						break
					}
					pick--
				}
			}
		}
		at = ports[chosen].To
		path = append(path, topo.NodeID(at))
		if portBuf != nil {
			portBuf = append(portBuf, chosen)
		}
	}
	return path, portBuf, nil
}

// VCPolicy decides the virtual channel of a packet after it traverses a
// hop. The HxMesh policy (§IV-C3) increments the VC whenever the packet
// jumps from a board into a dimension network (an endpoint-to-switch hop),
// so board-internal north-last routing and in-tree up/down routing each
// stay within one VC and at most three VCs are used.
func VCPolicy(c *simcore.Compiled, from, to int32, vc int8) int8 {
	if c.Kind[from] == topo.Endpoint && c.Kind[to] == topo.Switch {
		if vc < MaxVCs-1 {
			return vc + 1
		}
		return vc
	}
	return vc
}

// Valiant holds an optional non-minimal routing decision: route first
// minimally to Mid, then minimally to the destination. Used for UGAL-style
// load balancing on Dragonfly (the paper uses UGAL-L there).
type Valiant struct {
	Mid topo.NodeID
}

// NextPortsVia routes toward mid until reached, then toward dst.
func (t *Table) NextPortsVia(at, mid, dst topo.NodeID, reachedMid bool, buf []int) ([]int, bool) {
	if !reachedMid && at == mid {
		reachedMid = true
	}
	if reachedMid {
		return t.NextPorts(at, dst, buf), true
	}
	return t.NextPorts(at, mid, buf), false
}
