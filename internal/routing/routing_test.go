package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hammingmesh/internal/topo"
)

func lp() topo.LinkParams { return topo.DefaultLinkParams() }

func TestNextPortsDecreaseDistance(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := h.Endpoints[rng.Intn(len(h.Endpoints))]
		dst := h.Endpoints[rng.Intn(len(h.Endpoints))]
		if src == dst {
			continue
		}
		d := tab.Dist(dst)
		ports := tab.NextPorts(src, dst, nil)
		if len(ports) == 0 {
			t.Fatalf("no next ports from %d to %d", src, dst)
		}
		for _, pi := range ports {
			peer := h.Nodes[src].Ports[pi].To
			if d[peer] != d[src]-1 {
				t.Fatalf("port %d does not decrease distance", pi)
			}
		}
	}
}

func TestSamplePathIsShortestWalk(t *testing.T) {
	nets := []*topo.Network{
		topo.NewHxMesh(2, 2, 4, 4, lp()).Network,
		topo.NewFatTree(128, topo.NonblockingTree(), lp()),
		topo.NewTorus2D(8, 8, 2, 2, lp()),
		topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 5, LP: lp()}),
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range nets {
		tab := NewTableNet(n)
		for trial := 0; trial < 50; trial++ {
			src := n.Endpoints[rng.Intn(len(n.Endpoints))]
			dst := n.Endpoints[rng.Intn(len(n.Endpoints))]
			path := tab.SamplePath(src, dst, uint64(trial))
			if src == dst {
				if len(path) != 1 {
					t.Fatalf("%s: self path length %d", n.Name, len(path))
				}
				continue
			}
			if len(path) != tab.PathLen(src, dst)+1 {
				t.Fatalf("%s: path length %d != shortest %d", n.Name, len(path)-1, tab.PathLen(src, dst))
			}
			// Consecutive nodes must be adjacent.
			for i := 0; i+1 < len(path); i++ {
				adj := false
				for _, p := range n.Nodes[path[i]].Ports {
					if p.To == path[i+1] {
						adj = true
						break
					}
				}
				if !adj {
					t.Fatalf("%s: path nodes %d,%d not adjacent", n.Name, path[i], path[i+1])
				}
			}
		}
	}
}

func TestHxMeshIntermediateBoardPath(t *testing.T) {
	// Cross-row cross-column traffic must pass through an intermediate
	// board's accelerators or through two dimension networks (§IV-C2).
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	src := h.Accel(0, 0) // board (0,0)
	dst := h.Accel(7, 7) // board (3,3)
	path := tab.SamplePath(src, dst, 3)
	switches := 0
	for _, id := range path {
		if h.Nodes[id].Kind == topo.Switch {
			switches++
		}
	}
	if switches != 2 {
		t.Errorf("cross-row-column path crosses %d dimension networks, want 2 (path %v)", switches, path)
	}
}

func TestVCPolicyBounded(t *testing.T) {
	// Property: along any sampled path, the VC never exceeds MaxVCs-1 and
	// never decreases.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	f := func(s8, d8 uint8, seed uint64) bool {
		src := h.Endpoints[int(s8)%len(h.Endpoints)]
		dst := h.Endpoints[int(d8)%len(h.Endpoints)]
		path := tab.SamplePath(src, dst, seed)
		vc := int8(0)
		for i := 0; i+1 < len(path); i++ {
			nvc := VCPolicy(tab.C, int32(path[i]), int32(path[i+1]), vc)
			if nvc < vc || nvc >= MaxVCs {
				return false
			}
			vc = nvc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNextPortsVia(t *testing.T) {
	n := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 5, LP: lp()})
	tab := NewTableNet(n)
	src, mid, dst := n.Endpoints[0], n.Endpoints[20], n.Endpoints[39]
	// Walk hop by hop via mid; total hops must equal d(src,mid)+d(mid,dst).
	at, reached := src, false
	hops := 0
	for at != dst && hops < 100 {
		var ports []int
		ports, reached = tab.NextPortsVia(at, mid, dst, reached, nil)
		if len(ports) == 0 {
			t.Fatal("stuck")
		}
		at = n.Nodes[at].Ports[ports[0]].To
		hops++
	}
	want := tab.PathLen(src, mid) + tab.PathLen(mid, dst)
	if hops != want {
		t.Errorf("valiant walk took %d hops, want %d", hops, want)
	}
}

func TestPrecompute(t *testing.T) {
	h := topo.NewHxMesh(1, 1, 4, 4, lp())
	tab := NewTableNet(h.Network)
	tab.Precompute(h.Endpoints)
	cached := 0
	for i := range tab.dist {
		if tab.dist[i].Load() != nil {
			cached++
		}
	}
	if cached != len(h.Endpoints) {
		t.Errorf("precomputed %d vectors, want %d", cached, len(h.Endpoints))
	}
}
