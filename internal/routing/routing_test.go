package routing

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

func lp() topo.LinkParams { return topo.DefaultLinkParams() }

func TestNextPortsDecreaseDistance(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := h.Endpoints[rng.Intn(len(h.Endpoints))]
		dst := h.Endpoints[rng.Intn(len(h.Endpoints))]
		if src == dst {
			continue
		}
		d := tab.Dist(dst)
		ports := tab.NextPorts(src, dst, nil)
		if len(ports) == 0 {
			t.Fatalf("no next ports from %d to %d", src, dst)
		}
		for _, pi := range ports {
			peer := h.Nodes[src].Ports[pi].To
			if d[peer] != d[src]-1 {
				t.Fatalf("port %d does not decrease distance", pi)
			}
		}
	}
}

func TestSamplePathIsShortestWalk(t *testing.T) {
	nets := []*topo.Network{
		topo.NewHxMesh(2, 2, 4, 4, lp()).Network,
		topo.NewFatTree(128, topo.NonblockingTree(), lp()),
		topo.NewTorus2D(8, 8, 2, 2, lp()),
		topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 5, LP: lp()}),
	}
	rng := rand.New(rand.NewSource(7))
	for _, n := range nets {
		tab := NewTableNet(n)
		for trial := 0; trial < 50; trial++ {
			src := n.Endpoints[rng.Intn(len(n.Endpoints))]
			dst := n.Endpoints[rng.Intn(len(n.Endpoints))]
			path := tab.SamplePath(src, dst, uint64(trial))
			if src == dst {
				if len(path) != 1 {
					t.Fatalf("%s: self path length %d", n.Name, len(path))
				}
				continue
			}
			if len(path) != tab.PathLen(src, dst)+1 {
				t.Fatalf("%s: path length %d != shortest %d", n.Name, len(path)-1, tab.PathLen(src, dst))
			}
			// Consecutive nodes must be adjacent.
			for i := 0; i+1 < len(path); i++ {
				adj := false
				for _, p := range n.Nodes[path[i]].Ports {
					if p.To == path[i+1] {
						adj = true
						break
					}
				}
				if !adj {
					t.Fatalf("%s: path nodes %d,%d not adjacent", n.Name, path[i], path[i+1])
				}
			}
		}
	}
}

func TestHxMeshIntermediateBoardPath(t *testing.T) {
	// Cross-row cross-column traffic must pass through an intermediate
	// board's accelerators or through two dimension networks (§IV-C2).
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	src := h.Accel(0, 0) // board (0,0)
	dst := h.Accel(7, 7) // board (3,3)
	path := tab.SamplePath(src, dst, 3)
	switches := 0
	for _, id := range path {
		if h.Nodes[id].Kind == topo.Switch {
			switches++
		}
	}
	if switches != 2 {
		t.Errorf("cross-row-column path crosses %d dimension networks, want 2 (path %v)", switches, path)
	}
}

func TestVCPolicyBounded(t *testing.T) {
	// Property: along any sampled path, the VC never exceeds MaxVCs-1 and
	// never decreases.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	tab := NewTableNet(h.Network)
	f := func(s8, d8 uint8, seed uint64) bool {
		src := h.Endpoints[int(s8)%len(h.Endpoints)]
		dst := h.Endpoints[int(d8)%len(h.Endpoints)]
		path := tab.SamplePath(src, dst, seed)
		vc := int8(0)
		for i := 0; i+1 < len(path); i++ {
			nvc := VCPolicy(tab.C, int32(path[i]), int32(path[i+1]), vc)
			if nvc < vc || nvc >= MaxVCs {
				return false
			}
			vc = nvc
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNextPortsVia(t *testing.T) {
	n := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 5, LP: lp()})
	tab := NewTableNet(n)
	src, mid, dst := n.Endpoints[0], n.Endpoints[20], n.Endpoints[39]
	// Walk hop by hop via mid; total hops must equal d(src,mid)+d(mid,dst).
	at, reached := src, false
	hops := 0
	for at != dst && hops < 100 {
		var ports []int
		ports, reached = tab.NextPortsVia(at, mid, dst, reached, nil)
		if len(ports) == 0 {
			t.Fatal("stuck")
		}
		at = n.Nodes[at].Ports[ports[0]].To
		hops++
	}
	want := tab.PathLen(src, mid) + tab.PathLen(mid, dst)
	if hops != want {
		t.Errorf("valiant walk took %d hops, want %d", hops, want)
	}
}

func TestPrecompute(t *testing.T) {
	h := topo.NewHxMesh(1, 1, 4, 4, lp())
	tab := NewTableNet(h.Network)
	tab.Precompute(h.Endpoints)
	cached := 0
	for i := range tab.dist {
		if tab.dist[i].Load() != nil {
			cached++
		}
	}
	if cached != len(h.Endpoints) {
		t.Errorf("precomputed %d vectors, want %d", cached, len(h.Endpoints))
	}
}

func TestMaskedTableRoutesAroundFailures(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	c := simcore.Of(h.Network)
	// Fail one cable (both directions) of endpoint 0 and verify routes
	// avoid it while everything stays reachable.
	pid := c.PortID(0, 0)
	mask := simcore.NewPortMask(c.NumPorts())
	mask.Set(pid)
	mask.Set(c.Ports[pid].Rev)
	tab := NewTableMask(c, mask)
	for _, dst := range h.Endpoints {
		if dst == 0 {
			continue
		}
		cands, err := tab.CandidatesErr(0, dst)
		if err != nil {
			t.Fatalf("dst %d unreachable after one link failure: %v", dst, err)
		}
		for _, ci := range cands {
			if ci == pid {
				t.Fatalf("candidates toward %d include masked port %d", dst, pid)
			}
		}
	}
	if got := tab.SamplePath(0, h.Endpoints[5], 3); got == nil {
		t.Fatal("sample path nil on reachable pair")
	}
}

func TestUnreachableIsTypedError(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	c := simcore.Of(h.Network)
	// Mask every port of endpoint 7 in both directions: it is cut off.
	mask := simcore.NewPortMask(c.NumPorts())
	off, end := c.PortRange(7)
	for pid := off; pid < end; pid++ {
		mask.Set(pid)
		mask.Set(c.Ports[pid].Rev)
	}
	tab := NewTableMask(c, mask)
	if tab.Reachable(0, 7) {
		t.Fatal("cut-off endpoint reported reachable")
	}
	var unreach *ErrUnreachable
	if _, err := tab.CandidatesErr(0, 7); !errors.As(err, &unreach) {
		t.Fatalf("CandidatesErr = %v, want *ErrUnreachable", err)
	}
	if unreach.From != 0 || unreach.To != 7 {
		t.Fatalf("error carries %d->%d, want 0->7", unreach.From, unreach.To)
	}
	if _, err := tab.SamplePathErr(0, 7, 1); !errors.As(err, &unreach) {
		t.Fatalf("SamplePathErr = %v, want *ErrUnreachable", err)
	}
	if _, err := tab.NextPortsErr(0, 7, nil); !errors.As(err, &unreach) {
		t.Fatalf("NextPortsErr = %v, want *ErrUnreachable", err)
	}
	if got := tab.PathLen(0, 7); got != -1 {
		t.Fatalf("PathLen = %d, want -1", got)
	}
}

// TestSamplePathScanMatchesDAG pins the sampler's two modes against each
// other: the candidate-DAG walk (tables under their candidate budget) and the
// adjacency-scan fallback (tables over it) must produce identical paths
// and port choices for equal seeds, on pristine and masked fabrics —
// that equality is what lets the budget trade memory for speed without
// changing any result.
func TestSamplePathScanMatchesDAG(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	c := simcore.Compile(h.Network)
	mask := simcore.NewPortMask(c.NumPorts())
	mask.Set(c.PortID(int32(c.Switches[0]), 1))
	for _, m := range []simcore.PortMask{nil, mask} {
		dag := NewTableMask(c, m)
		scan := NewTableMask(c, m)
		scan.SetCandBudget(0) // scan table never caches candidate DAGs
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 200; trial++ {
			src := h.Endpoints[rng.Intn(len(h.Endpoints))]
			dst := h.Endpoints[rng.Intn(len(h.Endpoints))]
			if src == dst {
				continue
			}
			seed := rng.Uint64()
			p1, ports1, err1 := dag.AppendSamplePathPorts(nil, []int32{}, src, dst, seed)
			p2, ports2, err2 := scan.AppendSamplePathPorts(nil, []int32{}, src, dst, seed)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("trial %d: err mismatch %v vs %v", trial, err1, err2)
			}
			if err1 != nil {
				continue
			}
			if len(p1) != len(p2) {
				t.Fatalf("trial %d: path len %d vs %d", trial, len(p1), len(p2))
			}
			for i := range p1 {
				if p1[i] != p2[i] {
					t.Fatalf("trial %d hop %d: node %d vs %d", trial, i, p1[i], p2[i])
				}
			}
			for i := range ports1 {
				if ports1[i] != ports2[i] {
					t.Fatalf("trial %d hop %d: port %d vs %d", trial, i, ports1[i], ports2[i])
				}
			}
		}
	}
}

// TestSamplePathScanWideFanout exercises the scan fallback's rescan branch
// for nodes whose minimal fan-out overflows the fixed candidate buffer
// (>64 candidates — trunked links on over-budget tables, the 16k-cluster
// case the budget exists for), pinning it against the DAG walk.
func TestSamplePathScanWideFanout(t *testing.T) {
	n := &topo.Network{Name: "widefanout"}
	src := n.AddNode(topo.Endpoint)
	a := n.AddNode(topo.Switch)
	b := n.AddNode(topo.Switch)
	dst := n.AddNode(topo.Endpoint)
	n.Link(src, a, topo.PCB, 50, 20)
	for i := 0; i < 70; i++ {
		n.Link(a, b, topo.PCB, 50, 20) // 70-wide trunk: fan-out > cbuf
	}
	n.Link(b, dst, topo.PCB, 50, 20)
	c := simcore.Compile(n)
	dag := NewTableMask(c, nil)
	scan := NewTableMask(c, nil)
	scan.SetCandBudget(0)
	sawRescan := false
	for seed := uint64(0); seed < 300; seed++ {
		p1, ports1, err1 := dag.AppendSamplePathPorts(nil, []int32{}, src, dst, seed)
		p2, ports2, err2 := scan.AppendSamplePathPorts(nil, []int32{}, src, dst, seed)
		if err1 != nil || err2 != nil {
			t.Fatalf("seed %d: errors %v / %v", seed, err1, err2)
		}
		if len(p1) != 4 || len(p2) != 4 {
			t.Fatalf("seed %d: path lengths %d/%d, want 4", seed, len(p1), len(p2))
		}
		for i := range ports1 {
			if ports1[i] != ports2[i] {
				t.Fatalf("seed %d hop %d: DAG port %d != scan port %d", seed, i, ports1[i], ports2[i])
			}
		}
		// The trunk hop's pick lands past the 64-entry buffer for ~6/70 of
		// the seeds, driving the rescan branch.
		if trunkPort := ports1[1] - c.PortID(int32(a), 0); trunkPort >= 64 {
			sawRescan = true
		}
	}
	if !sawRescan {
		t.Fatal("no seed exercised the >64-candidate rescan branch")
	}
}
