package runner

import (
	"context"
	"fmt"

	"hammingmesh/internal/core"
	"hammingmesh/internal/faults"
	"hammingmesh/internal/journal"
	"hammingmesh/internal/netsim"
)

// ResiliencePoint is one point of a resilience sweep: delivered alltoall
// bandwidth and makespan at one link-failure fraction, aggregated over the
// seeded trials.
type ResiliencePoint struct {
	// FailFrac is the requested fraction of failed cables.
	FailFrac float64
	// FailedLinks is the mean number of cables actually failed per trial
	// (the connectivity-preserving sampler may fail fewer near the
	// disconnection threshold).
	FailedLinks float64
	// Share is the mean delivered alltoall bandwidth as a share of
	// injection, averaged over trials.
	Share float64
	// MinShare is the worst trial's share.
	MinShare float64
	// Makespan is the mean per-shift makespan in ns.
	Makespan float64
	// Trials is the number of seeded trials aggregated.
	Trials int
}

// resilienceTrial is one (fraction, trial) job's result. Fields are
// exported (and jobs return pointers) so checkpoints can JSON round-trip
// it bit-exactly.
type resilienceTrial struct {
	Share    float64
	Makespan float64
	Links    int
}

// ResilienceFingerprint canonicalizes a resilience sweep's full parameter
// set into a content hash for checkpoint binding (see
// SchedSweepConfig.Fingerprint). Runtime-only Config fields — Metrics,
// Trace — are excluded; they never change results (obs contract).
func ResilienceFingerprint(c *core.Cluster, cfg netsim.Config, bytes int64, fracs []float64, trials, shifts int, seed int64, boards int) string {
	cfg.Metrics = nil
	cfg.Trace = nil
	return journal.KeyOf(struct {
		Kind   string
		Family string
		Nodes  int
		Net    netsim.Config
		Bytes  int64
		Fracs  []float64
		Trials int
		Shifts int
		Seed   int64
		Boards int
	}{
		Kind: "resilience-sweep", Family: string(c.Net.Meta.Family),
		Nodes: c.Comp.NumEndpoints(), Net: cfg, Bytes: bytes, Fracs: fracs,
		Trials: trials, Shifts: shifts, Seed: seed, Boards: boards,
	})
}

// ResilienceSweep measures graceful degradation (§III-E): for each
// link-failure fraction it builds `trials` independent connectivity-
// preserving fault sets — on top of `boards` dead boards when the cluster
// is an HxMesh family — recomputes routing over each degraded fabric, and
// packet-simulates `shifts` sampled alltoall shift iterations among the
// surviving endpoints, returning delivered bandwidth and makespan per
// fraction. Every (fraction, trial) pair is one pool job, so the sweep
// parallelizes across workers while staying deterministic for any worker
// count.
//
// Within one trial seed the failed-link sets are *nested* across fractions,
// so the per-trial bandwidth trajectory measures pure degradation: a
// higher fraction only ever removes paths the lower fraction still had.
// The BFS-validated acceptance sequence is computed once per trial at the
// highest fraction (a first round of pool jobs) and lower fractions replay
// prefixes of it, instead of re-validating every cable per point.
func (p *Pool) ResilienceSweep(c *core.Cluster, cfg netsim.Config, bytes int64, fracs []float64, trials, shifts int, seed int64, boards int) ([]ResiliencePoint, error) {
	return p.ResilienceSweepJournaled(context.Background(), c, cfg, bytes, fracs, trials, shifts, seed, boards, nil)
}

// ResilienceSweepJournaled is ResilienceSweep with cancellation and
// crash-safe resume: with a non-nil checkpoint (opened against
// ResilienceFingerprint) each completed (fraction, trial) result is
// journaled as it finishes and skipped on rerun, and a killed-and-resumed
// sweep aggregates byte-identical points to an uninterrupted one. The
// per-trial connectivity-BFS round is deterministic from the seed and is
// recomputed rather than journaled.
func (p *Pool) ResilienceSweepJournaled(ctx context.Context, c *core.Cluster, cfg netsim.Config, bytes int64, fracs []float64, trials, shifts int, seed int64, boards int, ck *Checkpoint) ([]ResiliencePoint, error) {
	if trials <= 0 {
		trials = 1
	}
	if c.Comp.NumEndpoints() < 2 {
		return nil, fmt.Errorf("runner: need ≥2 endpoints")
	}
	if boards > 0 && c.Hx == nil {
		return nil, fmt.Errorf("runner: board faults need an HxMesh-family cluster, got %s", c.Net.Meta.Family)
	}
	maxFrac := 0.0
	for _, f := range fracs {
		if f > maxFrac {
			maxFrac = f
		}
	}
	inj := c.SimInjectionGBps()

	// Round 1: one job per trial validates the nested failure sequence at
	// the highest fraction (the expensive per-cable connectivity BFS).
	baseBuilder := func(tr int) *faults.Builder {
		b := faults.NewBuilder(c.Comp)
		if boards > 0 {
			b.SampleFailedBoards(c.Hx, boards, JobSeed(seed, tr))
		}
		return b
	}
	seqJobs := make([]Job, trials)
	for tr := 0; tr < trials; tr++ {
		tr := tr
		seqJobs[tr] = Job{
			Name: fmt.Sprintf("resilience-seq-t%d", tr),
			Run: func(ctx *Ctx) (any, error) {
				return baseBuilder(tr).AcceptedConnectedLinks(maxFrac, JobSeed(seed, tr)), nil
			},
		}
	}
	seqResults := p.RunCtx(ctx, seqJobs)
	if err := FirstErr(seqResults); err != nil {
		return nil, err
	}
	seqs := make([][]int32, trials)
	for tr := range seqs {
		seqs[tr] = seqResults[tr].Value.([]int32)
	}

	// Round 2: one job per (fraction, trial) replays a prefix of the
	// trial's accepted sequence (every prefix preserves connectivity) and
	// simulates the sampled shifts.
	jobs := make([]Job, 0, len(fracs)*trials)
	for fi, frac := range fracs {
		for tr := 0; tr < trials; tr++ {
			frac, tr := frac, tr
			jobCfg := cfg
			jobCfg.Seed = JobSeed(cfg.Seed, fi*trials+tr)
			jobCfg.Metrics = p.obsReg
			jobs = append(jobs, Job{
				Name: fmt.Sprintf("resilience-f%.3f-t%d", frac, tr),
				Run: func(ctx *Ctx) (any, error) {
					b := baseBuilder(tr)
					prefix := seqs[tr]
					if n := faults.LinkCount(c.Comp, frac); n < len(prefix) {
						prefix = prefix[:n]
					}
					for _, pid := range prefix {
						b.FailLink(pid)
					}
					fs := b.Build()
					fc := c.WithFaults(fs)
					eps := fc.AliveEndpoints()
					sumShare, sumMk := 0.0, 0.0
					sampled := netsim.SampleShifts(len(eps), shifts, JobSeed(seed, tr)^0x5deece66d)
					// One simulator per job, reset between shifts: queue and
					// accounting arrays are reused across the whole trial.
					sim := netsim.New(fc.Comp, fc.Table, jobCfg)
					for _, shift := range sampled {
						res, err := sim.Run(netsim.ShiftFlows(eps, shift, bytes))
						if err != nil {
							return nil, err
						}
						sumShare += res.AggregateGBps() / float64(len(eps)) / inj
						sumMk += res.Makespan
					}
					n := float64(len(sampled))
					return &resilienceTrial{
						Share:    sumShare / n,
						Makespan: sumMk / n,
						Links:    len(prefix),
					}, nil
				},
			})
		}
	}
	ckKeys := make([]string, len(jobs))
	for i := range jobs {
		ckKeys[i] = jobs[i].Name
	}
	results, err := RunJournaled[resilienceTrial](p, ctx, jobs, ckKeys, ck)
	if err != nil {
		return nil, err
	}
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	points := make([]ResiliencePoint, len(fracs))
	for fi, frac := range fracs {
		pt := ResiliencePoint{FailFrac: frac, Trials: trials}
		for tr := 0; tr < trials; tr++ {
			t := results[fi*trials+tr].Value.(*resilienceTrial)
			pt.Share += t.Share / float64(trials)
			pt.Makespan += t.Makespan / float64(trials)
			pt.FailedLinks += float64(t.Links) / float64(trials)
			if tr == 0 || t.Share < pt.MinShare {
				pt.MinShare = t.Share
			}
		}
		points[fi] = pt
	}
	return points, nil
}
