package runner

import (
	"testing"

	"hammingmesh/internal/netsim"
)

// The acceptance property of the resilience subsystem: delivered alltoall
// bandwidth over a Table II topology is monotonically non-increasing as the
// link-failure fraction rises (fault sets are nested per trial, so more
// failures can only remove paths), and the zero-fault point matches the
// pristine cluster exactly.
func TestResilienceSweepMonotone(t *testing.T) {
	pool := NewSeeded(4, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	fracs := []float64{0, 0.05, 0.10, 0.20}
	pts, err := pool.ResilienceSweep(c, netsim.DefaultConfig(), 32<<10, fracs, 3, 3, 42, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(fracs) {
		t.Fatalf("got %d points, want %d", len(pts), len(fracs))
	}
	for i, pt := range pts {
		t.Logf("frac %.2f: links %.1f share %.4f (min %.4f) makespan %.0f ns",
			pt.FailFrac, pt.FailedLinks, pt.Share, pt.MinShare, pt.Makespan)
		if pt.Trials != 3 {
			t.Fatalf("point %d has %d trials, want 3", i, pt.Trials)
		}
		if i > 0 && pts[i].Share > pts[i-1].Share+1e-9 {
			t.Fatalf("delivered bandwidth increased with more failures: %.6f @%.2f -> %.6f @%.2f",
				pts[i-1].Share, pts[i-1].FailFrac, pts[i].Share, pts[i].FailFrac)
		}
		// Makespan growth is a heuristic, not an invariant: unlike the
		// share (averaged delivered bandwidth), the makespan is the single
		// worst flow, and on near-tied points it jitters below 1% with the
		// engine's canonical event tie-order. Allow that jitter.
		if i > 0 && pt.Makespan < pts[i-1].Makespan*(1-0.01) {
			t.Fatalf("makespan decreased with more failures: %.2f -> %.2f", pts[i-1].Makespan, pt.Makespan)
		}
	}
	if pts[0].FailedLinks != 0 {
		t.Fatalf("zero-fraction point failed %v links", pts[0].FailedLinks)
	}

	// The zero-fault point must be bit-identical to the same sweep run
	// against the pristine cluster directly (fault overlay off).
	jobCfg := netsim.DefaultConfig()
	jobCfg.Seed = JobSeed(jobCfg.Seed, 0)
	eps := c.Comp.Endpoints
	inj := c.SimInjectionGBps()
	sum := 0.0
	shifts := netsim.SampleShifts(len(eps), 3, JobSeed(42, 0)^0x5deece66d)
	for _, shift := range shifts {
		res, err := netsim.New(c.Comp, c.Table, jobCfg).Run(netsim.ShiftFlows(eps, shift, 32<<10))
		if err != nil {
			t.Fatal(err)
		}
		sum += res.AggregateGBps() / float64(len(eps)) / inj
	}
	// Trial 0 of the zero-fraction point ran exactly these shifts; the
	// point aggregates 3 trials, so compare against the recomputed mean of
	// all three.
	want := 0.0
	for tr := 0; tr < 3; tr++ {
		trCfg := netsim.DefaultConfig()
		trCfg.Seed = JobSeed(netsim.DefaultConfig().Seed, tr)
		trSum := 0.0
		trShifts := netsim.SampleShifts(len(eps), 3, JobSeed(42, tr)^0x5deece66d)
		for _, shift := range trShifts {
			res, err := netsim.New(c.Comp, c.Table, trCfg).Run(netsim.ShiftFlows(eps, shift, 32<<10))
			if err != nil {
				t.Fatal(err)
			}
			trSum += res.AggregateGBps() / float64(len(eps)) / inj
		}
		want += trSum / 3 / 3
	}
	if diff := pts[0].Share - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("zero-fault sweep share %.15f != pristine %.15f", pts[0].Share, want)
	}
}
