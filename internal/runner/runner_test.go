package runner

import (
	"fmt"
	"testing"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
)

// TestRunDeterministicAcrossWorkerCounts checks that job results depend
// only on the job index and base seed, never on scheduling.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	build := func(workers int) []float64 {
		p := NewSeeded(workers, 42)
		jobs := make([]Job, 32)
		for i := range jobs {
			jobs[i] = Job{
				Name: fmt.Sprintf("job%d", i),
				Run: func(ctx *Ctx) (any, error) {
					return float64(ctx.Seed%1000) + ctx.RNG.Float64(), nil
				},
			}
		}
		vals, err := Float64s(p.Run(jobs))
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	serial := build(1)
	for _, w := range []int{2, 4, 8} {
		got := build(w)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d job %d: %v != %v", w, i, got[i], serial[i])
			}
		}
	}
}

// TestClusterCacheShared checks that concurrent jobs share one cluster
// build per (name, size).
func TestClusterCacheShared(t *testing.T) {
	p := New(4)
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{
			Name: fmt.Sprintf("c%d", i),
			Run: func(ctx *Ctx) (any, error) {
				return ctx.Pool.Cluster("hx2mesh", core.Tiny)
			},
		}
	}
	results := p.Run(jobs)
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	first := results[0].Value.(*core.Cluster)
	for _, r := range results[1:] {
		if r.Value.(*core.Cluster) != first {
			t.Fatal("cluster cache returned distinct builds")
		}
	}
	if _, err := p.Cluster("nope", core.Tiny); err == nil {
		t.Fatal("unknown topology must error")
	}
}

// TestAlltoallPacketShareMatchesSerial checks that the worker-pool sweep
// reproduces the serial netsim estimator exactly, for any worker count.
func TestAlltoallPacketShareMatchesSerial(t *testing.T) {
	c, err := core.NewByName("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	cfg := netsim.DefaultConfig()
	want, err := netsim.AlltoallShare(c.Comp, c.Table, cfg, 32<<10, 4, c.SimInjectionGBps(), 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 4} {
		got, err := NewSeeded(w, 1).AlltoallPacketShare(c, cfg, 32<<10, 4, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d share %v != serial %v", w, got, want)
		}
	}
}

// TestPermutationSweep checks the parallel permutation sweep returns one
// bandwidth sample per endpoint per permutation, reproducibly.
func TestPermutationSweep(t *testing.T) {
	c, err := core.NewByName("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewSeeded(4, 5).PermutationSweepGBps(c, netsim.DefaultConfig(), 32<<10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 3*c.Comp.NumEndpoints() {
		t.Fatalf("got %d samples, want %d", len(a), 3*c.Comp.NumEndpoints())
	}
	b, err := NewSeeded(1, 5).PermutationSweepGBps(c, netsim.DefaultConfig(), 32<<10, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs across worker counts", i)
		}
	}
}
