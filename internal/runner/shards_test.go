package runner

import (
	"reflect"
	"testing"

	"hammingmesh/internal/netsim"
)

// The runner-level shard invariance pin: the three packet-level sweep
// entry points must return bit-identical results for any cfg.Shards, on
// top of the worker-count invariance they already guarantee.
func TestSweepsShardInvariant(t *testing.T) {
	pool := NewSeeded(4, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}

	base := netsim.DefaultConfig()
	wantShare, err := pool.AlltoallPacketShare(c, base, 32<<10, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantPerms, err := pool.PermutationSweepGBps(c, base, 32<<10, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := pool.ResilienceSweep(c, base, 32<<10, []float64{0, 0.10}, 2, 2, 42, 0)
	if err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{2, 4} {
		cfg := base
		cfg.Shards = shards
		share, err := pool.AlltoallPacketShare(c, cfg, 32<<10, 3, 42)
		if err != nil {
			t.Fatalf("shards=%d alltoall: %v", shards, err)
		}
		if share != wantShare {
			t.Errorf("shards=%d alltoall share %v != serial %v", shards, share, wantShare)
		}
		perms, err := pool.PermutationSweepGBps(c, cfg, 32<<10, 3, 42)
		if err != nil {
			t.Fatalf("shards=%d permutation: %v", shards, err)
		}
		if !reflect.DeepEqual(perms, wantPerms) {
			t.Errorf("shards=%d permutation sweep %v != serial %v", shards, perms, wantPerms)
		}
		res, err := pool.ResilienceSweep(c, cfg, 32<<10, []float64{0, 0.10}, 2, 2, 42, 0)
		if err != nil {
			t.Fatalf("shards=%d resilience: %v", shards, err)
		}
		if !reflect.DeepEqual(res, wantRes) {
			t.Errorf("shards=%d resilience sweep %+v != serial %+v", shards, res, wantRes)
		}
	}
}
