package runner

import (
	"strings"
	"testing"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/sched"
)

// TestPoolObs pins the pool's observability surface: EnableObs wires
// job/latency/cache instruments, sweep drivers propagate the registry
// into the engines, and — the obs contract — sweep results are identical
// with instrumentation on and off.
func TestPoolObs(t *testing.T) {
	base := New(2)
	c, err := base.Cluster("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	cfg := netsim.DefaultConfig()
	want, err := base.AlltoallPacketShare(c, cfg, 16<<10, 2, 7)
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}

	p := New(2)
	reg := obs.NewRegistry()
	p.EnableObs(reg)
	if p.Obs() != reg {
		t.Fatalf("Obs() did not return the installed registry")
	}
	got, err := p.AlltoallPacketShare(c, cfg, 16<<10, 2, 7)
	if err != nil {
		t.Fatalf("instrumented sweep: %v", err)
	}
	if got != want {
		t.Errorf("share with obs = %v, without = %v (must be identical)", got, want)
	}

	if v := reg.Counter("runner_jobs_total", "", "").Value(); v == 0 {
		t.Errorf("runner_jobs_total not recorded")
	}
	if v := reg.Counter("netsim_runs_total", "", "").Value(); v == 0 {
		t.Errorf("engine metrics did not propagate through the sweep")
	}

	// Cache hits: the cluster is already built in p after the first
	// Cluster call below, so the second is a hit.
	if _, err := p.Cluster("hx2mesh", core.Tiny); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if _, err := p.Cluster("hx2mesh", core.Tiny); err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if v := reg.Counter("runner_cluster_cache_hits_total", "", "").Value(); v == 0 {
		t.Errorf("cluster cache hit not recorded")
	}

	var sb strings.Builder
	reg.Render(&sb)
	for _, series := range []string{"runner_job_seconds_count", "runner_active_jobs", "runner_queued_jobs"} {
		if !strings.Contains(sb.String(), series) {
			t.Errorf("series %s missing from render", series)
		}
	}
}

// TestSchedSweepObs verifies decision counters flow out of a sweep.
func TestSchedSweepObs(t *testing.T) {
	p := New(2)
	reg := obs.NewRegistry()
	p.EnableObs(reg)
	c, err := p.Cluster("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	pts, err := p.SchedSweep(c, SchedSweepConfig{
		Trace:        sched.TraceConfig{Jobs: 12, ArrivalRate: 2, MeanService: 3, MaxBoards: 8},
		Base:         sched.Config{HorizonH: 48},
		MTBFs:        []float64{0},
		CheckpointsH: []float64{0},
		Policies:     []sched.Policy{sched.FirstFit},
		Trials:       1,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(pts) == 0 {
		t.Fatalf("no points")
	}
	if v := reg.Counter("sched_decisions_total", `type="arrived"`, "").Value(); v == 0 {
		t.Errorf("sched decision counters not recorded")
	}
}
