package runner

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"hammingmesh/internal/journal"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/sched"
)

// openCk opens a test checkpoint, failing the test on error.
func openCk(t *testing.T, dir, key string, o journal.Options) *Checkpoint {
	t.Helper()
	ck, err := OpenCheckpoint(dir, key, o)
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// RunJournaled fundamentals: results round-trip through the checkpoint,
// completed jobs are not re-executed on resume, and resumed results are
// byte-identical to the fresh run.
func TestRunJournaledSkipsCompleted(t *testing.T) {
	type val struct{ X float64 }
	dir := t.TempDir()
	p := NewSeeded(4, 1)
	var executed atomic.Int64
	mkJobs := func() ([]Job, []string) {
		jobs := make([]Job, 6)
		keys := make([]string, 6)
		for i := range jobs {
			i := i
			keys[i] = fmt.Sprintf("point-%d", i)
			jobs[i] = Job{Name: keys[i], Run: func(c *Ctx) (any, error) {
				executed.Add(1)
				return &val{X: float64(i) + 0.125}, nil
			}}
		}
		return jobs, keys
	}
	o := journal.Options{NoSync: true}

	ck := openCk(t, dir, "sweep-A", o)
	jobs, keys := mkJobs()
	first, err := RunJournaled[val](p, context.Background(), jobs, keys, ck)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	if got := executed.Load(); got != 6 {
		t.Fatalf("fresh run executed %d jobs, want 6", got)
	}

	// Resume: everything is journaled, nothing re-executes, values match.
	ck2 := openCk(t, dir, "sweep-A", o)
	if ck2.Len() != 6 {
		t.Fatalf("resume loaded %d points, want 6", ck2.Len())
	}
	jobs2, keys2 := mkJobs()
	second, err := RunJournaled[val](p, context.Background(), jobs2, keys2, ck2)
	if err != nil {
		t.Fatal(err)
	}
	ck2.Close()
	if got := executed.Load(); got != 6 {
		t.Fatalf("resume re-executed jobs: %d total executions, want 6", got)
	}
	for i := range first {
		a := first[i].Value.(*val)
		b := second[i].Value.(*val)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("result %d changed across resume: %+v vs %+v", i, a, b)
		}
	}

	// A checkpoint refuses a different sweep's fingerprint.
	if _, err := OpenCheckpoint(dir, "sweep-B", o); err == nil {
		t.Fatal("OpenCheckpoint accepted a mismatched sweep fingerprint")
	}

	// Key/job count mismatch is an error, not a silent misalignment.
	ck3 := openCk(t, dir, "sweep-A", o)
	defer ck3.Close()
	if _, err := RunJournaled[val](p, context.Background(), jobs2, keys2[:3], ck3); err == nil {
		t.Fatal("RunJournaled accepted mismatched keys/jobs lengths")
	}
}

// crashPlans are the injected crash points the sweep invariance tests kill
// at — distinct write boundaries, including mid-rotation (the checkpoint
// tests use tiny segments so points span several segment files).
func crashPlans() []journal.CrashPlan {
	return []journal.CrashPlan{
		{Point: journal.CrashTornWrite, AfterAppends: 1},
		{Point: journal.CrashBeforeSync, AfterAppends: 2},
		{Point: journal.CrashBeforeAppend, AfterAppends: 3},
		{Point: journal.CrashBeforeRotate, AfterAppends: 1},
		{Point: journal.CrashAfterRotate, AfterAppends: 1},
	}
}

// The tentpole contract for scheduler sweeps: a sweep killed by an
// injected crash at any write boundary and then resumed from its journal
// produces byte-identical output to an uninterrupted run.
func TestSchedSweepCrashResumeBitIdentical(t *testing.T) {
	cfg := schedSweepTestConfig()
	cfg.Trace.Jobs = 40
	cfg.MTBFs = []float64{0, 30}
	cfg.Trials = 2
	cfg.Policies = []sched.Policy{sched.FirstFit}
	// The scheduler-v3 axes ride the same journal: resumed sweeps with
	// contention pricing, elastic jobs and preemption on must stay
	// byte-identical to uninterrupted ones.
	cfg.Trace.ElasticFrac = 0.4
	cfg.Trace.PriorityFrac = 0.3
	cfg.Base.Slowdown = &sched.CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}
	cfg.Base.Interference = &sched.Interference{GroupBoards: 2, Taper: 0.25}
	cfg.Interferences = []bool{false, true}
	cfg.Elastics = []bool{true}
	cfg.Preempts = []bool{true}

	pool := NewSeeded(4, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	want, err := pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	fp := cfg.Fingerprint(c)

	replayed := 0
	for _, plan := range crashPlans() {
		plan := plan
		t.Run(string(plan.Point), func(t *testing.T) {
			dir := t.TempDir()
			// Tiny segments force rotations so the rotate crash points fire.
			crashed := journal.Options{SegmentBytes: 512, NoSync: true, Crash: &plan}
			ck, err := OpenCheckpoint(dir, fp, crashed)
			if err != nil {
				// The crash can fire on the meta append itself
				// (before-append with AfterAppends covered by 0 appends is
				// not in the plans, so this open must succeed).
				t.Fatal(err)
			}
			_, err = pool.SchedSweepJournaled(context.Background(), c, cfg, ck)
			if !errors.Is(err, journal.ErrCrashInjected) {
				t.Fatalf("crashed sweep returned %v, want ErrCrashInjected", err)
			}
			ck.Close()

			// Resume from whatever survived on disk.
			ck2 := openCk(t, dir, fp, journal.Options{SegmentBytes: 512, NoSync: true})
			replayed += ck2.Len()
			got, err := pool.SchedSweepJournaled(context.Background(), c, cfg, ck2)
			if err != nil {
				t.Fatal(err)
			}
			ck2.Close()
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("resumed sweep differs from uninterrupted run at crash point %s:\nwant %s\ngot  %s",
					plan.Point, wantJSON, gotJSON)
			}
		})
	}
	if replayed == 0 {
		t.Fatal("no crash plan left any journaled points to resume from — the harness is not exercising replay")
	}
}

// The same contract for resilience sweeps, across the same crash points.
func TestResilienceSweepCrashResumeBitIdentical(t *testing.T) {
	pool := NewSeeded(4, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	netCfg := netsim.DefaultConfig()
	fracs := []float64{0, 0.10}
	const trials, shifts, seed, boards = 2, 2, 42, 0
	bytesPer := int64(32 << 10)

	want, err := pool.ResilienceSweep(c, netCfg, bytesPer, fracs, trials, shifts, seed, boards)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	fp := ResilienceFingerprint(c, netCfg, bytesPer, fracs, trials, shifts, seed, boards)

	replayed := 0
	for _, plan := range crashPlans() {
		plan := plan
		t.Run(string(plan.Point), func(t *testing.T) {
			dir := t.TempDir()
			ck, err := OpenCheckpoint(dir, fp, journal.Options{SegmentBytes: 256, NoSync: true, Crash: &plan})
			if err != nil {
				t.Fatal(err)
			}
			_, err = pool.ResilienceSweepJournaled(context.Background(), c, netCfg, bytesPer, fracs, trials, shifts, seed, boards, ck)
			if !errors.Is(err, journal.ErrCrashInjected) {
				t.Fatalf("crashed sweep returned %v, want ErrCrashInjected", err)
			}
			ck.Close()

			ck2 := openCk(t, dir, fp, journal.Options{SegmentBytes: 256, NoSync: true})
			replayed += ck2.Len()
			got, err := pool.ResilienceSweepJournaled(context.Background(), c, netCfg, bytesPer, fracs, trials, shifts, seed, boards, ck2)
			if err != nil {
				t.Fatal(err)
			}
			ck2.Close()
			gotJSON, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotJSON, wantJSON) {
				t.Fatalf("resumed sweep differs from uninterrupted run at crash point %s:\nwant %s\ngot  %s",
					plan.Point, wantJSON, gotJSON)
			}
		})
	}
	if replayed == 0 {
		t.Fatal("no crash plan left any journaled points to resume from — the harness is not exercising replay")
	}
}

// Cancelling RunCtx stops dispatch promptly: jobs not yet handed to a
// worker carry ctx.Err() instead of running the rest of the grid.
func TestRunCtxCancel(t *testing.T) {
	p := NewSeeded(1, 1)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	jobs := make([]Job, 50)
	for i := range jobs {
		i := i
		jobs[i] = Job{Name: fmt.Sprintf("j%d", i), Run: func(c *Ctx) (any, error) {
			ran.Add(1)
			if i == 0 {
				cancel()
			}
			return i, nil
		}}
	}
	results := p.RunCtx(ctx, jobs)
	cancel()
	if n := ran.Load(); n >= 50 {
		t.Fatalf("cancellation did not stop dispatch: %d of 50 jobs ran", n)
	}
	sawCancel := false
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			sawCancel = true
		} else if r.Err != nil {
			t.Fatalf("unexpected error: %v", r.Err)
		}
	}
	if !sawCancel {
		t.Fatal("no result carries the cancellation error")
	}
}
