package runner

import (
	"math"
	"testing"

	"hammingmesh/internal/core"
)

// TestAlltoallFlowShareWorkerInvariance pins the pooled flow sweep's
// determinism contract: the share is bit-identical for 1, 4 and 8 workers,
// on the pristine and on a degraded fabric.
func TestAlltoallFlowShareWorkerInvariance(t *testing.T) {
	base, err := core.NewByName("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	degraded := base.WithFaults(base.SampleLinkFaults(0.1, 5))
	for _, tc := range []struct {
		name string
		c    *core.Cluster
	}{{"pristine", base}, {"degraded", degraded}} {
		var want float64
		for i, workers := range []int{1, 4, 8} {
			pool := NewSeeded(workers, 3)
			got, err := pool.AlltoallFlowShare(tc.c, tc.c.FlowConfig(9), 6, 9)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", tc.name, workers, err)
			}
			if got <= 0 || got > 1 {
				t.Fatalf("%s workers=%d: share %v outside (0,1]", tc.name, workers, got)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s: share with %d workers = %v, want %v (1 worker)", tc.name, workers, got, want)
			}
		}
	}
}

// TestAlltoallFlowShareTracksSerial sanity-checks the pooled estimator
// against the serial one: same shift sequence and aggregation, so the two
// must agree closely (they are not bit-identical — the serial solver's
// parallel-link round-robin cursors carry across shifts).
func TestAlltoallFlowShareTracksSerial(t *testing.T) {
	c, err := core.NewByName("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := NewSeeded(4, 3).AlltoallFlowShare(c, c.FlowConfig(9), 6, 9)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := c.AlltoallShare(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pooled-serial) > 0.15*serial {
		t.Errorf("pooled share %v vs serial %v differ >15%%", pooled, serial)
	}
}
