package runner

import (
	"context"
	"fmt"

	"hammingmesh/internal/core"
	"hammingmesh/internal/journal"
	"hammingmesh/internal/sched"
)

// SchedSweepConfig describes a scheduler sweep: one trace-driven cluster
// simulation per (policy, checkpoint interval, MTBF, trial), all on the
// same board grid.
type SchedSweepConfig struct {
	// Trace parameterizes the synthetic trace; each trial draws its own
	// trace from a deterministic per-trial seed.
	Trace sched.TraceConfig
	// FixedTrace, when non-nil, replaces the synthetic traces: every
	// trial replays this exact trace (e.g. one loaded with
	// sched.LoadTrace) and trials differ only in their failure draws.
	FixedTrace []sched.TraceJob
	// Base is the scheduler config template; Policy and CheckpointH are
	// overridden per point. Base.HorizonH must be positive. A nil
	// Base.Slowdown defaults to the communication model for the
	// cluster's board type, shared (with its shape cache) across all
	// jobs of the sweep.
	Base sched.Config
	// MTBFs are the per-board mean-time-between-failure values in hours;
	// 0 means no failures. Order is preserved in the result.
	MTBFs []float64
	// CheckpointsH are the checkpoint intervals to sweep.
	CheckpointsH []float64
	// Policies are the placement policies to sweep.
	Policies []sched.Policy
	// Reservations sweeps EASY reservation backfill on/off. Empty means
	// the single value Base.Reservation.
	Reservations []bool
	// BurstRates sweeps the correlated-outage rate in bursts/hour (0 =
	// independent failures only). Within a trial the burst sets are nested
	// across rates (sched.Bursts thinning), like the MTBF axis. Empty
	// means the single value 0.
	BurstRates []float64
	// Burst is the board-region footprint of one burst (zero value means
	// sched.DefaultBurstShape, a 4x1 rack segment).
	Burst sched.BurstShape
	// DefragThresholds sweeps the fragmentation threshold that triggers
	// checkpoint-migrate defragmentation (0 = disabled). Empty means the
	// single value Base.DefragThreshold.
	DefragThresholds []float64
	// Interferences sweeps cross-job contention pricing on/off. When on,
	// the point uses Base.Interference if non-nil, otherwise a contention
	// model derived from the cluster's board dimensions; the model (with
	// its memoized joint solves) is shared across all jobs of the sweep.
	// Empty means the single value "Base.Interference != nil".
	Interferences []bool
	// Elastics sweeps malleable-job scheduling on/off (shrunk admission,
	// regrow, failure trims for jobs with MinBoards). Empty means the
	// single value Base.Elastic.
	Elastics []bool
	// Preempts sweeps priority preemption on/off. Empty means the single
	// value Base.Preempt.
	Preempts []bool
	// Trials is the number of seeded trials per point (min 1).
	Trials int
	// Seed derives every per-trial trace, board sequence and failure
	// process.
	Seed int64
}

// SchedPoint aggregates the trials of one (policy, checkpoint, MTBF)
// combination. Mean values are over trials.
type SchedPoint struct {
	Policy      sched.Policy
	CheckpointH float64
	// Reservation, BurstRate and DefragThreshold identify the point on the
	// scheduler-v2 axes (reservation backfill on/off, correlated bursts
	// per hour, defragmentation trigger).
	Reservation     bool
	BurstRate       float64
	DefragThreshold float64
	// Interference, Elastic and Preempt identify the point on the
	// scheduler-v3 axes (joint contention pricing, malleable jobs,
	// priority preemption).
	Interference, Elastic, Preempt bool
	// MTBFh is the per-board MTBF of the point (0 = no failures).
	MTBFh float64
	// Goodput is the mean fraction of raw board-hours converted to
	// checkpoint-surviving work — the utilization-vs-MTBF curve. Within
	// one (policy, checkpoint) group the per-trial failure sets are
	// nested across MTBFs, so the mean curve measures degradation, not
	// sampling noise.
	Goodput float64
	// MinGoodput is the worst trial's goodput.
	MinGoodput float64
	// Utilization is the mean time-averaged allocated/working fraction.
	Utilization float64
	// LostFrac is the mean share of performed work destroyed by
	// evictions.
	LostFrac float64
	// WaitP50/WaitP99 and SlowP50/SlowP99 are means of the per-trial
	// percentiles.
	WaitP50, WaitP99 float64
	SlowP50, SlowP99 float64
	// Completed and Evictions are mean counts per trial.
	Completed, Evictions float64
	// MaxWaitLarge is the worst large-job wait of any trial, in hours —
	// the bound reservation backfill buys.
	MaxWaitLarge float64
	// Defrags and Migrations are mean defragmentation passes and job
	// migrations per trial.
	Defrags, Migrations float64
	// Restretches, Shrinks, Regrows and Preemptions are mean v3 feature
	// activations per trial (contention re-pricings of running jobs,
	// elastic width changes, priority evictions).
	Restretches, Shrinks, Regrows, Preemptions float64
	Trials                                     int
}

// Fingerprint canonicalizes the sweep — cluster shape, trace, base config
// scalars, every axis, trials and seed — into a content hash (the hxd
// canonicalize-then-hash discipline), used by checkpoints to refuse
// resuming a journal under different parameters. Base.Slowdown is
// excluded: it is an interface; the sweeps derive it deterministically
// from the cluster shape when nil, and callers that install a custom one
// are expected to keep it fixed across resume (it is config code, not
// data).
func (cfg SchedSweepConfig) Fingerprint(c *core.Cluster) string {
	base := cfg.Base
	base.Slowdown = nil
	base.Trace = nil
	return journal.KeyOf(struct {
		Kind             string
		Family           string
		A, B, X, Y       int
		Trace            sched.TraceConfig
		FixedTrace       []sched.TraceJob
		Base             sched.Config
		MTBFs            []float64
		CheckpointsH     []float64
		Policies         []sched.Policy
		Reservations     []bool
		BurstRates       []float64
		Burst            sched.BurstShape
		DefragThresholds []float64
		Interferences    []bool
		Elastics         []bool
		Preempts         []bool
		Trials           int
		Seed             int64
	}{
		Kind: "sched-sweep", Family: string(c.Net.Meta.Family),
		A: c.Hx.Cfg.A, B: c.Hx.Cfg.B, X: c.Grid.X, Y: c.Grid.Y,
		Trace: cfg.Trace, FixedTrace: cfg.FixedTrace, Base: base,
		MTBFs: cfg.MTBFs, CheckpointsH: cfg.CheckpointsH, Policies: cfg.Policies,
		Reservations: cfg.Reservations, BurstRates: cfg.BurstRates, Burst: cfg.Burst,
		DefragThresholds: cfg.DefragThresholds,
		Interferences:    cfg.Interferences, Elastics: cfg.Elastics, Preempts: cfg.Preempts,
		Trials: cfg.Trials, Seed: cfg.Seed,
	})
}

// SchedSweep runs the scheduler sweep on the pool, one job per (point,
// trial), and returns the points in (policy, checkpoint, reservation,
// defrag, interference, elastic, preempt, burst, MTBF) list order — MTBF
// innermost, so each consecutive
// len(MTBFs) block is one utilization-vs-MTBF curve. Every trial draws its
// trace, board-failure order, failure timing and burst process from seeds
// derived only from cfg.Seed and the trial index, so results are identical
// for any worker count; within a trial the failure sets are nested across
// MTBF values (sched.Failures) and burst rates (sched.Bursts), which makes
// the goodput curve of each group measure monotone degradation.
func (p *Pool) SchedSweep(c *core.Cluster, cfg SchedSweepConfig) ([]SchedPoint, error) {
	return p.SchedSweepJournaled(context.Background(), c, cfg, nil)
}

// SchedSweepJournaled is SchedSweep with cancellation and crash-safe
// resume. With a non-nil checkpoint (opened against cfg.Fingerprint),
// every completed (point, trial) metric is journaled as it finishes and
// already-journaled ones are not re-simulated on a rerun; because job
// indices, seeds and aggregation order are identical either way, a sweep
// killed at any point and resumed produces byte-identical points to an
// uninterrupted run. The per-trial prep round (trace synthesis, failure
// sampling) is pure derivation from cfg.Seed and is recomputed, not
// journaled.
func (p *Pool) SchedSweepJournaled(ctx context.Context, c *core.Cluster, cfg SchedSweepConfig, ck *Checkpoint) ([]SchedPoint, error) {
	if c.Hx == nil || c.Grid == nil {
		return nil, fmt.Errorf("runner: scheduler sweeps need an HxMesh-family cluster, got %s", c.Net.Meta.Family)
	}
	if cfg.Base.HorizonH <= 0 {
		return nil, fmt.Errorf("runner: SchedSweepConfig.Base needs a positive HorizonH")
	}
	if len(cfg.MTBFs) == 0 || len(cfg.CheckpointsH) == 0 || len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("runner: scheduler sweep needs at least one MTBF, checkpoint and policy")
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 1
	}
	base := cfg.Base
	if base.Slowdown == nil {
		base.Slowdown = sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B)
	}
	// The failure process is sampled once per trial at the shortest
	// positive MTBF and thinned per point (nested sets).
	minMTBF := 0.0
	for _, m := range cfg.MTBFs {
		if m > 0 && (minMTBF == 0 || m < minMTBF) {
			minMTBF = m
		}
	}
	x, y := c.Grid.X, c.Grid.Y

	// The scheduler-v2 axes default to a single inert value so pre-v2
	// sweeps reproduce their points unchanged.
	reservations := cfg.Reservations
	if len(reservations) == 0 {
		reservations = []bool{base.Reservation}
	}
	burstRates := cfg.BurstRates
	if len(burstRates) == 0 {
		burstRates = []float64{0}
	}
	defrags := cfg.DefragThresholds
	if len(defrags) == 0 {
		defrags = []float64{base.DefragThreshold}
	}
	// The scheduler-v3 axes likewise default to the base config's values.
	// A single contention model (with its memoized joint solves) is shared
	// by every interference-on point; its caches never affect results.
	interferences := cfg.Interferences
	if len(interferences) == 0 {
		interferences = []bool{base.Interference != nil}
	}
	sharedInf := base.Interference
	if sharedInf == nil {
		sharedInf = &sched.Interference{BoardA: c.Hx.Cfg.A, BoardB: c.Hx.Cfg.B}
	}
	elastics := cfg.Elastics
	if len(elastics) == 0 {
		elastics = []bool{base.Elastic}
	}
	preempts := cfg.Preempts
	if len(preempts) == 0 {
		preempts = []bool{base.Preempt}
	}
	maxBurst := 0.0
	for _, r := range burstRates {
		if r > maxBurst {
			maxBurst = r
		}
	}
	burstShape := cfg.Burst
	if burstShape.W < 1 && burstShape.H < 1 {
		burstShape = sched.DefaultBurstShape()
	}

	type pointKey struct {
		pi, ci, ri, di, ii, ei, qi, bi, mi int
	}
	var keys []pointKey
	for pi := range cfg.Policies {
		for ci := range cfg.CheckpointsH {
			for ri := range reservations {
				for di := range defrags {
					for ii := range interferences {
						for ei := range elastics {
							for qi := range preempts {
								for bi := range burstRates {
									for mi := range cfg.MTBFs {
										keys = append(keys, pointKey{pi, ci, ri, di, ii, ei, qi, bi, mi})
									}
								}
							}
						}
					}
				}
			}
		}
	}

	// Per-trial inputs are shared by every point of the trial; build them
	// as a first round of pool jobs (trace synthesis and failure sampling
	// are the sweep's only serial state). Both failure processes are
	// sampled once per trial at their highest rate and thinned per point,
	// so each trial's failure sets are nested along the MTBF and burst
	// axes.
	type trialInput struct {
		trace []sched.TraceJob
		fp    *sched.Failures
		bp    *sched.Bursts
	}
	prepJobs := make([]Job, trials)
	for tr := 0; tr < trials; tr++ {
		tr := tr
		prepJobs[tr] = Job{
			Name: fmt.Sprintf("sched-prep-t%d", tr),
			Run: func(ctx *Ctx) (any, error) {
				seed := JobSeed(cfg.Seed, tr)
				in := &trialInput{trace: cfg.FixedTrace}
				if in.trace == nil {
					in.trace = sched.Synthetic(cfg.Trace, seed)
				}
				if minMTBF > 0 {
					boards := sched.BoardSequence(c.Hx, c.Comp, seed)
					in.fp = sched.NewFailures(boards, base.HorizonH, minMTBF, seed)
				}
				if maxBurst > 0 {
					in.bp = sched.NewBursts(x, y, burstShape, base.HorizonH, maxBurst, seed)
				}
				return in, nil
			},
		}
	}
	prepResults := p.RunCtx(ctx, prepJobs)
	if err := FirstErr(prepResults); err != nil {
		return nil, err
	}
	inputs := make([]*trialInput, trials)
	for tr := range inputs {
		inputs[tr] = prepResults[tr].Value.(*trialInput)
	}

	jobs := make([]Job, 0, len(keys)*trials)
	for _, k := range keys {
		for tr := 0; tr < trials; tr++ {
			k, tr := k, tr
			runCfg := base
			runCfg.Policy = cfg.Policies[k.pi]
			runCfg.CheckpointH = cfg.CheckpointsH[k.ci]
			runCfg.Reservation = reservations[k.ri]
			runCfg.DefragThreshold = defrags[k.di]
			runCfg.Interference = nil
			if interferences[k.ii] {
				runCfg.Interference = sharedInf
			}
			runCfg.Elastic = elastics[k.ei]
			runCfg.Preempt = preempts[k.qi]
			jobs = append(jobs, Job{
				Name: fmt.Sprintf("sched-%s-ckpt%g-res%v-defrag%g-inf%v-ela%v-pre%v-burst%g-mtbf%g-t%d",
					runCfg.Policy, runCfg.CheckpointH, runCfg.Reservation,
					runCfg.DefragThreshold, interferences[k.ii], elastics[k.ei], preempts[k.qi],
					burstRates[k.bi], cfg.MTBFs[k.mi], tr),
				Run: func(ctx *Ctx) (any, error) {
					in := inputs[tr]
					var fails []sched.FailEvent
					if mtbf := cfg.MTBFs[k.mi]; mtbf > 0 && in.fp != nil {
						fails = in.fp.Thin(mtbf)
					}
					if rate := burstRates[k.bi]; rate > 0 && in.bp != nil {
						fails = sched.MergeFailures(fails, in.bp.Thin(rate))
					}
					return sched.Run(x, y, in.trace, fails, runCfg)
				},
			})
		}
	}
	// Point-job names are unique within the sweep and deterministic, so
	// they double as checkpoint keys; the checkpoint's meta record pins the
	// sweep fingerprint, making (fingerprint, name) globally unambiguous.
	ckKeys := make([]string, len(jobs))
	for i := range jobs {
		ckKeys[i] = jobs[i].Name
	}
	results, err := RunJournaled[sched.Metrics](p, ctx, jobs, ckKeys, ck)
	if err != nil {
		return nil, err
	}
	if err := FirstErr(results); err != nil {
		return nil, err
	}

	points := make([]SchedPoint, len(keys))
	for ki, k := range keys {
		pt := SchedPoint{
			Policy:          cfg.Policies[k.pi],
			CheckpointH:     cfg.CheckpointsH[k.ci],
			Reservation:     reservations[k.ri],
			BurstRate:       burstRates[k.bi],
			DefragThreshold: defrags[k.di],
			Interference:    interferences[k.ii],
			Elastic:         elastics[k.ei],
			Preempt:         preempts[k.qi],
			MTBFh:           cfg.MTBFs[k.mi],
			Trials:          trials,
		}
		for tr := 0; tr < trials; tr++ {
			m := results[ki*trials+tr].Value.(*sched.Metrics)
			p.flushSchedDecisions(m)
			n := float64(trials)
			pt.Goodput += m.Goodput / n
			pt.Utilization += m.Utilization / n
			pt.LostFrac += m.LostFrac / n
			pt.WaitP50 += m.WaitP50 / n
			pt.WaitP99 += m.WaitP99 / n
			pt.SlowP50 += m.SlowP50 / n
			pt.SlowP99 += m.SlowP99 / n
			pt.Completed += float64(m.Completed) / n
			pt.Evictions += float64(m.Evictions) / n
			pt.Defrags += float64(m.Defrags) / n
			pt.Migrations += float64(m.Migrations) / n
			pt.Restretches += float64(m.Restretches) / n
			pt.Shrinks += float64(m.Shrinks) / n
			pt.Regrows += float64(m.Regrows) / n
			pt.Preemptions += float64(m.Preemptions) / n
			if m.MaxWaitLarge > pt.MaxWaitLarge {
				pt.MaxWaitLarge = m.MaxWaitLarge
			}
			if tr == 0 || m.Goodput < pt.MinGoodput {
				pt.MinGoodput = m.Goodput
			}
		}
		points[ki] = pt
	}
	return points, nil
}

// flushSchedDecisions publishes one scheduler run's decision counts as
// type-labeled counters (no-op when observability is off).
func (p *Pool) flushSchedDecisions(m *sched.Metrics) {
	reg := p.obsReg
	if reg == nil {
		return
	}
	const help = "scheduler decisions by type, summed over sweep runs"
	add := func(typ string, n int) {
		reg.Counter("sched_decisions_total", `type="`+typ+`"`, help).Add(int64(n))
	}
	add("arrived", m.Arrived)
	add("completed", m.Completed)
	add("evicted", m.Evictions)
	add("rejected", m.Rejected)
	add("failure", m.Failures)
	add("repair", m.Repairs)
	add("reservation", m.Reservations)
	add("backfill", m.Backfills)
	add("defrag", m.Defrags)
	add("migration", m.Migrations)
	add("restretch", m.Restretches)
	add("shrink", m.Shrinks)
	add("regrow", m.Regrows)
	add("preemption", m.Preemptions)
}
