package runner

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"

	"hammingmesh/internal/journal"
)

// Checkpoint is a crash-safe sweep checkpoint over a journal.Log: a
// durable map from deterministic per-point keys to JSON-encoded results.
// The journal's first record is a meta record binding the checkpoint to
// one sweep fingerprint (the canonicalize-then-hash discipline of hxd's
// content addresses), so a journal directory can never silently mix
// points of two different sweeps; every later record is one completed
// point, appended (and fsync'd) the moment it finishes. Reopening after a
// crash replays the completed points — the journal layer truncates any
// torn tail — and the sweep re-runs only what is missing.
type Checkpoint struct {
	log      *journal.Log
	sweepKey string
	done     map[string][]byte
	// Stats is the journal recovery report of the open (tests, CLIs).
	Stats journal.Stats
}

// Checkpoint record types.
const (
	ckptMeta  = 1 // payload: sweep fingerprint (hex string)
	ckptPoint = 2 // payload: u32 key length, key, value JSON
)

// OpenCheckpoint opens (or creates) a sweep checkpoint in dir. sweepKey
// is the sweep's fingerprint (see SchedSweepConfig.Fingerprint /
// ResilienceFingerprint — or any journal.KeyOf of a canonical config):
// a fresh checkpoint journals it; an existing one must match, so resuming
// with different parameters fails loudly instead of splicing foreign
// points into the grid.
func OpenCheckpoint(dir, sweepKey string, o journal.Options) (*Checkpoint, error) {
	ck := &Checkpoint{sweepKey: sweepKey, done: make(map[string][]byte)}
	var storedKey string
	log, stats, err := journal.Open(dir, o, func(rec []byte) error {
		if len(rec) < 1 {
			return fmt.Errorf("runner: checkpoint record with no type byte")
		}
		switch rec[0] {
		case ckptMeta:
			storedKey = string(rec[1:])
		case ckptPoint:
			key, val, err := decodePoint(rec)
			if err != nil {
				return err
			}
			ck.done[key] = val
		default:
			return fmt.Errorf("runner: unknown checkpoint record type %d", rec[0])
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	ck.log, ck.Stats = log, stats
	if storedKey == "" {
		// Fresh (or crashed-before-meta) journal: bind it now.
		if err := log.Append(append([]byte{ckptMeta}, sweepKey...)); err != nil {
			log.Close()
			return nil, err
		}
	} else if storedKey != sweepKey {
		log.Close()
		return nil, fmt.Errorf("runner: checkpoint %s belongs to a different sweep (journaled fingerprint %.12s…, this sweep %.12s…); use a fresh -journal directory or rerun the original command", dir, storedKey, sweepKey)
	}
	return ck, nil
}

func encodePoint(key string, val []byte) []byte {
	rec := make([]byte, 0, 5+len(key)+len(val))
	rec = append(rec, ckptPoint)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(key)))
	rec = append(rec, key...)
	return append(rec, val...)
}

func decodePoint(rec []byte) (string, []byte, error) {
	if len(rec) < 5 {
		return "", nil, fmt.Errorf("runner: short checkpoint point record")
	}
	n := binary.LittleEndian.Uint32(rec[1:5])
	if int(n) > len(rec)-5 {
		return "", nil, fmt.Errorf("runner: checkpoint point key length %d exceeds record", n)
	}
	key := string(rec[5 : 5+n])
	val := append([]byte(nil), rec[5+n:]...)
	return key, val, nil
}

// Done returns the journaled value for a point key, if the point already
// completed in a previous run.
func (ck *Checkpoint) Done(key string) ([]byte, bool) {
	v, ok := ck.done[key]
	return v, ok
}

// Len is the number of completed points loaded at open.
func (ck *Checkpoint) Len() int { return len(ck.done) }

// Put journals one completed point. Durable when it returns; safe for
// concurrent use (the journal serializes appends).
func (ck *Checkpoint) Put(key string, val []byte) error {
	return ck.log.Append(encodePoint(key, val))
}

// Close seals the journal.
func (ck *Checkpoint) Close() error { return ck.log.Close() }

// OpenCheckpointCLI is OpenCheckpoint for the command-line tools' flag
// pair -journal / -journal-crash: fsync'd appends (a kill -9 after any
// point completes loses nothing), and a non-empty crashSpec
// ("<point>:<n>", journal.ParseCrashPlan) arms an injected crash whose
// Fire is a real process death via os.Exit(3) — the recovery the tests
// then drive is exactly the SIGKILL path.
func OpenCheckpointCLI(dir, crashSpec, fingerprint string) (*Checkpoint, error) {
	var o journal.Options
	if crashSpec != "" {
		plan, err := journal.ParseCrashPlan(crashSpec)
		if err != nil {
			return nil, err
		}
		plan.Fire = func() error { os.Exit(3); return nil }
		o.Crash = plan
	}
	return OpenCheckpoint(dir, fingerprint, o)
}

// RunJournaled executes jobs like RunCtx, with crash-safe resume: jobs
// whose key is already in the checkpoint are not re-run — a no-op job
// returns the decoded journaled value instead — and every freshly
// completed job's value is journaled as it finishes. T is the result
// type; job Run functions must return *T (and the sweeps that use this
// do), which JSON round-trips bit-exactly for the finite floats and
// integers the sweeps produce.
//
// The full jobs slice is always submitted (replayed entries as no-ops),
// so Ctx.Index and the per-job seeds are identical between a fresh run
// and a resumed one — part of the byte-identical-resume contract.
// A nil ck degrades to plain RunCtx.
func RunJournaled[T any](p *Pool, ctx context.Context, jobs []Job, keys []string, ck *Checkpoint) ([]Result, error) {
	if ck == nil {
		return p.RunCtx(ctx, jobs), nil
	}
	if len(keys) != len(jobs) {
		return nil, fmt.Errorf("runner: RunJournaled got %d keys for %d jobs", len(keys), len(jobs))
	}
	wrapped := make([]Job, len(jobs))
	for i := range jobs {
		i := i
		if b, ok := ck.Done(keys[i]); ok {
			v := new(T)
			if err := json.Unmarshal(b, v); err != nil {
				return nil, fmt.Errorf("runner: checkpoint decode %q: %w", keys[i], err)
			}
			wrapped[i] = Job{Name: jobs[i].Name, Run: func(*Ctx) (any, error) { return v, nil }}
			continue
		}
		orig := jobs[i].Run
		wrapped[i] = Job{Name: jobs[i].Name, Run: func(c *Ctx) (any, error) {
			v, err := orig(c)
			if err != nil {
				return v, err
			}
			b, err := json.Marshal(v)
			if err != nil {
				return nil, fmt.Errorf("runner: checkpoint encode %q: %w", keys[i], err)
			}
			if err := ck.Put(keys[i], b); err != nil {
				return nil, err
			}
			return v, nil
		}}
	}
	return p.RunCtx(ctx, wrapped), nil
}
