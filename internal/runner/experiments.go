package runner

import (
	"fmt"
	"math/rand"

	"hammingmesh/internal/core"
	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/netsim"
)

// AlltoallPacketShare measures the packet-level alltoall bandwidth share of
// the cluster's injection bandwidth by running nShifts sampled shift
// iterations as parallel jobs (one simulation per shift, all sharing the
// compiled network and routing table). The shift sequence matches the
// serial netsim.AlltoallShare for equal seeds, and under the deterministic
// default routing (LeastQueued, no UGAL) the share is bit-identical to the
// serial sweep. Stochastic configs (RandomCandidate, UGAL) draw from a
// per-shift RNG here instead of one generator threaded across shifts, so
// they stay deterministic for any worker count but are not comparable
// draw-for-draw with the serial API.
//
// cfg.Shards flows through to every simulation: the sharded engine's
// Result is bit-identical for any shard count, so shares from this
// function (and PermutationSweepGBps, ResilienceSweep) are invariant
// across both worker count and shard count.
func (p *Pool) AlltoallPacketShare(c *core.Cluster, cfg netsim.Config, bytes int64, nShifts int, seed int64) (float64, error) {
	// On a degraded cluster view the alltoall runs among the surviving
	// endpoints over the fault-masked routing table.
	eps := c.AliveEndpoints()
	nEp := len(eps)
	if nEp < 2 {
		return 0, fmt.Errorf("runner: need ≥2 endpoints")
	}
	shifts := netsim.SampleShifts(nEp, nShifts, seed)
	inj := c.SimInjectionGBps()
	jobs := make([]Job, len(shifts))
	for i, shift := range shifts {
		jobCfg := cfg
		jobCfg.Seed = JobSeed(cfg.Seed, i) // decorrelate stochastic routing per shift
		jobCfg.Metrics = p.obsReg          // engine series join the pool's scrape (nil = off)
		jobs[i] = Job{
			Name: fmt.Sprintf("alltoall-shift%d", shift),
			Run: func(ctx *Ctx) (any, error) {
				res, err := netsim.New(c.Comp, c.Table, jobCfg).Run(
					netsim.ShiftFlows(eps, shift, bytes))
				if err != nil {
					return nil, err
				}
				perEp := res.AggregateGBps() / float64(nEp)
				return perEp / inj, nil
			},
		}
	}
	shares, err := Float64s(p.Run(jobs))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	return sum / float64(len(shares)), nil
}

// AlltoallFlowShare measures the flow-level alltoall bandwidth share of
// the cluster's injection bandwidth by solving nShifts sampled shift
// permutations as parallel jobs — the fast path for the paper's
// large-cluster (16,384-accelerator) Table II numbers, where the packet
// sweep is out of reach. The shift sequence and the harmonic-mean
// aggregation match the serial flowsim AlltoallShareOver; each job gets a
// fresh solver over the shared compiled network and routing table plus a
// decorrelated path-sampling seed, so the result is bit-identical for any
// worker count (it is not draw-for-draw comparable with the serial API,
// whose single solver carries parallel-link round-robin cursors across
// shifts).
//
// The shared table is pre-warmed in parallel before the fan-out: every
// shift touches every destination, so cold jobs would race to build the
// same distance vectors and candidate DAGs (the lock-free cache tolerates
// but duplicates that work).
func (p *Pool) AlltoallFlowShare(c *core.Cluster, cfg flowsim.Config, nShifts int, seed uint64) (float64, error) {
	eps := c.AliveEndpoints()
	nEp := len(eps)
	if nEp < 2 {
		return 0, fmt.Errorf("runner: need ≥2 endpoints")
	}
	c.Table.PrecomputeParallel(eps, p.workers)
	if cfg.ValiantPaths > 0 {
		// Valiant detours route via random switch intermediates, so their
		// head segments need per-switch vectors too.
		c.Table.PrecomputeParallel(c.Comp.Switches, p.workers)
	}
	shifts := flowsim.SampleShifts(nEp, nShifts, seed)
	jobs := make([]Job, len(shifts))
	for i, shift := range shifts {
		jobCfg := cfg
		jobCfg.Seed = uint64(JobSeed(int64(cfg.Seed), i)) // decorrelate path sampling per shift
		jobs[i] = Job{
			Name: fmt.Sprintf("alltoall-flow-shift%d", shift),
			Run: func(ctx *Ctx) (any, error) {
				solver := flowsim.New(c.Comp, c.Table, jobCfg)
				rates, err := solver.Solve(flowsim.ShiftFlows(eps, shift))
				p.flushFlowStats(solver.Stats())
				if err != nil {
					return nil, err
				}
				mean := 0.0
				for _, r := range rates {
					mean += r
				}
				mean /= float64(len(rates))
				if mean <= 0 {
					return nil, fmt.Errorf("runner: zero-rate shift %d", shift)
				}
				return mean, nil
			},
		}
	}
	means, err := Float64s(p.Run(jobs))
	if err != nil {
		return 0, err
	}
	// Harmonic mean over iterations = effective sustained bandwidth (the
	// paper's barrier-free balanced-shift alltoall).
	sumInv := 0.0
	for _, m := range means {
		sumInv += 1 / m
	}
	return float64(len(means)) / sumInv / c.SimInjectionGBps(), nil
}

// PermutationSweepGBps runs nPerms independent random-permutation packet
// simulations as parallel jobs under the given config and returns the
// concatenated per-endpoint receive bandwidths (the Fig. 12 distribution
// with more samples). Permutations and engine seeds derive only from the
// explicit seed/cfg arguments (job index included), so the distribution is
// identical for any worker count and any pool base seed.
func (p *Pool) PermutationSweepGBps(c *core.Cluster, cfg netsim.Config, bytes int64, nPerms int, seed int64) ([]float64, error) {
	if nPerms <= 0 {
		nPerms = 1
	}
	jobs := make([]Job, nPerms)
	for i := range jobs {
		jobCfg := cfg
		jobCfg.Seed = JobSeed(cfg.Seed, i)
		jobCfg.Metrics = p.obsReg
		permSeed := JobSeed(seed, i)
		jobs[i] = Job{
			Name: fmt.Sprintf("permutation-%d", i),
			Run: func(ctx *Ctx) (any, error) {
				return c.PermutationGBpsCfg(jobCfg, bytes, rand.New(rand.NewSource(permSeed)))
			},
		}
	}
	results := p.Run(jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	var all []float64
	for _, r := range results {
		all = append(all, r.Value.([]float64)...)
	}
	return all, nil
}

// flushFlowStats publishes one solver's cumulative work counters (no-op
// when observability is off). Solvers are per-job, so each flush adds a
// full solver lifetime; called from worker goroutines (counters are
// atomic).
func (p *Pool) flushFlowStats(st flowsim.SolveStats) {
	reg := p.obsReg
	if reg == nil {
		return
	}
	reg.Counter("flowsim_heap_pops_total", "", "link-saturation events popped by water-filling").Add(st.HeapPops)
	reg.Counter("flowsim_rekeys_total", "", "lazy heap re-keys (saturation level moved after push)").Add(st.ReKeys)
	reg.Counter("flowsim_saturations_total", "", "links frozen at their max-min saturation level").Add(st.Saturations)
	reg.Counter("flowsim_subflows_total", "", "subflows water-filled across all solves").Add(st.Subflows)
}

// TopologySweep runs fn once per topology name at the given size, each as
// a pool job against the cached cluster, and returns results in name
// order. Used by the cmd tools to evaluate Table II style rows in
// parallel.
func (p *Pool) TopologySweep(names []string, size core.ClusterSize, fn func(ctx *Ctx, name string, c *core.Cluster) (any, error)) []Result {
	jobs := make([]Job, len(names))
	for i, name := range names {
		jobs[i] = Job{
			Name: name,
			Run: func(ctx *Ctx) (any, error) {
				c, err := ctx.Pool.Cluster(name, size)
				if err != nil {
					return nil, err
				}
				return fn(ctx, name, c)
			},
		}
	}
	return p.Run(jobs)
}
