package runner

import (
	"fmt"
	"math/rand"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
)

// AlltoallPacketShare measures the packet-level alltoall bandwidth share of
// the cluster's injection bandwidth by running nShifts sampled shift
// iterations as parallel jobs (one simulation per shift, all sharing the
// compiled network and routing table). The shift sequence matches the
// serial netsim.AlltoallShare for equal seeds, and under the deterministic
// default routing (LeastQueued, no UGAL) the share is bit-identical to the
// serial sweep. Stochastic configs (RandomCandidate, UGAL) draw from a
// per-shift RNG here instead of one generator threaded across shifts, so
// they stay deterministic for any worker count but are not comparable
// draw-for-draw with the serial API.
func (p *Pool) AlltoallPacketShare(c *core.Cluster, cfg netsim.Config, bytes int64, nShifts int, seed int64) (float64, error) {
	// On a degraded cluster view the alltoall runs among the surviving
	// endpoints over the fault-masked routing table.
	eps := c.AliveEndpoints()
	nEp := len(eps)
	if nEp < 2 {
		return 0, fmt.Errorf("runner: need ≥2 endpoints")
	}
	shifts := netsim.SampleShifts(nEp, nShifts, seed)
	inj := c.SimInjectionGBps()
	jobs := make([]Job, len(shifts))
	for i, shift := range shifts {
		jobCfg := cfg
		jobCfg.Seed = JobSeed(cfg.Seed, i) // decorrelate stochastic routing per shift
		jobs[i] = Job{
			Name: fmt.Sprintf("alltoall-shift%d", shift),
			Run: func(ctx *Ctx) (any, error) {
				res, err := netsim.New(c.Comp, c.Table, jobCfg).Run(
					netsim.ShiftFlows(eps, shift, bytes))
				if err != nil {
					return nil, err
				}
				perEp := res.AggregateGBps() / float64(nEp)
				return perEp / inj, nil
			},
		}
	}
	shares, err := Float64s(p.Run(jobs))
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	return sum / float64(len(shares)), nil
}

// PermutationSweepGBps runs nPerms independent random-permutation packet
// simulations as parallel jobs under the given config and returns the
// concatenated per-endpoint receive bandwidths (the Fig. 12 distribution
// with more samples). Permutations and engine seeds derive only from the
// explicit seed/cfg arguments (job index included), so the distribution is
// identical for any worker count and any pool base seed.
func (p *Pool) PermutationSweepGBps(c *core.Cluster, cfg netsim.Config, bytes int64, nPerms int, seed int64) ([]float64, error) {
	if nPerms <= 0 {
		nPerms = 1
	}
	jobs := make([]Job, nPerms)
	for i := range jobs {
		jobCfg := cfg
		jobCfg.Seed = JobSeed(cfg.Seed, i)
		permSeed := JobSeed(seed, i)
		jobs[i] = Job{
			Name: fmt.Sprintf("permutation-%d", i),
			Run: func(ctx *Ctx) (any, error) {
				return c.PermutationGBpsCfg(jobCfg, bytes, rand.New(rand.NewSource(permSeed)))
			},
		}
	}
	results := p.Run(jobs)
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	var all []float64
	for _, r := range results {
		all = append(all, r.Value.([]float64)...)
	}
	return all, nil
}

// TopologySweep runs fn once per topology name at the given size, each as
// a pool job against the cached cluster, and returns results in name
// order. Used by the cmd tools to evaluate Table II style rows in
// parallel.
func (p *Pool) TopologySweep(names []string, size core.ClusterSize, fn func(ctx *Ctx, name string, c *core.Cluster) (any, error)) []Result {
	jobs := make([]Job, len(names))
	for i, name := range names {
		jobs[i] = Job{
			Name: name,
			Run: func(ctx *Ctx) (any, error) {
				c, err := ctx.Pool.Cluster(name, size)
				if err != nil {
					return nil, err
				}
				return fn(ctx, name, c)
			},
		}
	}
	return p.Run(jobs)
}
