// Package runner executes experiment sweeps on a worker pool. It is the
// layer between the simulators and the command-line tools / benchmark
// harness: callers describe a sweep as a list of jobs, and the pool runs
// them on N workers with deterministic per-job RNG seeding, so results are
// bit-identical regardless of worker count or scheduling order.
//
// The pool also caches built clusters (topology + compiled network +
// routing table) by name and size: compilation and BFS distance vectors are
// shared across all jobs of a sweep, which is safe because simcore.Compiled
// is immutable and routing.Table publishes vectors atomically.
package runner

import (
	"container/list"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"hammingmesh/internal/core"
	"hammingmesh/internal/obs"
)

// Job is one unit of work in a sweep.
type Job struct {
	// Name labels the job in results (for error reporting and printing).
	Name string
	// Run executes the job. It must not share mutable state with other
	// jobs; shared read-only state (clusters, tables) is fine.
	Run func(ctx *Ctx) (any, error)
}

// Ctx carries the per-job deterministic execution context.
type Ctx struct {
	// Index is the job's position in the submitted slice.
	Index int
	// Seed is a deterministic per-job seed derived from the pool's base
	// seed and the job index (independent of worker count).
	Seed int64
	// RNG is a private generator seeded with Seed.
	RNG *rand.Rand
	// Pool gives jobs access to the shared cluster cache.
	Pool *Pool
}

// Result is the outcome of one job, in submission order.
type Result struct {
	Name    string
	Value   any
	Err     error
	Elapsed time.Duration
}

// Pool is a fixed-size worker pool with a shared cluster cache. A Pool is
// safe for concurrent use.
//
// The cluster cache is unbounded by default (every built topology stays
// for the pool's lifetime — the right call for one-shot CLI sweeps). A
// long-lived pool (the hxd daemon) bounds it with SetClusterBudget: the
// cache then evicts least-recently-used clusters so that the estimated
// resident bytes of *cached* entries (core.Cluster.MemoryBytes, re-read on
// every access because routing tables warm lazily) never exceed the
// budget. Eviction only forgets the cache entry — clusters already handed
// out stay valid (they are immutable), and a later request for an evicted
// key rebuilds the identical cluster deterministically.
type Pool struct {
	workers  int
	baseSeed int64

	mu       sync.Mutex
	clusters map[clusterKey]*clusterSlot
	lru      *list.List // of *clusterSlot; front = most recently used
	budget   int64      // cluster-cache byte budget; <= 0 means unbounded
	evicted  int64

	// Observability (EnableObs): nil obsReg means instrumentation is off
	// and the hot paths skip it entirely (obs contract). queued/active are
	// live job counts read by gauge functions at scrape time.
	obsReg         *obs.Registry
	queued, active atomic.Int64
	jobsTotal      *obs.Counter
	jobErrors      *obs.Counter
	cacheHits      *obs.Counter
	cacheHitBytes  *obs.Counter
	jobSeconds     *obs.Histogram
}

type clusterKey struct {
	name string
	size core.ClusterSize
}

type clusterSlot struct {
	key  clusterKey
	elem *list.Element // nil once evicted
	size int64
	// built is set under the pool mutex after once completes, so the
	// accounting sweep may read c/err for any slot with built == true.
	built bool
	once  sync.Once
	c     *core.Cluster
	err   error
}

// New creates a pool with the given worker count (<= 0 means GOMAXPROCS).
func New(workers int) *Pool { return NewSeeded(workers, 1) }

// NewSeeded creates a pool whose per-job seeds derive from baseSeed.
func NewSeeded(workers int, baseSeed int64) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{
		workers:  workers,
		baseSeed: baseSeed,
		clusters: make(map[clusterKey]*clusterSlot),
		lru:      list.New(),
	}
}

// Workers returns the worker count.
func (p *Pool) Workers() int { return p.workers }

// EnableObs registers the pool's instruments into reg and starts
// recording: jobs executed and errored, per-job wall-clock latency,
// cluster-cache hits and hit-bytes, and live queue-depth/active-job
// gauges. Call once at setup (cmd/hxd passes obs.Default()); the pool
// also hands reg to the simulation engines it drives, so engine series
// land in the same scrape. Never enabling it keeps the pool's hot path
// free of instrumentation (obs contract).
func (p *Pool) EnableObs(reg *obs.Registry) {
	p.obsReg = reg
	p.jobsTotal = reg.Counter("runner_jobs_total", "", "jobs executed by the pool")
	p.jobErrors = reg.Counter("runner_job_errors_total", "", "jobs that returned an error")
	p.cacheHits = reg.Counter("runner_cluster_cache_hits_total", "", "cluster requests served from the cache")
	p.cacheHitBytes = reg.Counter("runner_cluster_cache_hit_bytes_total", "", "estimated bytes of cached clusters served without rebuilding")
	p.jobSeconds = reg.Histogram("runner_job_seconds", "", "per-job wall-clock latency",
		[]float64{0.0005, 0.002, 0.01, 0.05, 0.2, 1, 5, 20})
	reg.GaugeFunc("runner_queued_jobs", "", "jobs submitted and not yet started", func() float64 {
		return float64(p.queued.Load())
	})
	reg.GaugeFunc("runner_active_jobs", "", "jobs currently executing on workers", func() float64 {
		return float64(p.active.Load())
	})
}

// Obs returns the registry EnableObs installed (nil when off); sweep
// drivers hand it to the engines they run.
func (p *Pool) Obs() *obs.Registry { return p.obsReg }

// SetClusterBudget bounds the cluster cache to approximately `bytes` of
// estimated resident memory (<= 0 restores the unbounded default). The
// bound is enforced on every Cluster access: cached entries are re-sized
// (routing tables grow as they warm) and least-recently-used clusters are
// dropped until the cached total fits — including, if a single cluster
// alone exceeds the budget, that cluster itself, which is then served but
// not retained.
func (p *Pool) SetClusterBudget(bytes int64) {
	p.mu.Lock()
	p.budget = bytes
	p.accountLocked()
	p.mu.Unlock()
}

// CacheStats reports the cluster cache occupancy: cached entries, their
// estimated resident bytes (as of the last accounting sweep), and the
// cumulative eviction count.
func (p *Pool) CacheStats() (entries int, bytes int64, evictions int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for e := p.lru.Front(); e != nil; e = e.Next() {
		bytes += e.Value.(*clusterSlot).size
	}
	return p.lru.Len(), bytes, p.evicted
}

// Cluster returns the cached cluster for (name, size), building it on
// first use. Concurrent callers for the same key share one build. Under a
// SetClusterBudget bound the access also refreshes the LRU order and
// evicts over-budget entries.
func (p *Pool) Cluster(name string, size core.ClusterSize) (*core.Cluster, error) {
	key := clusterKey{name, size}
	p.mu.Lock()
	slot, ok := p.clusters[key]
	if !ok {
		slot = &clusterSlot{key: key}
		slot.elem = p.lru.PushFront(slot)
		p.clusters[key] = slot
	} else if slot.elem != nil {
		p.lru.MoveToFront(slot.elem)
	}
	hit := ok && slot.built && slot.err == nil
	hitBytes := slot.size
	p.mu.Unlock()
	if hit && p.obsReg != nil {
		p.cacheHits.Inc()
		p.cacheHitBytes.Add(hitBytes)
	}
	slot.once.Do(func() { slot.c, slot.err = core.NewByName(name, size) })
	p.mu.Lock()
	slot.built = true
	if p.budget > 0 {
		p.accountLocked()
	}
	p.mu.Unlock()
	return slot.c, slot.err
}

// accountLocked re-estimates every built cached cluster's size and evicts
// from the LRU tail until the cached total fits the budget. Caller holds
// p.mu; with no budget set it is a no-op.
func (p *Pool) accountLocked() {
	if p.budget <= 0 {
		return
	}
	total := int64(0)
	for e := p.lru.Front(); e != nil; e = e.Next() {
		s := e.Value.(*clusterSlot)
		if s.built && s.err == nil {
			s.size = s.c.MemoryBytes()
		}
		total += s.size
	}
	for total > p.budget && p.lru.Len() > 0 {
		s := p.lru.Remove(p.lru.Back()).(*clusterSlot)
		s.elem = nil
		delete(p.clusters, s.key)
		total -= s.size
		p.evicted++
	}
}

// splitmix64 is the SplitMix64 finalizer; it decorrelates consecutive job
// indexes into independent seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// JobSeed returns the deterministic seed of job index i under base seed s.
func JobSeed(baseSeed int64, i int) int64 {
	return int64(splitmix64(uint64(baseSeed)*0x9e3779b97f4a7c15 + uint64(i)))
}

// Run executes the jobs on the pool's workers and returns their results in
// submission order. It blocks until every job finishes; job errors are
// reported per-result, not returned.
func (p *Pool) Run(jobs []Job) []Result { return p.RunCtx(context.Background(), jobs) }

// RunCtx is Run with cancellation: once ctx is done, jobs not yet handed
// to a worker are not started — their results carry ctx.Err() — while
// jobs already executing run to completion. An interrupted sweep therefore
// stops after the in-flight jobs instead of draining the whole grid,
// which is what makes Ctrl-C on a journaled multi-hour sweep prompt: the
// completed points are on disk and the rest of the grid is skipped.
func (p *Pool) RunCtx(ctx context.Context, jobs []Job) []Result {
	results := make([]Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	workers := p.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	o := p.obsReg != nil
	if o {
		p.queued.Add(int64(len(jobs)))
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				job := jobs[i]
				seed := JobSeed(p.baseSeed, i)
				ctx := &Ctx{Index: i, Seed: seed, RNG: rand.New(rand.NewSource(seed)), Pool: p}
				if o {
					p.queued.Add(-1)
					p.active.Add(1)
				}
				start := time.Now()
				v, err := job.Run(ctx)
				elapsed := time.Since(start)
				results[i] = Result{Name: job.Name, Value: v, Err: err, Elapsed: elapsed}
				if o {
					p.active.Add(-1)
					p.jobsTotal.Inc()
					if err != nil {
						p.jobErrors.Inc()
					}
					p.jobSeconds.Observe(elapsed.Seconds())
				}
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for i := range jobs {
		// next is unbuffered: a successful send means a worker took the
		// job, so every index not sent is genuinely not started.
		select {
		case next <- i:
		case <-done:
			for j := i; j < len(jobs); j++ {
				results[j] = Result{Name: jobs[j].Name, Err: ctx.Err()}
			}
			if o {
				p.queued.Add(-int64(len(jobs) - i))
			}
			break dispatch
		}
	}
	close(next)
	wg.Wait()
	return results
}

// FirstErr returns the first job error in submission order, or nil.
func FirstErr(results []Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("runner: job %q: %w", r.Name, r.Err)
		}
	}
	return nil
}

// Float64s extracts float64 job values, failing on the first job error or
// non-float value.
func Float64s(results []Result) ([]float64, error) {
	if err := FirstErr(results); err != nil {
		return nil, err
	}
	out := make([]float64, len(results))
	for i, r := range results {
		v, ok := r.Value.(float64)
		if !ok {
			return nil, fmt.Errorf("runner: job %q returned %T, want float64", r.Name, r.Value)
		}
		out[i] = v
	}
	return out, nil
}
