package runner

import (
	"reflect"
	"testing"

	"hammingmesh/internal/sched"
)

func schedSweepTestConfig() SchedSweepConfig {
	return SchedSweepConfig{
		Trace:        sched.TraceConfig{Jobs: 150, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3},
		Base:         sched.Config{HorizonH: 60, RepairH: 10},
		MTBFs:        []float64{0, 120, 40, 12},
		CheckpointsH: []float64{2},
		Policies:     []sched.Policy{sched.FirstFit, sched.BestFit},
		Trials:       6,
		Seed:         42,
	}
}

// The acceptance property of the scheduler subsystem: the utilization-vs-
// MTBF curve (goodput — checkpoint-surviving work per raw board-hour) is
// monotone non-increasing in the failure rate for a fixed checkpoint
// interval and policy. Per-trial failure sets are nested across MTBFs
// (sched.Failures thinning), so the averaged curve measures degradation.
func TestSchedSweepMonotone(t *testing.T) {
	pool := NewSeeded(8, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedSweepTestConfig()
	pts, err := pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPoint := len(cfg.MTBFs)
	if len(pts) != len(cfg.Policies)*len(cfg.CheckpointsH)*perPoint {
		t.Fatalf("got %d points, want %d", len(pts), len(cfg.Policies)*len(cfg.CheckpointsH)*perPoint)
	}
	for g := 0; g+perPoint <= len(pts); g += perPoint {
		group := pts[g : g+perPoint]
		for i, pt := range group {
			t.Logf("%-9s ckpt=%g mtbf=%5g: goodput %.4f (min %.4f) util %.4f lost %.4f evict %.1f",
				pt.Policy, pt.CheckpointH, pt.MTBFh, pt.Goodput, pt.MinGoodput, pt.Utilization, pt.LostFrac, pt.Evictions)
			if pt.Trials != cfg.Trials {
				t.Fatalf("point %d has %d trials, want %d", g+i, pt.Trials, cfg.Trials)
			}
			if i == 0 {
				// The MTBF list starts failure-free: no evictions, no loss.
				if pt.MTBFh != 0 || pt.Evictions != 0 || pt.LostFrac != 0 {
					t.Fatalf("zero-failure point: mtbf %g evictions %g lost %g", pt.MTBFh, pt.Evictions, pt.LostFrac)
				}
				continue
			}
			if pt.Goodput > group[i-1].Goodput+1e-12 {
				t.Fatalf("%s ckpt=%g: goodput increased with failure rate: %.6f @mtbf=%g -> %.6f @mtbf=%g",
					pt.Policy, pt.CheckpointH, group[i-1].Goodput, group[i-1].MTBFh, pt.Goodput, pt.MTBFh)
			}
			if pt.Evictions < group[i-1].Evictions {
				t.Fatalf("%s ckpt=%g: evictions decreased with failure rate", pt.Policy, pt.CheckpointH)
			}
		}
	}
}

// Sweep results are independent of the worker count (the repo-wide runner
// invariant): a serial pool and a parallel pool produce identical points,
// including across the scheduler-v2 reservation × burst × defrag axes.
func TestSchedSweepWorkerCountInvariant(t *testing.T) {
	cfg := schedSweepTestConfig()
	cfg.Trace.Jobs = 60
	cfg.MTBFs = []float64{0, 30}
	cfg.Trials = 2
	cfg.Policies = []sched.Policy{sched.FragAware}
	cfg.Reservations = []bool{false, true}
	cfg.BurstRates = []float64{0, 0.05}
	cfg.Burst = sched.BurstShape{W: 2, H: 1}
	cfg.DefragThresholds = []float64{0, 0.35}
	cfg.Base.DefragCostH = 0.1
	// All v3 features on (single-valued axes, so the point count stays 16):
	// worker invariance must hold with the shared contention model's memo
	// being filled concurrently.
	cfg.Trace.ElasticFrac = 0.4
	cfg.Trace.PriorityFrac = 0.3
	cfg.Base.Slowdown = &sched.CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}
	cfg.Base.Interference = &sched.Interference{GroupBoards: 2, Taper: 0.25}
	cfg.Interferences = []bool{true}
	cfg.Elastics = []bool{true}
	cfg.Preempts = []bool{true}

	serialPool := NewSeeded(1, 1)
	c, err := serialPool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialPool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := 1 * 1 * 2 * 2 * 2 * 2 // policy x ckpt x res x defrag x burst x mtbf
	if len(serial) != wantPoints {
		t.Fatalf("got %d points, want %d", len(serial), wantPoints)
	}
	parallelPool := NewSeeded(8, 999) // different base seed: must not matter
	c2, err := parallelPool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelPool.SchedSweep(c2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep depends on pool shape:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// The new axes behave across a sweep: bursts only degrade goodput within a
// (policy, checkpoint, reservation, defrag) group at fixed MTBF (nested
// burst sets), and zero-valued axes reproduce the pre-v2 sweep points
// exactly.
func TestSchedSweepBurstAxisMonotoneAndInert(t *testing.T) {
	pool := NewSeeded(8, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	base := schedSweepTestConfig()
	base.MTBFs = []float64{0}
	base.Policies = []sched.Policy{sched.BestFit}
	base.Trials = 4

	// Pre-v2 shape: no new axes set.
	old, err := pool.SchedSweep(c, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.BurstRates = []float64{0, 0.02, 0.1}
	cfg.Burst = sched.BurstShape{W: 3, H: 1}
	pts, err := pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3", len(pts))
	}
	// The zero-burst point must match the pre-v2 sweep bit for bit.
	if !reflect.DeepEqual(old[0], pts[0]) {
		t.Fatalf("zero-burst point differs from pre-v2 sweep:\nold %+v\nnew %+v", old[0], pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].BurstRate <= pts[i-1].BurstRate {
			t.Fatalf("burst axis out of order at %d", i)
		}
		if pts[i].Goodput > pts[i-1].Goodput+1e-12 {
			t.Fatalf("goodput increased with burst rate: %.6f @%g -> %.6f @%g",
				pts[i-1].Goodput, pts[i-1].BurstRate, pts[i].Goodput, pts[i].BurstRate)
		}
		if pts[i].Evictions < pts[i-1].Evictions {
			t.Fatalf("evictions decreased with burst rate")
		}
	}

	// Reservations bound the large-job wait on the same trace.
	cfg = base
	cfg.Trace.Jobs = 120
	cfg.Trace.ArrivalRate = 6
	cfg.Reservations = []bool{false, true}
	pts, err = pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Reservation || !pts[1].Reservation {
		t.Fatalf("reservation axis malformed: %+v", pts)
	}
	if pts[1].MaxWaitLarge >= pts[0].MaxWaitLarge {
		t.Fatalf("reservation max large-job wait %.2fh not below greedy %.2fh",
			pts[1].MaxWaitLarge, pts[0].MaxWaitLarge)
	}
}

// The scheduler-v3 axes behave across a sweep: the all-off point reproduces
// a sweep without the axes bit for bit (even on a trace carrying elastic
// and priority marks, which off-config runs must ignore), and the all-on
// point shows contention and elastic activity and lands on different
// headline metrics.
func TestSchedSweepContentionElasticAxes(t *testing.T) {
	pool := NewSeeded(8, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	base := schedSweepTestConfig()
	base.MTBFs = []float64{0}
	base.Policies = []sched.Policy{sched.BestFit}
	base.Trials = 2
	base.Trace = sched.TraceConfig{
		Jobs: 120, ArrivalRate: 8, MeanService: 5, MaxBoards: 12,
		CommFrac: 0.6, ElasticFrac: 0.5, PriorityFrac: 0.3,
	}
	base.Base.Slowdown = &sched.CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}

	old, err := pool.SchedSweep(c, base)
	if err != nil {
		t.Fatal(err)
	}

	cfg := base
	cfg.Base.Interference = &sched.Interference{GroupBoards: 2, Taper: 0.25}
	cfg.Interferences = []bool{false, true}
	cfg.Elastics = []bool{false, true}
	cfg.Preempts = []bool{false, true}
	pts, err := pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	if !reflect.DeepEqual(old[0], pts[0]) {
		t.Fatalf("all-off point differs from pre-v3 sweep:\nold %+v\nnew %+v", old[0], pts[0])
	}
	var off, on *SchedPoint
	for i := range pts {
		switch {
		case !pts[i].Interference && !pts[i].Elastic && !pts[i].Preempt:
			off = &pts[i]
		case pts[i].Interference && pts[i].Elastic && pts[i].Preempt:
			on = &pts[i]
		}
	}
	if off == nil || on == nil {
		t.Fatal("missing all-off or all-on point")
	}
	if off.Restretches != 0 || off.Shrinks != 0 || off.Regrows != 0 || off.Preemptions != 0 {
		t.Fatalf("all-off point has v3 activity: %+v", off)
	}
	if on.Restretches == 0 || on.Shrinks == 0 {
		t.Fatalf("all-on point inert: restretch=%g shrink=%g regrow=%g preempt=%g",
			on.Restretches, on.Shrinks, on.Regrows, on.Preemptions)
	}
	if on.Goodput == off.Goodput && on.SlowP99 == off.SlowP99 {
		t.Fatal("v3 features moved neither goodput nor SlowP99")
	}
}
