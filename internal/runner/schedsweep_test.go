package runner

import (
	"reflect"
	"testing"

	"hammingmesh/internal/sched"
)

func schedSweepTestConfig() SchedSweepConfig {
	return SchedSweepConfig{
		Trace:        sched.TraceConfig{Jobs: 150, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3},
		Base:         sched.Config{HorizonH: 60, RepairH: 10},
		MTBFs:        []float64{0, 120, 40, 12},
		CheckpointsH: []float64{2},
		Policies:     []sched.Policy{sched.FirstFit, sched.BestFit},
		Trials:       6,
		Seed:         42,
	}
}

// The acceptance property of the scheduler subsystem: the utilization-vs-
// MTBF curve (goodput — checkpoint-surviving work per raw board-hour) is
// monotone non-increasing in the failure rate for a fixed checkpoint
// interval and policy. Per-trial failure sets are nested across MTBFs
// (sched.Failures thinning), so the averaged curve measures degradation.
func TestSchedSweepMonotone(t *testing.T) {
	pool := NewSeeded(8, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	cfg := schedSweepTestConfig()
	pts, err := pool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perPoint := len(cfg.MTBFs)
	if len(pts) != len(cfg.Policies)*len(cfg.CheckpointsH)*perPoint {
		t.Fatalf("got %d points, want %d", len(pts), len(cfg.Policies)*len(cfg.CheckpointsH)*perPoint)
	}
	for g := 0; g+perPoint <= len(pts); g += perPoint {
		group := pts[g : g+perPoint]
		for i, pt := range group {
			t.Logf("%-9s ckpt=%g mtbf=%5g: goodput %.4f (min %.4f) util %.4f lost %.4f evict %.1f",
				pt.Policy, pt.CheckpointH, pt.MTBFh, pt.Goodput, pt.MinGoodput, pt.Utilization, pt.LostFrac, pt.Evictions)
			if pt.Trials != cfg.Trials {
				t.Fatalf("point %d has %d trials, want %d", g+i, pt.Trials, cfg.Trials)
			}
			if i == 0 {
				// The MTBF list starts failure-free: no evictions, no loss.
				if pt.MTBFh != 0 || pt.Evictions != 0 || pt.LostFrac != 0 {
					t.Fatalf("zero-failure point: mtbf %g evictions %g lost %g", pt.MTBFh, pt.Evictions, pt.LostFrac)
				}
				continue
			}
			if pt.Goodput > group[i-1].Goodput+1e-12 {
				t.Fatalf("%s ckpt=%g: goodput increased with failure rate: %.6f @mtbf=%g -> %.6f @mtbf=%g",
					pt.Policy, pt.CheckpointH, group[i-1].Goodput, group[i-1].MTBFh, pt.Goodput, pt.MTBFh)
			}
			if pt.Evictions < group[i-1].Evictions {
				t.Fatalf("%s ckpt=%g: evictions decreased with failure rate", pt.Policy, pt.CheckpointH)
			}
		}
	}
}

// Sweep results are independent of the worker count (the repo-wide runner
// invariant): a serial pool and a parallel pool produce identical points.
func TestSchedSweepWorkerCountInvariant(t *testing.T) {
	cfg := schedSweepTestConfig()
	cfg.Trace.Jobs = 60
	cfg.MTBFs = []float64{0, 30}
	cfg.Trials = 2
	cfg.Policies = []sched.Policy{sched.FragAware}

	serialPool := NewSeeded(1, 1)
	c, err := serialPool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialPool.SchedSweep(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	parallelPool := NewSeeded(8, 999) // different base seed: must not matter
	c2, err := parallelPool.Cluster("hx2mesh", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := parallelPool.SchedSweep(c2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("sweep depends on pool shape:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}
