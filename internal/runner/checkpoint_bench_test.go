package runner

import (
	"context"
	"testing"

	"hammingmesh/internal/journal"
	"hammingmesh/internal/sched"
)

// BenchmarkSweepResume is the tools/bench.sh trajectory for crash-safe
// checkpointing: "fresh" runs a small journaled scheduler sweep end to
// end (checkpoint append overhead included), "resumed" opens a
// fully-journaled checkpoint of the same sweep and replays every point
// without computing. The gap between the two is the wall time a restart
// recovers for free.
func BenchmarkSweepResume(b *testing.B) {
	cfg := schedSweepTestConfig()
	cfg.Trace.Jobs = 40
	cfg.MTBFs = []float64{0, 30}
	cfg.Trials = 2
	cfg.Policies = []sched.Policy{sched.FirstFit}

	pool := NewSeeded(4, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		b.Fatal(err)
	}
	fp := cfg.Fingerprint(c)
	o := journal.Options{NoSync: true}

	b.Run("fresh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dir := b.TempDir()
			ck, err := OpenCheckpoint(dir, fp, o)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pool.SchedSweepJournaled(context.Background(), c, cfg, ck); err != nil {
				b.Fatal(err)
			}
			ck.Close()
		}
	})

	b.Run("resumed", func(b *testing.B) {
		dir := b.TempDir()
		ck, err := OpenCheckpoint(dir, fp, o)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := pool.SchedSweepJournaled(context.Background(), c, cfg, ck); err != nil {
			b.Fatal(err)
		}
		ck.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck, err := OpenCheckpoint(dir, fp, o)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := pool.SchedSweepJournaled(context.Background(), c, cfg, ck); err != nil {
				b.Fatal(err)
			}
			ck.Close()
		}
	})
}
