package runner

import (
	"testing"

	"hammingmesh/internal/core"
)

// The bounded cluster cache must never let its cached entries exceed the
// budget — under churn over more topologies than fit, every access
// re-sizes the cached tables and evicts from the LRU tail — and an
// evicted cluster must rebuild bit-identically (same flow-level
// measurement before and after eviction).
func TestClusterCacheBudgetChurn(t *testing.T) {
	pool := New(2)

	// Establish the reference measurements on an unbounded pool first.
	names := []string{"hx2mesh", "hyperx", "torus", "fattree"}
	ref := make(map[string]float64)
	for _, name := range names {
		c, err := pool.Cluster(name, core.Tiny)
		if err != nil {
			t.Fatal(err)
		}
		share, err := c.AlltoallShare(2, 7)
		if err != nil {
			t.Fatal(err)
		}
		ref[name] = share
	}

	// A budget around one warmed tiny cluster forces churn: the four
	// topologies cannot all stay cached. (Sizes are only swept under a
	// budget, so set an effectively unbounded one to measure.)
	pool.SetClusterBudget(1 << 40)
	_, bytes, _ := pool.CacheStats()
	budget := bytes / int64(len(names))
	if budget <= 0 {
		t.Fatalf("unexpected zero cache size (stats bytes = %d)", bytes)
	}
	pool.SetClusterBudget(budget)
	if _, got, _ := pool.CacheStats(); got > budget {
		t.Fatalf("cache holds %d bytes right after SetClusterBudget(%d)", got, budget)
	}

	for round := 0; round < 3; round++ {
		for _, name := range names {
			c, err := pool.Cluster(name, core.Tiny)
			if err != nil {
				t.Fatal(err)
			}
			share, err := c.AlltoallShare(2, 7)
			if err != nil {
				t.Fatal(err)
			}
			if share != ref[name] {
				t.Fatalf("round %d: %s rebuilt share %v, want bit-identical %v",
					round, name, share, ref[name])
			}
			// Warming the table above grew this cluster; the *cached*
			// total may only exceed the budget until the next access
			// sweeps — trigger one and check the hard invariant.
			if _, err := pool.Cluster(name, core.Tiny); err != nil {
				t.Fatal(err)
			}
			entries, got, _ := pool.CacheStats()
			if got > budget {
				t.Fatalf("round %d after %s: cache holds %d bytes (%d entries) > budget %d",
					round, name, got, entries, budget)
			}
		}
	}
	if _, _, evictions := pool.CacheStats(); evictions == 0 {
		t.Fatalf("churn over %d topologies under a one-cluster budget never evicted", len(names))
	}
}

// Without a budget the cache keeps every cluster (the CLI sweep behavior):
// repeated access returns the same instance and never evicts.
func TestClusterCacheUnboundedDefault(t *testing.T) {
	pool := New(1)
	a, err := pool.Cluster("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Cluster("hx2mesh", core.Tiny)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("unbounded cache rebuilt a cached cluster")
	}
	if entries, bytes, evictions := pool.CacheStats(); entries != 1 || evictions != 0 || bytes != 0 {
		// bytes stays 0 unbounded: accounting only runs under a budget.
		t.Fatalf("stats = (%d entries, %d bytes, %d evictions), want (1, 0, 0)",
			entries, bytes, evictions)
	}
}
