package topo

import "fmt"

// HxMeshConfig parameterizes a single plane of a 2D HammingMesh.
//
// A board is an a×b mesh of accelerators connected by PCB traces. Boards are
// arranged in an x×y grid. Along the x dimension, each of the b accelerator
// rows of a board row is connected — through the W port of the west-edge
// accelerator and the E port of the east-edge accelerator of every board —
// by a logically fully-connected network (a single 64-port switch when it
// fits, otherwise a two-level fat tree). The y dimension is symmetric using
// N/S ports. This mirrors Figure 3 and Appendix C of the paper.
type HxMeshConfig struct {
	A, B int // board dimensions (accelerators per board: a in x, b in y)
	X, Y int // global dimensions (boards)
	// Taper removes uplinks from the per-dimension fat trees (§III-F).
	// 0 means full bandwidth. Only relevant when a dimension needs a
	// two-level tree.
	Taper float64
	// MergeRowSwitch: when 2*B*X (resp. 2*A*Y) ports fit a single 64-port
	// switch, use one switch per board row/column as in the paper's small
	// cluster configurations. Enabled by default via NewHxMesh.
	MergeRowSwitch bool
	LP             LinkParams
}

// HxMesh is the built single-plane network plus index structures used by
// routing, allocation and the collective mapper.
type HxMesh struct {
	*Network
	Cfg HxMeshConfig
	// AccelAt[gy][gx] is the endpoint at global accelerator coordinates.
	AccelAt [][]NodeID
	// RowSwitches[by] and ColSwitches[bx] list the switches of the
	// respective dimension networks (all levels).
	RowSwitches [][]NodeID
	ColSwitches [][]NodeID
}

// NewHxMesh builds a single plane of an a×b-board x×y HammingMesh with the
// paper's default construction rules.
func NewHxMesh(a, b, x, y int, lp LinkParams) *HxMesh {
	return NewHxMeshConfig(HxMeshConfig{A: a, B: b, X: x, Y: y, MergeRowSwitch: true, LP: lp})
}

// NewHyperX2D builds a 2D HyperX, which is isomorphic to an Hx1Mesh (1x1
// boards): each switch-equivalent accelerator is dimension-wise fully
// connected through the row/column networks (footnote 2 of the paper).
func NewHyperX2D(x, y int, lp LinkParams) *HxMesh {
	h := NewHxMesh(1, 1, x, y, lp)
	h.Network.Name = fmt.Sprintf("hyperx-%dx%d", x, y)
	h.Network.Meta.Family = "hyperx"
	return h
}

// NewHxMeshConfig builds the network from an explicit configuration.
func NewHxMeshConfig(cfg HxMeshConfig) *HxMesh {
	if cfg.A < 1 || cfg.B < 1 || cfg.X < 1 || cfg.Y < 1 {
		panic(fmt.Sprintf("topo: invalid HxMesh config %+v", cfg))
	}
	lp := cfg.LP
	n := &Network{Name: fmt.Sprintf("hx%dx%dmesh-%dx%d", cfg.A, cfg.B, cfg.X, cfg.Y)}
	n.Meta = Meta{
		Family: "hxmesh", Planes: lp.NumPlanes,
		BoardA: cfg.A, BoardB: cfg.B, GlobalX: cfg.X, GlobalY: cfg.Y,
		Taper: cfg.Taper, NumAccels: cfg.A * cfg.B * cfg.X * cfg.Y,
	}
	h := &HxMesh{Network: n, Cfg: cfg}

	gw, gh := cfg.X*cfg.A, cfg.Y*cfg.B // accelerators across / down
	h.AccelAt = make([][]NodeID, gh)
	for gy := 0; gy < gh; gy++ {
		h.AccelAt[gy] = make([]NodeID, gw)
		for gx := 0; gx < gw; gx++ {
			id := n.AddNode(Endpoint)
			n.Nodes[id].Coord = [4]int16{int16(gx), int16(gy), int16(gx / cfg.A), int16(gy / cfg.B)}
			h.AccelAt[gy][gx] = id
		}
	}
	// On-board PCB mesh links.
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			if gx+1 < gw && gx/cfg.A == (gx+1)/cfg.A {
				n.Link(h.AccelAt[gy][gx], h.AccelAt[gy][gx+1], PCB, lp.GBps, lp.TraceNS)
			}
			if gy+1 < gh && gy/cfg.B == (gy+1)/cfg.B {
				n.Link(h.AccelAt[gy][gx], h.AccelAt[gy+1][gx], PCB, lp.GBps, lp.TraceNS)
			}
		}
	}
	spec := TaperedTree(cfg.Taper)
	radix := spec.Radix

	// Row networks (x dimension, DAC to endpoints).
	h.RowSwitches = make([][]NodeID, cfg.Y)
	for by := 0; by < cfg.Y; by++ {
		if cfg.MergeRowSwitch && 2*cfg.B*cfg.X <= radix {
			// One switch for the whole board row.
			var attach []NodeID
			for j := 0; j < cfg.B; j++ {
				gy := by*cfg.B + j
				for bx := 0; bx < cfg.X; bx++ {
					attach = append(attach, h.AccelAt[gy][bx*cfg.A])         // W port
					attach = append(attach, h.AccelAt[gy][bx*cfg.A+cfg.A-1]) // E port
				}
			}
			h.RowSwitches[by] = attachTree(n, attach, DAC, lp, spec)
			continue
		}
		// One network per accelerator line (q = 2x ports each).
		for j := 0; j < cfg.B; j++ {
			gy := by*cfg.B + j
			var attach []NodeID
			for bx := 0; bx < cfg.X; bx++ {
				attach = append(attach, h.AccelAt[gy][bx*cfg.A])
				attach = append(attach, h.AccelAt[gy][bx*cfg.A+cfg.A-1])
			}
			h.RowSwitches[by] = append(h.RowSwitches[by], attachTree(n, attach, DAC, lp, spec)...)
		}
	}
	// Column networks (y dimension, AoC to endpoints).
	h.ColSwitches = make([][]NodeID, cfg.X)
	for bx := 0; bx < cfg.X; bx++ {
		if cfg.MergeRowSwitch && 2*cfg.A*cfg.Y <= radix {
			var attach []NodeID
			for i := 0; i < cfg.A; i++ {
				gx := bx*cfg.A + i
				for by := 0; by < cfg.Y; by++ {
					attach = append(attach, h.AccelAt[by*cfg.B][gx])         // S port
					attach = append(attach, h.AccelAt[by*cfg.B+cfg.B-1][gx]) // N port
				}
			}
			h.ColSwitches[bx] = attachTree(n, attach, AoC, lp, spec)
			continue
		}
		for i := 0; i < cfg.A; i++ {
			gx := bx*cfg.A + i
			var attach []NodeID
			for by := 0; by < cfg.Y; by++ {
				attach = append(attach, h.AccelAt[by*cfg.B][gx])
				attach = append(attach, h.AccelAt[by*cfg.B+cfg.B-1][gx])
			}
			h.ColSwitches[bx] = append(h.ColSwitches[bx], attachTree(n, attach, AoC, lp, spec)...)
		}
	}
	return h
}

// Accel returns the endpoint at global accelerator coordinates (gx, gy).
func (h *HxMesh) Accel(gx, gy int) NodeID { return h.AccelAt[gy][gx] }

// Board returns the board coordinates of an endpoint.
func (h *HxMesh) Board(id NodeID) (bx, by int) {
	c := h.Nodes[id].Coord
	return int(c[2]), int(c[3])
}

// BoardAccels returns all endpoints on board (bx, by) in row-major order.
func (h *HxMesh) BoardAccels(bx, by int) []NodeID {
	out := make([]NodeID, 0, h.Cfg.A*h.Cfg.B)
	for j := 0; j < h.Cfg.B; j++ {
		for i := 0; i < h.Cfg.A; i++ {
			out = append(out, h.AccelAt[by*h.Cfg.B+j][bx*h.Cfg.A+i])
		}
	}
	return out
}
