package topo

import "fmt"

// DragonflyConfig is the canonical Dragonfly parameterization of Kim et al.
// used by the paper: a routers per group, p terminals per router, h global
// links per router, g groups. Intra-group links are DAC, global links AoC.
type DragonflyConfig struct {
	A, P, H, G int
	LP         LinkParams
}

// SmallDragonfly is the paper's ≈1k-endpoint configuration: a=16, p=8, h=8,
// 8 groups → 1,024 terminals.
func SmallDragonfly(lp LinkParams) DragonflyConfig {
	return DragonflyConfig{A: 16, P: 8, H: 8, G: 8, LP: lp}
}

// LargeDragonfly is the paper's ≈16k-endpoint configuration: a=32, p=17,
// h=16, 30 groups → 16,320 terminals.
func LargeDragonfly(lp LinkParams) DragonflyConfig {
	return DragonflyConfig{A: 32, P: 17, H: 16, G: 30, LP: lp}
}

// NewDragonfly builds a single plane of a Dragonfly. Router Coord holds
// (group, routerInGroup); endpoint Coord holds (group, routerInGroup, slot).
// Global links are distributed so that every group pair receives
// ⌊a·h/(g-1)⌋ or ⌈a·h/(g-1)⌉ links, assigned round-robin to routers.
func NewDragonfly(cfg DragonflyConfig) *Network {
	if cfg.G < 2 || cfg.A < 1 || cfg.P < 1 || cfg.H < 0 {
		panic(fmt.Sprintf("topo: invalid dragonfly %+v", cfg))
	}
	if cfg.A*cfg.H < cfg.G-1 {
		panic(fmt.Sprintf("topo: dragonfly with a*h=%d cannot connect %d groups", cfg.A*cfg.H, cfg.G))
	}
	lp := cfg.LP
	n := &Network{Name: fmt.Sprintf("dragonfly-a%dp%dh%dg%d", cfg.A, cfg.P, cfg.H, cfg.G)}
	n.Meta = Meta{Family: "dragonfly", Planes: lp.NumPlanes, NumAccels: cfg.G * cfg.A * cfg.P}

	routers := make([][]NodeID, cfg.G)
	for g := 0; g < cfg.G; g++ {
		routers[g] = make([]NodeID, cfg.A)
		for r := 0; r < cfg.A; r++ {
			sw := n.AddNode(Switch)
			n.Nodes[sw].Coord = [4]int16{int16(g), int16(r)}
			routers[g][r] = sw
			for t := 0; t < cfg.P; t++ {
				ep := n.AddNode(Endpoint)
				n.Nodes[ep].Coord = [4]int16{int16(g), int16(r), int16(t)}
				n.Link(ep, sw, DAC, lp.GBps, lp.CableNS)
			}
		}
	}
	// Intra-group full mesh.
	for g := 0; g < cfg.G; g++ {
		for i := 0; i < cfg.A; i++ {
			for j := i + 1; j < cfg.A; j++ {
				n.Link(routers[g][i], routers[g][j], DAC, lp.GBps, lp.CableNS)
			}
		}
	}
	// Global links: per ordered pair decide a link count, then attach the
	// endpoints of each link round-robin within each group.
	slots := make([]int, cfg.G) // next router slot per group
	totalPerGroup := cfg.A * cfg.H
	pairs := cfg.G - 1
	base := totalPerGroup / pairs
	rem := totalPerGroup % pairs
	for gi := 0; gi < cfg.G; gi++ {
		for gj := gi + 1; gj < cfg.G; gj++ {
			// Each group has two pairs at every circular distance cd < g/2
			// and one at cd == g/2 (g even). Handing the rem extra links to
			// the smallest circular distances keeps every group at exactly
			// a*h global ports (when rem is odd this needs g even, which
			// holds for the paper's configurations; otherwise the count is
			// off by at most one port per group).
			links := base
			d := gj - gi
			cd := d
			if cfg.G-d < cd {
				cd = cfg.G - d
			}
			if rem%2 == 0 {
				if cd <= rem/2 {
					links++
				}
			} else if cd <= (rem-1)/2 || 2*cd == cfg.G {
				links++
			}
			for l := 0; l < links; l++ {
				ri := routers[gi][slots[gi]%cfg.A]
				rj := routers[gj][slots[gj]%cfg.A]
				slots[gi]++
				slots[gj]++
				n.Link(ri, rj, AoC, lp.GBps, lp.CableNS)
			}
		}
	}
	return n
}
