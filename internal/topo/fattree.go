package topo

import "fmt"

// TreeSpec parameterizes a folded-Clos (fat tree) built from fixed-radix
// switches. The paper uses 64-port switches throughout; tapering removes
// uplinks at the first level only (§III-D: "fat trees are tapered beginning
// from the second level" counted from the endpoints).
type TreeSpec struct {
	Radix  int // switch port count (64 in the paper)
	L1Down int // endpoint-facing ports per first-level switch
	L1Up   int // uplinks per first-level switch (0 taper => L1Down == L1Up)
}

// NonblockingTree is the paper's nonblocking configuration (32 down / 32 up).
func NonblockingTree() TreeSpec { return TreeSpec{Radix: 64, L1Down: 32, L1Up: 32} }

// TaperedTree returns the paper's tapered configurations: 50% taper uses
// 42 down / 22 up, 75% taper uses 51 down / 13 up (Appendix C). Other
// fractions interpolate on the 64-port radix.
func TaperedTree(taper float64) TreeSpec {
	switch {
	case taper <= 0:
		return NonblockingTree()
	case taper == 0.5:
		return TreeSpec{Radix: 64, L1Down: 42, L1Up: 22}
	case taper == 0.75:
		return TreeSpec{Radix: 64, L1Down: 51, L1Up: 13}
	default:
		up := int(float64(32) * (1 - taper))
		if up < 1 {
			up = 1
		}
		return TreeSpec{Radix: 64, L1Down: 64 - up, L1Up: up}
	}
}

// attachTree connects the given attachment nodes (each contributing exactly
// one port) through a folded-Clos network and returns the created switches.
// leafClass is the cable class of the attachment links; inter-switch links
// are always AoC (§III-D). If all attachments fit a single switch, a single
// switch is created.
func attachTree(n *Network, attach []NodeID, leafClass LinkClass, lp LinkParams, spec TreeSpec) []NodeID {
	if len(attach) == 0 {
		return nil
	}
	if spec.L1Down <= 0 || spec.L1Up < 0 || spec.Radix < 2 {
		panic(fmt.Sprintf("topo: invalid tree spec %+v", spec))
	}
	var switches []NodeID
	if len(attach) <= spec.Radix {
		sw := n.AddNode(Switch)
		n.Nodes[sw].Level = 1
		for _, a := range attach {
			n.Link(a, sw, leafClass, lp.GBps, lp.CableNS)
		}
		return []NodeID{sw}
	}
	// First level.
	nL1 := (len(attach) + spec.L1Down - 1) / spec.L1Down
	l1 := make([]NodeID, nL1)
	for i := range l1 {
		sw := n.AddNode(Switch)
		n.Nodes[sw].Level = 1
		l1[i] = sw
	}
	switches = append(switches, l1...)
	for i, a := range attach {
		n.Link(a, l1[i/spec.L1Down], leafClass, lp.GBps, lp.CableNS)
	}
	switches = append(switches, buildUpper(n, l1, spec.L1Up, spec.Radix, lp, 2)...)
	return switches
}

// buildUpper builds the levels above prev, where each switch in prev
// contributes upPer uplinks. When prev fits the radix (every upper switch
// can reach every prev switch), a single top level is created with uplinks
// spread round-robin. Otherwise prev is partitioned into pods of radix/2
// switches with a nonblocking intermediate level per pod, and a core level
// connects the pods: core c serves the mid switches whose round-robin
// window contains c, and every pod covers every core window, so any two
// endpoints are 6 cables apart (the paper's 3-level diameter). This caps
// the construction at three switch levels, which covers radix³/4 ≈ 65k
// endpoints at radix 64 — beyond the paper's largest cluster.
func buildUpper(n *Network, prev []NodeID, upPer, radix int, lp LinkParams, level int8) []NodeID {
	if len(prev) <= 1 || upPer == 0 {
		return nil
	}
	spread := func(from []NodeID, per int, lvl int8) []NodeID {
		total := len(from) * per
		nTop := (total + radix - 1) / radix
		top := make([]NodeID, nTop)
		for i := range top {
			sw := n.AddNode(Switch)
			n.Nodes[sw].Level = lvl
			top[i] = sw
		}
		for i, p := range from {
			for j := 0; j < per; j++ {
				n.Link(p, top[(i*per+j)%nTop], AoC, lp.GBps, lp.CableNS)
			}
		}
		return top
	}
	if len(prev) <= radix {
		return spread(prev, upPer, level)
	}
	// Pod-based intermediate level: radix/2 prev switches per pod, each pod
	// internally nonblocking.
	podSize := radix / 2
	var mids []NodeID
	for start := 0; start < len(prev); start += podSize {
		end := start + podSize
		if end > len(prev) {
			end = len(prev)
		}
		pod := prev[start:end]
		podUp := len(pod) * upPer
		nMid := (podUp + podSize - 1) / podSize
		mid := make([]NodeID, nMid)
		for i := range mid {
			sw := n.AddNode(Switch)
			n.Nodes[sw].Level = level
			mid[i] = sw
		}
		for i, p := range pod {
			for j := 0; j < upPer; j++ {
				n.Link(p, mid[(i*upPer+j)%nMid], AoC, lp.GBps, lp.CableNS)
			}
		}
		mids = append(mids, mid...)
	}
	cores := spread(mids, podSize, level+1)
	out := make([]NodeID, 0, len(mids)+len(cores))
	out = append(out, mids...)
	out = append(out, cores...)
	return out
}

// NewFatTree builds a standalone fat-tree topology with the given number of
// endpoints, one plane. Endpoints attach with DAC cables; all inter-switch
// links are AoC. Endpoint Coord[0] is the endpoint rank.
func NewFatTree(endpoints int, spec TreeSpec, lp LinkParams) *Network {
	n := &Network{Name: fmt.Sprintf("fattree-%d", endpoints)}
	n.Meta = Meta{Family: "fattree", Planes: lp.NumPlanes, NumAccels: endpoints}
	eps := make([]NodeID, endpoints)
	for i := range eps {
		id := n.AddNode(Endpoint)
		n.Nodes[id].Coord[0] = int16(i % 32768)
		eps[i] = id
	}
	attachTree(n, eps, DAC, lp, spec)
	return n
}
