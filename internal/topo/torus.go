package topo

import "fmt"

// NewTorus2D builds a single plane of a 2D torus of w×h accelerators.
// Accelerators are grouped on boardA×boardB PCB boards (the paper's torus
// baseline uses 2×2 boards); links within a board are PCB, links between
// boards are DAC (the torus baseline uses no switches and no AoC cables).
// Wrap-around links close each ring. Endpoint Coord holds (gx, gy, bx, by).
func NewTorus2D(w, h, boardA, boardB int, lp LinkParams) *Network {
	if w < 2 || h < 2 || boardA < 1 || boardB < 1 {
		panic(fmt.Sprintf("topo: invalid torus %dx%d boards %dx%d", w, h, boardA, boardB))
	}
	n := &Network{Name: fmt.Sprintf("torus-%dx%d", w, h)}
	n.Meta = Meta{
		Family: "torus", Planes: lp.NumPlanes,
		BoardA: boardA, BoardB: boardB, GlobalX: w / boardA, GlobalY: h / boardB,
		NumAccels: w * h,
	}
	at := make([][]NodeID, h)
	for gy := 0; gy < h; gy++ {
		at[gy] = make([]NodeID, w)
		for gx := 0; gx < w; gx++ {
			id := n.AddNode(Endpoint)
			n.Nodes[id].Coord = [4]int16{int16(gx), int16(gy), int16(gx / boardA), int16(gy / boardB)}
			at[gy][gx] = id
		}
	}
	link := func(x1, y1, x2, y2 int) {
		sameBoard := x1/boardA == x2/boardA && y1/boardB == y2/boardB
		class, lat := DAC, lp.CableNS
		if sameBoard {
			class, lat = PCB, lp.TraceNS
		}
		n.Link(at[y1][x1], at[y2][x2], class, lp.GBps, lat)
	}
	for gy := 0; gy < h; gy++ {
		for gx := 0; gx < w; gx++ {
			link(gx, gy, (gx+1)%w, gy)
		}
	}
	for gx := 0; gx < w; gx++ {
		for gy := 0; gy < h; gy++ {
			link(gx, gy, gx, (gy+1)%h)
		}
	}
	return n
}
