// Package topo builds explicit graph representations of the network
// topologies studied in the HammingMesh paper (SC22): HammingMesh itself
// (HxMesh), fat trees (nonblocking and tapered), Dragonfly, 2D HyperX, and
// 2D torus.
//
// A Network is a flat list of nodes (endpoints and switches) connected by
// directed port pairs. Every physical cable is represented as two directed
// ports (one per direction) carrying a link class (PCB trace, DAC copper or
// AoC optical cable), a bandwidth and a latency. The builders deliberately
// mirror the constructions in Appendix C of the paper so that the cost
// model and the simulator operate on the same object.
package topo

import "fmt"

// NodeKind distinguishes accelerators (traffic sources/sinks) from switches.
type NodeKind uint8

const (
	// Endpoint is an accelerator NIC port set (one plane of one accelerator).
	Endpoint NodeKind = iota
	// Switch is a packet switch (including the 4x4 forwarding capability
	// inside an accelerator package, which the HxMesh builder models as the
	// endpoint node itself being allowed to forward).
	Switch
)

func (k NodeKind) String() string {
	switch k {
	case Endpoint:
		return "endpoint"
	case Switch:
		return "switch"
	}
	return fmt.Sprintf("NodeKind(%d)", uint8(k))
}

// LinkClass is the cable technology of a link; it determines cost.
type LinkClass uint8

const (
	// PCB is an on-board metal trace (free in the paper's cost model).
	PCB LinkClass = iota
	// DAC is a direct-attach copper cable (5 m, $272).
	DAC
	// AoC is an active optical cable (20 m, $603).
	AoC

	// NumLinkClasses is the number of link classes (for dense per-class
	// accounting arrays).
	NumLinkClasses = int(AoC) + 1
)

func (c LinkClass) String() string {
	switch c {
	case PCB:
		return "PCB"
	case DAC:
		return "DAC"
	case AoC:
		return "AoC"
	}
	return fmt.Sprintf("LinkClass(%d)", uint8(c))
}

// NodeID indexes into Network.Nodes.
type NodeID int32

// None is the invalid node id.
const None NodeID = -1

// Port is one direction of a cable attached to a node.
type Port struct {
	To      NodeID    // peer node
	ToPort  int32     // index of the reverse port on the peer
	Class   LinkClass // cable technology
	GBps    float64   // bandwidth in gigabytes per second (one direction)
	Latency float64   // propagation latency in nanoseconds
}

// Node is an endpoint or switch with its attached ports.
type Node struct {
	ID    NodeID
	Kind  NodeKind
	Ports []Port
	// Coord carries topology-specific coordinates (meaning documented by
	// each builder); used by routing policies and by tests.
	Coord [4]int16
	// Level is the tier for hierarchical topologies (0 = leaf/endpoint
	// attach level). For HxMesh tree switches it is 1 or 2.
	Level int8
}

// Network is a built topology: a node list plus the endpoint index.
type Network struct {
	Name      string
	Nodes     []Node
	Endpoints []NodeID // endpoints in rank order

	// Meta records the construction parameters for reporting.
	Meta Meta
}

// Meta describes how a Network was constructed.
type Meta struct {
	Family    string // "hxmesh", "fattree", "dragonfly", "torus", "hyperx"
	Planes    int    // number of planes the physical system would have
	BoardA    int    // HxMesh board width (a), 0 if not applicable
	BoardB    int    // HxMesh board height (b)
	GlobalX   int    // HxMesh global width (x) / torus width
	GlobalY   int    // HxMesh global height (y) / torus height
	Taper     float64
	NumAccels int // total accelerators represented by the full system
}

// NumEndpoints returns the number of endpoints.
func (n *Network) NumEndpoints() int { return len(n.Endpoints) }

// NumSwitches returns the number of switch nodes in the built (single-plane)
// graph.
func (n *Network) NumSwitches() int {
	c := 0
	for i := range n.Nodes {
		if n.Nodes[i].Kind == Switch {
			c++
		}
	}
	return c
}

// AddNode appends a node and returns its id.
func (n *Network) AddNode(kind NodeKind) NodeID {
	id := NodeID(len(n.Nodes))
	n.Nodes = append(n.Nodes, Node{ID: id, Kind: kind})
	if kind == Endpoint {
		n.Endpoints = append(n.Endpoints, id)
	}
	return id
}

// Link connects a and b with a bidirectional cable of the given class,
// bandwidth and latency. It returns the port index on a.
func (n *Network) Link(a, b NodeID, class LinkClass, gbps, latencyNS float64) int {
	if a == b {
		panic("topo: self link")
	}
	pa := int32(len(n.Nodes[a].Ports))
	pb := int32(len(n.Nodes[b].Ports))
	n.Nodes[a].Ports = append(n.Nodes[a].Ports, Port{To: b, ToPort: pb, Class: class, GBps: gbps, Latency: latencyNS})
	n.Nodes[b].Ports = append(n.Nodes[b].Ports, Port{To: a, ToPort: pa, Class: class, GBps: gbps, Latency: latencyNS})
	return int(pa)
}

// CableCount returns the number of physical cables of each class in the
// built single-plane graph (each bidirectional link pair counts once).
func (n *Network) CableCount() map[LinkClass]int {
	out := map[LinkClass]int{}
	for i := range n.Nodes {
		for _, p := range n.Nodes[i].Ports {
			if NodeID(i) < p.To { // count each cable once
				out[p.Class]++
			}
		}
	}
	return out
}

// Validate checks structural invariants: port reciprocity, endpoint ids,
// no dangling references. It returns the first violation found.
func (n *Network) Validate() error {
	seen := make(map[NodeID]bool, len(n.Endpoints))
	for _, e := range n.Endpoints {
		if e < 0 || int(e) >= len(n.Nodes) {
			return fmt.Errorf("topo: endpoint id %d out of range", e)
		}
		if n.Nodes[e].Kind != Endpoint {
			return fmt.Errorf("topo: endpoint list contains switch %d", e)
		}
		if seen[e] {
			return fmt.Errorf("topo: duplicate endpoint %d", e)
		}
		seen[e] = true
	}
	nEndpoints := 0
	for i := range n.Nodes {
		node := &n.Nodes[i]
		if NodeID(i) != node.ID {
			return fmt.Errorf("topo: node %d has id %d", i, node.ID)
		}
		if node.Kind == Endpoint {
			nEndpoints++
		}
		for pi, p := range node.Ports {
			if p.To < 0 || int(p.To) >= len(n.Nodes) {
				return fmt.Errorf("topo: node %d port %d points to invalid node %d", i, pi, p.To)
			}
			peer := &n.Nodes[p.To]
			if int(p.ToPort) >= len(peer.Ports) {
				return fmt.Errorf("topo: node %d port %d reverse port %d out of range", i, pi, p.ToPort)
			}
			back := peer.Ports[p.ToPort]
			if back.To != NodeID(i) || int(back.ToPort) != pi {
				return fmt.Errorf("topo: node %d port %d not reciprocal", i, pi)
			}
			if back.Class != p.Class || back.GBps != p.GBps || back.Latency != p.Latency {
				return fmt.Errorf("topo: node %d port %d asymmetric link attributes", i, pi)
			}
		}
	}
	if nEndpoints != len(n.Endpoints) {
		return fmt.Errorf("topo: %d endpoint nodes but %d registered", nEndpoints, len(n.Endpoints))
	}
	return nil
}

// Degree returns the number of ports on node id.
func (n *Network) Degree(id NodeID) int { return len(n.Nodes[id].Ports) }

// LinkParams are the default physical parameters used across the paper's
// simulations (Appendix F): 400 Gb/s links (50 GB/s), 20 ns cable latency,
// 1 ns on-board trace latency.
type LinkParams struct {
	GBps      float64 // per-link bandwidth, one direction
	CableNS   float64 // DAC/AoC latency
	TraceNS   float64 // PCB latency
	SwitchNS  float64 // per-hop switch traversal latency (input+output buffer)
	PacketB   int     // packet size in bytes
	BufferB   int     // per-port input buffer in bytes (credit mode)
	NumPlanes int     // planes represented by a single built plane
}

// DefaultLinkParams mirrors Appendix F (Table III).
func DefaultLinkParams() LinkParams {
	return LinkParams{
		GBps:      50,   // 400 Gb/s
		CableNS:   20,   // link latency
		TraceNS:   1,    // on-board link latency
		SwitchNS:  80,   // in+out buffer latency (2x40 ns)
		PacketB:   8192, // packet size
		BufferB:   1 << 20,
		NumPlanes: 4,
	}
}
