package topo

import (
	"testing"
	"testing/quick"
)

func lp() LinkParams { return DefaultLinkParams() }

func TestHxMeshSmallClusterCounts(t *testing.T) {
	// Appendix C, small cluster (≈1k accelerators), per-plane counts.
	cases := []struct {
		name             string
		a, b, x, y       int
		wantEps          int
		wantSwitches     int
		wantDAC, wantAoC int
	}{
		{"Hx1Mesh", 1, 1, 32, 32, 1024, 64, 2048, 2048},
		{"Hx2Mesh", 2, 2, 16, 16, 1024, 32, 1024, 1024},
		{"Hx4Mesh", 4, 4, 8, 8, 1024, 16, 512, 512},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHxMesh(c.a, c.b, c.x, c.y, lp())
			if err := h.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := h.NumEndpoints(); got != c.wantEps {
				t.Errorf("endpoints = %d, want %d", got, c.wantEps)
			}
			if got := h.NumSwitches(); got != c.wantSwitches {
				t.Errorf("switches = %d, want %d", got, c.wantSwitches)
			}
			cables := h.CableCount()
			if cables[DAC] != c.wantDAC {
				t.Errorf("DAC cables = %d, want %d", cables[DAC], c.wantDAC)
			}
			if cables[AoC] != c.wantAoC {
				t.Errorf("AoC cables = %d, want %d", cables[AoC], c.wantAoC)
			}
			if !Connected(h.Network) {
				t.Error("network not connected")
			}
		})
	}
}

func TestHxMeshLargeClusterCounts(t *testing.T) {
	// Appendix C, large cluster (16,384 accelerators), per-plane counts.
	cases := []struct {
		name             string
		a, b, x, y       int
		wantEps          int
		wantSwitches     int
		wantDAC, wantAoC int
	}{
		{"Hx1Mesh", 1, 1, 128, 128, 16384, 3072, 32768, 32768 + 2*32768},
		{"Hx2Mesh", 2, 2, 64, 64, 16384, 1536, 16384, 16384 + 2*16384},
		{"Hx4Mesh", 4, 4, 32, 32, 16384, 256, 8192, 8192},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := NewHxMesh(c.a, c.b, c.x, c.y, lp())
			if err := h.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := h.NumEndpoints(); got != c.wantEps {
				t.Errorf("endpoints = %d, want %d", got, c.wantEps)
			}
			if got := h.NumSwitches(); got != c.wantSwitches {
				t.Errorf("switches = %d, want %d", got, c.wantSwitches)
			}
			cables := h.CableCount()
			if cables[DAC] != c.wantDAC {
				t.Errorf("DAC cables = %d, want %d", cables[DAC], c.wantDAC)
			}
			if cables[AoC] != c.wantAoC {
				t.Errorf("AoC cables = %d, want %d", cables[AoC], c.wantAoC)
			}
		})
	}
}

func TestHxMeshEndpointDegree(t *testing.T) {
	// Every accelerator has exactly 4 ports per plane (N, S, E, W): on-board
	// mesh links plus edge links into the row/column networks.
	h := NewHxMesh(2, 2, 4, 4, lp())
	for _, e := range h.Endpoints {
		if got := h.Degree(e); got != 4 {
			t.Fatalf("endpoint %d degree = %d, want 4", e, got)
		}
	}
	// Hx1Mesh: W+E to row switch, N+S to column switch.
	h1 := NewHyperX2D(8, 8, lp())
	for _, e := range h1.Endpoints {
		if got := h1.Degree(e); got != 4 {
			t.Fatalf("hyperx endpoint %d degree = %d, want 4", e, got)
		}
	}
}

func TestFatTreeCounts(t *testing.T) {
	cases := []struct {
		name         string
		eps          int
		spec         TreeSpec
		wantSwitches int
		wantAoC      int
	}{
		{"small-nonblocking", 1024, NonblockingTree(), 48, 1024},
		{"small-50", 1024, TaperedTree(0.5), 34, 550},
		{"small-75", 1024, TaperedTree(0.75), 26, 273},
		{"large-nonblocking", 16384, NonblockingTree(), 512 + 512 + 256, 2 * 16384},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := NewFatTree(c.eps, c.spec, lp())
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
			if got := n.NumSwitches(); got != c.wantSwitches {
				t.Errorf("switches = %d, want %d", got, c.wantSwitches)
			}
			cables := n.CableCount()
			if cables[DAC] != c.eps {
				t.Errorf("DAC cables = %d, want %d", cables[DAC], c.eps)
			}
			if cables[AoC] != c.wantAoC {
				t.Errorf("AoC cables = %d, want %d", cables[AoC], c.wantAoC)
			}
			if !Connected(n) {
				t.Error("not connected")
			}
		})
	}
}

func TestFatTreeDiameter(t *testing.T) {
	if got := EndpointDiameter(NewFatTree(1024, NonblockingTree(), lp()), 64); got != 4 {
		t.Errorf("small fat tree diameter = %d, want 4 (Table II)", got)
	}
	if testing.Short() {
		t.Skip("large fat tree diameter in -short mode")
	}
	if got := EndpointDiameter(NewFatTree(16384, NonblockingTree(), lp()), 8); got != 6 {
		t.Errorf("large fat tree diameter = %d, want 6 (Table II)", got)
	}
}

func TestTorusCounts(t *testing.T) {
	n := NewTorus2D(32, 32, 2, 2, lp())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := n.NumEndpoints(); got != 1024 {
		t.Errorf("endpoints = %d, want 1024", got)
	}
	if got := n.NumSwitches(); got != 0 {
		t.Errorf("switches = %d, want 0", got)
	}
	cables := n.CableCount()
	// Appendix C: 2*4/2*16*16 = 1,024 DAC cables total for the small torus.
	if cables[DAC] != 1024 {
		t.Errorf("DAC cables = %d, want 1024", cables[DAC])
	}
	if cables[PCB] != 1024 {
		t.Errorf("PCB links = %d, want 1024", cables[PCB])
	}
	if got := EndpointDiameter(n, 4); got != 32 {
		t.Errorf("torus diameter = %d, want 32 (Table II)", got)
	}
}

func TestDragonflyCounts(t *testing.T) {
	n := NewDragonfly(SmallDragonfly(lp()))
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := n.NumEndpoints(); got != 1024 {
		t.Errorf("endpoints = %d, want 1024", got)
	}
	if got := n.NumSwitches(); got != 128 {
		t.Errorf("switches = %d, want 128 (8 groups x 16)", got)
	}
	cables := n.CableCount()
	// 8 groups * 16 routers * 8 global ports / 2 = 512 AoC cables.
	if cables[AoC] != 512 {
		t.Errorf("AoC cables = %d, want 512", cables[AoC])
	}
	// Every router must have exactly p + (a-1) + h ports.
	for i := range n.Nodes {
		if n.Nodes[i].Kind != Switch {
			continue
		}
		want := 8 + 15 + 8
		if got := n.Degree(NodeID(i)); got != want {
			t.Fatalf("router %d degree = %d, want %d", i, got, want)
		}
	}
	// Diameter: in this balanced construction every router has at least one
	// global link to every other group (18-19 links per group pair spread
	// round-robin over 16 routers), so the worst endpoint pair is
	// ep-router-global-router-ep = 4 cables. (Table II reports 3, which is
	// consistent with switch-hop counting for Dragonfly; see EXPERIMENTS.md.)
	if got := EndpointDiameter(n, 64); got != 4 {
		t.Errorf("dragonfly diameter = %d, want 4", got)
	}
}

func TestHxMeshDiameterSmall(t *testing.T) {
	// Table II: small Hx2Mesh diameter 4 (single switch per row/column).
	if got := EndpointDiameter(NewHxMesh(2, 2, 16, 16, lp()).Network, 128); got != 4 {
		t.Errorf("small Hx2Mesh diameter = %d, want 4", got)
	}
	// The merged per-row switch connects all accelerator lines, so packets
	// may change lines at the switch; the true graph diameter of the small
	// Hx4Mesh is therefore 5, below the paper's per-line formula value of 8
	// (analysis.HxMeshDiameter reproduces the paper's formula).
	if got := EndpointDiameter(NewHxMesh(4, 4, 8, 8, lp()).Network, 128); got != 5 {
		t.Errorf("small Hx4Mesh diameter = %d, want 5", got)
	}
}

func TestHxMeshBisectionClosedForm(t *testing.T) {
	// §III-A: cutting the lower half of the boards cuts a*x*y links
	// (2a links per board times x*y/2 boards).
	for _, c := range []struct{ a, x, y int }{{2, 4, 4}, {2, 8, 8}, {4, 4, 4}, {1, 8, 8}} {
		h := NewHxMesh(c.a, c.a, c.x, c.y, lp())
		want := c.a * c.x * c.y
		if got := HxMeshBisection(h); got != want {
			t.Errorf("Hx%dMesh %dx%d bisection = %d, want %d", c.a, c.x, c.y, got, want)
		}
	}
}

func TestHxMeshPropertyQuick(t *testing.T) {
	// Property: any valid HxMesh validates, is connected, and has the
	// closed-form endpoint count a*b*x*y with all-degree-4 endpoints.
	f := func(a8, b8, x8, y8 uint8) bool {
		a := int(a8%3) + 1
		b := int(b8%3) + 1
		x := int(x8%5) + 2
		y := int(y8%5) + 2
		h := NewHxMesh(a, b, x, y, lp())
		if err := h.Validate(); err != nil {
			return false
		}
		if h.NumEndpoints() != a*b*x*y {
			return false
		}
		for _, e := range h.Endpoints {
			if h.Degree(e) != 4 {
				return false
			}
		}
		return Connected(h.Network)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTorusPropertyQuick(t *testing.T) {
	// Property: torus endpoints all have degree 4 and cable count equals
	// 2*w*h split between PCB and DAC according to board tiling.
	f := func(w8, h8 uint8) bool {
		w := int(w8%6)*2 + 4
		h := int(h8%6)*2 + 4
		n := NewTorus2D(w, h, 2, 2, lp())
		if n.Validate() != nil {
			return false
		}
		cables := n.CableCount()
		if cables[PCB]+cables[DAC] != 2*w*h {
			return false
		}
		return Connected(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	h := NewHxMesh(2, 2, 4, 4, lp())
	n := h.Network
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt a reverse-port index.
	n.Nodes[0].Ports[0].ToPort += 1000
	if err := n.Validate(); err == nil {
		t.Error("Validate did not catch corrupted reverse port")
	}
}

func TestTaperedTreeSpecs(t *testing.T) {
	if s := TaperedTree(0.5); s.L1Down != 42 || s.L1Up != 22 {
		t.Errorf("50%% taper spec = %+v", s)
	}
	if s := TaperedTree(0.75); s.L1Down != 51 || s.L1Up != 13 {
		t.Errorf("75%% taper spec = %+v", s)
	}
	if s := TaperedTree(0); s.L1Down != 32 || s.L1Up != 32 {
		t.Errorf("nonblocking spec = %+v", s)
	}
}

func TestAverageDistancePositive(t *testing.T) {
	h := NewHxMesh(2, 2, 4, 4, lp())
	avg := AverageEndpointDistance(h.Network, 16)
	if avg <= 0 || avg > 8 {
		t.Errorf("average distance = %f out of range", avg)
	}
}

func TestHxMesh1D(t *testing.T) {
	h := NewHxMesh1D(2, 4, 8, lp())
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := h.NumEndpoints(); got != 64 {
		t.Errorf("endpoints = %d, want 64", got)
	}
	if !Connected(h.Network) {
		t.Error("1D HxMesh not connected")
	}
	// Every accelerator has 4 ports: E/W (mesh or switch) and N/S
	// (wrapped vertical ring), except that b=2 columns merge the wrap.
	for _, e := range h.Endpoints {
		if d := h.Degree(e); d != 4 {
			t.Fatalf("endpoint %d degree = %d, want 4", e, d)
		}
	}
	// Vertical rings must wrap: top row accel is adjacent to bottom row.
	top := h.AccelAt[3][0]
	adj := false
	for _, p := range h.Nodes[top].Ports {
		if p.To == h.AccelAt[0][0] {
			adj = true
		}
	}
	if !adj {
		t.Error("vertical wrap link missing")
	}
}

func TestHxMesh1DCableCounts(t *testing.T) {
	// x=8, a=2, b=4: one 64-port switch connects 2*4*8 = 64 edge ports.
	h := NewHxMesh1D(2, 4, 8, lp())
	if got := h.NumSwitches(); got != 1 {
		t.Errorf("switches = %d, want 1", got)
	}
	cables := h.CableCount()
	if cables[DAC] != 64 {
		t.Errorf("DAC cables = %d, want 64", cables[DAC])
	}
	if cables[AoC] != 0 {
		t.Errorf("AoC cables = %d, want 0", cables[AoC])
	}
}

func TestHyperXDirect(t *testing.T) {
	n := NewHyperXDirect(8, 8, 4, lp())
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := n.NumEndpoints(); got != 64 {
		t.Errorf("endpoints = %d, want 64", got)
	}
	if got := n.NumSwitches(); got != 64 {
		t.Errorf("switches = %d, want 64", got)
	}
	// Switch degree: 4 terminal links + 7 row + 7 col.
	for i := range n.Nodes {
		if n.Nodes[i].Kind != Switch {
			continue
		}
		if d := n.Degree(NodeID(i)); d != 4+7+7 {
			t.Fatalf("switch %d degree = %d, want 18", i, d)
		}
	}
	// Diameter: ep, sw, sw, sw, ep = 4 cables worst case.
	if got := EndpointDiameter(n, 16); got != 4 {
		t.Errorf("direct hyperx diameter = %d, want 4", got)
	}
}
