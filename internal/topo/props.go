package topo

// BFSFrom returns, for every node, the minimum number of cables (hops) from
// src, or -1 if unreachable. The endpoint attachment cable counts as one
// hop, matching the paper's cable-counting diameter convention (§III-B).
func BFSFrom(n *Network, src NodeID) []int32 {
	dist := make([]int32, len(n.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, len(n.Nodes))
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		for _, p := range n.Nodes[u].Ports {
			if dist[p.To] < 0 {
				dist[p.To] = du + 1
				queue = append(queue, p.To)
			}
		}
	}
	return dist
}

// Connected reports whether every node is reachable from node 0.
func Connected(n *Network) bool {
	if len(n.Nodes) == 0 {
		return true
	}
	for _, d := range BFSFrom(n, 0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// EndpointDiameter returns the maximum cable count between any pair of
// endpoints, computed exactly by BFS from every endpoint. For graphs with
// more than maxExact endpoints, it BFSes from a deterministic stride sample
// of sources instead (which still lower-bounds the true diameter and is
// exact for the vertex-transitive topologies built here).
func EndpointDiameter(n *Network, maxExact int) int {
	srcs := n.Endpoints
	if len(srcs) > maxExact && maxExact > 0 {
		stride := (len(srcs) + maxExact - 1) / maxExact
		sample := make([]NodeID, 0, maxExact)
		for i := 0; i < len(srcs); i += stride {
			sample = append(sample, srcs[i])
		}
		srcs = sample
	}
	max := 0
	isEndpoint := make([]bool, len(n.Nodes))
	for _, e := range n.Endpoints {
		isEndpoint[e] = true
	}
	for _, s := range srcs {
		dist := BFSFrom(n, s)
		for i, d := range dist {
			if isEndpoint[i] && int(d) > max {
				max = int(d)
			}
		}
	}
	return max
}

// AverageEndpointDistance returns the mean cable count over endpoint pairs,
// sampling at most maxSources BFS sources.
func AverageEndpointDistance(n *Network, maxSources int) float64 {
	srcs := n.Endpoints
	if len(srcs) > maxSources && maxSources > 0 {
		stride := (len(srcs) + maxSources - 1) / maxSources
		sample := make([]NodeID, 0, maxSources)
		for i := 0; i < len(srcs); i += stride {
			sample = append(sample, srcs[i])
		}
		srcs = sample
	}
	isEndpoint := make([]bool, len(n.Nodes))
	for _, e := range n.Endpoints {
		isEndpoint[e] = true
	}
	sum, cnt := 0.0, 0
	for _, s := range srcs {
		dist := BFSFrom(n, s)
		for i, d := range dist {
			if isEndpoint[i] && NodeID(i) != s && d >= 0 {
				sum += float64(d)
				cnt++
			}
		}
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}

// CutWidth counts the cables crossing a node partition. part[i] must be
// true for nodes on one side. Endpoint-to-switch cables count like any
// other cable.
func CutWidth(n *Network, part []bool) int {
	cut := 0
	for i := range n.Nodes {
		for _, p := range n.Nodes[i].Ports {
			if NodeID(i) < p.To && part[i] != part[p.To] {
				cut++
			}
		}
	}
	return cut
}

// HxMeshBisection computes the link cut obtained by splitting an HxMesh
// between board rows y/2-1 and y/2 (the construction in §III-A): every
// column network keeps connecting both halves, so the cut counts, per
// column line, the links from the lower half's north/south attachment
// ports that must carry cross-half traffic. The closed form from the paper
// is a·x·y/2 links per direction pair for a square board; this helper
// instead counts on the real graph by marking the lower half's endpoints
// and the switches whose attached endpoints are all in one half.
func HxMeshBisection(h *HxMesh) int {
	gh := h.Cfg.Y * h.Cfg.B
	part := make([]bool, len(h.Nodes))
	half := gh / 2
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < h.Cfg.X*h.Cfg.A; gx++ {
			part[h.AccelAt[gy][gx]] = gy < half
		}
	}
	// Row switches sit entirely within a half; column switches are placed
	// on the upper side (they serve both halves, so all lower-half
	// attachment links cross the cut, matching the paper's accounting).
	for by, sws := range h.RowSwitches {
		inLower := (by*h.Cfg.B + h.Cfg.B - 1) < half
		for _, sw := range sws {
			part[sw] = inLower
		}
	}
	return CutWidth(h.Network, part)
}
