package topo

import "fmt"

// NewHyperXDirect builds a classic 2D HyperX (Ahn et al.): an x×y grid of
// switches, each directly connected to every switch in its row and column
// with single links, and one accelerator attached per switch through
// terminalLinks parallel links (4 to represent a full plane of the paper's
// case-study accelerator).
//
// Cost-wise the paper treats HyperX as an Hx1Mesh (Appendix C), but its
// bandwidth simulations relay traffic through the high-radix switches —
// which is what gives HyperX its 91.6% global-bandwidth share in Table II,
// well above the 50% structural bound of endpoint-relayed Hx1Mesh. Use
// NewHyperX2D for the cost-equivalent Hx1Mesh construction and this
// builder for bandwidth studies.
func NewHyperXDirect(x, y, terminalLinks int, lp LinkParams) *Network {
	if x < 2 || y < 2 || terminalLinks < 1 {
		panic(fmt.Sprintf("topo: invalid direct hyperx %dx%d t=%d", x, y, terminalLinks))
	}
	n := &Network{Name: fmt.Sprintf("hyperx-direct-%dx%d", x, y)}
	n.Meta = Meta{Family: "hyperx", Planes: lp.NumPlanes, GlobalX: x, GlobalY: y, NumAccels: x * y}
	sw := make([][]NodeID, y)
	for r := 0; r < y; r++ {
		sw[r] = make([]NodeID, x)
		for c := 0; c < x; c++ {
			s := n.AddNode(Switch)
			n.Nodes[s].Coord = [4]int16{int16(c), int16(r)}
			sw[r][c] = s
			ep := n.AddNode(Endpoint)
			n.Nodes[ep].Coord = [4]int16{int16(c), int16(r)}
			for t := 0; t < terminalLinks; t++ {
				n.Link(ep, s, DAC, lp.GBps, lp.CableNS)
			}
		}
	}
	for r := 0; r < y; r++ {
		for c1 := 0; c1 < x; c1++ {
			for c2 := c1 + 1; c2 < x; c2++ {
				n.Link(sw[r][c1], sw[r][c2], DAC, lp.GBps, lp.CableNS)
			}
		}
	}
	for c := 0; c < x; c++ {
		for r1 := 0; r1 < y; r1++ {
			for r2 := r1 + 1; r2 < y; r2++ {
				n.Link(sw[r1][c], sw[r2][c], AoC, lp.GBps, lp.CableNS)
			}
		}
	}
	return n
}
