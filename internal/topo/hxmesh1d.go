package topo

import "fmt"

// NewHxMesh1D builds a one-dimensional HammingMesh (§III: "The board
// arrangement could be reduced to a 1D HxMesh, where y = 1 and each Nk
// link is connected to the corresponding Sk link ('wrapped around')"):
// a single row of x boards whose columns close into on-board vertical
// rings, with only the x dimension switched.
func NewHxMesh1D(a, b, x int, lp LinkParams) *HxMesh {
	if a < 1 || b < 2 || x < 1 {
		panic(fmt.Sprintf("topo: invalid 1D HxMesh a=%d b=%d x=%d (b must be ≥2 to wrap)", a, b, x))
	}
	n := &Network{Name: fmt.Sprintf("hx%dx%dmesh1d-%d", a, b, x)}
	n.Meta = Meta{Family: "hxmesh", Planes: lp.NumPlanes,
		BoardA: a, BoardB: b, GlobalX: x, GlobalY: 1, NumAccels: a * b * x}
	h := &HxMesh{Network: n, Cfg: HxMeshConfig{A: a, B: b, X: x, Y: 1, LP: lp}}

	gw := x * a
	h.AccelAt = make([][]NodeID, b)
	for gy := 0; gy < b; gy++ {
		h.AccelAt[gy] = make([]NodeID, gw)
		for gx := 0; gx < gw; gx++ {
			id := n.AddNode(Endpoint)
			n.Nodes[id].Coord = [4]int16{int16(gx), int16(gy), int16(gx / a), 0}
			h.AccelAt[gy][gx] = id
		}
	}
	// On-board PCB mesh links; the y dimension wraps (N of the top row
	// connects to S of the bottom row of the same board column).
	for gy := 0; gy < b; gy++ {
		for gx := 0; gx < gw; gx++ {
			if gx+1 < gw && gx/a == (gx+1)/a {
				n.Link(h.AccelAt[gy][gx], h.AccelAt[gy][gx+1], PCB, lp.GBps, lp.TraceNS)
			}
			ny := gy + 1
			if ny == b {
				if b > 2 { // b==2 would duplicate the single vertical link
					n.Link(h.AccelAt[gy][gx], h.AccelAt[0][gx], PCB, lp.GBps, lp.TraceNS)
				}
			} else {
				n.Link(h.AccelAt[gy][gx], h.AccelAt[ny][gx], PCB, lp.GBps, lp.TraceNS)
			}
		}
	}
	// Row networks as in the 2D construction.
	spec := NonblockingTree()
	h.RowSwitches = make([][]NodeID, 1)
	if 2*b*x <= spec.Radix {
		var attach []NodeID
		for j := 0; j < b; j++ {
			for bx := 0; bx < x; bx++ {
				attach = append(attach, h.AccelAt[j][bx*a], h.AccelAt[j][bx*a+a-1])
			}
		}
		h.RowSwitches[0] = attachTree(n, attach, DAC, lp, spec)
	} else {
		for j := 0; j < b; j++ {
			var attach []NodeID
			for bx := 0; bx < x; bx++ {
				attach = append(attach, h.AccelAt[j][bx*a], h.AccelAt[j][bx*a+a-1])
			}
			h.RowSwitches[0] = append(h.RowSwitches[0], attachTree(n, attach, DAC, lp, spec)...)
		}
	}
	return h
}
