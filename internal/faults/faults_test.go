package faults

import (
	"errors"
	"math"
	"testing"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

// A zero fault set must leave the simulation bit-identical to the pristine
// golden outputs pinned in internal/netsim/golden_test.go: same topology,
// same flows, same makespan/byte/event counts.
func TestZeroFaultSetReproducesGolden(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	fs := NewBuilder(c).Build()
	if !fs.Zero() {
		t.Fatal("empty builder produced a non-zero fault set")
	}
	if fs.Mask() != nil {
		t.Fatal("zero fault set must expose a nil mask")
	}
	if got := len(fs.SurvivingEndpoints()); got != c.NumEndpoints() {
		t.Fatalf("zero fault set has %d survivors, want %d", got, c.NumEndpoints())
	}
	tab := routing.NewTableMask(c, fs.Mask())
	res, err := netsim.New(c, tab, netsim.DefaultConfig()).Run(
		netsim.ShiftFlows(h.Endpoints, 3, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Makespan, 1838.3999999999999) {
		t.Errorf("makespan = %v, want 1838.4", res.Makespan)
	}
	if res.TotalBytes != 1048576 || res.Events != 704 {
		t.Errorf("totalBytes=%d events=%d, want 1048576/704", res.TotalBytes, res.Events)
	}
}

// Property: for random seeded fault sets below the disconnection threshold
// (the connectivity-preserving sampler), every surviving endpoint pair
// stays mutually reachable on the masked fabric, and the failed sets are
// nested across fractions under one seed.
func TestPropertyConnectedSamplerKeepsPairsReachable(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	fracs := []float64{0.02, 0.05, 0.10, 0.20}
	for seed := int64(1); seed <= 12; seed++ {
		var prev simcore.PortMask
		for _, frac := range fracs {
			fs := SampleLinksConnected(c, frac, seed)
			mask := fs.Mask()
			tab := routing.NewTableMask(c, mask)
			for _, dst := range c.Endpoints {
				d := tab.Dist(dst)
				for _, src := range c.Endpoints {
					if d[src] < 0 {
						t.Fatalf("seed %d frac %.2f: endpoint %d unreachable from %d (%v)",
							seed, frac, dst, src, fs)
					}
				}
			}
			// Nesting: every port masked at the lower fraction stays masked.
			if prev != nil {
				for pid := int32(0); pid < int32(c.NumPorts()); pid++ {
					if prev.Get(pid) && !mask.Get(pid) {
						t.Fatalf("seed %d: fault sets not nested at frac %.2f (port %d)", seed, frac, pid)
					}
				}
			}
			prev = mask
			// Determinism: resampling with the same inputs is identical.
			again := SampleLinksConnected(c, frac, seed).Mask()
			for i := range mask {
				if mask[i] != again[i] {
					t.Fatalf("seed %d frac %.2f: sampler not deterministic", seed, frac)
				}
			}
		}
	}
}

func TestFailSwitchMasksAllitsPorts(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	sw := c.Switches[0]
	fs := NewBuilder(c).FailNode(sw).Build()
	if fs.FailedSwitches() != 1 {
		t.Fatalf("failed switches = %d, want 1", fs.FailedSwitches())
	}
	off, end := c.PortRange(int32(sw))
	for pid := off; pid < end; pid++ {
		if !fs.Mask().Get(pid) || !fs.Mask().Get(c.Ports[pid].Rev) {
			t.Fatalf("port %d of failed switch %d not fully masked", pid, sw)
		}
	}
	// Routing must avoid the dead switch entirely while endpoints stay
	// mutually reachable (HxMesh routes around a dead row/column switch).
	tab := routing.NewTableMask(c, fs.Mask())
	for _, dst := range c.Endpoints {
		d := tab.Dist(dst)
		for _, src := range c.Endpoints {
			if src != dst && d[src] < 0 {
				t.Fatalf("endpoint %d unreachable from %d after one switch failure", dst, src)
			}
		}
		for _, src := range c.Endpoints {
			if src == dst {
				continue
			}
			for _, pid := range tab.Candidates(int32(src), dst) {
				if c.Ports[pid].To == int32(sw) {
					t.Fatalf("candidate port %d routes into dead switch %d", pid, sw)
				}
			}
		}
	}
}

func TestFailBoardKillsItsEndpoints(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	fs := NewBuilder(c).FailBoard(h, 1, 2).Build()
	if got := len(fs.FailedBoards()); got != 1 {
		t.Fatalf("failed boards = %d, want 1", got)
	}
	dead := h.BoardAccels(1, 2)
	if got, want := len(fs.SurvivingEndpoints()), c.NumEndpoints()-len(dead); got != want {
		t.Fatalf("survivors = %d, want %d", got, want)
	}
	for _, id := range dead {
		if !fs.NodeDown(id) {
			t.Fatalf("board endpoint %d not marked down", id)
		}
	}
	// A flow to a dead endpoint is a typed unreachable error.
	tab := routing.NewTableMask(c, fs.Mask())
	alive := fs.SurvivingEndpoints()[0]
	_, err := netsim.New(c, tab, netsim.DefaultConfig()).Run(
		[]netsim.Flow{{Src: alive, Dst: dead[0], Bytes: 8192}})
	var unreach *routing.ErrUnreachable
	if !errors.As(err, &unreach) {
		t.Fatalf("flow to dead endpoint: err = %v, want *routing.ErrUnreachable", err)
	}
	// The surviving endpoints still run a full alltoall shift.
	res, err := netsim.New(c, tab, netsim.DefaultConfig()).Run(
		netsim.ShiftFlows(alivePairs(fs), 1, 16<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != int64(len(fs.SurvivingEndpoints()))*16<<10 {
		t.Fatalf("survivor alltoall delivered %d bytes", res.TotalBytes)
	}
}

func alivePairs(fs *FaultSet) []topo.NodeID { return fs.SurvivingEndpoints() }

// FailBoardRegion is the rack/row outage of the scheduler's burst model: a
// contiguous board block goes down at once, clipped at the mesh edges.
func TestFailBoardRegionClipsAndKills(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)

	// A 2x2 region fully inside the mesh: 4 boards, 16 dead accelerators.
	fs := NewBuilder(c).FailBoardRegion(h, 1, 1, 2, 2).Build()
	if got := len(fs.FailedBoards()); got != 4 {
		t.Fatalf("interior 2x2 region failed %d boards, want 4", got)
	}
	perBoard := len(h.BoardAccels(0, 0))
	if got, want := len(fs.SurvivingEndpoints()), c.NumEndpoints()-4*perBoard; got != want {
		t.Fatalf("survivors = %d, want %d", got, want)
	}

	// The same region anchored at the corner (3, 3) clips to one board.
	fs = NewBuilder(c).FailBoardRegion(h, 3, 3, 2, 2).Build()
	if got := len(fs.FailedBoards()); got != 1 {
		t.Fatalf("corner 2x2 region failed %d boards, want 1 (clipped)", got)
	}

	// A row outage kills exactly one full board row.
	fs = NewBuilder(c).FailBoardRow(h, 2).Build()
	if got := len(fs.FailedBoards()); got != h.Cfg.X {
		t.Fatalf("row outage failed %d boards, want %d", got, h.Cfg.X)
	}
	for bx := 0; bx < h.Cfg.X; bx++ {
		for _, id := range h.BoardAccels(bx, 2) {
			if !fs.NodeDown(id) {
				t.Fatalf("row-outage endpoint %d on board (%d,2) not down", id, bx)
			}
		}
	}
}

func TestSampleLinksNestedAndCounted(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	lo, hi := SampleLinks(c, 0.05, 9), SampleLinks(c, 0.15, 9)
	if lo.FailedLinks() != LinkCount(c, 0.05) || hi.FailedLinks() != LinkCount(c, 0.15) {
		t.Fatalf("failed link counts %d/%d, want %d/%d",
			lo.FailedLinks(), hi.FailedLinks(), LinkCount(c, 0.05), LinkCount(c, 0.15))
	}
	for pid := int32(0); pid < int32(c.NumPorts()); pid++ {
		if lo.Mask().Get(pid) && !hi.Mask().Get(pid) {
			t.Fatalf("plain sampler not nested at port %d", pid)
		}
	}
}
