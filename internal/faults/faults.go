// Package faults injects failures into a compiled network. The paper's
// headline resilience claim (§III-E, Fig. 10) is that HammingMesh degrades
// gracefully: the board/row/column structure routes around failed links,
// switches and whole boards with modest bandwidth loss. This package gives
// every simulator layer one shared representation of a degraded fabric:
//
//   - A FaultSet is an immutable description of what failed — individual
//     cables, single port directions, switches, endpoints, or whole boards
//     (identified by HxMesh board coordinates).
//   - Applied to a simcore.Compiled it yields a simcore.PortMask overlay:
//     masked ports do not exist for routing (masked BFS / candidate DAGs),
//     are refused by netsim, and are skipped by flowsim's parallel-link
//     round-robin. The Compiled network itself is never mutated, so any
//     number of FaultSets can share one compilation.
//
// Fault sets come from explicit specs (Builder) or from seeded samplers.
// Sampling is deterministic: the same (network, fraction, seed) triple
// always fails the same elements, and the sampled sequence is *nested* —
// a higher failure fraction under the same seed is a superset of a lower
// one — so resilience sweeps measure monotone degradation rather than
// sampling noise.
package faults

import (
	"fmt"

	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// FaultSet is an immutable set of failed fabric elements over one compiled
// network. The zero-value-like set returned by NewBuilder(...).Build() with
// no failures masks nothing and is reported as pristine by Zero.
type FaultSet struct {
	c    *simcore.Compiled
	mask simcore.PortMask // masked (down) port directions
	down []bool           // down nodes (all ports masked), indexed by node id

	links    int // failed cables (both directions)
	switches int // failed switch nodes
	boards   [][2]int
	alive    []topo.NodeID // surviving endpoints, rank order
}

// Compiled returns the network the fault set applies to.
func (f *FaultSet) Compiled() *simcore.Compiled { return f.c }

// Mask returns the port-mask overlay (nil when the set is empty). The mask
// is shared, not copied; callers must treat it as read-only.
func (f *FaultSet) Mask() simcore.PortMask {
	if f.Zero() {
		return nil
	}
	return f.mask
}

// Zero reports whether the set contains no failures: a zero FaultSet must
// behave exactly like the pristine fabric (the golden-output invariant).
func (f *FaultSet) Zero() bool { return f.mask.Count() == 0 }

// NodeDown reports whether node id failed entirely.
func (f *FaultSet) NodeDown(id topo.NodeID) bool { return f.down[id] }

// FailedLinks returns the number of failed cables (a cable counts once even
// though both directions are masked).
func (f *FaultSet) FailedLinks() int { return f.links }

// FailedSwitches returns the number of failed switch nodes.
func (f *FaultSet) FailedSwitches() int { return f.switches }

// FailedBoards returns the failed board coordinates (HxMesh only).
func (f *FaultSet) FailedBoards() [][2]int { return f.boards }

// MaskedPorts returns the number of masked port directions.
func (f *FaultSet) MaskedPorts() int { return f.mask.Count() }

// SurvivingEndpoints returns the endpoints whose node did not fail, in rank
// order. The slice is shared and must not be mutated.
func (f *FaultSet) SurvivingEndpoints() []topo.NodeID { return f.alive }

// String summarizes the set for logs and CLI output.
func (f *FaultSet) String() string {
	return fmt.Sprintf("faults{links=%d switches=%d boards=%d maskedPorts=%d}",
		f.links, f.switches, len(f.boards), f.mask.Count())
}

// Builder accumulates failures and produces an immutable FaultSet. Builders
// are cheap; one per scenario. Not safe for concurrent use.
type Builder struct {
	c    *simcore.Compiled
	mask simcore.PortMask
	down []bool

	links    int
	switches int
	boards   [][2]int
}

// NewBuilder starts an empty fault specification over c.
func NewBuilder(c *simcore.Compiled) *Builder {
	return &Builder{
		c:    c,
		mask: simcore.NewPortMask(c.NumPorts()),
		down: make([]bool, c.NumNodes()),
	}
}

// FailPortDir masks a single port direction (e.g. a flaky transmitter).
// The reverse direction stays up.
func (b *Builder) FailPortDir(pid int32) *Builder {
	b.mask.Set(pid)
	return b
}

// FailLink fails the cable containing port pid: both directions are masked.
// Failing an already-failed cable is a no-op.
func (b *Builder) FailLink(pid int32) *Builder {
	rev := b.c.Ports[pid].Rev
	if b.mask.Get(pid) && b.mask.Get(rev) {
		return b
	}
	b.mask.Set(pid)
	b.mask.Set(rev)
	b.links++
	return b
}

// FailNode fails a whole node: every attached cable is masked in both
// directions. Failing a switch models a dead packet switch; failing an
// endpoint models a dead accelerator (its traffic must be excluded by the
// caller — see FaultSet.SurvivingEndpoints).
func (b *Builder) FailNode(id topo.NodeID) *Builder {
	if b.down[id] {
		return b
	}
	b.down[id] = true
	if b.c.IsSwitch(int32(id)) {
		b.switches++
	}
	off, end := b.c.PortRange(int32(id))
	for pid := off; pid < end; pid++ {
		b.FailLink(pid)
	}
	return b
}

// FailBoard fails every accelerator on HxMesh board (bx, by): the whole
// board is powered off, as in the paper's board-replacement scenario
// (§III-E). The caller passes the HxMesh the compiled network was built
// from; the board's endpoints and all their links go down.
func (b *Builder) FailBoard(h *topo.HxMesh, bx, by int) *Builder {
	for _, id := range h.BoardAccels(bx, by) {
		b.FailNode(id)
	}
	b.boards = append(b.boards, [2]int{bx, by})
	return b
}

// FailBoardRegion fails every board of the w×ht region anchored at board
// (bx, by) — the correlated rack/row outage of the scheduler's burst model:
// a power or cooling event takes out a contiguous block of boards at once
// instead of independent singles. The region is clipped at the mesh edges
// (racks are physical; outages do not wrap), so anchors near the boundary
// produce smaller bursts. Boards already failed are failed again
// idempotently (FailNode dedupes ports).
func (b *Builder) FailBoardRegion(h *topo.HxMesh, bx, by, w, ht int) *Builder {
	for dy := 0; dy < ht; dy++ {
		for dx := 0; dx < w; dx++ {
			x, y := bx+dx, by+dy
			if x < 0 || y < 0 || x >= h.Cfg.X || y >= h.Cfg.Y {
				continue
			}
			b.FailBoard(h, x, y)
		}
	}
	return b
}

// FailBoardRow fails a whole board row — the row-outage special case of
// FailBoardRegion (e.g. one PDU feeding a full row of racks).
func (b *Builder) FailBoardRow(h *topo.HxMesh, by int) *Builder {
	return b.FailBoardRegion(h, 0, by, h.Cfg.X, 1)
}

// Build freezes the accumulated failures into an immutable FaultSet.
func (b *Builder) Build() *FaultSet {
	f := &FaultSet{
		c:        b.c,
		mask:     b.mask.Clone(),
		down:     append([]bool(nil), b.down...),
		links:    b.links,
		switches: b.switches,
		boards:   append([][2]int(nil), b.boards...),
	}
	f.alive = make([]topo.NodeID, 0, len(b.c.Endpoints))
	for _, e := range b.c.Endpoints {
		if !f.down[e] {
			f.alive = append(f.alive, e)
		}
	}
	return f
}

// splitmix64 decorrelates seeds (same finalizer as internal/runner).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a tiny deterministic generator for the samplers (no math/rand so
// sampling stays stable across Go releases).
type rng uint64

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	return splitmix64(uint64(*r))
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// CableIDs returns one port id per physical cable (the direction with the
// smaller global port id), in ascending order — the sampling universe for
// link failures.
func CableIDs(c *simcore.Compiled) []int32 {
	out := make([]int32, 0, c.NumPorts()/2)
	for pid := int32(0); pid < int32(c.NumPorts()); pid++ {
		if pid < c.Ports[pid].Rev {
			out = append(out, pid)
		}
	}
	return out
}

// shuffledCables returns the cable universe in the seed's permutation
// order: the nested-failure sequence that all fraction-based samplers
// share.
func shuffledCables(c *simcore.Compiled, seed int64) []int32 {
	cables := CableIDs(c)
	r := rng(splitmix64(uint64(seed)))
	for i := len(cables) - 1; i > 0; i-- {
		j := r.intn(i + 1)
		cables[i], cables[j] = cables[j], cables[i]
	}
	return cables
}

// LinkCount returns how many cables a fraction maps to (rounded to
// nearest), so sweeps can report absolute failure counts.
func LinkCount(c *simcore.Compiled, frac float64) int {
	n := int(frac*float64(len(CableIDs(c))) + 0.5)
	if n < 0 {
		n = 0
	}
	return n
}

// SampleLinks fails a fraction of the cables chosen by the seed. The
// failed set is nested in frac: under one seed, SampleLinks(c, f2, seed)
// with f2 >= f1 fails a superset of SampleLinks(c, f1, seed).
func SampleLinks(c *simcore.Compiled, frac float64, seed int64) *FaultSet {
	b := NewBuilder(c)
	for _, pid := range shuffledCables(c, seed)[:min(LinkCount(c, frac), c.NumPorts()/2)] {
		b.FailLink(pid)
	}
	return b.Build()
}

// SampleLinksConnected fails up to a fraction of the cables while keeping
// every surviving endpoint pair connected: candidates from the seed's
// nested sequence that would disconnect the endpoint set are skipped (the
// operator replaces exactly the cables whose loss would partition the
// fabric — the degraded-but-operational regime the resilience sweeps
// measure). Deterministic in (c, frac, seed), and still nested: lower
// fractions take prefixes of the same accepted sequence.
func SampleLinksConnected(c *simcore.Compiled, frac float64, seed int64) *FaultSet {
	return NewBuilder(c).SampleConnectedLinks(frac, seed).Build()
}

// SampleConnectedLinks adds seeded link failures on top of the failures
// already in the builder (e.g. dead boards), failing up to frac of all
// cables while keeping the builder's surviving endpoints mutually
// connected. Cables already down (including those of failed nodes) are
// skipped without consuming the budget; the accepted sequence is nested in
// frac for a fixed seed and prior failures.
func (b *Builder) SampleConnectedLinks(frac float64, seed int64) *Builder {
	b.AcceptedConnectedLinks(frac, seed)
	return b
}

// AcceptedConnectedLinks is SampleConnectedLinks returning the accepted
// cable ids in acceptance order. Because acceptance is validated
// incrementally, *every prefix* of the returned sequence is itself a
// connectivity-preserving fault set on top of the builder's prior
// failures — resilience sweeps validate the sequence once at the highest
// fraction and replay prefixes for the lower ones instead of re-running
// the per-cable BFS per point.
func (b *Builder) AcceptedConnectedLinks(frac float64, seed int64) []int32 {
	want := LinkCount(b.c, frac)
	accepted := make([]int32, 0, want)
	for _, pid := range shuffledCables(b.c, seed) {
		if len(accepted) == want {
			break
		}
		rev := b.c.Ports[pid].Rev
		if b.mask.Get(pid) && b.mask.Get(rev) {
			continue
		}
		b.mask.Set(pid)
		b.mask.Set(rev)
		if b.connected() {
			b.links++
			accepted = append(accepted, pid)
		} else {
			b.mask.Clear(pid)
			b.mask.Clear(rev)
		}
	}
	return accepted
}

// SampleBoards fails n distinct boards of the HxMesh chosen by the seed.
func SampleBoards(h *topo.HxMesh, c *simcore.Compiled, n int, seed int64) *FaultSet {
	return NewBuilder(c).SampleFailedBoards(h, n, seed).Build()
}

// SampleFailedBoards fails n distinct seeded boards (nested in n for a
// fixed seed, like the link samplers).
func (b *Builder) SampleFailedBoards(h *topo.HxMesh, n int, seed int64) *Builder {
	total := h.Cfg.X * h.Cfg.Y
	if n > total {
		n = total
	}
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	r := rng(splitmix64(uint64(seed) ^ 0xb0a2d5))
	for i := total - 1; i > 0; i-- {
		j := r.intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	for _, bi := range idx[:n] {
		b.FailBoard(h, bi%h.Cfg.X, bi/h.Cfg.X)
	}
	return b
}

// connected reports whether every endpoint not already failed outright is
// reachable from every other over the builder's mask. Link failures must
// never isolate a live accelerator (an isolated endpoint is a
// disconnection, not degradation); with the symmetric masks the builders
// produce, one BFS from any live endpoint decides all pairs.
func (b *Builder) connected() bool {
	var src topo.NodeID = topo.None
	for _, e := range b.c.Endpoints {
		if !b.down[e] {
			src = e
			break
		}
	}
	if src == topo.None {
		return true
	}
	dist := b.c.BFSFromMask(src, b.mask)
	for _, e := range b.c.Endpoints {
		if !b.down[e] && dist[e] < 0 {
			return false
		}
	}
	return true
}
