package core

import (
	"testing"
)

func TestHxMeshClusterEndToEnd(t *testing.T) {
	c := NewHxMesh(2, 2, 4, 4)
	if got := c.Net.NumEndpoints(); got != 64 {
		t.Fatalf("endpoints = %d, want 64", got)
	}
	if c.CostMUSD() <= 0 {
		t.Error("cost must be positive")
	}
	if d := c.Diameter(); d < 2 || d > 8 {
		t.Errorf("diameter = %d out of range", d)
	}
	s, err := c.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.RelBisection != 0.25 {
		t.Errorf("relative bisection = %f, want 0.25", s.RelBisection)
	}
	if p, ok := c.AllocateJob(1, 2, 2); !ok || p.U() != 2 {
		t.Error("job allocation failed")
	}
}

func TestClusterAlltoallShares(t *testing.T) {
	// Flow-level alltoall shares must order: fat tree > Hx2 > Hx4-like.
	ft := NewFatTree(128, 0)
	hx2 := NewHxMesh(2, 2, 8, 8)
	sFT, err := ft.AlltoallShare(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	sHx, err := hx2.AlltoallShare(6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sFT < 0.85 {
		t.Errorf("fat tree share %.2f, want ≥0.85", sFT)
	}
	if sHx >= sFT {
		t.Errorf("Hx2 share %.2f not below fat tree %.2f", sHx, sFT)
	}
	if sHx < 0.1 || sHx > 0.7 {
		t.Errorf("Hx2 share %.2f outside plausible range", sHx)
	}
}

func TestClusterAllreduceShares(t *testing.T) {
	hx2 := NewHxMesh(2, 2, 4, 4)
	share, err := hx2.AllreduceShare(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.75 || share > 1.01 {
		t.Errorf("Hx2 allreduce share = %.3f, want ≈0.98", share)
	}
	ft := NewFatTree(64, 0)
	shareFT, err := ft.AllreduceShare(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	// One-port plane: the bidirectional endpoint-order ring is near the
	// single-plane optimum.
	if shareFT < 0.5 {
		t.Errorf("fat tree allreduce share = %.3f too low", shareFT)
	}
}

func TestPermutationDistribution(t *testing.T) {
	c := NewHxMesh(2, 2, 4, 4)
	bws, err := c.PermutationGBps(128<<10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bws) != 64 {
		t.Fatalf("got %d samples", len(bws))
	}
	for _, b := range bws {
		if b <= 0 || b > 201 {
			t.Errorf("per-endpoint bandwidth %.1f out of range", b)
		}
	}
}

func TestTorusAndDragonflyClusters(t *testing.T) {
	tor := NewTorus(8, 8)
	if tor.Net.NumEndpoints() != 64 {
		t.Error("torus endpoints")
	}
	if _, err := tor.AllreduceShare(64 << 10); err != nil {
		t.Errorf("torus allreduce: %v", err)
	}
	if _, ok := tor.AllocateJob(0, 1, 1); ok {
		t.Error("torus cluster should have no board allocator")
	}
	if _, err := tor.Summary(); err == nil {
		t.Error("torus summary should fail")
	}
}

func TestAlltoallSharePacket(t *testing.T) {
	c := NewHxMesh(2, 2, 4, 4)
	share, err := c.AlltoallSharePacket(128<<10, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if share <= 0 || share > 1.0 {
		t.Errorf("packet alltoall share %.3f out of range", share)
	}
}

func TestInjectionGBps(t *testing.T) {
	if got := NewHxMesh(2, 2, 4, 4).InjectionGBps(); got != 200 {
		t.Errorf("HxMesh injection = %f, want 200", got)
	}
	if got := NewFatTree(64, 0).InjectionGBps(); got != 200 {
		t.Errorf("fat tree normalized injection = %f, want 200 (4 planes)", got)
	}
}
