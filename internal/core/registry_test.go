package core

import "testing"

func TestRegistryTinyBuildsAll(t *testing.T) {
	for _, name := range TopologyNames() {
		c, err := NewByName(name, Tiny)
		if err != nil {
			t.Errorf("%s tiny: %v", name, err)
			continue
		}
		if err := c.Net.Validate(); err != nil {
			t.Errorf("%s tiny: %v", name, err)
		}
		if c.Net.NumEndpoints() < 32 {
			t.Errorf("%s tiny has only %d endpoints", name, c.Net.NumEndpoints())
		}
	}
}

func TestRegistrySmallEndpointCounts(t *testing.T) {
	want := map[string]int{
		"fattree": 1024, "fattree50": 1024, "fattree75": 1024,
		"dragonfly": 1024, "hyperx": 1024, "hx2mesh": 1024, "hx4mesh": 1024, "torus": 1024,
	}
	for name, n := range want {
		c, err := NewByName(name, Small)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := c.Net.NumEndpoints(); got != n {
			t.Errorf("%s small endpoints = %d, want %d", name, got, n)
		}
	}
}

func TestRegistryErrors(t *testing.T) {
	if _, err := NewByName("nope", Small); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := NewByName("hx2mesh", "gigantic"); err == nil {
		t.Error("unknown size accepted")
	}
}

func TestRegistryLargeCountsNoBuildExplosion(t *testing.T) {
	if testing.Short() {
		t.Skip("large builds in -short mode")
	}
	// Large builds must construct and validate (16,384 endpoints).
	for _, name := range []string{"hx4mesh", "torus"} {
		c, err := NewByName(name, Large)
		if err != nil {
			t.Fatalf("%s large: %v", name, err)
		}
		if got := c.Net.NumEndpoints(); got != 16384 {
			t.Errorf("%s large endpoints = %d", name, got)
		}
		if err := c.Net.Validate(); err != nil {
			t.Errorf("%s large: %v", name, err)
		}
	}
}
