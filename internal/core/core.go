// Package core is the public façade of the HammingMesh reproduction: it
// ties together topology construction, compilation to the flat-array
// simulator representation (internal/simcore), routing, cost accounting,
// job allocation, and the packet- and flow-level bandwidth evaluations
// behind a single Cluster type. Examples and command-line tools build on
// this package; specialized studies can reach into the internal packages
// directly. A Cluster's compiled network and routing table are immutable
// and concurrency-safe, so one Cluster can back many parallel experiments
// (see internal/runner).
package core

import (
	"fmt"
	"math/rand"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/analysis"
	"hammingmesh/internal/collective"
	"hammingmesh/internal/cost"
	"hammingmesh/internal/faults"
	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// Cluster is one built network with its derived services.
type Cluster struct {
	Net   *topo.Network
	Comp  *simcore.Compiled
	Hx    *topo.HxMesh // non-nil for HxMesh/HyperX families
	Table *routing.Table
	Grid  *alloc.Grid // board allocator, non-nil for HxMesh families
	LP    topo.LinkParams

	// Faults is the fault set this cluster view routes around (nil for the
	// pristine cluster; set by WithFaults).
	Faults *faults.FaultSet
}

// newCluster compiles the network and wires the shared services. It uses
// simcore.Compile rather than the interning simcore.Of cache so that
// throwaway clusters (benchmark loops, sweeps over many configurations)
// can be garbage collected; sharing happens at the Cluster level (see
// runner.Pool).
func newCluster(n *topo.Network, hx *topo.HxMesh, grid *alloc.Grid, lp topo.LinkParams) *Cluster {
	comp := simcore.Compile(n)
	return &Cluster{
		Net: n, Comp: comp, Hx: hx,
		Table: routing.NewTable(comp),
		Grid:  grid,
		LP:    lp,
	}
}

// NewHxMesh builds an a×b-board x×y HammingMesh cluster.
func NewHxMesh(a, b, x, y int) *Cluster {
	lp := topo.DefaultLinkParams()
	h := topo.NewHxMesh(a, b, x, y, lp)
	return newCluster(h.Network, h, alloc.NewGrid(x, y), lp)
}

// NewHyperX builds a 2D HyperX (Hx1Mesh) cluster.
func NewHyperX(x, y int) *Cluster {
	lp := topo.DefaultLinkParams()
	h := topo.NewHyperX2D(x, y, lp)
	return newCluster(h.Network, h, alloc.NewGrid(x, y), lp)
}

// NewFatTree builds a fat-tree cluster with the given taper (0, 0.5, 0.75).
func NewFatTree(endpoints int, taper float64) *Cluster {
	lp := topo.DefaultLinkParams()
	n := topo.NewFatTree(endpoints, topo.TaperedTree(taper), lp)
	return newCluster(n, nil, nil, lp)
}

// NewTorus builds a 2D torus cluster of w×h accelerators on 2×2 boards.
func NewTorus(w, h int) *Cluster {
	lp := topo.DefaultLinkParams()
	n := topo.NewTorus2D(w, h, 2, 2, lp)
	return newCluster(n, nil, nil, lp)
}

// NewDragonfly builds a Dragonfly cluster.
func NewDragonfly(cfg topo.DragonflyConfig) *Cluster {
	cfg.LP = topo.DefaultLinkParams()
	n := topo.NewDragonfly(cfg)
	return newCluster(n, nil, nil, cfg.LP)
}

// WithFaults returns a degraded view of the cluster: same network and
// compiled form (both immutable), but a routing table that computes routes
// over the fault set's port-mask overlay, and — when the cluster has a
// board allocator — a fresh allocation grid with the failed boards marked
// so job placement skips them (§IV-A failure handling). The pristine
// cluster is returned unchanged for a nil or empty fault set, preserving
// golden outputs bit-for-bit. Measurements on the returned cluster
// (AlltoallShare, AllreduceShare, PermutationGBps, …) automatically route
// around the failures; flows whose destination was cut off surface a typed
// *routing.ErrUnreachable.
func (c *Cluster) WithFaults(fs *faults.FaultSet) *Cluster {
	if fs == nil || fs.Zero() {
		return c
	}
	out := *c
	out.Faults = fs
	out.Table = routing.NewTableMask(c.Comp, fs.Mask())
	if c.Grid != nil {
		g := alloc.NewGrid(c.Grid.X, c.Grid.Y)
		for _, b := range fs.FailedBoards() {
			g.Fail(b[0], b[1])
		}
		out.Grid = g
	}
	return &out
}

// SampleLinkFaults builds a connectivity-preserving fault set failing the
// given fraction of the cluster's cables under the seed (see
// faults.SampleLinksConnected for the nesting guarantee).
func (c *Cluster) SampleLinkFaults(frac float64, seed int64) *faults.FaultSet {
	return faults.SampleLinksConnected(c.Comp, frac, seed)
}

// SampleBoardFaults builds a fault set failing n whole boards; it is only
// available on HxMesh-family clusters.
func (c *Cluster) SampleBoardFaults(n int, seed int64) (*faults.FaultSet, error) {
	if c.Hx == nil {
		return nil, fmt.Errorf("core: board faults need an HxMesh-family cluster, got %s", c.Net.Meta.Family)
	}
	return faults.SampleBoards(c.Hx, c.Comp, n, seed), nil
}

// SampleFaults builds a combined scenario — boards powered off first, then
// a connectivity-preserving fraction of cable failures on top — under one
// seed (the cmd tools' -fail-links/-fail-boards/-fail-seed flags).
func (c *Cluster) SampleFaults(linkFrac float64, boards int, seed int64) (*faults.FaultSet, error) {
	if boards > 0 && c.Hx == nil {
		return nil, fmt.Errorf("core: board faults need an HxMesh-family cluster, got %s", c.Net.Meta.Family)
	}
	b := faults.NewBuilder(c.Comp)
	if boards > 0 {
		b.SampleFailedBoards(c.Hx, boards, seed)
	}
	if linkFrac > 0 {
		b.SampleConnectedLinks(linkFrac, seed)
	}
	return b.Build(), nil
}

// MemoryBytes estimates the resident size of the cluster's shared
// immutable state: the compiled network's flat per-port/per-node arrays
// plus the routing table's lazily built caches. The table part grows as
// experiments warm it, so the estimate should be re-read, not snapshot —
// runner.Pool budgets its cluster cache against this value.
func (c *Cluster) MemoryBytes() int64 {
	// Ports + Owner + GroupOf + GroupPorts are the per-port arrays
	// (~28 B/port); PortOff, Kind, ranks and group offsets are per node
	// (~16 B/node).
	b := int64(c.Comp.NumPorts())*28 + int64(c.Comp.NumNodes())*16
	return b + c.Table.MemoryBytes()
}

// Inventory returns the graph-derived equipment inventory.
func (c *Cluster) Inventory() cost.Inventory { return cost.FromNetwork(c.Net) }

// CostMUSD is the capital cost in millions of USD at paper prices.
func (c *Cluster) CostMUSD() float64 { return c.Inventory().CostMUSD(cost.PaperPrices()) }

// Diameter is the cable-counting diameter computed on the built graph.
func (c *Cluster) Diameter() int { return topo.EndpointDiameter(c.Net, 64) }

// InjectionGBps is the per-accelerator injection bandwidth represented by
// the simulated plane(s): 4 links for HxMesh/torus endpoints, 1 for
// switched endpoints, times the link rate — normalized so every topology
// compares at 4×400 Gb/s as in §III-D.
func (c *Cluster) InjectionGBps() float64 {
	switch c.Net.Meta.Family {
	case "fattree", "dragonfly":
		// Simulated single-port planes; the paper simulates four of them.
		return 4 * c.LP.GBps
	default:
		return 4 * c.LP.GBps // 4 links per plane
	}
}

// SimInjectionGBps is the injection bandwidth of the *simulated* graph:
// one port per endpoint for the switched single-plane builds, four for the
// direct topologies. Shares measured by the simulators normalize against
// this value.
func (c *Cluster) SimInjectionGBps() float64 {
	if c.Net.Meta.Family == "fattree" || c.Net.Meta.Family == "dragonfly" {
		return c.LP.GBps // one port per endpoint in the built plane
	}
	return 4 * c.LP.GBps
}

// FlowConfig returns the cluster's default flow-solver configuration: the
// per-family path-sampling policy under the given seed. The serial
// AlltoallShare and the runner's pooled AlltoallFlowShare both start from
// it, so the two estimators model routing identically.
func (c *Cluster) FlowConfig(seed uint64) flowsim.Config {
	cfg := flowsim.Config{Seed: seed}
	switch c.Net.Meta.Family {
	case "dragonfly":
		// Minimal routing collapses under shifted traffic on Dragonfly
		// (all group-pair demand on few direct links); the paper runs
		// UGAL-L there, which the solver approximates with Valiant
		// subflows through random intermediate routers.
		cfg.ValiantPaths = 8
	}
	return cfg
}

// AlltoallShare estimates the global (alltoall) bandwidth share of the
// injection bandwidth with the flow-level solver over sampled shift
// iterations.
func (c *Cluster) AlltoallShare(nShifts int, seed uint64) (float64, error) {
	s := flowsim.New(c.Comp, c.Table, c.FlowConfig(seed))
	return s.AlltoallShareOver(c.AliveEndpoints(), nShifts, c.SimInjectionGBps(), seed)
}

// AliveEndpoints returns the endpoints participating in measurements: all
// of them on the pristine cluster, the fault set's survivors on a degraded
// view.
func (c *Cluster) AliveEndpoints() []topo.NodeID {
	if c.Faults != nil {
		return c.Faults.SurvivingEndpoints()
	}
	return c.Comp.Endpoints
}

// AlltoallSharePacket measures the share with the packet simulator
// (slower; use for small clusters and validation). The runner's
// AlltoallPacketShare parallelizes this sweep across a worker pool.
func (c *Cluster) AlltoallSharePacket(bytes int64, nShifts int, seed int64) (float64, error) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = seed
	return netsim.AlltoallShareOver(c.Comp, c.Table, cfg, c.AliveEndpoints(), bytes, nShifts, c.SimInjectionGBps(), seed)
}

// AllreduceShare measures the large-message ring-allreduce bandwidth as a
// share of the optimum (half injection), embedding two edge-disjoint
// Hamiltonian rings where the topology supports them and a single
// endpoint-order ring otherwise.
func (c *Cluster) AllreduceShare(bytesPerFlow int64) (float64, error) {
	rings, err := c.AllreduceRings()
	if err != nil {
		return 0, err
	}
	cfg := netsim.DefaultConfig()
	share, err := collective.MeasureAllreduceShare(c.Comp, c.Table, rings, bytesPerFlow, cfg, c.SimInjectionGBps())
	if err != nil {
		return 0, err
	}
	return share, nil
}

// AllreduceRings returns the ring embedding used by AllreduceShare: two
// edge-disjoint Hamiltonian rings on HxMesh/torus, the endpoint-order ring
// elsewhere. On a degraded view, dead accelerators are spliced out of each
// ring: the survivors stay in ring order and the packet simulator routes
// the now-longer neighbor hops around the failures (the rings may lose
// edge-disjointness over the degraded fabric — that bandwidth loss is the
// measurement).
func (c *Cluster) AllreduceRings() ([][]topo.NodeID, error) {
	rings, err := c.allreduceRingsPristine()
	if err != nil {
		return nil, err
	}
	if c.Faults == nil {
		return rings, nil
	}
	for i, ring := range rings {
		alive := make([]topo.NodeID, 0, len(ring))
		for _, id := range ring {
			if !c.Faults.NodeDown(id) {
				alive = append(alive, id)
			}
		}
		if len(alive) < 2 {
			return nil, fmt.Errorf("core: ring %d has %d surviving endpoints, need ≥2", i, len(alive))
		}
		rings[i] = alive
	}
	return rings, nil
}

func (c *Cluster) allreduceRingsPristine() ([][]topo.NodeID, error) {
	switch {
	case c.Hx != nil:
		r1, r2, err := collective.TwoRingsOnHxMesh(c.Hx)
		if err != nil {
			return nil, err
		}
		return [][]topo.NodeID{r1, r2}, nil
	case c.Net.Meta.Family == "torus":
		w := c.Net.Meta.GlobalX * c.Net.Meta.BoardA
		h := c.Net.Meta.GlobalY * c.Net.Meta.BoardB
		r1, r2, err := collective.TwoRingsOnTorus(c.Net, w, h)
		if err != nil {
			return nil, err
		}
		return [][]topo.NodeID{r1, r2}, nil
	default:
		return [][]topo.NodeID{collective.EndpointOrderRing(c.Net)}, nil
	}
}

// PermutationGBps runs random-permutation traffic through the packet
// simulator and returns per-endpoint receive bandwidths (Fig. 12).
func (c *Cluster) PermutationGBps(bytes int64, seed int64) ([]float64, error) {
	return c.PermutationGBpsCfg(netsim.DefaultConfig(), bytes, rand.New(rand.NewSource(seed)))
}

// PermutationGBpsCfg is PermutationGBps with an explicit simulator config
// and permutation source; it defines the Fig. 12 metric (per-flow bytes
// over the flow's own completion time) for both the serial API and the
// runner's parallel sweep.
func (c *Cluster) PermutationGBpsCfg(cfg netsim.Config, bytes int64, rng *rand.Rand) ([]float64, error) {
	flows := netsim.PermutationFlows(c.AliveEndpoints(), bytes, rng)
	res, err := netsim.New(c.Comp, c.Table, cfg).Run(flows)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(flows))
	for i, f := range flows {
		out = append(out, float64(f.Bytes)/res.FlowFinish[i])
	}
	return out, nil
}

// AllocateJob places a u×v-board job with the full heuristic stack.
func (c *Cluster) AllocateJob(id int32, u, v int) (*alloc.Placement, bool) {
	if c.Grid == nil {
		return nil, false
	}
	return c.Grid.Allocate(id, u, v, alloc.DefaultOptions())
}

// Summary prints the closed-form Table II style row for HxMesh clusters.
func (c *Cluster) Summary() (analysis.Summary, error) {
	if c.Hx == nil {
		return analysis.Summary{}, fmt.Errorf("core: summary only available for HxMesh clusters")
	}
	return analysis.HxMeshSummary(c.Hx), nil
}
