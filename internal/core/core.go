// Package core is the public façade of the HammingMesh reproduction: it
// ties together topology construction, routing, cost accounting, job
// allocation, and the packet- and flow-level bandwidth evaluations behind
// a single Cluster type. Examples and command-line tools build on this
// package; specialized studies can reach into the internal packages
// directly.
package core

import (
	"fmt"
	"math/rand"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/analysis"
	"hammingmesh/internal/collective"
	"hammingmesh/internal/cost"
	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/topo"
)

// Cluster is one built network with its derived services.
type Cluster struct {
	Net   *topo.Network
	Hx    *topo.HxMesh // non-nil for HxMesh/HyperX families
	Table *routing.Table
	Grid  *alloc.Grid // board allocator, non-nil for HxMesh families
	LP    topo.LinkParams
}

// NewHxMesh builds an a×b-board x×y HammingMesh cluster.
func NewHxMesh(a, b, x, y int) *Cluster {
	lp := topo.DefaultLinkParams()
	h := topo.NewHxMesh(a, b, x, y, lp)
	return &Cluster{
		Net: h.Network, Hx: h,
		Table: routing.NewTable(h.Network),
		Grid:  alloc.NewGrid(x, y),
		LP:    lp,
	}
}

// NewHyperX builds a 2D HyperX (Hx1Mesh) cluster.
func NewHyperX(x, y int) *Cluster {
	lp := topo.DefaultLinkParams()
	h := topo.NewHyperX2D(x, y, lp)
	return &Cluster{Net: h.Network, Hx: h, Table: routing.NewTable(h.Network),
		Grid: alloc.NewGrid(x, y), LP: lp}
}

// NewFatTree builds a fat-tree cluster with the given taper (0, 0.5, 0.75).
func NewFatTree(endpoints int, taper float64) *Cluster {
	lp := topo.DefaultLinkParams()
	n := topo.NewFatTree(endpoints, topo.TaperedTree(taper), lp)
	return &Cluster{Net: n, Table: routing.NewTable(n), LP: lp}
}

// NewTorus builds a 2D torus cluster of w×h accelerators on 2×2 boards.
func NewTorus(w, h int) *Cluster {
	lp := topo.DefaultLinkParams()
	n := topo.NewTorus2D(w, h, 2, 2, lp)
	return &Cluster{Net: n, Table: routing.NewTable(n), LP: lp}
}

// NewDragonfly builds a Dragonfly cluster.
func NewDragonfly(cfg topo.DragonflyConfig) *Cluster {
	cfg.LP = topo.DefaultLinkParams()
	n := topo.NewDragonfly(cfg)
	return &Cluster{Net: n, Table: routing.NewTable(n), LP: cfg.LP}
}

// Inventory returns the graph-derived equipment inventory.
func (c *Cluster) Inventory() cost.Inventory { return cost.FromNetwork(c.Net) }

// CostMUSD is the capital cost in millions of USD at paper prices.
func (c *Cluster) CostMUSD() float64 { return c.Inventory().CostMUSD(cost.PaperPrices()) }

// Diameter is the cable-counting diameter computed on the built graph.
func (c *Cluster) Diameter() int { return topo.EndpointDiameter(c.Net, 64) }

// InjectionGBps is the per-accelerator injection bandwidth represented by
// the simulated plane(s): 4 links for HxMesh/torus endpoints, 1 for
// switched endpoints, times the link rate — normalized so every topology
// compares at 4×400 Gb/s as in §III-D.
func (c *Cluster) InjectionGBps() float64 {
	switch c.Net.Meta.Family {
	case "fattree", "dragonfly":
		// Simulated single-port planes; the paper simulates four of them.
		return 4 * c.LP.GBps
	default:
		return 4 * c.LP.GBps // 4 links per plane
	}
}

// simInjection is the injection bandwidth of the *simulated* graph.
func (c *Cluster) simInjection() float64 {
	if c.Net.Meta.Family == "fattree" || c.Net.Meta.Family == "dragonfly" {
		return c.LP.GBps // one port per endpoint in the built plane
	}
	return 4 * c.LP.GBps
}

// AlltoallShare estimates the global (alltoall) bandwidth share of the
// injection bandwidth with the flow-level solver over sampled shift
// iterations.
func (c *Cluster) AlltoallShare(nShifts int, seed uint64) (float64, error) {
	cfg := flowsim.Config{Seed: seed}
	switch c.Net.Meta.Family {
	case "dragonfly":
		// Minimal routing collapses under shifted traffic on Dragonfly
		// (all group-pair demand on few direct links); the paper runs
		// UGAL-L there, which the solver approximates with Valiant
		// subflows through random intermediate routers.
		cfg.ValiantPaths = 8
	}
	s := flowsim.New(c.Net, c.Table, cfg)
	return s.AlltoallShare(nShifts, c.simInjection(), seed)
}

// AlltoallSharePacket measures the share with the packet simulator
// (slower; use for small clusters and validation).
func (c *Cluster) AlltoallSharePacket(bytes int64, nShifts int, seed int64) (float64, error) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = seed
	return netsim.AlltoallShare(c.Net, cfg, bytes, nShifts, c.simInjection(), seed)
}

// AllreduceShare measures the large-message ring-allreduce bandwidth as a
// share of the optimum (half injection), embedding two edge-disjoint
// Hamiltonian rings where the topology supports them and a single
// endpoint-order ring otherwise.
func (c *Cluster) AllreduceShare(bytesPerFlow int64) (float64, error) {
	var rings [][]topo.NodeID
	switch {
	case c.Hx != nil:
		r1, r2, err := collective.TwoRingsOnHxMesh(c.Hx)
		if err != nil {
			return 0, err
		}
		rings = [][]topo.NodeID{r1, r2}
	case c.Net.Meta.Family == "torus":
		w := c.Net.Meta.GlobalX * c.Net.Meta.BoardA
		h := c.Net.Meta.GlobalY * c.Net.Meta.BoardB
		r1, r2, err := collective.TwoRingsOnTorus(c.Net, w, h)
		if err != nil {
			return 0, err
		}
		rings = [][]topo.NodeID{r1, r2}
	default:
		rings = [][]topo.NodeID{collective.EndpointOrderRing(c.Net)}
	}
	cfg := netsim.DefaultConfig()
	share, err := collective.MeasureAllreduceShare(c.Net, rings, bytesPerFlow, cfg, c.simInjection())
	if err != nil {
		return 0, err
	}
	return share, nil
}

// PermutationGBps runs random-permutation traffic through the packet
// simulator and returns per-endpoint receive bandwidths (Fig. 12).
func (c *Cluster) PermutationGBps(bytes int64, seed int64) ([]float64, error) {
	rng := rand.New(rand.NewSource(seed))
	flows := netsim.PermutationFlows(c.Net.Endpoints, bytes, rng)
	res, err := netsim.New(c.Net, c.Table, netsim.DefaultConfig()).Run(flows)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(flows))
	for i, f := range flows {
		// Per-flow bandwidth over its own completion time.
		out = append(out, float64(f.Bytes)/res.FlowFinish[i])
	}
	return out, nil
}

// AllocateJob places a u×v-board job with the full heuristic stack.
func (c *Cluster) AllocateJob(id int32, u, v int) (*alloc.Placement, bool) {
	if c.Grid == nil {
		return nil, false
	}
	return c.Grid.Allocate(id, u, v, alloc.DefaultOptions())
}

// Summary prints the closed-form Table II style row for HxMesh clusters.
func (c *Cluster) Summary() (analysis.Summary, error) {
	if c.Hx == nil {
		return analysis.Summary{}, fmt.Errorf("core: summary only available for HxMesh clusters")
	}
	return analysis.HxMeshSummary(c.Hx), nil
}
