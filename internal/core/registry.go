package core

import (
	"fmt"
	"sort"

	"hammingmesh/internal/topo"
)

// ClusterSize selects one of the paper's two design points (§III-D) or a
// scaled-down variant for fast local simulation.
type ClusterSize string

const (
	// Tiny is a scaled-down configuration (~64 accelerators) for fast
	// packet-level simulation on a laptop.
	Tiny ClusterSize = "tiny"
	// Small is the paper's ≈1k-accelerator cluster.
	Small ClusterSize = "small"
	// Large is the paper's ≈16k-accelerator cluster.
	Large ClusterSize = "large"
)

// TopologyNames lists the Table II topologies in row order.
func TopologyNames() []string {
	return []string{"fattree", "fattree50", "fattree75", "dragonfly", "hyperx", "hx2mesh", "hx4mesh", "torus"}
}

// NewByName builds one of the Table II topologies at the given size.
func NewByName(name string, size ClusterSize) (*Cluster, error) {
	type cfg struct{ tiny, small, large func() *Cluster }
	reg := map[string]cfg{
		"fattree": {
			tiny:  func() *Cluster { return NewFatTree(64, 0) },
			small: func() *Cluster { return NewFatTree(1024, 0) },
			large: func() *Cluster { return NewFatTree(16384, 0) },
		},
		"fattree50": {
			tiny:  func() *Cluster { return NewFatTree(64, 0.5) },
			small: func() *Cluster { return NewFatTree(1024, 0.5) },
			large: func() *Cluster { return NewFatTree(16384, 0.5) },
		},
		"fattree75": {
			tiny:  func() *Cluster { return NewFatTree(64, 0.75) },
			small: func() *Cluster { return NewFatTree(1024, 0.75) },
			large: func() *Cluster { return NewFatTree(16384, 0.75) },
		},
		"dragonfly": {
			tiny: func() *Cluster {
				return NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8})
			},
			small: func() *Cluster { return NewDragonfly(topo.SmallDragonfly(topo.DefaultLinkParams())) },
			large: func() *Cluster { return NewDragonfly(topo.LargeDragonfly(topo.DefaultLinkParams())) },
		},
		"hyperx": {
			tiny:  func() *Cluster { return NewHyperX(8, 8) },
			small: func() *Cluster { return NewHyperX(32, 32) },
			large: func() *Cluster { return NewHyperX(128, 128) },
		},
		"hx2mesh": {
			tiny:  func() *Cluster { return NewHxMesh(2, 2, 4, 4) },
			small: func() *Cluster { return NewHxMesh(2, 2, 16, 16) },
			large: func() *Cluster { return NewHxMesh(2, 2, 64, 64) },
		},
		"hx4mesh": {
			tiny:  func() *Cluster { return NewHxMesh(4, 4, 2, 2) },
			small: func() *Cluster { return NewHxMesh(4, 4, 8, 8) },
			large: func() *Cluster { return NewHxMesh(4, 4, 32, 32) },
		},
		"torus": {
			tiny:  func() *Cluster { return NewTorus(8, 8) },
			small: func() *Cluster { return NewTorus(32, 32) },
			large: func() *Cluster { return NewTorus(128, 128) },
		},
	}
	c, ok := reg[name]
	if !ok {
		names := make([]string, 0, len(reg))
		for k := range reg {
			names = append(names, k)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("core: unknown topology %q (choose from %v)", name, names)
	}
	switch size {
	case Tiny:
		return c.tiny(), nil
	case Small:
		return c.small(), nil
	case Large:
		return c.large(), nil
	}
	return nil, fmt.Errorf("core: unknown size %q (tiny|small|large)", size)
}
