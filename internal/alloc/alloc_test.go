package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleAllocation(t *testing.T) {
	g := NewGrid(4, 4)
	p, ok := g.Allocate(0, 2, 2, Options{})
	if !ok {
		t.Fatal("2x2 on empty 4x4 failed")
	}
	if p.U() != 2 || p.V() != 2 {
		t.Fatalf("placement %dx%d, want 2x2", p.U(), p.V())
	}
	if got := g.AllocatedBoards(); got != 4 {
		t.Errorf("allocated %d boards, want 4", got)
	}
	if err := g.Validate([]*Placement{p}); err != nil {
		t.Error(err)
	}
}

func TestFillExactly(t *testing.T) {
	// Four 2x2 jobs exactly fill a 4x4 grid.
	g := NewGrid(4, 4)
	var ps []*Placement
	for i := int32(0); i < 4; i++ {
		p, ok := g.Allocate(i, 2, 2, Options{})
		if !ok {
			t.Fatalf("job %d failed with %d boards free", i, 16-g.AllocatedBoards())
		}
		ps = append(ps, p)
	}
	if g.Utilization() != 1.0 {
		t.Errorf("utilization %.2f, want 1.0", g.Utilization())
	}
	if err := g.Validate(ps); err != nil {
		t.Error(err)
	}
	if _, ok := g.Allocate(9, 1, 1, Options{}); ok {
		t.Error("allocation on full grid succeeded")
	}
}

func TestNonConsecutiveSubnetwork(t *testing.T) {
	// Paper Fig. 5: with failures, a job can use non-consecutive boards as
	// long as rows share column coordinates.
	g := NewGrid(4, 4)
	g.Fail(1, 0)
	g.Fail(2, 1)
	g.Fail(1, 2)
	g.Fail(2, 3)
	// Columns 0 and 3 are free in every row: a 4x2 job must fit.
	p, ok := g.Allocate(0, 4, 2, Options{})
	if !ok {
		t.Fatal("4x2 with column failures not placed")
	}
	if p.U() != 4 || p.V() != 2 {
		t.Fatalf("got %dx%d", p.U(), p.V())
	}
	for _, c := range p.Cols {
		if c != 0 && c != 3 {
			t.Errorf("unexpected column %d", c)
		}
	}
}

func TestTransposeHeuristic(t *testing.T) {
	g := NewGrid(4, 2)
	// A 4x2 request cannot fit (only 2 rows) but its transpose 2x4 can.
	if _, ok := g.Allocate(0, 4, 2, Options{}); ok {
		t.Fatal("4x2 should not fit a 4x2-wide, 2-tall grid without transpose")
	}
	if _, ok := g.Allocate(0, 4, 2, Options{Transpose: true}); !ok {
		t.Error("transpose heuristic did not place 4x2 as 2x4")
	}
}

func TestAspectRatioHeuristic(t *testing.T) {
	g := NewGrid(8, 2)
	// 4x4 = 16 boards fits only as 2x8.
	if _, ok := g.Allocate(0, 4, 4, Options{Transpose: true}); ok {
		t.Fatal("4x4 should not fit in 8x2")
	}
	p, ok := g.Allocate(0, 4, 4, Options{Transpose: true, AspectRatio: true, MaxAspect: 8})
	if !ok {
		t.Fatal("aspect-ratio heuristic did not reshape 4x4 to 2x8")
	}
	if p.U()*p.V() != 16 {
		t.Errorf("reshaped to %dx%d, lost boards", p.U(), p.V())
	}
}

func TestFailEvictsJob(t *testing.T) {
	g := NewGrid(4, 4)
	p, _ := g.Allocate(3, 2, 2, Options{})
	evicted := g.Fail(p.Cols[0], p.Rows[0])
	if evicted != 3 {
		t.Errorf("evicted job %d, want 3", evicted)
	}
	if g.AllocatedBoards() != 0 {
		t.Error("job boards not freed after failure eviction")
	}
	if g.WorkingBoards() != 15 {
		t.Errorf("working boards %d, want 15", g.WorkingBoards())
	}
}

func TestResetKeepsFailures(t *testing.T) {
	g := NewGrid(4, 4)
	g.Fail(0, 0)
	g.Allocate(1, 2, 2, Options{})
	g.Reset()
	if g.AllocatedBoards() != 0 {
		t.Error("reset did not free jobs")
	}
	if g.Owner(0, 0) != Failed {
		t.Error("reset cleared failure")
	}
}

func TestUpperLayerFractionContiguousVsSpread(t *testing.T) {
	// A job inside one L1 group crosses nothing; a job spanning groups
	// crosses the upper level.
	local := &Placement{Rows: []int{0, 1}, Cols: []int{0, 1}}
	if f := UpperLayerFraction(local, TrafficAlltoall, 16); f != 0 {
		t.Errorf("contiguous job upper fraction = %f, want 0", f)
	}
	spread := &Placement{Rows: []int{0, 17}, Cols: []int{0, 17}}
	if f := UpperLayerFraction(spread, TrafficAlltoall, 16); f <= 0.5 {
		t.Errorf("spread job upper fraction = %f, want > 0.5", f)
	}
	// Allreduce traffic crosses less than alltoall when the job spans two
	// L1 groups: only the two boundary ring edges cross, while most
	// alltoall board pairs do.
	big := &Placement{
		Rows: []int{0, 1, 2, 3, 4, 20, 21, 22, 23},
		Cols: []int{0, 1, 2, 3, 4, 20, 21, 22, 23},
	}
	ar := UpperLayerFraction(big, TrafficAllreduce, 16)
	a2a := UpperLayerFraction(big, TrafficAlltoall, 16)
	if ar >= a2a {
		t.Errorf("allreduce fraction %.3f not below alltoall %.3f", ar, a2a)
	}
}

func TestLocalityReducesUpperTraffic(t *testing.T) {
	// With a fragmented grid, the locality option should pick placements
	// with at most the upper-layer traffic of the non-locality result.
	mk := func(locality bool) float64 {
		g := NewGrid(64, 64)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 600; i++ { // fragment with scattered 1x1 jobs
			g.owner[rng.Intn(len(g.owner))] = 999
		}
		opt := Options{Transpose: true, AspectRatio: true, MaxAspect: 8, Locality: locality, TreeGroupBoards: 16}
		var ps []*Placement
		for j := int32(0); j < 40; j++ {
			if p, ok := g.Allocate(j, 4, 4, opt); ok {
				ps = append(ps, p)
			}
		}
		return SystemUpperLayerFraction(ps, TrafficAlltoall, 16)
	}
	withLoc, without := mk(true), mk(false)
	if withLoc > without+1e-9 {
		t.Errorf("locality fraction %.3f worse than greedy %.3f", withLoc, without)
	}
}

func TestAllocationPropertyQuick(t *testing.T) {
	// Property: any sequence of allocations and failures keeps the grid
	// consistent: no board has two owners, placements are rectangular in
	// virtual space, utilization ∈ [0,1].
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(8+rng.Intn(8), 8+rng.Intn(8))
		var ps []*Placement
		for job := int32(0); job < 30; job++ {
			switch rng.Intn(5) {
			case 0:
				g.Fail(rng.Intn(g.X), rng.Intn(g.Y))
				// Drop evicted placements from the check list.
				kept := ps[:0]
				for _, p := range ps {
					alive := true
					for _, r := range p.Rows {
						for _, c := range p.Cols {
							if g.Owner(c, r) != p.Job {
								alive = false
							}
						}
					}
					if alive {
						kept = append(kept, p)
					}
				}
				ps = kept
			default:
				u, v := 1+rng.Intn(4), 1+rng.Intn(4)
				if p, ok := g.Allocate(job, u, v, DefaultOptions()); ok {
					if p.U()*p.V() != u*v {
						return false
					}
					ps = append(ps, p)
				}
			}
		}
		if err := g.Validate(ps); err != nil {
			return false
		}
		util := g.Utilization()
		return util >= 0 && util <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFoldJob(t *testing.T) {
	u, v := FoldJob(4, 4, 2)
	if u != 4 || v != 8 {
		t.Errorf("FoldJob(4,4,2) = %dx%d, want 4x8", u, v)
	}
}

func TestLargeGridAllocationFast(t *testing.T) {
	// §IV-A: the greedy procedure allocated a 1000x1000 HxMesh in under a
	// second. Place a few hundred jobs on a 1000x1000 grid.
	if testing.Short() {
		t.Skip("large grid in -short mode")
	}
	g := NewGrid(1000, 1000)
	placed := 0
	for j := int32(0); j < 200; j++ {
		if _, ok := g.Allocate(j, 10, 10, Options{}); ok {
			placed++
		}
	}
	if placed != 200 {
		t.Errorf("placed %d/200 jobs on an empty 1000x1000 grid", placed)
	}
}

// Fragmentation accounting stays exact through repeated alloc/fail/free/
// repair cycles: owner counts derived from the public accessors always
// match a brute-force scan, allocated+free+failed covers the grid, and
// utilization is allocated/working. This is the bookkeeping the scheduler
// (internal/sched) integrates over simulated time.
func TestAccountingAfterAllocFailFreeCycles(t *testing.T) {
	const x, y = 12, 10
	g := NewGrid(x, y)
	rng := rand.New(rand.NewSource(31))
	live := map[int32]*Placement{}
	failed := map[[2]int]bool{}
	next := int32(0)
	check := func(step int) {
		t.Helper()
		alloc, free, fail := 0, 0, 0
		for by := 0; by < y; by++ {
			for bx := 0; bx < x; bx++ {
				switch o := g.Owner(bx, by); {
				case o >= 0:
					alloc++
				case o == Free:
					free++
				case o == Failed:
					fail++
				default:
					t.Fatalf("step %d: board (%d,%d) has owner %d", step, bx, by, o)
				}
			}
		}
		if alloc+free+fail != x*y {
			t.Fatalf("step %d: %d+%d+%d != %d boards", step, alloc, free, fail, x*y)
		}
		if got := g.AllocatedBoards(); got != alloc {
			t.Fatalf("step %d: AllocatedBoards %d, brute force %d", step, got, alloc)
		}
		if got := g.WorkingBoards(); got != x*y-fail {
			t.Fatalf("step %d: WorkingBoards %d, brute force %d", step, got, x*y-fail)
		}
		if fail != len(failed) {
			t.Fatalf("step %d: %d failed boards, tracked %d", step, fail, len(failed))
		}
		want := 0.0
		if x*y-fail > 0 {
			want = float64(alloc) / float64(x*y-fail)
		}
		if got := g.Utilization(); got != want {
			t.Fatalf("step %d: Utilization %g, want %g", step, got, want)
		}
		var ps []*Placement
		for _, p := range live {
			ps = append(ps, p)
		}
		if err := g.Validate(ps); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // allocate
			u, v := 1+rng.Intn(4), 1+rng.Intn(4)
			if p, ok := g.Allocate(next, u, v, DefaultOptions()); ok {
				live[next] = p
				next++
			}
		case op < 7: // release a random job
			for id := range live {
				g.Release(id)
				delete(live, id)
				break
			}
		case op < 9: // fail a random board (evicts its owner)
			bx, by := rng.Intn(x), rng.Intn(y)
			prev := g.Fail(bx, by)
			failed[[2]int{bx, by}] = true
			if prev >= 0 {
				delete(live, prev)
			}
		default: // repair a failed board
			for b := range failed {
				if !g.Repair(b[0], b[1]) {
					t.Fatalf("step %d: repair of tracked failed board (%d,%d) was a no-op", step, b[0], b[1])
				}
				delete(failed, b)
				break
			}
		}
		check(step)
	}
	// Drain: release everything, repair everything; the grid must be
	// fully free again.
	for id := range live {
		g.Release(id)
	}
	for b := range failed {
		g.Repair(b[0], b[1])
	}
	if g.AllocatedBoards() != 0 || g.WorkingBoards() != x*y || g.Utilization() != 0 {
		t.Fatalf("drained grid not pristine: alloc %d working %d util %g",
			g.AllocatedBoards(), g.WorkingBoards(), g.Utilization())
	}
}
