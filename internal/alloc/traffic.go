package alloc

// TrafficKind selects the workload whose upper-layer fat-tree traffic is
// accounted (Fig. 9).
type TrafficKind uint8

const (
	// TrafficAlltoall models uniform all-to-all between the job's boards.
	TrafficAlltoall TrafficKind = iota
	// TrafficAllreduce models ring allreduce: traffic flows between
	// virtually adjacent boards (including the wrap-around edges).
	TrafficAllreduce
)

// UpperLayerFraction computes, for a placement, the fraction of
// dimension-network traversals that must cross the upper level of a
// two-level per-dimension fat tree whose first-level switches each cover
// groupBoards consecutive boards. Board pairs in the same L1 group stay in
// the first level; pairs in different groups cross the upper level. Pairs
// on different rows and columns traverse two dimension networks via an
// intermediate board (§IV-C2), contributing two traversals.
func UpperLayerFraction(p *Placement, kind TrafficKind, groupBoards int) float64 {
	if groupBoards <= 0 {
		groupBoards = 16
	}
	crossings, traversals := 0, 0
	cross := func(a, b int) {
		traversals++
		if a/groupBoards != b/groupBoards {
			crossings++
		}
	}
	switch kind {
	case TrafficAlltoall:
		// Full enumeration is O((uv)²); for large jobs sample a stride of
		// rows and columns, which preserves the crossing fraction because
		// the metric is an average over pairs.
		rows, cols := strideSample(p.Rows, 12), strideSample(p.Cols, 12)
		for i, r1 := range rows {
			for j, c1 := range cols {
				for i2, r2 := range rows {
					for j2, c2 := range cols {
						if i == i2 && j == j2 {
							continue
						}
						switch {
						case i == i2: // same physical row: row network only
							cross(c1, c2)
						case j == j2: // same column: column network only
							cross(r1, r2)
						default: // via intermediate board: one of each
							cross(c1, c2)
							cross(r1, r2)
						}
					}
				}
			}
		}
	case TrafficAllreduce:
		u, v := p.U(), p.V()
		for i := 0; i < u; i++ {
			for j := 0; j < v; j++ {
				// Virtual ring neighbors along both dimensions (wrapping).
				cross(p.Cols[j], p.Cols[(j+1)%v])
				cross(p.Rows[i], p.Rows[(i+1)%u])
			}
		}
	}
	if traversals == 0 {
		return 0
	}
	return float64(crossings) / float64(traversals)
}

// SystemUpperLayerFraction aggregates UpperLayerFraction over placements,
// weighting each placement by its traversal count (board-pair volume).
func SystemUpperLayerFraction(ps []*Placement, kind TrafficKind, groupBoards int) float64 {
	totalCross, totalTrav := 0.0, 0.0
	for _, p := range ps {
		f := UpperLayerFraction(p, kind, groupBoards)
		w := float64(weight(p, kind))
		totalCross += f * w
		totalTrav += w
	}
	if totalTrav == 0 {
		return 0
	}
	return totalCross / totalTrav
}

func weight(p *Placement, kind TrafficKind) int {
	n := p.U() * p.V()
	if kind == TrafficAlltoall {
		return n * (n - 1)
	}
	return 2 * n
}

// strideSample returns at most max entries of xs, evenly strided,
// always including the first and last entries.
func strideSample(xs []int, max int) []int {
	if len(xs) <= max {
		return xs
	}
	out := make([]int, 0, max)
	step := float64(len(xs)-1) / float64(max-1)
	prev := -1
	for i := 0; i < max; i++ {
		idx := int(float64(i)*step + 0.5)
		if idx == prev {
			continue
		}
		prev = idx
		out = append(out, xs[idx])
	}
	return out
}
