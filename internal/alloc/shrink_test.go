package alloc

import "testing"

func TestShrinkDropColumn(t *testing.T) {
	g := NewGrid(4, 4)
	p, ok := g.Allocate(7, 2, 2, Options{})
	if !ok {
		t.Fatal("2x2 on empty 4x4 failed")
	}
	dropped := p.Cols[1]
	np, err := g.Shrink(p, p.Rows, p.Cols[:1])
	if err != nil {
		t.Fatal(err)
	}
	if np.Job != 7 || np.U() != 2 || np.V() != 1 {
		t.Fatalf("shrunk placement %+v, want 2x1 for job 7", np)
	}
	for _, r := range p.Rows {
		if got := g.Owner(dropped, r); got != Free {
			t.Errorf("board (%d,%d) owner %d, want Free", dropped, r, got)
		}
		if got := g.Owner(np.Cols[0], r); got != 7 {
			t.Errorf("kept board (%d,%d) owner %d, want 7", np.Cols[0], r, got)
		}
	}
	if err := g.Validate([]*Placement{np}); err != nil {
		t.Error(err)
	}
}

func TestShrinkErrorsLeaveGridIntact(t *testing.T) {
	g := NewGrid(4, 4)
	p, ok := g.Allocate(1, 2, 2, Options{})
	if !ok {
		t.Fatal("allocate failed")
	}
	before := g.AllocatedBoards()
	if _, err := g.Shrink(p, nil, p.Cols); err == nil {
		t.Error("empty keepRows accepted")
	}
	if _, err := g.Shrink(p, []int{99}, p.Cols); err == nil {
		t.Error("row outside placement accepted")
	}
	if _, err := g.Shrink(p, p.Rows, []int{99}); err == nil {
		t.Error("col outside placement accepted")
	}
	if got := g.AllocatedBoards(); got != before {
		t.Fatalf("failed shrink changed grid: %d boards, was %d", got, before)
	}
	// Stale placement: release then shrink must fail without freeing.
	g.Release(1)
	if _, err := g.Shrink(p, p.Rows, p.Cols[:1]); err == nil {
		t.Error("stale placement accepted")
	}
}

func TestShrinkThenFail(t *testing.T) {
	// The elastic scheduler's failure path: trim the failed board's column,
	// then Fail it — the job must survive.
	g := NewGrid(4, 4)
	p, ok := g.Allocate(3, 2, 2, Options{})
	if !ok {
		t.Fatal("allocate failed")
	}
	bx, by := p.Cols[0], p.Rows[0]
	np, err := g.Shrink(p, p.Rows, p.Cols[1:])
	if err != nil {
		t.Fatal(err)
	}
	if victim := g.Fail(bx, by); victim != Free {
		t.Fatalf("failing trimmed board evicted %d", victim)
	}
	if err := g.Validate([]*Placement{np}); err != nil {
		t.Error(err)
	}
}
