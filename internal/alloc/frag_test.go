package alloc

import "testing"

func TestLargestPlaceableAndFragmentation(t *testing.T) {
	g := NewGrid(4, 4)
	if got := g.LargestPlaceable(); got != 16 {
		t.Fatalf("empty 4x4: largest placeable %d, want 16", got)
	}
	if f := g.Fragmentation(); f != 0 {
		t.Fatalf("empty grid fragmentation %g, want 0", f)
	}

	// Checkerboard the grid: free boards only at (x+y) even. Any two rows
	// share no free columns with a third pattern... here rows 0,2 share
	// columns {0,2} and rows 1,3 share {1,3}, so the largest placement is
	// 2 rows x 2 cols = 4 of 8 free boards.
	for by := 0; by < 4; by++ {
		for bx := 0; bx < 4; bx++ {
			if (bx+by)%2 == 1 {
				g.owner[by*g.X+bx] = 9 // an opaque owner
			}
		}
	}
	if free := g.FreeBoards(); free != 8 {
		t.Fatalf("checkerboard free %d, want 8", free)
	}
	if got := g.LargestPlaceable(); got != 4 {
		t.Fatalf("checkerboard largest placeable %d, want 4", got)
	}
	if f := g.Fragmentation(); f != 0.5 {
		t.Fatalf("checkerboard fragmentation %g, want 0.5", f)
	}

	// A fully failed grid has no free boards and, by convention, no
	// fragmentation.
	h := NewGrid(2, 2)
	for by := 0; by < 2; by++ {
		for bx := 0; bx < 2; bx++ {
			h.Fail(bx, by)
		}
	}
	if got := h.LargestPlaceable(); got != 0 {
		t.Fatalf("failed grid largest placeable %d, want 0", got)
	}
	if f := h.Fragmentation(); f != 0 {
		t.Fatalf("failed grid fragmentation %g, want 0", f)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	g := NewGrid(3, 3)
	if _, ok := g.Allocate(7, 2, 2, Options{}); !ok {
		t.Fatal("2x2 should place on an empty 3x3 grid")
	}
	c := g.Clone()
	if c.X != g.X || c.Y != g.Y || c.AllocatedBoards() != g.AllocatedBoards() {
		t.Fatalf("clone mismatch: %dx%d alloc %d, want %dx%d alloc %d",
			c.X, c.Y, c.AllocatedBoards(), g.X, g.Y, g.AllocatedBoards())
	}
	c.Release(7)
	if c.AllocatedBoards() != 0 {
		t.Fatal("release on clone did not free its boards")
	}
	if g.AllocatedBoards() != 4 {
		t.Fatal("release on clone mutated the original grid")
	}
	// LargestPlaceable on the mutated clone sees the whole grid again.
	if got := c.LargestPlaceable(); got != 9 {
		t.Fatalf("cleared clone largest placeable %d, want 9", got)
	}
}
