package alloc

import "fmt"

// Shrink trims a committed placement to a subset of its rows and columns,
// freeing the trimmed boards, and returns the reduced placement. keepRows
// and keepCols must be non-empty subsets of p.Rows and p.Cols; every board
// of p must still be owned by p.Job (the grid is left untouched on error).
// The elastic scheduler uses this to ride out a board failure: the failed
// board's row or column is trimmed away, the board itself ends up Free,
// and the caller may then Fail it without evicting the job.
func (g *Grid) Shrink(p *Placement, keepRows, keepCols []int) (*Placement, error) {
	if len(keepRows) == 0 || len(keepCols) == 0 {
		return nil, fmt.Errorf("alloc: shrink of job %d to an empty shape", p.Job)
	}
	inRows := make(map[int]bool, len(keepRows))
	for _, r := range keepRows {
		if !containsInt(p.Rows, r) {
			return nil, fmt.Errorf("alloc: shrink keeps row %d outside placement rows %v", r, p.Rows)
		}
		inRows[r] = true
	}
	inCols := make(map[int]bool, len(keepCols))
	for _, c := range keepCols {
		if !containsInt(p.Cols, c) {
			return nil, fmt.Errorf("alloc: shrink keeps col %d outside placement cols %v", c, p.Cols)
		}
		inCols[c] = true
	}
	for _, r := range p.Rows {
		for _, c := range p.Cols {
			if own := g.owner[r*g.X+c]; own != p.Job {
				return nil, fmt.Errorf("alloc: board (%d,%d) owned by %d, not job %d; placement is stale", c, r, own, p.Job)
			}
		}
	}
	for _, r := range p.Rows {
		for _, c := range p.Cols {
			if !inRows[r] || !inCols[c] {
				g.owner[r*g.X+c] = Free
			}
		}
	}
	np := &Placement{Job: p.Job}
	np.Rows = append(np.Rows, keepRows...)
	np.Cols = append(np.Cols, keepCols...)
	return np, nil
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
