package alloc

import (
	"math/rand"
	"testing"
)

func TestDefragmentRecoversSpace(t *testing.T) {
	// Fragment a grid so a large job cannot place, then defragment and
	// verify it fits.
	g := NewGrid(8, 8)
	rng := rand.New(rand.NewSource(11))
	var placements []*Placement
	for j := int32(0); j < 24; j++ {
		if p, ok := g.Allocate(j, 1, 1+rng.Intn(2), Options{}); ok {
			placements = append(placements, p)
		}
	}
	// Release every other job to create holes.
	kept := placements[:0]
	for i, p := range placements {
		if i%2 == 0 {
			g.Release(p.Job)
		} else {
			kept = append(kept, p)
		}
	}
	placements = append([]*Placement{}, kept...)
	// Defragment with a pending 4x6 job.
	out, rep := g.Defragment(placements, [][2]int{{4, 6}}, DefaultOptions())
	if rep.JobsAfter < rep.JobsBefore {
		t.Errorf("defrag lost jobs: %d -> %d", rep.JobsBefore, rep.JobsAfter)
	}
	found := false
	for _, p := range out {
		if p.U()*p.V() == 24 {
			found = true
		}
	}
	if !found {
		t.Error("pending 4x6 job not placed after defragmentation")
	}
	if err := g.Validate(out); err != nil {
		t.Error(err)
	}
	if rep.After < rep.Before {
		t.Errorf("utilization fell from %.2f to %.2f", rep.Before, rep.After)
	}
}

func TestDefragmentKeepsFailures(t *testing.T) {
	g := NewGrid(4, 4)
	g.Fail(0, 0)
	p, _ := g.Allocate(1, 2, 2, Options{})
	out, _ := g.Defragment([]*Placement{p}, nil, DefaultOptions())
	if g.Owner(0, 0) != Failed {
		t.Error("defragmentation cleared a failure")
	}
	if len(out) != 1 {
		t.Errorf("job count after defrag = %d", len(out))
	}
}
