package alloc

// Clone returns an independent copy of the grid (same dimensions and board
// owners). Schedulers use clones as shadow grids for reservation
// projections: future releases are replayed on the copy without touching
// the live allocation state.
func (g *Grid) Clone() *Grid {
	return &Grid{X: g.X, Y: g.Y, owner: append([]int32(nil), g.owner...)}
}

// FreeBoards counts the boards that are neither failed nor owned.
func (g *Grid) FreeBoards() int {
	n := 0
	for _, o := range g.owner {
		if o == Free {
			n++
		}
	}
	return n
}

// LargestPlaceable returns the board count of the largest job the grid can
// place right now: the maximum u·v over all shapes for which the greedy
// row-intersection search (the same one Allocate runs) finds a placement.
// Because placements need u rows sharing v free columns — not a contiguous
// rectangle — this is the allocator's own notion of "largest free block".
func (g *Grid) LargestPlaceable() int {
	avail := g.availRows()
	trial := newColSet(g.X)
	inter := newColSet(g.X)
	best := 0
	for v := 1; v <= g.X; v++ {
		maxU := 0
		for start := 0; start < g.Y; start++ {
			if avail[start].count() < v {
				continue
			}
			copy(inter, avail[start])
			u := 1
			for r := start + 1; r < g.Y; r++ {
				avail[r].andInto(trial, inter)
				if trial.count() >= v {
					copy(inter, trial)
					u++
				}
			}
			if u > maxU {
				maxU = u
			}
		}
		if maxU == 0 {
			break // no row has v free columns; wider shapes cannot fit either
		}
		if maxU*v > best {
			best = maxU * v
		}
	}
	return best
}

// Fragmentation measures how much of the free capacity is stranded in
// shapes no single job can use: 1 − LargestPlaceable/FreeBoards. An empty
// or freshly reset grid scores 0 (one job could take everything); a grid
// whose free boards are scattered so that only small placements succeed
// scores close to 1. A grid with no free boards scores 0 (nothing is
// stranded). Schedulers trigger checkpoint-migrate defragmentation when
// this crosses a threshold while jobs wait.
func (g *Grid) Fragmentation() float64 {
	free := g.FreeBoards()
	if free == 0 {
		return 0
	}
	return 1 - float64(g.LargestPlaceable())/float64(free)
}
