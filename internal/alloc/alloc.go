// Package alloc implements the HammingMesh job allocator of §IV: the
// greedy row-intersection strategy, the transpose / aspect-ratio / sort /
// locality optimization heuristics, failure handling through virtual
// sub-HxMeshes, defragmentation, and the upper-layer fat-tree traffic
// accounting behind Fig. 9.
//
// A job requests a u×v grid of boards. A valid placement is a set of u
// rows and v columns such that every (row, column) board is available;
// because every selected row uses the same column coordinates, the
// placement forms a virtual sub-HxMesh with the same network properties
// as a physical u×v HxMesh (§III-E), and no two jobs ever share a board,
// row segment or column segment in a way that lets packets cross foreign
// boards (§IV-A, job interference).
package alloc

import (
	"fmt"
	"math/bits"
	"sort"
)

// Grid is the allocator's view of an x×y HxMesh: a matrix of boards that
// are free, failed, or owned by a job.
type Grid struct {
	X, Y  int
	owner []int32 // -1 free, -2 failed, otherwise job id
}

// Free and Failed are the non-job owner values.
const (
	Free   int32 = -1
	Failed int32 = -2
)

// NewGrid creates an empty allocation grid of x columns and y rows.
func NewGrid(x, y int) *Grid {
	g := &Grid{X: x, Y: y, owner: make([]int32, x*y)}
	for i := range g.owner {
		g.owner[i] = Free
	}
	return g
}

// Owner returns the owner of board (bx, by).
func (g *Grid) Owner(bx, by int) int32 { return g.owner[by*g.X+bx] }

// Fail marks board (bx, by) as failed. Failing an owned board evicts the
// job (the caller decides whether to reschedule it).
func (g *Grid) Fail(bx, by int) int32 {
	prev := g.owner[by*g.X+bx]
	g.owner[by*g.X+bx] = Failed
	if prev >= 0 {
		for i, o := range g.owner {
			if o == prev {
				g.owner[i] = Free
			}
		}
	}
	return prev
}

// Repair returns a failed board to service (the scheduler's MTTR model)
// and reports whether the board was actually failed; repairing a free or
// owned board is a no-op.
func (g *Grid) Repair(bx, by int) bool {
	if g.owner[by*g.X+bx] != Failed {
		return false
	}
	g.owner[by*g.X+bx] = Free
	return true
}

// Release frees all boards of a job.
func (g *Grid) Release(job int32) {
	for i, o := range g.owner {
		if o == job {
			g.owner[i] = Free
		}
	}
}

// Reset frees every non-failed board (checkpoint/restart defragmentation,
// §IV-A(b)).
func (g *Grid) Reset() {
	for i, o := range g.owner {
		if o >= 0 {
			g.owner[i] = Free
		}
	}
}

// WorkingBoards counts the non-failed boards.
func (g *Grid) WorkingBoards() int {
	n := 0
	for _, o := range g.owner {
		if o != Failed {
			n++
		}
	}
	return n
}

// AllocatedBoards counts boards owned by jobs.
func (g *Grid) AllocatedBoards() int {
	n := 0
	for _, o := range g.owner {
		if o >= 0 {
			n++
		}
	}
	return n
}

// Utilization is allocated / working boards (the metric of Figs. 8 and 10).
func (g *Grid) Utilization() float64 {
	w := g.WorkingBoards()
	if w == 0 {
		return 0
	}
	return float64(g.AllocatedBoards()) / float64(w)
}

// Placement is a successful allocation: the selected physical rows and
// columns. Virtual coordinate (i, j) maps to physical board
// (Cols[j], Rows[i]).
type Placement struct {
	Job  int32
	Rows []int // physical row indexes, ascending, len u
	Cols []int // physical column indexes, ascending, len v
}

// U and V return the placement's dimensions.
func (p *Placement) U() int { return len(p.Rows) }
func (p *Placement) V() int { return len(p.Cols) }

// colSet is a bitset over board columns.
type colSet []uint64

func newColSet(x int) colSet { return make(colSet, (x+63)/64) }

func (s colSet) set(i int) { s[i/64] |= 1 << (i % 64) }
func (s colSet) count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}
func (s colSet) andInto(dst colSet, o colSet) {
	for i := range dst {
		dst[i] = s[i] & o[i]
	}
}
func (s colSet) indices(x int) []int {
	out := make([]int, 0, s.count())
	for i := 0; i < x; i++ {
		if s[i/64]&(1<<(i%64)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// availRows returns, per row, the bitset of free columns.
func (g *Grid) availRows() []colSet {
	rows := make([]colSet, g.Y)
	for by := 0; by < g.Y; by++ {
		s := newColSet(g.X)
		for bx := 0; bx < g.X; bx++ {
			if g.owner[by*g.X+bx] == Free {
				s.set(bx)
			}
		}
		rows[by] = s
	}
	return rows
}

// place finds a u×v placement with the greedy row-intersection strategy of
// §IV-A: starting from each candidate row in turn, grow the selected set S
// with rows whose intersection with the running column set keeps at least
// v columns, until u rows are collected.
func (g *Grid) place(u, v int) (rows []int, cols colSet, ok bool) {
	if u > g.Y || v > g.X || u <= 0 || v <= 0 {
		return nil, nil, false
	}
	avail := g.availRows()
	inter := newColSet(g.X)
	for start := 0; start+u <= g.Y+0 && start < g.Y; start++ {
		if avail[start].count() < v {
			continue
		}
		copy(inter, avail[start])
		rows = rows[:0]
		rows = append(rows, start)
		for r := start + 1; r < g.Y && len(rows) < u; r++ {
			trial := newColSet(g.X)
			avail[r].andInto(trial, inter)
			if trial.count() >= v {
				copy(inter, trial)
				rows = append(rows, r)
			}
		}
		if len(rows) == u {
			return rows, inter, true
		}
	}
	return nil, nil, false
}

// Options toggles the §IV-A optimization heuristics.
type Options struct {
	// Transpose retries a failed u×v request as v×u.
	Transpose bool
	// AspectRatio allows reshaping the job to any u'×v' with
	// u'·v' = u·v and max aspect ratio at most MaxAspect (8 in the paper).
	AspectRatio bool
	MaxAspect   int
	// Locality evaluates all candidate shapes and picks the one with the
	// lowest upper-layer alltoall traffic (§IV-A Locality).
	Locality bool
	// TreeGroupBoards is the number of boards covered by one first-level
	// switch of the per-dimension fat trees, used by the locality score
	// and the Fig. 9 accounting. Zero means 16 (32 L1 down-ports at two
	// ports per board).
	TreeGroupBoards int
}

// DefaultOptions enables everything with the paper's parameters.
func DefaultOptions() Options {
	return Options{Transpose: true, AspectRatio: true, MaxAspect: 8, Locality: true, TreeGroupBoards: 16}
}

// shapes enumerates the (u, v) candidates for a job of `boards` boards
// under the options, squarest first.
func shapes(u, v int, opt Options) [][2]int {
	var out [][2]int
	add := func(a, b int) {
		for _, s := range out {
			if s[0] == a && s[1] == b {
				return
			}
		}
		out = append(out, [2]int{a, b})
	}
	add(u, v)
	if opt.Transpose {
		add(v, u)
	}
	if opt.AspectRatio {
		n := u * v
		maxAspect := opt.MaxAspect
		if maxAspect <= 0 {
			maxAspect = 8
		}
		var facs [][2]int
		for a := 1; a*a <= n; a++ {
			if n%a != 0 {
				continue
			}
			b := n / a
			if b/a <= maxAspect {
				facs = append(facs, [2]int{a, b})
				if a != b {
					facs = append(facs, [2]int{b, a})
				}
			}
		}
		sort.Slice(facs, func(i, j int) bool {
			di := facs[i][1] - facs[i][0]
			if di < 0 {
				di = -di
			}
			dj := facs[j][1] - facs[j][0]
			if dj < 0 {
				dj = -dj
			}
			return di < dj
		})
		for _, f := range facs {
			add(f[0], f[1])
		}
	}
	return out
}

// ErrNoCapacity reports that a job does not fit the grid's current free
// boards: some allowed shape fits the grid dimensions, so the request can
// succeed later once capacity frees up (schedulers should queue it).
type ErrNoCapacity struct {
	Job  int32
	U, V int
	Free int // free boards at the time of the attempt
}

func (e *ErrNoCapacity) Error() string {
	return fmt.Sprintf("alloc: no capacity for job %d (%dx%d boards, %d free)", e.Job, e.U, e.V, e.Free)
}

// ErrNeverFits reports that no allowed shape of the job fits the grid's
// dimensions even when every board is free: the request can never succeed
// on this grid (schedulers should reject it rather than queue it).
type ErrNeverFits struct {
	Job  int32
	U, V int
	X, Y int
}

func (e *ErrNeverFits) Error() string {
	return fmt.Sprintf("alloc: job %d (%dx%d boards) can never fit a %dx%d grid", e.Job, e.U, e.V, e.X, e.Y)
}

// PlaceCandidates returns one uncommitted candidate placement per feasible
// shape of a u×v job under the options, in shape-preference order. The grid
// is not modified; callers score the candidates with their own policy and
// commit the winner with Commit. Candidates overlap (they draw from the
// same free boards), so at most one may be committed.
func (g *Grid) PlaceCandidates(job int32, u, v int, opt Options) []*Placement {
	if job < 0 {
		panic(fmt.Sprintf("alloc: invalid job id %d", job))
	}
	groupBoards := opt.TreeGroupBoards
	if groupBoards <= 0 {
		groupBoards = 16
	}
	var out []*Placement
	for _, s := range shapes(u, v, opt) {
		if p, ok := g.placeShape(job, s[0], s[1], groupBoards); ok {
			out = append(out, p)
		}
	}
	return out
}

// placeShape runs the greedy row-intersection search for one concrete
// shape and builds the (uncommitted) placement.
func (g *Grid) placeShape(job int32, u, v, groupBoards int) (*Placement, bool) {
	rows, cols, ok := g.place(u, v)
	if !ok {
		return nil, false
	}
	colIdx := cols.indices(g.X)
	// The intersection may hold more than v columns; pick the v columns
	// that minimize spread (consecutive window with the fewest L1-group
	// crossings), a cheap locality refinement.
	colIdx = bestWindow(colIdx, v, groupBoards)
	return &Placement{Job: job, Rows: append([]int{}, rows...), Cols: colIdx}, true
}

// FitsDims reports whether some allowed shape of a u×v job fits the grid
// dimensions with every board free — the permanent-feasibility criterion
// behind ErrNeverFits (a pure dimension check; no grid state is read).
// Schedulers use it to drop impossible jobs instead of queueing them.
func (g *Grid) FitsDims(u, v int, opt Options) bool {
	for _, s := range shapes(u, v, opt) {
		if s[0] >= 1 && s[1] >= 1 && s[0] <= g.Y && s[1] <= g.X {
			return true
		}
	}
	return false
}

// AllocateErr places a u×v job like Allocate, but reports failure as a
// typed error: *ErrNeverFits when no allowed shape fits the grid dimensions
// at all, *ErrNoCapacity when the job merely does not fit the current free
// boards. Schedulers use the distinction to drop impossible jobs instead of
// queueing them forever.
func (g *Grid) AllocateErr(job int32, u, v int, opt Options) (*Placement, error) {
	if p, ok := g.Allocate(job, u, v, opt); ok {
		return p, nil
	}
	if !g.FitsDims(u, v, opt) {
		return nil, &ErrNeverFits{Job: job, U: u, V: v, X: g.X, Y: g.Y}
	}
	free := 0
	for _, o := range g.owner {
		if o == Free {
			free++
		}
	}
	return nil, &ErrNoCapacity{Job: job, U: u, V: v, Free: free}
}

// Allocate places a u×v job, applying the enabled heuristics, and commits
// the first (or, with Locality, best-scoring) placement. It returns false
// when no shape fits.
func (g *Grid) Allocate(job int32, u, v int, opt Options) (*Placement, bool) {
	if job < 0 {
		panic(fmt.Sprintf("alloc: invalid job id %d", job))
	}
	groupBoards := opt.TreeGroupBoards
	if groupBoards <= 0 {
		groupBoards = 16
	}
	if !opt.Locality {
		// First feasible shape wins: stop searching at the first fit
		// instead of enumerating every candidate.
		for _, s := range shapes(u, v, opt) {
			if p, ok := g.placeShape(job, s[0], s[1], groupBoards); ok {
				g.commit(p)
				return p, true
			}
		}
		return nil, false
	}
	cands := g.PlaceCandidates(job, u, v, opt)
	if len(cands) == 0 {
		return nil, false
	}
	best, bestScore := cands[0], UpperLayerFraction(cands[0], TrafficAlltoall, groupBoards)
	for _, p := range cands[1:] {
		if score := UpperLayerFraction(p, TrafficAlltoall, groupBoards); score < bestScore {
			best, bestScore = p, score
		}
	}
	g.commit(best)
	return best, true
}

// Commit marks a candidate placement's boards as owned, with a typed error
// when a board is no longer free (the candidate went stale). It is the
// exported counterpart of the internal commit used by Allocate.
func (g *Grid) Commit(p *Placement) error {
	for _, r := range p.Rows {
		for _, c := range p.Cols {
			if g.owner[r*g.X+c] != Free {
				return fmt.Errorf("alloc: board (%d,%d) not free (owner %d); candidate is stale", c, r, g.owner[r*g.X+c])
			}
		}
	}
	g.commit(p)
	return nil
}

// bestWindow picks w consecutive entries of sorted idx minimizing the
// number of distinct L1 groups covered (fewest upper-layer crossings).
func bestWindow(idx []int, w, groupBoards int) []int {
	if len(idx) <= w {
		return idx
	}
	bestStart, bestGroups, bestSpan := 0, 1<<30, 1<<30
	for s := 0; s+w <= len(idx); s++ {
		groups := map[int]bool{}
		for _, c := range idx[s : s+w] {
			groups[c/groupBoards] = true
		}
		span := idx[s+w-1] - idx[s]
		if len(groups) < bestGroups || (len(groups) == bestGroups && span < bestSpan) {
			bestStart, bestGroups, bestSpan = s, len(groups), span
		}
	}
	return append([]int{}, idx[bestStart:bestStart+w]...)
}

// commit marks the placement's boards as owned.
func (g *Grid) commit(p *Placement) {
	for _, r := range p.Rows {
		for _, c := range p.Cols {
			if g.owner[r*g.X+c] != Free {
				panic(fmt.Sprintf("alloc: committing non-free board (%d,%d)", c, r))
			}
			g.owner[r*g.X+c] = p.Job
		}
	}
}

// Validate checks allocator invariants: every placement's boards owned by
// exactly that job, all rows sharing the same column set.
func (g *Grid) Validate(placements []*Placement) error {
	seen := make(map[int]int32)
	for _, p := range placements {
		for _, r := range p.Rows {
			for _, c := range p.Cols {
				idx := r*g.X + c
				if g.owner[idx] != p.Job {
					return fmt.Errorf("alloc: board (%d,%d) owner %d, want job %d", c, r, g.owner[idx], p.Job)
				}
				if prev, dup := seen[idx]; dup {
					return fmt.Errorf("alloc: board (%d,%d) claimed by jobs %d and %d", c, r, prev, p.Job)
				}
				seen[idx] = p.Job
			}
		}
	}
	return nil
}

// FoldJob folds a 3D virtual topology d1×d2×d3 onto two dimensions as in
// Fig. 4: the third dimension is sliced and laid out along the second, so
// the job requests d1 × (d2·d3) boards with consecutive slices adjacent.
func FoldJob(d1, d2, d3 int) (u, v int) { return d1, d2 * d3 }
