package alloc

import "sort"

// DefragReport summarizes a defragmentation pass.
type DefragReport struct {
	Before, After   float64 // utilization of working boards
	JobsBefore      int
	JobsAfter       int
	BoardsRecovered int
}

// Defragment performs the checkpoint/restart defragmentation of §IV-A(b):
// all running jobs are checkpointed (their shapes remembered), the grid is
// cleared, and the jobs are restarted largest-first with the full
// heuristic stack, together with any pending jobs that previously failed
// to place. The paper estimates this takes under a second of network time
// on a system with ≈10% global bandwidth, so it is worthwhile whenever it
// recovers boards.
//
// pending job shapes are (u, v) requests to try after the restart.
func (g *Grid) Defragment(placements []*Placement, pending [][2]int, opt Options) ([]*Placement, DefragReport) {
	rep := DefragReport{Before: g.Utilization(), JobsBefore: len(placements)}
	type job struct {
		id   int32
		u, v int
	}
	jobs := make([]job, 0, len(placements)+len(pending))
	for _, p := range placements {
		jobs = append(jobs, job{p.Job, p.U(), p.V()})
	}
	nextID := int32(0)
	for _, p := range placements {
		if p.Job >= nextID {
			nextID = p.Job + 1
		}
	}
	for _, uv := range pending {
		jobs = append(jobs, job{nextID, uv[0], uv[1]})
		nextID++
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].u*jobs[i].v > jobs[j].u*jobs[j].v })

	g.Reset()
	out := make([]*Placement, 0, len(jobs))
	for _, j := range jobs {
		if p, ok := g.Allocate(j.id, j.u, j.v, opt); ok {
			out = append(out, p)
		}
	}
	rep.After = g.Utilization()
	rep.JobsAfter = len(out)
	rep.BoardsRecovered = int((rep.After - rep.Before) * float64(g.WorkingBoards()))
	return out, rep
}
