package netsim

// The engine processes events in a canonical total order, not merely in
// timestamp order: ties on t break by (kind, node, channel), then by seq
// (assigned in injection-creation order), which makes every key unique —
// injections are the only events that can collide on (t, kind, node,
// channel), and each carries a distinct seq. A deterministic tie order
// is what lets the calendar queue replace the heap without drift, and —
// more importantly — what makes the sharded parallel engine
// (parallel.go) bit-identical for any shard count: each shard pops the
// canonical subsequence of the events at its nodes, so the per-node
// event order (the only order simulation semantics can observe) is the
// same no matter how nodes are grouped into shards. The (kind, node,
// ch+1) key is precomputed into the single integer event.ord at creation
// (see makeEvent), so the comparator is at most three compares; ties on
// t are pervasive (packet times are quantized by uniform serialization
// delays) and the event queue is the hottest code in the engine.
func eventBefore(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	if a.ord != b.ord {
		return a.ord < b.ord
	}
	return a.seq < b.seq
}

// eventQueue is a typed 4-ary min-heap in the canonical event order. It
// replaced the container/heap binary heap the engine started with (an
// interface boxing/unboxing per push/pop plus indirect Less/Swap calls;
// the event queue dominated the profile at ~60% of CPU), and since the
// calendar queue (calqueue.go) became the default it serves two roles:
// the reference implementation selectable with Config.Queue = QueueHeap
// (pinned pop-for-pop identical to the calendar queue by property test),
// and the calendar queue's far-future overflow area, where events beyond
// the ring span wait in O(log n) until the cursor approaches their slice.
type eventQueue []event

// push inserts e, sifting it up toward the root.
func (q *eventQueue) push(e event) {
	h := *q
	i := len(h)
	h = append(h, e)
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventBefore(&e, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	*q = h
}

// pop removes and returns the earliest event in canonical order.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	*q = h
	n := len(h)
	if n == 0 {
		return top
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best := first
		for c := first + 1; c < end; c++ {
			if eventBefore(&h[c], &h[best]) {
				best = c
			}
		}
		if !eventBefore(&h[best], &last) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = last
	return top
}
