package netsim

// eventQueue is a typed 4-ary min-heap on event.t, replacing the
// container/heap binary heap the engine started with. The event queue
// dominates the simulator profile (~60% of CPU after the flat-array
// refactor), and container/heap costs an interface boxing/unboxing per
// push/pop plus indirect Less/Swap calls. The typed heap stores events
// inline and inlines the comparisons; arity 4 halves the tree depth, so
// sift-down — the expensive direction on pop — touches half as many
// levels while the extra sibling comparisons stay in one cache line
// (events are small and adjacent).
//
// Pop order among equal timestamps differs from container/heap in general;
// the golden tests pin that the simulation outcomes are unchanged (equal-
// time events in this engine are symmetric: they arrive at distinct
// channels/nodes, so processing order within a timestamp does not change
// queue-length comparisons made after all of them are processed).
type eventQueue []event

// push inserts e, sifting it up toward the root.
func (q *eventQueue) push(e event) {
	h := *q
	i := len(h)
	h = append(h, e)
	for i > 0 {
		parent := (i - 1) >> 2
		if h[parent].t <= e.t {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
	*q = h
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	last := h[len(h)-1]
	h = h[:len(h)-1]
	*q = h
	n := len(h)
	if n == 0 {
		return top
	}
	// Sift the former last element down from the root.
	i := 0
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		end := first + 4
		if end > n {
			end = n
		}
		best := first
		for c := first + 1; c < end; c++ {
			if h[c].t < h[best].t {
				best = c
			}
		}
		if last.t <= h[best].t {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = last
	return top
}
