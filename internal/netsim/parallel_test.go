package netsim

import (
	"reflect"
	"strings"
	"testing"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// cloneResult deep-copies a Result (its slices are owned by the Sim and
// invalidated by the next Run).
func cloneResult(r *Result) Result {
	c := *r
	c.FlowFinish = append([]float64(nil), r.FlowFinish...)
	c.RecvByRank = append([]int64(nil), r.RecvByRank...)
	c.Endpoints = append([]topo.NodeID(nil), r.Endpoints...)
	c.LinkBytes = append([]int64(nil), r.LinkBytes...)
	return c
}

func requireIdentical(t *testing.T, label string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("%s: results differ\nwant makespan=%v total=%d events=%d\ngot  makespan=%v total=%d events=%d",
			label, want.Makespan, want.TotalBytes, want.Events,
			got.Makespan, got.TotalBytes, got.Events)
	}
}

// TestShardInvariance is the parallel engine's acceptance test: Result is
// bit-identical — every field, including per-channel LinkBytes — for
// shard counts {1, 2, 4, 8} and identical to the serial engine, on
// HxMesh and Dragonfly, pristine and on a degraded fabric.
func TestShardInvariance(t *testing.T) {
	type fabric struct {
		name string
		n    *topo.Network
		eps  []topo.NodeID
	}
	hx := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	fabrics := []fabric{
		{"hxmesh", hx.Network, hx.Endpoints},
		{"dragonfly", df, df.Endpoints},
	}
	for _, fb := range fabrics {
		c := simcore.Of(fb.n)
		for _, faulted := range []bool{false, true} {
			table := routing.NewTable(c)
			eps := fb.eps
			name := fb.name + "/pristine"
			if faulted {
				fs := faults.SampleLinksConnected(c, 0.10, 9)
				table = routing.NewTableMask(c, fs.Mask())
				eps = fs.SurvivingEndpoints()
				name = fb.name + "/faulted"
			}
			flows := ShiftFlows(eps, 3, 48<<10)
			cfg := DefaultConfig()
			cfg.CollectLinkStats = true

			res, err := New(c, table, cfg).Run(flows)
			if err != nil {
				t.Fatalf("%s serial: %v", name, err)
			}
			want := cloneResult(res)
			if want.TotalBytes == 0 {
				t.Fatalf("%s: empty run", name)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				scfg := cfg
				scfg.Shards = shards
				sim := New(c, table, scfg)
				if shards > 1 && sim.par == nil {
					t.Fatalf("%s shards=%d: parallel engine not engaged", name, shards)
				}
				res, err := sim.Run(flows)
				if err != nil {
					t.Fatalf("%s shards=%d: %v", name, shards, err)
				}
				requireIdentical(t, name+" shards="+string(rune('0'+shards)), want, cloneResult(res))
				// Reset-reuse must hold for the parallel engine too.
				res, err = sim.Run(flows)
				if err != nil {
					t.Fatalf("%s shards=%d rerun: %v", name, shards, err)
				}
				requireIdentical(t, name+" rerun", want, cloneResult(res))
			}
		}
	}
}

// TestShardGolden pins the sharded engine to the pre-simcore golden
// values directly (the same ones TestRegressionAlltoallGolden checks for
// the serial engine).
func TestShardGolden(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 3, 64<<10)
	for _, shards := range []int{2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		res, err := New(c, nil, cfg).Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		if !near(res.Makespan, 1838.3999999999999) {
			t.Errorf("shards=%d makespan = %v, want 1838.4", shards, res.Makespan)
		}
		if res.TotalBytes != 1048576 || res.Events != 704 {
			t.Errorf("shards=%d totalBytes=%d events=%d, want 1048576/704", shards, res.TotalBytes, res.Events)
		}
	}
}

// TestShardFallbackMatchesSerial: inherently serial configurations
// (CreditFC, UGAL, RandomCandidate) must fall back to the serial engine
// under Shards > 1 and produce its exact results.
func TestShardFallbackMatchesSerial(t *testing.T) {
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	c := simcore.Of(df)
	flows := ShiftFlows(df.Endpoints, 5, 32<<10)
	cases := map[string]func(*Config){
		"creditfc": func(cfg *Config) { cfg.Mode = CreditFC },
		"ugal":     func(cfg *Config) { cfg.UGAL = UGALConfig{Enable: true, Candidates: 2} },
		"random":   func(cfg *Config) { cfg.Choice = RandomCandidate },
	}
	for name, mod := range cases {
		cfg := DefaultConfig()
		mod(&cfg)
		res, err := New(c, nil, cfg).Run(flows)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		want := cloneResult(res)

		cfg.Shards = 4
		sim := New(c, nil, cfg)
		if sim.par != nil {
			t.Fatalf("%s: expected serial fallback, got parallel engine", name)
		}
		res, err = sim.Run(flows)
		if err != nil {
			t.Fatalf("%s shards=4: %v", name, err)
		}
		requireIdentical(t, name, want, cloneResult(res))
	}
}

// TestShardMaxEventsGlobalBudget: MaxEvents is one global budget across
// shards — a limit the serial engine trips must also trip every sharded
// run (not shards-times-larger), with the same error.
func TestShardMaxEventsGlobalBudget(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 3, 64<<10)
	// The run needs 704 events (the golden count); budget 100 must fail
	// for every shard count, and budget 704 must succeed.
	for _, shards := range []int{1, 2, 4, 8} {
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.MaxEvents = 100
		_, err := New(c, nil, cfg).Run(flows)
		if err == nil || !strings.Contains(err.Error(), "exceeded 100 events") {
			t.Fatalf("shards=%d: want budget error, got %v", shards, err)
		}
		cfg.MaxEvents = 704
		res, err := New(c, nil, cfg).Run(flows)
		if err != nil {
			t.Fatalf("shards=%d at exact budget: %v", shards, err)
		}
		if res.Events != 704 {
			t.Fatalf("shards=%d events=%d, want 704", shards, res.Events)
		}
	}
}

// TestCalendarVsHeapEngine: the two queue implementations are selectable
// and bit-identical end to end (the pop-for-pop property test lives in
// calqueue_test.go; this pins the engine wiring).
func TestCalendarVsHeapEngine(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 7, 96<<10)
	cfg := DefaultConfig()
	cfg.CollectLinkStats = true
	cfg.Queue = QueueCalendar
	resC, err := New(c, nil, cfg).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	want := cloneResult(resC)
	cfg.Queue = QueueHeap
	resH, err := New(c, nil, cfg).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "calendar-vs-heap", want, cloneResult(resH))
}
