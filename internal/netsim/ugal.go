package netsim

import (
	"math/rand"

	"hammingmesh/internal/topo"
)

// UGALConfig enables UGAL-style non-minimal adaptive routing (Kim et al.;
// the paper runs UGAL-L for Dragonfly in SST). At injection, the source
// compares the queue backlog of its best minimal candidate against the
// backlog toward a random intermediate node (Valiant detour); the packet
// takes the detour when the minimal path is at least Bias times more
// backlogged, weighted by the extra hops.
type UGALConfig struct {
	Enable bool
	// Bias scales the minimal-path backlog before comparison; 2 is the
	// classic UGAL setting (minimal path counted at half weight since the
	// detour path is roughly twice as long). Zero means 2.
	Bias float64
	// Candidates is the number of random intermediates considered per
	// packet. Zero means 1.
	Candidates int
}

// ugalState is carried per packet: the chosen intermediate and whether it
// has been reached. mid < 0 means minimal routing.
type ugalState struct {
	mid     int32
	reached bool
}

// chooseUGAL decides the intermediate node for a packet injected at src
// toward dst, or -1 for minimal routing. It compares the backlog of the
// best minimal output against the backlog of the best output toward a
// random intermediate switch.
func (s *Sim) chooseUGAL(src, dst int32, rng *rand.Rand) int32 {
	cfg := s.cfg.UGAL
	if !cfg.Enable {
		return -1
	}
	bias := cfg.Bias
	if bias <= 0 {
		bias = 2
	}
	cands := cfg.Candidates
	if cands <= 0 {
		cands = 1
	}
	minQ := s.bestQueue(src, dst)
	bestMid := int32(-1)
	bestQ := minQ * bias
	for k := 0; k < cands; k++ {
		mid := s.randomSwitch(rng)
		if mid < 0 || mid == src || mid == dst {
			continue
		}
		// On a degraded fabric a sampled intermediate may be cut off (e.g.
		// a dead switch); detouring through it would strand the packet.
		// Checking the destination's (already cached) distance vector
		// avoids building one per sampled switch — exact for the symmetric
		// masks the fault samplers produce (connectivity is then an
		// equivalence relation, so mid-connected-to-dst implies src, mid
		// and dst share a component); for hand-built asymmetric masks
		// (FailPortDir) the arrive fallback below still recovers.
		if s.mask != nil && s.table.Dist(topo.NodeID(dst))[mid] < 0 {
			continue
		}
		q := s.bestQueue(src, mid)
		if q < bestQ {
			bestQ = q
			bestMid = mid
		}
	}
	return bestMid
}

// bestQueue is the smallest output backlog among minimal candidates.
func (s *Sim) bestQueue(at, toward int32) float64 {
	best := -1.0
	for _, ci := range s.table.Candidates(at, topo.NodeID(toward)) {
		q := float64(s.channels[ci].queuedB)
		if best < 0 || q < best {
			best = q
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// randomSwitch picks a random switch node from the compiled switch index.
func (s *Sim) randomSwitch(rng *rand.Rand) int32 {
	sw := s.comp.Switches
	if len(sw) == 0 {
		return -1
	}
	return int32(sw[rng.Intn(len(sw))])
}
