package netsim

import (
	"math/rand"

	"hammingmesh/internal/topo"
)

// UGALConfig enables UGAL-style non-minimal adaptive routing (Kim et al.;
// the paper runs UGAL-L for Dragonfly in SST). At injection, the source
// compares the queue backlog of its best minimal candidate against the
// backlog toward a random intermediate node (Valiant detour); the packet
// takes the detour when the minimal path is at least Bias times more
// backlogged, weighted by the extra hops.
type UGALConfig struct {
	Enable bool
	// Bias scales the minimal-path backlog before comparison; 2 is the
	// classic UGAL setting (minimal path counted at half weight since the
	// detour path is roughly twice as long). Zero means 2.
	Bias float64
	// Candidates is the number of random intermediates considered per
	// packet. Zero means 1.
	Candidates int
}

// ugalState is carried per packet: the chosen intermediate and whether it
// has been reached. mid < 0 means minimal routing.
type ugalState struct {
	mid     int32
	reached bool
}

// chooseUGAL decides the intermediate node for a packet injected at src
// toward dst, or -1 for minimal routing. It compares the backlog of the
// best minimal output against the backlog of the best output toward a
// random intermediate switch.
func (s *Sim) chooseUGAL(src, dst int32, rng *rand.Rand) int32 {
	cfg := s.cfg.UGAL
	if !cfg.Enable {
		return -1
	}
	bias := cfg.Bias
	if bias <= 0 {
		bias = 2
	}
	cands := cfg.Candidates
	if cands <= 0 {
		cands = 1
	}
	minQ := s.bestQueue(src, dst)
	bestMid := int32(-1)
	bestQ := minQ * bias
	for k := 0; k < cands; k++ {
		// On a degraded fabric, sample intermediates weighted by their
		// live-port counts instead of uniformly: dead switches (weight 0)
		// are never proposed and heavily masked regions are proposed
		// rarely, so every candidate draw contributes non-minimal path
		// diversity instead of being rejected. The pristine fabric keeps
		// the uniform sampler (bit-identical golden outputs).
		mid := s.randomSwitch(rng)
		if mid < 0 || mid == src || mid == dst {
			continue
		}
		// A live-port-weighted switch can still be cut off from the
		// destination through a distant partition; the destination's
		// (already cached) distance vector is exact for the symmetric
		// masks the fault samplers produce. For hand-built asymmetric
		// masks (FailPortDir) the arrive fallback below still recovers.
		if s.mask != nil && s.table.Dist(topo.NodeID(dst))[mid] < 0 {
			continue
		}
		q := s.bestQueue(src, mid)
		if q < bestQ {
			bestQ = q
			bestMid = mid
		}
	}
	return bestMid
}

// bestQueue is the smallest output backlog among minimal candidates.
func (s *Sim) bestQueue(at, toward int32) float64 {
	best := -1.0
	for _, ci := range s.table.Candidates(at, topo.NodeID(toward)) {
		q := float64(s.channels[ci].queuedB)
		if best < 0 || q < best {
			best = q
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// randomSwitch picks a random switch node from the compiled switch index:
// uniformly on the pristine fabric, weighted by per-switch live-port
// counts on a degraded one (see weightedSwitch).
func (s *Sim) randomSwitch(rng *rand.Rand) int32 {
	sw := s.comp.Switches
	if len(sw) == 0 {
		return -1
	}
	if s.mask != nil {
		return s.weightedSwitch(rng)
	}
	return int32(sw[rng.Intn(len(sw))])
}

// weightedSwitch samples a switch with probability proportional to its
// live (unmasked) port count — the per-region weighting that replaces
// rejection-sampling dead intermediates on degraded fabrics. The
// cumulative weights are built lazily on first use (one pass over the
// switch ports) and shared by every draw of the simulation.
func (s *Sim) weightedSwitch(rng *rand.Rand) int32 {
	if s.ugalCum == nil {
		s.buildSwitchWeights()
	}
	total := s.ugalCum[len(s.ugalCum)-1]
	if total == 0 {
		return -1 // every switch is fully masked
	}
	pick := int32(rng.Intn(int(total)))
	// Binary search for the first cumulative weight above pick.
	lo, hi := 0, len(s.ugalCum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.ugalCum[mid] > pick {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return int32(s.comp.Switches[lo])
}

// buildSwitchWeights fills ugalCum with the cumulative live-port counts of
// the compiled switch index under the simulation's mask.
func (s *Sim) buildSwitchWeights() {
	cum := make([]int32, len(s.comp.Switches))
	run := int32(0)
	for i, sw := range s.comp.Switches {
		off, end := s.comp.PortRange(int32(sw))
		for pid := off; pid < end; pid++ {
			if !s.mask.Get(pid) {
				run++
			}
		}
		cum[i] = run
	}
	s.ugalCum = cum
}
