package netsim

import (
	"strings"
	"testing"

	"hammingmesh/internal/obs"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// TestObsBitIdentical is the obs contract for the packet engine: with
// metrics and tracing attached, Result is bit-identical to the
// uninstrumented run — for the serial engine and every shard count — and
// the instruments record shard-count-invariant totals.
func TestObsBitIdentical(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 3, 48<<10)
	cfg := DefaultConfig()
	cfg.CollectLinkStats = true

	res, err := New(c, nil, cfg).Run(flows)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := cloneResult(res)

	kindTotal := func(reg *obs.Registry) (arrive, free int64) {
		return reg.Counter("netsim_events_total", `kind="arrive"`, "").Value(),
			reg.Counter("netsim_events_total", `kind="free"`, "").Value()
	}

	var wantArrive, wantFree int64
	for _, shards := range []int{0, 1, 2, 4} {
		ocfg := cfg
		ocfg.Shards = shards
		ocfg.Metrics = obs.NewRegistry()
		ocfg.Trace = obs.NewRecorder(1 << 14)
		sim := New(c, nil, ocfg)
		ores, err := sim.Run(flows)
		if err != nil {
			t.Fatalf("shards=%d with obs: %v", shards, err)
		}
		requireIdentical(t, "instrumented run", want, cloneResult(ores))

		arrive, free := kindTotal(ocfg.Metrics)
		if arrive == 0 || free == 0 {
			t.Fatalf("shards=%d: kind counters not recorded (arrive=%d free=%d)", shards, arrive, free)
		}
		if arrive+free != want.Events {
			t.Errorf("shards=%d: arrive+free = %d, want Events = %d", shards, arrive+free, want.Events)
		}
		if shards == 0 {
			wantArrive, wantFree = arrive, free
		} else if arrive != wantArrive || free != wantFree {
			t.Errorf("shards=%d: kind totals (%d, %d) differ from serial (%d, %d)",
				shards, arrive, free, wantArrive, wantFree)
		}
		if del := ocfg.Metrics.Counter("netsim_deliveries_total", "", "").Value(); del == 0 {
			t.Errorf("shards=%d: no deliveries recorded", shards)
		}
		if ocfg.Trace.Len() == 0 {
			t.Errorf("shards=%d: trace recorded no events", shards)
		}
		if shards > 1 && sim.par != nil {
			if w := ocfg.Metrics.Counter("netsim_windows_total", "", "").Value(); w == 0 {
				t.Errorf("shards=%d: no windows recorded", shards)
			}
		}
		var sb strings.Builder
		ocfg.Metrics.Render(&sb)
		if !strings.Contains(sb.String(), "netsim_runs_total 1") {
			t.Errorf("shards=%d: run counter missing from render:\n%s", shards, sb.String())
		}
	}
}

// TestObsMetricsAccumulate verifies repeated runs on one Sim flush into
// the same registry additively (counters) and last-run-wins (gauges).
func TestObsMetricsAccumulate(t *testing.T) {
	h := topo.NewHxMesh(1, 1, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 1, 16<<10)
	cfg := DefaultConfig()
	cfg.Metrics = obs.NewRegistry()
	sim := New(c, nil, cfg)
	for i := 0; i < 3; i++ {
		if _, err := sim.Run(flows); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
	if runs := cfg.Metrics.Counter("netsim_runs_total", "", "").Value(); runs != 3 {
		t.Errorf("runs counter = %d, want 3", runs)
	}
	ev := cfg.Metrics.Counter("netsim_events_total", `kind="arrive"`, "").Value() +
		cfg.Metrics.Counter("netsim_events_total", `kind="free"`, "").Value()
	if ev == 0 || ev%3 != 0 {
		t.Errorf("kind totals = %d, want a positive multiple of 3 (identical runs)", ev)
	}
}
