package netsim

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// This file is the conservative-parallel engine (Config.Shards > 1). See
// the package doc's "Parallel engine" section for the contract; the key
// structural facts the implementation leans on:
//
//   - Node/channel state is partitioned: shard s owns the contiguous node
//     range part.Bounds[s]:part.Bounds[s+1] and therefore a contiguous
//     range of s.channels (a channel is a port of its owning node). A
//     shard only ever executes events at its own nodes, so channel
//     mutation is race-free without locks.
//   - Flow and result accounting is coordinator-only: delivery events
//     never touch channel state (Sim.deliver), so they are classified out
//     of the shard queues at push time and processed single-threaded in a
//     "flow phase" at each window boundary, together with the injections
//     they trigger. That resolves the zero-delay delivery→injection
//     feedback exactly and keeps the injection sequence (event.seq)
//     shard-count independent.
//   - Every scheduled event is at least lookahead = min(port latency) +
//     switch latency after its cause (plus a positive serialization
//     delay), so events created during a window land strictly beyond the
//     window bound. Cross-shard arrivals buffer in per-pair mailboxes and
//     drain, in fixed shard order, at the barrier; consecutive window
//     bounds therefore advance by at least lookahead per window.
type parState struct {
	s         *Sim
	part      *simcore.Partition
	lookahead float64
	shards    []shard

	// flowQ holds pending delivery events (flow domain), popped in
	// canonical order by the coordinator's flow phase.
	flowQ calendarQueue

	// events is the global MaxEvents budget and the deterministic
	// Result.Events total: flow-phase events are added by the coordinator,
	// shard events per window (batched mid-window for runaway windows).
	events atomic.Int64

	wg sync.WaitGroup
}

type shard struct {
	par *parState
	id  int32

	q calendarQueue

	// mailOut[t] buffers arrivals at shard t's nodes scheduled by this
	// shard during the current window; drained at the barrier.
	mailOut [][]event
	// flowOut buffers delivery events discovered during the current
	// window; drained into par.flowQ at the barrier.
	flowOut []event

	bound chan float64
	err   error

	// Per-run instrumentation (obs): event counts by kind and windows in
	// which this shard had nothing below the bound. Shard-local during the
	// run; the coordinator reads them only after the final barrier
	// (finishParallel) and at metrics flush time.
	nArrive, nFree, stalls int64
}

// lookaheadOf is the conservative lookahead of the compiled network: the
// minimum event-scheduling delay between any two nodes. Zero (no ports)
// disables the parallel engine.
func lookaheadOf(c *simcore.Compiled, cfg Config) float64 {
	la := math.Inf(1)
	for i := range c.Ports {
		if d := c.Ports[i].Latency + cfg.LP.SwitchNS; d < la {
			la = d
		}
	}
	if math.IsInf(la, 1) {
		return 0
	}
	return la
}

func newParState(s *Sim, n int) *parState {
	p := &parState{s: s, part: s.comp.PartitionNodes(n), lookahead: lookaheadOf(s.comp, s.cfg)}
	n = p.part.NumShards
	span := 2*s.horizon + 1
	p.flowQ.init(span)
	p.shards = make([]shard, n)
	for i := range p.shards {
		sh := &p.shards[i]
		sh.par = p
		sh.id = int32(i)
		sh.q.init(span)
		sh.mailOut = make([][]event, n)
	}
	return p
}

func (p *parState) reset() {
	p.events.Store(0)
	p.flowQ.reset()
	for i := range p.shards {
		sh := &p.shards[i]
		sh.q.reset()
		sh.err = nil
		sh.nArrive, sh.nFree, sh.stalls = 0, 0, 0
		for t := range sh.mailOut {
			sh.mailOut[t] = sh.mailOut[t][:0]
		}
		sh.flowOut = sh.flowOut[:0]
	}
}

// routeInjection enqueues a freshly injected packet at its source's
// owning shard. Called only from the coordinator (setup and flow phase).
func (p *parState) routeInjection(e event) {
	p.shards[p.part.NodeShard[e.node()]].q.push(e)
}

// push classifies an event scheduled during a shard's window: deliveries
// go to the flow domain, arrivals at foreign nodes to the mailbox for
// the owning shard, everything else to the local queue. evFree events
// are always local — the freed channel belongs to a node of this shard.
func (sh *shard) push(e event) {
	if e.kind() == evArrive {
		if topo.NodeID(e.node()) == sh.par.s.flows[e.pkt.flow].Dst {
			sh.flowOut = append(sh.flowOut, e)
			return
		}
		if ts := sh.par.part.NodeShard[e.node()]; ts != sh.id {
			sh.mailOut[ts] = append(sh.mailOut[ts], e)
			return
		}
	}
	sh.q.push(e)
}

func (p *parState) worker(sh *shard) {
	for bound := range sh.bound {
		sh.runWindow(bound)
		p.wg.Done()
	}
}

// budgetBatch is how many events a shard processes between checks of the
// global MaxEvents budget within one window.
const budgetBatch = 1024

func (sh *shard) runWindow(bound float64) {
	s := sh.par.s
	x := exec{s: s, sh: sh}
	var local, n int64
	firstT := math.NaN()
	var lastT float64
	var ev event
	for {
		if !sh.q.popIfInto(bound, &ev) {
			break
		}
		local++
		n++
		if math.IsNaN(firstT) {
			firstT = ev.t
		}
		lastT = ev.t
		if local == budgetBatch {
			if sh.par.events.Add(local) > s.cfg.MaxEvents {
				sh.err = fmt.Errorf("netsim: exceeded %d events", s.cfg.MaxEvents)
				return
			}
			local = 0
		}
		switch ev.kind() {
		case evArrive:
			sh.nArrive++
			if err := s.arrive(ev, x); err != nil {
				sh.err = err
				return
			}
		case evFree:
			sh.nFree++
			ci := ev.ch()
			s.channels[ci].busy = false
			s.startTransmit(ci, ev.t, x)
		}
	}
	sh.par.events.Add(local)
	if n == 0 {
		sh.stalls++
	}
	if tr := s.cfg.Trace; tr != nil && n > 0 {
		// The shard's lane shows the sim-time interval its window actually
		// covered (first to last executed event), so gaps to the barrier
		// instants visualize conservative-window slack.
		tr.Span(tracePidShards, sh.id, "window", "shard", firstT, lastT-firstT)
	}
}

// runParallel is the coordinator loop: compute the next window bound,
// run the single-threaded flow phase (deliveries and the injections they
// trigger), release the workers for the network phase, and drain the
// mailboxes at the barrier. Windows are a function of event content
// only, so the loop — and every Result field — is shard-count invariant.
func (s *Sim) runParallel() error {
	p := s.par
	n := len(p.shards)
	for i := range p.shards {
		p.shards[i].bound = make(chan float64, 1)
		go p.worker(&p.shards[i])
	}
	defer func() {
		for i := range p.shards {
			close(p.shards[i].bound)
		}
	}()

	for {
		w := math.Inf(1)
		if t, ok := p.flowQ.peekT(); ok && t < w {
			w = t
		}
		for i := range p.shards {
			if t, ok := p.shards[i].q.peekT(); ok && t < w {
				w = t
			}
		}
		if math.IsInf(w, 1) {
			return s.finishParallel()
		}
		bound := w + p.lookahead
		s.stWindows++
		if tr := s.cfg.Trace; tr != nil {
			tr.Instant(tracePidShards, int32(len(p.shards)), "barrier", bound)
		}

		// Flow phase: all pending deliveries below the bound, in canonical
		// order. Injections they trigger route into the shard queues and
		// run this window (their times are below the bound by definition).
		var nFlow int64
		var ev event
		for p.flowQ.popIfInto(bound, &ev) {
			nFlow++
			s.deliver(ev)
		}
		// Flow-phase deliveries are arrival events the serial engine would
		// have counted in its loop; credit them to the arrive kind so
		// events-by-kind totals are shard-count invariant.
		s.stArrive += nFlow
		if nFlow > 0 && p.events.Add(nFlow) > s.cfg.MaxEvents {
			return fmt.Errorf("netsim: exceeded %d events", s.cfg.MaxEvents)
		}

		// Network phase: every shard processes its events below the bound.
		p.wg.Add(n)
		for i := range p.shards {
			p.shards[i].bound <- bound
		}
		p.wg.Wait()
		for i := range p.shards {
			if err := p.shards[i].err; err != nil {
				return err
			}
		}
		if p.events.Load() > s.cfg.MaxEvents {
			return fmt.Errorf("netsim: exceeded %d events", s.cfg.MaxEvents)
		}

		// Barrier: drain mailboxes and discovered deliveries in fixed
		// shard order. Everything drained is beyond the bound (lookahead),
		// so it lands in a later window.
		for i := range p.shards {
			sh := &p.shards[i]
			for ts := range sh.mailOut {
				for _, e := range sh.mailOut[ts] {
					p.shards[ts].q.push(e)
				}
				sh.mailOut[ts] = sh.mailOut[ts][:0]
			}
			for _, e := range sh.flowOut {
				p.flowQ.push(e)
			}
			sh.flowOut = sh.flowOut[:0]
		}
	}
}

func (s *Sim) finishParallel() error {
	s.res.Events = s.par.events.Load()
	// Sum shard-local instrumentation into the Sim totals (safe: every
	// worker is parked at the barrier — wg.Wait happened-before here).
	for i := range s.par.shards {
		sh := &s.par.shards[i]
		s.stArrive += sh.nArrive
		s.stFree += sh.nFree
		s.stStalls += sh.stalls
	}
	return nil
}
