package netsim

import (
	"math"
	"math/rand"
	"testing"

	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

func lp() topo.LinkParams { return topo.DefaultLinkParams() }

func TestSingleFlowFatTree(t *testing.T) {
	// One 1 MiB flow through a nonblocking fat tree must achieve close to
	// the 50 GB/s link rate (store-and-forward pipelining across 4 hops).
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	sim := NewNet(n, nil, DefaultConfig())
	bytes := int64(1 << 20)
	res, err := sim.Run([]Flow{{Src: n.Endpoints[0], Dst: n.Endpoints[63], Bytes: bytes}})
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(bytes) / 50.0
	if res.Makespan < ideal {
		t.Fatalf("makespan %.0f ns faster than line rate %.0f ns", res.Makespan, ideal)
	}
	if res.Makespan > ideal*1.2 {
		t.Errorf("makespan %.0f ns, want within 20%% of %.0f ns", res.Makespan, ideal)
	}
	if res.TotalBytes != bytes {
		t.Errorf("delivered %d bytes, want %d", res.TotalBytes, bytes)
	}
}

func TestTwoFlowsShareLink(t *testing.T) {
	// Two flows into the same destination must halve per-flow bandwidth on
	// the last link.
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	sim := NewNet(n, nil, DefaultConfig())
	bytes := int64(1 << 20)
	res, err := sim.Run([]Flow{
		{Src: n.Endpoints[0], Dst: n.Endpoints[5], Bytes: bytes},
		{Src: n.Endpoints[1], Dst: n.Endpoints[5], Bytes: bytes},
	})
	if err != nil {
		t.Fatal(err)
	}
	ideal := float64(2*bytes) / 50.0
	if res.Makespan < ideal || res.Makespan > ideal*1.2 {
		t.Errorf("makespan %.0f ns, want ≈%.0f ns (shared 50 GB/s link)", res.Makespan, ideal)
	}
}

func TestZeroByteFlowAndValidation(t *testing.T) {
	n := topo.NewFatTree(8, topo.NonblockingTree(), lp())
	sim := NewNet(n, nil, DefaultConfig())
	res, err := sim.Run([]Flow{{Src: n.Endpoints[0], Dst: n.Endpoints[1], Bytes: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 0 {
		t.Errorf("zero flow delivered %d bytes", res.TotalBytes)
	}
	if _, err := sim.Run([]Flow{{Src: n.Endpoints[0], Dst: n.Endpoints[0], Bytes: 1}}); err == nil {
		t.Error("self-flow not rejected")
	}
}

func TestPermutationNonblockingFatTree(t *testing.T) {
	// Random permutation on a nonblocking fat tree with adaptive routing
	// should deliver most of the injection bandwidth per endpoint.
	n := topo.NewFatTree(128, topo.NonblockingTree(), lp())
	sim := NewNet(n, nil, DefaultConfig())
	rng := rand.New(rand.NewSource(42))
	flows := PermutationFlows(n.Endpoints, 256<<10, rng)
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	perEp := res.AggregateGBps() / float64(len(n.Endpoints))
	if perEp < 35 { // ≥70% of 50 GB/s
		t.Errorf("per-endpoint bandwidth %.1f GB/s, want ≥35", perEp)
	}
}

func TestRingNeighborTorusFullBandwidth(t *testing.T) {
	// Neighbor ring traffic mapped on a torus row uses dedicated links:
	// per-endpoint send bandwidth should be near the 50 GB/s link rate.
	n := topo.NewTorus2D(8, 8, 2, 2, lp())
	ring := make([]topo.NodeID, 8)
	for i := range ring {
		ring[i] = n.Endpoints[i] // first row, consecutive gx
	}
	sim := NewNet(n, nil, DefaultConfig())
	res, err := sim.Run(RingNeighborFlows(ring, 512<<10, false))
	if err != nil {
		t.Fatal(err)
	}
	perFlow := float64(512<<10) / res.Makespan
	if perFlow < 45 {
		t.Errorf("ring flow bandwidth %.1f GB/s, want ≥45 (dedicated links)", perFlow)
	}
}

func TestShiftFlowsProperties(t *testing.T) {
	n := topo.NewFatTree(16, topo.NonblockingTree(), lp())
	for _, shift := range []int{0, 1, 7, 15, 16, -1} {
		flows := ShiftFlows(n.Endpoints, shift, 100)
		if (shift%16+16)%16 == 0 {
			if len(flows) != 0 {
				t.Errorf("shift %d: got %d flows, want 0", shift, len(flows))
			}
			continue
		}
		if len(flows) != 16 {
			t.Fatalf("shift %d: got %d flows", shift, len(flows))
		}
		recv := map[topo.NodeID]int{}
		for _, f := range flows {
			if f.Src == f.Dst {
				t.Fatalf("shift %d produced self-flow", shift)
			}
			recv[f.Dst]++
		}
		for _, c := range recv {
			if c != 1 {
				t.Fatalf("shift %d: endpoint receives %d flows", shift, c)
			}
		}
	}
}

func TestPermutationFlowsNoFixedPoints(t *testing.T) {
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		flows := PermutationFlows(n.Endpoints, 1, rng)
		if len(flows) != 64 {
			t.Fatalf("got %d flows", len(flows))
		}
		recv := map[topo.NodeID]int{}
		for _, f := range flows {
			if f.Src == f.Dst {
				t.Fatal("fixed point in permutation")
			}
			recv[f.Dst]++
		}
		for _, c := range recv {
			if c != 1 {
				t.Fatal("not a permutation")
			}
		}
	}
}

func TestCreditFCMatchesIdealUnderLightLoad(t *testing.T) {
	n := topo.NewHxMesh(2, 2, 4, 4, lp()).Network
	bytes := int64(128 << 10)
	flows := []Flow{
		{Src: n.Endpoints[0], Dst: n.Endpoints[60], Bytes: bytes},
		{Src: n.Endpoints[3], Dst: n.Endpoints[40], Bytes: bytes},
	}
	cfgI := DefaultConfig()
	cfgC := DefaultConfig()
	cfgC.Mode = CreditFC
	resI, err := NewNet(n, nil, cfgI).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	resC, err := NewNet(n, nil, cfgC).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Deadlocked {
		t.Fatal("credit mode deadlocked under light load")
	}
	if math.Abs(resI.Makespan-resC.Makespan) > 0.2*resI.Makespan {
		t.Errorf("credit makespan %.0f vs ideal %.0f differ >20%%", resC.Makespan, resI.Makespan)
	}
}

func TestCreditFCPermutationCompletes(t *testing.T) {
	// Heavier load with finite buffers and VC escalation must still drain.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	cfg := DefaultConfig()
	cfg.Mode = CreditFC
	cfg.LP.BufferB = 64 << 10 // small buffers to exercise backpressure
	rng := rand.New(rand.NewSource(5))
	flows := PermutationFlows(h.Endpoints, 128<<10, rng)
	res, err := NewNet(h.Network, nil, cfg).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("credit mode deadlocked on permutation traffic")
	}
	var want int64
	for _, f := range flows {
		want += f.Bytes
	}
	if res.TotalBytes != want {
		t.Errorf("delivered %d, want %d", res.TotalBytes, want)
	}
}

func TestAdaptiveBeatsDeterministic(t *testing.T) {
	// Ablation: least-queued adaptive routing should not be slower than
	// deterministic first-candidate routing under permutation traffic.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	rng := rand.New(rand.NewSource(11))
	flows := PermutationFlows(h.Endpoints, 128<<10, rng)
	cfgA := DefaultConfig()
	cfgD := DefaultConfig()
	cfgD.Choice = FirstCandidate
	resA, err := NewNet(h.Network, nil, cfgA).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	resD, err := NewNet(h.Network, nil, cfgD).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if resA.Makespan > resD.Makespan*1.05 {
		t.Errorf("adaptive %.0f ns slower than deterministic %.0f ns", resA.Makespan, resD.Makespan)
	}
}

func TestAlltoallShareSmallHxMesh(t *testing.T) {
	// A 4x4 Hx2Mesh alltoall should land between the asymptotic bound
	// (25%) and full injection; small clusters exceed the bound (§V-A1a).
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	share, err := AlltoallShare(simcore.Of(h.Network), nil, DefaultConfig(), 256<<10, 6, 4*50.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.15 || share > 1.0 {
		t.Errorf("alltoall share %.3f outside (0.15, 1.0)", share)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{
		Makespan: 1000, TotalBytes: 50000,
		RecvByRank: []int64{0, 50000},
		Endpoints:  []topo.NodeID{2, 3},
	}
	if got := r.AggregateGBps(); got != 50 {
		t.Errorf("AggregateGBps = %f, want 50", got)
	}
	per := r.PerEndpointGBps()
	if len(per) != 1 || per[0].Node != 3 || per[0].GBps != 50 {
		t.Errorf("PerEndpointGBps = %v, want [{3 50}]", per)
	}
	var empty Result
	if empty.AggregateGBps() != 0 {
		t.Error("empty result bandwidth not 0")
	}
}

func TestAlltoallShareConcurrent(t *testing.T) {
	// Concurrent shifts on a direct topology must beat the serialized
	// single-shift measurement (path diversity needs many destinations).
	n := topo.NewHyperXDirect(8, 8, 4, lp())
	serial, err := AlltoallShare(simcore.Of(n), nil, DefaultConfig(), 64<<10, 4, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := AlltoallShareConcurrent(simcore.Of(n), nil, DefaultConfig(), 16<<10, 8, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if conc < serial {
		t.Errorf("concurrent share %.3f below serialized %.3f", conc, serial)
	}
	if conc <= 0 || conc > 1.01 {
		t.Errorf("concurrent share %.3f out of range", conc)
	}
}
