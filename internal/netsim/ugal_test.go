package netsim

import (
	"math/rand"
	"testing"

	"hammingmesh/internal/topo"
)

// adversarialDragonflyFlows builds group-adversarial traffic: every
// endpoint of group g sends to the peer endpoint in group (g+1) mod G,
// concentrating all minimal routes on the few direct links between
// neighboring groups — the classic pattern where minimal routing collapses
// and UGAL detours through intermediate groups.
func adversarialDragonflyFlows(n *topo.Network, g int, bytes int64) []Flow {
	perGroup := len(n.Endpoints) / g
	flows := make([]Flow, 0, len(n.Endpoints))
	for i, ep := range n.Endpoints {
		grp := i / perGroup
		peer := n.Endpoints[((grp+1)%g)*perGroup+i%perGroup]
		flows = append(flows, Flow{Src: ep, Dst: peer, Bytes: bytes})
	}
	return flows
}

func TestUGALBeatsMinimalOnAdversarial(t *testing.T) {
	cfgDF := topo.DragonflyConfig{A: 8, P: 4, H: 4, G: 9, LP: topo.DefaultLinkParams()}
	n := topo.NewDragonfly(cfgDF)
	flows := adversarialDragonflyFlows(n, cfgDF.G, 128<<10)

	run := func(ugal bool) float64 {
		cfg := DefaultConfig()
		cfg.UGAL = UGALConfig{Enable: ugal, Candidates: 2}
		res, err := NewNet(n, nil, cfg).Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		return res.AggregateGBps()
	}
	minimal := run(false)
	ugal := run(true)
	if ugal < minimal {
		t.Errorf("UGAL %.1f GB/s slower than minimal %.1f GB/s on adversarial traffic", ugal, minimal)
	}
}

func TestUGALHarmlessOnUniform(t *testing.T) {
	// On benign permutation traffic UGAL should not catastrophically
	// degrade throughput (within 2.5x of minimal; it takes longer paths).
	n := topo.NewDragonfly(topo.DragonflyConfig{A: 8, P: 4, H: 4, G: 9, LP: topo.DefaultLinkParams()})
	rng := rand.New(rand.NewSource(2))
	flows := PermutationFlows(n.Endpoints, 64<<10, rng)
	run := func(ugal bool) float64 {
		cfg := DefaultConfig()
		cfg.UGAL = UGALConfig{Enable: ugal}
		res, err := NewNet(n, nil, cfg).Run(flows)
		if err != nil {
			t.Fatal(err)
		}
		return res.AggregateGBps()
	}
	minimal, ugal := run(false), run(true)
	if ugal < minimal/2.5 {
		t.Errorf("UGAL %.1f GB/s vs minimal %.1f GB/s degrades >2.5x on uniform traffic", ugal, minimal)
	}
}

func TestLinkStatsConservation(t *testing.T) {
	// Total bytes over endpoint-egress channels must equal injected bytes;
	// every channel's utilization must be ≤ 1.
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	cfg := DefaultConfig()
	cfg.CollectLinkStats = true
	sim := NewNet(h.Network, nil, cfg)
	rng := rand.New(rand.NewSource(8))
	flows := PermutationFlows(h.Endpoints, 128<<10, rng)
	res, err := sim.Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkBytes == nil {
		t.Fatal("link stats not collected")
	}
	var carried int64
	for _, b := range res.LinkBytes {
		carried += b
	}
	if carried < res.TotalBytes {
		t.Errorf("links carried %d < delivered %d", carried, res.TotalBytes)
	}
	for _, hl := range sim.HotLinks(res, 0) {
		if hl.Utilization > 1.0001 {
			t.Errorf("channel %d utilization %.3f > 1", hl.Channel, hl.Utilization)
		}
	}
	hot := sim.HotLinks(res, 5)
	if len(hot) != 5 {
		t.Fatalf("got %d hot links", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Bytes > hot[i-1].Bytes {
			t.Error("hot links not sorted")
		}
	}
	byClass := sim.BytesByClass(res)
	if byClass[topo.PCB] == 0 || byClass[topo.DAC]+byClass[topo.AoC] == 0 {
		t.Errorf("implausible class distribution %v", byClass)
	}
}

func TestUpperLevelShare(t *testing.T) {
	// On a single-switch-per-row HxMesh there is no upper level at all.
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	cfg := DefaultConfig()
	cfg.CollectLinkStats = true
	sim := NewNet(h.Network, nil, cfg)
	rng := rand.New(rand.NewSource(3))
	res, err := sim.Run(PermutationFlows(h.Endpoints, 64<<10, rng))
	if err != nil {
		t.Fatal(err)
	}
	if share := sim.UpperLevelShare(res, 2); share != 0 {
		t.Errorf("upper-level share %.3f on tree-less HxMesh, want 0", share)
	}
	// On a 2-level fat tree with alltoall-ish traffic, the upper level
	// carries a substantial share.
	ft := topo.NewFatTree(128, topo.NonblockingTree(), topo.DefaultLinkParams())
	simF := NewNet(ft, nil, cfg)
	resF, err := simF.Run(ShiftFlows(ft.Endpoints, 64, 64<<10))
	if err != nil {
		t.Fatal(err)
	}
	if share := simF.UpperLevelShare(resF, 2); share < 0.2 {
		t.Errorf("fat-tree upper-level share %.3f, want ≥0.2", share)
	}
}
