package netsim

import (
	"math"
	"math/bits"
)

// calendarQueue is the engine's default event queue (Config.Queue ==
// QueueCalendar): a bucketed calendar queue over a ring of small sorted
// slices, with a heap fallback for far-future events.
//
// A discrete-event packet simulation has a bounded event horizon: every
// event scheduled at time t fires before t + maxDelay, where maxDelay is
// the largest serialization + link latency + switch traversal of any
// port (derived from topo.LinkParams and the compiled port attributes by
// New). The ring therefore only needs to span that horizon: bucket i
// covers the absolute time slice [i*width, (i+1)*width), the ring covers
// nb consecutive slices starting at base, and push/pop find the bucket
// with one multiply instead of an O(log n) sift across the whole queue.
// Within a bucket, events sit in a sorted slice (calBucket), so pop
// order stays the engine's canonical total order exactly while pops pay
// no comparisons at all; same-slice bursts — e.g. all W*flows initial
// injections at t=0 — arrive in canonical order and insert at the tail.
//
// Events beyond the ring (flow Start times far in the future) go to an
// overflow heap and are drained into the ring as base advances past
// empty slices; a bitmask over non-empty buckets makes that advance a
// couple of trailing-zero scans. When occupancy exceeds calGrowPerBucket
// events per bucket the ring doubles its bucket count (halving width, at
// constant span), keeping per-bucket heaps shallow as runs grow. All
// storage — bucket heaps, occupancy words, the overflow heap — survives
// reset, so steady-state sweeps allocate nothing.
type calendarQueue struct {
	span  float64 // ring time span; must exceed the max scheduling delay
	width float64 // span / nb
	invW  float64 // 1 / width
	nb    int     // bucket count (power of two)
	mask  int     // nb - 1
	base  int64   // absolute slice index (floor(t/width)) of the cursor
	n     int     // events stored in the ring (excluding overflow)

	buckets []calBucket
	occ     []uint64 // bit i set when buckets[i] is non-empty

	over eventQueue // events at or beyond base+nb slices
}

// calBucket is one calendar slot: its events kept in canonical order as a
// sorted slice with a consumed prefix, rather than a heap. Pops read the
// front and pay no comparisons; pushes binary-search the insert point.
// The dominant push patterns — the initial same-slice injection burst and
// overflow drains — arrive already in canonical order, so the insertion
// memmove is almost always empty and the slot degenerates to an
// append-only array, while the grow policy keeps mid-run slots near
// calGrowPerBucket events so out-of-order inserts stay tiny.
type calBucket struct {
	ev   []event
	head int
}

func (b *calBucket) first() *event { return &b.ev[b.head] }

func (b *calBucket) reset() {
	b.ev = b.ev[:0]
	b.head = 0
}

func (b *calBucket) push(e event) {
	lo, hi := b.head, len(b.ev)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventBefore(&b.ev[mid], &e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	b.ev = append(b.ev, event{})
	copy(b.ev[lo+1:], b.ev[lo:])
	b.ev[lo] = e
}

const (
	calInitBuckets   = 256
	calMaxBuckets    = 1 << 20
	calGrowPerBucket = 8
)

// init sizes the ring for the given time span and empties the queue. The
// bucket count persists across init/reset so capacity grown by earlier
// runs is kept.
func (q *calendarQueue) init(span float64) {
	if span <= 0 || math.IsInf(span, 1) || math.IsNaN(span) {
		span = 1
	}
	q.span = span
	nb := q.nb
	if nb == 0 {
		nb = calInitBuckets
	}
	q.resize(nb)
	q.reset()
}

// resize sets the bucket count (a power of two) and the derived widths,
// reusing the bucket and occupancy arrays when they are large enough.
func (q *calendarQueue) resize(nb int) {
	q.nb = nb
	q.mask = nb - 1
	q.width = q.span / float64(nb)
	q.invW = 1 / q.width
	if cap(q.buckets) < nb {
		nw := make([]calBucket, nb)
		copy(nw, q.buckets)
		q.buckets = nw
	} else {
		q.buckets = q.buckets[:nb]
	}
	w := (nb + 63) / 64
	if cap(q.occ) < w {
		q.occ = make([]uint64, w)
	} else {
		q.occ = q.occ[:w]
	}
}

// reset empties the queue, keeping all backing storage.
func (q *calendarQueue) reset() {
	for i := range q.buckets {
		q.buckets[i].reset()
	}
	clear(q.occ)
	q.n = 0
	q.base = 0
	q.over = q.over[:0]
}

func (q *calendarQueue) len() int { return q.n + len(q.over) }

// push inserts e. Events must not be scheduled before the last popped
// event's time slice (true of any discrete-event simulation).
func (q *calendarQueue) push(e event) {
	ab := int64(e.t * q.invW)
	if ab-q.base >= int64(q.nb) {
		q.over.push(e)
		return
	}
	if ab < q.base {
		// Float rounding at a slice boundary; the cursor bucket still
		// pops its canonical minimum first, so ordering is unaffected.
		ab = q.base
	}
	q.pushRing(ab, e)
	if q.n > q.nb*calGrowPerBucket && q.nb < calMaxBuckets {
		q.grow()
	}
}

func (q *calendarQueue) pushRing(ab int64, e event) {
	i := int(ab) & q.mask
	q.buckets[i].push(e)
	q.occ[i>>6] |= 1 << (uint(i) & 63)
	q.n++
}

// grow doubles the bucket count at constant span. Halving the width
// doubles every absolute slice index, so ring events re-bucket within
// the new ring bounds by construction.
func (q *calendarQueue) grow() {
	old := q.buckets[:q.nb]
	moved := make([]event, 0, q.n)
	for i := range old {
		moved = append(moved, old[i].ev[old[i].head:]...)
		old[i].reset()
	}
	q.resize(q.nb * 2)
	clear(q.occ)
	for i := range q.buckets {
		q.buckets[i].reset()
	}
	q.base *= 2
	q.n = 0
	for _, e := range moved {
		ab := int64(e.t * q.invW)
		if ab < q.base {
			ab = q.base
		}
		if ab-q.base >= int64(q.nb) { // float-rounding guard only
			q.over.push(e)
			continue
		}
		q.pushRing(ab, e)
	}
}

// drain moves overflow events that now fall inside the ring span. Called
// after every base advance, it maintains the invariant that everything
// in the overflow heap is later than everything in the ring.
func (q *calendarQueue) drain() {
	limit := float64(q.base+int64(q.nb)) * q.width
	for len(q.over) > 0 && q.over[0].t < limit {
		e := q.over.pop()
		ab := int64(e.t * q.invW)
		if ab < q.base {
			ab = q.base
		}
		if ab-q.base >= int64(q.nb) {
			ab = q.base + int64(q.nb) - 1 // float-rounding guard
		}
		q.pushRing(ab, e)
	}
}

// locate advances base to the first non-empty ring bucket and returns
// its index. The ring must be non-empty. The scan walks the occupancy
// words from the cursor with trailing-zeros jumps, wrapping once.
func (q *calendarQueue) locate() int {
	cur := int(q.base) & q.mask
	nw := len(q.occ)
	wi := cur >> 6
	bit := uint(cur) & 63
	for k := 0; k <= nw; k++ {
		idx := wi + k
		if idx >= nw {
			idx -= nw
		}
		w := q.occ[idx]
		if k == 0 {
			w &^= (1 << bit) - 1 // only buckets at or after the cursor
		} else if k == nw {
			w &= (1 << bit) - 1 // wrapped: only buckets before the cursor
		}
		if w == 0 {
			continue
		}
		i := idx<<6 + bits.TrailingZeros64(w)
		d := (i - cur + q.nb) & q.mask
		if d > 0 {
			q.base += int64(d)
			q.drain()
			// Draining may have refilled a bucket between the old and
			// new cursor positions only if it mapped at or after the
			// new base — by the overflow invariant it cannot map
			// before it, so i is still the first non-empty bucket.
		}
		return i
	}
	panic("netsim: calendarQueue.locate on empty ring")
}

// refill restarts the ring at the overflow heap's earliest slice (the
// ring is empty, the overflow is not).
func (q *calendarQueue) refill() {
	q.base = int64(q.over[0].t * q.invW)
	q.drain()
}

// peekT returns the earliest event time without removing it.
func (q *calendarQueue) peekT() (float64, bool) {
	if q.n == 0 {
		if len(q.over) == 0 {
			return 0, false
		}
		q.refill()
	}
	i := q.locate()
	return q.buckets[i].first().t, true
}

// popIfInto removes the canonically earliest event into *out if its time
// is strictly below bound. This is the engine's hot pop path: the event
// is copied exactly once (bucket slot to *out), and the common case —
// the cursor bucket is still occupied — skips the locate call.
func (q *calendarQueue) popIfInto(bound float64, out *event) bool {
	if q.n == 0 {
		if len(q.over) == 0 {
			return false
		}
		q.refill()
	}
	i := int(q.base) & q.mask
	if q.occ[i>>6]>>(uint(i)&63)&1 == 0 {
		i = q.locate()
	}
	b := &q.buckets[i]
	if b.ev[b.head].t >= bound {
		return false
	}
	*out = b.ev[b.head]
	b.head++
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		q.occ[i>>6] &^= 1 << (uint(i) & 63)
	}
	q.n--
	return true
}

// popIf removes and returns the canonically earliest event if its time
// is strictly below bound.
func (q *calendarQueue) popIf(bound float64) (event, bool) {
	var e event
	ok := q.popIfInto(bound, &e)
	return e, ok
}

// pop removes and returns the canonically earliest event.
func (q *calendarQueue) pop() (event, bool) {
	return q.popIf(math.Inf(1))
}
