package netsim

import (
	"testing"

	"hammingmesh/internal/topo"
)

// TestResetReuseMatchesFreshSim pins that driving one Sim through a
// sequence of runs (the sweep-job pattern) reproduces the results of a
// fresh Sim per run bit-for-bit under the deterministic default config:
// buffer reuse must be invisible to simulation semantics.
func TestResetReuseMatchesFreshSim(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	shifts := []int{1, 3, 7, 3, 12}
	for _, mode := range []Mode{IdealBuffers, CreditFC} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		if mode == CreditFC {
			cfg.LP.BufferB = 64 << 10
		}
		reused := NewNet(h.Network, nil, cfg)
		for _, shift := range shifts {
			flows := ShiftFlows(h.Endpoints, shift, 128<<10)
			got, err := reused.Run(flows)
			if err != nil {
				t.Fatalf("mode %d shift %d: reused: %v", mode, shift, err)
			}
			gotMakespan, gotEvents, gotBytes := got.Makespan, got.Events, got.TotalBytes
			gotFinish := append([]float64(nil), got.FlowFinish...)

			want, err := NewNet(h.Network, nil, cfg).Run(flows)
			if err != nil {
				t.Fatalf("mode %d shift %d: fresh: %v", mode, shift, err)
			}
			if gotMakespan != want.Makespan || gotEvents != want.Events || gotBytes != want.TotalBytes {
				t.Fatalf("mode %d shift %d: reused makespan=%v events=%d bytes=%d, fresh %v/%d/%d",
					mode, shift, gotMakespan, gotEvents, gotBytes, want.Makespan, want.Events, want.TotalBytes)
			}
			for i := range want.FlowFinish {
				if gotFinish[i] != want.FlowFinish[i] {
					t.Fatalf("mode %d shift %d flow %d: finish %v != %v", mode, shift, i, gotFinish[i], want.FlowFinish[i])
				}
			}
		}
	}
}

// TestLinkStatsResetNoAlloc: the stats-enabled path must reach 0
// allocs/op in steady state like the rest of the Reset-reused engine.
// Result.LinkBytes used to be dropped and reallocated on every Reset
// (the fresh Result literal was assigned before the reuse helper read
// the old slice).
func TestLinkStatsResetNoAlloc(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	cfg := DefaultConfig()
	cfg.CollectLinkStats = true
	sim := NewNet(h.Network, nil, cfg)
	flows := ShiftFlows(h.Endpoints, 3, 64<<10)
	// Warm up: first runs grow queues and result buffers to steady state.
	for i := 0; i < 3; i++ {
		if _, err := sim.Run(flows); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := sim.Run(flows); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("stats-enabled Run allocates %.1f times per op, want 0", avg)
	}
}

// TestResetRejectsBadFlows checks Reset's validation surfaces the same
// typed errors Run always produced.
func TestResetRejectsBadFlows(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	sim := NewNet(h.Network, nil, DefaultConfig())
	if err := sim.Reset([]Flow{{Src: h.Endpoints[0], Dst: h.Endpoints[0], Bytes: 1}}); err == nil {
		t.Error("self-flow not rejected by Reset")
	}
	// A rejected Reset must not poison the next valid Run.
	res, err := sim.Run(ShiftFlows(h.Endpoints, 1, 8<<10))
	if err != nil {
		t.Fatalf("run after rejected reset: %v", err)
	}
	if res.TotalBytes == 0 {
		t.Error("no bytes delivered after rejected reset")
	}
}
