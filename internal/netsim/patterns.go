package netsim

import (
	"math/rand"

	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// ShiftFlows builds the balanced-shift permutation used by the paper's
// alltoall implementation: in iteration i, endpoint j sends to endpoint
// (j+i) mod p (§V-A1a). bytes is the per-peer message size.
func ShiftFlows(endpoints []topo.NodeID, shift int, bytes int64) []Flow {
	p := len(endpoints)
	flows := make([]Flow, 0, p)
	shift = ((shift % p) + p) % p
	if shift == 0 {
		return flows
	}
	for j := 0; j < p; j++ {
		flows = append(flows, Flow{Src: endpoints[j], Dst: endpoints[(j+shift)%p], Bytes: bytes})
	}
	return flows
}

// PermutationFlows builds random-permutation traffic: each endpoint sends
// to and receives from exactly one unique random peer (§V-A1b). Fixed
// points are removed by cyclic repair so no endpoint sends to itself.
func PermutationFlows(endpoints []topo.NodeID, bytes int64, rng *rand.Rand) []Flow {
	p := len(endpoints)
	perm := rng.Perm(p)
	// Repair fixed points by swapping with the next index cyclically.
	for i := 0; i < p; i++ {
		if perm[i] == i {
			j := (i + 1) % p
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	flows := make([]Flow, 0, p)
	for i := 0; i < p; i++ {
		if perm[i] == i { // p == 1 degenerate
			continue
		}
		flows = append(flows, Flow{Src: endpoints[i], Dst: endpoints[perm[i]], Bytes: bytes})
	}
	return flows
}

// RingNeighborFlows builds the steady-state traffic of a unidirectional
// pipelined ring: each node sends bytes to its successor. With
// bidirectional true, predecessor flows are added as well (each direction
// carrying bytes).
func RingNeighborFlows(ring []topo.NodeID, bytes int64, bidirectional bool) []Flow {
	p := len(ring)
	flows := make([]Flow, 0, 2*p)
	for i := 0; i < p; i++ {
		flows = append(flows, Flow{Src: ring[i], Dst: ring[(i+1)%p], Bytes: bytes})
		if bidirectional {
			flows = append(flows, Flow{Src: ring[i], Dst: ring[(i-1+p)%p], Bytes: bytes})
		}
	}
	return flows
}

// SampleShifts returns nShifts pseudo-random shift values in [1, p-1]
// (repeats allowed, matching the paper's sampled-iteration estimator). The
// serial AlltoallShare sweep and the runner-parallel sweep share this
// sequence, so their results are identical for equal seeds.
func SampleShifts(p, nShifts int, seed int64) []int {
	if nShifts <= 0 || nShifts > p-1 {
		nShifts = p - 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, nShifts)
	for k := range out {
		out[k] = 1 + rng.Intn(p-1)
	}
	return out
}

// AlltoallShareConcurrent estimates the global (alltoall) bandwidth share
// by simulating window concurrent shift iterations in one run: the
// paper's balanced-shift alltoall has no barriers, so several shifts are
// in flight at once and endpoints spread traffic over many destinations —
// essential on direct topologies (HyperX, Dragonfly, torus) where a
// single permutation cannot use the path diversity. bytesPerPeer is the
// per-destination message size; the share is per-endpoint delivered
// bandwidth over injectGBps.
func AlltoallShareConcurrent(c *simcore.Compiled, table *routing.Table, cfg Config, bytesPerPeer int64, window int, injectGBps float64, seed int64) (float64, error) {
	p := c.NumEndpoints()
	if window <= 0 || window > p-1 {
		window = min(16, p-1)
	}
	rng := rand.New(rand.NewSource(seed))
	var flows []Flow
	seen := make([]bool, p)
	for n := 0; n < window; {
		shift := 1 + rng.Intn(p-1)
		if seen[shift] {
			continue
		}
		seen[shift] = true
		n++
		flows = append(flows, ShiftFlows(c.Endpoints, shift, bytesPerPeer)...)
	}
	res, err := New(c, table, cfg).Run(flows)
	if err != nil {
		return 0, err
	}
	perEp := res.AggregateGBps() / float64(p)
	return perEp / injectGBps, nil
}

// AlltoallShare estimates the global (alltoall) bandwidth share of
// injection bandwidth by simulating nShifts sampled shift iterations one
// at a time and averaging the per-iteration delivered bandwidth (a lower
// bound: see AlltoallShareConcurrent for the unsynchronized measurement).
// Each endpoint injects through a single plane (4 links for HxMesh/torus
// endpoints, 1 for fat-tree/Dragonfly endpoints); injectGBps is the
// per-endpoint injection bandwidth the share is normalized against.
// Passing the cluster's shared table (may be nil) reuses its cached
// distance vectors and candidate DAGs across sweeps; the runner's
// AlltoallPacketShare parallelizes the same sweep.
func AlltoallShare(c *simcore.Compiled, table *routing.Table, cfg Config, bytes int64, nShifts int, injectGBps float64, seed int64) (float64, error) {
	return AlltoallShareOver(c, table, cfg, c.Endpoints, bytes, nShifts, injectGBps, seed)
}

// AlltoallShareOver is AlltoallShare restricted to a subset of endpoints —
// on a degraded fabric the alltoall runs among the surviving accelerators
// (see faults.FaultSet.SurvivingEndpoints).
func AlltoallShareOver(c *simcore.Compiled, table *routing.Table, cfg Config, endpoints []topo.NodeID, bytes int64, nShifts int, injectGBps float64, seed int64) (float64, error) {
	p := len(endpoints)
	sim := New(c, table, cfg)
	sum := 0.0
	shifts := SampleShifts(p, nShifts, seed)
	for _, shift := range shifts {
		res, err := sim.Run(ShiftFlows(endpoints, shift, bytes))
		if err != nil {
			return 0, err
		}
		perEp := res.AggregateGBps() / float64(p)
		sum += perEp / injectGBps
	}
	return sum / float64(len(shifts)), nil
}
