package netsim

import (
	"math/rand"
	"testing"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// Fault-aware UGAL on a heavily degraded Dragonfly: intermediate sampling
// is weighted by per-switch live-port counts, so dead routers are never
// proposed (a uniform sampler would waste ~a third of its draws on them,
// and every wasted draw is a packet that falls back to minimal routing),
// partially masked routers are proposed proportionally less, and the
// surviving non-minimal path diversity is actually used.
func TestUGALFaultAwareSampling(t *testing.T) {
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	c := simcore.Of(df)
	b := faults.NewBuilder(c)
	// Kill 10 of the 32 routers outright...
	dead := make(map[int32]bool)
	for i := 0; i < 10; i++ {
		sw := c.Switches[3*i]
		b.FailNode(sw)
		dead[int32(sw)] = true
	}
	// ...and half the ports of one survivor.
	half := int32(c.Switches[1])
	off, end := c.PortRange(half)
	for pid := off; pid < off+(end-off)/2; pid++ {
		b.FailLink(pid)
	}
	fs := b.Build()
	tab := routing.NewTableMask(c, fs.Mask())
	cfg := DefaultConfig()
	cfg.UGAL = UGALConfig{Enable: true, Candidates: 2}
	s := New(c, tab, cfg)

	rng := rand.New(rand.NewSource(3))
	const draws = 8192
	counts := make(map[int32]int)
	for i := 0; i < draws; i++ {
		mid := s.weightedSwitch(rng)
		if mid < 0 {
			t.Fatal("weighted sampler returned no switch on a fabric with live switches")
		}
		if dead[mid] {
			t.Fatalf("weighted sampler proposed dead switch %d", mid)
		}
		counts[mid]++
	}
	if got, live := len(counts), len(c.Switches)-len(dead); got < live*8/10 {
		t.Fatalf("weighted sampler covered %d of %d live switches", got, live)
	}
	// The half-masked router is proposed roughly half as often as a fully
	// live one (compare against the mean over fully live routers).
	fullLive := 0.0
	n := 0
	for _, sw := range c.Switches {
		if int32(sw) != half && !dead[int32(sw)] {
			fullLive += float64(counts[int32(sw)])
			n++
		}
	}
	fullLive /= float64(n)
	if ratio := float64(counts[half]) / fullLive; ratio < 0.3 || ratio > 0.8 {
		t.Fatalf("half-masked switch sampled at %.2f of a live switch's rate, want ≈0.5", ratio)
	}
	// A uniform sampler over the same switch index wastes draws on the
	// dead routers — the diversity the weighting recovers.
	wasted := 0
	for i := 0; i < draws; i++ {
		if dead[int32(c.Switches[rng.Intn(len(c.Switches))])] {
			wasted++
		}
	}
	if wasted == 0 {
		t.Fatal("uniform baseline wasted no draws; the scenario is not degraded enough to be meaningful")
	}
	t.Logf("uniform sampling wasted %d/%d draws on dead routers; weighted wasted 0", wasted, draws)

	// End to end: UGAL traffic among the endpoints still attached to live
	// routers completes over the degraded fabric (an endpoint's single
	// link leads to its router, so a dead router cuts its endpoints off).
	alive := make([]topo.NodeID, 0, len(df.Endpoints))
	for _, ep := range df.Endpoints {
		router := c.Ports[c.PortOff[ep]].To
		uplinkMasked := fs.Mask().Get(c.PortOff[ep])
		if !dead[router] && !uplinkMasked && (len(alive) == 0 || tab.Reachable(alive[0], ep)) {
			alive = append(alive, ep)
		}
	}
	if len(alive) < 2 {
		t.Fatal("scenario cut off every endpoint")
	}
	res, err := New(c, tab, cfg).Run(ShiftFlows(alive, 3, 16<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != int64(len(alive))*16<<10 {
		t.Fatalf("delivered %d bytes", res.TotalBytes)
	}
}

// UGAL on a degraded Dragonfly: sampled intermediates that were cut off
// are skipped via the destination's cached distance vector, and the run
// completes among all endpoints (link faults are connectivity-preserving).
func TestUGALOnDegradedFabric(t *testing.T) {
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	c := simcore.Of(df)
	fs := faults.SampleLinksConnected(c, 0.10, 5)
	tab := routing.NewTableMask(c, fs.Mask())
	cfg := DefaultConfig()
	cfg.UGAL = UGALConfig{Enable: true, Candidates: 2}
	res, err := New(c, tab, cfg).Run(ShiftFlows(df.Endpoints, 5, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != int64(len(df.Endpoints))*32<<10 {
		t.Fatalf("delivered %d bytes", res.TotalBytes)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}
