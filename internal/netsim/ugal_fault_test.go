package netsim

import (
	"testing"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// UGAL on a degraded Dragonfly: sampled intermediates that were cut off
// are skipped via the destination's cached distance vector, and the run
// completes among all endpoints (link faults are connectivity-preserving).
func TestUGALOnDegradedFabric(t *testing.T) {
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	c := simcore.Of(df)
	fs := faults.SampleLinksConnected(c, 0.10, 5)
	tab := routing.NewTableMask(c, fs.Mask())
	cfg := DefaultConfig()
	cfg.UGAL = UGALConfig{Enable: true, Candidates: 2}
	res, err := New(c, tab, cfg).Run(ShiftFlows(df.Endpoints, 5, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != int64(len(df.Endpoints))*32<<10 {
		t.Fatalf("delivered %d bytes", res.TotalBytes)
	}
	if res.Makespan <= 0 {
		t.Fatal("no makespan")
	}
}
