package netsim

import (
	"math"
	"testing"

	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// The golden values below were captured from the pre-simcore (map-based)
// engine on the same inputs; the flat-array refactor must reproduce them
// exactly. LeastQueued routing is fully deterministic, so any drift means
// the refactor changed simulation semantics, not just representation.

func near(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

func TestRegressionAlltoallGolden(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	flows := ShiftFlows(h.Endpoints, 3, 64<<10)

	res, err := New(c, nil, DefaultConfig()).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Makespan, 1838.3999999999999) {
		t.Errorf("makespan = %v, want 1838.4", res.Makespan)
	}
	if res.TotalBytes != 1048576 {
		t.Errorf("totalBytes = %d, want 1048576", res.TotalBytes)
	}
	if res.Events != 704 {
		t.Errorf("events = %d, want 704", res.Events)
	}
	if len(res.RecvByRank) != 16 {
		t.Fatalf("recvByRank has %d entries, want 16", len(res.RecvByRank))
	}
	for r, b := range res.RecvByRank {
		if b != 65536 {
			t.Errorf("rank %d received %d bytes, want 65536", r, b)
		}
	}

	// Credit-based flow control with small buffers exercises the flat
	// waiter arrays; the outcome matched ideal mode in the seed engine.
	cfg := DefaultConfig()
	cfg.Mode = CreditFC
	cfg.LP.BufferB = 32 << 10
	resC, err := New(c, nil, cfg).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	if resC.Deadlocked {
		t.Fatal("credit run deadlocked")
	}
	if !near(resC.Makespan, 1838.3999999999999) || resC.Events != 704 {
		t.Errorf("credit run makespan=%v events=%d, want 1838.4/704", resC.Makespan, resC.Events)
	}

	// Multi-shift sampled sweep (the Table II global-bandwidth estimator).
	share, err := AlltoallShare(c, nil, DefaultConfig(), 64<<10, 4, 200, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !near(share, 0.1956812535830308) {
		t.Errorf("alltoall share = %v, want 0.1956812535830308", share)
	}
}

func TestRegressionUGALGolden(t *testing.T) {
	df := topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: topo.DefaultLinkParams()})
	cfg := DefaultConfig()
	cfg.UGAL = UGALConfig{Enable: true, Candidates: 2}
	res, err := NewNet(df, nil, cfg).Run(ShiftFlows(df.Endpoints, 5, 32<<10))
	if err != nil {
		t.Fatal(err)
	}
	if !near(res.Makespan, 4432.160000000002) {
		t.Errorf("makespan = %v, want 4432.16", res.Makespan)
	}
	if res.TotalBytes != 2097152 || res.Events != 2272 {
		t.Errorf("totalBytes=%d events=%d, want 2097152/2272", res.TotalBytes, res.Events)
	}
}

func TestRegressionFlowsimGolden(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 2, 2, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	s := flowsim.New(c, nil, flowsim.Config{Seed: 11, ValiantPaths: 2})
	rates, err := s.Solve(flowsim.ShiftFlows(h.Network.Endpoints, 5))
	if err != nil {
		t.Fatal(err)
	}
	sum, minR := 0.0, rates[0]
	for _, r := range rates {
		sum += r
		if r < minR {
			minR = r
		}
	}
	if len(rates) != 16 || !near(sum, 934.9999999999998) || !near(minR, 36.666666666666664) {
		t.Errorf("flowsim rates n=%d sum=%v min=%v, want 16/935/36.67", len(rates), sum, minR)
	}
	share, err := s.AlltoallShare(6, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	if !near(share, 0.2591991783278303) {
		t.Errorf("flowsim share = %v, want 0.2591991783278303", share)
	}
}
