package netsim

import (
	"math/rand"
	"testing"
)

// The property pinning QueueCalendar to QueueHeap: on any stream of
// pushes and pops, the calendar queue pops the exact event sequence the
// reference 4-ary heap pops — not just the same timestamp multiset, the
// same canonical order. Unique seq values make any divergence visible.
func TestCalendarMatchesHeapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		var cal calendarQueue
		var heap eventQueue
		// Vary the span across trials: tight spans force overflow use,
		// wide spans force empty-bucket skipping.
		span := []float64{3, 50, 1000, 100000}[trial%4]
		cal.init(span)

		now := 0.0
		seq := int32(0)
		nOps := 2000 + rng.Intn(2000)
		for op := 0; op < nOps; op++ {
			if rng.Intn(3) > 0 || len(heap) == 0 {
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					seq++
					dt := 0.0
					switch rng.Intn(10) {
					case 0: // same-timestamp burst (heavy t=0 injection case)
					case 1: // far-future spike, lands in the overflow heap
						dt = span * (2 + rng.Float64()*100)
					default:
						dt = rng.Float64() * span
					}
					var pkt packet
					pkt.flow = int32(rng.Intn(4))
					e := makeEvent(now+dt, eventKind(rng.Intn(2)),
						int32(rng.Intn(8)), int32(rng.Intn(16))-1, seq, pkt)
					cal.push(e)
					heap.push(e)
				}
			} else {
				want := heap.pop()
				got, ok := cal.pop()
				if !ok {
					t.Fatalf("trial %d: calendar empty, heap has %d", trial, len(heap)+1)
				}
				if got != want {
					t.Fatalf("trial %d op %d: pop mismatch\ncal  %+v\nheap %+v", trial, op, got, want)
				}
				// Discrete-event contract: pushes never precede the last
				// popped event's time.
				now = want.t
			}
			if cal.len() != len(heap) {
				t.Fatalf("trial %d: len %d != %d", trial, cal.len(), len(heap))
			}
		}
		// Drain: the full remaining sequences must match pop for pop.
		for len(heap) > 0 {
			want := heap.pop()
			got, ok := cal.pop()
			if !ok || got != want {
				t.Fatalf("trial %d drain: got %+v ok=%v, want %+v", trial, got, ok, want)
			}
		}
		if _, ok := cal.pop(); ok {
			t.Fatalf("trial %d: calendar not empty after drain", trial)
		}
	}
}

// A same-slice burst far above the grow threshold must trigger bucket
// resizing and still pop in exact canonical order, including events
// pushed before the resize.
func TestCalendarGrowPreservesOrder(t *testing.T) {
	var cal calendarQueue
	var heap eventQueue
	cal.init(100)
	if cal.nb != calInitBuckets {
		t.Fatalf("initial buckets = %d, want %d", cal.nb, calInitBuckets)
	}
	rng := rand.New(rand.NewSource(7))
	n := calInitBuckets*calGrowPerBucket*4 + 3
	for i := 0; i < n; i++ {
		e := makeEvent(rng.Float64()*100, evArrive, int32(i), -1, int32(i), packet{})
		cal.push(e)
		heap.push(e)
	}
	if cal.nb <= calInitBuckets {
		t.Fatalf("buckets = %d after %d pushes, expected growth", cal.nb, n)
	}
	for len(heap) > 0 {
		want := heap.pop()
		got, ok := cal.pop()
		if !ok || got != want {
			t.Fatalf("post-grow pop: got %+v ok=%v, want %+v", got, ok, want)
		}
	}
}

// peekT and popIf are the window primitives of the parallel engine:
// peekT must not disturb the queue, popIf must respect a strict bound.
func TestCalendarPeekAndPopIf(t *testing.T) {
	var cal calendarQueue
	cal.init(50)
	for i, tm := range []float64{30, 10, 20, 10, 500} { // 500 overflows
		cal.push(makeEvent(tm, evArrive, 0, -1, int32(i), packet{}))
	}
	if tm, ok := cal.peekT(); !ok || tm != 10 {
		t.Fatalf("peekT = %v %v, want 10 true", tm, ok)
	}
	if cal.len() != 5 {
		t.Fatalf("peekT disturbed the queue: len %d", cal.len())
	}
	if _, ok := cal.popIf(10); ok {
		t.Fatal("popIf(10) returned an event at t=10 (bound is strict)")
	}
	var got []float64
	for {
		e, ok := cal.popIf(25)
		if !ok {
			break
		}
		got = append(got, e.t)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != 10 || got[2] != 20 {
		t.Fatalf("popIf(25) sequence = %v, want [10 10 20]", got)
	}
	if tm, ok := cal.peekT(); !ok || tm != 30 {
		t.Fatalf("after popIf: peekT = %v %v, want 30 true", tm, ok)
	}
	// Ring now empty except t=30; popping it leaves only the overflow
	// event, which refill must surface.
	if e, ok := cal.pop(); !ok || e.t != 30 {
		t.Fatalf("pop = %v %v, want t=30", e, ok)
	}
	if e, ok := cal.pop(); !ok || e.t != 500 {
		t.Fatalf("overflow pop = %v %v, want t=500", e, ok)
	}
	if _, ok := cal.pop(); ok {
		t.Fatal("queue should be empty")
	}
}
