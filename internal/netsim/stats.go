package netsim

import (
	"sort"

	"hammingmesh/internal/topo"
)

// ChannelInfo describes one directed channel for link-statistics readers.
type ChannelInfo struct {
	From, To topo.NodeID
	Class    topo.LinkClass
	GBps     float64
}

// ChannelInfo returns the descriptor of channel i (see Result.LinkBytes).
// Channel ids are compiled port ids, so the lookup is direct.
func (s *Sim) ChannelInfo(i int) ChannelInfo {
	p := s.comp.Ports[i]
	return ChannelInfo{
		From:  topo.NodeID(s.comp.Owner[i]),
		To:    topo.NodeID(p.To),
		Class: p.Class,
		GBps:  p.GBps,
	}
}

// NumChannels returns the number of directed channels.
func (s *Sim) NumChannels() int { return len(s.channels) }

// HotLink is a channel with its carried bytes and utilization over a
// simulation's makespan.
type HotLink struct {
	Channel     int
	Info        ChannelInfo
	Bytes       int64
	Utilization float64 // carried bytes / (GBps * makespan)
}

// HotLinks returns the n busiest channels of a run with link statistics
// enabled, sorted by byte count descending (ties broken by channel id so
// the order is deterministic).
func (s *Sim) HotLinks(res *Result, n int) []HotLink {
	if res.LinkBytes == nil {
		return nil
	}
	out := make([]HotLink, 0, len(res.LinkBytes))
	for i, b := range res.LinkBytes {
		if b == 0 {
			continue
		}
		info := s.ChannelInfo(i)
		util := 0.0
		if res.Makespan > 0 {
			util = float64(b) / (info.GBps * res.Makespan)
		}
		out = append(out, HotLink{Channel: i, Info: info, Bytes: b, Utilization: util})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Channel < out[j].Channel
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// BytesByClass aggregates carried bytes per link class, densely indexed by
// topo.LinkClass (deterministic, unlike the map it replaces).
func (s *Sim) BytesByClass(res *Result) [topo.NumLinkClasses]int64 {
	var out [topo.NumLinkClasses]int64
	for i, b := range res.LinkBytes {
		if b > 0 {
			out[s.comp.Ports[i].Class] += b
		}
	}
	return out
}

// UpperLevelShare returns the fraction of carried bytes on channels whose
// both endpoints are switches above the given level (e.g., level ≥ 2 =
// upper fat-tree levels) — the packet-level counterpart of the Fig. 9
// accounting.
func (s *Sim) UpperLevelShare(res *Result, minLevel int8) float64 {
	var upper, total int64
	for i, b := range res.LinkBytes {
		if b == 0 {
			continue
		}
		from, to := s.comp.Owner[i], s.comp.Ports[i].To
		total += b
		if s.comp.IsSwitch(from) && s.comp.IsSwitch(to) &&
			(s.comp.Level[from] >= minLevel || s.comp.Level[to] >= minLevel) {
			upper += b
		}
	}
	if total == 0 {
		return 0
	}
	return float64(upper) / float64(total)
}
