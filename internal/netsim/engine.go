// Package netsim is a discrete-event packet-level network simulator, the
// repository's substitute for the Structural Simulation Toolkit (SST) used
// by the paper. It simulates individual packets through the switch graph
// built by internal/topo with the Appendix F parameters: 8 KiB packets,
// 400 Gb/s links (50 GB/s = 50 B/ns), 20 ns cable / 1 ns PCB latency, and
// per-hop input/output buffering latency.
//
// The simulator runs on the compiled flat-array network (internal/simcore):
// a channel is exactly one compiled port, so its id doubles as the index of
// all mutable per-channel state, and every hot-loop lookup — candidate
// output ports, buffer occupancy, blocked-channel wakeups, per-endpoint
// receive accounting — is an array index rather than a map access.
//
// Two flow-control modes are supported: IdealBuffers (unbounded switch
// queues, trivially deadlock-free; congestion still forms through link
// serialization) and CreditFC (finite switch input buffers with
// backpressure and the paper's virtual-channel escalation policy,
// §IV-C3; endpoint NICs are treated as amply buffered). Routing is
// minimal adaptive: among the shortest-path candidate output ports the
// node picks the least-queued one (selectable for ablation studies).
//
// # Parallel engine
//
// Config.Shards > 1 runs the conservative-parallel engine (parallel.go):
// the compiled nodes are split into contiguous, port-weight-balanced
// ranges (simcore.PartitionNodes) — so each shard owns a contiguous CSR
// port range and all of its mutable channel state — and shards advance
// in lookahead windows of min(link latency) + switch latency,
// exchanging cross-shard packets through per-pair mailboxes drained at
// window barriers. Flow accounting (deliveries, completion times,
// source-window injection) runs as a separate single-threaded flow
// phase at each window boundary, which resolves the zero-delay
// delivery→injection feedback exactly.
//
// The determinism contract: events execute in a canonical total order
// (time, then kind/node/channel, then injection sequence — see
// eventBefore), so
// Result is bit-identical for every shard count, including 1 and the
// serial engine, on any deterministic configuration. Configurations
// whose semantics are inherently serial — CreditFC (zero-latency credit
// wakeups), UGAL and RandomCandidate (a single RNG stream consumed in
// event order) — transparently fall back to the serial engine so the
// contract is never silently weakened; Config.MaxEvents is enforced as
// one global budget across shards. The golden and invariance tests pin
// all of this.
package netsim

import (
	"fmt"
	"math"
	"math/rand"

	"hammingmesh/internal/obs"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// Mode selects the flow-control model.
type Mode uint8

const (
	// IdealBuffers uses unbounded switch queues (no backpressure).
	IdealBuffers Mode = iota
	// CreditFC bounds per-switch input buffers and applies backpressure
	// with virtual-channel escalation at board-to-network hops.
	CreditFC
)

// Choice selects how a node picks among minimal candidate output ports.
type Choice uint8

const (
	// LeastQueued picks the candidate with the smallest queued byte count
	// (packet-level adaptive routing, the paper's default).
	LeastQueued Choice = iota
	// RandomCandidate picks uniformly at random (oblivious spraying).
	RandomCandidate
	// FirstCandidate always picks the first candidate (deterministic
	// routing; ablation baseline).
	FirstCandidate
)

// QueueKind selects the event-queue implementation. Both pop events in
// the same canonical order, so results are bit-identical; the property
// test in calqueue_test.go pins them pop-for-pop equal.
type QueueKind uint8

const (
	// QueueCalendar is the default bucketed calendar queue (calqueue.go):
	// O(1)-ish push/pop at large event counts.
	QueueCalendar QueueKind = iota
	// QueueHeap is the reference typed 4-ary heap (heap.go).
	QueueHeap
)

// Config controls a simulation run.
type Config struct {
	LP     topo.LinkParams
	Mode   Mode
	Choice Choice
	// Window is the number of outstanding packets per flow (source-side
	// injection control). Zero means 16.
	Window int
	Seed   int64
	// MaxEvents aborts runaway simulations. Zero means 500 million. With
	// Shards > 1 it is a single global budget shared by all shards.
	MaxEvents int64
	// UGAL enables non-minimal adaptive routing (see UGALConfig).
	UGAL UGALConfig
	// CollectLinkStats records per-channel delivered bytes in the result.
	CollectLinkStats bool
	// Queue selects the event-queue implementation (identical results).
	Queue QueueKind
	// Shards runs the conservative-parallel engine on that many shards
	// (see the package doc's parallel-engine section). 0 or 1 means
	// serial; the Result is bit-identical for every shard count.
	// Inherently serial configurations (CreditFC, UGAL, RandomCandidate)
	// fall back to the serial engine.
	Shards int
	// Metrics, when non-nil, receives per-run engine statistics (events
	// by kind, deliveries, windows, per-shard stalls, peak queue
	// occupancy) flushed once after each Run. The hot loops keep plain
	// per-run counters; the registry is touched only at flush time, and
	// results are bit-identical with or without it (obs contract).
	Metrics *obs.Registry
	// Trace, when non-nil, records a flight-recorder trace: per-channel
	// transmit spans (1 sim-ns = 1 trace-µs, so Perfetto shows per-link
	// utilization lanes) and, under the parallel engine, per-shard window
	// spans with barrier instants. Recording never perturbs the
	// simulation; results stay bit-identical.
	Trace *obs.Recorder
}

// DefaultConfig returns the paper-equivalent configuration.
func DefaultConfig() Config {
	return Config{LP: topo.DefaultLinkParams(), Mode: IdealBuffers, Choice: LeastQueued, Window: 16, Seed: 1}
}

// Flow is one unidirectional transfer.
type Flow struct {
	Src, Dst topo.NodeID
	Bytes    int64
	Start    float64 // injection time in ns
}

// Result aggregates a simulation run.
type Result struct {
	// Makespan is the time of the last delivery, in ns (flows start at
	// their Start times, typically 0).
	Makespan float64
	// TotalBytes delivered.
	TotalBytes int64
	// FlowFinish[i] is the delivery time of the last packet of flow i.
	FlowFinish []float64
	// RecvByRank[r] is the number of bytes received by the endpoint of
	// rank r (node id Endpoints[r]).
	RecvByRank []int64
	// Endpoints lists the endpoint node ids in rank order.
	Endpoints []topo.NodeID
	// Deadlocked is set when CreditFC stalls with packets undelivered.
	Deadlocked bool
	// Events is the number of processed simulator events.
	Events int64
	// LinkBytes[i] is the byte count serialized by channel i (only when
	// Config.CollectLinkStats is set); use Sim.ChannelInfo to decode i.
	LinkBytes []int64
}

// AggregateGBps is total delivered bytes over the makespan (GB/s).
func (r *Result) AggregateGBps() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.TotalBytes) / r.Makespan // bytes/ns == GB/s
}

// EndpointGBps is the delivered receive bandwidth of one endpoint.
type EndpointGBps struct {
	Node topo.NodeID
	GBps float64
}

// PerEndpointGBps returns delivered bandwidth per receiving endpoint over
// the makespan, in deterministic endpoint-rank order.
func (r *Result) PerEndpointGBps() []EndpointGBps {
	out := make([]EndpointGBps, 0, len(r.RecvByRank))
	for rank, b := range r.RecvByRank {
		if b == 0 {
			continue
		}
		out = append(out, EndpointGBps{Node: r.Endpoints[rank], GBps: float64(b) / r.Makespan})
	}
	return out
}

type eventKind uint8

const (
	evArrive eventKind = iota // packet finished traversing a link (or was injected)
	evFree                    // channel finished serializing a packet
)

type packet struct {
	flow  int32
	size  int32
	vc    int8 // virtual channel for the next hop (CreditFC)
	relVC int8 // VC under which this packet holds its current input buffer; -1 none
	ugal  ugalState
}

// event is one scheduled simulator event. kind, node and ch live packed
// in ord — the canonical tie-break key (see eventBefore) — rather than
// as separate fields: the event queue copies events on every sift, so a
// lean struct matters, and packing at creation makes the hot comparator
// two integer compares instead of a field-by-field fallthrough.
type event struct {
	t   float64
	ord uint64
	// seq is the injection-creation sequence number, the tie-breaker of
	// last resort in the canonical event order (eventBefore): injections
	// at one node created at the same instant are otherwise identical
	// keys. Non-injection events are unique by (t, kind, node, ch) alone
	// — a channel serializes, so it frees and delivers at strictly
	// increasing times — and carry seq 0.
	seq int32
	pkt packet
}

// makeEvent packs (kind, node, ch) into the canonical key. node and ch
// are array indices (< 2^31, with ch == -1 for injections), so the
// packing is exact and order-preserving.
func makeEvent(t float64, kind eventKind, node, ch, seq int32, pkt packet) event {
	return event{
		t:   t,
		ord: uint64(kind)<<62 | uint64(uint32(node))<<31 | uint64(uint32(ch+1)),
		seq: seq,
		pkt: pkt,
	}
}

func (e *event) kind() eventKind { return eventKind(e.ord >> 62) }
func (e *event) node() int32     { return int32(e.ord >> 31 & 0x7fffffff) }
func (e *event) ch() int32       { return int32(e.ord&0x7fffffff) - 1 }

// channel holds the mutable state of one link direction; its index is the
// compiled port id, whose static attributes live in comp.Ports.
//
// The queue pops by advancing head instead of re-slicing the front, so the
// backing array is reclaimed (head and length reset) whenever it drains and
// survives across Sim.Reset — steady-state simulation sweeps stop
// allocating queue storage after the first run.
type channel struct {
	busy    bool
	blocked bool // waiting for downstream buffer space (CreditFC)
	queue   []packet
	head    int
	queuedB int64
}

func (ch *channel) qlen() int { return len(ch.queue) - ch.head }

func (ch *channel) pop() packet {
	pkt := ch.queue[ch.head]
	ch.head++
	if ch.head == len(ch.queue) {
		ch.queue = ch.queue[:0]
		ch.head = 0
	} else if ch.head >= 32 && ch.head*2 >= len(ch.queue) {
		// Compact once the dead prefix dominates, so a persistently busy
		// channel's backing array tracks its peak queue depth rather than
		// the total packets it ever carried.
		n := copy(ch.queue, ch.queue[ch.head:])
		ch.queue = ch.queue[:n]
		ch.head = 0
	}
	return pkt
}

// Sim is a single simulation instance. It is not safe for concurrent use,
// but many Sims may share one Compiled network and routing Table.
type Sim struct {
	comp  *simcore.Compiled
	table *routing.Table
	cfg   Config

	// mask is the routing table's degraded-fabric overlay (nil when
	// pristine): the engine refuses to enqueue packets on masked ports.
	mask simcore.PortMask

	// ugalCum caches the cumulative live-port weights of the switch index
	// for fault-aware UGAL intermediate sampling (built lazily; nil on
	// the pristine fabric, where sampling stays uniform).
	ugalCum []int32

	channels []channel // indexed by compiled port id

	// CreditFC state, indexed by node*MaxVCs+vc: input-buffer occupancy
	// per switch per VC, and channels waiting for space.
	occ     []int64
	waiters [][]int32

	flows     []Flow
	flowSent  []int64
	flowRecvd []int64

	// Exactly one of the two queues is active, per cfg.Queue; horizon is
	// the largest event-scheduling delay of any port (sizes the calendar
	// ring and, doubled as headroom, its span).
	events  eventQueue
	cal     calendarQueue
	useHeap bool
	horizon float64

	// injSeq numbers injected events in creation order (the canonical
	// tie-breaker of last resort; see event.seq).
	injSeq int32

	// par is the sharded-parallel engine state, non-nil when cfg.Shards
	// selects it and the configuration is deterministic (parallel.go).
	par *parState

	rng *rand.Rand

	res Result

	// Per-run instrumentation counters, flushed into cfg.Metrics after a
	// successful Run. Plain ints: the serial loop and the coordinator are
	// single-threaded, and shard-local counts (parallel.go) are summed
	// after the final barrier. qLive/qPeak track serial event-queue
	// occupancy only (shards own private queues).
	stArrive, stFree, stDeliver, stWindows, stStalls int64
	qLive, qPeak                                     int64
}

// exec is the event-execution context: the simulator plus the sink
// newly scheduled events go to — the serial event queue, or the local
// shard of the parallel engine, which routes deliveries to the
// flow-domain queue and cross-shard arrivals into mailboxes.
type exec struct {
	s  *Sim
	sh *shard
}

func (x exec) push(e event) {
	if x.sh != nil {
		x.sh.push(e)
		return
	}
	x.s.pushEvent(e)
}

func (s *Sim) pushEvent(e event) {
	s.qLive++
	if s.qLive > s.qPeak {
		s.qPeak = s.qLive
	}
	if s.useHeap {
		s.events.push(e)
		return
	}
	s.cal.push(e)
}

func (s *Sim) popEventInto(ev *event) bool {
	if s.useHeap {
		if len(s.events) == 0 {
			return false
		}
		*ev = s.events.pop()
		s.qLive--
		return true
	}
	if s.cal.popIfInto(math.Inf(1), ev) {
		s.qLive--
		return true
	}
	return false
}

// New creates a simulator over a compiled network using minimal adaptive
// routing from the given table (a fresh table is created if nil).
func New(c *simcore.Compiled, table *routing.Table, cfg Config) *Sim {
	if table == nil {
		table = routing.NewTable(c)
	}
	if cfg.Window <= 0 {
		cfg.Window = 16
	}
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = 500_000_000
	}
	s := &Sim{comp: c, table: table, cfg: cfg, mask: table.Mask(), rng: rand.New(rand.NewSource(cfg.Seed))}
	s.channels = make([]channel, c.NumPorts())
	if cfg.Mode == CreditFC {
		s.occ = make([]int64, c.NumNodes()*routing.MaxVCs)
		s.waiters = make([][]int32, c.NumNodes()*routing.MaxVCs)
	}
	// horizon bounds every event-scheduling delay: serialization of a full
	// packet plus link latency plus switch traversal, maximized over ports.
	for i := range c.Ports {
		p := &c.Ports[i]
		d := float64(cfg.LP.PacketB)/p.GBps + p.Latency + cfg.LP.SwitchNS
		if d > s.horizon {
			s.horizon = d
		}
	}
	s.useHeap = cfg.Queue == QueueHeap
	if !s.useHeap {
		s.cal.init(2*s.horizon + 1)
	}
	if n := cfg.Shards; n > 1 {
		if nn := c.NumNodes(); n > nn {
			n = nn
		}
		// Inherently serial configurations fall back to the serial engine
		// (see the package doc); lookahead must be positive for windows to
		// make progress.
		if n > 1 && cfg.Mode == IdealBuffers && !cfg.UGAL.Enable &&
			cfg.Choice != RandomCandidate && lookaheadOf(c, cfg) > 0 {
			s.par = newParState(s, n)
		}
	}
	if tr := cfg.Trace; tr != nil {
		tr.SetProcessName(tracePidLinks, "netsim links")
		if s.par != nil {
			tr.SetProcessName(tracePidShards, "netsim shards")
			for i := range s.par.shards {
				tr.SetThreadName(tracePidShards, int32(i), fmt.Sprintf("shard %d", i))
			}
			tr.SetThreadName(tracePidShards, int32(len(s.par.shards)), "coordinator")
		}
	}
	return s
}

// Trace pid lanes netsim emits into (obs.Recorder process ids).
const (
	tracePidLinks  = 1 // tid = channel (compiled port) id → per-link lanes
	tracePidShards = 2 // tid = shard id; one extra lane for the coordinator
)

// NewNet creates a simulator straight from a network, compiling it through
// the simcore cache.
func NewNet(n *topo.Network, table *routing.Table, cfg Config) *Sim {
	return New(simcore.Of(n), table, cfg)
}

// Reset re-arms the simulator for another Run on the same network: it
// validates the flows and rewinds all mutable state — channel queues, flow
// accounting, credit buffers, the event heap and the result — reusing
// every backing array of earlier runs, so repeated Run calls on one Sim
// allocate nothing in steady state. The rng deliberately carries over
// (matching the long-standing multi-run behaviour of AlltoallShareOver);
// a previously returned Result aliases the reused arrays and is
// invalidated by the next Reset or Run.
func (s *Sim) Reset(flows []Flow) error {
	for fi, f := range flows {
		if f.Bytes <= 0 {
			continue
		}
		if f.Src == f.Dst {
			return fmt.Errorf("netsim: flow %d is a self-flow", fi)
		}
		// Receive accounting is dense by endpoint rank, so only endpoints
		// can terminate flows.
		if s.comp.RankOf[f.Dst] < 0 {
			return fmt.Errorf("netsim: flow %d destination %d is not an endpoint", fi, f.Dst)
		}
		// On a degraded fabric a flow whose destination was cut off fails
		// up front with the typed routing error rather than panicking on an
		// empty candidate set mid-simulation.
		if s.mask != nil && !s.table.Reachable(f.Src, f.Dst) {
			return fmt.Errorf("netsim: flow %d: %w", fi, &routing.ErrUnreachable{From: f.Src, To: f.Dst})
		}
	}
	s.flows = flows
	for ci := range s.channels {
		ch := &s.channels[ci]
		ch.busy, ch.blocked = false, false
		ch.queue = ch.queue[:0]
		ch.head = 0
		ch.queuedB = 0
	}
	clear(s.occ)
	for i := range s.waiters {
		s.waiters[i] = s.waiters[i][:0]
	}
	s.flowSent = resetSlice(s.flowSent, len(flows))
	s.flowRecvd = resetSlice(s.flowRecvd, len(flows))
	res := Result{
		FlowFinish: resetSlice(s.res.FlowFinish, len(flows)),
		RecvByRank: resetSlice(s.res.RecvByRank, s.comp.NumEndpoints()),
		Endpoints:  s.comp.Endpoints,
	}
	if s.cfg.CollectLinkStats {
		// Reuse the previous run's backing array (building the new Result
		// first and assigning after would drop it and reallocate per run).
		res.LinkBytes = resetSlice(s.res.LinkBytes, len(s.channels))
	}
	s.res = res
	s.events = s.events[:0]
	if !s.useHeap {
		s.cal.reset()
	}
	s.injSeq = 0
	s.stArrive, s.stFree, s.stDeliver, s.stWindows, s.stStalls = 0, 0, 0, 0, 0
	s.qLive, s.qPeak = 0, 0
	if s.par != nil {
		s.par.reset()
	}
	return nil
}

// resetSlice returns a zeroed length-n slice, reusing s's backing array
// when it is large enough.
func resetSlice[T int64 | float64](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// Run simulates the given flows to completion and returns the result. The
// result's slices are owned by the Sim and invalidated by the next Run or
// Reset on the same instance.
func (s *Sim) Run(flows []Flow) (*Result, error) {
	if err := s.Reset(flows); err != nil {
		return nil, err
	}
	for fi, f := range flows {
		if f.Bytes <= 0 {
			s.res.FlowFinish[fi] = f.Start
			continue
		}
		for w := 0; w < s.cfg.Window && s.flowSent[fi] < f.Bytes; w++ {
			s.injectNext(int32(fi), f.Start)
		}
	}

	if s.par != nil {
		if err := s.runParallel(); err != nil {
			return nil, err
		}
	} else if err := s.runSerial(); err != nil {
		return nil, err
	}
	for fi := range flows {
		if s.flowRecvd[fi] < flows[fi].Bytes {
			s.res.Deadlocked = true
		}
	}
	if s.res.Deadlocked && s.cfg.Mode != CreditFC {
		return nil, fmt.Errorf("netsim: internal error: undelivered packets in ideal mode")
	}
	s.flushMetrics()
	return &s.res, nil
}

// flushMetrics publishes the run's plain counters into cfg.Metrics — the
// one place per run the engine touches the registry, so the hot loops
// stay allocation- and lock-free regardless of instrumentation.
func (s *Sim) flushMetrics() {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Counter("netsim_runs_total", "", "completed packet-simulation runs").Inc()
	m.Counter("netsim_events_total", `kind="arrive"`, "processed simulator events by kind").Add(s.stArrive)
	m.Counter("netsim_events_total", `kind="free"`, "processed simulator events by kind").Add(s.stFree)
	m.Counter("netsim_deliveries_total", "", "packets delivered to their destination endpoint").Add(s.stDeliver)
	m.Gauge("netsim_queue_peak_events", "", "peak event-queue occupancy of the last serial-engine run").Set(float64(s.qPeak))
	if s.par != nil {
		m.Counter("netsim_windows_total", "", "conservative-parallel lookahead windows executed").Add(s.stWindows)
		for i := range s.par.shards {
			m.Counter("netsim_window_stalls_total", fmt.Sprintf(`shard="%d"`, i),
				"windows in which a shard had no events below the bound").Add(s.par.shards[i].stalls)
		}
	}
}

// runSerial is the single-threaded event loop.
func (s *Sim) runSerial() error {
	x := exec{s: s}
	var ev event
	for {
		if !s.popEventInto(&ev) {
			return nil
		}
		s.res.Events++
		if s.res.Events > s.cfg.MaxEvents {
			return fmt.Errorf("netsim: exceeded %d events", s.cfg.MaxEvents)
		}
		switch ev.kind() {
		case evArrive:
			s.stArrive++
			if err := s.arrive(ev, x); err != nil {
				return err
			}
		case evFree:
			s.stFree++
			ci := ev.ch()
			s.channels[ci].busy = false
			s.startTransmit(ci, ev.t, x)
		}
	}
}

// injectNext creates the next packet of flow fi at time t.
func (s *Sim) injectNext(fi int32, t float64) {
	f := s.flows[fi]
	remaining := f.Bytes - s.flowSent[fi]
	size := int64(s.cfg.LP.PacketB)
	if remaining < size {
		size = remaining
	}
	s.flowSent[fi] += size
	pkt := packet{flow: fi, size: int32(size), relVC: -1, ugal: ugalState{mid: -1}}
	if s.cfg.UGAL.Enable {
		pkt.ugal.mid = s.chooseUGAL(int32(f.Src), int32(f.Dst), s.rng)
	}
	// Injections are created in the same order serially and in parallel
	// (the setup loop, then deliveries in canonical order), so seq is a
	// deterministic, shard-count-independent tie-breaker.
	s.injSeq++
	ev := makeEvent(t, evArrive, int32(f.Src), -1, s.injSeq, pkt)
	if s.par != nil {
		s.par.routeInjection(ev)
		return
	}
	s.pushEvent(ev)
}

// deliver processes a packet reaching its flow's destination endpoint. It
// touches only flow and result accounting (never channel state), which is
// what lets the parallel engine run all deliveries — and the injections
// they trigger — in a single-threaded flow phase at window boundaries.
func (s *Sim) deliver(ev event) {
	s.stDeliver++
	pkt := ev.pkt
	f := s.flows[pkt.flow]
	s.flowRecvd[pkt.flow] += int64(pkt.size)
	s.res.TotalBytes += int64(pkt.size)
	s.res.RecvByRank[s.comp.RankOf[ev.node()]] += int64(pkt.size)
	if ev.t > s.res.Makespan {
		s.res.Makespan = ev.t
	}
	if s.flowRecvd[pkt.flow] >= f.Bytes {
		s.res.FlowFinish[pkt.flow] = ev.t
	}
	if s.flowSent[pkt.flow] < f.Bytes {
		s.injectNext(pkt.flow, ev.t)
	}
}

// arrive processes a packet reaching a node (after link traversal, or at
// the source when injected). It fails with a typed routing error when the
// packet has no live output toward its target.
func (s *Sim) arrive(ev event, x exec) error {
	node := ev.node()
	pkt := ev.pkt
	f := s.flows[pkt.flow]
	if topo.NodeID(node) == f.Dst {
		s.deliver(ev)
		return nil
	}
	// Non-minimal (UGAL/Valiant) packets route to their intermediate
	// first, then minimally to the destination.
	target := int32(f.Dst)
	if pkt.ugal.mid >= 0 && !pkt.ugal.reached {
		if node == pkt.ugal.mid {
			pkt.ugal.reached = true
		} else {
			target = pkt.ugal.mid
		}
	}
	ci, err := s.pickOutput(node, target)
	if err != nil && target != int32(f.Dst) {
		// The UGAL/Valiant intermediate became unreachable from here (only
		// possible under asymmetric hand-built masks); abandon the detour
		// and route minimally to the destination instead of stranding.
		pkt.ugal.reached = true
		ci, err = s.pickOutput(node, int32(f.Dst))
	}
	if err != nil {
		return err
	}
	ch := &s.channels[ci]
	if s.cfg.Mode == CreditFC {
		// Charge this node's input buffer (switches only; endpoints are
		// amply buffered NICs) under the arrival VC; the slot is released
		// when the packet is popped for its next hop.
		if ev.ch() >= 0 && s.comp.IsSwitch(node) {
			s.occ[int(node)*routing.MaxVCs+int(pkt.vc)] += int64(pkt.size)
			pkt.relVC = pkt.vc
		} else {
			pkt.relVC = -1
		}
		pkt.vc = routing.VCPolicy(s.comp, node, s.comp.Ports[ci].To, pkt.vc)
	}
	ch.queue = append(ch.queue, pkt)
	ch.queuedB += int64(pkt.size)
	if !ch.busy && !ch.blocked {
		s.startTransmit(ci, ev.t, x)
	}
	return nil
}

// pickOutput selects among minimal candidate ports per the Choice policy.
// The candidates come precompiled from the routing table (port order), so
// the per-packet work is a scan over 1-4 channel ids. On a degraded fabric
// the candidate set excludes masked ports by construction; an empty set
// means the target was cut off, reported as a typed *routing.ErrUnreachable
// (this used to panic).
func (s *Sim) pickOutput(node, dst int32) (int32, error) {
	cands := s.table.Candidates(node, topo.NodeID(dst))
	switch s.cfg.Choice {
	case FirstCandidate:
		if len(cands) > 0 {
			return cands[0], nil
		}
	case RandomCandidate:
		if len(cands) > 0 {
			return cands[s.rng.Intn(len(cands))], nil
		}
	default: // LeastQueued
		best := int32(-1)
		var bestQ int64
		for _, ci := range cands {
			q := s.channels[ci].queuedB
			if s.channels[ci].busy {
				q++ // prefer an idle channel on ties
			}
			if best < 0 || q < bestQ {
				best, bestQ = ci, q
			}
		}
		if best >= 0 {
			return best, nil
		}
	}
	return -1, &routing.ErrUnreachable{From: topo.NodeID(node), To: topo.NodeID(dst)}
}

// startTransmit pops the head packet of channel ci if flow control admits
// it, scheduling serialization and arrival events.
func (s *Sim) startTransmit(ci int32, t float64, x exec) {
	ch := &s.channels[ci]
	if ch.busy || ch.blocked || ch.qlen() == 0 {
		return
	}
	p := &s.comp.Ports[ci]
	pkt := ch.queue[ch.head]
	if s.cfg.Mode == CreditFC && s.comp.IsSwitch(p.To) {
		key := int(p.To)*routing.MaxVCs + int(pkt.vc)
		if s.occ[key]+int64(pkt.size) > int64(s.cfg.LP.BufferB) {
			ch.blocked = true
			s.waiters[key] = append(s.waiters[key], ci)
			return
		}
	}
	ch.pop()
	ch.queuedB -= int64(pkt.size)
	if s.cfg.Mode == CreditFC && pkt.relVC >= 0 {
		s.releaseBufferAt(s.comp.Owner[ci], pkt.relVC, int64(pkt.size), t, x)
		pkt.relVC = -1
	}
	ser := float64(pkt.size) / p.GBps
	if s.cfg.CollectLinkStats {
		s.res.LinkBytes[ci] += int64(pkt.size)
	}
	if tr := s.cfg.Trace; tr != nil {
		// One span per packet serialization on the channel's lane: the
		// gaps between spans are exactly the link's idle time, so Perfetto
		// renders per-link utilization directly. Safe from shard
		// goroutines (the recorder locks internally) and order-free (the
		// export sort is canonical).
		tr.Span(tracePidLinks, ci, "xmit", "link", t, ser)
	}
	ch.busy = true
	x.push(makeEvent(t+ser, evFree, 0, ci, 0, packet{}))
	x.push(makeEvent(t+ser+p.Latency+s.cfg.LP.SwitchNS, evArrive, p.To, ci, 0, pkt))
}

// releaseBufferAt returns buffer space at (node, vc) and wakes channels
// blocked on that buffer.
func (s *Sim) releaseBufferAt(node int32, vc int8, size int64, t float64, x exec) {
	key := int(node)*routing.MaxVCs + int(vc)
	s.occ[key] -= size
	ws := s.waiters[key]
	if len(ws) == 0 {
		return
	}
	s.waiters[key] = nil
	for _, wci := range ws {
		s.channels[wci].blocked = false
		s.startTransmit(wci, t, x)
	}
}
