package flowsim

import (
	"testing"

	"hammingmesh/internal/topo"
)

// BenchmarkSolveSmallAlltoall tracks the serial small-cluster flow path
// behind BenchmarkTable2GlobalBW: one solver reused over sampled alltoall
// shifts on the ≈1k-endpoint Hx2Mesh.
func BenchmarkSolveSmallAlltoall(b *testing.B) {
	h := topo.NewHxMesh(2, 2, 16, 16, topo.DefaultLinkParams())
	s := NewNet(h.Network, nil, Config{Seed: 9})
	if _, err := s.AlltoallShare(2, 200, 9); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AlltoallShare(2, 200, 9); err != nil {
			b.Fatal(err)
		}
	}
}
