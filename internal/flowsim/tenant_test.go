package flowsim

import (
	"math"
	"testing"

	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// star builds a hub-and-spoke contention network: n endpoints each linked
// to one switch with capacity gbps.
func star(n int, gbps float64) *topo.Network {
	net := &topo.Network{Name: "star"}
	p := topo.DefaultLinkParams()
	hub := net.AddNode(topo.Switch)
	for i := 0; i < n; i++ {
		ep := net.AddNode(topo.Endpoint)
		net.Link(ep, hub, topo.AoC, gbps, p.CableNS)
	}
	return net
}

func tenantSolver(t *testing.T, net *topo.Network) *Solver {
	t.Helper()
	c := simcore.Compile(net)
	return New(c, routing.NewTable(c), Config{PathsPerFlow: 1, Seed: 1})
}

func TestTenantSharesUncontended(t *testing.T) {
	net := star(4, 100)
	s := tenantSolver(t, net)
	eps := s.comp.Endpoints
	// One tenant, demand well under capacity: fully satisfied.
	shares, err := s.TenantShares([]Demand{
		{Src: eps[0], Dst: eps[1], Weight: 50, Tenant: 0},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if shares[0] != 1 {
		t.Fatalf("uncontended share = %v, want 1", shares[0])
	}
	// No demands at all: every tenant reports 1.
	shares, err = s.TenantShares(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shares {
		if sh != 1 {
			t.Fatalf("empty-matrix share[%d] = %v, want 1", i, sh)
		}
	}
}

func TestTenantSharesFairSplit(t *testing.T) {
	net := star(4, 100)
	s := tenantSolver(t, net)
	eps := s.comp.Endpoints
	// Two equal tenants into the same destination: the 100 GB/s ingress
	// link splits evenly, each achieving 50/100 of its offered load.
	shares, err := s.TenantShares([]Demand{
		{Src: eps[0], Dst: eps[2], Weight: 100, Tenant: 0},
		{Src: eps[1], Dst: eps[2], Weight: 100, Tenant: 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, sh := range shares {
		if math.Abs(sh-0.5) > 1e-9 {
			t.Fatalf("share[%d] = %v, want 0.5", i, sh)
		}
	}
	// Weighted: a tenant offering 3× the load gets 3× the rate (same
	// share), weighted max-min being proportional under a shared
	// bottleneck.
	shares, err = s.TenantShares([]Demand{
		{Src: eps[0], Dst: eps[2], Weight: 300, Tenant: 0},
		{Src: eps[1], Dst: eps[2], Weight: 100, Tenant: 1},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[0]-shares[1]) > 1e-9 {
		t.Fatalf("weighted shares diverge: %v vs %v (want equal fractions)", shares[0], shares[1])
	}
	if math.Abs(shares[0]-0.25) > 1e-9 {
		t.Fatalf("share = %v, want 0.25 (400 offered into 100 capacity)", shares[0])
	}
}

func TestTenantSharesMonotoneInContenders(t *testing.T) {
	net := star(8, 100)
	s := tenantSolver(t, net)
	eps := s.comp.Endpoints
	// Tenant 0's fixed demand; adding contenders into the same hot link
	// can only lower (never raise) its share.
	prev := 2.0
	for k := 0; k <= 5; k++ {
		demands := []Demand{{Src: eps[0], Dst: eps[7], Weight: 80, Tenant: 0}}
		for j := 0; j < k; j++ {
			demands = append(demands, Demand{Src: eps[1+j], Dst: eps[7], Weight: 80, Tenant: int32(1 + j)})
		}
		shares, err := s.TenantShares(demands, 1+k)
		if err != nil {
			t.Fatal(err)
		}
		if shares[0] > prev+1e-9 {
			t.Fatalf("share rose with %d contenders: %v -> %v", k, prev, shares[0])
		}
		prev = shares[0]
	}
	if prev >= 0.5 {
		t.Fatalf("6-way contention share %v not materially degraded", prev)
	}
}

func TestTenantSharesDeterministic(t *testing.T) {
	net := star(6, 100)
	s := tenantSolver(t, net)
	eps := s.comp.Endpoints
	demands := []Demand{
		{Src: eps[0], Dst: eps[4], Weight: 90, Tenant: 0},
		{Src: eps[1], Dst: eps[4], Weight: 60, Tenant: 1},
		{Src: eps[2], Dst: eps[5], Weight: 30, Tenant: 0},
	}
	a, err := s.TenantShares(demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same solver, repeated call: byte-identical (scratch reuse must not
	// leak state). Fresh solver: also identical.
	b, err := s.TenantShares(demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2 := tenantSolver(t, net)
	c, err := s2.TenantShares(demands, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] || a[i] != c[i] {
			t.Fatalf("nondeterministic shares: %v %v %v", a, b, c)
		}
	}
}

func TestTenantSharesRejects(t *testing.T) {
	net := star(3, 100)
	s := tenantSolver(t, net)
	eps := s.comp.Endpoints
	if _, err := s.TenantShares([]Demand{{Src: eps[0], Dst: eps[1], Weight: 0, Tenant: 0}}, 1); err == nil {
		t.Fatal("zero-weight demand must error")
	}
	if _, err := s.TenantShares([]Demand{{Src: eps[0], Dst: eps[1], Weight: 1, Tenant: 5}}, 1); err == nil {
		t.Fatal("out-of-range tenant must error")
	}
	if _, err := s.TenantShares([]Demand{{Src: eps[0], Dst: eps[0], Weight: 1, Tenant: 0}}, 1); err == nil {
		t.Fatal("self-demand must error")
	}
}
