package flowsim

import (
	"fmt"
	"math"
)

// SolveReference is the pre-incremental round-based progressive-filling
// loop, kept test-only as the ground truth the event-driven waterfill must
// match within 1e-6: every round scans all links for the smallest headroom,
// raises every active subflow by it, and freezes subflows on saturated
// links. Path sampling is shared with Solve (buildSubflows), so on a fresh
// Solver both algorithms see the identical subflow set.
func (s *Solver) SolveReference(flows []Flow) ([]float64, error) {
	if err := s.buildSubflows(flows); err != nil {
		return nil, err
	}
	nSubs := len(s.subFlow)
	nLinks := s.comp.NumPorts()
	remCap := make([]float64, nLinks)
	for i := range remCap {
		remCap[i] = s.comp.Ports[i].GBps
	}
	active := make([]bool, nSubs)
	activeOnLink := make([]int32, nLinks)
	for i := 0; i < nSubs; i++ {
		active[i] = true
		for _, l := range s.subLinks[s.subOff[i]:s.subOff[i+1]] {
			activeOnLink[l]++
		}
	}
	rates := make([]float64, nSubs)
	nActive := nSubs
	for iter := 0; nActive > 0; iter++ {
		if iter > nLinks+nSubs+10 {
			return nil, fmt.Errorf("flowsim: reference water-filling did not converge")
		}
		// Smallest headroom per active subflow across loaded links.
		delta := math.Inf(1)
		for l := range remCap {
			if activeOnLink[l] > 0 {
				if h := remCap[l] / float64(activeOnLink[l]); h < delta {
					delta = h
				}
			}
		}
		if math.IsInf(delta, 1) {
			break
		}
		// Raise all active subflows by delta; freeze those on saturated links.
		for i := 0; i < nSubs; i++ {
			if !active[i] {
				continue
			}
			rates[i] += delta
			for _, l := range s.subLinks[s.subOff[i]:s.subOff[i+1]] {
				remCap[l] -= delta
			}
		}
		const eps = 1e-9
		for i := 0; i < nSubs; i++ {
			if !active[i] {
				continue
			}
			for _, l := range s.subLinks[s.subOff[i]:s.subOff[i+1]] {
				if remCap[l] <= eps {
					active[i] = false
					break
				}
			}
			if !active[i] {
				for _, l := range s.subLinks[s.subOff[i]:s.subOff[i+1]] {
					activeOnLink[l]--
				}
				nActive--
			}
		}
	}
	out := make([]float64, len(flows))
	for i, fi := range s.subFlow {
		out[fi] += rates[i]
	}
	return out, nil
}
