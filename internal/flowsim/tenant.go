package flowsim

import (
	"fmt"

	"hammingmesh/internal/topo"
)

// Demand is one weighted traffic entry of a combined multi-job traffic
// matrix: Weight GB/s of offered load from Src to Dst, attributed to
// tenant (job) Tenant. Unlike Flow, a Demand is satisfiable — a tenant
// whose demands all achieve their full weight suffers no contention.
type Demand struct {
	Src, Dst topo.NodeID
	Weight   float64
	Tenant   int32
}

// TenantShares prices all demands jointly with a weighted max-min
// water-filling over the shared fabric and returns each tenant's achieved
// share: (Σ achieved rate)/(Σ offered weight) over that tenant's demands,
// in (0, 1]. A tenant alone on an uncongested fabric gets exactly 1;
// contention on shared links pushes shares below 1 in proportion to
// weighted fair allocation. Tenants with no demands get share 1.
//
// The weighted fill generalizes Solve's unit fill: every active subflow
// rises at its weight per unit fill level, a link saturates when the
// weighted sum of its active subflows exhausts its capacity, and the fill
// level is capped at 1 — a subflow reaching level 1 has its demand fully
// met and stops growing. Path sampling reuses the Solver's scratch, so
// TenantShares has the same determinism and non-concurrency contract as
// Solve.
func (s *Solver) TenantShares(demands []Demand, nTenants int) ([]float64, error) {
	if nTenants < 0 {
		return nil, fmt.Errorf("flowsim: negative tenant count %d", nTenants)
	}
	out := make([]float64, nTenants)
	for i := range out {
		out[i] = 1
	}
	if len(demands) == 0 {
		return out, nil
	}
	flows := make([]Flow, len(demands))
	for i, d := range demands {
		if d.Weight <= 0 {
			return nil, fmt.Errorf("flowsim: demand %d has non-positive weight %v", i, d.Weight)
		}
		if d.Tenant < 0 || int(d.Tenant) >= nTenants {
			return nil, fmt.Errorf("flowsim: demand %d tenant %d out of range [0,%d)", i, d.Tenant, nTenants)
		}
		flows[i] = Flow{Src: d.Src, Dst: d.Dst}
	}
	if err := s.buildSubflows(flows); err != nil {
		return nil, err
	}

	nSubs := len(s.subFlow)
	nLinks := s.comp.NumPorts()
	// A flow's weight is split evenly over its sampled subflows (dedup can
	// leave fewer than PathsPerFlow).
	subPerFlow := make([]int32, len(flows))
	for _, fi := range s.subFlow {
		subPerFlow[fi]++
	}
	w := make([]float64, nSubs)
	for si, fi := range s.subFlow {
		w[si] = demands[fi].Weight / float64(subPerFlow[fi])
	}

	// Weighted water-fill state (local: the Solver's integer-count scratch
	// serves the unit fill; joint-pricing calls are memoized upstream).
	remCap := make([]float64, nLinks)
	lastT := make([]float64, nLinks)
	wOnLink := make([]float64, nLinks)
	for l := 0; l < nLinks; l++ {
		remCap[l] = s.comp.Ports[l].GBps
	}
	for si := 0; si < nSubs; si++ {
		for _, l := range s.subLinks[s.subOff[si]:s.subOff[si+1]] {
			wOnLink[l] += w[si]
		}
	}
	// CSR of subflows per link, reusing the Solver's offset scratch shape.
	linkOff := make([]int32, nLinks+1)
	cnt := make([]int32, nLinks)
	for _, l := range s.subLinks {
		cnt[l]++
	}
	for l := 0; l < nLinks; l++ {
		linkOff[l+1] = linkOff[l] + cnt[l]
	}
	linkSub := make([]int32, len(s.subLinks))
	cur := make([]int32, nLinks)
	copy(cur, linkOff[:nLinks])
	for si := 0; si < nSubs; si++ {
		for _, l := range s.subLinks[s.subOff[si]:s.subOff[si+1]] {
			linkSub[cur[l]] = int32(si)
			cur[l]++
		}
	}

	const eps = 1e-12
	level := make([]float64, nSubs) // frozen fill level; <0 = still rising
	for si := range level {
		level[si] = -1
	}
	heap := make([]satEntry, 0, nLinks)
	for l := 0; l < nLinks; l++ {
		if wOnLink[l] > eps {
			heap = append(heap, satEntry{t: remCap[l] / wOnLink[l], link: int32(l)})
		}
	}
	h := tenantHeap(heap)
	h.init()
	T := 0.0
	frozen := 0
	freezeAll := func(at float64) {
		for si := range level {
			if level[si] < 0 {
				level[si] = at
				frozen++
			}
		}
	}
	for frozen < nSubs {
		if len(h) == 0 {
			// Spare capacity everywhere: remaining demands are fully met.
			freezeAll(1)
			break
		}
		e := h.pop()
		l := e.link
		if wOnLink[l] <= eps {
			continue
		}
		trueT := lastT[l] + remCap[l]/wOnLink[l]
		if trueT > e.t+eps {
			h.push(satEntry{t: trueT, link: l})
			continue
		}
		if trueT >= 1 {
			// The next saturation happens past full demand satisfaction:
			// every still-rising subflow reaches its weight first.
			freezeAll(1)
			break
		}
		if trueT > T {
			T = trueT
		}
		for _, si := range linkSub[linkOff[l]:linkOff[l+1]] {
			if level[si] >= 0 {
				continue
			}
			level[si] = T
			frozen++
			for _, m := range s.subLinks[s.subOff[si]:s.subOff[si+1]] {
				remCap[m] -= (T - lastT[m]) * wOnLink[m]
				lastT[m] = T
				wOnLink[m] -= w[si]
				if remCap[m] < 0 {
					remCap[m] = 0
				}
				if wOnLink[m] < eps {
					wOnLink[m] = 0
				}
			}
		}
	}

	rate := make([]float64, len(flows))
	for si, fi := range s.subFlow {
		rate[fi] += w[si] * level[si]
	}
	sumRate := make([]float64, nTenants)
	sumW := make([]float64, nTenants)
	for i, d := range demands {
		sumRate[d.Tenant] += rate[i]
		sumW[d.Tenant] += d.Weight
	}
	for t := 0; t < nTenants; t++ {
		if sumW[t] > 0 {
			sh := sumRate[t] / sumW[t]
			if sh > 1 {
				sh = 1
			}
			if sh < 0 {
				sh = 0
			}
			out[t] = sh
		}
	}
	return out, nil
}

// tenantHeap is a local min-heap over satEntry for the weighted fill (the
// Solver's heap methods mutate s.heap, which the unit fill owns).
type tenantHeap []satEntry

func (h *tenantHeap) init() {
	n := len(*h)
	for i := n/2 - 1; i >= 0; i-- {
		h.siftDown(i, n)
	}
}

func (h *tenantHeap) siftDown(i, n int) {
	a := *h
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && a[c+1].t < a[c].t {
			c++
		}
		if a[i].t <= a[c].t {
			return
		}
		a[i], a[c] = a[c], a[i]
		i = c
	}
}

func (h *tenantHeap) push(e satEntry) {
	*h = append(*h, e)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if a[p].t <= a[i].t {
			break
		}
		a[p], a[i] = a[i], a[p]
		i = p
	}
}

func (h *tenantHeap) pop() satEntry {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	*h = a[:last]
	h.siftDown(0, last)
	return top
}
