package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// equivCase builds one (topology, fault fraction) fabric for the
// incremental-vs-reference equivalence sweep.
type equivCase struct {
	name  string
	net   *topo.Network
	cfg   Config
	fracs []float64
}

func equivCases() []equivCase {
	lp := topo.DefaultLinkParams()
	fracs := []float64{0, 0.05, 0.1}
	return []equivCase{
		{"hx2mesh", topo.NewHxMesh(2, 2, 4, 4, lp).Network, Config{Seed: 3}, fracs},
		{"hx4mesh", topo.NewHxMesh(4, 4, 2, 2, lp).Network, Config{Seed: 5, PathsPerFlow: 6}, fracs},
		{"dragonfly", topo.NewDragonfly(topo.DragonflyConfig{A: 4, P: 2, H: 2, G: 8, LP: lp}), Config{Seed: 7, ValiantPaths: 4}, fracs},
		// 128 endpoints: the 64-endpoint builds fit one switch, leaving only
		// endpoint-bridge cables the connectivity-preserving sampler refuses.
		{"fattree", topo.NewFatTree(128, topo.TaperedTree(0.5), lp), Config{Seed: 9}, fracs},
	}
}

// TestIncrementalMatchesReference pins the tentpole correctness bar: the
// event-driven waterfill must reproduce the round-based reference within
// 1e-6 per flow on pristine and degraded fabrics, across randomized shift
// and permutation traffic. Both solvers are fresh, so the round-robin
// channel cursors and sampled paths are identical and any difference is the
// water-filling itself.
func TestIncrementalMatchesReference(t *testing.T) {
	for _, tc := range equivCases() {
		comp := simcore.Compile(tc.net)
		for _, frac := range tc.fracs {
			table := routing.NewTable(comp)
			if frac > 0 {
				fs := faults.SampleLinksConnected(comp, frac, 41)
				if fs.Zero() {
					t.Fatalf("%s frac %.2f: sampler failed no links", tc.name, frac)
				}
				table = routing.NewTableMask(comp, fs.Mask())
			}
			rng := rand.New(rand.NewSource(17))
			var flowSets [][]Flow
			for _, shift := range []int{1, 3, len(comp.Endpoints) / 2} {
				flowSets = append(flowSets, ShiftFlows(comp.Endpoints, shift))
			}
			perm := rng.Perm(len(comp.Endpoints))
			for i := range perm {
				if perm[i] == i {
					j := (i + 1) % len(perm)
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
			var permFlows []Flow
			for i, j := range perm {
				permFlows = append(permFlows, Flow{Src: comp.Endpoints[i], Dst: comp.Endpoints[j]})
			}
			flowSets = append(flowSets, permFlows)

			for fsIdx, flows := range flowSets {
				got, err := New(comp, table, tc.cfg).Solve(flows)
				if err != nil {
					t.Fatalf("%s frac %.2f set %d: incremental: %v", tc.name, frac, fsIdx, err)
				}
				want, err := New(comp, table, tc.cfg).SolveReference(flows)
				if err != nil {
					t.Fatalf("%s frac %.2f set %d: reference: %v", tc.name, frac, fsIdx, err)
				}
				for i := range want {
					if math.Abs(got[i]-want[i]) > 1e-6 {
						t.Fatalf("%s frac %.2f set %d flow %d: incremental %.9f vs reference %.9f",
							tc.name, frac, fsIdx, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestSolverReuseIsDeterministic checks that reusing one solver across
// Solve calls gives the same rates as the same call sequence on a fresh
// solver: scratch-state reuse must be invisible to results.
func TestSolverReuseIsDeterministic(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	comp := simcore.Compile(h.Network)
	shifts := []int{1, 5, 9, 2, 5}

	reused := New(comp, nil, Config{Seed: 21, ValiantPaths: 2})
	var reusedRates [][]float64
	for _, sh := range shifts {
		r, err := reused.Solve(ShiftFlows(comp.Endpoints, sh))
		if err != nil {
			t.Fatal(err)
		}
		reusedRates = append(reusedRates, r)
	}

	fresh := New(comp, nil, Config{Seed: 21, ValiantPaths: 2})
	for si, sh := range shifts {
		want, err := fresh.Solve(ShiftFlows(comp.Endpoints, sh))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if reusedRates[si][i] != want[i] {
				t.Fatalf("shift %d flow %d: reused %.12f != sequential %.12f", sh, i, reusedRates[si][i], want[i])
			}
		}
	}
}

// TestSampleShiftsMatchesShare pins that SampleShifts is the exact shift
// sequence AlltoallShareOver consumes (the pooled runner sweep depends on
// this to mirror the serial estimator).
func TestSampleShiftsMatchesShare(t *testing.T) {
	shifts := SampleShifts(100, 6, 13)
	if len(shifts) != 6 {
		t.Fatalf("got %d shifts, want 6", len(shifts))
	}
	for _, s := range shifts {
		if s < 1 || s > 99 {
			t.Fatalf("shift %d out of [1,99]", s)
		}
	}
	// Unbounded request clamps to p-1.
	if got := len(SampleShifts(16, 0, 1)); got != 15 {
		t.Fatalf("clamped shifts = %d, want 15", got)
	}
}
