// Package flowsim is a flow-level max-min fair throughput solver. Where
// internal/netsim simulates individual packets, flowsim computes the
// steady-state rate allocation of long-lived flows by water-filling: every
// flow is split over k sampled shortest paths (approximating packet-level
// adaptive routing), and rates rise uniformly until links saturate, the
// classic progressive-filling algorithm for max-min fairness.
//
// The solver runs on the compiled flat-array network (internal/simcore):
// channel ids are compiled port ids, parallel links between a node pair are
// spread round-robin through the precompiled link groups, and sampled paths
// are deduplicated by an FNV-1a hash of their node ids — no map is keyed by
// node or port ids and path sampling does not allocate string keys.
//
// Water-filling is incremental and event-driven rather than round-based:
// with L loaded links and S subflows of mean path length ℓ, a min-heap over
// per-link saturation levels (remaining capacity over active subflows)
// processes each link saturation once and touches only the links of the
// subflows it freezes, so a solve costs O((L + S·ℓ)·log L) instead of the
// round-based O(rounds·(L + S·ℓ)) where the round count itself grows with
// the cluster. All solver state (subflow CSR, per-link headrooms, the heap,
// path-sample buffers) lives in scratch arrays sized once per Solver and
// reused across Solve calls, so a shift sweep allocates only its result
// slices.
//
// The solver scales to the paper's 16k-endpoint clusters where packet
// simulation of 1 MiB-per-peer alltoall would need billions of packet
// events (the paper itself spent 0.6M core hours in SST); cross-validation
// against netsim at small scale lives in the tests, and the round-based
// reference implementation is kept in the tests for equivalence checks.
package flowsim

import (
	"fmt"

	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// Flow is one steady flow between endpoints.
type Flow struct {
	Src, Dst topo.NodeID
}

// Config controls path sampling.
type Config struct {
	// PathsPerFlow is the number of sampled shortest paths a flow's
	// traffic is spread over (ECMP-style). Zero means 4.
	PathsPerFlow int
	// ValiantPaths adds that many non-minimal subflows per flow, each via
	// a random intermediate switch (UGAL-style load balancing; the paper
	// runs UGAL-L on Dragonfly, where minimal-only routing collapses
	// under shifted traffic).
	ValiantPaths int
	// Seed offsets path sampling.
	Seed uint64
}

// Solver holds per-network state reusable across Solve calls. It is not
// safe for concurrent use (the round-robin cursors and scratch arrays
// mutate), but solvers are cheap: all heavy immutable state lives in the
// shared Compiled network and routing Table, so parallel sweeps give each
// worker its own Solver over the shared table (see
// runner.AlltoallFlowShare).
type Solver struct {
	comp  *simcore.Compiled
	table *routing.Table
	cfg   Config

	// mask is the routing table's degraded-fabric overlay (nil when
	// pristine): masked channels are skipped by the parallel-link
	// round-robin and never carry subflow rate.
	mask simcore.PortMask

	// rr[g] is the round-robin cursor of parallel-link group g (unsigned
	// so unbounded increments wrap instead of going negative).
	rr []uint32

	// Subflow CSR, rebuilt per Solve into reused backing arrays: subflow i
	// belongs to flow subFlow[i] and crosses channels
	// subLinks[subOff[i]:subOff[i+1]].
	subFlow  []int32
	subOff   []int32
	subLinks []int32

	// flowHashes deduplicates the current flow's sampled paths (a handful
	// of entries, so a linear scan replaces the old per-call map).
	flowHashes []uint64

	// pathBuf/tailBuf are the reused path-sample buffers (with the chosen
	// global port id per hop alongside); Valiant detours splice head+tail
	// into pathBuf instead of allocating per sample.
	pathBuf  []topo.NodeID
	tailBuf  []topo.NodeID
	portBuf  []int32
	tailPort []int32

	// Water-filling scratch, sized to NumPorts once per Solver.
	remCap  []float64 // remaining capacity of link l at fill level lastT[l]
	lastT   []float64 // fill level at which remCap[l] was last materialized
	nOnLink []int32   // active subflows crossing link l
	linkOff []int32   // CSR offsets: subflows crossing link l
	linkCur []int32   // fill cursor for the linkSubs CSR build
	linkSub []int32   // CSR payload, sized to len(subLinks) per Solve
	rates   []float64 // per-subflow frozen rate
	heap    []satEntry

	// stats accumulates solver-work counters across Solve calls (plain
	// ints on the single-threaded solve path; see Stats).
	stats SolveStats
}

// SolveStats are cumulative work counters of a Solver, for the obs
// layer: heap pops and lazy re-keys measure the event-driven
// water-filling effort, saturations counts frozen links, subflows the
// sampled-path volume. Reading them costs nothing and recording them is
// a handful of integer increments per solve — the solver's results are
// unaffected (obs contract).
type SolveStats struct {
	HeapPops    int64
	ReKeys      int64
	Saturations int64
	Subflows    int64
}

// Stats returns the cumulative counters since the Solver was created.
func (s *Solver) Stats() SolveStats { return s.stats }

// satEntry is one pending link-saturation event: at fill level t, link
// `link` runs out of headroom. Saturation levels only grow as other links
// freeze subflows, so entries are lazily re-keyed on pop (the popped key is
// compared against the link's current level and re-pushed if it grew) and
// each link keeps at most one live entry.
type satEntry struct {
	t    float64
	link int32
}

// New creates a solver over a compiled network; table may be nil.
func New(c *simcore.Compiled, table *routing.Table, cfg Config) *Solver {
	if table == nil {
		table = routing.NewTable(c)
	}
	if cfg.PathsPerFlow <= 0 {
		cfg.PathsPerFlow = 4
	}
	nLinks := c.NumPorts()
	return &Solver{
		comp: c, table: table, cfg: cfg, mask: table.Mask(),
		rr: make([]uint32, len(c.GroupOff)-1),
		// Port buffers start non-nil: AppendSamplePathPorts records hops
		// only into a non-nil buffer.
		portBuf:  make([]int32, 0, 64),
		tailPort: make([]int32, 0, 64),
		remCap:   make([]float64, nLinks),
		lastT:    make([]float64, nLinks),
		nOnLink:  make([]int32, nLinks),
		linkOff:  make([]int32, nLinks+1),
		linkCur:  make([]int32, nLinks),
	}
}

// NewNet creates a solver straight from a network, compiling it through the
// simcore cache.
func NewNet(n *topo.Network, table *routing.Table, cfg Config) *Solver {
	return New(simcore.Of(n), table, cfg)
}

// pathHash is an FNV-1a style hash over the node ids of a path, used to
// deduplicate sampled paths without building string keys.
func pathHash(path []topo.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range path {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	return h
}

// addPath appends one subflow for the sampled path unless an identical path
// was already sampled for this flow. hops are the sampled global port ids
// of the path's edges (len(path)-1 of them): each hop resolves to a channel
// through its parallel-link group without re-scanning the adjacency.
func (s *Solver) addPath(fi int, path []topo.NodeID, hops []int32) error {
	key := pathHash(path)
	for _, h := range s.flowHashes {
		if h == key {
			return nil
		}
	}
	s.flowHashes = append(s.flowHashes, key)
	for _, pid := range hops {
		ch, err := s.pickChannelFromPort(pid)
		if err != nil {
			return err
		}
		s.subLinks = append(s.subLinks, ch)
	}
	s.subFlow = append(s.subFlow, int32(fi))
	s.subOff = append(s.subOff, int32(len(s.subLinks)))
	return nil
}

// buildSubflows samples every flow's paths into the solver's subflow CSR
// (reusing the backing arrays of earlier Solve calls).
func (s *Solver) buildSubflows(flows []Flow) error {
	s.subFlow = s.subFlow[:0]
	s.subOff = append(s.subOff[:0], 0)
	s.subLinks = s.subLinks[:0]
	for fi, f := range flows {
		if f.Src == f.Dst {
			return fmt.Errorf("flowsim: flow %d is a self-flow", fi)
		}
		s.flowHashes = s.flowHashes[:0]
		for k := 0; k < s.cfg.PathsPerFlow; k++ {
			// A flow whose destination was cut off on a degraded fabric is
			// a typed error, not a zero-link subflow with infinite rate.
			var err error
			s.pathBuf, s.portBuf, err = s.table.AppendSamplePathPorts(
				s.pathBuf[:0], s.portBuf[:0], f.Src, f.Dst, s.cfg.Seed+uint64(fi)*131+uint64(k)*7919)
			if err != nil {
				return fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
			if err := s.addPath(fi, s.pathBuf, s.portBuf); err != nil {
				return fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
		}
		for k := 0; k < s.cfg.ValiantPaths; k++ {
			mid := s.randomSwitch(s.cfg.Seed + uint64(fi)*977 + uint64(k)*31337)
			if mid < 0 || mid == f.Src || mid == f.Dst {
				continue
			}
			// Unreachable intermediates (e.g. a dead switch) are skipped —
			// the minimal subflows above already guarantee connectivity. The
			// detour is spliced head+tail[1:] into the reused path buffers.
			head, headPorts, errH := s.table.AppendSamplePathPorts(
				s.pathBuf[:0], s.portBuf[:0], f.Src, mid, s.cfg.Seed+uint64(fi)*13+uint64(k))
			if errH != nil {
				continue
			}
			s.pathBuf, s.portBuf = head, headPorts
			tail, tailPorts, errT := s.table.AppendSamplePathPorts(
				s.tailBuf[:0], s.tailPort[:0], mid, f.Dst, s.cfg.Seed+uint64(fi)*17+uint64(k))
			if errT != nil {
				continue
			}
			s.tailBuf, s.tailPort = tail, tailPorts
			s.pathBuf = append(s.pathBuf, s.tailBuf[1:]...)
			s.portBuf = append(s.portBuf, s.tailPort...)
			if err := s.addPath(fi, s.pathBuf, s.portBuf); err != nil {
				return fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
		}
	}
	return nil
}

// waterfill runs incremental progressive filling over the built subflow CSR
// and leaves each subflow's max-min rate in s.rates.
//
// All active subflows rise at unit rate in "fill level" T, so link l with
// a fixed active count n and remaining capacity r saturates at level
// T + r/n — and whenever another link's saturation freezes subflows, only
// the links those subflows cross change state. Because freezing subflows
// only ever *raises* the survivors' saturation levels, a min-heap with
// lazy re-keying on pop (compare the popped key against the link's current
// level, re-push if it grew) processes each saturation event in O(log L)
// touching only the frozen subflows' links.
func (s *Solver) waterfill() error {
	nSubs := len(s.subFlow)
	nLinks := s.comp.NumPorts()
	if cap(s.rates) < nSubs {
		s.rates = make([]float64, nSubs)
	}
	s.rates = s.rates[:nSubs]
	for l := 0; l < nLinks; l++ {
		s.remCap[l] = s.comp.Ports[l].GBps
		s.lastT[l] = 0
		s.nOnLink[l] = 0
	}
	for _, l := range s.subLinks {
		s.nOnLink[l]++
	}
	// CSR of subflows per link (only loaded links have entries).
	s.linkOff[0] = 0
	for l := 0; l < nLinks; l++ {
		s.linkOff[l+1] = s.linkOff[l] + s.nOnLink[l]
		s.linkCur[l] = s.linkOff[l]
	}
	if cap(s.linkSub) < len(s.subLinks) {
		s.linkSub = make([]int32, len(s.subLinks))
	}
	s.linkSub = s.linkSub[:len(s.subLinks)]
	for si := 0; si < nSubs; si++ {
		for _, l := range s.subLinks[s.subOff[si]:s.subOff[si+1]] {
			s.linkSub[s.linkCur[l]] = int32(si)
			s.linkCur[l]++
		}
	}
	// rates[si] < 0 marks subflow si as still active (rising); freezing
	// assigns its final nonnegative rate.
	for si := range s.rates {
		s.rates[si] = -1
	}
	s.heap = s.heap[:0]
	for l := 0; l < nLinks; l++ {
		if s.nOnLink[l] > 0 {
			s.heap = append(s.heap, satEntry{t: s.remCap[l] / float64(s.nOnLink[l]), link: int32(l)})
		}
	}
	s.heapify()
	T := 0.0
	frozen := 0
	s.stats.Subflows += int64(nSubs)
	for frozen < nSubs {
		if len(s.heap) == 0 {
			return fmt.Errorf("flowsim: water-filling ran dry with %d subflows active", nSubs-frozen)
		}
		e := s.heapPop()
		s.stats.HeapPops++
		l := e.link
		n := s.nOnLink[l]
		if n == 0 {
			continue // all of this link's subflows were frozen elsewhere
		}
		trueT := s.lastT[l] + s.remCap[l]/float64(n)
		if trueT > e.t {
			// The link lost active subflows since the push, moving its
			// saturation level up; re-key and re-examine later.
			s.heapPush(satEntry{t: trueT, link: l})
			s.stats.ReKeys++
			continue
		}
		s.stats.Saturations++
		if trueT > T {
			T = trueT
		}
		// Link l is saturated at fill level T: freeze its active subflows,
		// materializing the consumed headroom of every link they cross.
		for _, si := range s.linkSub[s.linkOff[l]:s.linkOff[l+1]] {
			if s.rates[si] >= 0 {
				continue
			}
			s.rates[si] = T
			frozen++
			for _, m := range s.subLinks[s.subOff[si]:s.subOff[si+1]] {
				s.remCap[m] -= (T - s.lastT[m]) * float64(s.nOnLink[m])
				s.lastT[m] = T
				s.nOnLink[m]--
			}
		}
	}
	return nil
}

// heapify establishes the heap property over an unordered s.heap in O(n).
func (s *Solver) heapify() {
	n := len(s.heap)
	for i := n/2 - 1; i >= 0; i-- {
		s.siftDown(i, n)
	}
}

func (s *Solver) siftDown(i, n int) {
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if c+1 < n && s.heap[c+1].t < s.heap[c].t {
			c++
		}
		if s.heap[i].t <= s.heap[c].t {
			return
		}
		s.heap[i], s.heap[c] = s.heap[c], s.heap[i]
		i = c
	}
}

func (s *Solver) heapPush(e satEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].t <= s.heap[i].t {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Solver) heapPop() satEntry {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	s.siftDown(0, last)
	return top
}

// Solve returns the max-min fair rate (GB/s) of each flow. The returned
// slice is freshly allocated; all intermediate state is reused across calls
// on the same Solver.
func (s *Solver) Solve(flows []Flow) ([]float64, error) {
	if err := s.buildSubflows(flows); err != nil {
		return nil, err
	}
	if err := s.waterfill(); err != nil {
		return nil, err
	}
	out := make([]float64, len(flows))
	for i, fi := range s.subFlow {
		out[fi] += s.rates[i]
	}
	return out, nil
}

// randomSwitch picks a deterministic pseudo-random switch node.
func (s *Solver) randomSwitch(seed uint64) topo.NodeID {
	sw := s.comp.Switches
	if len(sw) == 0 {
		return topo.None
	}
	seed = seed*6364136223846793005 + 1442695040888963407
	return sw[int(seed>>33)%len(sw)]
}

// pickChannelFromPort chooses the channel of one sampled hop: round-robin
// among the hop's parallel-link group (resolved in O(1) from the sampled
// port id). Masked (failed) channels are skipped — surviving parallel links
// absorb the group's traffic, which is exactly the degraded-bandwidth
// behaviour the resilience sweeps measure. A fully-failed group is a typed
// error instead of a panic.
func (s *Solver) pickChannelFromPort(pid int32) (int32, error) {
	g := s.comp.GroupOf[pid]
	chans := s.comp.GroupMembers(g)
	for range chans {
		c := chans[s.rr[g]%uint32(len(chans))]
		s.rr[g]++
		if !s.mask.Get(c) {
			return c, nil
		}
	}
	return -1, &routing.ErrUnreachable{From: topo.NodeID(s.comp.Owner[pid]), To: topo.NodeID(s.comp.Ports[pid].To)}
}

// ShiftFlows mirrors netsim.ShiftFlows for the solver.
func ShiftFlows(endpoints []topo.NodeID, shift int) []Flow {
	p := len(endpoints)
	shift = ((shift % p) + p) % p
	if shift == 0 {
		return nil
	}
	flows := make([]Flow, 0, p)
	for j := 0; j < p; j++ {
		flows = append(flows, Flow{Src: endpoints[j], Dst: endpoints[(j+shift)%p]})
	}
	return flows
}

// SampleShifts returns the nShifts pseudo-random shift values in [1, p-1]
// drawn by AlltoallShareOver under the given seed. The serial sweep and the
// runner's pooled AlltoallFlowShare share this sequence, so both estimate
// the same sampled iterations.
func SampleShifts(p, nShifts int, seed uint64) []int {
	if nShifts <= 0 || nShifts > p-1 {
		nShifts = p - 1
	}
	out := make([]int, nShifts)
	rng := seed | 1
	for k := range out {
		rng = rng*6364136223846793005 + 1442695040888963407
		out[k] = 1 + int(rng>>33)%(p-1)
	}
	return out
}

// AlltoallShare estimates the alltoall bandwidth share of the injection
// bandwidth over sampled shift permutations. The paper's balanced-shift
// implementation runs without barriers between iterations, so a process
// that finishes one shift early starts the next; the sustained
// per-endpoint bandwidth is therefore the harmonic mean across shifts of
// each shift's *mean* max-min flow rate (not its slowest flow).
func (s *Solver) AlltoallShare(nShifts int, injectGBps float64, seed uint64) (float64, error) {
	return s.AlltoallShareOver(s.comp.Endpoints, nShifts, injectGBps, seed)
}

// AlltoallShareOver is AlltoallShare restricted to a subset of endpoints —
// on a degraded fabric the alltoall runs among the surviving accelerators
// (see faults.FaultSet.SurvivingEndpoints), matching how a resilient job
// would be rescheduled around dead boards.
func (s *Solver) AlltoallShareOver(endpoints []topo.NodeID, nShifts int, injectGBps float64, seed uint64) (float64, error) {
	p := len(endpoints)
	if p < 2 {
		return 0, fmt.Errorf("flowsim: need ≥2 endpoints")
	}
	sumInvRate := 0.0
	shifts := SampleShifts(p, nShifts, seed)
	for _, shift := range shifts {
		rates, err := s.Solve(ShiftFlows(endpoints, shift))
		if err != nil {
			return 0, err
		}
		mean := 0.0
		for _, r := range rates {
			mean += r
		}
		mean /= float64(len(rates))
		if mean <= 0 {
			return 0, fmt.Errorf("flowsim: zero-rate shift")
		}
		sumInvRate += 1 / mean
	}
	// Harmonic mean over iterations = effective sustained bandwidth.
	eff := float64(len(shifts)) / sumInvRate
	return eff / injectGBps, nil
}

// PermutationRates solves one random permutation and returns per-flow
// rates (GB/s); used for the Fig. 12 bandwidth distribution.
func (s *Solver) PermutationRates(perm []int) ([]float64, error) {
	eps := s.comp.Endpoints
	flows := make([]Flow, 0, len(perm))
	for i, j := range perm {
		if i == j {
			return nil, fmt.Errorf("flowsim: permutation has fixed point %d", i)
		}
		flows = append(flows, Flow{Src: eps[i], Dst: eps[j]})
	}
	return s.Solve(flows)
}
