// Package flowsim is a flow-level max-min fair throughput solver. Where
// internal/netsim simulates individual packets, flowsim computes the
// steady-state rate allocation of long-lived flows by water-filling: every
// flow is split over k sampled shortest paths (approximating packet-level
// adaptive routing), and rates rise uniformly until links saturate, the
// classic progressive-filling algorithm for max-min fairness.
//
// The solver runs on the compiled flat-array network (internal/simcore):
// channel ids are compiled port ids, parallel links between a node pair are
// spread round-robin through the precompiled link groups, and sampled paths
// are deduplicated by an FNV-1a hash of their node ids — no map is keyed by
// node or port ids and path sampling does not allocate string keys.
//
// The solver scales to the paper's 16k-endpoint clusters where packet
// simulation of 1 MiB-per-peer alltoall would need billions of packet
// events (the paper itself spent 0.6M core hours in SST); cross-validation
// against netsim at small scale lives in the tests.
package flowsim

import (
	"fmt"
	"math"

	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// Flow is one steady flow between endpoints.
type Flow struct {
	Src, Dst topo.NodeID
}

// Config controls path sampling.
type Config struct {
	// PathsPerFlow is the number of sampled shortest paths a flow's
	// traffic is spread over (ECMP-style). Zero means 4.
	PathsPerFlow int
	// ValiantPaths adds that many non-minimal subflows per flow, each via
	// a random intermediate switch (UGAL-style load balancing; the paper
	// runs UGAL-L on Dragonfly, where minimal-only routing collapses
	// under shifted traffic).
	ValiantPaths int
	// Seed offsets path sampling.
	Seed uint64
}

// Solver holds per-network state reusable across Solve calls. It is not
// safe for concurrent use (the round-robin cursors mutate), but solvers are
// cheap: all heavy state lives in the shared Compiled network.
type Solver struct {
	comp  *simcore.Compiled
	table *routing.Table
	cfg   Config

	// mask is the routing table's degraded-fabric overlay (nil when
	// pristine): masked channels are skipped by the parallel-link
	// round-robin and never carry subflow rate.
	mask simcore.PortMask

	// rr[g] is the round-robin cursor of parallel-link group g (unsigned
	// so unbounded increments wrap instead of going negative).
	rr []uint32
}

// New creates a solver over a compiled network; table may be nil.
func New(c *simcore.Compiled, table *routing.Table, cfg Config) *Solver {
	if table == nil {
		table = routing.NewTable(c)
	}
	if cfg.PathsPerFlow <= 0 {
		cfg.PathsPerFlow = 4
	}
	return &Solver{comp: c, table: table, cfg: cfg, mask: table.Mask(), rr: make([]uint32, len(c.GroupOff)-1)}
}

// NewNet creates a solver straight from a network, compiling it through the
// simcore cache.
func NewNet(n *topo.Network, table *routing.Table, cfg Config) *Solver {
	return New(simcore.Of(n), table, cfg)
}

// pathHash is an FNV-1a style hash over the node ids of a path, used to
// deduplicate sampled paths without building string keys.
func pathHash(path []topo.NodeID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, v := range path {
		h ^= uint64(uint32(v))
		h *= prime64
	}
	return h
}

// Solve returns the max-min fair rate (GB/s) of each flow.
func (s *Solver) Solve(flows []Flow) ([]float64, error) {
	type subflow struct {
		flow  int32
		links []int32
	}
	var subs []subflow
	seen := make(map[uint64]struct{}, s.cfg.PathsPerFlow+s.cfg.ValiantPaths)
	addPath := func(fi int, path []topo.NodeID) error {
		key := pathHash(path)
		if _, dup := seen[key]; dup {
			return nil
		}
		seen[key] = struct{}{}
		links := make([]int32, 0, len(path)-1)
		for i := 0; i+1 < len(path); i++ {
			ch, err := s.pickChannel(path[i], path[i+1])
			if err != nil {
				return err
			}
			links = append(links, ch)
		}
		subs = append(subs, subflow{flow: int32(fi), links: links})
		return nil
	}
	for fi, f := range flows {
		if f.Src == f.Dst {
			return nil, fmt.Errorf("flowsim: flow %d is a self-flow", fi)
		}
		clear(seen)
		for k := 0; k < s.cfg.PathsPerFlow; k++ {
			// A flow whose destination was cut off on a degraded fabric is
			// a typed error, not a zero-link subflow with infinite rate.
			path, err := s.table.SamplePathErr(f.Src, f.Dst, s.cfg.Seed+uint64(fi)*131+uint64(k)*7919)
			if err != nil {
				return nil, fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
			if err := addPath(fi, path); err != nil {
				return nil, fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
		}
		for k := 0; k < s.cfg.ValiantPaths; k++ {
			mid := s.randomSwitch(s.cfg.Seed + uint64(fi)*977 + uint64(k)*31337)
			if mid < 0 || mid == f.Src || mid == f.Dst {
				continue
			}
			// Unreachable intermediates (e.g. a dead switch) are skipped —
			// the minimal subflows above already guarantee connectivity.
			head := s.table.SamplePath(f.Src, mid, s.cfg.Seed+uint64(fi)*13+uint64(k))
			tail := s.table.SamplePath(mid, f.Dst, s.cfg.Seed+uint64(fi)*17+uint64(k))
			if len(head) == 0 || len(tail) == 0 {
				continue
			}
			path := append(append([]topo.NodeID{}, head...), tail[1:]...)
			if err := addPath(fi, path); err != nil {
				return nil, fmt.Errorf("flowsim: flow %d: %w", fi, err)
			}
		}
	}
	// Progressive filling.
	nLinks := s.comp.NumPorts()
	remCap := make([]float64, nLinks)
	for i := range remCap {
		remCap[i] = s.comp.Ports[i].GBps
	}
	active := make([]bool, len(subs))
	activeOnLink := make([]int32, nLinks)
	for i := range subs {
		active[i] = true
		for _, l := range subs[i].links {
			activeOnLink[l]++
		}
	}
	rates := make([]float64, len(subs))
	nActive := len(subs)
	for iter := 0; nActive > 0; iter++ {
		if iter > nLinks+len(subs)+10 {
			return nil, fmt.Errorf("flowsim: water-filling did not converge")
		}
		// Smallest headroom per active subflow across loaded links.
		delta := math.Inf(1)
		for l := range remCap {
			if activeOnLink[l] > 0 {
				if h := remCap[l] / float64(activeOnLink[l]); h < delta {
					delta = h
				}
			}
		}
		if math.IsInf(delta, 1) {
			break
		}
		// Raise all active subflows by delta; freeze those on saturated links.
		for i := range subs {
			if !active[i] {
				continue
			}
			rates[i] += delta
			for _, l := range subs[i].links {
				remCap[l] -= delta
			}
		}
		const eps = 1e-9
		for i := range subs {
			if !active[i] {
				continue
			}
			for _, l := range subs[i].links {
				if remCap[l] <= eps {
					active[i] = false
					break
				}
			}
			if !active[i] {
				for _, l := range subs[i].links {
					activeOnLink[l]--
				}
				nActive--
			}
		}
	}
	out := make([]float64, len(flows))
	for i, sf := range subs {
		out[sf.flow] += rates[i]
	}
	return out, nil
}

// randomSwitch picks a deterministic pseudo-random switch node.
func (s *Solver) randomSwitch(seed uint64) topo.NodeID {
	sw := s.comp.Switches
	if len(sw) == 0 {
		return topo.None
	}
	seed = seed*6364136223846793005 + 1442695040888963407
	return sw[int(seed>>33)%len(sw)]
}

// pickChannel chooses among parallel links between u and v round-robin
// through the precompiled link groups. Masked (failed) channels are skipped
// — surviving parallel links absorb the group's traffic, which is exactly
// the degraded-bandwidth behaviour the resilience sweeps measure. A missing
// or fully-failed group is a typed error instead of a panic.
func (s *Solver) pickChannel(u, v topo.NodeID) (int32, error) {
	g := s.comp.GroupTo(int32(u), int32(v))
	if g < 0 {
		return -1, &routing.ErrUnreachable{From: u, To: v}
	}
	chans := s.comp.GroupMembers(g)
	for range chans {
		c := chans[s.rr[g]%uint32(len(chans))]
		s.rr[g]++
		if !s.mask.Get(c) {
			return c, nil
		}
	}
	return -1, &routing.ErrUnreachable{From: u, To: v}
}

// ShiftFlows mirrors netsim.ShiftFlows for the solver.
func ShiftFlows(endpoints []topo.NodeID, shift int) []Flow {
	p := len(endpoints)
	shift = ((shift % p) + p) % p
	if shift == 0 {
		return nil
	}
	flows := make([]Flow, 0, p)
	for j := 0; j < p; j++ {
		flows = append(flows, Flow{Src: endpoints[j], Dst: endpoints[(j+shift)%p]})
	}
	return flows
}

// AlltoallShare estimates the alltoall bandwidth share of the injection
// bandwidth over sampled shift permutations. The paper's balanced-shift
// implementation runs without barriers between iterations, so a process
// that finishes one shift early starts the next; the sustained
// per-endpoint bandwidth is therefore the harmonic mean across shifts of
// each shift's *mean* max-min flow rate (not its slowest flow).
func (s *Solver) AlltoallShare(nShifts int, injectGBps float64, seed uint64) (float64, error) {
	return s.AlltoallShareOver(s.comp.Endpoints, nShifts, injectGBps, seed)
}

// AlltoallShareOver is AlltoallShare restricted to a subset of endpoints —
// on a degraded fabric the alltoall runs among the surviving accelerators
// (see faults.FaultSet.SurvivingEndpoints), matching how a resilient job
// would be rescheduled around dead boards.
func (s *Solver) AlltoallShareOver(endpoints []topo.NodeID, nShifts int, injectGBps float64, seed uint64) (float64, error) {
	p := len(endpoints)
	if p < 2 {
		return 0, fmt.Errorf("flowsim: need ≥2 endpoints")
	}
	if nShifts <= 0 || nShifts > p-1 {
		nShifts = p - 1
	}
	sumInvRate := 0.0
	rng := seed | 1
	for k := 0; k < nShifts; k++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		shift := 1 + int(rng>>33)%(p-1)
		rates, err := s.Solve(ShiftFlows(endpoints, shift))
		if err != nil {
			return 0, err
		}
		mean := 0.0
		for _, r := range rates {
			mean += r
		}
		mean /= float64(len(rates))
		if mean <= 0 {
			return 0, fmt.Errorf("flowsim: zero-rate shift")
		}
		sumInvRate += 1 / mean
	}
	// Harmonic mean over iterations = effective sustained bandwidth.
	eff := float64(nShifts) / sumInvRate
	return eff / injectGBps, nil
}

// PermutationRates solves one random permutation and returns per-flow
// rates (GB/s); used for the Fig. 12 bandwidth distribution.
func (s *Solver) PermutationRates(perm []int) ([]float64, error) {
	eps := s.comp.Endpoints
	flows := make([]Flow, 0, len(perm))
	for i, j := range perm {
		if i == j {
			return nil, fmt.Errorf("flowsim: permutation has fixed point %d", i)
		}
		flows = append(flows, Flow{Src: eps[i], Dst: eps[j]})
	}
	return s.Solve(flows)
}
