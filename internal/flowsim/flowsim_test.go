package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/topo"
)

func lp() topo.LinkParams { return topo.DefaultLinkParams() }

func TestSingleFlowLineRate(t *testing.T) {
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	s := NewNet(n, nil, Config{})
	rates, err := s.Solve([]Flow{{Src: n.Endpoints[0], Dst: n.Endpoints[33]}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-50) > 1e-6 {
		t.Errorf("single flow rate = %f, want 50 (endpoint link bound)", rates[0])
	}
}

func TestSharedLastLink(t *testing.T) {
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	s := NewNet(n, nil, Config{})
	rates, err := s.Solve([]Flow{
		{Src: n.Endpoints[0], Dst: n.Endpoints[5]},
		{Src: n.Endpoints[1], Dst: n.Endpoints[5]},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if math.Abs(r-25) > 1e-6 {
			t.Errorf("flow %d rate = %f, want 25 (shared destination link)", i, r)
		}
	}
}

func TestMaxMinUnevenShare(t *testing.T) {
	// Three flows: two share a destination, one is alone. Max-min must
	// give 25/25/50.
	n := topo.NewFatTree(64, topo.NonblockingTree(), lp())
	s := NewNet(n, nil, Config{})
	rates, err := s.Solve([]Flow{
		{Src: n.Endpoints[0], Dst: n.Endpoints[5]},
		{Src: n.Endpoints[1], Dst: n.Endpoints[5]},
		{Src: n.Endpoints[2], Dst: n.Endpoints[6]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-25) > 1e-6 || math.Abs(rates[1]-25) > 1e-6 {
		t.Errorf("shared flows = %v, want 25 each", rates[:2])
	}
	if math.Abs(rates[2]-50) > 1e-6 {
		t.Errorf("lone flow = %f, want 50", rates[2])
	}
}

func TestPermutationMatchesNetsim(t *testing.T) {
	// Cross-validation: flow solver and packet simulator must agree on
	// aggregate permutation bandwidth within 25% on a small HxMesh.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	rng := rand.New(rand.NewSource(17))
	perm := rng.Perm(len(h.Endpoints))
	for i := range perm {
		if perm[i] == i {
			j := (i + 1) % len(perm)
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	s := NewNet(h.Network, nil, Config{Seed: 2})
	rates, err := s.PermutationRates(perm)
	if err != nil {
		t.Fatal(err)
	}
	var aggFlow float64
	for _, r := range rates {
		aggFlow += r
	}

	flows := make([]netsim.Flow, len(perm))
	for i, j := range perm {
		flows[i] = netsim.Flow{Src: h.Endpoints[i], Dst: h.Endpoints[j], Bytes: 512 << 10}
	}
	res, err := netsim.NewNet(h.Network, nil, netsim.DefaultConfig()).Run(flows)
	if err != nil {
		t.Fatal(err)
	}
	aggPkt := res.AggregateGBps()
	ratio := aggFlow / aggPkt
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("flowsim %.1f GB/s vs netsim %.1f GB/s (ratio %.2f) disagree >25%%", aggFlow, aggPkt, ratio)
	}
}

func TestAlltoallShareTaperedFatTree(t *testing.T) {
	// A 75%-tapered fat tree should deliver roughly its taper ratio
	// (13/51 ≈ 25%) of injection bandwidth for alltoall.
	n := topo.NewFatTree(256, topo.TaperedTree(0.75), lp())
	s := NewNet(n, nil, Config{})
	share, err := s.AlltoallShare(8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.15 || share > 0.45 {
		t.Errorf("tapered alltoall share = %.3f, want ≈0.25", share)
	}
}

func TestAlltoallShareNonblockingNearFull(t *testing.T) {
	n := topo.NewFatTree(128, topo.NonblockingTree(), lp())
	s := NewNet(n, nil, Config{})
	share, err := s.AlltoallShare(8, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.85 {
		t.Errorf("nonblocking alltoall share = %.3f, want ≥0.85", share)
	}
}

func TestSelfFlowRejected(t *testing.T) {
	n := topo.NewFatTree(8, topo.NonblockingTree(), lp())
	s := NewNet(n, nil, Config{})
	if _, err := s.Solve([]Flow{{Src: n.Endpoints[0], Dst: n.Endpoints[0]}}); err == nil {
		t.Error("self-flow not rejected")
	}
}

func TestRatesConserveCapacity(t *testing.T) {
	// Property: no link carries more than its capacity. Reconstruct link
	// loads from the solver's own path sampling by re-running with the
	// same seed and checking aggregate rate against total capacity.
	h := topo.NewHxMesh(2, 2, 4, 4, lp())
	s := NewNet(h.Network, nil, Config{Seed: 5})
	flows := ShiftFlows(h.Endpoints, 7)
	rates, err := s.Solve(flows)
	if err != nil {
		t.Fatal(err)
	}
	var agg, cap float64
	for _, r := range rates {
		agg += r
	}
	for i := range h.Nodes {
		for range h.Nodes[i].Ports {
			cap += 50
		}
	}
	if agg <= 0 || agg > cap {
		t.Errorf("aggregate rate %.1f outside (0, %.1f]", agg, cap)
	}
}

func TestValiantPathsHelpDragonflyShift(t *testing.T) {
	// Minimal-only routing on Dragonfly concentrates shifted traffic on
	// the few direct group-pair links; Valiant subflows must raise the
	// alltoall share (the effect behind the paper's UGAL-L choice).
	n := topo.NewDragonfly(topo.DragonflyConfig{A: 8, P: 4, H: 4, G: 9, LP: lp()})
	minimal := NewNet(n, nil, Config{Seed: 3})
	sMin, err := minimal.AlltoallShare(4, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	valiant := NewNet(n, nil, Config{Seed: 3, ValiantPaths: 8})
	sVal, err := valiant.AlltoallShare(4, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sVal <= sMin {
		t.Errorf("valiant share %.3f not above minimal %.3f", sVal, sMin)
	}
}
