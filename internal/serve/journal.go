package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"hammingmesh/internal/journal"
)

// The durable job journal (Config.JournalDir): every accepted experiment
// request and every computed result is appended to a crash-safe
// journal.Log, so a daemon killed mid-batch loses no accepted work — on
// restart the journal is replayed, journaled results rewarm the result
// cache, and requests that were accepted but never served are re-run
// through the batcher.
//
// Record layout (first byte is the type):
//
//	accept: 'A' | canonical request JSON (the Canon — its key re-derives)
//	result: 'R' | u32 key length | key | result body
//
// Both sides are idempotent by content address: a crash between a
// result's append and its fsync can replay one extra or one fewer record
// (the journal's CrashBeforeSync contract), and replay converges either
// way — an accept whose result exists is not re-run, a re-run of an
// already-served request recomputes the bit-identical body.
const (
	jrecAccept = 'A'
	jrecResult = 'R'
)

// jobJournal wraps the log with hxd's record codec; nil means journaling
// is off and every hook is a no-op (the obs zero-overhead discipline).
type jobJournal struct {
	log *journal.Log
}

// openJobJournal opens dir, replays it, and reports the recovered state:
// results holds every journaled (key, body); pending holds accepted
// requests with no journaled result, in accept order.
func openJobJournal(dir string, o journal.Options) (jj *jobJournal, pending map[string]*Canon, results map[string][]byte, stats journal.Stats, err error) {
	pending = make(map[string]*Canon)
	results = make(map[string][]byte)
	log, stats, err := journal.Open(dir, o, func(rec []byte) error {
		if len(rec) == 0 {
			return fmt.Errorf("serve: empty journal record")
		}
		switch rec[0] {
		case jrecAccept:
			var cn Canon
			if err := json.Unmarshal(rec[1:], &cn); err != nil {
				return fmt.Errorf("serve: journal accept record: %w", err)
			}
			key := cn.Key()
			if _, served := results[key]; !served {
				pending[key] = &cn
			}
			return nil
		case jrecResult:
			if len(rec) < 5 {
				return fmt.Errorf("serve: short journal result record")
			}
			n := binary.LittleEndian.Uint32(rec[1:5])
			if int(n) > len(rec)-5 {
				return fmt.Errorf("serve: journal result key length %d exceeds record", n)
			}
			key := string(rec[5 : 5+n])
			results[key] = append([]byte(nil), rec[5+n:]...)
			delete(pending, key)
			return nil
		default:
			return fmt.Errorf("serve: unknown journal record type %q", rec[0])
		}
	})
	if err != nil {
		return nil, nil, nil, stats, err
	}
	return &jobJournal{log: log}, pending, results, stats, nil
}

func (j *jobJournal) accept(cn *Canon) error {
	if j == nil {
		return nil
	}
	return j.log.Append(append([]byte{jrecAccept}, cn.CanonicalJSON()...))
}

func (j *jobJournal) result(key string, body []byte) error {
	if j == nil {
		return nil
	}
	rec := make([]byte, 0, 5+len(key)+len(body))
	rec = append(rec, jrecResult)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(key)))
	rec = append(rec, key...)
	rec = append(rec, body...)
	return j.log.Append(rec)
}

func (j *jobJournal) close() error {
	if j == nil {
		return nil
	}
	return j.log.Close()
}

// sortedKeys fixes the replay order of pending requests (map iteration is
// random; recovery should not be).
func sortedKeys(m map[string]*Canon) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
