package serve

import (
	"encoding/json"
	"testing"

	"hammingmesh/internal/runner"
)

// The scheduler-v3 knobs reach the sweep: flipping interference, elastic,
// preempt or upper_penalty produces a distinct canonical request whose
// computed body reflects the knob, and the off request reproduces the
// pre-knob body exactly (the fields default to inert).
func TestComputeSchedV3Knobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cp := NewComputer(runner.New(0))
	compute := func(r Request) ([]byte, *Canon) {
		t.Helper()
		cn, err := Canonicalize(r)
		if err != nil {
			t.Fatal(err)
		}
		body, err := cp.Compute(cn)
		if err != nil {
			t.Fatal(err)
		}
		return body, cn
	}
	base := Request{Kind: KindSched, Jobs: 40, HorizonH: 20, Trials: 1,
		MTBFs: []float64{0}, CkptsH: []float64{2}, Policies: []string{"bestfit"}}
	off, cnOff := compute(base)

	on := base
	on.Interference = true
	on.Elastic = true
	on.Preempt = true
	body, cnOn := compute(on)
	if cnOff.Key() == cnOn.Key() {
		t.Fatal("v3 knobs did not change the content address")
	}
	var res SchedResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("body is not a SchedResult: %v", err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no sweep points")
	}
	for _, pt := range res.Points {
		if !pt.Interference || !pt.Elastic || !pt.Preempt {
			t.Fatalf("knobs lost on the way to the sweep: %+v", pt)
		}
	}

	// upper_penalty: explicit 0 is a real setting, so it must both hash
	// and compute differently from the default on a comm-heavy trace.
	free := base
	free.UpperPenalty = fp(0)
	freeBody, cnFree := compute(free)
	if cnFree.Key() == cnOff.Key() {
		t.Fatal("upper_penalty:0 shares the default's content address")
	}
	var resOff, resFree SchedResult
	if err := json.Unmarshal(off, &resOff); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(freeBody, &resFree); err != nil {
		t.Fatal(err)
	}
	if resOff.Points[0].SlowP99 < resFree.Points[0].SlowP99 {
		t.Fatalf("free upper layer slowed jobs down: default SlowP99 %v < free %v",
			resOff.Points[0].SlowP99, resFree.Points[0].SlowP99)
	}
}
