package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"hammingmesh/internal/journal"
)

// A journaled daemon restart rewarms the result cache: a request computed
// before the restart is served as a cache hit afterwards, byte-identical,
// without recomputing.
func TestServeJournalRestartRewarmsCache(t *testing.T) {
	dir := t.TempDir()
	var computations atomic.Int64
	compute := func(cn *Canon) ([]byte, error) {
		computations.Add(1)
		return cn.CanonicalJSON(), nil
	}
	cfg := Config{Compute: compute, JournalDir: dir, JournalOptions: journal.Options{NoSync: true}}

	s1 := mustNew(t, cfg)
	ts1 := httptest.NewServer(s1)
	req := `{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`
	code, body1, cache1 := post(t, ts1.URL, req)
	if code != http.StatusOK || cache1 != "miss" {
		t.Fatalf("first request: status %d cache %q", code, cache1)
	}
	ts1.Close()
	s1.Close()

	// Restart: a fresh server over the same journal directory.
	s2 := mustNew(t, cfg)
	defer s2.Close()
	if s2.ReplayedResults != 1 || s2.ReplayedPending != 0 {
		t.Fatalf("restart replayed %d results / %d pending, want 1/0",
			s2.ReplayedResults, s2.ReplayedPending)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	code, body2, cache2 := post(t, ts2.URL, req)
	if code != http.StatusOK || cache2 != "hit" {
		t.Fatalf("post-restart request: status %d cache %q, want a rewarmed hit", code, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("rewarmed body differs:\npre  %s\npost %s", body1, body2)
	}
	if n := computations.Load(); n != 1 {
		t.Fatalf("restart recomputed a journaled result: %d computations, want 1", n)
	}
}

// An accept record with no journaled result — the on-disk state a daemon
// killed mid-batch leaves — is re-run through the batcher on restart: no
// accepted request is lost.
func TestServeJournalReplaysUnservedAccepts(t *testing.T) {
	dir := t.TempDir()
	o := journal.Options{NoSync: true}

	// Forge the crash artifact: two accepted requests, one computed result.
	cnServed, err := Canonicalize(Request{Kind: KindAllreduce, Topo: "hx2mesh", Size: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	cnLost, err := Canonicalize(Request{Kind: KindAllreduce, Topo: "hx2mesh", Size: "tiny", Bytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	jj, pending, results, _, err := openJobJournal(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(pending) != 0 || len(results) != 0 {
		t.Fatalf("fresh journal not empty: %d pending, %d results", len(pending), len(results))
	}
	if err := jj.accept(cnServed); err != nil {
		t.Fatal(err)
	}
	if err := jj.accept(cnLost); err != nil {
		t.Fatal(err)
	}
	if err := jj.result(cnServed.Key(), []byte(`{"served":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := jj.close(); err != nil {
		t.Fatal(err)
	}

	var computed atomic.Int64
	var lastKey atomic.Value
	s := mustNew(t, Config{
		Compute: func(cn *Canon) ([]byte, error) {
			computed.Add(1)
			lastKey.Store(cn.Key())
			return cn.CanonicalJSON(), nil
		},
		JournalDir: dir, JournalOptions: o,
	})
	defer s.Close()
	if s.ReplayedResults != 1 || s.ReplayedPending != 1 {
		t.Fatalf("restart replayed %d results / %d pending, want 1/1",
			s.ReplayedResults, s.ReplayedPending)
	}
	s.WaitReplay()
	if n := computed.Load(); n != 1 {
		t.Fatalf("replay ran %d computations, want exactly the lost request", n)
	}
	if got := lastKey.Load().(string); got != cnLost.Key() {
		t.Fatalf("replay computed key %.12s…, want the unserved request %.12s…", got, cnLost.Key())
	}

	// Both requests now serve from the cache — the journaled result and the
	// replayed one.
	ts := httptest.NewServer(s)
	defer ts.Close()
	for _, req := range []string{
		`{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`,
		`{"kind":"allreduce","topo":"hx2mesh","size":"tiny","bytes":1048576}`,
	} {
		code, _, cache := post(t, ts.URL, req)
		if code != http.StatusOK || cache != "hit" {
			t.Fatalf("request %s: status %d cache %q, want hit", req, code, cache)
		}
	}
	if n := computed.Load(); n != 1 {
		t.Fatalf("cache misses after replay: %d computations", n)
	}

	// A third restart over the now-complete journal has nothing pending.
	s.Close()
	s2 := mustNew(t, Config{Compute: func(cn *Canon) ([]byte, error) {
		t.Error("complete journal still recomputed")
		return cn.CanonicalJSON(), nil
	}, JournalDir: dir, JournalOptions: o})
	defer s2.Close()
	if s2.ReplayedResults != 2 || s2.ReplayedPending != 0 {
		t.Fatalf("final restart replayed %d results / %d pending, want 2/0",
			s2.ReplayedResults, s2.ReplayedPending)
	}
}
