package serve

import (
	"encoding/json"
	"fmt"
	"sort"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/runner"
	"hammingmesh/internal/sched"
)

// Computer executes canonical requests on a shared runner.Pool. Every
// seeded draw derives from the canonical config only, so — by the repo's
// worker/shard invariance contract — the marshalled result bytes are a
// pure function of the canonical config: exactly what the content-
// addressed cache needs.
type Computer struct {
	pool *runner.Pool
}

// NewComputer wraps a pool.
func NewComputer(pool *runner.Pool) *Computer { return &Computer{pool: pool} }

// ShareResult is the body of the bandwidth-share kinds (alltoall_flow,
// alltoall_packet, allreduce).
type ShareResult struct {
	Kind  string  `json:"kind"`
	Topo  string  `json:"topo"`
	Size  string  `json:"size"`
	Share float64 `json:"share"`
}

// PermutationResult summarizes the per-endpoint receive-bandwidth
// distribution of the permutation kind (the Fig. 12 statistics).
type PermutationResult struct {
	Kind      string  `json:"kind"`
	Topo      string  `json:"topo"`
	Size      string  `json:"size"`
	Endpoints int     `json:"endpoints"`
	MinGBps   float64 `json:"min_gbps"`
	P25GBps   float64 `json:"p25_gbps"`
	P50GBps   float64 `json:"p50_gbps"`
	P75GBps   float64 `json:"p75_gbps"`
	MaxGBps   float64 `json:"max_gbps"`
	MeanGBps  float64 `json:"mean_gbps"`
}

// ResilienceResult is the degradation curve of the resilience kind.
type ResilienceResult struct {
	Kind   string                   `json:"kind"`
	Topo   string                   `json:"topo"`
	Size   string                   `json:"size"`
	Points []runner.ResiliencePoint `json:"points"`
}

// SchedResult is the scheduler sweep of the sched kind.
type SchedResult struct {
	Kind   string              `json:"kind"`
	Topo   string              `json:"topo"`
	Size   string              `json:"size"`
	Points []runner.SchedPoint `json:"points"`
}

// Compute runs the canonical request and marshals its result into the
// deterministic JSON body that the cache stores and every equal request
// receives byte for byte.
func (cp *Computer) Compute(cn *Canon) ([]byte, error) {
	c, err := cp.pool.Cluster(cn.Topo, core.ClusterSize(cn.Size))
	if err != nil {
		return nil, err
	}
	// The fixed-fault kinds measure a degraded view; resilience samples
	// its own nested fault sequences inside the sweep.
	if cn.Kind != KindResilience && (cn.FailLinks > 0 || cn.FailBoards > 0) {
		fs, err := c.SampleFaults(cn.FailLinks, cn.FailBoards, cn.FailSeed)
		if err != nil {
			return nil, err
		}
		c = c.WithFaults(fs)
	}
	pktCfg := netsim.DefaultConfig()
	pktCfg.Seed = cn.Seed
	if cn.Credit {
		pktCfg.Mode = netsim.CreditFC
	}

	var v any
	switch cn.Kind {
	case KindAlltoallFlow:
		share, err := cp.pool.AlltoallFlowShare(c, c.FlowConfig(uint64(cn.Seed)), cn.Shifts, uint64(cn.Seed))
		if err != nil {
			return nil, err
		}
		v = ShareResult{Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Share: share}
	case KindAlltoallPacket:
		share, err := cp.pool.AlltoallPacketShare(c, pktCfg, cn.Bytes, cn.Shifts, cn.Seed)
		if err != nil {
			return nil, err
		}
		v = ShareResult{Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Share: share}
	case KindAllreduce:
		share, err := c.AllreduceShare(cn.Bytes)
		if err != nil {
			return nil, err
		}
		v = ShareResult{Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Share: share}
	case KindPermutation:
		bws, err := cp.pool.PermutationSweepGBps(c, pktCfg, cn.Bytes, cn.Perms, cn.Seed)
		if err != nil {
			return nil, err
		}
		sort.Float64s(bws)
		mean := 0.0
		for _, b := range bws {
			mean += b
		}
		mean /= float64(len(bws))
		v = PermutationResult{
			Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Endpoints: len(bws),
			MinGBps: bws[0], P25GBps: bws[len(bws)/4], P50GBps: bws[len(bws)/2],
			P75GBps: bws[3*len(bws)/4], MaxGBps: bws[len(bws)-1], MeanGBps: mean,
		}
	case KindResilience:
		fracs := make([]float64, cn.Steps)
		for i := range fracs {
			if cn.Steps > 1 {
				fracs[i] = cn.FailLinks * float64(i) / float64(cn.Steps-1)
			} else {
				fracs[i] = cn.FailLinks
			}
		}
		pts, err := cp.pool.ResilienceSweep(c, pktCfg, cn.Bytes, fracs, cn.Trials, cn.Shifts, cn.FailSeed, cn.FailBoards)
		if err != nil {
			return nil, err
		}
		v = ResilienceResult{Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Points: pts}
	case KindSched:
		if c.Hx == nil || c.Grid == nil {
			return nil, fmt.Errorf("serve: sched needs a board grid, topo %q has none", cn.Topo)
		}
		policies := make([]sched.Policy, len(cn.Policies))
		for i, p := range cn.Policies {
			policies[i] = sched.Policy(p)
		}
		trace := sched.TraceConfig{
			Jobs: cn.Jobs, ArrivalRate: 4, MeanService: 3,
			AccelsPerBoard: c.Hx.Cfg.A * c.Hx.Cfg.B,
			MaxBoards:      c.Grid.X * c.Grid.Y, CommFrac: 0.3,
		}
		if cn.Elastic {
			trace.ElasticFrac = 0.3
		}
		if cn.Preempt {
			trace.PriorityFrac = 0.2
		}
		sd := sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B)
		if cn.UpperPenalty == 0 {
			sd.UpperPenalty = -1 // the explicit-off sentinel; 0 would mean "default"
		} else {
			sd.UpperPenalty = cn.UpperPenalty
		}
		base := sched.Config{
			HorizonH: cn.HorizonH, RepairH: 10, Reservation: cn.Reserve,
			Slowdown: sd, Elastic: cn.Elastic, Preempt: cn.Preempt,
		}
		if cn.Interference {
			base.Interference = &sched.Interference{BoardA: c.Hx.Cfg.A, BoardB: c.Hx.Cfg.B}
		}
		pts, err := cp.pool.SchedSweep(c, runner.SchedSweepConfig{
			Trace:        trace,
			Base:         base,
			MTBFs:        cn.MTBFs,
			CheckpointsH: cn.CkptsH,
			Policies:     policies,
			Trials:       cn.Trials,
			Seed:         cn.Seed,
		})
		if err != nil {
			return nil, err
		}
		v = SchedResult{Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Points: pts}
	default:
		return nil, fmt.Errorf("serve: unknown canonical kind %q", cn.Kind)
	}
	return json.Marshal(v)
}
