package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

// The result cache's accounted bytes must never exceed its budget, and
// eviction must be LRU: the least recently touched key goes first.
func TestCacheBudgetAndLRUOrder(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 100)
	per := entrySize("k0", body)
	c := NewCache(3 * per) // room for exactly three entries

	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), body)
	}
	if _, ok := c.Get("k0"); !ok { // touch k0: k1 becomes LRU
		t.Fatal("k0 missing before eviction")
	}
	c.Put("k3", body) // must evict k1, not k0
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 survived eviction although it was LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s evicted although it was more recently used", k)
		}
	}
	if entries, bytes, _, _, evictions := c.Stats(); entries != 3 || bytes > 3*per || evictions != 1 {
		t.Fatalf("stats = (%d entries, %d bytes, %d evictions), want (3, <= %d, 1)",
			entries, bytes, evictions, 3*per)
	}

	// Churn: the accounted bytes stay under budget through heavy insertion.
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("churn%d", i), body)
		if _, b, _, _, _ := c.Stats(); b > 3*per {
			t.Fatalf("cache holds %d bytes > budget %d after insert %d", b, 3*per, i)
		}
	}
}

// A body larger than the whole budget is served but not retained, and
// replacing a key re-accounts its bytes instead of double counting.
func TestCacheOversizeAndReplace(t *testing.T) {
	c := NewCache(1024)
	c.Put("big", bytes.Repeat([]byte("x"), 2048))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversized body was retained")
	}
	c.Put("k", []byte("short"))
	_, before, _, _, _ := c.Stats()
	c.Put("k", []byte("a-longer-replacement-body"))
	entries, after, _, _, _ := c.Stats()
	if entries != 1 {
		t.Fatalf("replacement duplicated the entry: %d entries", entries)
	}
	want := before - int64(len("short")) + int64(len("a-longer-replacement-body"))
	if after != want {
		t.Fatalf("replacement accounted %d bytes, want %d", after, want)
	}
}

// The batcher flushes when the batch fills, when max-wait expires, and on
// drain at Close; per-item stage timestamps are monotone.
func TestBatcherFlushReasons(t *testing.T) {
	computed := make(chan string, 16)
	var flushes []string
	b := NewBatcher(16, 2, 50*time.Millisecond,
		func(cn *Canon) ([]byte, error) { computed <- cn.Topo; return []byte(cn.Topo), nil },
		func(n int, reason string) { flushes = append(flushes, fmt.Sprintf("%s/%d", reason, n)) })

	item := func(topo string) *batchItem {
		return &batchItem{canon: &Canon{Topo: topo}, done: make(chan struct{})}
	}

	// Two items fill a batch: reason "size".
	i1, i2 := item("a"), item("b")
	if !b.Enqueue(i1) || !b.Enqueue(i2) {
		t.Fatal("enqueue rejected with a near-empty queue")
	}
	<-i1.done
	<-i2.done

	// A lone item flushes on the timer: reason "wait".
	i3 := item("c")
	b.Enqueue(i3)
	<-i3.done
	if !(i3.enqueued.Before(i3.flushed) || i3.enqueued.Equal(i3.flushed)) || i3.served.Before(i3.flushed) {
		t.Fatalf("stage timestamps not monotone: enq=%v flush=%v served=%v",
			i3.enqueued, i3.flushed, i3.served)
	}
	if string(i3.body) != "c" || i3.err != nil {
		t.Fatalf("item got body %q err %v", i3.body, i3.err)
	}

	b.Close()
	if len(flushes) < 2 || !strings.HasPrefix(flushes[0], "size/2") || !strings.HasPrefix(flushes[1], "wait/1") {
		t.Fatalf("flush reasons = %v, want [size/2 wait/1]", flushes)
	}
	if got := len(computed); got != 3 {
		t.Fatalf("computed %d items, want 3", got)
	}
}

// A full queue rejects instead of blocking (the 429 path), and Close
// still completes everything already accepted.
func TestBatcherBackpressureAndDrain(t *testing.T) {
	release := make(chan struct{})
	b := NewBatcher(2, 1, time.Millisecond, func(cn *Canon) ([]byte, error) {
		<-release
		return []byte("done"), nil
	}, nil)

	var items []*batchItem
	accepted := 0
	for i := 0; i < 10; i++ {
		it := &batchItem{canon: &Canon{}, done: make(chan struct{})}
		if b.Enqueue(it) {
			accepted++
			items = append(items, it)
		}
	}
	// Queue capacity 2 plus at most one item already pulled by the flusher.
	if accepted > 3 || accepted < 2 {
		t.Fatalf("accepted %d items on a 2-slot queue, want 2..3", accepted)
	}
	close(release)
	done := make(chan struct{})
	go func() { b.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not drain")
	}
	for i, it := range items {
		select {
		case <-it.done:
		default:
			t.Fatalf("accepted item %d never completed", i)
		}
	}
}

// The metrics registry renders deterministic Prometheus text exposition:
// families sorted, labeled series, cumulative histogram buckets.
func TestMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("hxd_zeta_total", "", "z").Add(3)
	r.Counter("hxd_alpha_total", `kind="a"`, "a").Inc()
	r.Counter("hxd_alpha_total", `kind="b"`, "a").Add(2)
	r.GaugeFunc("hxd_depth", "", "queue depth", func() float64 { return 7 })
	h := r.Histogram("hxd_latency_seconds", `stage="queue"`, "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	want := []string{
		"# TYPE hxd_alpha_total counter",
		`hxd_alpha_total{kind="a"} 1`,
		`hxd_alpha_total{kind="b"} 2`,
		"hxd_depth 7",
		`hxd_latency_seconds_bucket{stage="queue",le="0.1"} 1`,
		`hxd_latency_seconds_bucket{stage="queue",le="1"} 2`,
		`hxd_latency_seconds_bucket{stage="queue",le="+Inf"} 3`,
		`hxd_latency_seconds_sum{stage="queue"} 5.55`,
		`hxd_latency_seconds_count{stage="queue"} 3`,
		"hxd_zeta_total 3",
	}
	last := -1
	for _, w := range want {
		i := strings.Index(out, w)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", w, out)
		}
		if i < last {
			t.Fatalf("exposition out of order at %q:\n%s", w, out)
		}
		last = i
	}
	// Re-registering fetches the same instrument.
	if c := r.Counter("hxd_alpha_total", `kind="a"`, "a"); c.Value() != 1 {
		t.Fatalf("re-registration created a fresh counter (value %d)", c.Value())
	}
}
