package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hammingmesh/internal/runner"
)

// mustNew builds a Server, failing the test on error (only journal-enabled
// configs can fail).
func mustNew(tb testing.TB, cfg Config) *Server {
	tb.Helper()
	s, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// post sends one experiment request and returns status, body and the
// cache-status header.
func post(t *testing.T, url, body string) (int, []byte, string) {
	t.Helper()
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header.Get("X-Hxd-Cache")
}

// Acceptance: for each supported experiment kind, two HTTP requests with
// semantically equal configs (reordered keys, explicit defaults, inert
// options) return byte-identical JSON bodies, with the second marked as a
// cache hit.
func TestServeAllKindsCacheHitDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s := mustNew(t, Config{Pool: runner.New(0)})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	pairs := []struct {
		kind, a, b string
	}{
		{KindAlltoallFlow,
			`{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny","shifts":4,"workers":8}`,
			`{"workers":2,"shifts":4,"size":"tiny","seed":1,"topo":"hx2mesh","kind":"alltoall_flow","shards":5}`},
		{KindAlltoallPacket,
			`{"kind":"alltoall_packet","topo":"torus","size":"tiny","shifts":2,"bytes":65536}`,
			`{"bytes":65536,"kind":"alltoall_packet","seed":1,"shifts":2,"shards":3,"size":"tiny","topo":"torus"}`},
		{KindPermutation,
			`{"kind":"permutation","topo":"fattree","size":"tiny","bytes":65536}`,
			`{"perms":1,"bytes":65536,"seed":1,"workers":3,"size":"tiny","topo":"fattree","kind":"permutation"}`},
		{KindAllreduce,
			`{"kind":"allreduce","topo":"hx4mesh","size":"tiny"}`,
			`{"seed":9,"bytes":262144,"size":"tiny","topo":"hx4mesh","kind":"allreduce"}`},
		{KindResilience,
			`{"kind":"resilience","topo":"hx2mesh","size":"tiny","trials":1,"steps":2,"shifts":2,"bytes":65536}`,
			`{"steps":2,"shifts":2,"trials":1,"bytes":65536,"fail_links":0.2,"fail_seed":1,"seed":1,"size":"tiny","topo":"hx2mesh","kind":"resilience"}`},
		{KindSched,
			`{"kind":"sched","topo":"hx2mesh","size":"tiny","jobs":15,"trials":1,"horizon_h":10}`,
			`{"horizon_h":10,"jobs":15,"trials":1,"mtbfs":[0,40],"ckpts_h":[2],"policies":["firstfit"],"seed":1,"size":"tiny","topo":"hx2mesh","kind":"sched"}`},
	}
	for _, p := range pairs {
		t.Run(p.kind, func(t *testing.T) {
			code1, body1, cache1 := post(t, ts.URL, p.a)
			if code1 != http.StatusOK {
				t.Fatalf("first request: status %d, body %s", code1, body1)
			}
			if cache1 == "hit" {
				t.Fatalf("first request already a hit")
			}
			code2, body2, cache2 := post(t, ts.URL, p.b)
			if code2 != http.StatusOK {
				t.Fatalf("second request: status %d, body %s", code2, body2)
			}
			if cache2 != "hit" {
				t.Fatalf("semantically equal request not served from cache (X-Hxd-Cache=%q)", cache2)
			}
			if !bytes.Equal(body1, body2) {
				t.Fatalf("bodies differ:\n%s\n%s", body1, body2)
			}
			var v map[string]any
			if err := json.Unmarshal(body1, &v); err != nil {
				t.Fatalf("body is not JSON: %v", err)
			}
			if v["kind"] != p.kind {
				t.Fatalf("body kind = %v, want %s", v["kind"], p.kind)
			}
		})
	}

	// The daemon's health and metrics endpoints reflect the traffic.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v (%v)", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("hxd_cache_hits_total %d", len(pairs)),
		fmt.Sprintf("hxd_computations_total %d", len(pairs)),
		`hxd_requests_total{kind="sched",status="ok"} 2`,
		"hxd_stage_seconds_count", "hxd_queue_depth", "hxd_cache_bytes",
	} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mb)
		}
	}
}

// Acceptance: N concurrent identical requests perform exactly one pool
// computation, with the coalescing counter showing N-1.
func TestServeCoalescesConcurrentIdentical(t *testing.T) {
	const n = 8
	release := make(chan struct{})
	var computations atomic.Int64
	s := mustNew(t, Config{Compute: func(cn *Canon) ([]byte, error) {
		computations.Add(1)
		<-release
		return cn.CanonicalJSON(), nil
	}})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := `{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny"}`
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	statuses := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, cache := post(t, ts.URL, req)
			if code != http.StatusOK {
				t.Errorf("request %d: status %d", i, code)
			}
			bodies[i], statuses[i] = body, cache
		}(i)
	}
	// Hold the single computation open until all other requests have
	// attached to it, then let everyone finish at once.
	deadline := time.Now().Add(10 * time.Second)
	for s.coalesced.Value() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests coalesced", s.coalesced.Value(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computations.Load(); got != 1 {
		t.Fatalf("performed %d computations, want exactly 1", got)
	}
	if got := s.coalesced.Value(); got != n-1 {
		t.Fatalf("coalesce counter = %d, want %d", got, n-1)
	}
	miss, hit := 0, 0
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	for _, st := range statuses {
		switch st {
		case "miss":
			miss++
		case "coalesced":
			hit++
		default:
			t.Fatalf("unexpected cache status %q", st)
		}
	}
	if miss != 1 || hit != n-1 {
		t.Fatalf("statuses = 1 leader + %d coalesced? got %d miss, %d coalesced", n-1, miss, hit)
	}
}

// Acceptance: a full cache under budget pressure evicts LRU entries but
// never serves a stale or wrong result — every response matches a fresh
// computation of its canonical config.
func TestServeEvictionNeverServesWrongResult(t *testing.T) {
	// Deterministic stand-in for the pool: the body IS the canonical
	// config, so correctness is checkable against a fresh Canonicalize.
	compute := func(cn *Canon) ([]byte, error) { return cn.CanonicalJSON(), nil }
	reqAt := func(seed int) (string, []byte) {
		r := Request{Kind: KindAlltoallFlow, Topo: "hx2mesh", Size: "tiny", Seed: int64(seed)}
		cn, err := Canonicalize(r)
		if err != nil {
			t.Fatalf("canonicalize: %v", err)
		}
		return fmt.Sprintf(`{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny","seed":%d}`, seed),
			cn.CanonicalJSON()
	}
	_, sample := reqAt(1)
	budget := 2*entrySize(strings.Repeat("k", 64), sample) + entrySize("", nil)/2 // room for two entries
	s := mustNew(t, Config{Compute: compute, CacheBytes: budget})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Fill far past the budget, then revisit every seed: evicted entries
	// recompute (miss) and still return exactly the right body.
	const seeds = 6
	for round := 0; round < 2; round++ {
		for seed := 1; seed <= seeds; seed++ {
			body, want := reqAt(seed)
			code, got, _ := post(t, ts.URL, body)
			if code != http.StatusOK {
				t.Fatalf("seed %d round %d: status %d", seed, round, code)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d round %d: body %s, want fresh result %s", seed, round, got, want)
			}
		}
	}
	entries, cbytes, hits, _, evictions := s.CacheStats()
	if cbytes > budget {
		t.Fatalf("cache holds %d bytes over budget %d", cbytes, budget)
	}
	if entries > 2 {
		t.Fatalf("cache holds %d entries, budget fits 2", entries)
	}
	if evictions == 0 {
		t.Fatal("no evictions despite 6 distinct results on a 2-entry budget")
	}
	// With 6 seeds cycling through 2 slots in order, every revisit misses:
	// all correctness above came from fresh computations, none stale.
	if hits != 0 {
		t.Fatalf("expected pure miss traffic under cyclic pressure, got %d hits", hits)
	}
}

// A full batch queue answers 429 + Retry-After instead of queueing
// unboundedly, and invalid requests fail with 400.
func TestServeBackpressureAndBadRequests(t *testing.T) {
	release := make(chan struct{})
	s := mustNew(t, Config{
		Compute:  func(cn *Canon) ([]byte, error) { <-release; return cn.CanonicalJSON(), nil },
		QueueLen: 1, BatchSize: 1, MaxWait: time.Millisecond,
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	var rejected, served atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny","seed":%d}`, i+1)
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("POST: %v", err)
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				rejected.Add(1)
			case http.StatusOK:
				served.Add(1)
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}(i)
	}
	// With one slot in compute and one in the queue, the rest of the
	// concurrent burst must bounce.
	deadline := time.Now().Add(10 * time.Second)
	for s.rejected.Value() < n-2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d rejections on a 1-slot queue", s.rejected.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	s.Close()
	if rejected.Load() < n-2 || served.Load() < 1 || rejected.Load()+served.Load() != n {
		t.Fatalf("rejected %d served %d of %d, want >= %d rejected and the rest served",
			rejected.Load(), served.Load(), n, n-2)
	}

	for name, body := range map[string]string{
		"unknown kind":  `{"kind":"nope"}`,
		"unknown field": `{"kind":"alltoall_flow","bogus":1}`,
		"bad topo":      `{"kind":"alltoall_flow","topo":"moebius"}`,
		"not json":      `{"kind":`,
	} {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
