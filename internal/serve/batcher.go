package serve

import (
	"sync"
	"time"
)

// batchItem is one request travelling through the batcher, carrying the
// per-stage timestamps (enqueue → flush → served) that become the
// response's latency headers.
type batchItem struct {
	canon *Canon
	key   string

	enqueued time.Time
	flushed  time.Time
	served   time.Time

	body []byte
	err  error
	done chan struct{} // closed once body/err are final
}

// Batcher coalesces small distinct requests into batches before they hit
// the runner pool (the related-work MerkleBatcher shape): requests queue
// on a bounded channel, a single flusher goroutine collects up to
// BatchSize of them — or whatever arrived when MaxWait expires after the
// first — and computes the batch back to back, so consecutive requests
// for the same cluster reuse the pool's warm cluster/table cache instead
// of interleaving with unrelated work. The bounded queue is the server's
// backpressure: Enqueue fails when it is full and the handler answers
// 429 + Retry-After.
type Batcher struct {
	ch        chan *batchItem
	batchSize int
	maxWait   time.Duration
	compute   func(*Canon) ([]byte, error)

	// onFlush observes every flush (size and reason: "size" | "wait" |
	// "drain") for the metrics registry; may be nil.
	onFlush func(n int, reason string)

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewBatcher starts the flusher. queueLen bounds the pending queue
// (minimum 1), batchSize the flush size (minimum 1); maxWait <= 0
// defaults to 2ms.
func NewBatcher(queueLen, batchSize int, maxWait time.Duration, compute func(*Canon) ([]byte, error), onFlush func(int, string)) *Batcher {
	if queueLen < 1 {
		queueLen = 1
	}
	if batchSize < 1 {
		batchSize = 1
	}
	if maxWait <= 0 {
		maxWait = 2 * time.Millisecond
	}
	b := &Batcher{
		ch:        make(chan *batchItem, queueLen),
		batchSize: batchSize,
		maxWait:   maxWait,
		compute:   compute,
		onFlush:   onFlush,
	}
	b.wg.Add(1)
	go b.flusher()
	return b
}

// Enqueue submits an item without blocking; false means the queue is full
// (backpressure — the caller should reject the request).
func (b *Batcher) Enqueue(it *batchItem) bool {
	it.enqueued = time.Now()
	select {
	case b.ch <- it:
		return true
	default:
		return false
	}
}

// Depth is the number of queued, not-yet-flushed items.
func (b *Batcher) Depth() int { return len(b.ch) }

// Close drains the queue — every already-enqueued item still completes —
// and stops the flusher. Safe to call more than once.
func (b *Batcher) Close() {
	b.closeOnce.Do(func() { close(b.ch) })
	b.wg.Wait()
}

func (b *Batcher) flusher() {
	defer b.wg.Done()
	for {
		first, ok := <-b.ch
		if !ok {
			return
		}
		batch := append(make([]*batchItem, 0, b.batchSize), first)
		reason := "wait"
		timer := time.NewTimer(b.maxWait)
		open := true
	collect:
		for len(batch) < b.batchSize {
			select {
			case it, more := <-b.ch:
				if !more {
					open = false
					reason = "drain"
					break collect
				}
				batch = append(batch, it)
			case <-timer.C:
				break collect
			}
		}
		timer.Stop()
		if len(batch) == b.batchSize {
			reason = "size"
		}
		now := time.Now()
		for _, it := range batch {
			it.flushed = now
		}
		if b.onFlush != nil {
			b.onFlush(len(batch), reason)
		}
		// Back-to-back execution: each item's computation fans out on the
		// pool internally, so the batch runs serially here while the pool
		// parallelizes within each item.
		for _, it := range batch {
			it.body, it.err = b.compute(it.canon)
			it.served = time.Now()
			close(it.done)
		}
		if !open {
			// The channel closed mid-collect; drain what is left and exit.
			for it := range b.ch {
				it.flushed = time.Now()
				it.body, it.err = b.compute(it.canon)
				it.served = time.Now()
				close(it.done)
			}
			return
		}
	}
}
