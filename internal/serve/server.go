package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"hammingmesh/internal/journal"
	"hammingmesh/internal/runner"
)

// Default knobs for the daemon; cmd/hxd exposes all of them as flags.
const (
	DefaultCacheBytes = 64 << 20
	DefaultQueueLen   = 256
	DefaultBatchSize  = 8
	DefaultMaxWait    = 2 * time.Millisecond
)

// errQueueFull is the backpressure signal: the batch queue rejected the
// request, the handler answers 429 + Retry-After.
var errQueueFull = errors.New("serve: batch queue full")

// Config configures a Server.
type Config struct {
	// Pool is the shared runner pool experiments execute on. Required
	// unless Compute is set.
	Pool *runner.Pool
	// CacheBytes bounds the result cache (<= 0 uses DefaultCacheBytes;
	// use NewCache directly for a disabled cache in tests).
	CacheBytes int64
	// QueueLen bounds the pending batch queue; beyond it requests are
	// rejected with 429 (<= 0 uses DefaultQueueLen).
	QueueLen int
	// BatchSize is the flush size of the batcher (<= 0 uses
	// DefaultBatchSize).
	BatchSize int
	// MaxWait is how long a partial batch waits for company before
	// flushing anyway (<= 0 uses DefaultMaxWait).
	MaxWait time.Duration
	// Compute overrides the per-request computation (tests); when nil,
	// a Computer over Pool is used.
	Compute func(*Canon) ([]byte, error)
	// Registry is the metrics registry the server registers into; nil
	// builds a private one. cmd/hxd passes obs.Default() so daemon, pool
	// and engine series land in one /metrics scrape; tests leave it nil
	// for isolation.
	Registry *Registry
	// Pprof mounts net/http/pprof handlers under /debug/pprof/ when set.
	Pprof bool
	// JournalDir enables the durable job journal (cmd/hxd -journal-dir):
	// accepted requests and computed results are appended to a crash-safe
	// journal there, and on restart the result cache is rewarmed from
	// journaled results while accepted-but-unserved requests are re-run
	// through the batcher. Empty disables journaling entirely.
	JournalDir string
	// JournalOptions tunes the journal (tests: NoSync, tiny segments,
	// crash plans). Its Obs field is overridden with the server registry.
	JournalOptions journal.Options
}

// call is one in-flight computation that concurrent identical requests
// attach to (singleflight): the first arrival is the leader and runs the
// computation; every later arrival with the same content address waits on
// done and reuses the result.
type call struct {
	done chan struct{}
	body []byte
	err  error

	queueNs   int64
	computeNs int64
}

// Server is the hxd daemon core: canonicalize → content address → cache
// lookup → singleflight → batch onto the pool. It is an http.Handler
// serving POST /v1/experiments, GET /metrics and GET /healthz.
type Server struct {
	cache   *Cache
	batcher *Batcher
	metrics *Registry
	mux     *http.ServeMux

	mu       sync.Mutex
	inflight map[string]*call

	journal  *jobJournal // nil: journaling off
	replayWG sync.WaitGroup
	// ReplayedResults and ReplayedPending report what the journal restart
	// recovery did: results rewarmed into the cache and accepted requests
	// re-run through the batcher. Zero without a journal.
	ReplayedResults, ReplayedPending int

	hits, misses, coalesced, rejected, computations, errored *Counter
	journalErrors                                            *Counter
	queueHist, computeHist, totalHist                        *Histogram
}

// New builds a Server and starts its batcher. Call Close to drain it.
// With Config.JournalDir set it also opens (and if needed recovers) the
// durable job journal before serving: journaled results rewarm the cache
// synchronously, and accepted-but-unserved requests replay through the
// batcher in the background (WaitReplay blocks until they finish).
func New(cfg Config) (*Server, error) {
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = DefaultBatchSize
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	compute := cfg.Compute
	if compute == nil {
		compute = NewComputer(cfg.Pool).Compute
	}

	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	s := &Server{
		cache:    NewCache(cfg.CacheBytes),
		metrics:  reg,
		mux:      http.NewServeMux(),
		inflight: make(map[string]*call),

		hits:          reg.Counter("hxd_cache_hits_total", "", "requests served from the result cache"),
		misses:        reg.Counter("hxd_cache_misses_total", "", "requests that had to compute"),
		coalesced:     reg.Counter("hxd_coalesced_total", "", "requests that attached to an identical in-flight computation"),
		rejected:      reg.Counter("hxd_rejected_total", "", "requests rejected by queue backpressure"),
		computations:  reg.Counter("hxd_computations_total", "", "pool computations actually performed"),
		errored:       reg.Counter("hxd_errors_total", "", "computations that returned an error"),
		journalErrors: reg.Counter("hxd_journal_errors_total", "", "job-journal appends that failed"),
	}

	var pendingReplay map[string]*Canon
	if cfg.JournalDir != "" {
		o := cfg.JournalOptions
		o.Obs = reg
		jj, pending, results, _, err := openJobJournal(cfg.JournalDir, o)
		if err != nil {
			return nil, fmt.Errorf("serve: open job journal: %w", err)
		}
		s.journal = jj
		for key, body := range results {
			s.cache.Put(key, body)
		}
		s.ReplayedResults = len(results)
		s.ReplayedPending = len(pending)
		pendingReplay = pending
		reg.Counter("hxd_journal_results_rewarmed_total", "", "journaled results loaded into the cache at startup").Add(int64(len(results)))
		reg.Counter("hxd_journal_pending_replayed_total", "", "accepted-but-unserved requests re-run at startup").Add(int64(len(pending)))
	}
	latBuckets := []float64{0.0005, 0.002, 0.01, 0.05, 0.2, 1, 5, 20}
	s.queueHist = reg.Histogram("hxd_stage_seconds", `stage="queue"`, "per-stage request latency", latBuckets)
	s.computeHist = reg.Histogram("hxd_stage_seconds", `stage="compute"`, "per-stage request latency", latBuckets)
	s.totalHist = reg.Histogram("hxd_stage_seconds", `stage="total"`, "per-stage request latency", latBuckets)

	flushes := func(n int, reason string) {
		reg.Counter("hxd_batch_flushes_total", fmt.Sprintf("reason=%q", reason), "batch flushes by trigger").Inc()
		reg.Counter("hxd_batched_requests_total", "", "requests that went through the batcher").Add(int64(n))
	}
	s.batcher = NewBatcher(cfg.QueueLen, cfg.BatchSize, cfg.MaxWait, compute, flushes)

	if len(pendingReplay) > 0 {
		// Re-run accepted-but-unserved requests through the live batcher,
		// sequentially (each waits for the last, so replay never trips the
		// queue's backpressure) and in sorted key order (deterministic
		// recovery). The daemon serves normally while this drains.
		s.replayWG.Add(1)
		go func() {
			defer s.replayWG.Done()
			for _, key := range sortedKeys(pendingReplay) {
				item := &batchItem{canon: pendingReplay[key], key: key, done: make(chan struct{})}
				for !s.batcher.Enqueue(item) {
					time.Sleep(time.Millisecond)
				}
				<-item.done
				if item.err != nil {
					s.errored.Inc()
					continue
				}
				s.cache.Put(key, item.body)
				s.journalResult(key, item.body)
			}
		}()
	}

	reg.GaugeFunc("hxd_queue_depth", "", "queued, not yet flushed requests", func() float64 {
		return float64(s.batcher.Depth())
	})
	reg.GaugeFunc("hxd_cache_entries", "", "entries in the result cache", func() float64 {
		entries, _, _, _, _ := s.cache.Stats()
		return float64(entries)
	})
	reg.GaugeFunc("hxd_cache_bytes", "", "accounted bytes in the result cache", func() float64 {
		_, bytes, _, _, _ := s.cache.Stats()
		return float64(bytes)
	})
	reg.GaugeFunc("hxd_cache_evictions", "", "entries evicted from the result cache", func() float64 {
		_, _, _, _, ev := s.cache.Stats()
		return float64(ev)
	})
	if pool := cfg.Pool; pool != nil {
		// Surface the pool's cluster-compilation cache (PR 7's
		// SetClusterBudget LRU) on the same scrape as the daemon series.
		reg.GaugeFunc("hxd_cluster_cache_entries", "", "compiled clusters held by the runner pool", func() float64 {
			entries, _, _ := pool.CacheStats()
			return float64(entries)
		})
		reg.GaugeFunc("hxd_cluster_cache_bytes", "", "estimated bytes of compiled clusters held by the runner pool", func() float64 {
			_, bytes, _ := pool.CacheStats()
			return float64(bytes)
		})
		reg.GaugeFunc("hxd_cluster_cache_evictions", "", "compiled clusters evicted from the runner pool cache", func() float64 {
			_, _, ev := pool.CacheStats()
			return float64(ev)
		})
	}

	s.mux.HandleFunc("POST /v1/experiments", s.handleExperiment)
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.metrics.Render(w)
	})
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	if cfg.Pprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s, nil
}

// WaitReplay blocks until the journal restart recovery finished re-running
// accepted-but-unserved requests (immediately without a journal).
func (s *Server) WaitReplay() { s.replayWG.Wait() }

// journalResult appends a computed result to the job journal (no-op
// without one). A failed append only degrades durability — the response
// is already correct — so it is counted, not propagated.
func (s *Server) journalResult(key string, body []byte) {
	if err := s.journal.result(key, body); err != nil {
		s.journalErrors.Inc()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close drains the batch queue (every accepted request still completes),
// stops the batcher and seals the job journal. The graceful-shutdown
// order in cmd/hxd is http.Server.Shutdown first — no new requests —
// then Close.
func (s *Server) Close() {
	// Replay first: Enqueue on a closed batcher would panic, and replayed
	// requests are accepted work that must complete like any other.
	s.replayWG.Wait()
	s.batcher.Close()
	s.journal.close()
}

// Metrics exposes the registry (examples, tests).
func (s *Server) Metrics() *Registry { return s.metrics }

// CacheStats exposes result-cache occupancy and traffic counters.
func (s *Server) CacheStats() (entries int, bytes, hits, misses, evictions int64) {
	return s.cache.Stats()
}

func (s *Server) countRequest(kind, status string) {
	s.metrics.Counter("hxd_requests_total",
		fmt.Sprintf("kind=%q,status=%q", kind, status), "experiment requests by kind and outcome").Inc()
}

func (s *Server) fail(w http.ResponseWriter, kind string, code int, err error) {
	status := "error"
	switch code {
	case http.StatusBadRequest:
		status = "bad_request"
	case http.StatusTooManyRequests:
		status = "rejected"
		w.Header().Set("Retry-After", "1")
	}
	s.countRequest(kind, status)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		s.fail(w, "unknown", http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	cn, err := Canonicalize(req)
	if err != nil {
		s.fail(w, req.Kind, http.StatusBadRequest, err)
		return
	}
	key := cn.Key()
	w.Header().Set("X-Hxd-Key", key)

	if body, ok := s.cache.Get(key); ok {
		s.hits.Inc()
		s.serve(w, cn.Kind, "hit", body, start, 0, 0)
		return
	}
	s.misses.Inc()

	s.mu.Lock()
	if cl, ok := s.inflight[key]; ok {
		s.mu.Unlock()
		s.coalesced.Inc()
		<-cl.done
		if cl.err != nil {
			s.failCompute(w, cn.Kind, cl.err)
			return
		}
		s.serve(w, cn.Kind, "coalesced", cl.body, start, cl.queueNs, cl.computeNs)
		return
	}
	cl := &call{done: make(chan struct{})}
	s.inflight[key] = cl
	s.mu.Unlock()

	item := &batchItem{canon: cn, key: key, done: make(chan struct{})}
	if !s.batcher.Enqueue(item) {
		cl.err = errQueueFull
		// Publish the failure before dropping the inflight slot so
		// attached followers observe it too.
		close(cl.done)
		s.mu.Lock()
		delete(s.inflight, key)
		s.mu.Unlock()
		s.rejected.Inc()
		s.fail(w, cn.Kind, http.StatusTooManyRequests, errQueueFull)
		return
	}
	// The request is accepted: make it durable before the (possibly long)
	// computation, so a daemon killed mid-batch re-runs it on restart. The
	// response itself is synchronous, so a failed append only loses
	// durability for work the client has not been promised yet.
	if s.journal != nil {
		if err := s.journal.accept(cn); err != nil {
			s.journalErrors.Inc()
		}
	}
	<-item.done
	s.computations.Inc()
	cl.body, cl.err = item.body, item.err
	cl.queueNs = item.flushed.Sub(item.enqueued).Nanoseconds()
	cl.computeNs = item.served.Sub(item.flushed).Nanoseconds()
	s.queueHist.Observe(float64(cl.queueNs) / 1e9)
	s.computeHist.Observe(float64(cl.computeNs) / 1e9)
	if cl.err == nil {
		// Fill the cache before releasing the inflight slot: a request
		// arriving in between finds the cached body instead of starting
		// a duplicate computation.
		s.cache.Put(key, cl.body)
		if s.journal != nil {
			s.journalResult(key, cl.body)
		}
	}
	close(cl.done)
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()

	if cl.err != nil {
		s.failCompute(w, cn.Kind, cl.err)
		return
	}
	s.serve(w, cn.Kind, "miss", cl.body, start, cl.queueNs, cl.computeNs)
}

func (s *Server) failCompute(w http.ResponseWriter, kind string, err error) {
	s.errored.Inc()
	code := http.StatusInternalServerError
	if errors.Is(err, errQueueFull) {
		code = http.StatusTooManyRequests
	}
	s.fail(w, kind, code, err)
}

// serve writes the result body — byte-identical across hit, miss and
// coalesced paths — with the cache status and stage latencies in headers.
func (s *Server) serve(w http.ResponseWriter, kind, cacheStatus string, body []byte, start time.Time, queueNs, computeNs int64) {
	s.countRequest(kind, "ok")
	total := time.Since(start)
	s.totalHist.Observe(total.Seconds())
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Hxd-Cache", cacheStatus)
	if queueNs > 0 || computeNs > 0 {
		h.Set("X-Hxd-Queue-Ns", fmt.Sprintf("%d", queueNs))
		h.Set("X-Hxd-Compute-Ns", fmt.Sprintf("%d", computeNs))
	}
	h.Set("X-Hxd-Total-Ns", fmt.Sprintf("%d", total.Nanoseconds()))
	w.Write(body)
}
