package serve

import "hammingmesh/internal/obs"

// The metrics registry the daemon grew in PR 7 was promoted to
// internal/obs so engine and pool layers can share it. These aliases
// keep serve's public surface (and its tests) unchanged.

// Registry is the promoted obs.Registry.
type Registry = obs.Registry

// Counter is the promoted obs.Counter.
type Counter = obs.Counter

// Histogram is the promoted obs.Histogram.
type Histogram = obs.Histogram

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return obs.NewRegistry() }
