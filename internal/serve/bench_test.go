package serve

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hammingmesh/internal/runner"
)

func benchPost(b *testing.B, url, body string) {
	resp, err := http.Post(url+"/v1/experiments", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkDaemonHit measures the repeat-request fast path over real
// HTTP: canonicalize, content address, LRU cache hit — no pool work.
func BenchmarkDaemonHit(b *testing.B) {
	s := mustNew(b, Config{Pool: runner.New(2)})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	req := `{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`
	benchPost(b, ts.URL, req) // prime the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL, req)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkDaemonDistinct measures the full miss path: every request has
// a fresh content address and flows through the batcher onto the pool
// (the cheap analytic allreduce measurement, so the daemon overhead —
// not the simulation — dominates what is being compared across PRs).
func BenchmarkDaemonDistinct(b *testing.B) {
	s := mustNew(b, Config{Pool: runner.New(2)})
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, ts.URL,
			fmt.Sprintf(`{"kind":"allreduce","topo":"hx2mesh","size":"tiny","bytes":%d}`, 1024+i))
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
