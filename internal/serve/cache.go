package serve

import (
	"container/list"
	"sync"
)

// cacheEntryOverhead approximates the per-entry bookkeeping bytes charged
// against the cache budget on top of key and body: the list element, map
// bucket share and entry struct.
const cacheEntryOverhead = 160

// Cache is the content-addressed result cache: an LRU over canonical-
// config hashes with strict byte accounting. The cached bytes (keys +
// bodies + per-entry overhead) never exceed the budget — inserting past
// it evicts least-recently-used entries first, and a body larger than the
// whole budget is simply not retained. Safe for concurrent use.
//
// Soundness rests on the determinism contract: the key is the SHA-256 of
// the canonical config and equal canonical config ⇒ bit-identical result,
// so a hit can never serve a result that a fresh computation would not
// reproduce byte for byte.
type Cache struct {
	mu        sync.Mutex
	budget    int64
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type cacheEntry struct {
	key  string
	body []byte
}

// NewCache creates a cache bounded to `budget` bytes (<= 0 disables
// caching entirely: every Get misses, every Put is dropped).
func NewCache(budget int64) *Cache {
	return &Cache{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

func entrySize(key string, body []byte) int64 {
	return int64(len(key)) + int64(len(body)) + cacheEntryOverhead
}

// Get returns the cached body for the content address and marks the entry
// most recently used. The returned slice is shared — callers must not
// mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(e)
	c.hits++
	return e.Value.(*cacheEntry).body, true
}

// Put stores the body under the content address, evicting LRU entries
// until the accounted bytes fit the budget. Storing an existing key
// replaces its body.
func (c *Cache) Put(key string, body []byte) {
	size := entrySize(key, body)
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget {
		return // larger than the whole cache: serve, don't retain
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.bytes += int64(len(body)) - int64(len(ent.body))
		ent.body = body
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, body: body})
		c.bytes += size
	}
	for c.bytes > c.budget && c.ll.Len() > 0 {
		e := c.ll.Back()
		ent := e.Value.(*cacheEntry)
		c.ll.Remove(e)
		delete(c.items, ent.key)
		c.bytes -= entrySize(ent.key, ent.body)
		c.evictions++
	}
}

// Stats reports occupancy and traffic counters.
func (c *Cache) Stats() (entries int, bytes, hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.bytes, c.hits, c.misses, c.evictions
}
