package serve

import (
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// keyOf decodes raw JSON the way the handler does (strict) and returns the
// content address.
func keyOf(t *testing.T, js string) string {
	t.Helper()
	var r Request
	dec := json.NewDecoder(strings.NewReader(js))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		t.Fatalf("decode %s: %v", js, err)
	}
	cn, err := Canonicalize(r)
	if err != nil {
		t.Fatalf("canonicalize %s: %v", js, err)
	}
	return cn.Key()
}

// Semantically equal requests — reordered JSON keys, explicit-vs-default
// values, zero-valued or kind-inert options — must share one content
// address.
func TestCanonEqualSemanticsSameKey(t *testing.T) {
	cases := []struct{ name, a, b string }{
		{"reordered+explicit-defaults",
			`{"kind":"alltoall_flow"}`,
			`{"size":"tiny","shifts":8,"topo":"hx2mesh","seed":1,"kind":"alltoall_flow"}`},
		{"inert-worker-shard-count",
			`{"kind":"alltoall_packet","bytes":65536}`,
			`{"kind":"alltoall_packet","bytes":65536,"workers":8,"shards":4}`},
		{"inert-for-kind (bytes/credit on the flow path)",
			`{"kind":"alltoall_flow","seed":3}`,
			`{"kind":"alltoall_flow","seed":3,"bytes":123,"credit":true}`},
		{"inert-fail-seed-without-faults",
			`{"kind":"permutation"}`,
			`{"kind":"permutation","fail_seed":99}`},
		{"inert-seed-for-allreduce",
			`{"kind":"allreduce"}`,
			`{"kind":"allreduce","seed":42,"bytes":262144}`},
		{"sched-defaults",
			`{"kind":"sched","topo":"hx2mesh"}`,
			`{"kind":"sched","policies":["firstfit"],"mtbfs":[0,40],"ckpts_h":[2],"jobs":120,"horizon_h":40,"trials":2}`},
		{"sched-explicit-default-upper-penalty",
			`{"kind":"sched"}`,
			`{"kind":"sched","upper_penalty":1}`},
		{"sched-explicit-off-v3-knobs",
			`{"kind":"sched"}`,
			`{"kind":"sched","interference":false,"elastic":false,"preempt":false}`},
		{"zero-seed-is-default",
			`{"kind":"resilience","seed":0,"fail_seed":0}`,
			`{"kind":"resilience","seed":1,"fail_seed":1,"fail_links":0.2,"steps":5,"trials":3,"shifts":4}`},
	}
	for _, tc := range cases {
		if ka, kb := keyOf(t, tc.a), keyOf(t, tc.b); ka != kb {
			t.Errorf("%s: keys differ\n  %s -> %s\n  %s -> %s", tc.name, tc.a, ka, tc.b, kb)
		}
	}
}

// Any meaningful field change must change the content address.
func TestCanonMeaningfulChangeNewKey(t *testing.T) {
	base := `{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny"}`
	mutants := []string{
		`{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny"}`,
		`{"kind":"alltoall_packet","topo":"torus","size":"tiny"}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"small"}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","bytes":65536}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","shifts":2}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","seed":2}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","credit":true}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","fail_links":0.05}`,
		`{"kind":"alltoall_packet","topo":"hx2mesh","size":"tiny","fail_links":0.05,"fail_seed":2}`,
		`{"kind":"sched"}`,
		`{"kind":"sched","interference":true}`,
		`{"kind":"sched","elastic":true}`,
		`{"kind":"sched","preempt":true}`,
		`{"kind":"sched","upper_penalty":0}`,
		`{"kind":"sched","upper_penalty":0.5}`,
	}
	seen := map[string]string{keyOf(t, base): base}
	for _, m := range mutants {
		k := keyOf(t, m)
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct requests share a key:\n  %s\n  %s", prev, m)
		}
		seen[k] = m
	}
}

// Property check over seeded random requests: adding inert noise never
// moves the content address; flipping one meaningful field always does.
// Canonicalization must also be idempotent — re-canonicalizing a canonical
// form is a fixed point.
func TestCanonProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kinds := Kinds()
	topos := []string{"hx2mesh", "hx4mesh", "hyperx", "torus", "fattree", "dragonfly"}
	sizes := []string{"", "tiny", "small", "large"}
	for i := 0; i < 300; i++ {
		r := Request{
			Kind:   kinds[rng.Intn(len(kinds))],
			Topo:   topos[rng.Intn(len(topos))],
			Size:   sizes[rng.Intn(len(sizes))],
			Bytes:  int64(rng.Intn(3)) * 4096,
			Shifts: rng.Intn(4),
			Perms:  rng.Intn(3),
			Seed:   int64(rng.Intn(4)),
			Credit: rng.Intn(2) == 0,
			Trials: rng.Intn(3),
		}
		if r.Kind == KindSched || rng.Intn(4) == 0 {
			r.Topo = "hx2mesh" // keep sched/board faults valid
		}
		r.Interference = rng.Intn(2) == 0
		r.Elastic = rng.Intn(2) == 0
		r.Preempt = rng.Intn(2) == 0
		if rng.Intn(3) == 0 {
			up := float64(rng.Intn(3)) // 0 is meaningful: explicitly free upper layer
			r.UpperPenalty = &up
		}
		if rng.Intn(3) == 0 {
			r.FailLinks = 0.05 * float64(1+rng.Intn(3))
			r.FailSeed = int64(rng.Intn(3))
		}
		cn, err := Canonicalize(r)
		if err != nil {
			t.Fatalf("canonicalize %+v: %v", r, err)
		}

		// Inert noise: worker/shard counts never matter.
		noisy := r
		noisy.Workers = 1 + rng.Intn(16)
		noisy.Shards = 1 + rng.Intn(8)
		cnNoisy, err := Canonicalize(noisy)
		if err != nil {
			t.Fatalf("canonicalize noisy %+v: %v", noisy, err)
		}
		if cn.Key() != cnNoisy.Key() {
			t.Fatalf("inert noise moved the key:\n%+v\n%+v", r, noisy)
		}

		// One meaningful change: the seed on seeded kinds, bytes on
		// byte-sized kinds, the horizon on sched.
		mut := r
		switch r.Kind {
		case KindAllreduce:
			mut.Bytes = cn.Bytes + 4096
		case KindSched:
			mut.HorizonH = cn.HorizonH + 1
		default:
			mut.Seed = cn.Seed + 1
		}
		cnMut, err := Canonicalize(mut)
		if err != nil {
			t.Fatalf("canonicalize mutant %+v: %v", mut, err)
		}
		if cn.Key() == cnMut.Key() {
			t.Fatalf("meaningful change kept the key: %+v vs %+v", r, mut)
		}

		// Idempotence: canonical values survive a second pass unchanged.
		up := cn.UpperPenalty
		again, err := Canonicalize(Request{
			Kind: cn.Kind, Topo: cn.Topo, Size: cn.Size, Bytes: cn.Bytes,
			Shifts: cn.Shifts, Perms: cn.Perms, Seed: cn.Seed, Credit: cn.Credit,
			FailLinks: cn.FailLinks, FailBoards: cn.FailBoards, FailSeed: cn.FailSeed,
			Trials: cn.Trials, Steps: cn.Steps, Jobs: cn.Jobs, HorizonH: cn.HorizonH,
			MTBFs: cn.MTBFs, CkptsH: cn.CkptsH, Policies: cn.Policies, Reserve: cn.Reserve,
			Interference: cn.Interference, Elastic: cn.Elastic, Preempt: cn.Preempt,
			UpperPenalty: &up,
		})
		if err != nil {
			t.Fatalf("re-canonicalize %+v: %v", cn, err)
		}
		if again.Key() != cn.Key() {
			t.Fatalf("canonicalization not idempotent for %+v", r)
		}
	}
}

// Invalid requests are rejected with an error, never hashed.
func TestCanonRejects(t *testing.T) {
	bad := []Request{
		{},
		{Kind: "nosuchkind"},
		{Kind: KindAlltoallFlow, Topo: "nosuchtopo"},
		{Kind: KindAlltoallFlow, Size: "medium"},
		{Kind: KindAlltoallFlow, FailLinks: 1.5},
		{Kind: KindAlltoallFlow, Shifts: -1},
		{Kind: KindSched, Topo: "fattree"},
		{Kind: KindSched, Policies: []string{"nosuchpolicy"}},
		{Kind: KindSched, MTBFs: []float64{-1}},
		{Kind: KindSched, UpperPenalty: fp(-0.5)},
		{Kind: KindAlltoallPacket, FailBoards: 2, Topo: "dragonfly"},
	}
	for _, r := range bad {
		if _, err := Canonicalize(r); err == nil {
			t.Errorf("Canonicalize(%+v) accepted, want error", r)
		}
	}
}

func fp(v float64) *float64 { return &v }

// The upper_penalty canonicalization fix: an explicit 0 ("upper-layer
// crossings are free") is a meaningful setting, distinct from an omitted
// field (which means the model default of 1). Before the pointer field, 0
// and omitted marshalled identically and the off setting silently became
// the default.
func TestCanonUpperPenaltyZeroExplicit(t *testing.T) {
	omitted := keyOf(t, `{"kind":"sched"}`)
	explicitDefault := keyOf(t, `{"kind":"sched","upper_penalty":1}`)
	off := keyOf(t, `{"kind":"sched","upper_penalty":0}`)
	if omitted != explicitDefault {
		t.Error("upper_penalty:1 differs from omitted; explicit defaults must canonicalize away")
	}
	if off == omitted {
		t.Error("upper_penalty:0 canonicalizes like omitted; the off setting is lost")
	}
	cn, err := Canonicalize(Request{Kind: KindSched, UpperPenalty: fp(0)})
	if err != nil {
		t.Fatal(err)
	}
	if cn.UpperPenalty != 0 {
		t.Fatalf("canonical upper_penalty = %v, want explicit 0", cn.UpperPenalty)
	}
	if !strings.Contains(string(cn.CanonicalJSON()), `"upper_penalty":0`) {
		t.Fatalf("canonical JSON hides the explicit 0: %s", cn.CanonicalJSON())
	}
}
