// Package serve is the simulation-as-a-service layer: an HTTP/JSON
// front-end that turns the repo's experiment entry points (the
// runner.Pool sweeps) into a long-lived daemon. Every request is
// canonicalized — defaults filled, fields emitted in sorted order, inert
// options stripped — and hashed into a SHA-256 content address. The
// determinism contract of the layers below (equal canonical config ⇒
// bit-identical result, independent of worker count and shard count)
// makes that address a sound cache key: repeats are served from a
// byte-accounted LRU result cache, concurrent identical requests coalesce
// onto one in-flight computation, and small distinct requests are batched
// onto the shared runner pool behind a batch-size/max-wait flusher with
// bounded-queue backpressure.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"hammingmesh/internal/core"
	"hammingmesh/internal/sched"
)

// The experiment kinds hxd serves; each maps onto one runner.Pool entry
// point (or core.Cluster measurement).
const (
	KindAlltoallFlow   = "alltoall_flow"   // runner.Pool.AlltoallFlowShare
	KindAlltoallPacket = "alltoall_packet" // runner.Pool.AlltoallPacketShare
	KindPermutation    = "permutation"     // runner.Pool.PermutationSweepGBps
	KindAllreduce      = "allreduce"       // core.Cluster.AllreduceShare
	KindResilience     = "resilience"      // runner.Pool.ResilienceSweep
	KindSched          = "sched"           // runner.Pool.SchedSweep
)

// Kinds lists the supported experiment kinds.
func Kinds() []string {
	return []string{KindAlltoallFlow, KindAlltoallPacket, KindPermutation,
		KindAllreduce, KindResilience, KindSched}
}

// Request is the wire form of one experiment request (POST
// /v1/experiments). Zero values mean "use the default" — the
// canonicalizer fills them in, so an explicit default and an omitted
// field are the same request and hit the same cache entry. Fields that
// cannot influence the selected kind's result are inert and stripped
// during canonicalization.
type Request struct {
	// Kind selects the experiment (see Kinds). Required.
	Kind string `json:"kind"`
	// Topo is a Table II topology name (default hx2mesh).
	Topo string `json:"topo,omitempty"`
	// Size is the cluster size: tiny, small or large (default tiny).
	Size string `json:"size,omitempty"`
	// Bytes is the per-flow / per-peer transfer size for the
	// packet-level kinds (default 256 KiB).
	Bytes int64 `json:"bytes,omitempty"`
	// Shifts is the sampled alltoall shift-iteration count (default 8;
	// 4 for resilience points).
	Shifts int `json:"shifts,omitempty"`
	// Perms is the sampled permutation count (default 1).
	Perms int `json:"perms,omitempty"`
	// Seed drives every seeded draw of the experiment (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Credit switches the packet simulator to credit-based flow control.
	Credit bool `json:"credit,omitempty"`
	// Shards is accepted for CLI parity but inert: netsim.Result is
	// bit-identical for every shard count, so it is always stripped.
	Shards int `json:"shards,omitempty"`
	// Workers is accepted for CLI parity but inert: sweep results are
	// independent of the pool's worker count, so it is always stripped.
	Workers int `json:"workers,omitempty"`
	// FailLinks fails this fraction of cables (resilience: the sweep's
	// upper bound, default 0.2).
	FailLinks float64 `json:"fail_links,omitempty"`
	// FailBoards powers off whole boards (HxMesh families).
	FailBoards int `json:"fail_boards,omitempty"`
	// FailSeed seeds the fault samplers (default 1); inert unless the
	// request actually injects faults.
	FailSeed int64 `json:"fail_seed,omitempty"`
	// Trials is the seeded trial count per resilience/sched point
	// (default 3 / 2).
	Trials int `json:"trials,omitempty"`
	// Steps is the resilience sweep's point count (default 5).
	Steps int `json:"steps,omitempty"`
	// Jobs is the sched synthetic-trace length (default 120).
	Jobs int `json:"jobs,omitempty"`
	// HorizonH is the sched simulation horizon in hours (default 40).
	HorizonH float64 `json:"horizon_h,omitempty"`
	// MTBFs are the sched per-board MTBF values in hours, 0 = no
	// failures (default [0, 40]).
	MTBFs []float64 `json:"mtbfs,omitempty"`
	// CkptsH are the sched checkpoint intervals in hours (default [2]).
	CkptsH []float64 `json:"ckpts_h,omitempty"`
	// Policies are the sched placement policies (default [firstfit]).
	Policies []string `json:"policies,omitempty"`
	// Reserve enables EASY reservation backfill in sched runs.
	Reserve bool `json:"reserve,omitempty"`
	// Interference enables joint contention pricing in sched runs: jobs
	// are admitted and re-stretched at the slowdown a flow solve over the
	// shared upper-layer fat-trees assigns them.
	Interference bool `json:"interference,omitempty"`
	// Elastic enables malleable jobs in sched runs (shrunk admission,
	// regrow, failure trims; a fixed fraction of the synthetic trace is
	// marked elastic).
	Elastic bool `json:"elastic,omitempty"`
	// Preempt enables priority preemption in sched runs (a fixed fraction
	// of the synthetic trace gets elevated priority).
	Preempt bool `json:"preempt,omitempty"`
	// UpperPenalty scales the upper-layer crossing cost of the sched
	// slowdown model. A pointer so that an explicit 0 ("upper-layer
	// crossings are free") is distinguishable from an omitted field
	// (default 1): with a plain float64 the two marshal identically and
	// the off setting would be silently coerced to the default.
	UpperPenalty *float64 `json:"upper_penalty,omitempty"`
}

// Canon is the canonical form of a request: every meaningful field
// explicit, every inert field zero. Its JSON marshalling (field order
// below == sorted key order) is the preimage of the content address, and
// by the determinism contract equal Canon ⇒ bit-identical result.
type Canon struct {
	Bytes        int64     `json:"bytes"`
	CkptsH       []float64 `json:"ckpts_h,omitempty"`
	Credit       bool      `json:"credit"`
	Elastic      bool      `json:"elastic"`
	FailBoards   int       `json:"fail_boards"`
	FailLinks    float64   `json:"fail_links"`
	FailSeed     int64     `json:"fail_seed"`
	HorizonH     float64   `json:"horizon_h"`
	Interference bool      `json:"interference"`
	Jobs         int       `json:"jobs"`
	Kind         string    `json:"kind"`
	MTBFs        []float64 `json:"mtbfs,omitempty"`
	Perms        int       `json:"perms"`
	Policies     []string  `json:"policies,omitempty"`
	Preempt      bool      `json:"preempt"`
	Reserve      bool      `json:"reserve"`
	Seed         int64     `json:"seed"`
	Shifts       int       `json:"shifts"`
	Size         string    `json:"size"`
	Steps        int       `json:"steps"`
	Topo         string    `json:"topo"`
	Trials       int       `json:"trials"`
	UpperPenalty float64   `json:"upper_penalty"`
}

// CanonicalJSON is the canonical byte form: one JSON object, keys in
// sorted order, inert fields zeroed, defaults explicit.
func (c *Canon) CanonicalJSON() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		panic(fmt.Sprintf("serve: canonical marshal: %v", err)) // fixed struct, cannot fail
	}
	return b
}

// Key is the content address: the SHA-256 of the canonical JSON, hex
// encoded.
func (c *Canon) Key() string {
	sum := sha256.Sum256(c.CanonicalJSON())
	return hex.EncodeToString(sum[:])
}

// DefaultBytes is the per-flow transfer size filled in for packet-level
// kinds when the request leaves Bytes at zero.
const DefaultBytes = 256 << 10

// schedTopos are the topologies with a board allocator (the sched kind's
// prerequisite).
var schedTopos = map[string]bool{"hx2mesh": true, "hx4mesh": true, "hyperx": true}

// Canonicalize validates a request and normalizes it into its canonical
// form: defaults filled, inert options stripped. Two semantically equal
// requests — reordered JSON keys, explicit-vs-default values, zero-valued
// inert options — canonicalize identically and therefore share a content
// address; any meaningful difference changes it.
func Canonicalize(r Request) (*Canon, error) {
	c := &Canon{Kind: r.Kind, Topo: r.Topo, Size: r.Size}
	switch r.Kind {
	case KindAlltoallFlow, KindAlltoallPacket, KindPermutation, KindAllreduce, KindResilience, KindSched:
	case "":
		return nil, fmt.Errorf("serve: missing kind (choose from %v)", Kinds())
	default:
		return nil, fmt.Errorf("serve: unknown kind %q (choose from %v)", r.Kind, Kinds())
	}
	if c.Topo == "" {
		c.Topo = "hx2mesh"
	}
	validTopo := false
	for _, n := range core.TopologyNames() {
		if n == c.Topo {
			validTopo = true
		}
	}
	if !validTopo {
		return nil, fmt.Errorf("serve: unknown topo %q (choose from %v)", c.Topo, core.TopologyNames())
	}
	if c.Size == "" {
		c.Size = string(core.Tiny)
	}
	switch core.ClusterSize(c.Size) {
	case core.Tiny, core.Small, core.Large:
	default:
		return nil, fmt.Errorf("serve: unknown size %q (tiny|small|large)", c.Size)
	}
	for name, v := range map[string]float64{
		"bytes": float64(r.Bytes), "shifts": float64(r.Shifts), "perms": float64(r.Perms),
		"fail_links": r.FailLinks, "fail_boards": float64(r.FailBoards),
		"trials": float64(r.Trials), "steps": float64(r.Steps),
		"jobs": float64(r.Jobs), "horizon_h": r.HorizonH,
	} {
		if v < 0 {
			return nil, fmt.Errorf("serve: negative %s", name)
		}
	}
	if r.FailLinks >= 1 {
		return nil, fmt.Errorf("serve: fail_links %v must be < 1", r.FailLinks)
	}
	seed := r.Seed
	if seed == 0 {
		seed = 1
	}
	failSeed := r.FailSeed
	if failSeed == 0 {
		failSeed = 1
	}

	// Faults compose with every network-level kind; the sampler seed is
	// inert while nothing is injected.
	faulted := r.FailLinks > 0 || r.FailBoards > 0
	setFaults := func() error {
		if r.FailBoards > 0 && !schedTopos[c.Topo] {
			return fmt.Errorf("serve: fail_boards needs an HxMesh-family topo, got %q", c.Topo)
		}
		c.FailLinks = r.FailLinks
		c.FailBoards = r.FailBoards
		if faulted {
			c.FailSeed = failSeed
		}
		return nil
	}

	switch r.Kind {
	case KindAlltoallFlow:
		c.Seed = seed
		c.Shifts = defInt(r.Shifts, 8)
		if err := setFaults(); err != nil {
			return nil, err
		}
	case KindAlltoallPacket:
		c.Seed = seed
		c.Shifts = defInt(r.Shifts, 8)
		c.Bytes = defInt64(r.Bytes, DefaultBytes)
		c.Credit = r.Credit
		if err := setFaults(); err != nil {
			return nil, err
		}
	case KindPermutation:
		c.Seed = seed
		c.Perms = defInt(r.Perms, 1)
		c.Bytes = defInt64(r.Bytes, DefaultBytes)
		c.Credit = r.Credit
		if err := setFaults(); err != nil {
			return nil, err
		}
	case KindAllreduce:
		// The ring-allreduce measurement draws nothing from the seed —
		// it is inert and stripped.
		c.Bytes = defInt64(r.Bytes, DefaultBytes)
		if err := setFaults(); err != nil {
			return nil, err
		}
	case KindResilience:
		c.Seed = seed
		c.FailSeed = failSeed
		c.Shifts = defInt(r.Shifts, 4)
		c.Bytes = defInt64(r.Bytes, DefaultBytes)
		c.Credit = r.Credit
		c.Trials = defInt(r.Trials, 3)
		c.Steps = defInt(r.Steps, 5)
		c.FailLinks = r.FailLinks
		if c.FailLinks == 0 {
			c.FailLinks = 0.2 // the sweep's upper bound, as in hxsim
		}
		c.FailBoards = r.FailBoards
		if c.FailBoards > 0 && !schedTopos[c.Topo] {
			return nil, fmt.Errorf("serve: fail_boards needs an HxMesh-family topo, got %q", c.Topo)
		}
	case KindSched:
		if !schedTopos[c.Topo] {
			return nil, fmt.Errorf("serve: sched needs a board-allocator topo (hx2mesh|hx4mesh|hyperx), got %q", c.Topo)
		}
		c.Seed = seed
		c.Jobs = defInt(r.Jobs, 120)
		c.HorizonH = r.HorizonH
		if c.HorizonH == 0 {
			c.HorizonH = 40
		}
		c.Trials = defInt(r.Trials, 2)
		c.Reserve = r.Reserve
		c.MTBFs = append([]float64(nil), r.MTBFs...)
		if len(c.MTBFs) == 0 {
			c.MTBFs = []float64{0, 40}
		}
		for _, m := range c.MTBFs {
			if m < 0 {
				return nil, fmt.Errorf("serve: negative MTBF %v", m)
			}
		}
		c.CkptsH = append([]float64(nil), r.CkptsH...)
		if len(c.CkptsH) == 0 {
			c.CkptsH = []float64{2}
		}
		for _, k := range c.CkptsH {
			if k < 0 {
				return nil, fmt.Errorf("serve: negative checkpoint interval %v", k)
			}
		}
		c.Policies = append([]string(nil), r.Policies...)
		if len(c.Policies) == 0 {
			c.Policies = []string{string(sched.FirstFit)}
		}
		for _, p := range c.Policies {
			if _, err := sched.ParsePolicy(p); err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
		}
		c.Interference = r.Interference
		c.Elastic = r.Elastic
		c.Preempt = r.Preempt
		// Omitted means the model default; an explicit 0 is the meaningful
		// "upper-layer crossings are free" setting and must survive
		// canonicalization as 0, not be coerced back to 1.
		c.UpperPenalty = 1
		if r.UpperPenalty != nil {
			if *r.UpperPenalty < 0 {
				return nil, fmt.Errorf("serve: negative upper_penalty %v", *r.UpperPenalty)
			}
			c.UpperPenalty = *r.UpperPenalty
		}
	}
	return c, nil
}

func defInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defInt64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}
