// Package collective implements the communication patterns and collective
// algorithms of §V-A: pipelined rings (unidirectional and bidirectional),
// two edge-disjoint Hamiltonian rings for four-NIC planes (Appendix D,
// after Bae et al.), the 2D-torus allreduce (reduce-scatter / allreduce /
// allgather), balanced-shift alltoall, and alpha-beta schedule models that
// reproduce the message-size sweeps of Figs. 11, 13 and 17.
package collective

import "fmt"

// Coord is a (row, col) position on an r×c torus.
type Coord struct{ Row, Col int }

// DisjointHamiltonianRings returns two edge-disjoint Hamiltonian cycles on
// an r×c torus, each as a sequence of coordinates (closing edge implied
// from last back to first). The construction follows the existence
// condition of Bae et al. used by the paper (Appendix D): r = c·k with
// gcd(r, c−1) = 1; when instead c = r·k with gcd(c, r−1) = 1 the transposed
// construction is used.
//
// Ring one visits row x1 in column order (x0 − x1) mod c, which chains rows
// through one vertical edge per row boundary; ring two is the traversal of
// the remaining 2-regular subgraph, which under the condition above is a
// single Hamiltonian cycle (verified, and checked at runtime).
func DisjointHamiltonianRings(r, c int) ([]Coord, []Coord, error) {
	if r < 3 || c < 3 {
		// A 2-wide torus has parallel edges; the disjoint-ring construction
		// below assumes simple edges, so require both dimensions ≥ 3.
		return nil, nil, fmt.Errorf("collective: torus %dx%d too small for disjoint rings (need ≥3 per dimension)", r, c)
	}
	if r%c == 0 && gcd(r, c-1) == 1 {
		return disjointRings(r, c, false)
	}
	if c%r == 0 && gcd(c, r-1) == 1 {
		r1, r2, err := disjointRings(c, r, false)
		if err != nil {
			return nil, nil, err
		}
		return transpose(r1), transpose(r2), nil
	}
	return nil, nil, fmt.Errorf("collective: no disjoint Hamiltonian rings for %dx%d (need r=c·k with gcd(r,c-1)=1)", r, c)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func transpose(ring []Coord) []Coord {
	out := make([]Coord, len(ring))
	for i, p := range ring {
		out[i] = Coord{Row: p.Col, Col: p.Row}
	}
	return out
}

func disjointRings(r, c int, _ bool) ([]Coord, []Coord, error) {
	n := r * c
	// Ring one: row-major with per-row column offset −x1 (mod c). Within a
	// row, consecutive nodes are column neighbors; between rows the last
	// node of row x1 and the first of row x1+1 share column (c−1−x1) mod c.
	ring1 := make([]Coord, 0, n)
	for x := 0; x < n; x++ {
		x1, x0 := x/c, x%c
		ring1 = append(ring1, Coord{Row: x1, Col: mod(x0-x1, c)})
	}
	// Collect ring-one edges.
	used := make(map[edge]bool, n)
	for i := 0; i < n; i++ {
		used[normEdge(ring1[i], ring1[(i+1)%n], r, c)] = true
	}
	// Remaining 2-regular graph: traverse it from (0,0).
	ring2 := make([]Coord, 0, n)
	visited := make(map[Coord]bool, n)
	at := Coord{0, 0}
	var prev Coord
	havePrev := false
	for len(ring2) < n {
		ring2 = append(ring2, at)
		visited[at] = true
		next, ok := nextFree(at, prev, havePrev, used, visited, r, c)
		if !ok {
			if len(ring2) == n {
				break
			}
			return nil, nil, fmt.Errorf("collective: leftover subgraph of %dx%d is not a single cycle (stuck after %d nodes)", r, c, len(ring2))
		}
		prev, at, havePrev = at, next, true
	}
	// Closing edge of ring two must exist and be unused by ring one.
	if !adjacent(ring2[n-1], ring2[0], r, c) || used[normEdge(ring2[n-1], ring2[0], r, c)] {
		return nil, nil, fmt.Errorf("collective: leftover traversal of %dx%d does not close a cycle", r, c)
	}
	return ring1, ring2, nil
}

func mod(a, m int) int { return ((a % m) + m) % m }

type edge struct{ a, b Coord }

func normEdge(p, q Coord, r, c int) edge {
	if p.Row > q.Row || (p.Row == q.Row && p.Col > q.Col) {
		p, q = q, p
	}
	_ = r
	_ = c
	return edge{p, q}
}

func adjacent(p, q Coord, r, c int) bool {
	dr := mod(p.Row-q.Row, r)
	dc := mod(p.Col-q.Col, c)
	rowNeighbor := dc == 0 && dr != 0 && (dr == 1 || dr == r-1)
	colNeighbor := dr == 0 && dc != 0 && (dc == 1 || dc == c-1)
	return rowNeighbor || colNeighbor
}

// nextFree finds the unvisited torus neighbor of at reachable over an edge
// unused by ring one (allowing return to the start point only implicitly
// through the closing check).
func nextFree(at, prev Coord, havePrev bool, used map[edge]bool, visited map[Coord]bool, r, c int) (Coord, bool) {
	cands := [4]Coord{
		{mod(at.Row+1, r), at.Col},
		{mod(at.Row-1, r), at.Col},
		{at.Row, mod(at.Col+1, c)},
		{at.Row, mod(at.Col-1, c)},
	}
	for _, q := range cands {
		if havePrev && q == prev {
			continue
		}
		if visited[q] {
			continue
		}
		if used[normEdge(at, q, r, c)] {
			continue
		}
		return q, true
	}
	return Coord{}, false
}

// VerifyDisjointHamiltonian checks that two rings are Hamiltonian cycles on
// the r×c torus and edge-disjoint; it returns a descriptive error
// otherwise. Exposed for tests and as a safety net for users embedding
// rings on custom shapes.
func VerifyDisjointHamiltonian(ring1, ring2 []Coord, r, c int) error {
	n := r * c
	edges := make(map[edge]int, 2*n)
	for ri, ring := range [][]Coord{ring1, ring2} {
		if len(ring) != n {
			return fmt.Errorf("ring %d has %d nodes, want %d", ri+1, len(ring), n)
		}
		seen := make(map[Coord]bool, n)
		for i, p := range ring {
			if p.Row < 0 || p.Row >= r || p.Col < 0 || p.Col >= c {
				return fmt.Errorf("ring %d node %v out of range", ri+1, p)
			}
			if seen[p] {
				return fmt.Errorf("ring %d visits %v twice", ri+1, p)
			}
			seen[p] = true
			q := ring[(i+1)%n]
			if !adjacent(p, q, r, c) {
				return fmt.Errorf("ring %d: %v and %v not torus neighbors", ri+1, p, q)
			}
			edges[normEdge(p, q, r, c)]++
		}
	}
	for e, cnt := range edges {
		if cnt > 1 {
			return fmt.Errorf("edge %v-%v used by both rings", e.a, e.b)
		}
	}
	return nil
}
