package collective

import (
	"math"
	"testing"
	"testing/quick"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

func TestAllreduceAsymptoticBandwidths(t *testing.T) {
	pr := DefaultParams()
	p := 1024
	huge := 1e12 // bytes, to reach the asymptote
	// Two rings reach the optimum: NICs/(2β) = 100 GB/s.
	bw := AllreduceBandwidth(huge, TwoRingsAllreduceTime(p, huge, pr))
	if math.Abs(bw-OptimalAllreduceBandwidth(pr)) > 1 {
		t.Errorf("two-rings asymptotic bw = %.1f, want ≈%.1f", bw, OptimalAllreduceBandwidth(pr))
	}
	// Unidirectional ring on one NIC reaches 1/(2β) = 25 GB/s.
	bw = AllreduceBandwidth(huge, RingAllreduceTime(p, huge, pr))
	if math.Abs(bw-25) > 0.5 {
		t.Errorf("ring asymptotic bw = %.1f, want 25", bw)
	}
	// Bidirectional ring doubles it.
	bw = AllreduceBandwidth(huge, BidirRingAllreduceTime(p, huge, pr))
	if math.Abs(bw-50) > 0.5 {
		t.Errorf("bidir ring asymptotic bw = %.1f, want 50", bw)
	}
}

func TestTorusAlgorithmWinsAtSmallSizes(t *testing.T) {
	// Fig. 13: the torus algorithm achieves higher throughput at smaller
	// message sizes (latency √p vs p); rings win for large messages.
	pr := DefaultParams()
	p := 4096
	small := float64(64 << 10)
	large := 1.0e9
	tSmallTorus := Torus2DAllreduceTime(p, small, pr)
	tSmallRings := TwoRingsAllreduceTime(p, small, pr)
	if tSmallTorus >= tSmallRings {
		t.Errorf("small msg: torus %.0f ns not faster than rings %.0f ns", tSmallTorus, tSmallRings)
	}
	tLargeTorus := Torus2DAllreduceTime(p, large, pr)
	tLargeRings := TwoRingsAllreduceTime(p, large, pr)
	if tLargeRings >= tLargeTorus {
		t.Errorf("large msg: rings %.0f ns not faster than torus %.0f ns", tLargeRings, tLargeTorus)
	}
}

func TestBestAllreduceSelection(t *testing.T) {
	pr := DefaultParams()
	p := 4096
	if a, _ := BestAllreduce(p, 1<<10, pr); a != AlgoTree {
		t.Errorf("1 KiB best = %v, want tree", a)
	}
	if a, _ := BestAllreduce(p, 1<<30, pr); a != AlgoTwoRings {
		t.Errorf("1 GiB best = %v, want two rings", a)
	}
}

func TestAllreduceTimeMonotonicInSize(t *testing.T) {
	pr := DefaultParams()
	f := func(p8 uint8, s uint32) bool {
		p := int(p8)%1000 + 4
		b := float64(s%(1<<20)) + 1
		for _, a := range []AllreduceAlgorithm{AlgoRing, AlgoBidirRing, AlgoTwoRings, AlgoTorus2D, AlgoTree} {
			if AllreduceTime(a, p, 2*b, pr) < AllreduceTime(a, p, b, pr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAlltoallBandwidthSaturates(t *testing.T) {
	pr := DefaultParams()
	share := 0.25
	bwSmall := AlltoallBandwidth(1024, 1<<10, share, pr)
	bwLarge := AlltoallBandwidth(1024, 16<<20, share, pr)
	sat := float64(pr.NICs) / pr.BetaNSPerByte * share // 50 GB/s for Hx2
	if bwLarge < 0.9*sat || bwLarge > sat {
		t.Errorf("large-message alltoall bw = %.1f, want ≈%.1f", bwLarge, sat)
	}
	if bwSmall >= bwLarge {
		t.Errorf("alltoall bw not increasing with message size: %.1f ≥ %.1f", bwSmall, bwLarge)
	}
}

func TestScaleBetaByShare(t *testing.T) {
	pr := DefaultParams()
	d := ScaleBetaByShare(pr, 0.5)
	if math.Abs(d.BetaNSPerByte-2*pr.BetaNSPerByte) > 1e-12 {
		t.Errorf("derated beta = %f, want doubled", d.BetaNSPerByte)
	}
	if got := ScaleBetaByShare(pr, 0); got != pr {
		t.Error("invalid share must leave params unchanged")
	}
}

func TestTwoRingsOnHxMeshMapping(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	r1, r2, err := TwoRingsOnHxMesh(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != h.NumEndpoints() || len(r2) != h.NumEndpoints() {
		t.Fatalf("ring lengths %d/%d, want %d", len(r1), len(r2), h.NumEndpoints())
	}
	// Every consecutive pair must be within 3 links (accel-switch-accel at
	// most, or 1 on-board link).
	tab := routing.NewTableNet(h.Network)
	dist := func(a, b topo.NodeID) int { return tab.PathLen(a, b) }
	if got := RingLinkStress(dist, r1); got > 3 {
		t.Errorf("ring1 max edge distance = %d, want ≤3", got)
	}
	if got := RingLinkStress(dist, r2); got > 3 {
		t.Errorf("ring2 max edge distance = %d, want ≤3", got)
	}
}

func TestMeasuredAllreduceShareHxMesh(t *testing.T) {
	// Table II reports allreduce at ≈98% of optimum for the small
	// Hx2Mesh; our small instance should comfortably exceed 80%.
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	r1, r2, err := TwoRingsOnHxMesh(h)
	if err != nil {
		t.Fatal(err)
	}
	share, err := MeasureAllreduceShare(simcore.Of(h.Network), nil, [][]topo.NodeID{r1, r2}, 256<<10, netsim.DefaultConfig(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.8 || share > 1.01 {
		t.Errorf("allreduce share = %.3f, want ≈0.98", share)
	}
}

func TestMeasuredAllreduceShareTorus(t *testing.T) {
	n := topo.NewTorus2D(8, 8, 2, 2, topo.DefaultLinkParams())
	r1, r2, err := TwoRingsOnTorus(n, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	share, err := MeasureAllreduceShare(simcore.Of(n), nil, [][]topo.NodeID{r1, r2}, 256<<10, netsim.DefaultConfig(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.8 || share > 1.01 {
		t.Errorf("torus allreduce share = %.3f, want ≈0.98 (rings on disjoint cycles)", share)
	}
}

func TestSnakeRingCoversGrid(t *testing.T) {
	ring := SnakeRing(5, 4)
	if len(ring) != 20 {
		t.Fatalf("snake length %d", len(ring))
	}
	seen := map[Coord]bool{}
	for _, p := range ring {
		if seen[p] {
			t.Fatalf("snake revisits %v", p)
		}
		seen[p] = true
	}
}

func TestOtherCollectives(t *testing.T) {
	pr := DefaultParams()
	p := 1024
	huge := 1e12
	// Broadcast/allgather/reduce-scatter asymptote: NICs/beta... a single
	// traversal per byte: 200 GB/s at 4 NICs.
	for name, f := range map[string]func(int, float64, Params) float64{
		"broadcast": BroadcastTime, "reduce-scatter": ReduceScatterTime, "allgather": AllgatherTime,
	} {
		bw := huge / f(p, huge, pr)
		if bw < 190 || bw > 205 {
			t.Errorf("%s asymptotic bw = %.1f GB/s, want ≈200", name, bw)
		}
	}
	if bt := BarrierTime(1024, pr); bt != 10*pr.AlphaNS {
		t.Errorf("barrier time = %f, want 10 rounds", bt)
	}
	if BarrierTime(1, pr) != 0 {
		t.Error("single-process barrier must be free")
	}
	if pt := PipelineStageTime(1<<20, pr); pt <= pr.AlphaNS {
		t.Error("pipeline stage time implausible")
	}
}
