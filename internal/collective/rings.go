package collective

import (
	"fmt"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// MapRing converts torus coordinates to node ids through an accessor.
func MapRing(ring []Coord, at func(row, col int) topo.NodeID) []topo.NodeID {
	out := make([]topo.NodeID, len(ring))
	for i, p := range ring {
		out[i] = at(p.Row, p.Col)
	}
	return out
}

// TwoRingsOnHxMesh returns the two edge-disjoint Hamiltonian rings over
// all accelerators of an HxMesh plane (rows = gy, cols = gx). The HxMesh
// behaves as a torus with extra links (Appendix D footnote): on-board mesh
// edges are direct, and edges between boards — including the wrap-around —
// traverse the dimension networks.
func TwoRingsOnHxMesh(h *topo.HxMesh) ([]topo.NodeID, []topo.NodeID, error) {
	rows := h.Cfg.Y * h.Cfg.B
	cols := h.Cfg.X * h.Cfg.A
	r1, r2, err := DisjointHamiltonianRings(rows, cols)
	if err != nil {
		return nil, nil, err
	}
	at := func(row, col int) topo.NodeID { return h.Accel(col, row) }
	return MapRing(r1, at), MapRing(r2, at), nil
}

// TwoRingsOnTorus returns the rings over a torus network built by
// topo.NewTorus2D with width w and height hgt.
func TwoRingsOnTorus(n *topo.Network, w, hgt int) ([]topo.NodeID, []topo.NodeID, error) {
	if w*hgt != n.NumEndpoints() {
		return nil, nil, fmt.Errorf("collective: torus %dx%d mismatches %d endpoints", w, hgt, n.NumEndpoints())
	}
	r1, r2, err := DisjointHamiltonianRings(hgt, w)
	if err != nil {
		return nil, nil, err
	}
	at := func(row, col int) topo.NodeID { return n.Endpoints[row*w+col] }
	return MapRing(r1, at), MapRing(r2, at), nil
}

// SnakeRing builds a single Hamiltonian cycle over a w×h grid by
// boustrophedon traversal (used for fat tree and Dragonfly "ring"
// algorithm mappings where all links go through switches anyway, and for
// grids that do not satisfy the disjoint-ring condition). h must be even
// for the closing column to be free on a mesh; on switched topologies any
// ordering is a valid ring, so the cycle is always returned.
func SnakeRing(w, h int) []Coord {
	out := make([]Coord, 0, w*h)
	for row := 0; row < h; row++ {
		if row%2 == 0 {
			for col := 0; col < w; col++ {
				out = append(out, Coord{row, col})
			}
		} else {
			for col := w - 1; col >= 0; col-- {
				out = append(out, Coord{row, col})
			}
		}
	}
	return out
}

// EndpointOrderRing returns all endpoints of a network in rank order as a
// logical ring (the natural mapping on fat trees and Dragonfly).
func EndpointOrderRing(n *topo.Network) []topo.NodeID {
	out := make([]topo.NodeID, len(n.Endpoints))
	copy(out, n.Endpoints)
	return out
}

// MeasureAllreduceShare runs the steady-state neighbor-exchange traffic of
// the given rings (bidirectional) through the packet simulator and returns
// the achieved allreduce bandwidth as a share of the theoretical optimum
// (half the plane injection bandwidth). Ring algorithms send 2S bytes per
// node for an S-byte allreduce at optimum inj/2 bandwidth, so the share
// equals perNodeSendGBps / injGBps. Passing the cluster's shared routing
// table (may be nil) avoids rebuilding distance vectors across repeated
// measurements.
func MeasureAllreduceShare(c *simcore.Compiled, table *routing.Table, rings [][]topo.NodeID, bytesPerFlow int64, cfg netsim.Config, injGBps float64) (float64, error) {
	var flows []netsim.Flow
	for _, ring := range rings {
		flows = append(flows, netsim.RingNeighborFlows(ring, bytesPerFlow, true)...)
	}
	if len(flows) == 0 {
		return 0, fmt.Errorf("collective: no rings given")
	}
	res, err := netsim.New(c, table, cfg).Run(flows)
	if err != nil {
		return 0, err
	}
	if res.Deadlocked {
		return 0, fmt.Errorf("collective: simulation deadlocked")
	}
	p := len(rings[0])
	perNodeSend := float64(res.TotalBytes) / float64(p) / res.Makespan // GB/s
	return perNodeSend / injGBps, nil
}

// RingLinkStress verifies that a ring maps to physically sensible hops:
// it returns the maximum shortest-path distance (in links) between
// consecutive ring members. On an HxMesh every ring edge should traverse
// at most 3 links (accel → switch/tree → accel); on a torus exactly 1.
func RingLinkStress(dist func(a, b topo.NodeID) int, ring []topo.NodeID) int {
	max := 0
	for i := range ring {
		d := dist(ring[i], ring[(i+1)%len(ring)])
		if d > max {
			max = d
		}
	}
	return max
}
