package collective

import (
	"fmt"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// SimResult is the outcome of a message-level collective simulation.
type SimResult struct {
	TimeNS       float64 // total collective time
	Rounds       int     // communication rounds executed
	BytesPerNode int64   // bytes sent per participant
}

// BandwidthGBps is the algorithm bandwidth (input size / time).
func (r SimResult) BandwidthGBps(totalBytes int64) float64 {
	if r.TimeNS <= 0 {
		return 0
	}
	return float64(totalBytes) / r.TimeNS
}

// roundRunner executes rounds of flows on a shared simulator, summing the
// bulk-synchronous makespans. This models the paper's eager-protocol
// collectives at message granularity: each pipelined-ring round exchanges
// one segment per neighbor pair, and a round completes when its slowest
// message is delivered (no cross-round pipelining, which makes the result
// a slight upper bound on the fully pipelined schedule).
type roundRunner struct {
	comp       *simcore.Compiled
	table      *routing.Table // shared across rounds (BFS/DAG computed once)
	cfg        netsim.Config
	time       float64
	round      int
	sentByRank []int64 // bytes sent per endpoint rank
}

func newRoundRunner(c *simcore.Compiled, cfg netsim.Config) *roundRunner {
	return &roundRunner{
		comp: c, table: routing.NewTable(c), cfg: cfg,
		sentByRank: make([]int64, c.NumEndpoints()),
	}
}

func (rr *roundRunner) run(flows []netsim.Flow) error {
	if len(flows) == 0 {
		return nil
	}
	res, err := netsim.New(rr.comp, rr.table, rr.cfg).Run(flows)
	if err != nil {
		return err
	}
	if res.Deadlocked {
		return fmt.Errorf("collective: round %d deadlocked", rr.round)
	}
	rr.time += res.Makespan
	rr.round++
	for _, f := range flows {
		rr.sentByRank[rr.comp.RankOf[f.Src]] += f.Bytes
	}
	return nil
}

func (rr *roundRunner) result() SimResult {
	var maxSent int64
	for _, b := range rr.sentByRank {
		if b > maxSent {
			maxSent = b
		}
	}
	return SimResult{TimeNS: rr.time, Rounds: rr.round, BytesPerNode: maxSent}
}

// SimulateRingAllreduce runs a pipelined ring allreduce of totalBytes per
// node through the packet simulator, round by round: a reduce-scatter
// epoch of p−1 rounds followed by an allgather epoch of p−1 rounds, each
// round sending one segment to the ring successor (§V-A2b). With
// bidirectional set, the data is split in half and both directions run
// concurrently in every round.
func SimulateRingAllreduce(c *simcore.Compiled, ring []topo.NodeID, totalBytes int64, bidirectional bool, cfg netsim.Config) (SimResult, error) {
	p := len(ring)
	if p < 3 {
		return SimResult{}, fmt.Errorf("collective: ring of %d too small", p)
	}
	seg := totalBytes / int64(p)
	if seg <= 0 {
		seg = 1
	}
	if bidirectional {
		seg = (seg + 1) / 2
	}
	rr := newRoundRunner(c, cfg)
	for epoch := 0; epoch < 2; epoch++ {
		for round := 0; round < p-1; round++ {
			flows := make([]netsim.Flow, 0, 2*p)
			for i := 0; i < p; i++ {
				flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i+1)%p], Bytes: seg})
				if bidirectional {
					flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i-1+p)%p], Bytes: seg})
				}
			}
			if err := rr.run(flows); err != nil {
				return SimResult{}, err
			}
		}
	}
	return rr.result(), nil
}

// SimulateTwoRingsAllreduce runs the four-interface variant: two
// bidirectional pipelined rings on the edge-disjoint Hamiltonian cycles,
// each reducing half of the data (§V-A2b). Rounds of both rings execute
// concurrently in the same simulation.
func SimulateTwoRingsAllreduce(c *simcore.Compiled, ring1, ring2 []topo.NodeID, totalBytes int64, cfg netsim.Config) (SimResult, error) {
	p := len(ring1)
	if len(ring2) != p || p < 3 {
		return SimResult{}, fmt.Errorf("collective: rings must have equal size ≥ 3")
	}
	// Per ring: S/2 bytes, bidirectional: S/4 per direction, segments of
	// S/(4p).
	seg := totalBytes / int64(4*p)
	if seg <= 0 {
		seg = 1
	}
	rr := newRoundRunner(c, cfg)
	for epoch := 0; epoch < 2; epoch++ {
		for round := 0; round < p-1; round++ {
			flows := make([]netsim.Flow, 0, 4*p)
			for _, ring := range [][]topo.NodeID{ring1, ring2} {
				for i := 0; i < p; i++ {
					flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i+1)%p], Bytes: seg})
					flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i-1+p)%p], Bytes: seg})
				}
			}
			if err := rr.run(flows); err != nil {
				return SimResult{}, err
			}
		}
	}
	return rr.result(), nil
}

// SimulateTorusAllreduce runs the 2D algorithm of §V-A2c on an HxMesh
// accelerator grid: reduce-scatter along rows, allreduce along columns on
// the reduced chunk, allgather along rows. The two transposed parallel
// instances are approximated by a single instance on half the data per
// §V-A2c's accounting (both instances share the simulated plane).
func SimulateTorusAllreduce(h *topo.HxMesh, totalBytes int64, cfg netsim.Config) (SimResult, error) {
	rows := h.Cfg.Y * h.Cfg.B
	cols := h.Cfg.X * h.Cfg.A
	if rows < 3 || cols < 3 {
		return SimResult{}, fmt.Errorf("collective: grid %dx%d too small", rows, cols)
	}
	half := totalBytes / 2
	rr := newRoundRunner(simcore.Compile(h.Network), cfg)

	rowRing := func(r int) []topo.NodeID {
		ring := make([]topo.NodeID, cols)
		for c := 0; c < cols; c++ {
			ring[c] = h.Accel(c, r)
		}
		return ring
	}
	colRing := func(c int) []topo.NodeID {
		ring := make([]topo.NodeID, rows)
		for r := 0; r < rows; r++ {
			ring[r] = h.Accel(c, r)
		}
		return ring
	}
	ringRounds := func(rings [][]topo.NodeID, seg int64, rounds int, bidir bool) error {
		if seg <= 0 {
			seg = 1
		}
		for round := 0; round < rounds; round++ {
			var flows []netsim.Flow
			for _, ring := range rings {
				p := len(ring)
				for i := 0; i < p; i++ {
					flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i+1)%p], Bytes: seg})
					if bidir {
						flows = append(flows, netsim.Flow{Src: ring[i], Dst: ring[(i-1+p)%p], Bytes: seg})
					}
				}
			}
			if err := rr.run(flows); err != nil {
				return err
			}
		}
		return nil
	}

	allRows := make([][]topo.NodeID, rows)
	for r := 0; r < rows; r++ {
		allRows[r] = rowRing(r)
	}
	allCols := make([][]topo.NodeID, cols)
	for c := 0; c < cols; c++ {
		allCols[c] = colRing(c)
	}
	// Phase 1: reduce-scatter along rows — p−1 rounds of S/(2·cols) each
	// direction (bidirectional halves the segment again).
	if err := ringRounds(allRows, half/int64(2*cols), cols-1, true); err != nil {
		return SimResult{}, err
	}
	// Phase 2: ring allreduce along columns on the reduced chunk
	// (S/(2·cols) per node): 2(rows−1) rounds.
	chunk := half / int64(cols)
	if err := ringRounds(allCols, chunk/int64(2*rows), 2*(rows-1), true); err != nil {
		return SimResult{}, err
	}
	// Phase 3: allgather along rows, mirroring phase 1.
	if err := ringRounds(allRows, half/int64(2*cols), cols-1, true); err != nil {
		return SimResult{}, err
	}
	return rr.result(), nil
}

// SimulateAlltoall runs the balanced-shift alltoall (§V-A1a) at message
// granularity: p−1 shift rounds of bytesPerPeer each.
func SimulateAlltoall(c *simcore.Compiled, bytesPerPeer int64, maxRounds int, cfg netsim.Config) (SimResult, error) {
	p := c.NumEndpoints()
	if p < 2 {
		return SimResult{}, fmt.Errorf("collective: need ≥2 endpoints")
	}
	rounds := p - 1
	scale := 1.0
	if maxRounds > 0 && maxRounds < rounds {
		// Sample evenly spaced shifts and scale the total time.
		scale = float64(rounds) / float64(maxRounds)
		rounds = maxRounds
	}
	rr := newRoundRunner(c, cfg)
	for k := 1; k <= rounds; k++ {
		shift := k
		if scale > 1 {
			shift = 1 + (k-1)*(p-1)/rounds
		}
		if err := rr.run(netsim.ShiftFlows(c.Endpoints, shift, bytesPerPeer)); err != nil {
			return SimResult{}, err
		}
	}
	res := rr.result()
	res.TimeNS *= scale
	return res, nil
}
