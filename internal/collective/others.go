package collective

import "math"

// Additional collectives (§V-A2d: "Broadcast and other collectives can be
// implemented similarly [to the allreduce] and follow similar tradeoffs").
// All models share the Params alpha-beta convention.

// BroadcastTime is a pipelined ring broadcast: the root streams segments
// around the ring(s), p−1 rounds, each byte traversing each link once —
// one epoch of the allreduce: T ≈ pα + Sβ/NICs, with the data split over
// the disjoint rings and directions when multiple interfaces exist.
func BroadcastTime(p int, bytes float64, pr Params) float64 {
	n := float64(pr.NICs)
	if n < 1 {
		n = 1
	}
	return float64(p)*pr.AlphaNS + bytes*pr.BetaNSPerByte/n
}

// ReduceScatterTime is the first epoch of the ring allreduce: p−1 rounds,
// each node ends with one fully reduced segment: T ≈ pα + Sβ/NICs.
func ReduceScatterTime(p int, bytes float64, pr Params) float64 {
	n := float64(pr.NICs)
	if n < 1 {
		n = 1
	}
	return float64(p)*pr.AlphaNS + bytes*pr.BetaNSPerByte/n
}

// AllgatherTime mirrors ReduceScatterTime (the second epoch).
func AllgatherTime(p int, bytes float64, pr Params) float64 {
	return ReduceScatterTime(p, bytes, pr)
}

// BarrierTime is a dissemination barrier: ⌈log2 p⌉ rounds of α.
func BarrierTime(p int, pr Params) float64 {
	if p <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(p))) * pr.AlphaNS
}

// PipelineStageTime is the per-microbatch nearest-neighbor transfer of
// pipeline parallelism (Fig. 14): volume over one interface plus a round
// latency; fully overlappable with compute in steady state.
func PipelineStageTime(bytes float64, pr Params) float64 {
	return pr.AlphaNS + bytes*pr.BetaNSPerByte
}
