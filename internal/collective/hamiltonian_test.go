package collective

import (
	"testing"
	"testing/quick"
)

func TestDisjointRingsFig16Sizes(t *testing.T) {
	// The paper shows the construction for 4x4, 8x4, 9x3 and 16x8 tori
	// (Fig. 16).
	for _, s := range []struct{ r, c int }{{4, 4}, {8, 4}, {9, 3}, {16, 8}} {
		r1, r2, err := DisjointHamiltonianRings(s.r, s.c)
		if err != nil {
			t.Errorf("%dx%d: %v", s.r, s.c, err)
			continue
		}
		if err := VerifyDisjointHamiltonian(r1, r2, s.r, s.c); err != nil {
			t.Errorf("%dx%d: %v", s.r, s.c, err)
		}
	}
}

func TestDisjointRingsTransposed(t *testing.T) {
	// 4x8 satisfies the transposed condition (c = r·k).
	r1, r2, err := DisjointHamiltonianRings(4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyDisjointHamiltonian(r1, r2, 4, 8); err != nil {
		t.Error(err)
	}
}

func TestDisjointRingsSquareAlwaysWork(t *testing.T) {
	// Any n×n torus with n ≥ 3 satisfies r = c·1 and gcd(n, n−1) = 1, so the
	// construction must always succeed (HxMesh job grids are often square).
	for n := 3; n <= 20; n++ {
		r1, r2, err := DisjointHamiltonianRings(n, n)
		if err != nil {
			t.Fatalf("%dx%d: %v", n, n, err)
		}
		if err := VerifyDisjointHamiltonian(r1, r2, n, n); err != nil {
			t.Fatalf("%dx%d: %v", n, n, err)
		}
	}
}

func TestDisjointRingsInvalidSizes(t *testing.T) {
	for _, s := range []struct{ r, c int }{{3, 5}, {6, 4}, {2, 4}, {5, 3}} {
		if _, _, err := DisjointHamiltonianRings(s.r, s.c); err == nil {
			t.Errorf("%dx%d: expected error", s.r, s.c)
		}
	}
}

func TestDisjointRingsQuick(t *testing.T) {
	// Property: whenever the construction succeeds it yields verified
	// edge-disjoint Hamiltonian cycles.
	f := func(k8, c8 uint8) bool {
		c := int(c8%10) + 3
		k := int(k8%3) + 1
		r := c * k
		r1, r2, err := DisjointHamiltonianRings(r, c)
		if err != nil {
			// Only acceptable failure: condition gcd(r, c-1) != 1.
			return gcd(r, c-1) != 1
		}
		return VerifyDisjointHamiltonian(r1, r2, r, c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVerifyCatchesBadRings(t *testing.T) {
	r1, r2, err := DisjointHamiltonianRings(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate a node.
	bad := append([]Coord{}, r1...)
	bad[3] = bad[2]
	if err := VerifyDisjointHamiltonian(bad, r2, 4, 4); err == nil {
		t.Error("duplicate node not detected")
	}
	// Same ring twice shares every edge.
	if err := VerifyDisjointHamiltonian(r1, r1, 4, 4); err == nil {
		t.Error("shared edges not detected")
	}
}
