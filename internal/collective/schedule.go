package collective

import "math"

// Params holds the alpha-beta cost model parameters of §V-A2. Beta is the
// time per byte of each network interface (1/50 ns/B for 400 Gb/s); a
// plane has NICs interfaces (four for HxMesh/torus accelerators, one per
// plane for fat tree and Dragonfly endpoints).
type Params struct {
	AlphaNS       float64 // per-round latency
	BetaNSPerByte float64 // per-interface serialization time per byte
	NICs          int     // interfaces usable by the algorithm
}

// DefaultParams mirrors the paper's case-study accelerator: 400 Gb/s
// links, four interfaces per plane, ~1 µs per communication round
// (propagation + switching + protocol overhead).
func DefaultParams() Params {
	return Params{AlphaNS: 1000, BetaNSPerByte: 1.0 / 50.0, NICs: 4}
}

// RingAllreduceTime is the unidirectional pipelined ring (§V-A2b):
// T ≈ 2pα + 2Sβ, bandwidth-optimal for one interface.
func RingAllreduceTime(p int, bytes float64, pr Params) float64 {
	return 2*float64(p)*pr.AlphaNS + 2*bytes*pr.BetaNSPerByte
}

// BidirRingAllreduceTime splits the data over both ring directions:
// T ≈ 2pα + Sβ (§V-A2b).
func BidirRingAllreduceTime(p int, bytes float64, pr Params) float64 {
	return 2*float64(p)*pr.AlphaNS + bytes*pr.BetaNSPerByte
}

// TwoRingsAllreduceTime uses two bidirectional rings mapped on the two
// edge-disjoint Hamiltonian cycles, exploiting all four interfaces:
// T ≈ 2pα + Sβ/2 (§V-A2b).
func TwoRingsAllreduceTime(p int, bytes float64, pr Params) float64 {
	return 2*float64(p)*pr.AlphaNS + bytes*pr.BetaNSPerByte/2
}

// Torus2DAllreduceTime is the two-dimensional algorithm of §V-A2c
// (reduce-scatter on rows, allreduce on columns, allgather on rows, two
// transposed instances in parallel on half the data each). The paper
// prints T ≈ 4√p·α + Sβ(1+2√p)/(4√p), whose bandwidth term equals the
// two-rings algorithm — contradicting the surrounding text ("the torus
// algorithm, which is 2x less bandwidth-efficient") and Fig. 13, where
// rings win for large messages. We therefore use the 2x-less-efficient
// form T ≈ 4√p·α + Sβ(1+2√p)/(2√p), which reproduces both the text and
// the figure: √p latency (beats the rings' p·α at small sizes) and half
// the asymptotic bandwidth.
func Torus2DAllreduceTime(p int, bytes float64, pr Params) float64 {
	sq := math.Sqrt(float64(p))
	return 4*sq*pr.AlphaNS + bytes*pr.BetaNSPerByte*(1+2*sq)/(2*sq)
}

// TreeAllreduceTime is the binomial tree for small data (§V-A2a):
// T ≈ log2(p)(2α + 2Sβ) (reduce + broadcast).
func TreeAllreduceTime(p int, bytes float64, pr Params) float64 {
	lg := math.Log2(float64(p))
	return lg * 2 * (pr.AlphaNS + bytes*pr.BetaNSPerByte)
}

// AllreduceBandwidth converts an allreduce time into algorithm bandwidth
// (bytes per ns == GB/s).
func AllreduceBandwidth(bytes, timeNS float64) float64 {
	if timeNS <= 0 {
		return 0
	}
	return bytes / timeNS
}

// OptimalAllreduceBandwidth is the theoretical optimum the paper reports
// shares against: half the injection bandwidth of the plane.
func OptimalAllreduceBandwidth(pr Params) float64 {
	return float64(pr.NICs) / pr.BetaNSPerByte / 2
}

// ScaleBetaByShare derates the per-interface byte time by a sustained
// bandwidth share (as measured by the packet or flow simulators), so the
// schedule model reflects topology contention: beta_eff = beta / share.
func ScaleBetaByShare(pr Params, share float64) Params {
	if share <= 0 || share > 1 {
		return pr
	}
	pr.BetaNSPerByte /= share
	return pr
}

// AlltoallTime models the balanced-shift alltoall (§V-A1a): p−1 rounds of
// α plus the serialization of S(p−1) bytes through the plane's injection
// bandwidth derated by the topology's global-bandwidth share.
func AlltoallTime(p int, bytesPerPeer float64, share float64, pr Params) float64 {
	if share <= 0 {
		return math.Inf(1)
	}
	inj := float64(pr.NICs) / pr.BetaNSPerByte
	return float64(p-1)*pr.AlphaNS + bytesPerPeer*float64(p-1)/(inj*share)
}

// AlltoallBandwidth is the per-endpoint effective alltoall bandwidth for
// the message-size sweep of Fig. 11.
func AlltoallBandwidth(p int, bytesPerPeer float64, share float64, pr Params) float64 {
	t := AlltoallTime(p, bytesPerPeer, share, pr)
	return bytesPerPeer * float64(p-1) / t
}

// AllreduceAlgorithm identifies one of the modeled allreduce schedules.
type AllreduceAlgorithm uint8

const (
	// AlgoRing is the unidirectional pipelined ring.
	AlgoRing AllreduceAlgorithm = iota
	// AlgoBidirRing is the bidirectional pipelined ring.
	AlgoBidirRing
	// AlgoTwoRings uses both edge-disjoint Hamiltonian cycles.
	AlgoTwoRings
	// AlgoTorus2D is the two-dimensional latency-optimized algorithm.
	AlgoTorus2D
	// AlgoTree is the binomial tree (small messages).
	AlgoTree
)

func (a AllreduceAlgorithm) String() string {
	switch a {
	case AlgoRing:
		return "ring"
	case AlgoBidirRing:
		return "bidir-ring"
	case AlgoTwoRings:
		return "rings"
	case AlgoTorus2D:
		return "torus"
	case AlgoTree:
		return "tree"
	}
	return "unknown"
}

// AllreduceTime dispatches to the schedule model for the algorithm.
func AllreduceTime(a AllreduceAlgorithm, p int, bytes float64, pr Params) float64 {
	switch a {
	case AlgoRing:
		return RingAllreduceTime(p, bytes, pr)
	case AlgoBidirRing:
		return BidirRingAllreduceTime(p, bytes, pr)
	case AlgoTwoRings:
		return TwoRingsAllreduceTime(p, bytes, pr)
	case AlgoTorus2D:
		return Torus2DAllreduceTime(p, bytes, pr)
	case AlgoTree:
		return TreeAllreduceTime(p, bytes, pr)
	}
	return math.Inf(1)
}

// BestAllreduce returns the fastest algorithm for the given size, the
// multi-algorithm selection the paper advocates (§V-A2e).
func BestAllreduce(p int, bytes float64, pr Params) (AllreduceAlgorithm, float64) {
	best, bt := AlgoTree, math.Inf(1)
	for _, a := range []AllreduceAlgorithm{AlgoTree, AlgoRing, AlgoBidirRing, AlgoTwoRings, AlgoTorus2D} {
		if t := AllreduceTime(a, p, bytes, pr); t < bt {
			best, bt = a, t
		}
	}
	return best, bt
}
