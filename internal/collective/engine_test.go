package collective

import (
	"testing"

	"hammingmesh/internal/netsim"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

func tinyHx() *topo.HxMesh { return topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams()) }

func TestSimulateRingAllreduceBandwidth(t *testing.T) {
	// A unidirectional ring allreduce on a dedicated torus ring should
	// approach the single-link bound 1/(2β) = 25 GB/s for large data.
	n := topo.NewTorus2D(8, 8, 2, 2, topo.DefaultLinkParams())
	ring := make([]topo.NodeID, 0, 64)
	r1, _, err := TwoRingsOnTorus(n, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	ring = r1
	total := int64(8 << 20)
	res, err := SimulateRingAllreduce(simcore.Of(n), ring, total, false, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bw := res.BandwidthGBps(total)
	if bw < 15 || bw > 25.5 {
		t.Errorf("ring allreduce bw = %.1f GB/s, want ≈25 (≤ 1/(2β))", bw)
	}
	if res.Rounds != 2*(len(ring)-1) {
		t.Errorf("rounds = %d, want %d", res.Rounds, 2*(len(ring)-1))
	}
}

func TestSimulateBidirDoublesRing(t *testing.T) {
	n := topo.NewTorus2D(8, 8, 2, 2, topo.DefaultLinkParams())
	r1, _, err := TwoRingsOnTorus(n, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(8 << 20)
	uni, err := SimulateRingAllreduce(simcore.Of(n), r1, total, false, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bidir, err := SimulateRingAllreduce(simcore.Of(n), r1, total, true, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	speedup := uni.TimeNS / bidir.TimeNS
	if speedup < 1.5 || speedup > 2.5 {
		t.Errorf("bidirectional speedup = %.2f, want ≈2", speedup)
	}
}

func TestSimulateTwoRingsReachesOptimum(t *testing.T) {
	// Two bidirectional rings on disjoint Hamiltonian cycles use all four
	// interfaces: algorithm bandwidth approaches inj/2 = 100 GB/s.
	h := tinyHx()
	r1, r2, err := TwoRingsOnHxMesh(h)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(16 << 20)
	res, err := SimulateTwoRingsAllreduce(simcore.Of(h.Network), r1, r2, total, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	bw := res.BandwidthGBps(total)
	if bw < 55 || bw > 101 {
		t.Errorf("two-rings allreduce bw = %.1f GB/s, want ≈100 (round-sync bound ≥55)", bw)
	}
	// It must clearly beat the single bidirectional ring.
	single, err := SimulateRingAllreduce(simcore.Of(h.Network), r1, total, true, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeNS >= single.TimeNS {
		t.Errorf("two rings (%.0f ns) not faster than one (%.0f ns)", res.TimeNS, single.TimeNS)
	}
}

func TestSimulateTorusAllreduceLatencyAdvantage(t *testing.T) {
	// For small messages the 2D algorithm's √p rounds beat the rings' p
	// rounds (Fig. 13 crossover).
	h := tinyHx()
	r1, r2, err := TwoRingsOnHxMesh(h)
	if err != nil {
		t.Fatal(err)
	}
	small := int64(64 << 10)
	torus, err := SimulateTorusAllreduce(h, small, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rings, err := SimulateTwoRingsAllreduce(simcore.Of(h.Network), r1, r2, small, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if torus.Rounds >= rings.Rounds {
		t.Errorf("torus rounds %d not below rings rounds %d", torus.Rounds, rings.Rounds)
	}
	if torus.TimeNS >= rings.TimeNS {
		t.Errorf("small msg: torus %.0f ns not faster than rings %.0f ns", torus.TimeNS, rings.TimeNS)
	}
}

func TestSimulatedMatchesScheduleModel(t *testing.T) {
	// The alpha-beta model and the message-level simulation must agree
	// within a factor of two for the two-rings algorithm at medium size.
	h := tinyHx()
	r1, r2, err := TwoRingsOnHxMesh(h)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(4 << 20)
	sim, err := SimulateTwoRingsAllreduce(simcore.Of(h.Network), r1, r2, total, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pr := DefaultParams()
	pr.AlphaNS = 400 // tiny cluster: short paths
	model := TwoRingsAllreduceTime(len(r1), float64(total), pr)
	ratio := sim.TimeNS / model
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("simulated %.0f ns vs model %.0f ns (ratio %.2f) disagree >2x", sim.TimeNS, model, ratio)
	}
}

func TestSimulateAlltoallSampled(t *testing.T) {
	h := tinyHx()
	full, err := SimulateAlltoall(simcore.Of(h.Network), 8<<10, 0, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := SimulateAlltoall(simcore.Of(h.Network), 8<<10, 9, netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if full.Rounds != 63 || sampled.Rounds != 9 {
		t.Fatalf("rounds = %d/%d, want 63/9", full.Rounds, sampled.Rounds)
	}
	// The sampled estimate (scaled) should be within 2x of the full run.
	ratio := sampled.TimeNS / full.TimeNS
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("sampled alltoall time off by %.2fx", ratio)
	}
}

func TestEngineErrors(t *testing.T) {
	h := tinyHx()
	if _, err := SimulateRingAllreduce(simcore.Of(h.Network), h.Endpoints[:2], 1024, false, netsim.DefaultConfig()); err == nil {
		t.Error("tiny ring not rejected")
	}
	r1, r2, _ := TwoRingsOnHxMesh(h)
	if _, err := SimulateTwoRingsAllreduce(simcore.Of(h.Network), r1, r2[:10], 1024, netsim.DefaultConfig()); err == nil {
		t.Error("mismatched rings not rejected")
	}
}
