package analysis

import (
	"testing"
	"testing/quick"

	"hammingmesh/internal/topo"
)

func TestTableIIDiameters(t *testing.T) {
	// Diameter column of Table II (cable counting).
	cases := []struct {
		name string
		got  int
		want int
	}{
		{"small nonblocking fat tree", FatTreeDiameter(1024, topo.NonblockingTree()), 4},
		{"small 50% fat tree", FatTreeDiameter(1024, topo.TaperedTree(0.5)), 4},
		{"small 75% fat tree", FatTreeDiameter(1024, topo.TaperedTree(0.75)), 4},
		{"large nonblocking fat tree", FatTreeDiameter(16384, topo.NonblockingTree()), 6},
		{"large 50% fat tree", FatTreeDiameter(16384, topo.TaperedTree(0.5)), 6},
		{"small Hx2Mesh", HxMeshDiameter(2, 2, 16, 16), 4},
		{"small Hx4Mesh", HxMeshDiameter(4, 4, 8, 8), 8},
		{"small HyperX (Hx1Mesh)", HxMeshDiameter(1, 1, 32, 32), 4},
		{"large Hx2Mesh", HxMeshDiameter(2, 2, 64, 64), 8},
		{"large Hx4Mesh", HxMeshDiameter(4, 4, 32, 32), 8},
		{"large HyperX (Hx1Mesh)", HxMeshDiameter(1, 1, 128, 128), 8},
		{"small torus", TorusDiameter(32, 32), 32},
		{"large torus", TorusDiameter(128, 128), 128},
		{"large dragonfly", DragonflyDiameter(32, 17, 16, 30), 5},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: diameter = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func TestRelativeBisection(t *testing.T) {
	if got := HxMeshRelativeBisection(2, 2); got != 0.25 {
		t.Errorf("Hx2Mesh relative bisection = %f, want 0.25 (1/2a)", got)
	}
	if got := HxMeshRelativeBisection(4, 4); got != 0.125 {
		t.Errorf("Hx4Mesh relative bisection = %f, want 0.125", got)
	}
}

func TestAlltoallShares(t *testing.T) {
	// The analytic bounds should be close to the paper's measured values:
	// Hx2 ≈ 25%, Hx4 ≈ 10.5–12.5%, tapered fat trees ≈ taper ratio.
	if got := AlltoallShare(2, 2); got != 0.25 {
		t.Errorf("Hx2 alltoall share = %f, want 0.25", got)
	}
	if got := AlltoallShare(4, 4); got != 0.125 {
		t.Errorf("Hx4 alltoall share = %f, want 0.125", got)
	}
	if got := FatTreeAlltoallShare(topo.NonblockingTree()); got != 1 {
		t.Errorf("nonblocking share = %f, want 1", got)
	}
	got50 := FatTreeAlltoallShare(topo.TaperedTree(0.5))
	if got50 < 0.45 || got50 > 0.6 {
		t.Errorf("50%% taper share = %f, want ≈0.52", got50)
	}
	got75 := FatTreeAlltoallShare(topo.TaperedTree(0.75))
	if got75 < 0.2 || got75 > 0.3 {
		t.Errorf("75%% taper share = %f, want ≈0.25", got75)
	}
	if got := TorusAlltoallShare(32, 32); got != 0.0625 {
		t.Errorf("torus alltoall bound = %f, want 0.0625", got)
	}
}

func TestBisectionMatchesGraph(t *testing.T) {
	// The closed-form relative bisection must equal the graph cut divided
	// by the half-system injection for square-board HxMeshes.
	for _, c := range []struct{ a, x, y int }{{1, 8, 8}, {2, 4, 4}, {2, 8, 8}, {4, 4, 4}} {
		h := topo.NewHxMesh(c.a, c.a, c.x, c.y, topo.DefaultLinkParams())
		cut := topo.HxMeshBisection(h)
		injHalf := 4 * c.a * c.a * c.x * c.y / 2 // links of the lower half
		rel := float64(cut) / float64(injHalf)
		want := HxMeshRelativeBisection(c.a, c.a)
		if diff := rel - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Hx%d %dx%d: graph bisection %f != closed form %f", c.a, c.x, c.y, rel, want)
		}
	}
}

func TestDiameterFormulaMonotonic(t *testing.T) {
	// Property: diameter never decreases when the board grows.
	f := func(a8, x8 uint8) bool {
		a := int(a8%4) + 1
		x := int(x8%30) + 2
		return HxMeshDiameter(a+1, a+1, x, x) >= HxMeshDiameter(a, a, x, x) &&
			HxMeshDiameter(a, a, x+1, x+1) >= HxMeshDiameter(a, a, x, x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHxMeshSummary(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 16, 16, topo.DefaultLinkParams())
	s := HxMeshSummary(h)
	if s.Endpoints != 1024 || s.Diameter != 4 || s.RelBisection != 0.25 {
		t.Errorf("unexpected summary %+v", s)
	}
}

func TestAlltoallShareMesh(t *testing.T) {
	// A 1×1 mesh keeps all traffic on the PCB: full bandwidth.
	if got := AlltoallShareMesh(2, 2, 1, 1); got != 1 {
		t.Fatalf("1x1 share = %v, want 1", got)
	}
	// Monotone non-increasing in each mesh dimension: more spread can
	// never raise the achievable share.
	for _, ab := range [][2]int{{2, 2}, {4, 4}, {2, 4}} {
		a, b := ab[0], ab[1]
		prev := 2.0
		for s := 1; s <= 64; s *= 2 {
			got := AlltoallShareMesh(a, b, s, s)
			if got > prev+1e-12 {
				t.Fatalf("share(%d,%d,%d,%d)=%v > share at previous size %v", a, b, s, s, got, prev)
			}
			prev = got
		}
		for v := 1; v <= 64; v *= 2 {
			hi := AlltoallShareMesh(a, b, 4, v)
			lo := AlltoallShareMesh(a, b, 8, v)
			if lo > hi+1e-12 {
				t.Fatalf("share not monotone in u at v=%d: %v -> %v", v, hi, lo)
			}
		}
		// Converges to the asymptotic bound as the mesh grows.
		asym := AlltoallShare(a, b)
		big := AlltoallShareMesh(a, b, 256, 256)
		if rel := (big - asym) / asym; rel < 0 || rel > 0.01 {
			t.Fatalf("share(%d,%d,256,256)=%v does not converge to AlltoallShare=%v (rel %v)", a, b, big, asym, rel)
		}
		if big < asym {
			t.Fatalf("finite-size share %v below asymptotic bound %v", big, asym)
		}
	}
	// Small meshes must beat the asymptotic bound (much traffic on-board).
	if got, asym := AlltoallShareMesh(2, 2, 2, 2), AlltoallShare(2, 2); got <= asym {
		t.Fatalf("2x2 mesh share %v should exceed asymptotic %v", got, asym)
	}
}
