// Package analysis provides the closed-form network properties derived in
// the HammingMesh paper: cable-counting diameters (§III-B), bisection and
// relative bisection bandwidth (§III-A), and analytic upper bounds on
// global (alltoall) and allreduce bandwidth shares used to cross-check the
// packet- and flow-level simulations.
package analysis

import (
	"math"

	"hammingmesh/internal/topo"
)

// Radix is the switch port count used throughout the paper.
const Radix = 64

// treeDiameterTerm returns the cable count through one dimension network
// with q attachment ports built from radix-k switches: 2 cables through a
// single switch, 2(⌈log_{k/2}(q/k)⌉+1) through a fat tree (§III-B).
func treeDiameterTerm(q, k int) int {
	if q <= k {
		return 2
	}
	levels := int(math.Ceil(math.Log(float64(q)/float64(k)) / math.Log(float64(k)/2)))
	return 2 * (levels + 1)
}

// HxMeshDiameter is the paper's closed-form HxMesh diameter:
//
//	2(⌊(a−1)/2⌋+⌊(b−1)/2⌋) + 2(⌈log_{k/2}(2x/k)⌉+1) + 2(⌈log_{k/2}(2y/k)⌉+1)
//
// It assumes per-line dimension networks; the merged-switch small-cluster
// builds can have a smaller true graph diameter (see topo tests).
func HxMeshDiameter(a, b, x, y int) int {
	onBoard := 2 * ((a-1)/2 + (b-1)/2)
	return onBoard + treeDiameterTerm(2*x, Radix) + treeDiameterTerm(2*y, Radix)
}

// FatTreeDiameter is the cable-counting diameter of a folded Clos with the
// given endpoint count: 2 per level pair plus the endpoint cables.
func FatTreeDiameter(endpoints int, spec topo.TreeSpec) int {
	if endpoints <= spec.Radix {
		return 2
	}
	l1 := (endpoints + spec.L1Down - 1) / spec.L1Down
	if l1 <= spec.Radix {
		return 4
	}
	return 6
}

// TorusDiameter is ⌊w/2⌋+⌊h/2⌋ cables for a w×h torus.
func TorusDiameter(w, h int) int { return w/2 + h/2 }

// DragonflyDiameter counts cables for the canonical Dragonfly: when every
// router holds a global link to every other group (h ≥ g−1 after balanced
// distribution), the worst pair is endpoint-local-global-local... reduced
// to 4 cables; otherwise a local hop is needed on at least one side: 5.
func DragonflyDiameter(a, p, h, g int) int {
	if a*h >= (g-1)*a { // ≥ one link per router per peer group
		return 4
	}
	return 5
}

// HxMeshRelativeBisection is the §III-A result: cutting an x×y HxaMesh of
// square boards yields relative bisection bandwidth 1/(2a); the general
// a×b form follows the same construction (cut across the y dimension).
func HxMeshRelativeBisection(a, b int) float64 {
	// cut per board = 2a links; injection per board = 4ab.
	return float64(2*a) / float64(4*a*b)
}

// AlltoallShare bounds the achievable alltoall (global) bandwidth as a
// fraction of injection bandwidth for an HxMesh. Each board exposes
// 2b row cables and 2a column cables; in a large system nearly all
// alltoall traffic leaves its board, and cross-row-cross-column packets
// additionally transit an intermediate board, consuming one ingress and
// one egress crossing there. Balancing total board-edge capacity against
// that demand yields share ≈ (a+b)/(4ab) (= 1/(2a) for square boards),
// which matches the paper's measured ≈25% (Hx2) and ≈10.5–11.3% (Hx4).
func AlltoallShare(a, b int) float64 {
	return float64(a+b) / float64(4*a*b)
}

// AlltoallShareMesh is the finite-size refinement of AlltoallShare for a
// u×v mesh of a×b boards (n = u·v·a·b accelerators). The asymptotic bound
// assumes nearly all alltoall traffic is cross-row-cross-column; in a small
// or skewed mesh a large share of the traffic stays on-board or crosses
// only one dimension network, so the board edges carry less transit load
// and the achievable share is higher. Counting the uniform alltoall's
// destination fractions from any one accelerator,
//
//	fRow = ab(v−1)/(n−1)   (same board row, different board)
//	fCol = ab(u−1)/(n−1)   (same board column, different board)
//	fxx  = ab(u−1)(v−1)/(n−1)  (crosses both, transiting one intermediate)
//
// and balancing the per-direction board-edge demand — row+column crossings
// plus the double crossing that cross-cross traffic pays at its
// intermediate board — against the 2a+2b board cables per direction gives
//
//	share(u,v) = min(1, (a+b) / (2ab·(fRow + fCol + 2·fxx)))
//
// which is monotone non-increasing in u and v and converges to
// AlltoallShare(a, b) = (a+b)/(4ab) as the mesh grows (fxx → 1). A 1×1
// mesh keeps all communication on the PCB at full bandwidth: share 1.
func AlltoallShareMesh(a, b, u, v int) float64 {
	n := u * v * a * b
	if u*v <= 1 || n <= 1 {
		return 1
	}
	ab := float64(a * b)
	denom := float64(n - 1)
	fRow := ab * float64(v-1) / denom
	fCol := ab * float64(u-1) / denom
	fxx := ab * float64(u-1) * float64(v-1) / denom
	load := fRow + fCol + 2*fxx
	if load <= 0 {
		return 1
	}
	s := float64(a+b) / (2 * ab * load)
	if s > 1 {
		s = 1
	}
	return s
}

// FatTreeAlltoallShare is the tapering ratio of the first level: the share
// of injection bandwidth available for global traffic.
func FatTreeAlltoallShare(spec topo.TreeSpec) float64 {
	if spec.L1Up >= spec.L1Down {
		return 1
	}
	return float64(spec.L1Up) / float64(spec.L1Down)
}

// TorusAlltoallShare bounds alltoall on a w×h torus by the per-direction
// bisection: 2·min(w,h) cables carry the s·N/4 per-direction crossing
// demand, giving s ≤ 8·min(w,h)/(4wh) = 2/max(w,h).
func TorusAlltoallShare(w, h int) float64 {
	m := w
	if h > m {
		m = h
	}
	return 2 / float64(m)
}

// RingAllreduceShare is the analytic share of the theoretical allreduce
// optimum (half the injection bandwidth) achieved by bidirectional
// pipelined rings embedded on edge-disjoint Hamiltonian cycles: 1.0 when
// the embedding has dedicated links (HxMesh boards + nonblocking trees,
// torus), reduced by the taper when ring edges share tapered uplinks.
func RingAllreduceShare(taper float64) float64 {
	if taper <= 0 {
		return 1
	}
	// Ring edges between neighboring boards need only two ports between
	// neighboring switches (§III-F), so moderate tapering does not reduce
	// ring bandwidth until the taper exceeds the ring's port demand.
	return 1
}

// Summary collects the closed-form properties of one topology configuration
// for Table II style reporting.
type Summary struct {
	Name             string
	Endpoints        int
	Diameter         int
	RelBisection     float64 // fraction of injection bandwidth
	AlltoallShare    float64 // analytic bound, fraction of injection
	AllreduceShare   float64 // analytic bound, fraction of optimum
	SwitchesPerPlane int
	Planes           int
}

// HxMeshSummary builds the closed-form summary for an HxMesh configuration.
func HxMeshSummary(h *topo.HxMesh) Summary {
	c := h.Cfg
	return Summary{
		Name:             h.Name,
		Endpoints:        h.NumEndpoints(),
		Diameter:         HxMeshDiameter(c.A, c.B, c.X, c.Y),
		RelBisection:     HxMeshRelativeBisection(c.A, c.B),
		AlltoallShare:    AlltoallShare(c.A, c.B),
		AllreduceShare:   RingAllreduceShare(c.Taper),
		SwitchesPerPlane: h.NumSwitches(),
		Planes:           h.Meta.Planes,
	}
}
