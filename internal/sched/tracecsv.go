package sched

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// This file loads cluster traces from CSV files in the shape of the public
// MLaaS traces the paper samples from (Alibaba PAI, Microsoft Philly).
// Columns are matched by header name, case-insensitively, with the common
// aliases those traces use; unknown columns are ignored. Times may be given
// in hours (*_h) or seconds (*_s, divided by 3600), sizes in boards or in
// accelerators (gpus, divided by AccelsPerBoard rounding up).

// CSVOptions parameterizes ParseTraceCSV.
type CSVOptions struct {
	// AccelsPerBoard converts accelerator-count columns (gpus, num_gpus)
	// to boards, rounding up. Zero means 4.
	AccelsPerBoard int
	// DefaultCommFrac is assigned to jobs whose row has no comm_frac
	// column or leaves it empty.
	DefaultCommFrac float64
}

// csvCol identifies a recognized logical column.
type csvCol int

const (
	colID csvCol = iota
	colArrivalH
	colArrivalS
	colBoards
	colGPUs
	colServiceH
	colServiceS
	colCommFrac
	colMinBoards
	colMinGPUs
	colPriority
	colUnknown
)

// classifyHeader maps a header cell to a logical column.
func classifyHeader(h string) csvCol {
	switch strings.ToLower(strings.TrimSpace(h)) {
	case "id", "job_id", "jobid", "job":
		return colID
	case "arrival_h", "submit_time_h", "arrival":
		return colArrivalH
	case "arrival_s", "submit_time_s", "submit_time":
		return colArrivalS
	case "boards", "num_boards":
		return colBoards
	case "gpus", "num_gpus", "gpu_num", "accels":
		return colGPUs
	case "service_h", "duration_h", "run_time_h", "service":
		return colServiceH
	case "service_s", "duration_s", "run_time_s", "duration", "run_time":
		return colServiceS
	case "comm_frac", "commfrac":
		return colCommFrac
	case "min_boards":
		return colMinBoards
	case "min_gpus":
		return colMinGPUs
	case "priority", "prio":
		return colPriority
	}
	return colUnknown
}

// ParseTraceCSV decodes a CSV trace. The first row must be a header naming
// the columns; an arrival, a size (boards or gpus), and a service/duration
// column are required. Rows missing an id are numbered sequentially in file
// order. The result is validated and sorted by arrival like ParseTrace.
func ParseTraceCSV(r io.Reader, opts CSVOptions) ([]TraceJob, error) {
	apb := opts.AccelsPerBoard
	if apb <= 0 {
		apb = 4
	}
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("sched: reading CSV header: %w", err)
	}
	cols := make(map[csvCol]int, len(header))
	for i, h := range header {
		c := classifyHeader(h)
		if c == colUnknown {
			continue
		}
		if _, dup := cols[c]; dup {
			return nil, fmt.Errorf("sched: CSV has two columns for %q", strings.TrimSpace(h))
		}
		cols[c] = i
	}
	if _, ok := cols[colArrivalH]; !ok {
		if _, ok := cols[colArrivalS]; !ok {
			return nil, fmt.Errorf("sched: CSV has no arrival column (arrival_h, submit_time_h, arrival_s, submit_time_s)")
		}
	}
	if _, ok := cols[colBoards]; !ok {
		if _, ok := cols[colGPUs]; !ok {
			return nil, fmt.Errorf("sched: CSV has no size column (boards, gpus, num_gpus)")
		}
	}
	if _, ok := cols[colServiceH]; !ok {
		if _, ok := cols[colServiceS]; !ok {
			return nil, fmt.Errorf("sched: CSV has no service column (service_h, duration_h, duration_s, run_time_s)")
		}
	}

	field := func(rec []string, c csvCol) (string, bool) {
		i, ok := cols[c]
		if !ok || i >= len(rec) {
			return "", false
		}
		v := strings.TrimSpace(rec[i])
		return v, v != ""
	}
	num := func(rec []string, c csvCol, row int) (float64, bool, error) {
		v, ok := field(rec, c)
		if !ok {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
			return 0, false, fmt.Errorf("sched: CSV row %d: bad number %q for %s", row, v, header[cols[c]])
		}
		return f, true, nil
	}

	var jobs []TraceJob
	row := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("sched: reading CSV row %d: %w", row+1, err)
		}
		row++
		tj := TraceJob{ID: int32(len(jobs)), CommFrac: opts.DefaultCommFrac}
		if v, ok := field(rec, colID); ok {
			id, err := strconv.ParseInt(v, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("sched: CSV row %d: bad id %q", row, v)
			}
			tj.ID = int32(id)
		}
		if f, ok, err := num(rec, colArrivalH, row); err != nil {
			return nil, err
		} else if ok {
			tj.Arrival = f
		} else if f, ok, err := num(rec, colArrivalS, row); err != nil {
			return nil, err
		} else if ok {
			tj.Arrival = f / 3600
		} else {
			return nil, fmt.Errorf("sched: CSV row %d: missing arrival", row)
		}
		if f, ok, err := num(rec, colBoards, row); err != nil {
			return nil, err
		} else if ok {
			tj.Boards = int(f)
		} else if f, ok, err := num(rec, colGPUs, row); err != nil {
			return nil, err
		} else if ok {
			tj.Boards = (int(f) + apb - 1) / apb
		} else {
			return nil, fmt.Errorf("sched: CSV row %d: missing size", row)
		}
		if f, ok, err := num(rec, colServiceH, row); err != nil {
			return nil, err
		} else if ok {
			tj.Service = f
		} else if f, ok, err := num(rec, colServiceS, row); err != nil {
			return nil, err
		} else if ok {
			tj.Service = f / 3600
		} else {
			return nil, fmt.Errorf("sched: CSV row %d: missing service", row)
		}
		if f, ok, err := num(rec, colCommFrac, row); err != nil {
			return nil, err
		} else if ok {
			tj.CommFrac = f
		}
		if f, ok, err := num(rec, colMinBoards, row); err != nil {
			return nil, err
		} else if ok {
			tj.MinBoards = int(f)
		} else if f, ok, err := num(rec, colMinGPUs, row); err != nil {
			return nil, err
		} else if ok {
			tj.MinBoards = (int(f) + apb - 1) / apb
		}
		if f, ok, err := num(rec, colPriority, row); err != nil {
			return nil, err
		} else if ok {
			tj.Priority = int(f)
		}
		jobs = append(jobs, tj)
	}
	return finishTrace(jobs)
}

// LoadTraceCSV is ParseTraceCSV with default options.
func LoadTraceCSV(r io.Reader) ([]TraceJob, error) {
	return ParseTraceCSV(r, CSVOptions{})
}
