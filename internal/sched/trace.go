// Package sched is a trace-driven discrete-event cluster scheduler over the
// HammingMesh board allocator (internal/alloc). The paper's allocation study
// (§IV-B) places static job mixes on a frozen grid; this package models the
// live cluster those mixes come from: jobs arrive over time, queue while the
// grid is full, run with a placement-dependent communication slowdown, get
// evicted when a board fails mid-run, and restart from their last checkpoint
// on the degraded grid. The headline outputs are the utilization-vs-MTBF
// curves (the dynamic counterpart of Fig. 10) plus job wait and slowdown
// percentiles and the goodput lost to restarts.
//
// The layers:
//
//   - trace.go: job traces — synthetic generators (Poisson arrivals,
//     heavy-tailed Pareto durations, DNN-style job sizes drawn from the
//     workload package's Alibaba-like distribution) and a JSON loader.
//   - failures.go: the board-failure background process — Poisson events at
//     the aggregate rate boards/MTBF, with board identities from the
//     faults.SampleBoards nested sequence and thinning that keeps failure
//     sets nested across MTBF values under one seed.
//   - slowdown.go: placement-dependent runtime scaling — the communication
//     share of a job slows by the alltoall bandwidth of its virtual
//     sub-HxMesh shape (flowsim estimate, cached per shape) and by the
//     upper-layer traffic fraction of the concrete placement.
//   - sched.go: the discrete-event loop and placement policies (first-fit,
//     best-fit contiguous, fragmentation-aware).
//
// Everything is deterministic in the explicit seeds: the same (trace,
// failure process, config) triple replays the exact same decision sequence,
// which the golden trace test pins.
package sched

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"hammingmesh/internal/workload"
)

// TraceJob is one job of a cluster trace. Times are in hours.
type TraceJob struct {
	// ID identifies the job; synthetic traces number jobs in arrival
	// order starting at 0. IDs must be unique and non-negative.
	ID int32 `json:"id"`
	// Arrival is the submission time in hours from the trace start.
	Arrival float64 `json:"arrival_h"`
	// Boards is the job's size in boards; the scheduler shapes it with
	// workload.ShapeFor (as square as possible).
	Boards int `json:"boards"`
	// Service is the job's total work in hours on an ideal placement
	// (communication at full bandwidth). Placement slowdown stretches it.
	Service float64 `json:"service_h"`
	// CommFrac is the communication share of an iteration (0..1), the part
	// of Service that placement bandwidth stretches. Synthetic traces use
	// the generator's default; zero means compute-bound.
	CommFrac float64 `json:"comm_frac,omitempty"`
	// MinBoards, when positive and below Boards, marks the job as elastic:
	// under Config.Elastic the scheduler may run it on as few as MinBoards
	// boards (halving steps), stretching it by the width ratio. Zero means
	// rigid.
	MinBoards int `json:"min_boards,omitempty"`
	// Priority orders preemption: under Config.Preempt a queued job may
	// checkpoint-evict running jobs of strictly lower priority. Zero is
	// the default (lowest) class.
	Priority int `json:"priority,omitempty"`
}

// TraceConfig parameterizes the synthetic trace generator.
type TraceConfig struct {
	// Jobs is the number of jobs to generate.
	Jobs int
	// ArrivalRate is the Poisson arrival rate in jobs/hour.
	ArrivalRate float64
	// MeanService is the mean job duration in hours. Durations are
	// heavy-tailed Pareto with shape ParetoAlpha and this mean.
	MeanService float64
	// ParetoAlpha is the Pareto tail exponent (> 1 so the mean exists).
	// Zero means 1.8 — a heavy tail with most jobs short, as in the
	// MLaaS traces the paper samples from.
	ParetoAlpha float64
	// MaxService caps a single job's duration (hours). Zero means
	// 50×MeanService.
	MaxService float64
	// Dist is the job-size distribution in accelerators. A zero value
	// means workload.AlibabaLike().
	Dist workload.Distribution
	// AccelsPerBoard converts sampled accelerator counts to boards
	// (4 for Hx2Mesh, 16 for Hx4Mesh). Zero means 4.
	AccelsPerBoard int
	// MaxBoards discards sampled jobs larger than this (the trace's giant
	// jobs never run on a small cluster, as in §IV-B). Zero means no cap.
	MaxBoards int
	// CommFrac is the communication share assigned to every job.
	CommFrac float64
	// ElasticFrac is the fraction of jobs marked elastic (MinBoards set to
	// ~Boards/4). Drawn from a side RNG stream so traces generated with
	// zero fracs stay byte-identical to older versions.
	ElasticFrac float64
	// PriorityFrac is the fraction of jobs given an elevated priority
	// (uniform in 1..3); the rest stay at the default class 0.
	PriorityFrac float64
}

// Synthetic generates a trace of cfg.Jobs jobs under the seed: exponential
// inter-arrival times (Poisson process), Pareto service times, and sizes
// from the workload distribution, rounded up to whole boards. The trace is
// sorted by arrival and deterministic in (cfg, seed).
func Synthetic(cfg TraceConfig, seed int64) []TraceJob {
	if cfg.Jobs <= 0 {
		return nil
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 1
	}
	if cfg.MeanService <= 0 {
		cfg.MeanService = 4
	}
	alpha := cfg.ParetoAlpha
	if alpha <= 1 {
		alpha = 1.8
	}
	maxService := cfg.MaxService
	if maxService <= 0 {
		maxService = 50 * cfg.MeanService
	}
	dist := cfg.Dist
	if len(dist.Sizes) == 0 {
		dist = workload.AlibabaLike()
	}
	apb := cfg.AccelsPerBoard
	if apb <= 0 {
		apb = 4
	}
	// Pareto(xm, alpha) has mean xm·alpha/(alpha-1); pick xm for MeanService.
	xm := cfg.MeanService * (alpha - 1) / alpha
	rng := rand.New(rand.NewSource(seed))
	// Elastic/priority marks come from a separate stream so enabling them
	// never perturbs the arrival/size/service draws of existing traces.
	var rng2 *rand.Rand
	if cfg.ElasticFrac > 0 || cfg.PriorityFrac > 0 {
		rng2 = rand.New(rand.NewSource(seed ^ 0x5eed9e1a57))
	}
	jobs := make([]TraceJob, 0, cfg.Jobs)
	t := 0.0
	for len(jobs) < cfg.Jobs {
		t += rng.ExpFloat64() / cfg.ArrivalRate
		boards := (dist.Sample(rng) + apb - 1) / apb
		service := xm / math.Pow(1-rng.Float64(), 1/alpha)
		if service > maxService {
			service = maxService
		}
		if cfg.MaxBoards > 0 && boards > cfg.MaxBoards {
			continue // oversized sample: discard, keep the arrival clock
		}
		tj := TraceJob{
			ID:       int32(len(jobs)),
			Arrival:  t,
			Boards:   boards,
			Service:  service,
			CommFrac: cfg.CommFrac,
		}
		if rng2 != nil {
			if cfg.ElasticFrac > 0 && rng2.Float64() < cfg.ElasticFrac && boards > 1 {
				tj.MinBoards = (boards + 3) / 4
			}
			if cfg.PriorityFrac > 0 && rng2.Float64() < cfg.PriorityFrac {
				tj.Priority = 1 + rng2.Intn(3)
			}
		}
		jobs = append(jobs, tj)
	}
	return jobs
}

// ParseTrace decodes a JSON trace: an array of TraceJob objects. Jobs are
// validated and returned sorted by arrival time (stable for equal times).
func ParseTrace(data []byte) ([]TraceJob, error) {
	var jobs []TraceJob
	if err := json.Unmarshal(data, &jobs); err != nil {
		return nil, fmt.Errorf("sched: bad trace JSON: %w", err)
	}
	return finishTrace(jobs)
}

// finishTrace validates decoded trace jobs and returns them sorted by
// arrival (stable for equal times). Shared by the JSON and CSV loaders.
func finishTrace(jobs []TraceJob) ([]TraceJob, error) {
	seen := make(map[int32]bool, len(jobs))
	for i, j := range jobs {
		switch {
		case j.ID < 0:
			return nil, fmt.Errorf("sched: trace job %d has negative id %d", i, j.ID)
		case seen[j.ID]:
			return nil, fmt.Errorf("sched: duplicate trace job id %d", j.ID)
		case j.Arrival < 0:
			return nil, fmt.Errorf("sched: trace job %d arrives at negative time %g", j.ID, j.Arrival)
		case j.Boards < 1:
			return nil, fmt.Errorf("sched: trace job %d has %d boards, want ≥1", j.ID, j.Boards)
		case j.Service <= 0:
			return nil, fmt.Errorf("sched: trace job %d has non-positive service %g", j.ID, j.Service)
		case j.CommFrac < 0 || j.CommFrac > 1:
			return nil, fmt.Errorf("sched: trace job %d has comm_frac %g outside [0,1]", j.ID, j.CommFrac)
		case j.MinBoards < 0 || j.MinBoards > j.Boards:
			return nil, fmt.Errorf("sched: trace job %d has min_boards %d outside [0,%d]", j.ID, j.MinBoards, j.Boards)
		case j.Priority < 0:
			return nil, fmt.Errorf("sched: trace job %d has negative priority %d", j.ID, j.Priority)
		}
		seen[j.ID] = true
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Arrival < jobs[b].Arrival })
	return jobs, nil
}

// LoadTrace reads and parses a JSON trace from r.
func LoadTrace(r io.Reader) ([]TraceJob, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sched: reading trace: %w", err)
	}
	return ParseTrace(data)
}
