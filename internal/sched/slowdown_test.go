package sched

import (
	"math"
	"testing"

	"hammingmesh/internal/alloc"
)

// contiguousPlacement builds a u×v placement occupying rows 0..u-1 and
// cols 0..v-1 — the most compact shape, zero upper-layer fraction under a
// wide group.
func contiguousPlacement(u, v int) *alloc.Placement {
	rows := make([]int, u)
	cols := make([]int, v)
	for i := range rows {
		rows[i] = i
	}
	for j := range cols {
		cols[j] = j
	}
	return &alloc.Placement{Job: 0, Rows: rows, Cols: cols}
}

// spreadPlacement builds a u×v placement with rows/cols spaced `stride`
// apart, crossing fat-tree groups once stride·u exceeds the group width.
func spreadPlacement(u, v, stride int) *alloc.Placement {
	rows := make([]int, u)
	cols := make([]int, v)
	for i := range rows {
		rows[i] = i * stride
	}
	for j := range cols {
		cols[j] = j * stride
	}
	return &alloc.Placement{Job: 0, Rows: rows, Cols: cols}
}

// Regression for the shape-blind large-placement fallback: above MaxAccels
// the share must still depend on (u, v), and the analytic regime must meet
// the flow regime continuously at the boundary.
func TestComputeShareBoundaryContinuity(t *testing.T) {
	if testing.Short() {
		t.Skip("flow-solver shape estimates are slow")
	}
	// MaxAccels 64 on 2×2 boards: 4×4 (64 accels) is the last flow-solved
	// square; 5×5 upward uses the calibrated analytic bound.
	m := &CommSlowdown{BoardA: 2, BoardB: 2, MaxAccels: 64}
	inside := m.shapeShare(4, 4)  // flow estimate at the anchor
	outside := m.shapeShare(5, 5) // first analytic shape
	if inside <= 0 || outside <= 0 {
		t.Fatalf("non-positive shares: inside=%v outside=%v", inside, outside)
	}
	if outside >= inside {
		t.Fatalf("share must keep falling across the boundary: share(4,4)=%v share(5,5)=%v", inside, outside)
	}
	// Continuity: the calibrated bound evaluated AT the anchor shape equals
	// the flow estimate exactly (that is what the calibration pins), so the
	// first analytic step is within the bound's own step size.
	if rel := (inside - outside) / inside; rel > 0.35 {
		t.Fatalf("discontinuity at MaxAccels boundary: share(4,4)=%v share(5,5)=%v (rel drop %v)", inside, outside, rel)
	}
	// Shape dependence above the cap — the old code returned one constant.
	s66 := m.shapeShare(6, 6)
	s88 := m.shapeShare(8, 8)
	if s66 == outside || s88 == s66 {
		t.Fatalf("large-shape shares are shape-blind: share(5,5)=%v share(6,6)=%v share(8,8)=%v", outside, s66, s88)
	}
	if !(s88 < s66 && s66 < outside) {
		t.Fatalf("large-shape shares not decreasing: %v, %v, %v", outside, s66, s88)
	}
}

// Slowdown must be monotone non-decreasing in placement spread: pulling the
// same shape across more fat-tree groups can only cost more.
func TestSlowdownMonotoneInSpread(t *testing.T) {
	m := &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}
	job := TraceJob{Boards: 16, Service: 1, CommFrac: 0.5}
	prev := 0.0
	for _, stride := range []int{1, 2, 4, 8} {
		p := spreadPlacement(4, 4, stride)
		got := m.Slowdown(p, job)
		if got < 1 {
			t.Fatalf("slowdown %v < 1 at stride %d", got, stride)
		}
		if got < prev-1e-12 {
			t.Fatalf("slowdown decreased with spread: stride %d gave %v after %v", stride, got, prev)
		}
		prev = got
	}
	// And strictly greater once the spread forces upper-layer crossings.
	compact := m.Slowdown(contiguousPlacement(4, 4), job)
	spread := m.Slowdown(spreadPlacement(4, 4, 8), job)
	if spread <= compact {
		t.Fatalf("spread placement %v not slower than compact %v", spread, compact)
	}
}

// Regression for the un-disableable penalty: negative disables, zero keeps
// the default of 1.
func TestUpperPenaltySentinel(t *testing.T) {
	job := TraceJob{Boards: 16, Service: 1, CommFrac: 0.5}
	p := spreadPlacement(4, 4, 8) // heavy upper-layer crossing under group=2

	def := &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}
	off := &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2, UpperPenalty: -1}
	one := &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2, UpperPenalty: 1}

	sDef := def.Slowdown(p, job)
	sOff := off.Slowdown(p, job)
	sOne := one.Slowdown(p, job)
	if sDef != sOne {
		t.Fatalf("zero UpperPenalty must mean default 1: got %v vs %v", sDef, sOne)
	}
	if sOff >= sDef {
		t.Fatalf("negative UpperPenalty must disable the penalty: off=%v default=%v", sOff, sDef)
	}
	// Disabled penalty = pure shape term: compact and spread price equally.
	if a, b := off.Slowdown(contiguousPlacement(4, 4), job), sOff; math.Abs(a-b) > 1e-12 {
		t.Fatalf("with penalty off, spread must not matter: compact=%v spread=%v", a, b)
	}
}

// ContendedSlowdown(γ=1) is exactly Slowdown, and γ monotonically stretches.
func TestContendedSlowdownGamma(t *testing.T) {
	m := &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2}
	job := TraceJob{Boards: 16, Service: 1, CommFrac: 0.5}
	p := spreadPlacement(4, 4, 4)
	if got, want := m.ContendedSlowdown(p, job, 1), m.Slowdown(p, job); got != want {
		t.Fatalf("gamma=1 not identity: %v vs %v", got, want)
	}
	prev := 0.0
	for _, g := range []float64{1, 1.5, 2, 4} {
		got := m.ContendedSlowdown(p, job, g)
		if got < prev {
			t.Fatalf("contended slowdown not monotone in gamma: γ=%v gave %v after %v", g, got, prev)
		}
		prev = got
	}
	// γ below 1 clamps to 1 (contention never speeds a job up).
	if got, want := m.ContendedSlowdown(p, job, 0.5), m.Slowdown(p, job); got != want {
		t.Fatalf("gamma<1 must clamp: %v vs %v", got, want)
	}
}
