package sched

import (
	"math"
	"testing"

	"hammingmesh/internal/alloc"
)

// placeAt builds a placement over explicit row/col indices.
func placeAt(rows, cols []int) *alloc.Placement {
	return &alloc.Placement{Rows: rows, Cols: cols}
}

func TestInterferenceSmallGridInert(t *testing.T) {
	// A grid that fits inside one L1 group has no shared upper layer:
	// every γ is exactly 1 no matter how crowded.
	in := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 16}
	jobs := []JobTraffic{
		{Placement: placeAt([]int{0, 1}, []int{0, 1}), CommFrac: 0.9},
		{Placement: placeAt([]int{2, 3}, []int{0, 1}), CommFrac: 0.9},
		{Placement: placeAt([]int{0, 1, 2, 3}, []int{2, 3}), CommFrac: 0.9},
	}
	for i, g := range in.Gammas(8, 8, jobs) {
		if g != 1 {
			t.Fatalf("γ[%d] = %v on a single-group grid, want 1", i, g)
		}
	}
}

func TestInterferenceGammaMonotoneInContenders(t *testing.T) {
	// Group width 2 on an 8×8 grid: placements spanning column groups
	// fight over the tapered row-tree uplinks. Contention needs a shared
	// tree AND a shared group uplink, so the jobs interleave columns
	// within the same rows (boards stay disjoint).
	in := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 2, Taper: 0.25}
	obs := JobTraffic{Placement: placeAt([]int{0, 1}, []int{0, 2}), CommFrac: 0.8}
	contenders := [][]int{{1, 5}, {3, 7}, {4, 6}}
	prev := 0.0
	for k := 0; k <= 3; k++ {
		jobs := []JobTraffic{obs}
		for j := 0; j < k; j++ {
			jobs = append(jobs, JobTraffic{
				Placement: placeAt([]int{0, 1}, contenders[j]),
				CommFrac:  0.8,
			})
		}
		g := in.Gammas(8, 8, jobs)[0]
		if g < 1 {
			t.Fatalf("γ = %v < 1 with %d contenders", g, k)
		}
		if g < prev-1e-9 {
			t.Fatalf("γ decreased with more contenders: %v -> %v at k=%d", prev, g, k)
		}
		prev = g
	}
	if prev <= 1 {
		t.Fatalf("γ = %v after 3 co-located contenders, want > 1", prev)
	}
}

func TestInterferenceDisjointJobsNoGamma(t *testing.T) {
	in := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 2, Taper: 0.25}
	// Two jobs on disjoint rows AND disjoint columns: no shared tree at
	// all, so neither sees contention (each may self-congest, but that
	// divides out).
	jobs := []JobTraffic{
		{Placement: placeAt([]int{0, 1}, []int{0, 1, 2, 3}), CommFrac: 0.8},
		{Placement: placeAt([]int{4, 5}, []int{4, 5, 6, 7}), CommFrac: 0.8},
	}
	for i, g := range in.Gammas(8, 8, jobs) {
		if math.Abs(g-1) > 1e-9 {
			t.Fatalf("γ[%d] = %v for tree-disjoint jobs, want 1", i, g)
		}
	}
}

func TestInterferenceOrderInvariantAndMemoized(t *testing.T) {
	mk := func() []JobTraffic {
		return []JobTraffic{
			{Placement: placeAt([]int{0, 1}, []int{0, 1, 2, 3, 4, 5}), CommFrac: 0.7},
			{Placement: placeAt([]int{2, 3}, []int{0, 1, 2, 3, 4, 5}), CommFrac: 0.5},
			{Placement: placeAt([]int{0, 2}, []int{0, 5}), CommFrac: 0.9},
		}
	}
	in := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 2, Taper: 0.25}
	a := in.Gammas(8, 8, mk())
	// Same set, permuted caller order: per-job γ must be identical.
	jobs := mk()
	perm := []JobTraffic{jobs[2], jobs[0], jobs[1]}
	b := in.Gammas(8, 8, perm)
	if a[0] != b[1] || a[1] != b[2] || a[2] != b[0] {
		t.Fatalf("γ depends on caller order: %v vs %v", a, b)
	}
	st := in.Stats()
	if st.Solves != 1 || st.MemoHits != 1 {
		t.Fatalf("memo not effective: %+v (want 1 solve, 1 hit)", st)
	}
	// A fresh Interference must reproduce the same numbers (cold vs warm).
	in2 := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 2, Taper: 0.25}
	c := in2.Gammas(8, 8, mk())
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("cold recomputation diverges: %v vs %v", a, c)
		}
	}
}

func TestInterferenceNoCommNoGamma(t *testing.T) {
	in := &Interference{BoardA: 2, BoardB: 2, GroupBoards: 2, Taper: 0.25}
	jobs := []JobTraffic{
		{Placement: placeAt([]int{0, 1}, []int{0, 1, 2, 3, 4, 5, 6, 7}), CommFrac: 0},
		{Placement: placeAt([]int{0}, []int{0}), CommFrac: 0.9}, // single board
		{Placement: placeAt([]int{2, 3}, []int{0, 1, 2, 3, 4, 5, 6, 7}), CommFrac: 0.8},
	}
	g := in.Gammas(8, 8, jobs)
	if g[0] != 1 || g[1] != 1 {
		t.Fatalf("comm-free jobs must get γ=1: %v", g)
	}
}
