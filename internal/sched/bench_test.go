package sched

import "testing"

// BenchmarkSchedContention tracks what joint contention pricing costs on
// top of the isolation slowdown model, and what the placement-set memo
// recovers: "isolation" is the pre-contention baseline, "joint-cold"
// rebuilds the Interference model every run (every pricing is a fresh
// flow solve), "joint-memoized" shares one model across runs the way the
// sweep layer does, so recurring placement sets hit the memo. solves/op
// and memohits/op expose the split.
func BenchmarkSchedContention(b *testing.B) {
	jobs := 200
	if testing.Short() {
		jobs = 60
	}
	trace := Synthetic(TraceConfig{
		Jobs: jobs, ArrivalRate: 8, MeanService: 5, MaxBoards: 48,
		CommFrac: 0.6, ElasticFrac: 0.5, PriorityFrac: 0.3,
	}, 2024)
	baseCfg := func() Config {
		return Config{
			Policy: BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
			Slowdown: &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2},
			Elastic:  true, Preempt: true,
		}
	}
	run := func(b *testing.B, cfg Config) *Metrics {
		m, err := Run(8, 8, trace, nil, cfg)
		if err != nil {
			b.Fatal(err)
		}
		return m
	}

	b.Run("isolation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			run(b, baseCfg())
		}
	})
	b.Run("joint-cold", func(b *testing.B) {
		var solves int64
		for i := 0; i < b.N; i++ {
			cfg := baseCfg()
			inf := &Interference{GroupBoards: 2, Taper: 0.25}
			cfg.Interference = inf
			run(b, cfg)
			solves += inf.Stats().Solves
		}
		b.ReportMetric(float64(solves)/float64(b.N), "solves/op")
	})
	b.Run("joint-memoized", func(b *testing.B) {
		cfg := baseCfg()
		inf := &Interference{GroupBoards: 2, Taper: 0.25}
		cfg.Interference = inf
		run(b, cfg) // warm the memo the way a sweep's first trial does
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run(b, cfg)
		}
		st := inf.Stats()
		total := st.Solves + st.MemoHits
		if total > 0 {
			b.ReportMetric(100*float64(st.MemoHits)/float64(total), "%memo")
		}
	})
}
