package sched

import "testing"

// TestBackfillConformanceUnderContention pins the satellite fix in
// tryBackfill: the finish estimate behind "admit only if it finishes before
// the reservation starts" must use the contention-priced slowdown, not the
// isolation price. The conformance check is the EASY invariant itself,
// asserted after every event of a contention-heavy run with reservations
// on: a board reserved for the blocked head job is only ever held by jobs
// whose (contention-priced, possibly re-stretched) completion lands at or
// before the reservation start. An optimistic isolation estimate would
// admit a stretched backfill that holds reserved boards past resTime.
func TestBackfillConformanceUnderContention(t *testing.T) {
	trace := goldenV3Trace()
	cfg := goldenV3Config(&Interference{GroupBoards: 2, Taper: 0.25})
	cfg.RecordDecisions = false
	cfg.Reservation = true
	violations := 0
	cfg.observer = func(s *sim, ev event) {
		if s.resJob < 0 {
			return
		}
		x := s.grid.X
		for bi, reserved := range s.resBoards {
			if !reserved {
				continue
			}
			bx, by := bi%x, bi/x
			o := s.grid.Owner(bx, by)
			if o < 0 {
				continue
			}
			if ct := s.jobs[o].completeT; ct > s.resTime+1e-9 {
				violations++
				t.Errorf("reservation at t=%.4f overlaps job %d completing at %.4f on board (%d,%d)",
					s.resTime, o, ct, bx, by)
			}
		}
	}
	m, err := Run(8, 8, trace, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if violations > 0 {
		t.Fatalf("%d reservation-delay violations", violations)
	}
	// The run must actually exercise the guarded path: reservations were
	// created, jobs backfilled behind them, and contention re-stretched
	// running jobs while reservations could be live.
	if m.Reservations == 0 || m.Backfills == 0 || m.Restretches == 0 {
		t.Fatalf("degenerate run: reservations=%d backfills=%d restretches=%d",
			m.Reservations, m.Backfills, m.Restretches)
	}
}
