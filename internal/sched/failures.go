package sched

import (
	"math"
	"sort"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// FailEvent is one board failure of the background failure process.
type FailEvent struct {
	// Time is the failure time in hours.
	Time float64
	// Board is the failed board's (bx, by) grid coordinate.
	Board [2]int
	// u is the thinning mark: the event is kept at aggregate failure rate
	// r when u ≤ r/maxRate (standard Poisson thinning), which makes the
	// kept sets nested across rates under one seed.
	u float64
}

// Failures is a pre-sampled board-failure process at a maximum aggregate
// rate; Thin extracts the (nested) subset for any milder per-board MTBF.
// Nesting is what makes utilization-vs-MTBF sweeps measure degradation
// rather than sampling noise: under one seed, a shorter MTBF replays every
// failure of a longer one and adds more (the same guarantee the link-fault
// samplers in internal/faults give resilience sweeps).
type Failures struct {
	events   []FailEvent // ascending by time, sampled at maxRate
	maxRate  float64     // aggregate failures/hour at the shortest MTBF
	boards   int         // boards in the grid
	horizonH float64
}

// BoardSequence returns the seeded nested board order used for failure
// identities: the faults.SampleBoards permutation of the HxMesh's boards
// (the same sequence a resilience sweep would power off).
func BoardSequence(h *topo.HxMesh, c *simcore.Compiled, seed int64) [][2]int {
	return faults.SampleBoards(h, c, h.Cfg.X*h.Cfg.Y, seed).FailedBoards()
}

// gridBoardSequence is a seeded board permutation for pure-grid scheduling
// (no compiled cluster at hand): a Fisher-Yates shuffle of all (bx, by)
// coordinates under the same splitmix generator the faults samplers use.
func gridBoardSequence(x, y int, seed int64) [][2]int {
	total := x * y
	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	r := schedRNG(seed, 0x6f7264)
	for i := total - 1; i > 0; i-- {
		j := r.intn(i + 1)
		idx[i], idx[j] = idx[j], idx[i]
	}
	out := make([][2]int, total)
	for i, bi := range idx {
		out[i] = [2]int{bi % x, bi / x}
	}
	return out
}

// NewFailures samples the failure process over [0, horizon) hours at the
// aggregate rate boards/minMTBF — the highest rate the caller will thin to.
// Event times are a Poisson process, event boards cycle through boardSeq
// (a seeded permutation, e.g. from BoardSequence), and each event carries
// a thinning mark so Thin(mtbf) with mtbf ≥ minMTBF returns a nested
// subset. A nil or empty boardSeq, non-positive minMTBF, or non-positive
// horizon yields an empty process (no failures).
func NewFailures(boardSeq [][2]int, horizonH, minMTBFh float64, seed int64) *Failures {
	f := &Failures{boards: len(boardSeq), horizonH: horizonH}
	if len(boardSeq) == 0 || minMTBFh <= 0 || horizonH <= 0 {
		return f
	}
	f.maxRate = float64(len(boardSeq)) / minMTBFh
	r := schedRNG(seed, 0xfa11)
	t := 0.0
	for i := 0; ; i++ {
		t += r.exp() / f.maxRate
		if t >= horizonH {
			break
		}
		f.events = append(f.events, FailEvent{
			Time:  t,
			Board: boardSeq[i%len(boardSeq)],
			u:     r.float64(),
		})
	}
	return f
}

// Thin returns the failure events active at a per-board MTBF of mtbfHours
// (≥ the minMTBF the process was sampled at), ascending by time. Under one
// seed the returned sets are nested: a shorter MTBF keeps a superset of a
// longer one. A non-positive mtbfHours means no failures.
func (f *Failures) Thin(mtbfHours float64) []FailEvent {
	if mtbfHours <= 0 || f.maxRate <= 0 {
		return nil
	}
	rate := float64(f.boards) / mtbfHours
	keep := rate / f.maxRate
	if keep > 1 {
		keep = 1 // caller thinned below the sampling MTBF; cap at everything
	}
	out := make([]FailEvent, 0, int(math.Ceil(float64(len(f.events))*keep)))
	for _, e := range f.events {
		if e.u <= keep {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks that events are sorted (defensive; NewFailures sorts by
// construction) and within the horizon.
func (f *Failures) Validate() bool {
	return sort.SliceIsSorted(f.events, func(i, j int) bool { return f.events[i].Time < f.events[j].Time })
}

// splitmix64 decorrelates seeds (same finalizer as internal/faults).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is the package's tiny deterministic generator (no math/rand here so
// failure processes stay stable across Go releases, like the faults
// samplers).
type rng uint64

func schedRNG(seed int64, salt uint64) *rng {
	r := rng(splitmix64(uint64(seed) ^ salt))
	return &r
}

func (r *rng) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	return splitmix64(uint64(*r))
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// exp returns a unit-mean exponential draw.
func (r *rng) exp() float64 { return -math.Log(1 - r.float64()) }
