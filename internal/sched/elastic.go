package sched

import (
	"hammingmesh/internal/alloc"
	"hammingmesh/internal/workload"
)

// This file implements the malleable-job behaviours behind Config.Elastic
// and the priority preemption behind Config.Preempt. Elastic width changes
// (shrunk admission, regrow, failure trims) are free instant re-baselines:
// the job's progress is credited at its old slowdown and its schedule
// restarts under the new one, with no checkpoint rollback — malleable
// training frameworks reshard state in memory. Preemption victims, by
// contrast, are killed: they pay the full rollback to their last
// checkpoint, exactly like failure evictions.

// rebaseline credits a running job's progress at its current slowdown and
// restarts its schedule at t under newSlow. The completion event is
// epoch-bumped so the superseded one is dropped as stale.
func (s *sim) rebaseline(idx int32, j *jobState, t, newSlow float64) {
	elapsed := t - j.startT - j.runOverheadH
	leftover := 0.0
	if elapsed < 0 {
		// Still inside the migration overhead window: the unpaid remainder
		// carries over to the new schedule.
		leftover = -elapsed
		elapsed = 0
	}
	progress := elapsed / j.slowdown
	if progress > j.remaining {
		progress = j.remaining
	}
	j.done += progress
	j.remaining -= progress
	s.usefulH += progress * float64(j.tj.Boards)
	j.startT = t
	j.runOverheadH = leftover
	j.slowdown = newSlow
	j.epoch++
	j.completeT = t + leftover + j.remaining*newSlow
	s.events.push(event{t: j.completeT, kind: evComplete, idx: idx, epoch: j.epoch})
}

// elasticFitsDims reports whether some halved width of an elastic job fits
// the grid dimensions — the admission criterion for jobs whose full shape
// never can (they queue and run shrunk instead of being rejected).
func (s *sim) elasticFitsDims(j *jobState) bool {
	if !s.cfg.Elastic {
		return false
	}
	min := j.tj.MinBoards
	if min <= 0 || min >= j.tj.Boards {
		return false
	}
	for bb := j.tj.Boards / 2; bb >= min && bb >= 1; bb /= 2 {
		if u, v := workload.ShapeFor(bb); s.grid.FitsDims(u, v, s.opts) {
			return true
		}
	}
	return false
}

// findShrunkPlacement searches successively halved board counts (down to
// MinBoards) for an elastic job that cannot be placed at full width.
func (s *sim) findShrunkPlacement(idx int32, j *jobState) *alloc.Placement {
	min := j.tj.MinBoards
	if min <= 0 || min >= j.tj.Boards {
		return nil
	}
	for bb := j.tj.Boards / 2; bb >= min && bb >= 1; bb /= 2 {
		u, v := workload.ShapeFor(bb)
		if p := s.findPlacementShape(s.grid, idx, u, v); p != nil {
			return p
		}
	}
	return nil
}

// tryRegrow expands shrunken elastic jobs back toward full width once the
// queue has drained: each one releases its boards, re-runs the policy's
// full-shape search (its own freed boards are candidates), and either
// migrates to the bigger placement or recommits the old one unchanged.
func (s *sim) tryRegrow(t float64) {
	if !s.cfg.Elastic || len(s.queue) > 0 {
		return
	}
	for i := range s.jobs {
		j := &s.jobs[i]
		if !j.running || j.allocBoards >= j.tj.Boards {
			continue
		}
		old := j.p
		s.grid.Release(int32(i))
		p := s.findPlacement(s.grid, int32(i), j)
		// Full width may not fit (or even never fit the grid); try the
		// halving ladder down to just above the current width.
		for bb := j.tj.Boards / 2; p == nil && bb > j.allocBoards; bb /= 2 {
			u, v := workload.ShapeFor(bb)
			p = s.findPlacementShape(s.grid, int32(i), u, v)
		}
		if p == nil || p.U()*p.V() <= j.allocBoards {
			if err := s.grid.Commit(old); err != nil {
				panic(err)
			}
			continue
		}
		if err := s.grid.Commit(p); err != nil {
			panic(err)
		}
		oldBoards := j.allocBoards
		j.p = p
		j.allocBoards = p.U() * p.V()
		slow, gamma := s.priceSlowdown(p, j.tj, int32(i))
		if wf := float64(j.tj.Boards) / float64(j.allocBoards); wf > 1 {
			slow *= wf
		}
		s.rebaseline(int32(i), j, t, slow)
		j.gamma = gamma
		s.met.Regrows++
		s.logf("t=%.4f regrow job=%d boards=%d->%d slow=%.4f", t, j.tj.ID, oldBoards, j.allocBoards, slow)
	}
}

// tryFailureShrink keeps an elastic victim running through a board failure
// by trimming the failed board's row or column from its placement
// (whichever keeps more boards, ties dropping the column). Returns false
// when the job is not elastic or no trim stays at or above MinBoards; the
// caller then falls back to eviction.
func (s *sim) tryFailureShrink(victim int32, bx, by int, t float64) bool {
	if !s.cfg.Elastic {
		return false
	}
	j := &s.jobs[victim]
	if j.tj.MinBoards <= 0 || !j.running {
		return false
	}
	p := j.p
	u, v := p.U(), p.V()
	type trim struct {
		rows, cols []int
		boards     int
	}
	var cands []trim
	if v > 1 {
		if nb := u * (v - 1); nb >= j.tj.MinBoards {
			cands = append(cands, trim{p.Rows, without(p.Cols, bx), nb})
		}
	}
	if u > 1 {
		if nb := (u - 1) * v; nb >= j.tj.MinBoards {
			cands = append(cands, trim{without(p.Rows, by), p.Cols, nb})
		}
	}
	if len(cands) == 0 {
		return false
	}
	best := cands[0]
	if len(cands) == 2 && cands[1].boards > cands[0].boards {
		best = cands[1]
	}
	np, err := s.grid.Shrink(p, best.rows, best.cols)
	if err != nil {
		return false
	}
	oldBoards := j.allocBoards
	j.p = np
	j.allocBoards = np.U() * np.V()
	slow, gamma := s.priceSlowdown(np, j.tj, victim)
	if wf := float64(j.tj.Boards) / float64(j.allocBoards); wf > 1 {
		slow *= wf
	}
	s.rebaseline(victim, j, t, slow)
	j.gamma = gamma
	s.met.Shrinks++
	s.logf("t=%.4f shrink job=%d boards=%d->%d slow=%.4f", t, j.tj.ID, oldBoards, j.allocBoards, slow)
	return true
}

// without returns xs minus the first occurrence of x.
func without(xs []int, x int) []int {
	out := make([]int, 0, len(xs)-1)
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}

// tryPreempt admits a higher-priority job by checkpoint-evicting the
// smallest prefix of strictly-lower-priority running jobs (ordered lowest
// priority first, then largest first) whose release frees a feasible
// placement — verified on a shadow grid before anything real is touched.
// Victims roll back to their last checkpoint and requeue after the current
// scan. Returns the placement to commit, or nil.
func (s *sim) tryPreempt(idx int32, j *jobState, t float64) *alloc.Placement {
	if !s.cfg.Preempt || j.tj.Priority <= 0 {
		return nil
	}
	var vics []int32
	for i := range s.jobs {
		if s.jobs[i].running && s.jobs[i].tj.Priority < j.tj.Priority {
			vics = append(vics, int32(i))
		}
	}
	if len(vics) == 0 {
		return nil
	}
	sortPreemptVictims(s, vics)
	shadow := s.grid.Clone()
	var p *alloc.Placement
	prefix := 0
	for _, v := range vics {
		shadow.Release(v)
		prefix++
		if cand := s.findPlacement(shadow, idx, j); cand != nil {
			p = cand
			break
		}
	}
	if p == nil {
		return nil
	}
	for _, v := range vics[:prefix] {
		vj := &s.jobs[v]
		lost := s.rollback(v, vj, t)
		s.grid.Release(v)
		vj.queued = true
		vj.queuedAt = t
		s.pendingRequeue = append(s.pendingRequeue, v)
		s.met.Preemptions++
		s.logf("t=%.4f preempt victim=%d by=%d lost=%.4fh", t, vj.tj.ID, j.tj.ID, lost)
	}
	return p
}

// sortPreemptVictims orders candidate victims: lowest priority first (the
// least important die first), then most boards (fewest victims freed), then
// index for determinism.
func sortPreemptVictims(s *sim, vics []int32) {
	for i := 1; i < len(vics); i++ {
		for k := i; k > 0 && preemptBefore(s, vics[k], vics[k-1]); k-- {
			vics[k], vics[k-1] = vics[k-1], vics[k]
		}
	}
}

func preemptBefore(s *sim, a, b int32) bool {
	ja, jb := &s.jobs[a], &s.jobs[b]
	if ja.tj.Priority != jb.tj.Priority {
		return ja.tj.Priority < jb.tj.Priority
	}
	if ja.allocBoards != jb.allocBoards {
		return ja.allocBoards > jb.allocBoards
	}
	return a < b
}
