package sched

import (
	"reflect"
	"strings"
	"testing"

	"hammingmesh/internal/faults"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// The burst process nesting guarantee: under one seed, the burst set kept
// at a lower rate is a subsequence (prefix in burst-acceptance order) of
// the set kept at any higher rate, so goodput-vs-burst-rate sweeps measure
// monotone degradation.
func TestBurstsNestedAcrossRates(t *testing.T) {
	b := NewBursts(8, 8, BurstShape{W: 3, H: 1}, 1000, 0.2, 11)
	if b.Sampled() == 0 {
		t.Fatal("burst process sampled no events at the max rate")
	}
	prev := b.Thin(0.2) // the sampling rate: everything
	if len(prev) == 0 {
		t.Fatal("Thin at the sampling rate kept nothing")
	}
	for _, rate := range []float64{0.1, 0.05, 0.02, 0.005} {
		cur := b.Thin(rate)
		if len(cur) > len(prev) {
			t.Fatalf("rate %g kept more events (%d) than rate above it (%d)", rate, len(cur), len(prev))
		}
		// Nesting: the lower-rate expanded event list is a subsequence of
		// the higher-rate list.
		i := 0
		for _, e := range cur {
			for i < len(prev) && prev[i] != e {
				i++
			}
			if i == len(prev) {
				t.Fatalf("rate %g event at t=%.3f board=%v not nested in the higher-rate set", rate, e.Time, e.Board)
			}
			i++
		}
		prev = cur
	}
	if got := b.Thin(0); got != nil {
		t.Fatalf("Thin(0) returned %d events, want none", len(got))
	}
	if got := NewBursts(0, 8, BurstShape{}, 100, 0.1, 1).Thin(0.1); got != nil {
		t.Fatal("empty grid produced bursts")
	}
}

// Bursts are correlated: every burst kills its full clipped region at one
// instant, and regions anchored inside the grid have exactly W×H boards.
func TestBurstsKillContiguousRegions(t *testing.T) {
	shape := BurstShape{W: 3, H: 2}
	b := NewBursts(10, 10, shape, 2000, 0.05, 7)
	events := b.Thin(0.05)
	if len(events) == 0 {
		t.Fatal("no burst events")
	}
	// Group by time: each group must be a clipped W×H region.
	for i := 0; i < len(events); {
		j := i
		for j < len(events) && events[j].Time == events[i].Time {
			j++
		}
		group := events[i:j]
		if len(group) > shape.W*shape.H {
			t.Fatalf("burst at t=%.3f has %d boards, want ≤ %d", group[0].Time, len(group), shape.W*shape.H)
		}
		// The group must equal regionBoards of its min-corner anchor.
		ax, ay := group[0].Board[0], group[0].Board[1]
		want := regionBoards(10, 10, [2]int{ax, ay}, shape.W, shape.H)
		got := make([][2]int, len(group))
		for k, e := range group {
			got[k] = e.Board
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("burst at t=%.3f boards %v, want region %v", group[0].Time, got, want)
		}
		i = j
	}
	// Determinism.
	again := NewBursts(10, 10, shape, 2000, 0.05, 7).Thin(0.05)
	if !reflect.DeepEqual(events, again) {
		t.Fatal("same (grid, shape, rate, seed) produced different bursts")
	}
}

// One correlated burst is one outage: when a burst's boards share an
// instant, the scheduling pass defers to the burst's last event, so the
// victim is evicted once instead of being re-placed mid-burst onto boards
// the same outage is about to kill (and evicted again).
func TestBurstEvictsOnceAndDefersRescheduling(t *testing.T) {
	trace := []TraceJob{{ID: 0, Arrival: 0, Boards: 2, Service: 10}}
	// A 3-board burst at t=1 on a 4x1 grid: the job runs on boards 0-1,
	// boards 2-3 are free. Rescheduling after the first board failure
	// would re-place the job on boards 2-3 and board 2's same-instant
	// failure would evict it a second time.
	fails := []FailEvent{
		{Time: 1, Board: [2]int{0, 0}},
		{Time: 1, Board: [2]int{1, 0}},
		{Time: 1, Board: [2]int{2, 0}},
	}
	m, err := Run(4, 1, trace, fails, Config{Policy: FirstFit, RepairH: 2, HorizonH: 30, RecordDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Evictions != 1 {
		t.Fatalf("one burst caused %d evictions, want 1:\n%s", m.Evictions, strings.Join(m.Decisions, "\n"))
	}
	if m.Failures != 3 {
		t.Fatalf("recorded %d board failures, want 3", m.Failures)
	}
	// The job waits out the repairs, restarts once and finishes.
	if m.Completed != 1 || m.Backlog != 0 {
		t.Fatalf("completed %d backlog %d, want 1 and 0:\n%s", m.Completed, m.Backlog, strings.Join(m.Decisions, "\n"))
	}
	placed := 0
	for _, d := range m.Decisions {
		if strings.Contains(d, "place job=0") {
			placed++
		}
	}
	if placed != 2 {
		t.Fatalf("job placed %d times, want 2 (initial + one post-burst restart):\n%s",
			placed, strings.Join(m.Decisions, "\n"))
	}
}

// The scheduler's grid-level region clipping and the network-level
// faults.Builder.FailBoardRegion must kill identical board sets: a burst
// in a scheduler sweep and a FaultSet rack outage in a resilience study
// model the same physical event. Any change to either clipping convention
// (wrap-around, anchor semantics) must land in both.
func TestRegionBoardsMatchesFaultsBuilder(t *testing.T) {
	h := topo.NewHxMesh(2, 2, 4, 4, topo.DefaultLinkParams())
	c := simcore.Of(h.Network)
	for _, anchor := range [][2]int{{0, 0}, {1, 2}, {3, 3}, {2, 0}, {0, 3}} {
		fs := faults.NewBuilder(c).FailBoardRegion(h, anchor[0], anchor[1], 3, 2).Build()
		want := regionBoards(4, 4, anchor, 3, 2)
		if !reflect.DeepEqual(fs.FailedBoards(), want) {
			t.Fatalf("anchor %v: faults builder failed %v, scheduler region %v",
				anchor, fs.FailedBoards(), want)
		}
	}
}

func TestMergeFailures(t *testing.T) {
	a := []FailEvent{{Time: 1, Board: [2]int{0, 0}}, {Time: 3, Board: [2]int{1, 0}}}
	b := []FailEvent{{Time: 2, Board: [2]int{2, 0}}, {Time: 3, Board: [2]int{3, 0}}}
	m := MergeFailures(a, b)
	if len(m) != 4 {
		t.Fatalf("merged %d events, want 4", len(m))
	}
	for i := 1; i < len(m); i++ {
		if m[i].Time < m[i-1].Time {
			t.Fatalf("merge not sorted at %d", i)
		}
	}
	// a-first at equal times: the t=3 pair keeps a's event before b's.
	if m[2].Board != [2]int{1, 0} || m[3].Board != [2]int{3, 0} {
		t.Fatalf("merge not stable at equal times: %v", m)
	}
	// Merging an empty burst list must return the independent list
	// unchanged (the zero-burst golden guarantee).
	if got := MergeFailures(a, nil); !reflect.DeepEqual(got, a) {
		t.Fatal("merge with empty second list changed the first")
	}
	if got := MergeFailures(nil, b); !reflect.DeepEqual(got, b) {
		t.Fatal("merge with empty first list changed the second")
	}
}
