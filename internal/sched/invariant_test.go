package sched

import (
	"fmt"
	"testing"

	"hammingmesh/internal/alloc"
)

// The cluster-wide invariant harness: a randomized trace with independent
// failures, correlated bursts and repairs is replayed under every
// (policy × reservation × defrag) combination, and after every processed
// event the full simulation state is checked against the scheduler's
// global invariants — ownership consistency, no placements on failed
// boards, reservation/placement disjointness, work-accounting bounds, and
// eviction liveness. Each combination processes at least 5,000 events.
func TestInvariantsUnderAllPolicyCombos(t *testing.T) {
	const x, y = 6, 6
	const horizon = 300.0
	trace := Synthetic(TraceConfig{Jobs: 900, ArrivalRate: 3, MeanService: 2.5, MaxBoards: 24, CommFrac: 0.2}, 77)
	seq := gridBoardSequence(x, y, 5)
	ind := NewFailures(seq, horizon, 8, 5).Thin(8)
	bursts := NewBursts(x, y, BurstShape{W: 2, H: 1}, horizon, 0.1, 5).Thin(0.1)
	fails := MergeFailures(ind, bursts)
	if len(bursts) == 0 || len(ind) == 0 {
		t.Fatalf("degenerate failure mix: %d independent, %d burst events", len(ind), len(bursts))
	}

	for _, pol := range Policies() {
		for _, resv := range []bool{false, true} {
			for _, th := range []float64{0, 0.3} {
				name := fmt.Sprintf("%s/res=%v/defrag=%g", pol, resv, th)
				t.Run(name, func(t *testing.T) {
					cfg := Config{
						Policy: pol, CheckpointH: 1.5, RepairH: 6, HorizonH: horizon,
						Reservation: resv, DefragThreshold: th, DefragCostH: 0.1,
					}
					events := 0
					prevEpoch := make([]int32, len(trace))
					cfg.observer = func(s *sim, ev event) {
						events++
						checkInvariants(t, s, prevEpoch, events)
					}
					m, err := Run(x, y, trace, fails, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if events < 5000 {
						t.Fatalf("processed %d events, want ≥ 5000 (grow the trace)", events)
					}
					// Final accounting bounds: goodput can never exceed
					// utilization (useful work needs allocated boards, raw
					// hours dominate working hours).
					if m.Goodput > m.Utilization+1e-9 || m.GoodputUtil > m.Utilization+1e-9 {
						t.Fatalf("goodput %.6f / goodput-util %.6f above utilization %.6f",
							m.Goodput, m.GoodputUtil, m.Utilization)
					}
					if th == 0 && (m.Defrags != 0 || m.Migrations != 0) {
						t.Fatalf("defrag disabled but ran %d passes", m.Defrags)
					}
					if !resv && m.Reservations != 0 {
						t.Fatalf("reservation disabled but created %d", m.Reservations)
					}
					if m.Evictions == 0 {
						t.Fatal("harness wants evictions; tune the failure process")
					}
				})
			}
		}
	}
}

// checkInvariants asserts the global invariants on the live state after
// one event.
func checkInvariants(t *testing.T, s *sim, prevEpoch []int32, events int) {
	t.Helper()
	x, y := s.grid.X, s.grid.Y

	// Ownership: every running job owns exactly its placement's boards
	// (never a failed board), and every owned board belongs to a running
	// job.
	ownedByRunning := 0
	runningByID := make(map[int32]bool)
	for i := range s.jobs {
		j := &s.jobs[i]
		if j.queued && j.running {
			t.Fatalf("event %d: job %d both queued and running", events, i)
		}
		if j.finished && (j.queued || j.running) {
			t.Fatalf("event %d: finished job %d still queued/running", events, i)
		}
		// Eviction liveness: a job that was ever rolled back must stay in
		// the system until it finishes or the trace ends queued.
		if j.epoch > prevEpoch[i] {
			prevEpoch[i] = j.epoch
		}
		if j.epoch > 0 && !j.finished && !j.rejected && !j.queued && !j.running {
			t.Fatalf("event %d: evicted job %d lost (not queued, running or finished)", events, i)
		}
		if !j.running {
			continue
		}
		runningByID[int32(i)] = true
		if j.p == nil {
			t.Fatalf("event %d: running job %d has no placement", events, i)
		}
		ownedByRunning += j.p.U() * j.p.V()
		for _, r := range j.p.Rows {
			for _, c := range j.p.Cols {
				if o := s.grid.Owner(c, r); o != int32(i) {
					t.Fatalf("event %d: board (%d,%d) owner %d, want running job %d (failed boards must never be owned)",
						events, c, r, o, i)
				}
			}
		}
	}
	allocated := 0
	for by := 0; by < y; by++ {
		for bx := 0; bx < x; bx++ {
			if o := s.grid.Owner(bx, by); o >= 0 {
				allocated++
				if !runningByID[o] {
					t.Fatalf("event %d: board (%d,%d) owned by non-running job %d", events, bx, by, o)
				}
			}
		}
	}
	if allocated != ownedByRunning {
		t.Fatalf("event %d: %d boards owned, running placements cover %d", events, allocated, ownedByRunning)
	}
	// Capacity: allocations never exceed the working (non-failed) boards,
	// which never exceed the grid.
	if w := s.grid.WorkingBoards(); allocated > w || w > x*y {
		t.Fatalf("event %d: allocated %d, working %d, capacity %d", events, allocated, w, x*y)
	}

	// Queue consistency: queued flags match the queue, no duplicates.
	inQueue := make(map[int32]bool, len(s.queue))
	for _, idx := range s.queue {
		if inQueue[idx] {
			t.Fatalf("event %d: job %d queued twice", events, idx)
		}
		inQueue[idx] = true
		if j := &s.jobs[idx]; !j.queued || j.running || j.finished {
			t.Fatalf("event %d: queue holds job %d with queued=%v running=%v finished=%v",
				events, idx, j.queued, j.running, j.finished)
		}
	}
	for i := range s.jobs {
		if s.jobs[i].queued && !inQueue[int32(i)] {
			t.Fatalf("event %d: job %d marked queued but not in queue", events, i)
		}
	}

	// Reservation disjointness: a reserved board is either free or held by
	// a job that releases it no later than the reservation start — a
	// placement that would outlive the reservation never overlaps it.
	if s.resJob >= 0 {
		for bi, reserved := range s.resBoards {
			if !reserved {
				continue
			}
			bx, by := bi%x, bi/x
			o := s.grid.Owner(bx, by)
			switch {
			case o == alloc.Free:
			case o == alloc.Failed:
				t.Fatalf("event %d: reservation for job %d covers failed board (%d,%d)", events, s.resJob, bx, by)
			default:
				if ct := s.jobs[o].completeT; ct > s.resTime+1e-9 {
					t.Fatalf("event %d: reservation at t=%.4f overlaps job %d completing at %.4f on board (%d,%d)",
						events, s.resTime, o, ct, bx, by)
				}
			}
		}
	}

	// Work accounting: useful work accrues only on allocated boards at
	// ideal rate or slower, so the running integrals keep goodput under
	// utilization.
	if s.usefulH > s.allocH+1e-6 {
		t.Fatalf("event %d: useful %.6f board-hours above allocated %.6f", events, s.usefulH, s.allocH)
	}
}
