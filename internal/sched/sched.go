package sched

import (
	"fmt"
	"math"
	"sort"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/workload"
)

// Policy selects how the scheduler places queued jobs on the grid.
type Policy string

const (
	// FirstFit commits the first feasible placement of the requested
	// shape, with no reshaping heuristics — the dynamic counterpart of
	// Fig. 8's greedy baseline and the cheapest policy.
	FirstFit Policy = "firstfit"
	// BestFit commits the most contiguous feasible placement across the
	// full §IV-A heuristic stack (transpose + aspect-ratio reshaping):
	// candidates are scored by their upper-layer traffic fraction (the
	// Fig. 9 locality metric), so jobs land on board sets with the
	// fewest L1-group crossings.
	BestFit Policy = "bestfit"
	// FragAware searches the same reshaped candidates as BestFit but
	// commits the placement that least fragments the grid: candidates
	// are scored by the free boards left stranded in the selected rows
	// (ties broken by locality), so big contiguous blocks survive for
	// later jobs.
	FragAware Policy = "fragaware"
)

// ParsePolicy validates a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case FirstFit, BestFit, FragAware:
		return Policy(s), nil
	}
	return "", fmt.Errorf("sched: unknown policy %q (firstfit|bestfit|fragaware)", s)
}

// Policies lists the built-in placement policies.
func Policies() []Policy { return []Policy{FirstFit, BestFit, FragAware} }

// Config controls one scheduler run. Times are hours.
type Config struct {
	// Policy is the placement policy (zero value means FirstFit).
	Policy Policy
	// CheckpointH is the checkpoint interval: an evicted job restarts
	// from its last completed checkpoint, losing up to CheckpointH hours
	// of wall-clock progress. Zero means continuous checkpointing (no
	// lost work).
	CheckpointH float64
	// RepairH is the board repair time (MTTR). Zero means failed boards
	// never return to service.
	RepairH float64
	// HorizonH ends the simulation; metrics integrate over [0, HorizonH).
	HorizonH float64
	// Slowdown scales job runtimes by placement quality (nil means none).
	Slowdown SlowdownModel
	// Reservation enables EASY-style backfill: when the head of the queue
	// cannot be placed, it gets a reservation — a projected start time and
	// board set computed by replaying the running jobs' completion times on
	// a shadow grid — and jobs behind it backfill only if they finish
	// before the reservation starts or avoid its boards entirely. This
	// bounds large-job wait, which greedy backfill (the default) leaves
	// unbounded under a steady stream of small jobs.
	Reservation bool
	// LargeBoards is the board count at or above which a job counts as
	// "large" for Metrics.MaxWaitLarge. Zero means half the grid.
	LargeBoards int
	// DefragThreshold triggers a checkpoint-migrate defragmentation pass
	// when the grid's fragmentation (alloc.Grid.Fragmentation) exceeds it
	// while jobs wait: every running job is checkpointed and evicted, the
	// queue is repacked largest-first through the policy's placement
	// search, and each migrated job pays DefragCostH as lost work. Zero
	// disables defragmentation.
	DefragThreshold float64
	// DefragCostH is the checkpoint-transfer overhead each migrated job
	// pays, in wall-clock hours: its restart is delayed by this much and
	// the time is accounted as lost board-hours.
	DefragCostH float64
	// DefragMinGapH is the minimum time between defragmentation passes
	// (zero means 1h), bounding migration churn when a repack cannot
	// reduce fragmentation.
	DefragMinGapH float64
	// RecordDecisions keeps the full decision log in the metrics (golden
	// tests and debugging; sweeps leave it off).
	RecordDecisions bool
	// Trace, when non-nil, records job lifecycles into the flight
	// recorder: per-job lanes with queued and run spans, checkpoint and
	// eviction instants, plus board fail/repair and defrag markers on a
	// cluster lane. Sim-hours map to trace time as 1 h = 1e6 µs (one
	// trace second). Recording never perturbs the run — decisions and
	// metrics stay bit-identical (obs contract, like observer).
	Trace *obs.Recorder
	// Interference, when non-nil, prices cross-job contention on the
	// shared upper-layer fat-trees: placements are admitted and backfilled
	// at their contention-stretched slowdown, and running jobs are
	// re-stretched (epoch-bumped, like rollback) whenever the contention
	// set changes. Contention reaches job runtimes only through a
	// Slowdown model implementing ContentionSlowdownModel; nil keeps the
	// isolation pricing byte-identical to earlier behaviour.
	Interference *Interference
	// Elastic enables malleable jobs: a queued job with MinBoards set
	// shrinks (by halving steps) to a smaller feasible shape instead of
	// waiting, stretches by the width ratio while shrunk, regrows toward
	// full width when the queue drains, and rides out board failures by
	// trimming the failed row/column instead of evicting. Elastic
	// reconfiguration is a free instant re-baseline (malleable frameworks
	// reshard in memory), unlike evictions, which still roll back to the
	// last checkpoint.
	Elastic bool
	// Preempt enables priority preemption: when a job with a higher
	// TraceJob.Priority cannot be placed, the smallest prefix of
	// strictly-lower-priority running jobs whose eviction frees a feasible
	// placement is checkpoint-evicted and requeued.
	Preempt bool

	// observer, when set (in-package tests only), is called after every
	// processed event with the live simulation state — the hook behind the
	// cluster-wide invariant harness.
	observer func(s *sim, ev event)
}

// Trace-export constants: the sched pid lane and the hours→trace-µs
// scale (distinct from netsim's pid lanes so one recorder can hold both).
const (
	tracePidSched         = 3
	traceTidCluster int32 = -1
	schedTraceScale       = 1e6 // trace µs per simulated hour
)

// emitSpan records a [from, to] span on a job's lane.
func (s *sim) emitSpan(tid int32, name string, from, to float64) {
	if tr := s.cfg.Trace; tr != nil {
		tr.Span(tracePidSched, tid, name, "job", from*schedTraceScale, (to-from)*schedTraceScale)
	}
}

// emitInstant records a point marker (tid traceTidCluster = cluster lane).
func (s *sim) emitInstant(tid int32, name string, t float64) {
	if tr := s.cfg.Trace; tr != nil {
		tr.Instant(tracePidSched, tid, name, t*schedTraceScale)
	}
}

// Metrics aggregates one scheduler run.
type Metrics struct {
	// Utilization is the time-averaged allocated/working board fraction
	// (the dynamic counterpart of the Fig. 8/10 metric).
	Utilization float64
	// GoodputUtil is useful work delivered per working board-hour:
	// checkpoint-surviving work in board-hours over the working
	// board-hours of the horizon. Slowdown, queueing, repair downtime and
	// lost work all subtract from it.
	GoodputUtil float64
	// Goodput is useful work delivered per raw board-hour of the horizon
	// (X·Y·HorizonH): the fraction of the cluster's nameplate capacity
	// converted to checkpoint-surviving work. Unlike Utilization, whose
	// working-board denominator shrinks as failures take boards down,
	// Goodput can only fall when failures destroy or delay work — it is
	// the monotone utilization-vs-MTBF curve the sweeps plot.
	Goodput float64
	// LostBoardH is the work destroyed by evictions (progress past the
	// last checkpoint), in board-hours.
	LostBoardH float64
	// LostFrac is LostBoardH over all work performed (useful + lost).
	LostFrac float64
	// WaitP50/WaitP99 are queue-wait percentiles over completed jobs
	// (including waits after evictions), in hours.
	WaitP50, WaitP99 float64
	// SlowP50/SlowP99 are job-slowdown percentiles over completed jobs:
	// (finish − arrival) / ideal service.
	SlowP50, SlowP99 float64
	// Arrived, Completed, Evictions, Rejected count jobs that entered the
	// trace window, finished, were evicted by a board failure (counting
	// re-evictions), and could never fit the grid.
	Arrived, Completed, Evictions, Rejected int
	// Backlog is the number of jobs still queued or running at the
	// horizon.
	Backlog int
	// Failures and Repairs count board state transitions applied.
	Failures, Repairs int
	// MaxWaitLarge is the longest queue wait suffered by any "large" job
	// (boards ≥ Config.LargeBoards), in hours, counting time still queued
	// at the horizon — the quantity reservation backfill bounds.
	MaxWaitLarge float64
	// Reservations counts reservations created for blocked head-of-queue
	// jobs; Backfills counts placements admitted behind an active
	// reservation (they finished before it or avoided its boards).
	Reservations, Backfills int
	// Defrags counts defragmentation passes; Migrations counts the job
	// checkpoint-migrations they performed.
	Defrags, Migrations int
	// MigratedBoardH is the migration overhead charged as lost work, in
	// board-hours (included in LostBoardH).
	MigratedBoardH float64
	// Restretches counts running-job re-pricings applied because the
	// contention set changed (Config.Interference).
	Restretches int
	// Shrinks counts elastic width reductions (shrunk admissions and
	// failure trims); Regrows counts elastic expansions back toward full
	// width (Config.Elastic).
	Shrinks, Regrows int
	// Preemptions counts lower-priority jobs checkpoint-evicted to admit
	// a higher-priority job (Config.Preempt).
	Preemptions int
	// Decisions is the chronological decision log (only when
	// Config.RecordDecisions is set).
	Decisions []string
}

// event kinds, in tie-breaking order at equal times: completions land
// before failures (a job that finishes the instant a board dies keeps its
// work), failures strike before repairs and arrivals, so an arriving job
// sees the degraded grid.
type evKind uint8

const (
	evComplete evKind = iota
	evFail
	evRepair
	evArrive
)

type event struct {
	t     float64
	seq   int64 // deterministic FIFO tie-break after kind
	kind  evKind
	idx   int32 // job index (arrive/complete) or failure index (fail)
	epoch int32 // evComplete: placement epoch that scheduled it
	board [2]int
}

func (e event) less(o event) bool {
	if e.t != o.t {
		return e.t < o.t
	}
	if e.kind != o.kind {
		return e.kind < o.kind
	}
	return e.seq < o.seq
}

// eventHeap is a simple binary min-heap ordered by (t, kind, seq).
type eventHeap struct {
	h   []event
	seq int64
}

func (q *eventHeap) push(e event) {
	e.seq = q.seq
	q.seq++
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !q.h[i].less(q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

// peek returns the next event without popping it (ok=false when empty).
func (q *eventHeap) peek() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return q.h[0], true
}

func (q *eventHeap) pop() event {
	top := q.h[0]
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h = q.h[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= len(q.h) {
			break
		}
		c := l
		if r < len(q.h) && q.h[r].less(q.h[l]) {
			c = r
		}
		if !q.h[c].less(q.h[i]) {
			break
		}
		q.h[i], q.h[c] = q.h[c], q.h[i]
		i = c
	}
	return top
}

// jobState is the scheduler's mutable per-job record.
type jobState struct {
	tj        TraceJob
	u, v      int     // requested shape
	remaining float64 // ideal work hours left from the last checkpoint
	done      float64 // checkpoint-surviving ideal work hours
	p         *alloc.Placement
	slowdown  float64
	startT    float64 // wall time the current placement started
	epoch     int32   // bumped on eviction; stale completions are dropped
	queuedAt  float64
	wait      float64
	queued    bool
	running   bool
	finished  bool
	rejected  bool
	finishT   float64
	// completeT is the scheduled completion time of the current placement
	// (valid while running) — the release time reservation projections
	// replay on the shadow grid.
	completeT float64
	// overheadPending is migration overhead (hours) the job's next
	// placement must pay before useful work resumes; runOverheadH is the
	// overhead baked into the current placement's schedule, excluded from
	// checkpoint progress on eviction.
	overheadPending, runOverheadH float64
	// allocBoards is the board count of the current placement (elastic
	// jobs may run below tj.Boards, paying the width ratio in slowdown);
	// gamma is the contention factor priced into the current slowdown.
	allocBoards int
	gamma       float64
}

// sim is one in-flight run.
type sim struct {
	cfg     Config
	grid    *alloc.Grid
	jobs    []jobState
	queue   []int32 // job indices, scan order
	events  eventHeap
	met     Metrics
	opts    alloc.Options
	usefulH float64 // checkpoint-surviving work, board-hours

	// utilization integrals, updated lazily at every event
	lastT            float64
	allocH, workingH float64

	// reservation state (Config.Reservation): the blocked head-of-queue
	// job holding the reservation, its projected start time, and the
	// reserved board set. Recomputed from scratch at every scheduling
	// pass, so it always reflects the current grid and running set.
	resJob    int32
	resTime   float64
	resBoards []bool // X*Y bitset

	largeBoards int     // "large job" threshold for MaxWaitLarge
	lastDefragT float64 // last defragmentation pass (-Inf before the first)

	// pendingRequeue holds jobs evicted mid-pass (preemption victims):
	// they rejoin the queue after the current scan's rebuild, so the scan
	// slice is never mutated underfoot.
	pendingRequeue []int32

	// pendingFailSched is set when a board failure deferred its scheduling
	// pass because more failures land at the same instant (a correlated
	// burst): rescheduling mid-burst would place evicted jobs onto boards
	// the same outage is about to kill. The burst's last event runs the
	// deferred pass.
	pendingFailSched bool
}

// Run replays a trace against an x×y board grid under the failure process
// and config, returning the aggregated metrics. Runs are deterministic:
// the same (trace, failures, cfg) triple produces the same decisions.
func Run(x, y int, trace []TraceJob, failures []FailEvent, cfg Config) (*Metrics, error) {
	if x < 1 || y < 1 {
		return nil, fmt.Errorf("sched: invalid grid %dx%d", x, y)
	}
	if cfg.HorizonH <= 0 {
		return nil, fmt.Errorf("sched: config needs a positive HorizonH")
	}
	if cfg.Policy == "" {
		cfg.Policy = FirstFit
	}
	if _, err := ParsePolicy(string(cfg.Policy)); err != nil {
		return nil, err
	}
	if cfg.Slowdown == nil {
		cfg.Slowdown = NoSlowdown{}
	}
	s := &sim{cfg: cfg, grid: alloc.NewGrid(x, y), opts: policyOptions(cfg.Policy),
		resJob: -1, lastDefragT: math.Inf(-1)}
	if tr := cfg.Trace; tr != nil {
		tr.SetProcessName(tracePidSched, "sched")
		tr.SetThreadName(tracePidSched, traceTidCluster, "cluster")
	}
	s.largeBoards = cfg.LargeBoards
	if s.largeBoards <= 0 {
		s.largeBoards = x * y / 2
		if s.largeBoards < 1 {
			s.largeBoards = 1
		}
	}
	s.jobs = make([]jobState, len(trace))
	for i, tj := range trace {
		u, v := shapeForTrace(tj)
		s.jobs[i] = jobState{tj: tj, u: u, v: v, remaining: tj.Service}
		if tj.Arrival < cfg.HorizonH {
			s.events.push(event{t: tj.Arrival, kind: evArrive, idx: int32(i)})
		}
	}
	for fi, fe := range failures {
		if fe.Time < cfg.HorizonH {
			s.events.push(event{t: fe.Time, kind: evFail, idx: int32(fi), board: fe.Board})
		}
	}

	for len(s.events.h) > 0 {
		ev := s.events.pop()
		if ev.t >= cfg.HorizonH {
			break
		}
		s.integrateTo(ev.t)
		switch ev.kind {
		case evArrive:
			s.onArrive(ev)
		case evComplete:
			s.onComplete(ev)
		case evFail:
			s.onFail(ev)
		case evRepair:
			s.onRepair(ev)
		}
		s.maybeDefrag(ev.t)
		if cfg.observer != nil {
			cfg.observer(s, ev)
		}
	}
	s.integrateTo(cfg.HorizonH)
	s.finish()
	return &s.met, nil
}

// policyOptions maps a policy to the allocator heuristics it searches with:
// FirstFit places the requested shape greedily, the other policies search
// the full §IV-A reshaping space.
func policyOptions(p Policy) alloc.Options {
	opt := alloc.Options{TreeGroupBoards: 16}
	switch p {
	case BestFit:
		opt.Transpose, opt.AspectRatio, opt.MaxAspect, opt.Locality = true, true, 8, true
	case FragAware:
		opt.Transpose, opt.AspectRatio, opt.MaxAspect = true, true, 8
	}
	return opt
}

// shapeForTrace shapes a job as square as possible (§IV-B default, shared
// with the static allocation study).
func shapeForTrace(tj TraceJob) (u, v int) {
	return workload.ShapeFor(tj.Boards)
}

func (s *sim) integrateTo(t float64) {
	if dt := t - s.lastT; dt > 0 {
		s.allocH += dt * float64(s.grid.AllocatedBoards())
		s.workingH += dt * float64(s.grid.WorkingBoards())
	}
	s.lastT = t
}

func (s *sim) logf(format string, args ...any) {
	if s.cfg.RecordDecisions {
		s.met.Decisions = append(s.met.Decisions, fmt.Sprintf(format, args...))
	}
}

func (s *sim) onArrive(ev event) {
	j := &s.jobs[ev.idx]
	s.met.Arrived++
	s.logf("t=%.4f arrive job=%d boards=%d service=%.4f", ev.t, j.tj.ID, j.tj.Boards, j.tj.Service)
	// A job no allowed shape of which fits the grid dimensions can never
	// run (the criterion behind the allocator's typed *ErrNeverFits);
	// anything else queues and waits for capacity. An elastic job whose
	// full shape is too big still queues if some shrunk width fits.
	if !s.grid.FitsDims(j.u, j.v, s.opts) && !s.elasticFitsDims(j) {
		j.rejected = true
		s.met.Rejected++
		err := &alloc.ErrNeverFits{Job: ev.idx, U: j.u, V: j.v, X: s.grid.X, Y: s.grid.Y}
		s.logf("t=%.4f reject job=%d: %v", ev.t, j.tj.ID, err)
		return
	}
	s.enqueue(ev.idx, ev.t, false)
	s.trySchedule(ev.t)
}

// enqueue adds a job to the scan queue; evicted jobs go to the front (they
// already waited once, and restarting them quickly bounds the lost-work
// window).
func (s *sim) enqueue(idx int32, t float64, front bool) {
	j := &s.jobs[idx]
	j.queued = true
	j.queuedAt = t
	if front {
		s.queue = append([]int32{idx}, s.queue...)
	} else {
		s.queue = append(s.queue, idx)
	}
}

// trySchedule scans the queue in order and places every job that fits.
// Without Config.Reservation this is greedy backfill: a blocked large job
// does not stall smaller ones behind it — utilization-friendly, at the
// price of unbounded large-job delay. With Reservation the first blocked
// job gets a reservation (projected start time and board set from a
// shadow replay of the running jobs' completions) and jobs behind it are
// admitted only if they finish before the reservation starts or avoid its
// boards entirely — EASY backfill, bounding head-of-queue wait.
func (s *sim) trySchedule(t float64) {
	s.resJob = -1 // reservations are recomputed fresh every pass
	reserveTried := false
	kept := s.queue[:0]
	for _, idx := range s.queue {
		j := &s.jobs[idx]
		if s.resJob >= 0 {
			// A reservation is active: jobs behind the blocked head may
			// only backfill.
			if !s.tryBackfill(idx, j, t) {
				kept = append(kept, idx)
			}
			continue
		}
		p := s.findPlacement(s.grid, idx, j)
		if p == nil && s.cfg.Elastic {
			p = s.findShrunkPlacement(idx, j)
		}
		if p == nil {
			p = s.tryPreempt(idx, j, t)
		}
		if p == nil {
			if s.cfg.Reservation && !reserveTried {
				// Only the first blocked job reserves (EASY); if no
				// projection fits (e.g. the degraded grid can never hold
				// it), fall back to greedy for the rest of the queue.
				reserveTried = true
				s.reserve(t, idx, j)
			}
			kept = append(kept, idx)
			continue
		}
		s.start(idx, j, p, t)
	}
	s.queue = append([]int32(nil), kept...)
	if len(s.pendingRequeue) > 0 {
		s.queue = append(s.queue, s.pendingRequeue...)
		s.pendingRequeue = s.pendingRequeue[:0]
	}
	s.tryRegrow(t)
	s.reprice(t)
}

// start commits a candidate placement and schedules the job's completion.
func (s *sim) start(idx int32, j *jobState, p *alloc.Placement, t float64) {
	if err := s.grid.Commit(p); err != nil {
		// Candidates were enumerated against the current grid; a failed
		// commit means a bookkeeping bug, not a runtime condition.
		panic(err)
	}
	j.queued = false
	j.running = true
	j.p = p
	j.startT = t
	j.wait += t - j.queuedAt
	j.allocBoards = p.U() * p.V()
	j.slowdown, j.gamma = s.priceSlowdown(p, j.tj, idx)
	if wf := float64(j.tj.Boards) / float64(j.allocBoards); wf > 1 {
		// Elastic shrink: the job runs below its requested width and pays
		// the ratio on top of the placement slowdown.
		j.slowdown *= wf
		s.met.Shrinks++
		s.logf("t=%.4f shrink job=%d boards=%d->%d", t, j.tj.ID, j.tj.Boards, j.allocBoards)
	}
	j.runOverheadH = j.overheadPending
	j.overheadPending = 0
	j.completeT = t + j.runOverheadH + j.remaining*j.slowdown
	s.emitSpan(j.tj.ID, "queued", j.queuedAt, t)
	s.events.push(event{t: j.completeT, kind: evComplete, idx: idx, epoch: j.epoch})
	s.logf("t=%.4f place job=%d shape=%dx%d rows=%v cols=%v slow=%.4f remaining=%.4f",
		t, j.tj.ID, p.U(), p.V(), p.Rows, p.Cols, j.slowdown, j.remaining)
}

// findPlacement runs the policy's placement search for one job on g and
// returns the uncommitted winner (nil when nothing fits). Separating the
// search from the commit lets reservation projections run the identical
// search on shadow grids and lets backfill veto a placement before it
// lands.
func (s *sim) findPlacement(g *alloc.Grid, idx int32, j *jobState) *alloc.Placement {
	return s.findPlacementShape(g, idx, j.u, j.v)
}

// findPlacementShape is findPlacement for an explicit shape (elastic
// shrink admissions search smaller shapes than the job's request).
func (s *sim) findPlacementShape(g *alloc.Grid, idx int32, u, v int) *alloc.Placement {
	cands := g.PlaceCandidates(idx, u, v, s.opts)
	if len(cands) == 0 {
		return nil
	}
	switch s.cfg.Policy {
	case BestFit:
		// Most contiguous wins: lowest upper-layer alltoall traffic
		// fraction (the Fig. 9 locality metric).
		group := s.opts.TreeGroupBoards
		best, bestScore := cands[0], alloc.UpperLayerFraction(cands[0], alloc.TrafficAlltoall, group)
		for _, p := range cands[1:] {
			if score := alloc.UpperLayerFraction(p, alloc.TrafficAlltoall, group); score < bestScore {
				best, bestScore = p, score
			}
		}
		return best
	case FragAware:
		// Fragmentation-aware: the candidate that strands the fewest free
		// boards in its rows (best-fit by row occupancy), ties broken
		// toward locality.
		group := s.opts.TreeGroupBoards
		best, bestFrag, bestLoc := cands[0], fragScore(g, cands[0]), alloc.UpperLayerFraction(cands[0], alloc.TrafficAlltoall, group)
		for _, p := range cands[1:] {
			frag := fragScore(g, p)
			loc := alloc.UpperLayerFraction(p, alloc.TrafficAlltoall, group)
			if frag < bestFrag || (frag == bestFrag && loc < bestLoc) {
				best, bestFrag, bestLoc = p, frag, loc
			}
		}
		return best
	}
	return cands[0] // FirstFit: first feasible shape
}

// fragScore counts the free boards that would remain in the placement's
// rows after committing it — the capacity the placement strands.
func fragScore(g *alloc.Grid, p *alloc.Placement) int {
	free := 0
	for _, r := range p.Rows {
		for c := 0; c < g.X; c++ {
			if g.Owner(c, r) == alloc.Free {
				free++
			}
		}
	}
	return free - len(p.Rows)*len(p.Cols)
}

// reserve projects a start time and board set for a blocked head-of-queue
// job: the running jobs' scheduled completions are replayed in time order
// on a shadow grid, and the first release after which the policy's search
// finds a placement becomes the reservation. Failed boards stay failed in
// the projection (repairs are not anticipated), so reservations are
// conservative on degraded grids.
func (s *sim) reserve(now float64, idx int32, j *jobState) {
	type release struct {
		t   float64
		idx int32
	}
	var rels []release
	for i := range s.jobs {
		if s.jobs[i].running {
			rels = append(rels, release{s.jobs[i].completeT, int32(i)})
		}
	}
	if len(rels) == 0 {
		return // nothing will free up; no projection exists
	}
	sort.Slice(rels, func(a, b int) bool {
		if rels[a].t != rels[b].t {
			return rels[a].t < rels[b].t
		}
		return rels[a].idx < rels[b].idx
	})
	shadow := s.grid.Clone()
	for _, r := range rels {
		shadow.Release(r.idx)
		p := s.findPlacement(shadow, idx, j)
		if p == nil {
			continue
		}
		s.resJob = idx
		s.resTime = r.t
		if s.resBoards == nil {
			s.resBoards = make([]bool, s.grid.X*s.grid.Y)
		} else {
			for i := range s.resBoards {
				s.resBoards[i] = false
			}
		}
		for _, row := range p.Rows {
			for _, col := range p.Cols {
				s.resBoards[row*s.grid.X+col] = true
			}
		}
		s.met.Reservations++
		s.logf("t=%.4f reserve job=%d at=%.4f rows=%v cols=%v", now, j.tj.ID, r.t, p.Rows, p.Cols)
		return
	}
}

// tryBackfill places a job behind an active reservation if doing so cannot
// delay it: the job either finishes (including pending migration overhead)
// before the reservation starts, or its boards are disjoint from the
// reserved set. The finish estimate is contention-priced when interference
// is on — an isolation estimate would optimistically admit backfills whose
// contention-stretched runtimes overlap the reservation.
func (s *sim) tryBackfill(idx int32, j *jobState, t float64) bool {
	p := s.findPlacement(s.grid, idx, j)
	if p == nil {
		return false
	}
	slow, _ := s.priceSlowdown(p, j.tj, idx)
	finish := t + j.overheadPending + j.remaining*slow
	if finish > s.resTime+1e-9 && s.overlapsReservation(p) {
		return false
	}
	s.met.Backfills++
	s.start(idx, j, p, t)
	return true
}

// overlapsReservation reports whether any board of p is reserved.
func (s *sim) overlapsReservation(p *alloc.Placement) bool {
	for _, row := range p.Rows {
		for _, col := range p.Cols {
			if s.resBoards[row*s.grid.X+col] {
				return true
			}
		}
	}
	return false
}

func (s *sim) onComplete(ev event) {
	j := &s.jobs[ev.idx]
	if !j.running || j.epoch != ev.epoch {
		return // stale: the job was evicted after this completion was scheduled
	}
	j.running = false
	j.finished = true
	j.finishT = ev.t
	// Credit only the work beyond the last checkpoint: everything before
	// it was credited at the evictions that created the checkpoints.
	s.usefulH += j.remaining * float64(j.tj.Boards)
	j.done += j.remaining
	j.remaining = 0
	s.grid.Release(ev.idx)
	j.p = nil
	s.met.Completed++
	s.emitSpan(j.tj.ID, "run", j.startT, ev.t)
	s.logf("t=%.4f complete job=%d", ev.t, j.tj.ID)
	s.trySchedule(ev.t)
}

func (s *sim) onFail(ev event) {
	bx, by := ev.board[0], ev.board[1]
	if s.grid.Owner(bx, by) == alloc.Failed {
		// A failure striking an already-failed board changes nothing; the
		// pending repair (if any) still applies. A pass deferred by an
		// earlier same-instant failure still runs once the burst ends.
		s.logf("t=%.4f fail board=(%d,%d) already-down", ev.t, bx, by)
		if s.pendingFailSched {
			s.rescheduleAfterFail(ev.t)
		}
		return
	}
	s.met.Failures++
	s.emitInstant(traceTidCluster, "board-fail", ev.t)
	if s.cfg.Elastic {
		if owner := s.grid.Owner(bx, by); owner >= 0 && s.tryFailureShrink(owner, bx, by, ev.t) {
			// The trim freed the failed board (with the rest of its row or
			// column); mark it down without evicting anyone.
			s.grid.Fail(bx, by)
			if s.cfg.RepairH > 0 {
				s.events.push(event{t: ev.t + s.cfg.RepairH, kind: evRepair, board: ev.board})
			}
			s.logf("t=%.4f fail board=(%d,%d) shrink=%d", ev.t, bx, by, s.jobs[owner].tj.ID)
			s.rescheduleAfterFail(ev.t)
			return
		}
	}
	victim := s.grid.Fail(bx, by)
	if s.cfg.RepairH > 0 {
		s.events.push(event{t: ev.t + s.cfg.RepairH, kind: evRepair, board: ev.board})
	}
	if victim < 0 {
		s.logf("t=%.4f fail board=(%d,%d)", ev.t, bx, by)
		s.rescheduleAfterFail(ev.t) // capacity shrank but the queue may reshuffle shapes
		return
	}
	j := &s.jobs[victim]
	lost := s.evict(victim, j, ev.t)
	s.logf("t=%.4f fail board=(%d,%d) evict=%d lost=%.4fh", ev.t, bx, by, j.tj.ID, lost)
	s.enqueue(victim, ev.t, true)
	s.rescheduleAfterFail(ev.t)
}

// rescheduleAfterFail runs the scheduling pass after a board failure —
// unless more failures land at this same instant (a correlated burst), in
// which case the pass defers to the burst's last event: rescheduling
// mid-burst would place just-evicted jobs onto boards the same outage is
// about to kill, counting one physical outage as several evictions. The
// reservation is dropped either way (its projection predates the failure);
// the deferred pass recomputes it.
func (s *sim) rescheduleAfterFail(t float64) {
	if e, ok := s.events.peek(); ok && e.kind == evFail && e.t == t {
		s.pendingFailSched = true
		s.resJob = -1
		return
	}
	s.pendingFailSched = false
	s.trySchedule(t)
}

// rollback rolls a running job back to its last checkpoint, accounting the
// work past it as lost, and returns the lost ideal-hours. The caller frees
// the job's boards (Fail already did for evictions; defrag releases them
// explicitly) and requeues it.
func (s *sim) rollback(idx int32, j *jobState, t float64) float64 {
	// Migration overhead at the start of the run was checkpoint transfer,
	// not work; exclude it from progress.
	elapsed := t - j.startT - j.runOverheadH
	if elapsed < 0 {
		elapsed = 0
	}
	progress := elapsed / j.slowdown // ideal work hours achieved
	ckpt := progress
	if s.cfg.CheckpointH > 0 {
		// Checkpoints fire on wall-clock intervals; work captured by the
		// last one is the checkpointed wall time over the slowdown.
		ckpt = math.Floor(elapsed/s.cfg.CheckpointH) * s.cfg.CheckpointH / j.slowdown
	}
	if ckpt > progress {
		ckpt = progress
	}
	if s.cfg.Trace != nil {
		s.emitSpan(j.tj.ID, "evicted", j.startT, t)
		if s.cfg.CheckpointH > 0 && ckpt > 0 {
			// Wall time of the last completed checkpoint the job restarts
			// from.
			s.emitInstant(j.tj.ID, "checkpoint", j.startT+j.runOverheadH+ckpt*j.slowdown)
		}
		s.emitInstant(j.tj.ID, "evict", t)
	}
	lost := progress - ckpt
	j.done += ckpt
	j.remaining = j.tj.Service - j.done
	if j.remaining < 0 {
		j.remaining = 0
	}
	j.epoch++
	j.running = false
	j.p = nil
	s.usefulH += ckpt * float64(j.tj.Boards)
	s.met.LostBoardH += lost * float64(j.tj.Boards)
	return lost
}

// evict is rollback for a board-failure victim (the grid already freed the
// job's boards as part of Fail's eviction).
func (s *sim) evict(idx int32, j *jobState, t float64) float64 {
	lost := s.rollback(idx, j, t)
	s.met.Evictions++
	return lost
}

// maybeDefrag runs a checkpoint-migrate defragmentation pass when enabled,
// jobs are waiting, fragmentation crossed the threshold, the pass gap has
// elapsed, and there is something to migrate. Mid-burst events (a deferred
// failure pass is pending) never defrag: migrating onto boards the same
// outage is about to kill would churn placements.
func (s *sim) maybeDefrag(t float64) {
	if s.cfg.DefragThreshold <= 0 || len(s.queue) == 0 || s.pendingFailSched {
		return
	}
	gap := s.cfg.DefragMinGapH
	if gap <= 0 {
		gap = 1
	}
	if t < s.lastDefragT+gap {
		return
	}
	frag := s.grid.Fragmentation()
	if frag <= s.cfg.DefragThreshold {
		return
	}
	var running []int32
	for i := range s.jobs {
		if s.jobs[i].running {
			running = append(running, int32(i))
		}
	}
	if len(running) == 0 {
		return
	}
	s.defrag(t, frag, running)
}

// defrag checkpoints and evicts every running job, requeues them
// largest-first ahead of the waiting queue, and repacks through the
// policy's placement search. Each migrated job pays DefragCostH of
// checkpoint-transfer overhead, accounted as lost work and added to its
// restart schedule, on top of the usual rollback to its last checkpoint.
func (s *sim) defrag(t, frag float64, running []int32) {
	s.lastDefragT = t
	s.met.Defrags++
	s.emitInstant(traceTidCluster, "defrag", t)
	sort.Slice(running, func(a, b int) bool {
		ja, jb := &s.jobs[running[a]], &s.jobs[running[b]]
		if ja.tj.Boards != jb.tj.Boards {
			return ja.tj.Boards > jb.tj.Boards
		}
		return running[a] < running[b]
	})
	for _, idx := range running {
		j := &s.jobs[idx]
		s.rollback(idx, j, t)
		s.grid.Release(idx)
		j.overheadPending = s.cfg.DefragCostH
		j.queued = true
		j.queuedAt = t
		s.met.Migrations++
		cost := s.cfg.DefragCostH * float64(j.tj.Boards)
		s.met.MigratedBoardH += cost
		s.met.LostBoardH += cost
	}
	s.queue = append(running, s.queue...)
	s.logf("t=%.4f defrag frag=%.4f migrated=%d", t, frag, len(running))
	s.trySchedule(t)
}

func (s *sim) onRepair(ev event) {
	if s.grid.Repair(ev.board[0], ev.board[1]) {
		s.met.Repairs++
		s.emitInstant(traceTidCluster, "board-repair", ev.t)
		s.logf("t=%.4f repair board=(%d,%d)", ev.t, ev.board[0], ev.board[1])
		s.trySchedule(ev.t)
	}
}

// finish computes the aggregate metrics at the horizon.
func (s *sim) finish() {
	h := s.cfg.HorizonH
	// Work running at the horizon survives up to its last checkpoint.
	for i := range s.jobs {
		j := &s.jobs[i]
		if !j.running {
			if j.queued {
				s.met.Backlog++
			}
			continue
		}
		s.met.Backlog++
		elapsed := h - j.startT - j.runOverheadH
		if elapsed < 0 {
			elapsed = 0
		}
		ckpt := elapsed / j.slowdown
		if s.cfg.CheckpointH > 0 {
			ckpt = math.Floor(elapsed/s.cfg.CheckpointH) * s.cfg.CheckpointH / j.slowdown
		}
		if max := j.tj.Service - j.done; ckpt > max {
			ckpt = max
		}
		s.usefulH += ckpt * float64(j.tj.Boards)
	}
	if s.workingH > 0 {
		s.met.Utilization = s.allocH / s.workingH
		s.met.GoodputUtil = s.usefulH / s.workingH
	}
	if raw := float64(s.grid.X*s.grid.Y) * h; raw > 0 {
		s.met.Goodput = s.usefulH / raw
	}
	if tot := s.usefulH + s.met.LostBoardH; tot > 0 {
		s.met.LostFrac = s.met.LostBoardH / tot
	}
	var waits, slows []float64
	for i := range s.jobs {
		j := &s.jobs[i]
		if !j.finished {
			continue
		}
		waits = append(waits, j.wait)
		if j.tj.Service > 0 {
			slows = append(slows, (j.finishT-j.tj.Arrival)/j.tj.Service)
		}
	}
	s.met.WaitP50, s.met.WaitP99 = percentiles(waits)
	s.met.SlowP50, s.met.SlowP99 = percentiles(slows)
	// The large-job wait bound: completed large jobs contribute their full
	// accumulated wait, still-queued ones the wait they are suffering at
	// the horizon.
	for i := range s.jobs {
		j := &s.jobs[i]
		if j.tj.Boards < s.largeBoards {
			continue
		}
		w := j.wait
		if j.queued {
			w += h - j.queuedAt
		}
		if w > s.met.MaxWaitLarge {
			s.met.MaxWaitLarge = w
		}
	}
}

func percentiles(vals []float64) (p50, p99 float64) {
	if len(vals) == 0 {
		return 0, 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	pick := func(q float64) float64 { return s[int(q*float64(len(s)-1))] }
	return pick(0.5), pick(0.99)
}
