package sched

import (
	"strings"
	"testing"
)

// fragTrace fragments a 4x4 grid: four 2x2 jobs fill it at t=0, the two
// anti-diagonal blocks complete at t=2, and the surviving diagonal pair
// strands the 8 free boards in blocks no 2x4 job can use (the free rows
// share only 2 columns). The 8-board job that arrived at t=1 stays blocked
// until the long jobs finish at t=10 — unless defragmentation migrates
// them.
func fragTrace() []TraceJob {
	return []TraceJob{
		{ID: 0, Arrival: 0, Boards: 4, Service: 10}, // rows 0-1, cols 0-1 (FirstFit order)
		{ID: 1, Arrival: 0, Boards: 4, Service: 2},  // rows 0-1, cols 2-3
		{ID: 2, Arrival: 0, Boards: 4, Service: 2},  // rows 2-3, cols 0-1
		{ID: 3, Arrival: 0, Boards: 4, Service: 10}, // rows 2-3, cols 2-3
		{ID: 4, Arrival: 1, Boards: 8, Service: 4},  // 2x4: needs 4 common free columns
	}
}

// The defragmentation conformance pin: a checkpoint-migrate pass repacks
// the diagonal survivors, unblocks the 8-board job 8 hours earlier than
// waiting for the long jobs, and charges exactly the configured migration
// cost as lost work.
func TestDefragUnblocksFragmentedGrid(t *testing.T) {
	trace := fragTrace()
	base := Config{Policy: FirstFit, CheckpointH: 1, HorizonH: 30, RecordDecisions: true}

	plain, err := Run(4, 4, trace, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Defrags != 0 || plain.Migrations != 0 {
		t.Fatalf("defrag disabled but ran: %d passes, %d migrations", plain.Defrags, plain.Migrations)
	}
	// Without defrag the 8-board job waits for the t=10 completions: 9h.
	if plain.MaxWaitLarge != 9 {
		t.Fatalf("greedy large-job wait %.4fh, want 9h", plain.MaxWaitLarge)
	}

	cfg := base
	cfg.DefragThreshold = 0.3
	cfg.DefragCostH = 0.5
	m, err := Run(4, 4, trace, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// At t=2 the two short jobs complete, fragmentation hits
	// 1 - 4/8 = 0.5 > 0.3, and one pass migrates the two long jobs.
	if m.Defrags != 1 || m.Migrations != 2 {
		t.Fatalf("defrag passes %d migrations %d, want 1 and 2", m.Defrags, m.Migrations)
	}
	// The 8-board job places right after the t=2 pass: 1h wait.
	if m.MaxWaitLarge != 1 {
		t.Fatalf("defrag large-job wait %.4fh, want 1h", m.MaxWaitLarge)
	}
	// Migration cost: 0.5h x (4+4) boards, and nothing else — the long
	// jobs were exactly at their t=2 checkpoint, so the rollback loses 0.
	if m.MigratedBoardH != 4 || m.LostBoardH != 4 {
		t.Fatalf("migrated %.2f lost %.2f board-hours, want 4 and 4", m.MigratedBoardH, m.LostBoardH)
	}
	// Migrated jobs restart with the 0.5h transfer overhead: the long jobs
	// finish at 2 + 0.5 + 8 = 10.5h, the 8-board job at 2 + 4 = 6h.
	if m.Completed != len(trace) {
		t.Fatalf("completed %d, want %d", m.Completed, len(trace))
	}
	var sawDefrag bool
	for _, d := range m.Decisions {
		if strings.Contains(d, "defrag") {
			sawDefrag = true
			if !strings.Contains(d, "migrated=2") {
				t.Fatalf("defrag decision %q, want migrated=2", d)
			}
		}
	}
	if !sawDefrag {
		t.Fatal("no defrag decision logged")
	}
	// The win is latency, not volume: all work completes inside the
	// horizon either way (goodput ties), but the 8-board job finishes at
	// t=6 instead of t=14 — the MaxWaitLarge pins above (1h vs 9h) are the
	// conformance bound.
}
