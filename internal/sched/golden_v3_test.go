package sched

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

// goldenV3Trace is the contention-heavy scheduler-v3 golden input: an 8x8
// grid with 2-board switch groups (so most multi-board placements cross the
// tapered upper-layer fat-trees), communication-heavy jobs, and elastic and
// priority marks drawn from the side RNG stream.
func goldenV3Trace() []TraceJob {
	return Synthetic(TraceConfig{
		Jobs: 60, ArrivalRate: 8, MeanService: 5, MaxBoards: 48,
		CommFrac: 0.6, ElasticFrac: 0.5, PriorityFrac: 0.3,
	}, 2024)
}

func goldenV3Config(inf *Interference) Config {
	return Config{
		Policy: BestFit, CheckpointH: 2, HorizonH: 40,
		Slowdown:        &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2},
		Interference:    inf,
		Elastic:         true,
		Preempt:         true,
		RecordDecisions: true,
	}
}

// The scheduler-v3 golden trace: joint contention pricing, elastic jobs and
// priority preemption all on. The run replays an exact decision sequence —
// contention-stretched admissions, re-stretches as the contention set
// changes, shrunk admissions, regrows and preemptions. The complementary
// guarantees stay pinned elsewhere: TestGoldenTrace and
// TestGoldenBurstDefragReservationTrace replay bit-identically with all v3
// features off, and TestInterferenceInertEquivalence shows an inert
// contention model changes nothing. Update the constants only for
// deliberate semantic changes, never to quiet a diff you cannot explain.
func TestGoldenContentionElasticTrace(t *testing.T) {
	inf := &Interference{GroupBoards: 2, Taper: 0.25}
	m, err := Run(8, 8, goldenV3Trace(), nil, goldenV3Config(inf))
	if err != nil {
		t.Fatal(err)
	}
	// The head of the log: contention-priced admissions — job 5's 1x2
	// placement lands at slow=4.96 (vs 2.68 solo for the same shape at
	// job 0) because it interleaves with jobs 0 and 1 inside shared
	// column groups.
	wantHead := []string{
		"t=0.0434 arrive job=0 boards=2 service=3.5321",
		"t=0.0434 place job=0 shape=1x2 rows=[0] cols=[0 1] slow=2.6800 remaining=3.5321",
		"t=0.5109 arrive job=1 boards=1 service=2.4641",
		"t=0.5109 place job=1 shape=1x1 rows=[0] cols=[2] slow=1.0000 remaining=2.4641",
		"t=0.6374 arrive job=2 boards=1 service=2.9725",
		"t=0.6374 place job=2 shape=1x1 rows=[0] cols=[3] slow=1.0000 remaining=2.9725",
		"t=1.0133 arrive job=3 boards=8 service=2.2540",
		"t=1.0133 place job=3 shape=2x4 rows=[0 1] cols=[4 5 6 7] slow=4.0508 remaining=2.2540",
		"t=1.0448 arrive job=4 boards=1 service=2.4616",
		"t=1.0448 place job=4 shape=1x1 rows=[1] cols=[0] slow=1.0000 remaining=2.4616",
		"t=1.0695 arrive job=5 boards=2 service=2.4476",
		"t=1.0695 place job=5 shape=1x2 rows=[1] cols=[1 2] slow=4.9600 remaining=2.4476",
	}
	if len(m.Decisions) != 214 {
		t.Fatalf("got %d decisions, want 214", len(m.Decisions))
	}
	for i, want := range wantHead {
		if m.Decisions[i] != want {
			t.Fatalf("decision %d:\n got %q\nwant %q", i, m.Decisions[i], want)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(strings.Join(m.Decisions, "\n")))
	if got := h.Sum64(); got != 0x49a4cd9613fef03a {
		t.Fatalf("decision log hash %#016x, want 0x49a4cd9613fef03a", got)
	}
	gotMetrics := fmt.Sprintf("util=%.9f goodput=%.9f slowP99=%.9f", m.Utilization, m.Goodput, m.SlowP99)
	wantMetrics := "util=0.662935219 goodput=0.192939676 slowP99=6.918924928"
	if gotMetrics != wantMetrics {
		t.Fatalf("metrics:\n got %s\nwant %s", gotMetrics, wantMetrics)
	}
	gotCounts := fmt.Sprintf("restretches=%d shrinks=%d regrows=%d preemptions=%d completed=%d",
		m.Restretches, m.Shrinks, m.Regrows, m.Preemptions, m.Completed)
	wantCounts := "restretches=26 shrinks=5 regrows=7 preemptions=1 completed=54"
	if gotCounts != wantCounts {
		t.Fatalf("counts:\n got %s\nwant %s", gotCounts, wantCounts)
	}

	// Interference pricing must move the headline numbers: the same trace
	// priced in isolation (nil Interference) lands elsewhere.
	iso, err := Run(8, 8, goldenV3Trace(), nil, goldenV3Config(nil))
	if err != nil {
		t.Fatal(err)
	}
	if m.Goodput == iso.Goodput || m.SlowP99 == iso.SlowP99 {
		t.Fatalf("contention pricing did not move goodput (%.9f vs %.9f) or SlowP99 (%.9f vs %.9f)",
			m.Goodput, iso.Goodput, m.SlowP99, iso.SlowP99)
	}
	if iso.Restretches != 0 {
		t.Fatalf("isolation run restretched %d times, want 0", iso.Restretches)
	}
	// The joint solve is memoized: repeated contention sets hit the cache.
	stats := inf.Stats()
	if stats.Solves == 0 || stats.MemoHits == 0 {
		t.Fatalf("contention solver stats %+v: expected both solves and memo hits", stats)
	}
}

// TestInterferenceInertEquivalence pins the complementary off-switch
// guarantee at the decision-log level: attaching a contention model whose
// groups are wider than the grid (so every joint gamma is 1) replays the
// v2 golden run byte-identically — the pricing path is exercised but
// changes nothing.
func TestInterferenceInertEquivalence(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 50, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3}, 2024)
	base := Config{
		Policy: BestFit, CheckpointH: 2, HorizonH: 40,
		Slowdown: NewCommSlowdown(2, 2), Reservation: true,
		DefragThreshold: 0.25, DefragCostH: 0.05, RecordDecisions: true,
	}
	plain, err := Run(4, 4, trace, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	withInert := base
	withInert.Interference = &Interference{GroupBoards: 16} // 4x4 grid: one group, no shared uplinks
	inert, err := Run(4, 4, trace, nil, withInert)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Decisions) != len(inert.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(plain.Decisions), len(inert.Decisions))
	}
	for i := range plain.Decisions {
		if plain.Decisions[i] != inert.Decisions[i] {
			t.Fatalf("decision %d differs:\nplain %q\ninert %q", i, plain.Decisions[i], inert.Decisions[i])
		}
	}
	if plain.Goodput != inert.Goodput || plain.SlowP99 != inert.SlowP99 || inert.Restretches != 0 {
		t.Fatalf("inert contention model moved metrics: %+v vs %+v", plain, inert)
	}
}
