package sched

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// JobTraffic is one running (or hypothetical) job's contribution to the
// cluster's combined traffic matrix: its placement and the fraction of its
// time spent communicating.
type JobTraffic struct {
	Placement *alloc.Placement
	CommFrac  float64
}

// Interference prices cross-job contention on the shared upper-layer
// fat-trees. Each job's alltoall traffic is decomposed per the HxMesh
// dimension-ordered route — the row network at the source row, then the
// column network at the destination column — into weighted demands on a
// reduced contention network (one star-shaped tree per physical row and
// column, with only the tapered group uplinks capacity-constrained), and
// all jobs are priced jointly with the flow solver's weighted max-min
// fill (flowsim.TenantShares). The resulting contention factor for job j,
//
//	γ_j = soloShare_j / jointShare_j ≥ 1,
//
// is 1 exactly when j's upper-layer traffic is unaffected by the other
// jobs (self-congestion divides out: it is already priced by
// CommSlowdown's shape and spread terms), and grows as contenders steal
// tapered uplink bandwidth.
//
// Results are memoized by a canonical fingerprint of the placement set
// (grid dims + sorted per-job signatures, job identity excluded), so
// repeated pricing of the same contention set — including across sweep
// trials and workers — is deterministic and cheap. All methods are safe
// for concurrent use; one Interference is shared across a sweep.
type Interference struct {
	// BoardA, BoardB are accelerators per board dimension (zeros mean 2×2).
	BoardA, BoardB int
	// GroupBoards is the L1 fat-tree group width (zero means 16, matching
	// alloc and CommSlowdown). Grids no wider than one group have no
	// shared upper layer and every γ is 1.
	GroupBoards int
	// Taper scales the group uplink capacity (zero means 1 = full
	// bandwidth; the paper's economical builds taper 2:1..3:1, i.e. 0.5
	// or 0.33).
	Taper float64
	// MemoCap bounds the joint-pricing memo (zero means 4096); when full
	// the memo is cleared whole, keeping behaviour deterministic.
	MemoCap int

	mu    sync.Mutex
	nets  map[[2]int]*contentionNet
	memo  map[string][]float64 // joint shares, sorted-signature order
	solo  map[string]float64   // single-job shares by grid+signature
	stats InterferenceStats
}

// InterferenceStats counts memo effectiveness for the bench harness.
type InterferenceStats struct {
	Solves   int64 // joint pricings computed by the flow solver
	MemoHits int64 // joint pricings answered from the memo
}

// Stats returns cumulative counters.
func (in *Interference) Stats() InterferenceStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// contentionNet is the reduced upper-layer network of one grid size: Y row
// trees and X column trees, disjoint, each a two-level star whose only
// constrained links are the tapered group uplinks.
type contentionNet struct {
	solver *flowsim.Solver
	rowEp  [][]topo.NodeID // [row][col] endpoint in row tree `row`
	colEp  [][]topo.NodeID // [col][row] endpoint in column tree `col`
}

func (in *Interference) defaults() (a, b, group int, taper float64, memoCap int) {
	a, b = in.BoardA, in.BoardB
	if a <= 0 {
		a = 2
	}
	if b <= 0 {
		b = 2
	}
	group = in.GroupBoards
	if group <= 0 {
		group = 16
	}
	taper = in.Taper
	if taper <= 0 {
		taper = 1
	}
	memoCap = in.MemoCap
	if memoCap <= 0 {
		memoCap = 4096
	}
	return
}

// net returns (building on first use) the contention network for an X×Y
// grid. Caller holds in.mu.
func (in *Interference) net(X, Y int) *contentionNet {
	key := [2]int{X, Y}
	if cn, ok := in.nets[key]; ok {
		return cn
	}
	a, b, group, taper, _ := in.defaults()
	cable := topo.DefaultLinkParams().GBps
	const unconstrained = 1e12
	n := &topo.Network{Name: fmt.Sprintf("sched-contention-%dx%d-g%d", X, Y, group)}
	lat := topo.DefaultLinkParams().CableNS

	// buildTree adds one dimension tree with `width` endpoints grouped by
	// `group`; uplinkGBps is the per-board tapered upper-layer capacity.
	buildTree := func(width int, perBoardUp float64) []topo.NodeID {
		eps := make([]topo.NodeID, width)
		nGroups := (width + group - 1) / group
		var root topo.NodeID = topo.None
		if nGroups > 1 {
			root = n.AddNode(topo.Switch)
		}
		for gi := 0; gi < nGroups; gi++ {
			l1 := n.AddNode(topo.Switch)
			lo, hi := gi*group, (gi+1)*group
			if hi > width {
				hi = width
			}
			for x := lo; x < hi; x++ {
				eps[x] = n.AddNode(topo.Endpoint)
				n.Link(eps[x], l1, topo.AoC, unconstrained, lat)
			}
			if root != topo.None {
				n.Link(l1, root, topo.AoC, taper*float64(hi-lo)*perBoardUp, lat)
			}
		}
		return eps
	}

	cn := &contentionNet{
		rowEp: make([][]topo.NodeID, Y),
		colEp: make([][]topo.NodeID, X),
	}
	for r := 0; r < Y; r++ {
		cn.rowEp[r] = buildTree(X, 2*float64(b)*cable)
	}
	for c := 0; c < X; c++ {
		cn.colEp[c] = buildTree(Y, 2*float64(a)*cable)
	}
	comp := simcore.Compile(n) // private net: skip the interning cache
	cn.solver = flowsim.New(comp, routing.NewTable(comp), flowsim.Config{PathsPerFlow: 1, Seed: 1})
	if in.nets == nil {
		in.nets = make(map[[2]int]*contentionNet)
	}
	in.nets[key] = cn
	return cn
}

// signature is the canonical per-job fingerprint: contention pricing
// depends only on the placement geometry and comm fraction, never on job
// identity.
func jobSignature(j JobTraffic) string {
	var sb strings.Builder
	sb.WriteString(strconv.FormatFloat(j.CommFrac, 'g', 9, 64))
	sb.WriteByte('r')
	for _, r := range j.Placement.Rows {
		sb.WriteString(strconv.Itoa(r))
		sb.WriteByte(',')
	}
	sb.WriteByte('c')
	for _, c := range j.Placement.Cols {
		sb.WriteString(strconv.Itoa(c))
		sb.WriteByte(',')
	}
	return sb.String()
}

// demandsFor appends job t's alltoall demands on the contention net.
// Dimension-ordered routing splits each ordered board pair into a
// row-tree segment at the source row and a column-tree segment at the
// destination column; segments are aggregated per (src, dst) endpoint
// pair.
func (in *Interference) demandsFor(cn *contentionNet, j JobTraffic, tenant int32, agg map[[2]topo.NodeID]float64) {
	a, b, _, _, _ := in.defaults()
	p := j.Placement
	nBoards := p.U() * p.V()
	if nBoards <= 1 || j.CommFrac <= 0 {
		return
	}
	cable := topo.DefaultLinkParams().GBps
	ab := float64(a * b)
	// Per-board injection 4ab·cable·cf, spread uniformly over the job's
	// other accelerators; the slice aimed at one specific other board:
	w := 4 * ab * cable * j.CommFrac * ab / (float64(nBoards)*ab - 1)
	add := func(src, dst topo.NodeID) {
		agg[[2]topo.NodeID{src, dst}] += w
	}
	for _, r1 := range p.Rows {
		for _, c1 := range p.Cols {
			for _, r2 := range p.Rows {
				for _, c2 := range p.Cols {
					switch {
					case r1 == r2 && c1 == c2:
					case r1 == r2:
						add(cn.rowEp[r1][c1], cn.rowEp[r1][c2])
					case c1 == c2:
						add(cn.colEp[c1][r1], cn.colEp[c1][r2])
					default:
						add(cn.rowEp[r1][c1], cn.rowEp[r1][c2])
						add(cn.colEp[c2][r1], cn.colEp[c2][r2])
					}
				}
			}
		}
	}
}

// collectDemands flattens per-job aggregated demands in canonical order.
func collectDemands(aggs []map[[2]topo.NodeID]float64) []flowsim.Demand {
	var out []flowsim.Demand
	for t, agg := range aggs {
		keys := make([][2]topo.NodeID, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			out = append(out, flowsim.Demand{Src: k[0], Dst: k[1], Weight: agg[k], Tenant: int32(t)})
		}
	}
	return out
}

// Gammas prices the given jobs jointly on an X×Y grid and returns each
// job's contention factor γ ≥ 1 (γ=1: no cross-job interference on its
// upper-layer traffic). Jobs with no inter-board communication always get
// γ = 1. Pricing failures degrade to γ = 1 rather than poisoning the
// schedule.
func (in *Interference) Gammas(X, Y int, jobs []JobTraffic) []float64 {
	out := make([]float64, len(jobs))
	for i := range out {
		out[i] = 1
	}
	if len(jobs) == 0 {
		return out
	}
	_, _, group, _, memoCap := in.defaults()
	if X <= group && Y <= group {
		return out // no shared upper layer anywhere on this grid
	}

	// Canonical order: sort job indices by signature; tenant ids and the
	// memo key follow that order, so γ never depends on caller ordering.
	sigs := make([]string, len(jobs))
	for i, j := range jobs {
		sigs[i] = jobSignature(j)
	}
	order := make([]int, len(jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return sigs[order[i]] < sigs[order[j]] })
	var kb strings.Builder
	fmt.Fprintf(&kb, "%dx%d|", X, Y)
	for _, i := range order {
		kb.WriteString(sigs[i])
		kb.WriteByte('|')
	}
	key := kb.String()

	in.mu.Lock()
	defer in.mu.Unlock()
	joint, ok := in.memo[key]
	if ok {
		in.stats.MemoHits++
	} else {
		in.stats.Solves++
		cn := in.net(X, Y)
		aggs := make([]map[[2]topo.NodeID]float64, len(order))
		for t, i := range order {
			aggs[t] = make(map[[2]topo.NodeID]float64)
			in.demandsFor(cn, jobs[i], int32(t), aggs[t])
		}
		shares, err := cn.solver.TenantShares(collectDemands(aggs), len(order))
		if err != nil {
			shares = make([]float64, len(order))
			for t := range shares {
				shares[t] = 1
			}
		}
		joint = shares
		if in.memo == nil {
			in.memo = make(map[string][]float64)
		}
		if len(in.memo) >= memoCap {
			in.memo = make(map[string][]float64)
		}
		in.memo[key] = joint
	}

	gridKey := fmt.Sprintf("%dx%d|", X, Y)
	for t, i := range order {
		solo := in.soloShareLocked(X, Y, gridKey, sigs[i], jobs[i])
		g := 1.0
		if joint[t] > 0 {
			g = solo / joint[t]
		}
		if g < 1 {
			g = 1
		}
		out[i] = g
	}
	return out
}

// gammaFor prices a hypothetical placement for a job against the current
// running set (excluding job `exclude`, which is the job being priced when
// it is already running — regrow and failure trims re-price in place).
func (s *sim) gammaFor(p *alloc.Placement, tj TraceJob, exclude int32) float64 {
	if s.cfg.Interference == nil {
		return 1
	}
	var traffic []JobTraffic
	for i := range s.jobs {
		if int32(i) != exclude && s.jobs[i].running {
			traffic = append(traffic, JobTraffic{Placement: s.jobs[i].p, CommFrac: s.jobs[i].tj.CommFrac})
		}
	}
	traffic = append(traffic, JobTraffic{Placement: p, CommFrac: tj.CommFrac})
	g := s.cfg.Interference.Gammas(s.grid.X, s.grid.Y, traffic)
	return g[len(g)-1]
}

// priceSlowdown is the admission-time slowdown of a placement: the model's
// isolation price, contention-stretched through ContendedSlowdown when
// interference is on and the model supports it. The elastic width ratio is
// the caller's (it depends on the boards actually allocated).
func (s *sim) priceSlowdown(p *alloc.Placement, tj TraceJob, exclude int32) (slow, gamma float64) {
	gamma = s.gammaFor(p, tj, exclude)
	if cm, ok := s.cfg.Slowdown.(ContentionSlowdownModel); ok && gamma > 1 {
		slow = cm.ContendedSlowdown(p, tj, gamma)
	} else {
		slow = s.cfg.Slowdown.Slowdown(p, tj)
	}
	if slow < 1 {
		slow = 1
	}
	return slow, gamma
}

// reprice re-stretches every running job whose contention factor changed:
// the end of each scheduling pass recomputes the joint γ of the running
// set, and any job whose priced slowdown moved is re-baselined at t (its
// progress so far is credited at the old slowdown, its completion event is
// epoch-bumped and rescheduled at the new one — the same staleness
// mechanism rollback uses). A no-op when interference is off, keeping
// decision logs byte-identical.
func (s *sim) reprice(t float64) {
	if s.cfg.Interference == nil {
		return
	}
	cm, _ := s.cfg.Slowdown.(ContentionSlowdownModel)
	var idxs []int32
	var traffic []JobTraffic
	for i := range s.jobs {
		if s.jobs[i].running {
			idxs = append(idxs, int32(i))
			traffic = append(traffic, JobTraffic{Placement: s.jobs[i].p, CommFrac: s.jobs[i].tj.CommFrac})
		}
	}
	if len(idxs) == 0 {
		return
	}
	gammas := s.cfg.Interference.Gammas(s.grid.X, s.grid.Y, traffic)
	changed := false
	for k, idx := range idxs {
		j := &s.jobs[idx]
		gamma := gammas[k]
		var slow float64
		if cm != nil && gamma > 1 {
			slow = cm.ContendedSlowdown(j.p, j.tj, gamma)
		} else {
			slow = s.cfg.Slowdown.Slowdown(j.p, j.tj)
		}
		if slow < 1 {
			slow = 1
		}
		if wf := float64(j.tj.Boards) / float64(j.allocBoards); wf > 1 {
			slow *= wf
		}
		if slow == j.slowdown {
			j.gamma = gamma
			continue
		}
		s.rebaseline(idx, j, t, slow)
		j.gamma = gamma
		s.met.Restretches++
		changed = true
		s.logf("t=%.4f stretch job=%d gamma=%.4f slow=%.4f", t, j.tj.ID, gamma, slow)
	}
	if changed && s.resJob >= 0 {
		// Re-stretching moved completion times, so the reservation's
		// shadow projection is stale; recompute it against the new
		// schedule.
		idx := s.resJob
		s.resJob = -1
		s.reserve(t, idx, &s.jobs[idx])
	}
}

// soloShareLocked returns (memoized) the share job j achieves alone on the
// grid's contention net. Caller holds in.mu.
func (in *Interference) soloShareLocked(X, Y int, gridKey, sig string, j JobTraffic) float64 {
	key := gridKey + sig
	if s, ok := in.solo[key]; ok {
		return s
	}
	cn := in.net(X, Y)
	agg := make(map[[2]topo.NodeID]float64)
	in.demandsFor(cn, j, 0, agg)
	s := 1.0
	if len(agg) > 0 {
		shares, err := cn.solver.TenantShares(collectDemands([]map[[2]topo.NodeID]float64{agg}), 1)
		if err == nil {
			s = shares[0]
		}
	}
	if in.solo == nil {
		in.solo = make(map[string]float64)
	}
	if len(in.solo) >= 4096 {
		in.solo = make(map[string]float64)
	}
	in.solo[key] = s
	return s
}
