package sched

import "testing"

// adversarialTrace starves a large job under greedy backfill: four small
// jobs fill the 4x4 grid at t=0, the 16-board job arrives just behind
// them, and a steady stream of small jobs keeps part of the grid busy for
// hours — greedy places every small job the moment boards free, so all 16
// boards are never simultaneously free until the stream ends.
func adversarialTrace() []TraceJob {
	var jobs []TraceJob
	id := int32(0)
	add := func(arrival float64, boards int, service float64) {
		jobs = append(jobs, TraceJob{ID: id, Arrival: arrival, Boards: boards, Service: service})
		id++
	}
	for i := 0; i < 4; i++ {
		add(0, 4, 3)
	}
	add(0.5, 16, 4) // the large job
	for i := 0; i < 20; i++ {
		add(1+0.7*float64(i), 4, 3)
	}
	return jobs
}

// The reservation-backfill conformance pin: on the adversarial trace, EASY
// reservations bound the large job's wait strictly below greedy backfill.
// Under greedy the large job cannot start until the small-job stream dries
// up; with a reservation it starts the moment the four initial jobs
// complete (t=3, a 2.5h wait), because waiting smalls would outlive the
// reservation and overlap its boards.
func TestReservationBoundsLargeJobWait(t *testing.T) {
	trace := adversarialTrace()
	base := Config{Policy: FirstFit, HorizonH: 60}

	greedy, err := Run(4, 4, trace, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	res := base
	res.Reservation = true
	easy, err := Run(4, 4, trace, nil, res)
	if err != nil {
		t.Fatal(err)
	}

	if greedy.MaxWaitLarge <= 10 {
		t.Fatalf("adversarial trace is not adversarial: greedy large-job wait %.2fh, want > 10h", greedy.MaxWaitLarge)
	}
	if easy.MaxWaitLarge >= greedy.MaxWaitLarge {
		t.Fatalf("reservation did not bound large-job wait: %.2fh (reservation) vs %.2fh (greedy)",
			easy.MaxWaitLarge, greedy.MaxWaitLarge)
	}
	// Pinned: the large job starts when the four t=0 jobs complete at t=3.
	if easy.MaxWaitLarge != 2.5 {
		t.Fatalf("reservation large-job wait %.4fh, want exactly 2.5h", easy.MaxWaitLarge)
	}
	if easy.Reservations == 0 {
		t.Fatal("reservation run created no reservations")
	}
	// Both runs still finish the whole trace within the horizon.
	if greedy.Completed != len(trace) || easy.Completed != len(trace) {
		t.Fatalf("completed %d (greedy) / %d (reservation), want %d both",
			greedy.Completed, easy.Completed, len(trace))
	}
	// Reservations trade a little utilization for the wait bound; they must
	// not collapse it.
	if easy.Utilization < 0.5*greedy.Utilization {
		t.Fatalf("reservation utilization collapsed: %.3f vs greedy %.3f", easy.Utilization, greedy.Utilization)
	}
}

// With reservations enabled on a trace that never blocks, nothing changes:
// no reservations are created and the metrics match greedy exactly.
func TestReservationInertWhenNeverBlocked(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 40, ArrivalRate: 0.5, MeanService: 1, MaxBoards: 8}, 3)
	base := Config{Policy: BestFit, HorizonH: 200, RecordDecisions: true}
	a, err := Run(8, 8, trace, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	res := base
	res.Reservation = true
	b, err := Run(8, 8, trace, nil, res)
	if err != nil {
		t.Fatal(err)
	}
	if b.Reservations != 0 {
		t.Fatalf("unblocked trace created %d reservations", b.Reservations)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if a.Decisions[i] != b.Decisions[i] {
			t.Fatalf("decision %d differs:\n greedy      %q\n reservation %q", i, a.Decisions[i], b.Decisions[i])
		}
	}
}
