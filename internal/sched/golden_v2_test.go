package sched

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

// The scheduler-v2 golden trace: the same seeded 50-job trace and
// independent MTBF-30h failure process as TestGoldenTrace, plus a seeded
// 2x1-rack burst process, EASY reservations and threshold-triggered
// defragmentation. The run replays an exact 337-decision sequence —
// correlated burst failures, reservations, backfill admissions, defrag
// migrations — on top of the PR 3 machinery. TestGoldenTrace (unchanged)
// pins the complementary guarantee: with bursts, reservation and defrag
// all off, the decision log is bit-identical to the pre-v2 scheduler.
// Update the constants only for deliberate semantic changes, never to
// quiet a diff you cannot explain.
func TestGoldenBurstDefragReservationTrace(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 50, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3}, 2024)
	ind := NewFailures(gridBoardSequence(4, 4, 9), 40, 30, 9).Thin(30)
	bursts := NewBursts(4, 4, BurstShape{W: 2, H: 1}, 40, 0.08, 9)
	if bursts.Sampled() != 3 {
		t.Fatalf("burst process sampled %d bursts, want 3", bursts.Sampled())
	}
	burstEvents := bursts.Thin(0.08)
	if len(burstEvents) != 5 {
		t.Fatalf("bursts expand to %d board failures, want 5 (clipped regions)", len(burstEvents))
	}
	fails := MergeFailures(ind, burstEvents)

	m, err := Run(4, 4, trace, fails, Config{
		Policy: BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown: NewCommSlowdown(2, 2), Reservation: true,
		DefragThreshold: 0.25, DefragCostH: 0.05, RecordDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The head of the log: the first burst kills boards (0,0) and (1,0)
	// at one instant, before any job arrives.
	wantHead := []string{
		"t=0.0225 fail board=(0,0)",
		"t=0.0225 fail board=(1,0)",
		"t=0.0868 arrive job=0 boards=2 service=2.1193",
		"t=0.0868 place job=0 shape=1x2 rows=[0] cols=[2 3] slow=1.8400 remaining=2.1193",
		"t=0.7602 fail board=(3,0) evict=0 lost=0.3660h",
		"t=0.7602 place job=0 shape=1x2 rows=[1] cols=[0 1] slow=1.8400 remaining=2.1193",
		"t=1.0219 arrive job=1 boards=1 service=1.4784",
		"t=1.0219 place job=1 shape=1x1 rows=[0] cols=[2] slow=1.0000 remaining=1.4784",
		"t=1.2748 arrive job=2 boards=1 service=1.7835",
		"t=1.2748 place job=2 shape=1x1 rows=[1] cols=[2] slow=1.0000 remaining=1.7835",
		"t=2.0267 arrive job=3 boards=8 service=1.3524",
		"t=2.0267 place job=3 shape=2x4 rows=[2 3] cols=[0 1 2 3] slow=2.0039 remaining=1.3524",
	}
	if len(m.Decisions) != 337 {
		t.Fatalf("got %d decisions, want 337", len(m.Decisions))
	}
	for i, want := range wantHead {
		if m.Decisions[i] != want {
			t.Fatalf("decision %d:\n got %q\nwant %q", i, m.Decisions[i], want)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(strings.Join(m.Decisions, "\n")))
	if got := h.Sum64(); got != 0x4742dd8a9164c18e {
		t.Fatalf("decision log hash %#016x, want 0x4742dd8a9164c18e", got)
	}

	gotMetrics := fmt.Sprintf("util=%.9f goodput=%.9f lost=%.9f migrated=%.9f maxWaitLarge=%.9f",
		m.Utilization, m.Goodput, m.LostBoardH, m.MigratedBoardH, m.MaxWaitLarge)
	wantMetrics := "util=0.841675040 goodput=0.143139286 lost=138.996734846 migrated=7.550000000 maxWaitLarge=36.242123852"
	if gotMetrics != wantMetrics {
		t.Fatalf("metrics:\n got %s\nwant %s", gotMetrics, wantMetrics)
	}
	gotCounts := fmt.Sprintf("arrived=%d completed=%d evictions=%d reservations=%d backfills=%d defrags=%d migrations=%d failures=%d repairs=%d",
		m.Arrived, m.Completed, m.Evictions, m.Reservations, m.Backfills, m.Defrags, m.Migrations, m.Failures, m.Repairs)
	wantCounts := "arrived=50 completed=39 evictions=17 reservations=45 backfills=8 defrags=18 migrations=83 failures=22 repairs=19"
	if gotCounts != wantCounts {
		t.Fatalf("counts:\n got %s\nwant %s", gotCounts, wantCounts)
	}
}
