package sched

import (
	"sync"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/analysis"
	"hammingmesh/internal/flowsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/simcore"
	"hammingmesh/internal/topo"
)

// SlowdownModel maps a concrete placement to the factor by which it
// stretches a job's service time (≥ 1). Implementations must be safe for
// concurrent use: one model is shared across all trials of a sweep.
type SlowdownModel interface {
	Slowdown(p *alloc.Placement, job TraceJob) float64
}

// ContentionSlowdownModel extends SlowdownModel with joint pricing: gamma
// is the cross-job contention factor of the job's upper-layer traffic
// (≥ 1, from Interference), scaling the upper-layer crossing cost. A gamma
// of 1 must reproduce Slowdown exactly, so isolation pricing is the
// contended model's fixed point.
type ContentionSlowdownModel interface {
	SlowdownModel
	ContendedSlowdown(p *alloc.Placement, job TraceJob, gamma float64) float64
}

// NoSlowdown ignores placement: every job runs at its ideal service time.
type NoSlowdown struct{}

// Slowdown implements SlowdownModel.
func (NoSlowdown) Slowdown(*alloc.Placement, TraceJob) float64 { return 1 }

// CommSlowdown stretches the communication share of a job by the bandwidth
// its placement delivers. A u×v placement forms a virtual sub-HxMesh with
// the network properties of a physical u×v HxMesh (§III-E), so the shape
// term is the alltoall share of that virtual mesh — estimated once per
// distinct shape with the flow-level solver and cached (large shapes use
// the closed-form §III-A finite-mesh bound, calibrated to the flow
// estimate at the MaxAccels boundary so the two regimes meet continuously).
// On top of the shape term, the concrete placement pays for its spread: the
// fraction of dimension-network traversals crossing the upper fat-tree
// layer (the Fig. 9 quantity) scales the communication cost by
// 1 + UpperPenalty·fraction.
//
//	slowdown = (1 − commFrac) + commFrac · (shareRef/share) · (1 + UpperPenalty·upperFrac)
//
// where shareRef is the best (most compact) share observed for the board
// type, so an ideally placed job runs at slowdown ≈ 1 and anything worse
// pays proportionally.
type CommSlowdown struct {
	// BoardA, BoardB are the board dimensions in accelerators (2×2 for
	// Hx2Mesh, 4×4 for Hx4Mesh). Zeros mean 2×2.
	BoardA, BoardB int
	// GroupBoards is the L1 fat-tree group width for the upper-layer
	// fraction (zero means 16, as in alloc).
	GroupBoards int
	// UpperPenalty scales the upper-layer crossing cost. Zero means the
	// default of 1; a negative value explicitly disables the penalty
	// (upper-layer crossings become free). The negative sentinel keeps
	// "unset" and "off" distinguishable — the zero value of an options
	// struct must mean "default", never silently forbid a setting.
	UpperPenalty float64
	// MaxAccels caps the size of the virtual mesh the flow solver
	// evaluates; larger shapes use the calibrated analytic bound. Zero
	// means 1024.
	MaxAccels int
	// Shifts is the number of sampled alltoall shifts per shape estimate
	// (zero means 4).
	Shifts int

	mu    sync.Mutex
	cache map[[2]int]*shapeSlot

	// refOnce computes the analytic-bound calibration anchor (the largest
	// square shape the flow solver still evaluates) exactly once.
	refOnce  sync.Once
	refScale float64
}

type shapeSlot struct {
	once  sync.Once
	share float64
}

// NewCommSlowdown returns the default communication-slowdown model for an
// a×b-accelerator board.
func NewCommSlowdown(a, b int) *CommSlowdown {
	return &CommSlowdown{BoardA: a, BoardB: b}
}

func (m *CommSlowdown) defaults() (a, b, group, maxAccels, shifts int, penalty float64) {
	a, b = m.BoardA, m.BoardB
	if a <= 0 {
		a = 2
	}
	if b <= 0 {
		b = 2
	}
	group = m.GroupBoards
	if group <= 0 {
		group = 16
	}
	maxAccels = m.MaxAccels
	if maxAccels <= 0 {
		maxAccels = 1024
	}
	shifts = m.Shifts
	if shifts <= 0 {
		shifts = 4
	}
	// Zero means unset (default 1); negative is the explicit "disabled"
	// sentinel. Coercing every non-positive value to 1 — the old behaviour
	// — made the penalty impossible to turn off.
	penalty = m.UpperPenalty
	if penalty == 0 {
		penalty = 1
	} else if penalty < 0 {
		penalty = 0
	}
	return
}

// Slowdown implements SlowdownModel.
func (m *CommSlowdown) Slowdown(p *alloc.Placement, job TraceJob) float64 {
	return m.ContendedSlowdown(p, job, 1)
}

// ContendedSlowdown implements ContentionSlowdownModel: gamma scales the
// upper-layer crossing cost by the job's cross-job contention factor.
// ContendedSlowdown(p, job, 1) == Slowdown(p, job) bit for bit.
func (m *CommSlowdown) ContendedSlowdown(p *alloc.Placement, job TraceJob, gamma float64) float64 {
	cf := job.CommFrac
	if cf <= 0 {
		return 1
	}
	if cf > 1 {
		cf = 1
	}
	if gamma < 1 {
		gamma = 1
	}
	_, _, group, _, _, penalty := m.defaults()
	u, v := p.U(), p.V()
	share := m.shapeShare(u, v)
	ref := m.shapeShare(1, 1) // single-board reference: all comm on-board
	if share <= 0 {
		share = 1e-3 // defensive; flowsim shares are strictly positive
	}
	commCost := (ref / share) * (1 + penalty*gamma*alloc.UpperLayerFraction(p, alloc.TrafficAlltoall, group))
	if commCost < 1 {
		commCost = 1
	}
	return (1 - cf) + cf*commCost
}

// shapeShare returns the cached alltoall bandwidth share (fraction of
// injection) of a virtual u×v sub-HxMesh, computing it on first use.
// Concurrent callers for the same shape share one computation.
func (m *CommSlowdown) shapeShare(u, v int) float64 {
	key := [2]int{u, v}
	m.mu.Lock()
	if m.cache == nil {
		m.cache = make(map[[2]int]*shapeSlot)
	}
	slot, ok := m.cache[key]
	if !ok {
		slot = &shapeSlot{}
		m.cache[key] = slot
	}
	m.mu.Unlock()
	slot.once.Do(func() { slot.share = m.computeShare(u, v) })
	return slot.share
}

func (m *CommSlowdown) computeShare(u, v int) float64 {
	a, b, _, maxAccels, _, _ := m.defaults()
	if u*v <= 1 {
		// Single board: communication stays on the PCB mesh at full
		// bandwidth; the shape term is the reference itself.
		return 1
	}
	if u*v*a*b > maxAccels {
		// Large shapes: the closed-form finite-mesh bound, calibrated so
		// it meets the flow estimate at the MaxAccels boundary. The old
		// code returned the shape-independent asymptotic AlltoallShare(a,b)
		// here, pricing every large placement identically — exactly where
		// spread matters most.
		return analysis.AlltoallShareMesh(a, b, u, v) * m.boundaryScale()
	}
	return m.flowShare(u, v)
}

// flowShare is the flow-solver estimate of one virtual mesh's alltoall
// share (the small-shape path).
func (m *CommSlowdown) flowShare(u, v int) float64 {
	a, b, _, _, shifts, _ := m.defaults()
	h := topo.NewHxMesh(a, b, u, v, topo.DefaultLinkParams())
	c := simcore.Compile(h.Network) // throwaway: skip the interning cache
	table := routing.NewTable(c)
	s := flowsim.New(c, table, flowsim.Config{Seed: 1})
	inj := 4 * topo.DefaultLinkParams().GBps
	share, err := s.AlltoallShareOver(c.Endpoints, shifts, inj, 1)
	if err != nil {
		// The virtual mesh is always connected; treat a solver failure as
		// the analytic bound rather than poisoning the schedule.
		return analysis.AlltoallShareMesh(a, b, u, v)
	}
	return share
}

// boundaryScale calibrates the analytic bound against the flow solver: the
// largest square shape still below MaxAccels anchors the ratio
// flowShare/analyticBound, so the two regimes agree (up to the solver's
// sampling noise) where they hand over.
func (m *CommSlowdown) boundaryScale() float64 {
	m.refOnce.Do(func() {
		a, b, _, maxAccels, _, _ := m.defaults()
		s := 1
		for (s+1)*(s+1)*a*b <= maxAccels {
			s++
		}
		if s < 2 {
			// No multi-board shape fits the budget: nothing to anchor to;
			// use the uncalibrated bound.
			m.refScale = 1
			return
		}
		bound := analysis.AlltoallShareMesh(a, b, s, s)
		flow := m.flowShare(s, s)
		if bound <= 0 || flow <= 0 {
			m.refScale = 1
			return
		}
		m.refScale = flow / bound
	})
	return m.refScale
}
