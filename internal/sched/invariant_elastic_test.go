package sched

import (
	"fmt"
	"testing"
)

// The v3 companion to TestInvariantsUnderAllPolicyCombos: the same global
// invariants are checked after every event under the contention-pricing,
// elastic and preemption features, alone and combined, on a trace with
// elastic and priority marks and a failure process that exercises both the
// failure-trim and eviction paths.
func TestInvariantsUnderContentionElasticCombos(t *testing.T) {
	const x, y = 6, 6
	const horizon = 150.0
	trace := Synthetic(TraceConfig{
		Jobs: 450, ArrivalRate: 3, MeanService: 2.5, MaxBoards: 24,
		CommFrac: 0.4, ElasticFrac: 0.4, PriorityFrac: 0.3,
	}, 77)
	seq := gridBoardSequence(x, y, 5)
	fails := NewFailures(seq, horizon, 8, 5).Thin(8)

	combos := []struct {
		name                       string
		interference, elastic, pre bool
	}{
		{"interference", true, false, false},
		{"elastic", false, true, false},
		{"preempt", false, false, true},
		{"all", true, true, true},
	}
	for _, c := range combos {
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				Policy: BestFit, CheckpointH: 1.5, RepairH: 6, HorizonH: horizon,
				Reservation: true,
				Elastic:     c.elastic,
				Preempt:     c.pre,
				Slowdown:    &CommSlowdown{BoardA: 2, BoardB: 2, GroupBoards: 2},
			}
			if c.interference {
				cfg.Interference = &Interference{GroupBoards: 2, Taper: 0.25}
			}
			events := 0
			prevEpoch := make([]int32, len(trace))
			cfg.observer = func(s *sim, ev event) {
				events++
				checkInvariants(t, s, prevEpoch, events)
			}
			m, err := Run(x, y, trace, fails, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if events < 2000 {
				t.Fatalf("processed %d events, want ≥ 2000 (grow the trace)", events)
			}
			if m.Goodput > m.Utilization+1e-9 || m.GoodputUtil > m.Utilization+1e-9 {
				t.Fatalf("goodput %.6f / goodput-util %.6f above utilization %.6f",
					m.Goodput, m.GoodputUtil, m.Utilization)
			}
			if !c.interference && m.Restretches != 0 {
				t.Fatalf("interference off but restretched %d times", m.Restretches)
			}
			if !c.elastic && (m.Shrinks != 0 || m.Regrows != 0) {
				t.Fatalf("elastic off but shrank %d / regrew %d times", m.Shrinks, m.Regrows)
			}
			if !c.pre && m.Preemptions != 0 {
				t.Fatalf("preempt off but preempted %d times", m.Preemptions)
			}
			summary := fmt.Sprintf("restretch=%d shrink=%d regrow=%d preempt=%d", m.Restretches, m.Shrinks, m.Regrows, m.Preemptions)
			switch {
			case c.interference && m.Restretches == 0:
				t.Fatalf("interference on but inert (%s); tune the trace", summary)
			case c.elastic && m.Shrinks == 0:
				t.Fatalf("elastic on but inert (%s); tune the trace", summary)
			case c.pre && m.Preemptions == 0:
				t.Fatalf("preempt on but inert (%s); tune the trace", summary)
			}
		})
	}
}
