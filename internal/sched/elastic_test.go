package sched

import (
	"strings"
	"testing"
)

// TestElasticShrinkAndRegrow: a 4x4 grid holds an 8-board job; a 16-board
// elastic job arrives while it runs, so it must be admitted shrunk (halving
// toward MinBoards), then regrow to full width once the first job completes
// and the queue drains.
func TestElasticShrinkAndRegrow(t *testing.T) {
	trace := []TraceJob{
		{ID: 0, Arrival: 0, Boards: 8, Service: 1},
		{ID: 1, Arrival: 0.1, Boards: 16, Service: 10, MinBoards: 2},
	}
	m, err := Run(4, 4, trace, nil, Config{Elastic: true, HorizonH: 100, RecordDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Shrinks < 1 {
		t.Errorf("Shrinks = %d, want ≥1 (job 1 should be admitted shrunk)", m.Shrinks)
	}
	if m.Regrows < 1 {
		t.Errorf("Regrows = %d, want ≥1 (job 1 should regrow after job 0 completes)", m.Regrows)
	}
	if m.Completed != 2 {
		t.Errorf("Completed = %d, want 2", m.Completed)
	}
	var sawShrink, sawRegrow bool
	for _, d := range m.Decisions {
		sawShrink = sawShrink || strings.Contains(d, "shrink job=1")
		sawRegrow = sawRegrow || strings.Contains(d, "regrow job=1")
	}
	if !sawShrink || !sawRegrow {
		t.Errorf("decision log missing shrink/regrow lines: shrink=%v regrow=%v", sawShrink, sawRegrow)
	}
	// Without Elastic the same trace leaves job 1 waiting for the full grid.
	m2, err := Run(4, 4, trace, nil, Config{HorizonH: 100})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Shrinks != 0 || m2.Regrows != 0 {
		t.Errorf("rigid run recorded elastic activity: %+v", m2)
	}
	if m.WaitP99 > m2.WaitP99 {
		t.Errorf("elastic wait %.3f worse than rigid %.3f", m.WaitP99, m2.WaitP99)
	}
}

// TestElasticFailureTrim: an elastic full-grid job rides out a board failure
// by trimming the failed row/column instead of being evicted.
func TestElasticFailureTrim(t *testing.T) {
	trace := []TraceJob{{ID: 0, Arrival: 0, Boards: 16, Service: 2, MinBoards: 4}}
	fails := []FailEvent{{Time: 0.5, Board: [2]int{0, 0}}}
	m, err := Run(4, 4, trace, fails, Config{Elastic: true, HorizonH: 100, CheckpointH: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Evictions != 0 {
		t.Errorf("Evictions = %d, want 0 (failure trim should keep the job running)", m.Evictions)
	}
	if m.Shrinks < 1 {
		t.Errorf("Shrinks = %d, want ≥1", m.Shrinks)
	}
	if m.Completed != 1 {
		t.Errorf("Completed = %d, want 1", m.Completed)
	}
	if m.LostBoardH != 0 {
		t.Errorf("LostBoardH = %g, want 0 (trims are free re-baselines)", m.LostBoardH)
	}
	// Rigid comparison: the same failure evicts and rolls back.
	m2, err := Run(4, 4, trace, fails, Config{HorizonH: 100, CheckpointH: 5})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Evictions != 1 {
		t.Errorf("rigid Evictions = %d, want 1", m2.Evictions)
	}
}

// TestPreemption: a higher-priority arrival checkpoint-evicts a running
// lower-priority job when the grid is full, and the victim requeues and
// finishes later.
func TestPreemption(t *testing.T) {
	trace := []TraceJob{
		{ID: 0, Arrival: 0, Boards: 16, Service: 10},
		{ID: 1, Arrival: 1, Boards: 4, Service: 2, Priority: 2},
	}
	m, err := Run(4, 4, trace, nil, Config{Preempt: true, HorizonH: 200, CheckpointH: 3, RecordDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions != 1 {
		t.Errorf("Preemptions = %d, want 1", m.Preemptions)
	}
	if m.Completed != 2 {
		t.Errorf("Completed = %d, want 2", m.Completed)
	}
	var sawPreempt bool
	for _, d := range m.Decisions {
		sawPreempt = sawPreempt || strings.Contains(d, "preempt victim=0 by=1")
	}
	if !sawPreempt {
		t.Error("decision log missing preempt line")
	}
	// Victims pay the checkpoint rollback, unlike elastic trims.
	if m.LostBoardH <= 0 {
		t.Errorf("LostBoardH = %g, want >0 (victim rolls back)", m.LostBoardH)
	}
	// Priority ordering respected: equal/higher-priority jobs are safe.
	m2, err := Run(4, 4, trace, nil, Config{HorizonH: 200, CheckpointH: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m2.Preemptions != 0 {
		t.Errorf("Preempt off still preempted %d times", m2.Preemptions)
	}
	samePrio := []TraceJob{
		{ID: 0, Arrival: 0, Boards: 16, Service: 10, Priority: 2},
		{ID: 1, Arrival: 1, Boards: 4, Service: 2, Priority: 2},
	}
	m3, err := Run(4, 4, samePrio, nil, Config{Preempt: true, HorizonH: 200, CheckpointH: 3})
	if err != nil {
		t.Fatal(err)
	}
	if m3.Preemptions != 0 {
		t.Errorf("equal priority preempted %d times, want 0", m3.Preemptions)
	}
}

// TestPreemptVictimOrder: the lowest-priority, largest victim dies first.
func TestPreemptVictimOrder(t *testing.T) {
	trace := []TraceJob{
		{ID: 0, Arrival: 0, Boards: 8, Service: 10, Priority: 1},
		{ID: 1, Arrival: 0, Boards: 8, Service: 10, Priority: 0},
		{ID: 2, Arrival: 1, Boards: 8, Service: 1, Priority: 2},
	}
	m, err := Run(4, 4, trace, nil, Config{Preempt: true, HorizonH: 200, CheckpointH: 1, RecordDecisions: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Preemptions != 1 {
		t.Fatalf("Preemptions = %d, want 1", m.Preemptions)
	}
	for _, d := range m.Decisions {
		if strings.Contains(d, "preempt victim=") && !strings.Contains(d, "preempt victim=1 ") {
			t.Fatalf("wrong victim: %s", d)
		}
	}
}

// TestElasticInterferencePriced: shrunk placements are priced through the
// contention model like any other (smoke: run completes with both on).
func TestElasticCombinedFeaturesSmoke(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 120, ArrivalRate: 8, MeanService: 5, MaxBoards: 48,
		CommFrac: 0.6, ElasticFrac: 0.5, PriorityFrac: 0.3}, 11)
	inf := &Interference{GroupBoards: 2, Taper: 0.25}
	m, err := Run(8, 8, trace, nil, Config{
		Policy:       BestFit,
		Elastic:      true,
		Preempt:      true,
		Interference: inf,
		Slowdown:     NewCommSlowdown(2, 2),
		HorizonH:     60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Completed == 0 {
		t.Fatal("nothing completed")
	}
	if m.Shrinks == 0 && m.Preemptions == 0 && m.Restretches == 0 {
		t.Errorf("no elastic/contention activity at all: %+v", m)
	}
}
