package sched

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"hammingmesh/internal/alloc"
)

func TestSyntheticDeterministicAndSorted(t *testing.T) {
	cfg := TraceConfig{Jobs: 200, ArrivalRate: 3, MeanService: 4, MaxBoards: 32, CommFrac: 0.3}
	a := Synthetic(cfg, 7)
	b := Synthetic(cfg, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed) produced different traces")
	}
	if len(a) != 200 {
		t.Fatalf("got %d jobs, want 200", len(a))
	}
	for i, j := range a {
		if j.ID != int32(i) {
			t.Fatalf("job %d has id %d", i, j.ID)
		}
		if i > 0 && j.Arrival < a[i-1].Arrival {
			t.Fatalf("arrivals not sorted at %d", i)
		}
		if j.Boards < 1 || j.Boards > 32 {
			t.Fatalf("job %d has %d boards outside [1,32]", i, j.Boards)
		}
		if j.Service <= 0 {
			t.Fatalf("job %d has service %g", i, j.Service)
		}
	}
	if c := Synthetic(cfg, 8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestParseTrace(t *testing.T) {
	jobs, err := ParseTrace([]byte(`[
		{"id": 1, "arrival_h": 2.5, "boards": 4, "service_h": 1.5},
		{"id": 0, "arrival_h": 0.5, "boards": 1, "service_h": 3, "comm_frac": 0.4}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != 0 || jobs[1].ID != 1 {
		t.Fatalf("expected arrival-sorted jobs, got %+v", jobs)
	}
	for _, bad := range []string{
		`[{"id": -1, "arrival_h": 0, "boards": 1, "service_h": 1}]`,
		`[{"id": 0, "arrival_h": 0, "boards": 0, "service_h": 1}]`,
		`[{"id": 0, "arrival_h": 0, "boards": 1, "service_h": 0}]`,
		`[{"id": 0, "arrival_h": -1, "boards": 1, "service_h": 1}]`,
		`[{"id": 0, "arrival_h": 0, "boards": 1, "service_h": 1, "comm_frac": 2}]`,
		`[{"id": 0, "arrival_h": 0, "boards": 1, "service_h": 1},
		  {"id": 0, "arrival_h": 1, "boards": 1, "service_h": 1}]`,
		`{"not": "an array"}`,
	} {
		if _, err := ParseTrace([]byte(bad)); err == nil {
			t.Fatalf("trace %s parsed without error", bad)
		}
	}
}

func TestFailuresNestedAcrossMTBF(t *testing.T) {
	seq := gridBoardSequence(8, 8, 3)
	f := NewFailures(seq, 500, 20, 3)
	if !f.Validate() {
		t.Fatal("failure events not sorted")
	}
	prev := f.Thin(20) // the sampling rate: everything
	if len(prev) != len(f.events) {
		t.Fatalf("Thin at the sampling MTBF kept %d of %d events", len(prev), len(f.events))
	}
	for _, mtbf := range []float64{50, 100, 400, 2000} {
		cur := f.Thin(mtbf)
		if len(cur) > len(prev) {
			t.Fatalf("mtbf %.0f kept more events (%d) than a shorter mtbf (%d)", mtbf, len(cur), len(prev))
		}
		// Nesting: every kept event appears in the shorter-MTBF set.
		i := 0
		for _, e := range cur {
			for i < len(prev) && prev[i] != e {
				i++
			}
			if i == len(prev) {
				t.Fatalf("mtbf %.0f event at t=%.3f not nested in shorter-MTBF set", mtbf, e.Time)
			}
		}
		prev = cur
	}
	if got := f.Thin(0); got != nil {
		t.Fatalf("Thin(0) returned %d events, want none", len(got))
	}
	if got := NewFailures(nil, 100, 50, 1).Thin(50); got != nil {
		t.Fatal("empty board sequence produced failures")
	}
}

func TestRunCompletesLightTrace(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 60, ArrivalRate: 1, MeanService: 2, MaxBoards: 16}, 5)
	for _, p := range Policies() {
		m, err := Run(8, 8, trace, nil, Config{Policy: p, HorizonH: 500})
		if err != nil {
			t.Fatal(err)
		}
		if m.Arrived != 60 || m.Completed != 60 || m.Rejected != 0 || m.Backlog != 0 {
			t.Fatalf("%s: arrived %d completed %d rejected %d backlog %d", p, m.Arrived, m.Completed, m.Rejected, m.Backlog)
		}
		if m.Evictions != 0 || m.LostBoardH != 0 {
			t.Fatalf("%s: evictions %d lost %g without failures", p, m.Evictions, m.LostBoardH)
		}
		if m.Utilization <= 0 || m.Utilization > 1 {
			t.Fatalf("%s: utilization %g outside (0,1]", p, m.Utilization)
		}
		if m.Goodput <= 0 || m.Goodput > m.Utilization+1e-12 {
			t.Fatalf("%s: goodput %g outside (0, utilization=%g]", p, m.Goodput, m.Utilization)
		}
		if m.SlowP50 < 1 {
			t.Fatalf("%s: median slowdown %g < 1", p, m.SlowP50)
		}
	}
}

// A full-grid job hit by a board failure mid-run: the work past the last
// checkpoint is lost, the job waits for the repair, restarts and finishes.
// Every number is hand-computable.
func TestEvictCheckpointRestart(t *testing.T) {
	trace := []TraceJob{{ID: 0, Arrival: 0, Boards: 16, Service: 10}}
	fails := []FailEvent{{Time: 5, Board: [2]int{1, 1}}}
	m, err := Run(4, 4, trace, fails, Config{
		Policy: FirstFit, CheckpointH: 2, RepairH: 3, HorizonH: 40, RecordDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// t=0 place (16 boards, slowdown 1); t=5 fail: elapsed 5h, checkpoints
	// at 2h and 4h -> 1h lost, remaining 6h; repair at t=8, restart, done
	// at t=14.
	if m.Completed != 1 || m.Evictions != 1 || m.Failures != 1 || m.Repairs != 1 {
		t.Fatalf("completed %d evictions %d failures %d repairs %d", m.Completed, m.Evictions, m.Failures, m.Repairs)
	}
	if m.LostBoardH != 1*16 {
		t.Fatalf("lost %g board-hours, want 16", m.LostBoardH)
	}
	if m.WaitP50 != 3 {
		t.Fatalf("wait %g hours, want 3 (eviction to repair)", m.WaitP50)
	}
	// Slowdown: finished at 14 over 10h of service.
	if m.SlowP50 != 1.4 {
		t.Fatalf("slowdown %g, want 1.4", m.SlowP50)
	}
	var placed, completed int
	for _, d := range m.Decisions {
		if strings.Contains(d, "place job=0") {
			placed++
		}
		if strings.Contains(d, "complete job=0") {
			completed++
		}
	}
	if placed != 2 || completed != 1 {
		t.Fatalf("decision log: %d placements, %d completions (want 2, 1)\n%s",
			placed, completed, strings.Join(m.Decisions, "\n"))
	}

	// Continuous checkpointing (CheckpointH == 0) loses nothing.
	m2, err := Run(4, 4, trace, fails, Config{Policy: FirstFit, RepairH: 3, HorizonH: 40})
	if err != nil {
		t.Fatal(err)
	}
	if m2.LostBoardH != 0 || m2.Completed != 1 {
		t.Fatalf("continuous checkpointing lost %g board-hours, completed %d", m2.LostBoardH, m2.Completed)
	}
}

// Jobs whose shape cannot fit the grid dimensions are rejected up front via
// the typed allocator error, not queued forever.
func TestRejectNeverFits(t *testing.T) {
	trace := []TraceJob{
		{ID: 0, Arrival: 0, Boards: 17, Service: 1}, // 17 > 4x4 grid
		{ID: 1, Arrival: 0.5, Boards: 4, Service: 1},
	}
	m, err := Run(4, 4, trace, nil, Config{Policy: BestFit, HorizonH: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rejected != 1 || m.Completed != 1 {
		t.Fatalf("rejected %d completed %d, want 1 and 1", m.Rejected, m.Completed)
	}

	// The typed errors themselves.
	g := alloc.NewGrid(4, 4)
	_, err = g.AllocateErr(0, 5, 5, alloc.DefaultOptions())
	var never *alloc.ErrNeverFits
	if !errors.As(err, &never) {
		t.Fatalf("5x5 on 4x4: got %v, want *ErrNeverFits", err)
	}
	if _, ok := g.Allocate(1, 4, 4, alloc.DefaultOptions()); !ok {
		t.Fatal("4x4 should place on an empty 4x4 grid")
	}
	_, err = g.AllocateErr(2, 2, 2, alloc.DefaultOptions())
	var noCap *alloc.ErrNoCapacity
	if !errors.As(err, &noCap) {
		t.Fatalf("2x2 on a full grid: got %v, want *ErrNoCapacity", err)
	}
	if noCap.Free != 0 {
		t.Fatalf("ErrNoCapacity.Free = %d, want 0", noCap.Free)
	}
}

// Runs are deterministic: the same inputs give the same decision log.
func TestRunDeterministic(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 80, ArrivalRate: 4, MeanService: 3, MaxBoards: 20, CommFrac: 0.25}, 11)
	seq := gridBoardSequence(6, 6, 4)
	fails := NewFailures(seq, 60, 40, 4).Thin(40)
	cfg := Config{Policy: FragAware, CheckpointH: 1.5, RepairH: 8, HorizonH: 60,
		Slowdown: NewCommSlowdown(2, 2), RecordDecisions: true}
	a, err := Run(6, 6, trace, fails, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(6, 6, trace, fails, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical inputs produced different runs")
	}
	if a.Evictions == 0 {
		t.Fatal("test wants a scenario with evictions; tune the failure process")
	}
}

func TestCommSlowdown(t *testing.T) {
	m := NewCommSlowdown(2, 2)
	job := TraceJob{CommFrac: 0.5}
	one := &alloc.Placement{Job: 0, Rows: []int{0}, Cols: []int{0}}
	if s := m.Slowdown(one, job); s != 1 {
		t.Fatalf("single-board slowdown %g, want 1", s)
	}
	compact := &alloc.Placement{Job: 1, Rows: []int{0, 1}, Cols: []int{0, 1}}
	spread := &alloc.Placement{Job: 2, Rows: []int{0, 1}, Cols: []int{0, 40}}
	sc, ss := m.Slowdown(compact, job), m.Slowdown(spread, job)
	if sc <= 1 {
		t.Fatalf("2x2-board slowdown %g, want > 1 (communication leaves the board)", sc)
	}
	if ss <= sc {
		t.Fatalf("spread placement slowdown %g not above compact %g", ss, sc)
	}
	if m.Slowdown(compact, TraceJob{}) != 1 {
		t.Fatal("compute-bound job (CommFrac 0) must not slow down")
	}
	if again := m.Slowdown(compact, job); again != sc {
		t.Fatalf("cached slowdown changed: %g != %g", again, sc)
	}
}
