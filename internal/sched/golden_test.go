package sched

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"
)

// The golden trace test: a seeded 50-job trace on a 4x4 grid with a
// seeded MTBF-30h failure process replays an exact decision sequence —
// every placement (rows, columns, slowdown), eviction (lost work), repair
// and completion. Any change to trace synthesis, the failure process, the
// allocator's candidate order, the slowdown model or the event loop's
// tie-breaking shows up here. Update the constants only for deliberate
// semantic changes, never to quiet a diff you cannot explain.
func TestGoldenTrace(t *testing.T) {
	trace := Synthetic(TraceConfig{Jobs: 50, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3}, 2024)
	if len(trace) != 50 {
		t.Fatalf("trace has %d jobs, want 50", len(trace))
	}
	fails := NewFailures(gridBoardSequence(4, 4, 9), 40, 30, 9).Thin(30)
	if len(fails) != 18 {
		t.Fatalf("failure process has %d events, want 18", len(fails))
	}
	m, err := Run(4, 4, trace, fails, Config{
		Policy: BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown: NewCommSlowdown(2, 2), RecordDecisions: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	wantHead := []string{
		"t=0.0868 arrive job=0 boards=2 service=2.1193",
		"t=0.0868 place job=0 shape=1x2 rows=[0] cols=[0 1] slow=1.8400 remaining=2.1193",
		"t=0.7602 fail board=(3,0)",
		"t=1.0219 arrive job=1 boards=1 service=1.4784",
		"t=1.0219 place job=1 shape=1x1 rows=[0] cols=[2] slow=1.0000 remaining=1.4784",
		"t=1.2748 arrive job=2 boards=1 service=1.7835",
		"t=1.2748 place job=2 shape=1x1 rows=[1] cols=[0] slow=1.0000 remaining=1.7835",
		"t=2.0267 arrive job=3 boards=8 service=1.3524",
		"t=2.0267 place job=3 shape=2x4 rows=[2 3] cols=[0 1 2 3] slow=2.0039 remaining=1.3524",
		"t=2.0673 fail board=(1,0) evict=0 lost=1.0764h",
		"t=2.0673 place job=0 shape=1x2 rows=[1] cols=[1 2] slow=1.8400 remaining=2.1193",
		"t=2.0897 arrive job=4 boards=1 service=1.4770",
	}
	if len(m.Decisions) != 190 {
		t.Fatalf("got %d decisions, want 190", len(m.Decisions))
	}
	for i, want := range wantHead {
		if m.Decisions[i] != want {
			t.Fatalf("decision %d:\n got %q\nwant %q", i, m.Decisions[i], want)
		}
	}
	h := fnv.New64a()
	h.Write([]byte(strings.Join(m.Decisions, "\n")))
	if got := h.Sum64(); got != 0xd6ec176b702449fb {
		t.Fatalf("decision log hash %#016x, want 0xd6ec176b702449fb", got)
	}

	gotMetrics := fmt.Sprintf("util=%.9f goodput=%.9f lost=%.9f waitP50=%.9f waitP99=%.9f slowP50=%.9f slowP99=%.9f",
		m.Utilization, m.Goodput, m.LostBoardH, m.WaitP50, m.WaitP99, m.SlowP50, m.SlowP99)
	wantMetrics := "util=0.636863720 goodput=0.244173453 lost=26.136030137 waitP50=0.785393366 waitP99=6.665605476 slowP50=1.530314587 slowP99=5.737136805"
	if gotMetrics != wantMetrics {
		t.Fatalf("metrics:\n got %s\nwant %s", gotMetrics, wantMetrics)
	}
	gotCounts := fmt.Sprintf("arrived=%d completed=%d evictions=%d rejected=%d backlog=%d failures=%d repairs=%d",
		m.Arrived, m.Completed, m.Evictions, m.Rejected, m.Backlog, m.Failures, m.Repairs)
	wantCounts := "arrived=50 completed=46 evictions=14 rejected=0 backlog=4 failures=18 repairs=15"
	if gotCounts != wantCounts {
		t.Fatalf("counts:\n got %s\nwant %s", gotCounts, wantCounts)
	}
}
