package sched

// BurstShape is the board-region footprint of one correlated failure burst:
// a W×H block of boards anchored at a seeded position. {4, 1} models a rack
// segment (four boards on one power feed), {X, 1} a whole row outage. The
// region is clipped at the grid edges — racks are physical, outages do not
// wrap — so bursts anchored near a boundary kill fewer boards.
type BurstShape struct{ W, H int }

// DefaultBurstShape is the 4×1 rack-segment burst.
func DefaultBurstShape() BurstShape { return BurstShape{W: 4, H: 1} }

func (s BurstShape) norm() BurstShape {
	if s.W < 1 {
		s.W = 4
	}
	if s.H < 1 {
		s.H = 1
	}
	return s
}

// burstEvent is one sampled burst at the maximum rate, carrying its
// thinning mark (see Failures: kept at rate r when u ≤ r/maxRate, which
// makes the kept sets nested across rates under one seed).
type burstEvent struct {
	t      float64
	anchor [2]int
	u      float64
}

// Bursts is a pre-sampled correlated-outage process: Poisson burst events
// at a maximum rate, each killing a contiguous board region. Like Failures,
// the process is sampled once at the highest rate a sweep will use and
// Thin extracts the (nested) subset for any milder rate — under one seed a
// higher burst rate replays every burst of a lower one and adds more, so
// goodput-vs-burst-rate curves measure degradation, not sampling noise.
type Bursts struct {
	events  []burstEvent
	maxRate float64
	x, y    int
	shape   BurstShape
}

// NewBursts samples the burst process over [0, horizon) hours at maxRate
// bursts/hour — the highest rate the caller will thin to. Burst times are a
// Poisson process, anchors cycle through a seeded permutation of the board
// grid (decorrelated from the independent-failure identities), and each
// burst carries a thinning mark. A non-positive rate, horizon or grid
// yields an empty process.
func NewBursts(x, y int, shape BurstShape, horizonH, maxRate float64, seed int64) *Bursts {
	b := &Bursts{x: x, y: y, shape: shape.norm()}
	if x < 1 || y < 1 || maxRate <= 0 || horizonH <= 0 {
		return b
	}
	b.maxRate = maxRate
	anchors := gridBoardSequence(x, y, int64(splitmix64(uint64(seed)^0xb52575)))
	r := schedRNG(seed, 0xb5257)
	t := 0.0
	for i := 0; ; i++ {
		t += r.exp() / maxRate
		if t >= horizonH {
			break
		}
		b.events = append(b.events, burstEvent{t: t, anchor: anchors[i%len(anchors)], u: r.float64()})
	}
	return b
}

// Sampled returns the number of bursts sampled at the maximum rate.
func (b *Bursts) Sampled() int { return len(b.events) }

// Thin returns the board-failure events of the bursts active at rate
// bursts/hour (≤ the sampling maxRate), ascending by time: each kept burst
// expands to one FailEvent per board of its clipped region, in row-major
// region order. Under one seed the kept burst sets are nested across rates
// (a higher rate keeps a superset), so the expanded event list at a lower
// rate is a subsequence of the higher-rate list. A non-positive rate means
// no bursts.
func (b *Bursts) Thin(rate float64) []FailEvent {
	if rate <= 0 || b.maxRate <= 0 {
		return nil
	}
	keep := rate / b.maxRate
	if keep > 1 {
		keep = 1 // caller thinned below the sampling rate; keep everything
	}
	var out []FailEvent
	for _, e := range b.events {
		if e.u > keep {
			continue
		}
		for _, bd := range regionBoards(b.x, b.y, e.anchor, b.shape.W, b.shape.H) {
			out = append(out, FailEvent{Time: e.t, Board: bd})
		}
	}
	return out
}

// regionBoards lists the boards of a w×h region anchored at a on an x×y
// grid, clipped at the edges, in row-major order. It mirrors the
// network-level faults.Builder.FailBoardRegion clipping convention (the
// two are pinned equal by TestRegionBoardsMatchesFaultsBuilder), so a
// scheduler burst and a FaultSet rack outage kill the same board sets.
func regionBoards(x, y int, a [2]int, w, h int) [][2]int {
	out := make([][2]int, 0, w*h)
	for dy := 0; dy < h; dy++ {
		for dx := 0; dx < w; dx++ {
			bx, by := a[0]+dx, a[1]+dy
			if bx < 0 || by < 0 || bx >= x || by >= y {
				continue
			}
			out = append(out, [2]int{bx, by})
		}
	}
	return out
}

// MergeFailures merges two time-sorted failure event lists into one sorted
// list. The merge is stable and a-first at equal times, so merging an
// independent process with an (empty) burst process reproduces the
// independent list exactly — the bit-identical-golden guarantee for
// zero-burst configs.
func MergeFailures(a, b []FailEvent) []FailEvent {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]FailEvent, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if b[j].Time < a[i].Time {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}
