package sched

import (
	"math"
	"strings"
	"testing"
)

func TestParseTraceCSVHours(t *testing.T) {
	csv := `id,arrival_h,boards,service_h,comm_frac,min_boards,priority
0,0.5,4,2.0,0.3,1,2
1,0.25,8,1.5,,,
`
	jobs, err := ParseTraceCSV(strings.NewReader(csv), CSVOptions{DefaultCommFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	// Sorted by arrival: job 1 first.
	if jobs[0].ID != 1 || jobs[1].ID != 0 {
		t.Fatalf("arrival sort wrong: ids %d,%d", jobs[0].ID, jobs[1].ID)
	}
	j := jobs[1]
	if j.Arrival != 0.5 || j.Boards != 4 || j.Service != 2.0 || j.CommFrac != 0.3 || j.MinBoards != 1 || j.Priority != 2 {
		t.Fatalf("job 0 parsed wrong: %+v", j)
	}
	if jobs[0].CommFrac != 0.1 {
		t.Fatalf("empty comm_frac should default to 0.1, got %g", jobs[0].CommFrac)
	}
	if jobs[0].MinBoards != 0 || jobs[0].Priority != 0 {
		t.Fatalf("empty elastic fields should stay zero: %+v", jobs[0])
	}
}

func TestParseTraceCSVAliasesAndSeconds(t *testing.T) {
	// Philly-style: seconds, GPU counts, no id column.
	csv := `submit_time_s,num_gpus,run_time_s,min_gpus
7200,9,3600,4
0,4,1800,
`
	jobs, err := ParseTraceCSV(strings.NewReader(csv), CSVOptions{AccelsPerBoard: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(jobs))
	}
	// Row order numbered 0,1; sorted puts row 2 (arrival 0) first.
	if jobs[0].ID != 1 || jobs[1].ID != 0 {
		t.Fatalf("sequential ids wrong: %d,%d", jobs[0].ID, jobs[1].ID)
	}
	j := jobs[1]
	if math.Abs(j.Arrival-2.0) > 1e-12 || math.Abs(j.Service-1.0) > 1e-12 {
		t.Fatalf("seconds not converted: arrival=%g service=%g", j.Arrival, j.Service)
	}
	if j.Boards != 3 { // ceil(9/4)
		t.Fatalf("gpus not ceil-divided: boards=%d", j.Boards)
	}
	if j.MinBoards != 1 {
		t.Fatalf("min_gpus not converted: %d", j.MinBoards)
	}
}

func TestParseTraceCSVErrors(t *testing.T) {
	cases := map[string]string{
		"no arrival": "id,boards,service_h\n0,4,1\n",
		"no size":    "id,arrival_h,service_h\n0,0,1\n",
		"no service": "id,arrival_h,boards\n0,0,4\n",
		"bad number": "arrival_h,boards,service_h\nx,4,1\n",
		"dup column": "arrival_h,submit_time_h,boards,service_h\n0,0,4,1\n",
		"dup id":     "id,arrival_h,boards,service_h\n3,0,4,1\n3,1,4,1\n",
		"zero svc":   "arrival_h,boards,service_h\n0,4,0\n",
		"min>boards": "arrival_h,boards,service_h,min_boards\n0,4,1,8\n",
		"neg prio":   "arrival_h,boards,service_h,priority\n0,4,1,-1\n",
	}
	for name, csv := range cases {
		if _, err := ParseTraceCSV(strings.NewReader(csv), CSVOptions{}); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestSyntheticElasticPriorityFracs(t *testing.T) {
	base := TraceConfig{Jobs: 200, MaxBoards: 16}
	plain := Synthetic(base, 2024)
	marked := Synthetic(TraceConfig{Jobs: 200, MaxBoards: 16, ElasticFrac: 0.5, PriorityFrac: 0.5}, 2024)
	if len(plain) != len(marked) {
		t.Fatalf("job counts differ: %d vs %d", len(plain), len(marked))
	}
	nElastic, nPrio := 0, 0
	for i := range plain {
		// The primary stream must be untouched by the side draws.
		if plain[i].Arrival != marked[i].Arrival || plain[i].Boards != marked[i].Boards || plain[i].Service != marked[i].Service {
			t.Fatalf("job %d core fields perturbed by elastic fracs", i)
		}
		if plain[i].MinBoards != 0 || plain[i].Priority != 0 {
			t.Fatalf("plain trace has elastic fields set at job %d", i)
		}
		if m := marked[i].MinBoards; m != 0 {
			nElastic++
			if m < 1 || m > marked[i].Boards {
				t.Fatalf("job %d min_boards %d outside [1,%d]", i, m, marked[i].Boards)
			}
		}
		if p := marked[i].Priority; p != 0 {
			nPrio++
			if p < 1 || p > 3 {
				t.Fatalf("job %d priority %d outside [1,3]", i, p)
			}
		}
	}
	if nElastic == 0 || nPrio == 0 {
		t.Fatalf("fracs drew nothing: elastic=%d prio=%d", nElastic, nPrio)
	}
	// Deterministic in the seed.
	again := Synthetic(TraceConfig{Jobs: 200, MaxBoards: 16, ElasticFrac: 0.5, PriorityFrac: 0.5}, 2024)
	for i := range marked {
		if marked[i] != again[i] {
			t.Fatalf("synthetic trace with fracs not deterministic at job %d", i)
		}
	}
}
