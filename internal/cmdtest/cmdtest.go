// Package cmdtest builds and runs the repo's command binaries for the
// cmd/ smoke tests: each binary is compiled once per test into a temp
// directory and executed with a tiny configuration, asserting a zero exit
// code and parseable output. Keeping the helper here gives all four
// binaries one place for the build/run/parse plumbing.
package cmdtest

import (
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// Build compiles the command package in the test's working directory
// (tests run with cwd = their package directory) into a temporary binary
// and returns its path.
func Build(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cmd.bin")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// Run executes the binary with args, asserting exit code 0, and returns
// the combined output.
func Run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// RunExpectError executes the binary expecting a non-zero exit and returns
// the combined output (flag validation paths).
func RunExpectError(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s: exit 0, want failure\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

// MustContain asserts every marker appears in the output.
func MustContain(t *testing.T, out string, markers ...string) {
	t.Helper()
	for _, m := range markers {
		if !strings.Contains(out, m) {
			t.Fatalf("output missing %q:\n%s", m, out)
		}
	}
}

var percentRE = regexp.MustCompile(`(\d+(?:\.\d+)?)%`)

// Percents extracts every "N.N%" value from the output, asserting at least
// min of them parse and all land in [0, 100].
func Percents(t *testing.T, out string, min int) []float64 {
	t.Helper()
	var vals []float64
	for _, m := range percentRE.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseFloat(m[1], 64)
		if err != nil {
			t.Fatalf("bad percent %q in output", m[0])
		}
		if v < 0 || v > 100 {
			t.Fatalf("percent %.2f outside [0,100] in output:\n%s", v, out)
		}
		vals = append(vals, v)
	}
	if len(vals) < min {
		t.Fatalf("found %d percent values, want ≥ %d:\n%s", len(vals), min, out)
	}
	return vals
}
