package journal

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// KeyOf is the content-address helper the checkpoint layers share (the
// same canonicalize-then-SHA-256 discipline as hxd's request addresses):
// v marshals to JSON — callers pass a dedicated fingerprint struct whose
// declared field order is its canonical order — and the hex SHA-256 of
// those bytes is the key. Two configs share a key iff their fingerprints
// marshal identically.
func KeyOf(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("journal: fingerprint marshal: %v", err)) // fixed structs, cannot fail
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
