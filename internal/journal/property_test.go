package journal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// Property test for torn-tail recovery: write a journal, corrupt it at a
// random offset — truncation (a torn write) or a bit flip (media damage /
// partial sector) — and require that Open (a) never panics or errors,
// (b) replays a prefix of the original records, (c) replays the longest
// prefix consistent with the damage (every record strictly before the
// damaged byte survives), and (d) accepts appends afterwards that
// round-trip through one more recovery.
func TestTornTailRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%02d", trial), func(t *testing.T) {
			dir := t.TempDir()
			segBytes := int64(128 + rng.Intn(512))
			o := Options{SegmentBytes: segBytes, NoSync: true}
			l, _, err := Open(dir, o, nil)
			if err != nil {
				t.Fatal(err)
			}
			n := 1 + rng.Intn(40)
			var originals [][]byte
			for i := 0; i < n; i++ {
				r := make([]byte, 1+rng.Intn(120))
				rng.Read(r)
				originals = append(originals, r)
				if err := l.Append(r); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			l.Close()

			// Pick a victim segment and offset; record where each record
			// ends so the "longest valid prefix" bound is checkable.
			segs, err := segIndices(dir)
			if err != nil {
				t.Fatal(err)
			}
			// recEnd[i] = (segment index, end offset) of record i.
			type pos struct {
				seg int
				end int64
			}
			ends := make([]pos, 0, n)
			{
				off := int64(len(magic))
				si := 0
				// Re-derive framing by replaying sizes against the
				// rotation rule the writer uses.
				for _, r := range originals {
					frame := int64(frameHeader + len(r))
					if off > int64(len(magic)) && off+frame > segBytes {
						si++
						off = int64(len(magic))
					}
					off += frame
					ends = append(ends, pos{si, off})
				}
				if si != segs[len(segs)-1] {
					t.Fatalf("segment layout model out of sync: derived %d, on disk %d", si, segs[len(segs)-1])
				}
			}

			victimSeg := segs[rng.Intn(len(segs))]
			path := filepath.Join(dir, segName(victimSeg))
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(data) == 0 {
				t.Fatalf("empty segment file %s", path)
			}
			corruptAt := rng.Intn(len(data))
			truncate := rng.Intn(2) == 0
			if truncate {
				data = data[:corruptAt]
			} else {
				data[corruptAt] ^= 1 << uint(rng.Intn(8))
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}

			// Every record that ends strictly before the damaged byte in
			// an earlier-or-same segment must survive.
			mustSurvive := 0
			for i, p := range ends {
				if p.seg < victimSeg || (p.seg == victimSeg && p.end <= int64(corruptAt)) {
					mustSurvive = i + 1
				}
			}

			var recs [][]byte
			l2, st, err := Open(dir, o, func(rec []byte) error {
				recs = append(recs, append([]byte(nil), rec...))
				return nil
			})
			if err != nil {
				t.Fatalf("recovery errored on a crash artifact: %v", err)
			}
			if len(recs) > n {
				t.Fatalf("recovered %d records from a %d-record journal", len(recs), n)
			}
			for i, r := range recs {
				if !bytes.Equal(r, originals[i]) {
					t.Fatalf("recovered record %d is not a prefix of the original sequence", i)
				}
			}
			if len(recs) < mustSurvive {
				t.Fatalf("recovered %d records, but %d end before the damage (seg %d offset %d, truncate=%v, stats %+v)",
					len(recs), mustSurvive, victimSeg, corruptAt, truncate, st)
			}

			// Re-append after recovery round-trips through another open.
			post := []byte("post-damage")
			if err := l2.Append(post); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			l2.Close()
			var recs2 [][]byte
			l3, _, err := Open(dir, o, func(rec []byte) error {
				recs2 = append(recs2, append([]byte(nil), rec...))
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			l3.Close()
			if len(recs2) != len(recs)+1 || !bytes.Equal(recs2[len(recs)], post) {
				t.Fatalf("post-recovery append did not round-trip: %d vs %d records", len(recs2), len(recs)+1)
			}
		})
	}
}
