// Package journal is a dependency-free, crash-safe, append-only record
// log: the durable substrate under the resumable experiment sweeps
// (runner.Checkpoint) and the hxd daemon's job journal.
//
// A journal is a directory of segment files. Each segment starts with an
// 8-byte magic header and holds a sequence of framed records:
//
//	[u32 payload length][u32 sequence][u32 CRC32C(sequence ‖ payload)][payload]
//
// (little-endian, CRC32C = Castagnoli). The sequence number runs over the
// whole journal, so recovery detects not only torn frames but also holes —
// a truncation that happens to land on a frame boundary still breaks the
// sequence of the next surviving record. Appends go to the newest segment;
// when it exceeds Options.SegmentBytes the writer rotates: the full
// segment is fsync'd, the next one is created as a temp file, fsync'd with
// its header, renamed into place, and the directory is fsync'd — so a
// segment either exists completely or not at all.
//
// The crash contract: after a process death at ANY write boundary,
// Open recovers the longest valid prefix of records and never errors on a
// crash artifact. Recovery scans segments in order and stops at the first
// invalid frame (torn header, impossible length, short payload, CRC
// mismatch, or a segment with a damaged magic header); everything before
// it replays, the damaged tail is truncated away, and later segments are
// deleted, so a re-opened journal appends exactly where the valid prefix
// ends. The crash-injection hooks (CrashPlan) drive a writer through each
// of those boundaries deliberately, which is how the recovery path is
// tested — including from the CLIs, where an injected crash is a real
// os.Exit mid-write.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"hammingmesh/internal/obs"
)

const (
	// magic opens every segment file; the trailing byte versions the
	// format.
	magic = "hxjrnl\x00\x01"
	// frameHeader is the per-record framing overhead: u32 length + u32
	// sequence + u32 CRC.
	frameHeader = 12
	// MaxRecordBytes bounds a single record; a length field beyond it is
	// treated as a crash artifact, not an allocation request.
	MaxRecordBytes = 64 << 20
	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes at zero.
	DefaultSegmentBytes = 8 << 20
)

// castagnoli is the CRC32C table (the checksum used by most journaling
// storage formats; hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append/Sync after Close.
var ErrClosed = errors.New("journal: closed")

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold (<= 0 uses
	// DefaultSegmentBytes). A segment always accepts at least one record,
	// so records larger than the threshold still append.
	SegmentBytes int64
	// NoSync skips the fsync after each append (the rotation and creation
	// syncs stay). Replayed results are then only as durable as the OS
	// page cache — fine for tests and benchmarks, wrong for checkpoints.
	NoSync bool
	// Obs, when non-nil, registers the journal counters (records written /
	// replayed, bytes written, segments created, torn tails recovered) so
	// recovery is visible on /metrics.
	Obs *obs.Registry
	// Crash arms the crash-injection harness (tests and the CLIs'
	// -journal-crash flag); nil in production.
	Crash *CrashPlan
}

// Stats reports what Open found and recovered.
type Stats struct {
	// Records is the number of valid records replayed.
	Records int
	// Segments is the number of segment files holding the valid prefix.
	Segments int
	// TornTail reports that a crash artifact (torn frame, damaged segment)
	// was found and truncated away.
	TornTail bool
	// DroppedBytes counts the artifact bytes removed during recovery.
	DroppedBytes int64
}

// Log is an open journal positioned for appends. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File // active segment
	seg      int      // active segment index
	size     int64    // active segment size in bytes
	seq      uint32   // next record's journal-wide sequence number
	appends  int      // successful appends since Open (CrashPlan counter)
	closed   bool
	poisoned bool // an injected crash fired; the writer is dead
	buf      []byte
	stats    Stats

	written, writtenBytes, replayed, tornTails, segments *obs.Counter
}

func segName(i int) string { return fmt.Sprintf("jseg-%08d.wal", i) }

// Open opens (or creates) the journal in dir, replays every valid record
// through fn in append order, truncates any crash artifact at the tail,
// and returns the log positioned for appends. fn may be nil to skip
// payload delivery; an fn error aborts the open.
func Open(dir string, o Options, fn func(rec []byte) error) (*Log, Stats, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Stats{}, fmt.Errorf("journal: %w", err)
	}
	l := &Log{dir: dir, opts: o}
	if r := o.Obs; r != nil {
		l.written = r.Counter("journal_records_written_total", "", "records appended to the journal")
		l.writtenBytes = r.Counter("journal_bytes_written_total", "", "framed bytes appended to the journal")
		l.replayed = r.Counter("journal_records_replayed_total", "", "valid records replayed on journal open")
		l.tornTails = r.Counter("journal_torn_tails_recovered_total", "", "crash artifacts truncated away on journal open")
		l.segments = r.Counter("journal_segments_created_total", "", "journal segment files created")
	}
	if err := l.recover(fn); err != nil {
		return nil, l.stats, err
	}
	l.seq = uint32(l.stats.Records)
	return l, l.stats, nil
}

// segIndices lists the existing segment indices in ascending order.
func segIndices(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var idx []int
	for _, e := range ents {
		var i int
		if _, err := fmt.Sscanf(e.Name(), "jseg-%08d.wal", &i); err == nil && e.Name() == segName(i) {
			idx = append(idx, i)
		}
	}
	sort.Ints(idx)
	return idx, nil
}

// recover scans the segments, replays the valid prefix, truncates the
// first crash artifact and deletes everything after it, then positions
// the log for appends.
func (l *Log) recover(fn func([]byte) error) error {
	idx, err := segIndices(l.dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if len(idx) == 0 {
		return l.createSegment(0)
	}
	for n, si := range idx {
		valid, last, err := l.scanSegment(si, fn)
		if err != nil {
			return err
		}
		if !valid || last {
			// The valid prefix ends in this segment (or, if even its
			// header is damaged, at the end of the previous one). Drop
			// every later segment: rotation syncs before creating the
			// next segment, so records can only be lost at the tail.
			for _, di := range idx[n+1:] {
				fi, _ := os.Stat(filepath.Join(l.dir, segName(di)))
				if fi != nil {
					l.stats.DroppedBytes += fi.Size()
				}
				if err := os.Remove(filepath.Join(l.dir, segName(di))); err != nil {
					return fmt.Errorf("journal: drop segment: %w", err)
				}
				l.noteTorn()
			}
			if !valid {
				// Damaged magic header: remove the segment entirely and
				// append to its predecessor (or recreate segment 0).
				if err := os.Remove(filepath.Join(l.dir, segName(si))); err != nil {
					return fmt.Errorf("journal: drop segment: %w", err)
				}
				l.noteTorn()
				if n == 0 {
					return l.createSegment(idx[0])
				}
				return l.openSegmentForAppend(idx[n-1])
			}
			return l.openSegmentForAppend(si)
		}
	}
	return l.openSegmentForAppend(idx[len(idx)-1])
}

// noteTorn records one recovered crash artifact.
func (l *Log) noteTorn() {
	l.stats.TornTail = true
	if l.tornTails != nil {
		l.tornTails.Inc()
	}
}

// scanSegment replays the segment's valid records. valid=false means the
// magic header itself is damaged; last=true means a torn frame was
// truncated away, so the valid prefix ends here.
func (l *Log) scanSegment(si int, fn func([]byte) error) (valid, last bool, err error) {
	path := filepath.Join(l.dir, segName(si))
	f, err := os.Open(path)
	if err != nil {
		return false, false, fmt.Errorf("journal: %w", err)
	}
	defer f.Close()

	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != magic {
		fi, _ := f.Stat()
		if fi != nil {
			l.stats.DroppedBytes += fi.Size()
		}
		return false, false, nil
	}
	l.stats.Segments++

	offset := int64(len(magic))
	var frame [frameHeader]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(f, frame[:]); err != nil {
			// Clean EOF ends the segment; a partial frame header is a
			// torn append.
			if err == io.EOF {
				return true, false, nil
			}
			return true, true, l.truncateTail(path, offset)
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		seq := binary.LittleEndian.Uint32(frame[4:8])
		sum := binary.LittleEndian.Uint32(frame[8:12])
		if length > MaxRecordBytes {
			return true, true, l.truncateTail(path, offset)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return true, true, l.truncateTail(path, offset)
		}
		if crc32.Update(crc32.Checksum(frame[4:8], castagnoli), castagnoli, payload) != sum {
			return true, true, l.truncateTail(path, offset)
		}
		// A checksummed record with the wrong sequence number means a
		// hole (a boundary-aligned truncation earlier in the journal):
		// the valid prefix ends before it.
		if seq != uint32(l.stats.Records) {
			return true, true, l.truncateTail(path, offset)
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return false, false, err
			}
		}
		l.stats.Records++
		if l.replayed != nil {
			l.replayed.Inc()
		}
		offset += frameHeader + int64(length)
	}
}

// truncateTail cuts the segment back to the end of its last valid record.
func (l *Log) truncateTail(path string, validEnd int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	l.stats.DroppedBytes += fi.Size() - validEnd
	if err := os.Truncate(path, validEnd); err != nil {
		return fmt.Errorf("journal: truncate tail: %w", err)
	}
	l.noteTorn()
	return nil
}

// createSegment atomically creates segment si with its header (temp file,
// fsync, rename, directory fsync) and makes it the active segment.
func (l *Log) createSegment(si int) error {
	path := filepath.Join(l.dir, segName(si))
	tmp, err := os.CreateTemp(l.dir, "jseg-*.tmp")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := tmp.WriteString(magic); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: create segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: create segment: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("journal: create segment: %w", err)
	}
	if err := syncDir(l.dir); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if l.f != nil {
		l.f.Close()
	}
	l.f, l.seg, l.size = f, si, int64(len(magic))
	if l.stats.Segments <= si {
		l.stats.Segments = si + 1
	}
	if l.segments != nil {
		l.segments.Inc()
	}
	return nil
}

// openSegmentForAppend makes the recovered segment the active one.
func (l *Log) openSegmentForAppend(si int) error {
	path := filepath.Join(l.dir, segName(si))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("journal: %w", err)
	}
	l.f, l.seg, l.size = f, si, fi.Size()
	return nil
}

// syncDir fsyncs the journal directory so renames and removals are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	err = d.Sync()
	d.Close()
	if err != nil {
		return fmt.Errorf("journal: sync dir: %w", err)
	}
	return nil
}

// Append frames rec (length prefix + CRC32C) and appends it to the active
// segment, rotating first when the segment is full, then fsyncs (unless
// Options.NoSync). The record is durable when Append returns.
func (l *Log) Append(rec []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.poisoned {
		return ErrCrashInjected
	}
	if len(rec) > MaxRecordBytes {
		return fmt.Errorf("journal: record of %d bytes exceeds MaxRecordBytes", len(rec))
	}
	if err := l.crash(CrashBeforeAppend); err != nil {
		return err
	}
	frame := int64(frameHeader + len(rec))
	if l.size > int64(len(magic)) && l.size+frame > l.opts.SegmentBytes {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	l.buf = l.buf[:0]
	l.buf = binary.LittleEndian.AppendUint32(l.buf, uint32(len(rec)))
	l.buf = binary.LittleEndian.AppendUint32(l.buf, l.seq)
	l.buf = binary.LittleEndian.AppendUint32(l.buf,
		crc32.Update(crc32.Checksum(l.buf[4:8], castagnoli), castagnoli, rec))
	l.buf = append(l.buf, rec...)
	if l.crashArmed(CrashTornWrite) {
		// The injected torn write: a prefix of the frame reaches the
		// file, then the "process dies" — exactly the artifact a real
		// crash between write and sync can leave.
		torn := l.buf[:frameHeader+len(rec)/2]
		l.f.Write(torn)
		l.f.Sync()
		return l.crash(CrashTornWrite)
	}
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := l.crash(CrashBeforeSync); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("journal: sync: %w", err)
		}
	}
	l.seq++
	l.appends++
	if l.written != nil {
		l.written.Inc()
		l.writtenBytes.Add(frame)
	}
	return nil
}

// rotate seals the active segment (fsync) and atomically creates the
// next. Caller holds l.mu.
func (l *Log) rotate() error {
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: rotate sync: %w", err)
	}
	if err := l.crash(CrashBeforeRotate); err != nil {
		return err
	}
	if err := l.createSegment(l.seg + 1); err != nil {
		return err
	}
	return l.crash(CrashAfterRotate)
}

// Sync fsyncs the active segment.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Close fsyncs and closes the active segment. Further appends fail with
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("journal: close: %w", err)
	}
	return nil
}

// Appends reports the successful appends since Open (crash-plan counter;
// tests).
func (l *Log) Appends() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appends
}
