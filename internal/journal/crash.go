package journal

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// ErrCrashInjected is what an armed CrashPlan's default Fire returns: the
// writer stops mid-boundary, leaving the on-disk state a real crash at
// that point would leave, and refuses further appends.
var ErrCrashInjected = errors.New("journal: injected crash")

// CrashPoint names a write boundary the crash-injection harness can fire
// at. Together the points cover every distinct on-disk state an append
// can die in.
type CrashPoint string

const (
	// CrashBeforeAppend dies before any byte of the record reaches the
	// file: the journal must recover with the record absent.
	CrashBeforeAppend CrashPoint = "before-append"
	// CrashTornWrite dies after a prefix of the framed record reached the
	// file: recovery must truncate the torn frame away.
	CrashTornWrite CrashPoint = "torn-write"
	// CrashBeforeSync dies with the full frame written but not fsync'd:
	// recovery sees either the whole record or a torn artifact, never a
	// corrupt accepted one.
	CrashBeforeSync CrashPoint = "before-sync"
	// CrashBeforeRotate dies after the full segment was sealed but before
	// the next segment exists.
	CrashBeforeRotate CrashPoint = "before-rotate"
	// CrashAfterRotate dies after the new segment was created (header
	// only), before the record reached it.
	CrashAfterRotate CrashPoint = "after-rotate"
)

// CrashPoints lists every injectable boundary (tests iterate it).
func CrashPoints() []CrashPoint {
	return []CrashPoint{CrashBeforeAppend, CrashTornWrite, CrashBeforeSync,
		CrashBeforeRotate, CrashAfterRotate}
}

// CrashPlan arms one injected crash: the first time the writer reaches
// Point with at least AfterAppends records already appended, it leaves the
// boundary's on-disk state behind and fires.
type CrashPlan struct {
	Point CrashPoint
	// AfterAppends is the number of successful appends before the plan
	// may fire (0 = the very first append).
	AfterAppends int
	// Fire is invoked at the boundary; nil returns ErrCrashInjected (the
	// in-process harness). The CLIs install os.Exit so the injected crash
	// is a real process death mid-write.
	Fire func() error

	fired bool
}

// ParseCrashPlan parses the CLI form "<point>:<n>", e.g. "torn-write:3"
// (die with a torn frame once 3 records are journaled).
func ParseCrashPlan(s string) (*CrashPlan, error) {
	point, after, ok := strings.Cut(s, ":")
	if !ok {
		return nil, fmt.Errorf("journal: bad crash plan %q (want <point>:<n>)", s)
	}
	n, err := strconv.Atoi(after)
	if err != nil || n < 0 {
		return nil, fmt.Errorf("journal: bad crash plan count %q", after)
	}
	for _, p := range CrashPoints() {
		if CrashPoint(point) == p {
			return &CrashPlan{Point: p, AfterAppends: n}, nil
		}
	}
	return nil, fmt.Errorf("journal: unknown crash point %q (choose from %v)", point, CrashPoints())
}

// crashArmed reports whether the plan will fire at this boundary now.
// Caller holds l.mu.
func (l *Log) crashArmed(p CrashPoint) bool {
	c := l.opts.Crash
	return c != nil && !c.fired && c.Point == p && l.appends >= c.AfterAppends
}

// crash fires the armed plan at boundary p: the log is poisoned (a dead
// process cannot append) and Fire decides whether to return
// (ErrCrashInjected, in-process tests) or exit (the CLIs). Caller holds
// l.mu.
func (l *Log) crash(p CrashPoint) error {
	if !l.crashArmed(p) {
		return nil
	}
	l.opts.Crash.fired = true
	l.poisoned = true
	if f := l.opts.Crash.Fire; f != nil {
		return f()
	}
	return ErrCrashInjected
}
