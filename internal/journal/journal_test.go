package journal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"hammingmesh/internal/obs"
)

// collect re-opens the journal with a recording replay callback and
// returns the replayed records plus the recovery stats.
func collect(t *testing.T, dir string, o Options) (*Log, [][]byte, Stats) {
	t.Helper()
	var recs [][]byte
	l, st, err := Open(dir, o, func(rec []byte) error {
		recs = append(recs, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, recs, st
}

func rec(i int) []byte { return []byte(fmt.Sprintf("record-%04d-%s", i, strings.Repeat("x", i%97))) }

// Round trip: append N records, close, reopen, replay identically.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, recs, st := collect(t, dir, Options{NoSync: true})
	if len(recs) != 0 || st.TornTail {
		t.Fatalf("fresh journal replayed %d records, torn=%v", len(recs), st.TornTail)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := l.Append([]byte("late")); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}

	l2, recs, st := collect(t, dir, Options{NoSync: true})
	defer l2.Close()
	if len(recs) != n || st.Records != n || st.TornTail {
		t.Fatalf("replayed %d records (stats %+v), want %d clean", len(recs), st, n)
	}
	for i, r := range recs {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d = %q, want %q", i, r, rec(i))
		}
	}
}

// Rotation: a tiny segment threshold produces multiple segment files and
// replay still sees every record in order.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	o := Options{SegmentBytes: 256, NoSync: true}
	l, _, _ := collect(t, dir, o)
	const n = 50
	for i := 0; i < n; i++ {
		if err := l.Append(rec(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	l.Close()

	segs, err := segIndices(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments after %d appends at a 256-byte threshold", len(segs), n)
	}
	l2, recs, st := collect(t, dir, o)
	defer l2.Close()
	if len(recs) != n || st.TornTail {
		t.Fatalf("replayed %d records across %d segments (torn=%v), want %d", len(recs), st.Segments, st.TornTail, n)
	}
	for i, r := range recs {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}

	// An over-threshold record still appends (a segment always accepts at
	// least one record).
	l3, _, _ := collect(t, dir, o)
	big := bytes.Repeat([]byte("B"), 1024)
	if err := l3.Append(big); err != nil {
		t.Fatalf("oversized append: %v", err)
	}
	l3.Close()
	_, recs, _ = collect(t, dir, o)
	if !bytes.Equal(recs[len(recs)-1], big) {
		t.Fatalf("oversized record lost")
	}
}

// Every injected crash point recovers to exactly the records appended
// before the crash, and the journal accepts appends again afterwards.
func TestCrashPointsRecover(t *testing.T) {
	for _, point := range CrashPoints() {
		for _, after := range []int{0, 1, 5} {
			t.Run(fmt.Sprintf("%s-after%d", point, after), func(t *testing.T) {
				dir := t.TempDir()
				// A small segment threshold makes the rotate boundaries
				// reachable; non-rotate points fire on the armed append
				// directly.
				o := Options{SegmentBytes: 128, NoSync: true,
					Crash: &CrashPlan{Point: point, AfterAppends: after}}
				l, _, _ := collect(t, dir, o)
				survived := 0
				var crashed bool
				for i := 0; i < 40; i++ {
					err := l.Append(rec(i))
					if err == ErrCrashInjected {
						crashed = true
						break
					}
					if err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
					survived++
				}
				if !crashed {
					t.Fatalf("crash point %s never fired", point)
				}
				// No Close: the "process" died. Recover. A crash before
				// the sync leaves the full frame on disk, so that one
				// extra record may legitimately replay — the caller saw
				// an error, but the record is intact, which is exactly
				// why checkpoint consumers key records idempotently.
				expected := survived
				if point == CrashBeforeSync {
					expected++
				}
				l2, recs, _ := collect(t, dir, Options{SegmentBytes: 128, NoSync: true})
				if len(recs) != expected {
					t.Fatalf("recovered %d records, want %d (%d appended before the crash at %s)",
						len(recs), expected, survived, point)
				}
				for i, r := range recs {
					if !bytes.Equal(r, rec(i)) {
						t.Fatalf("record %d corrupted across crash at %s", i, point)
					}
				}
				// Re-append after recovery round-trips.
				if err := l2.Append([]byte("post-crash")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
				l2.Close()
				_, recs, _ = collect(t, dir, Options{NoSync: true})
				if len(recs) != expected+1 || !bytes.Equal(recs[expected], []byte("post-crash")) {
					t.Fatalf("post-recovery append lost: %d records", len(recs))
				}
			})
		}
	}
}

// The poisoned writer refuses appends after an injected crash, like a
// dead process would.
func TestCrashPoisonsWriter(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{NoSync: true,
		Crash: &CrashPlan{Point: CrashTornWrite, AfterAppends: 1}})
	if err := l.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(1)); err != ErrCrashInjected {
		t.Fatalf("armed append: %v, want ErrCrashInjected", err)
	}
	if err := l.Append(rec(2)); err != ErrCrashInjected {
		t.Fatalf("append on poisoned log: %v, want ErrCrashInjected", err)
	}
}

// ParseCrashPlan round-trips the CLI form and rejects junk.
func TestParseCrashPlan(t *testing.T) {
	p, err := ParseCrashPlan("torn-write:3")
	if err != nil || p.Point != CrashTornWrite || p.AfterAppends != 3 {
		t.Fatalf("ParseCrashPlan = %+v, %v", p, err)
	}
	for _, bad := range []string{"", "torn-write", "torn-write:x", "torn-write:-1", "nosuch:1"} {
		if _, err := ParseCrashPlan(bad); err == nil {
			t.Fatalf("ParseCrashPlan(%q) accepted", bad)
		}
	}
}

// A damaged magic header on the only segment recovers to an empty,
// writable journal; on a later segment it recovers to the prior
// segments' records.
func TestDamagedHeaderRecovers(t *testing.T) {
	dir := t.TempDir()
	o := Options{SegmentBytes: 128, NoSync: true}
	l, _, _ := collect(t, dir, o)
	for i := 0; i < 20; i++ {
		l.Append(rec(i))
	}
	l.Close()
	segs, _ := segIndices(dir)
	if len(segs) < 2 {
		t.Fatalf("need ≥2 segments, got %d", len(segs))
	}
	// Damage the last segment's magic.
	last := filepath.Join(dir, segName(segs[len(segs)-1]))
	b, _ := os.ReadFile(last)
	b[0] ^= 0xff
	os.WriteFile(last, b, 0o644)

	l2, recs, st := collect(t, dir, o)
	if !st.TornTail {
		t.Fatalf("damaged header not reported as recovered artifact: %+v", st)
	}
	for i, r := range recs {
		if !bytes.Equal(r, rec(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatalf("append after header recovery: %v", err)
	}
	l2.Close()

	// Sole-segment damage: empty journal, still writable.
	dir2 := t.TempDir()
	l3, _, _ := collect(t, dir2, Options{NoSync: true})
	l3.Append(rec(0))
	l3.Close()
	seg0 := filepath.Join(dir2, segName(0))
	os.WriteFile(seg0, []byte("garbage"), 0o644)
	l4, recs, st := collect(t, dir2, Options{NoSync: true})
	if len(recs) != 0 || !st.TornTail {
		t.Fatalf("sole damaged segment: %d records, stats %+v", len(recs), st)
	}
	if err := l4.Append(rec(9)); err != nil {
		t.Fatalf("append after sole-segment recovery: %v", err)
	}
	l4.Close()
}

// Concurrent appends are serialized and all durable (run under -race in
// CI).
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _, _ := collect(t, dir, Options{NoSync: true, SegmentBytes: 512})
	var wg sync.WaitGroup
	const g, per = 8, 25
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	_, recs, st := collect(t, dir, Options{NoSync: true})
	if len(recs) != g*per || st.TornTail {
		t.Fatalf("recovered %d records (torn=%v), want %d", len(recs), st.TornTail, g*per)
	}
}

// The obs counters see writes, replays and recovered artifacts.
func TestObsCounters(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	l, _, err := Open(dir, Options{NoSync: true, Obs: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		l.Append(rec(i))
	}
	l.Close()
	// Tear the tail by hand: append garbage bytes to the segment.
	seg0 := filepath.Join(dir, segName(0))
	f, _ := os.OpenFile(seg0, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{1, 2, 3})
	f.Close()

	l2, _, err := Open(dir, Options{NoSync: true, Obs: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	l2.Close()
	var b strings.Builder
	reg.Render(&b)
	out := b.String()
	for _, want := range []string{
		"journal_records_written_total 7",
		"journal_records_replayed_total 7",
		"journal_torn_tails_recovered_total 1",
		"journal_segments_created_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// KeyOf is deterministic and sensitive to every field.
func TestKeyOf(t *testing.T) {
	type fp struct {
		A int
		B string
	}
	k1, k2 := KeyOf(fp{1, "x"}), KeyOf(fp{1, "x"})
	if k1 != k2 || len(k1) != 64 {
		t.Fatalf("KeyOf not deterministic: %q vs %q", k1, k2)
	}
	if KeyOf(fp{2, "x"}) == k1 || KeyOf(fp{1, "y"}) == k1 {
		t.Fatalf("KeyOf ignored a field change")
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	payload := bytes.Repeat([]byte("p"), 256)
	for _, mode := range []struct {
		name string
		sync bool
	}{{"nosync", false}, {"fsync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := b.TempDir()
			l, _, err := Open(dir, Options{NoSync: !mode.sync}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			b.SetBytes(int64(len(payload) + frameHeader))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
