package dnn

// ResNetAtScale returns the ResNet-152 data-parallel configuration at
// degree D (the paper simulates D ∈ {256, 512, 1024}, §V-B2). The
// minibatch (32,768) is fixed, so per-accelerator compute shrinks with D
// while the allreduce volume (gradient size) stays constant — which is why
// larger D has relatively more communication.
func ResNetAtScale(d int) Model {
	base := Models()[0]
	m := base
	m.D = d
	// Compute scales inversely with D from the 1,024-accelerator
	// measurement (108 ms); communication volume is unchanged.
	m.ComputeMS = 108 * 1024 / float64(d)
	m.Phases = append([]Phase{}, base.Phases...)
	return m
}

// GPT3AtOperatorScale varies the Megatron operator parallelism O while
// keeping P=96: the per-accelerator operator allreduce volume stays the
// layer activation size, but the ring spans O accelerators.
func GPT3AtOperatorScale(o int) Model {
	var base Model
	for _, m := range Models() {
		if m.Name == "GPT-3" {
			base = m
		}
	}
	m := base
	m.O = o
	m.Phases = append([]Phase{}, base.Phases...)
	return m
}

// WeakScalingSweep returns modeled iteration times for a model family
// across data-parallel degrees on one topology.
func WeakScalingSweep(degrees []int, np NetPerf) map[int]float64 {
	out := make(map[int]float64, len(degrees))
	for _, d := range degrees {
		out[d] = IterationMS(ResNetAtScale(d), np)
	}
	return out
}
