package dnn

import (
	"testing"
	"testing/quick"
)

func perf(t *testing.T, name string) NetPerf {
	t.Helper()
	p, ok := PerfByName(name)
	if !ok {
		t.Fatalf("no perf for %s", name)
	}
	return p
}

func TestResNetOverheadTiny(t *testing.T) {
	// §V-B2: "less than 2.5% communication overhead in the worst case".
	m := Models()[0]
	if m.Name != "ResNet-152" {
		t.Fatal("model order changed")
	}
	for _, np := range StandardPerf() {
		it := IterationMS(m, np)
		overhead := (it - m.ComputeMS) / m.ComputeMS
		if overhead < 0 || overhead > 0.025 {
			t.Errorf("%s: ResNet overhead %.3f, want ≤0.025", np.Name, overhead)
		}
	}
}

func TestGPT3TopologyOrdering(t *testing.T) {
	// §V-B5: fat tree < HyperX ≈ Hx2 < Hx4 < torus for GPT-3 runtimes.
	var m Model
	for _, mm := range Models() {
		if mm.Name == "GPT-3" {
			m = mm
		}
	}
	ft := IterationMS(m, perf(t, "fattree"))
	hx2 := IterationMS(m, perf(t, "hx2mesh"))
	hx4 := IterationMS(m, perf(t, "hx4mesh"))
	torus := IterationMS(m, perf(t, "torus"))
	if !(ft < hx2 && hx2 < hx4 && hx4 < torus) {
		t.Errorf("ordering violated: ft=%.1f hx2=%.1f hx4=%.1f torus=%.1f", ft, hx2, hx4, torus)
	}
	// The torus should be far slower than the fat tree (paper: 72 vs 35),
	// roughly a factor of two.
	if torus < 1.5*ft {
		t.Errorf("torus %.1f not ≥1.5x fat tree %.1f", torus, ft)
	}
}

func TestGPT3NearPaperRuntimes(t *testing.T) {
	// Model-vs-paper within a factor of 1.6 on the distinctive entries.
	var m Model
	for _, mm := range Models() {
		if mm.Name == "GPT-3" {
			m = mm
		}
	}
	for _, name := range []string{"fattree", "hx2mesh", "hx4mesh", "torus"} {
		want := PaperRuntimesMS["GPT-3"][name]
		got := IterationMS(m, perf(t, name))
		if got < want/1.6 || got > want*1.6 {
			t.Errorf("%s: modeled %.1f ms vs paper %.1f ms (>1.6x off)", name, got, want)
		}
	}
}

func TestCostSavingFormula(t *testing.T) {
	// ResNet-152, Hx4Mesh vs nonblocking fat tree: cost ratio 25.3/2.7
	// with nearly equal overheads gives savings in the ballpark of the
	// paper's 7.8 (§V-B2, Fig. 15).
	m := Models()[0]
	s := CostSaving(m, 2.7, 25.3, perf(t, "hx4mesh"), perf(t, "fattree"))
	if s < 4 || s > 13 {
		t.Errorf("ResNet Hx4-vs-FT saving = %.1f, want ≈7.8 (4..13)", s)
	}
	// GPT-3 is communication bound, so the saving shrinks (paper: 1.5).
	var g Model
	for _, mm := range Models() {
		if mm.Name == "GPT-3" {
			g = mm
		}
	}
	s = CostSaving(g, 2.7, 25.3, perf(t, "hx4mesh"), perf(t, "fattree"))
	if s < 0.7 || s > 3.5 {
		t.Errorf("GPT-3 Hx4-vs-FT saving = %.1f, want ≈1.5 (0.7..3.5)", s)
	}
}

func TestDLRMRuntimeNearPaper(t *testing.T) {
	var m Model
	for _, mm := range Models() {
		if mm.Name == "DLRM" {
			m = mm
		}
	}
	for _, name := range []string{"fattree", "hx2mesh", "torus"} {
		want := PaperRuntimesMS["DLRM"][name]
		got := IterationMS(m, perf(t, name))
		if got < want*0.6 || got > want*1.5 {
			t.Errorf("%s: DLRM modeled %.2f ms vs paper %.2f ms", name, got, want)
		}
	}
}

func TestAcceleratorCounts(t *testing.T) {
	want := map[string]int{
		"ResNet-152": 1024, "CosmoFlow": 1024, "GPT-3": 384, "GPT-3-MoE": 384, "DLRM": 128,
	}
	for _, m := range Models() {
		if got := m.Accelerators(); got != want[m.Name] {
			t.Errorf("%s: accelerators = %d, want %d", m.Name, got, want[m.Name])
		}
	}
}

func TestIterationMonotoneInBandwidth(t *testing.T) {
	// Property: raising every bandwidth never increases iteration time.
	f := func(ar, a2a, p2p uint8) bool {
		base := NetPerf{AllreduceGBps: 1 + float64(ar), AlltoallGBps: 1 + float64(a2a), P2PGBps: 1 + float64(p2p), AlphaUS: 1}
		faster := NetPerf{AllreduceGBps: base.AllreduceGBps * 2, AlltoallGBps: base.AlltoallGBps * 2, P2PGBps: base.P2PGBps * 2, AlphaUS: 1}
		for _, m := range Models() {
			if IterationMS(m, faster) > IterationMS(m, base)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPhaseKindString(t *testing.T) {
	if Allreduce.String() != "allreduce" || Alltoall.String() != "alltoall" || SendRecv.String() != "sendrecv" {
		t.Error("PhaseKind strings wrong")
	}
}

func TestPaperRuntimesCoverage(t *testing.T) {
	for _, m := range Models() {
		tbl, ok := PaperRuntimesMS[m.Name]
		if !ok {
			t.Errorf("no paper runtimes for %s", m.Name)
			continue
		}
		for _, topo := range []string{"fattree", "hx2mesh", "hx4mesh", "torus"} {
			if _, ok := tbl[topo]; !ok {
				t.Errorf("%s missing paper runtime for %s", m.Name, topo)
			}
		}
	}
}

func TestResNetScaling(t *testing.T) {
	// §V-B2: D ∈ {256, 512, 1024}; smaller D has even less communication
	// overhead relative to compute.
	np := perf(t, "hx2mesh")
	sweep := WeakScalingSweep([]int{256, 512, 1024}, np)
	if len(sweep) != 3 {
		t.Fatal("sweep incomplete")
	}
	for _, d := range []int{256, 512} {
		m := ResNetAtScale(d)
		rel := (sweep[d] - m.ComputeMS) / m.ComputeMS
		rel1024 := (sweep[1024] - 108) / 108.0
		if rel > rel1024 {
			t.Errorf("D=%d relative overhead %.4f above D=1024's %.4f", d, rel, rel1024)
		}
	}
	if ResNetAtScale(256).ComputeMS != 432 {
		t.Errorf("compute at D=256 = %f, want 432", ResNetAtScale(256).ComputeMS)
	}
}

func TestGPT3OperatorScale(t *testing.T) {
	m := GPT3AtOperatorScale(8)
	if m.O != 8 || m.P != 96 {
		t.Errorf("unexpected shape %dx%d", m.P, m.O)
	}
}
