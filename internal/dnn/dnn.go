// Package dnn models the five DNN workloads of §V-B (ResNet-152,
// CosmoFlow, GPT-3, GPT-3 MoE, DLRM): their parallelism decomposition
// (D×P×O), per-iteration communication phases, and an overlap-aware
// iteration-time model driven by per-topology effective bandwidths.
//
// The paper measured operator compute times on NVIDIA A100 GPUs; those
// published numbers are encoded here directly (the substitution documented
// in DESIGN.md), as are the communication volumes the paper derives
// analytically (e.g., DLRM's 1 MB alltoalls and 2.96 MB allreduce).
package dnn

// PhaseKind is the communication type of one phase.
type PhaseKind uint8

const (
	// Allreduce phases use ring/torus collectives (data & operator dims).
	Allreduce PhaseKind = iota
	// Alltoall phases exchange with all peers (MoE dispatch, DLRM
	// embeddings).
	Alltoall
	// SendRecv phases are nearest-neighbor (pipeline stages, halos).
	SendRecv
)

func (k PhaseKind) String() string {
	switch k {
	case Allreduce:
		return "allreduce"
	case Alltoall:
		return "alltoall"
	case SendRecv:
		return "sendrecv"
	}
	return "unknown"
}

// Phase is one communication phase of a training iteration.
type Phase struct {
	Kind PhaseKind
	// VolumeGB is the per-accelerator communication volume in gigabytes.
	VolumeGB float64
	// Overlap is the fraction of this phase hidden behind computation
	// (nonblocking collectives, §V-B1a; pipeline overlap, Fig. 14).
	Overlap float64
	// Rounds contributes Rounds·alpha of latency (e.g., p−1 for alltoall).
	Rounds int
}

// Model is one DNN workload.
type Model struct {
	Name      string
	D, P, O   int     // data / pipeline / operator parallelism degrees
	ComputeMS float64 // per-iteration compute time on A100 (paper-measured)
	FixedMS   float64 // framework/launch overhead outside the network model
	Phases    []Phase
}

// Accelerators returns D·P·O.
func (m Model) Accelerators() int { return m.D * m.P * m.O }

// NetPerf is the effective network performance of one topology as seen by
// a training job: large-message collective bandwidths per accelerator and
// a per-round latency.
type NetPerf struct {
	Name          string
	AllreduceGBps float64 // algorithm bandwidth (≤ half the injection bw)
	AlltoallGBps  float64 // per-accelerator global bandwidth
	P2PGBps       float64 // cross-stage point-to-point bandwidth
	AlphaUS       float64 // per-round latency in microseconds
}

// bw returns the phase bandwidth under this topology.
func (np NetPerf) bw(k PhaseKind) float64 {
	switch k {
	case Allreduce:
		return np.AllreduceGBps
	case Alltoall:
		return np.AlltoallGBps
	default:
		return np.P2PGBps
	}
}

// PhaseTimeMS is the wall time of one phase (before overlap).
func PhaseTimeMS(p Phase, np NetPerf) float64 {
	bw := np.bw(p.Kind)
	if bw <= 0 {
		return 0
	}
	return p.VolumeGB/bw*1000 + float64(p.Rounds)*np.AlphaUS/1000
}

// CommOverheadMS is the non-overlapped communication time of one iteration.
func CommOverheadMS(m Model, np NetPerf) float64 {
	total := 0.0
	for _, p := range m.Phases {
		total += PhaseTimeMS(p, np) * (1 - p.Overlap)
	}
	return total + m.FixedMS
}

// IterationMS is the modeled per-iteration wall time.
func IterationMS(m Model, np NetPerf) float64 {
	return m.ComputeMS + CommOverheadMS(m, np)
}

// CostSaving is the Fig. 15 metric: the network-cost ratio times the
// inverse of the communication-overhead ratio, comparing an HxMesh
// (costHx, perfHx) against another topology (costOther, perfOther).
// Values above 1 favor the HxMesh.
func CostSaving(m Model, costHx, costOther float64, perfHx, perfOther NetPerf) float64 {
	ovHx := CommOverheadMS(m, perfHx)
	ovOther := CommOverheadMS(m, perfOther)
	if ovHx <= 0 || costHx <= 0 {
		return 0
	}
	return (costOther / costHx) * (ovOther / ovHx)
}

// Models returns the five workloads with the paper's published compute
// times and communication volumes. Volumes without an explicit number in
// the paper (GPT-3 pipeline/operator aggregates, CosmoFlow halos) are
// calibrated so the modeled overheads land near the runtimes reported in
// §V-B on the Table II effective bandwidths; EXPERIMENTS.md tabulates
// paper-vs-model for every entry.
func Models() []Model {
	return []Model{
		{
			// §V-B2: D=1024, minibatch 32,768; 60.2M FP32 parameters in 10
			// nonblocking allreduce groups, almost fully overlapped.
			Name: "ResNet-152", D: 1024, P: 1, O: 1,
			ComputeMS: 108,
			Phases: []Phase{
				{Kind: Allreduce, VolumeGB: 0.2408, Overlap: 0.93, Rounds: 10},
			},
		},
		{
			// §V-B3: D=256, O=4; 8.9M parameters; halo exchanges and
			// allgathers in the operator dimension, mostly overlapped.
			Name: "CosmoFlow", D: 256, P: 1, O: 4,
			ComputeMS: 44.3,
			Phases: []Phase{
				{Kind: Allreduce, VolumeGB: 0.0356, Overlap: 0.9, Rounds: 10},
				{Kind: Allreduce, VolumeGB: 0.45, Overlap: 0.85, Rounds: 4}, // operator allgather/reduce-scatter
				{Kind: SendRecv, VolumeGB: 0.05, Overlap: 0.9, Rounds: 8},   // halos
			},
		},
		{
			// §V-B5: P=96, O=4, D=1; ≈100 MB activations per layer cut;
			// Megatron-style operator allreduce per layer.
			Name: "GPT-3", D: 1, P: 96, O: 4,
			ComputeMS: 31.8,
			Phases: []Phase{
				{Kind: SendRecv, VolumeGB: 0.186, Overlap: 0, Rounds: 96},  // pipeline
				{Kind: Allreduce, VolumeGB: 0.204, Overlap: 0, Rounds: 96}, // MHA+FF allreduce
			},
		},
		{
			// §V-B5: 16 experts, two alltoalls per FF in forward and
			// backward passes.
			Name: "GPT-3-MoE", D: 1, P: 96, O: 4,
			ComputeMS: 49.9,
			Phases: []Phase{
				{Kind: SendRecv, VolumeGB: 0.12, Overlap: 0, Rounds: 96},
				{Kind: Allreduce, VolumeGB: 0.12, Overlap: 0, Rounds: 96},
				{Kind: Alltoall, VolumeGB: 0.09, Overlap: 0, Rounds: 64},
			},
		},
		{
			// §V-B4: embedding 95 us + interaction 209 us + MLP 796 us
			// compute; 1 MB per alltoall (×2) and 2.96 MB allreduce, up to
			// 128 nodes.
			Name: "DLRM", D: 128, P: 1, O: 1,
			ComputeMS: 0.095 + 0.209 + 0.796,
			FixedMS:   1.3, // framework/launch overhead (fit to §V-B4)
			Phases: []Phase{
				{Kind: Alltoall, VolumeGB: 0.002, Overlap: 0, Rounds: 254},
				{Kind: Allreduce, VolumeGB: 0.00296, Overlap: 0.3, Rounds: 256},
			},
		},
	}
}

// PaperRuntimesMS is the paper's reported per-iteration runtime (ms) per
// topology for each model (§V-B), used by EXPERIMENTS.md to compare the
// model against the original SST measurements.
var PaperRuntimesMS = map[string]map[string]float64{
	"ResNet-152": {
		"fattree": 109.7, "fattree50": 109.7, "fattree75": 109.7,
		"hyperx": 109.7, "hx2mesh": 110.1, "hx4mesh": 110.1, "torus": 110.1,
	},
	"GPT-3": {
		"fattree": 34.8, "fattree50": 36.4, "fattree75": 37.5,
		"hyperx": 40.9, "hx2mesh": 41.7, "hx4mesh": 49.9, "torus": 72.2,
	},
	"GPT-3-MoE": {
		"fattree": 52.2, "fattree50": 52.5, "fattree75": 52.9,
		"hyperx": 53.9, "hx2mesh": 58.3, "hx4mesh": 63.3, "torus": 73.8,
	},
	"DLRM": {
		"fattree": 2.96, "fattree50": 2.97, "fattree75": 2.99,
		"hyperx": 2.94, "hx2mesh": 2.97, "hx4mesh": 3.00, "torus": 3.12,
	},
	"CosmoFlow": {
		"fattree": 45.2, "fattree50": 45.2, "fattree75": 45.2,
		"hyperx": 45.2, "hx2mesh": 45.2, "hx4mesh": 45.8, "torus": 46.25,
	},
}

// StandardPerf returns the effective network performance of the paper's
// small-cluster configurations (≈1k accelerators, 4×400 Gb/s injection),
// derived from the Table II bandwidth shares: allreduce ≈98% of the
// 100 GB/s optimum on all topologies (rings embed everywhere), alltoall at
// the topology's global-bandwidth share of the 200 GB/s injection.
func StandardPerf() []NetPerf {
	inj := 200.0 // GB/s per accelerator (4 planes x 400 Gb/s or 4 links)
	mk := func(name string, a2aShare, arShare float64, alphaUS float64) NetPerf {
		return NetPerf{
			Name:          name,
			AllreduceGBps: arShare * inj / 2,
			AlltoallGBps:  a2aShare * inj,
			P2PGBps:       a2aShare * inj, // cross-stage traffic is global
			AlphaUS:       alphaUS,
		}
	}
	return []NetPerf{
		mk("fattree", 0.999, 0.989, 1.0),
		mk("fattree50", 0.512, 0.989, 1.0),
		mk("fattree75", 0.257, 0.989, 1.0),
		mk("dragonfly", 0.629, 0.988, 1.0),
		mk("hyperx", 0.916, 0.981, 1.2),
		mk("hx2mesh", 0.254, 0.983, 1.2),
		mk("hx4mesh", 0.113, 0.984, 1.5),
		mk("torus", 0.020, 0.981, 3.0),
	}
}

// PerfByName indexes StandardPerf.
func PerfByName(name string) (NetPerf, bool) {
	for _, p := range StandardPerf() {
		if p.Name == name {
			return p, true
		}
	}
	return NetPerf{}, false
}
