package workload

import (
	"math/rand"
	"sort"

	"hammingmesh/internal/alloc"
)

// HeuristicStack names one line of Fig. 8: which allocator optimizations
// are enabled, applied cumulatively in the paper's order.
type HeuristicStack struct {
	Name      string
	Transpose bool
	Aspect    bool
	Sort      bool
	Locality  bool
}

// Fig8Stacks are the six heuristic combinations of Fig. 8.
func Fig8Stacks() []HeuristicStack {
	return []HeuristicStack{
		{Name: "greedy"},
		{Name: "greedy+transpose", Transpose: true},
		{Name: "greedy+transpose+aspect", Transpose: true, Aspect: true},
		{Name: "greedy+transpose+aspect+locality", Transpose: true, Aspect: true, Locality: true},
		{Name: "greedy+transpose+aspect+sort", Transpose: true, Aspect: true, Sort: true},
		{Name: "greedy+transpose+aspect+sort+locality", Transpose: true, Aspect: true, Sort: true, Locality: true},
	}
}

func (h HeuristicStack) options() alloc.Options {
	return alloc.Options{
		Transpose:       h.Transpose,
		AspectRatio:     h.Aspect,
		MaxAspect:       8,
		Locality:        h.Locality,
		TreeGroupBoards: 16,
	}
}

// UtilizationResult is one allocation experiment outcome.
type UtilizationResult struct {
	Utilization float64
	UpperA2A    float64 // upper-layer traffic fraction, alltoall (Fig. 9)
	UpperAllred float64 // upper-layer traffic fraction, allreduce (Fig. 9)
	JobsPlaced  int
	JobsAttempt int
}

// RunMix allocates one job mix (sizes in boards) on an x×y grid with the
// given heuristic stack and preexisting failures, returning utilization
// and traffic statistics. The grid is freshly created each run.
func RunMix(x, y int, mix []int, h HeuristicStack, failures int, rng *rand.Rand) UtilizationResult {
	g := alloc.NewGrid(x, y)
	for i := 0; i < failures; i++ {
		g.Fail(rng.Intn(x), rng.Intn(y))
	}
	jobs := append([]int{}, mix...)
	if h.Sort {
		sort.Sort(sort.Reverse(sort.IntSlice(jobs)))
	}
	opt := h.options()
	var placements []*alloc.Placement
	res := UtilizationResult{JobsAttempt: len(jobs)}
	for ji, size := range jobs {
		u, v := ShapeFor(size)
		if u == 0 {
			continue
		}
		if p, ok := g.Allocate(int32(ji), u, v, opt); ok {
			placements = append(placements, p)
			res.JobsPlaced++
		}
	}
	res.Utilization = g.Utilization()
	res.UpperA2A = alloc.SystemUpperLayerFraction(placements, alloc.TrafficAlltoall, 16)
	res.UpperAllred = alloc.SystemUpperLayerFraction(placements, alloc.TrafficAllreduce, 16)
	return res
}

// Stats summarizes a sample of utilizations.
type Stats struct {
	Mean, Median, P99, Min, Max float64
}

// Summarize computes distribution statistics (Fig. 8 reports mean, median
// and the 99th percentile of 1,000 allocations).
func Summarize(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	s := append([]float64{}, vals...)
	sort.Float64s(s)
	mean := 0.0
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	pick := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return Stats{Mean: mean, Median: pick(0.5), P99: pick(0.01), Min: s[0], Max: s[len(s)-1]}
}

// UtilizationExperiment runs nMixes random job mixes (Fig. 8 uses 1,000)
// on an x×y HxMesh grid with the given failures count, returning the
// utilization sample per heuristic stack.
func UtilizationExperiment(x, y, accelsPerBoard, nMixes, failures int, d Distribution, stacks []HeuristicStack, seed int64) map[string][]float64 {
	out := make(map[string][]float64, len(stacks))
	for _, h := range stacks {
		sampler := NewSampler(d, seed)
		rng := rand.New(rand.NewSource(seed + 77))
		utils := make([]float64, 0, nMixes)
		for m := 0; m < nMixes; m++ {
			mix := sampler.Mix(x*y, accelsPerBoard)
			r := RunMix(x, y, mix, h, failures, rng)
			utils = append(utils, r.Utilization)
		}
		out[h.Name] = utils
	}
	return out
}
