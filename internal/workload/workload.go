// Package workload models the job mix used by the paper's allocation study
// (§IV-B). The paper samples job sizes from a two-month trace of Alibaba's
// MLaaS cluster (6,742 GPUs); that dataset is external, so this package
// substitutes a parametric heavy-tailed distribution calibrated to the
// board-weighted CDF the paper plots in Fig. 7 (≈39% of boards allocated
// to jobs smaller than 100 boards). The sampling procedure is the paper's
// own: draw sizes, fill the cluster completely, carry samples that do not
// fit into the next mix.
package workload

import (
	"math"
	"math/rand"
	"sort"
)

// sizeWeightSort sorts parallel size/weight slices by size.
type sizeWeightSort struct {
	sizes   []int
	weights []float64
}

func (s *sizeWeightSort) Len() int           { return len(s.sizes) }
func (s *sizeWeightSort) Less(i, j int) bool { return s.sizes[i] < s.sizes[j] }
func (s *sizeWeightSort) Swap(i, j int) {
	s.sizes[i], s.sizes[j] = s.sizes[j], s.sizes[i]
	s.weights[i], s.weights[j] = s.weights[j], s.weights[i]
}

// Distribution is a discrete job-size distribution over board counts.
type Distribution struct {
	Sizes []int     // ascending job sizes in boards
	Probs []float64 // P(size), sums to 1
	cum   []float64
}

// New builds a distribution from sizes and unnormalized weights.
func New(sizes []int, weights []float64) Distribution {
	if len(sizes) != len(weights) || len(sizes) == 0 {
		panic("workload: sizes and weights must align and be non-empty")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	d := Distribution{Sizes: sizes, Probs: make([]float64, len(sizes)), cum: make([]float64, len(sizes))}
	run := 0.0
	for i, w := range weights {
		d.Probs[i] = w / total
		run += d.Probs[i]
		d.cum[i] = run
	}
	return d
}

// AlibabaLike is the substituted MLaaS job-size distribution, expressed in
// accelerators (GPUs): a near-geometric grid from 1 to 8,192 with
// P(s) ∝ s^−0.75. Converted to boards on a 2x2-board HxMesh, this puts
// ≈36–40% of the board volume in jobs below 100 boards, matching the
// Fig. 7 annotation. Because the unit is accelerators, the same job
// occupies 4x fewer boards on an Hx4Mesh than on an Hx2Mesh — the effect
// behind Hx4Mesh's failure robustness in Fig. 10. The tail extends beyond
// the small cluster, as in the original trace, so small-cluster mixes
// consist mostly of small jobs once oversized samples are discarded.
func AlibabaLike() Distribution {
	// GPU jobs cluster on powers of two, with a minority of ragged sizes;
	// the ragged ones are what makes packing lossy (Fig. 8's greedy
	// baseline sits near 90%, not 100%).
	round := []int{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96,
		128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096, 6144, 8192}
	ragged := []int{3, 5, 7, 13, 25, 47, 88, 166, 313, 590, 1111}
	var sizes []int
	var weights []float64
	for _, s := range round {
		sizes = append(sizes, s)
		weights = append(weights, math.Pow(float64(s), -0.75))
	}
	for _, s := range ragged {
		sizes = append(sizes, s)
		weights = append(weights, 0.35*math.Pow(float64(s), -0.75))
	}
	sort.Sort(&sizeWeightSort{sizes, weights})
	return New(sizes, weights)
}

// Sample draws one job size.
func (d Distribution) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.Sizes[i]
		}
	}
	return d.Sizes[len(d.Sizes)-1]
}

// BoardCDF returns, for each size, the cumulative fraction of boards
// allocated to jobs of at most that size (the quantity Fig. 7 plots).
func (d Distribution) BoardCDF() []float64 {
	total := 0.0
	for i, s := range d.Sizes {
		total += d.Probs[i] * float64(s)
	}
	out := make([]float64, len(d.Sizes))
	run := 0.0
	for i, s := range d.Sizes {
		run += d.Probs[i] * float64(s)
		out[i] = run / total
	}
	return out
}

// BoardShareBelow returns the volume-weighted CDF at the given size (both
// in accelerators; divide by the board size for the Fig. 7 board axis).
func (d Distribution) BoardShareBelow(size int) float64 {
	cdf := d.BoardCDF()
	share := 0.0
	for i, s := range d.Sizes {
		if s < size {
			share = cdf[i]
		}
	}
	return share
}

// Sampler draws cluster-filling job mixes, carrying oversized samples to
// the next mix exactly as §IV-B describes.
type Sampler struct {
	D     Distribution
	rng   *rand.Rand
	carry []int
}

// NewSampler creates a sampler with its own seeded RNG.
func NewSampler(d Distribution, seed int64) *Sampler {
	return &Sampler{D: d, rng: rand.New(rand.NewSource(seed))}
}

// Mix returns job sizes in boards that sum to exactly clusterBoards,
// sampling accelerator counts and rounding each up to whole
// accelsPerBoard boards (the paper: "sampling a job size, multiply it by
// the size of the board"). Samples larger than the remaining space are
// carried to the next call; samples that can never fit the cluster are
// discarded.
func (s *Sampler) Mix(clusterBoards, accelsPerBoard int) []int {
	if accelsPerBoard < 1 {
		accelsPerBoard = 1
	}
	var mix []int
	remaining := clusterBoards
	// Try carried samples first.
	kept := s.carry[:0]
	for _, c := range s.carry {
		if c <= remaining {
			mix = append(mix, c)
			remaining -= c
		} else {
			kept = append(kept, c)
		}
	}
	s.carry = append([]int{}, kept...)
	for remaining > 0 {
		boards := (s.D.Sample(s.rng) + accelsPerBoard - 1) / accelsPerBoard
		if boards > remaining {
			// Samples that can never fit this cluster are discarded (the
			// trace's giant jobs simply do not run on a small cluster);
			// ones that merely miss the current remainder are carried.
			if boards <= clusterBoards {
				s.carry = append(s.carry, boards)
			}
			// Avoid unbounded carry growth on tiny remainders: fill the
			// tail with unit jobs once the carry holds several samples.
			if len(s.carry) > 8 {
				for remaining > 0 {
					mix = append(mix, 1)
					remaining--
				}
			}
			continue
		}
		mix = append(mix, boards)
		remaining -= boards
	}
	// Shuffle into random arrival order (the paper stores the random order
	// of drawn samples in a job trace).
	s.rng.Shuffle(len(mix), func(i, j int) { mix[i], mix[j] = mix[j], mix[i] })
	return mix
}

// ShapeFor converts a job size in boards to a u×v request: the most square
// shape with u·v ≥ size and minimal waste ("by default, we make jobs as
// square as possible", §IV-B).
func ShapeFor(size int) (u, v int) {
	if size <= 0 {
		return 0, 0
	}
	bestU, bestV, bestWaste := 1, size, size
	for a := 1; a*a <= size; a++ {
		b := (size + a - 1) / a
		waste := a*b - size
		if waste < bestWaste || (waste == bestWaste && b-a < bestV-bestU) {
			bestU, bestV, bestWaste = a, b, waste
		}
	}
	return bestU, bestV
}
