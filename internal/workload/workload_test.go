package workload

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDistributionNormalized(t *testing.T) {
	d := AlibabaLike()
	sum := 0.0
	for _, p := range d.Probs {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("probabilities sum to %f", sum)
	}
}

func TestFig7Calibration(t *testing.T) {
	// Fig. 7 annotates: "39% of the boards are allocated to jobs of less
	// than 100 boards". Our substituted distribution must land near that.
	d := AlibabaLike()
	share := d.BoardShareBelow(400) // 100 boards x 4 accels
	if share < 0.3 || share > 0.5 {
		t.Errorf("board share below 100 Hx2 boards = %.3f, want ≈0.39", share)
	}
}

func TestBoardCDFMonotone(t *testing.T) {
	d := AlibabaLike()
	cdf := d.BoardCDF()
	prev := 0.0
	for i, v := range cdf {
		if v < prev || v > 1.0001 {
			t.Fatalf("CDF not monotone at %d: %f after %f", i, v, prev)
		}
		prev = v
	}
	if cdf[len(cdf)-1] < 0.999 {
		t.Errorf("CDF ends at %f", cdf[len(cdf)-1])
	}
}

func TestSamplerMixFillsExactly(t *testing.T) {
	s := NewSampler(AlibabaLike(), 42)
	for trial := 0; trial < 50; trial++ {
		mix := s.Mix(256, 4)
		sum := 0
		for _, sz := range mix {
			if sz <= 0 {
				t.Fatalf("non-positive job size %d", sz)
			}
			sum += sz
		}
		if sum != 256 {
			t.Fatalf("mix sums to %d, want 256", sum)
		}
	}
}

func TestSamplerCarry(t *testing.T) {
	// With a tiny cluster, large samples must be carried, never dropped
	// into the current mix.
	s := NewSampler(AlibabaLike(), 7)
	for trial := 0; trial < 30; trial++ {
		mix := s.Mix(8, 4)
		for _, sz := range mix {
			if sz > 8 {
				t.Fatalf("job of %d boards in an 8-board mix", sz)
			}
		}
	}
}

func TestShapeFor(t *testing.T) {
	cases := []struct{ size, u, v int }{
		{1, 1, 1}, {2, 1, 2}, {4, 2, 2}, {6, 2, 3}, {9, 3, 3},
		{12, 3, 4}, {100, 10, 10}, {7, 1, 7},
	}
	for _, c := range cases {
		u, v := ShapeFor(c.size)
		if u != c.u || v != c.v {
			t.Errorf("ShapeFor(%d) = %dx%d, want %dx%d", c.size, u, v, c.u, c.v)
		}
	}
}

func TestShapeForQuick(t *testing.T) {
	// Property: u*v ≥ size, waste < u, u ≤ v.
	f := func(s16 uint16) bool {
		size := int(s16%2000) + 1
		u, v := ShapeFor(size)
		return u <= v && u*v >= size && u*v-size < u+v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationImprovesWithHeuristics(t *testing.T) {
	// Fig. 8: sorted allocation dominates plain greedy on average.
	d := AlibabaLike()
	stacks := []HeuristicStack{
		{Name: "greedy"},
		{Name: "full", Transpose: true, Aspect: true, Sort: true},
	}
	res := UtilizationExperiment(16, 16, 4, 12, 0, d, stacks, 5)
	greedy := Summarize(res["greedy"])
	full := Summarize(res["full"])
	if greedy.Mean < 0.5 {
		t.Errorf("greedy mean utilization %.2f unreasonably low", greedy.Mean)
	}
	if full.Mean+1e-9 < greedy.Mean {
		t.Errorf("full heuristics mean %.3f below greedy %.3f", full.Mean, greedy.Mean)
	}
}

func TestFailuresReduceUtilization(t *testing.T) {
	d := AlibabaLike()
	s := NewSampler(d, 3)
	rng := rand.New(rand.NewSource(4))
	h := HeuristicStack{Name: "full", Transpose: true, Aspect: true, Sort: true}
	healthy, faulty := 0.0, 0.0
	n := 8
	for i := 0; i < n; i++ {
		mix := s.Mix(256, 4)
		healthy += RunMix(16, 16, mix, h, 0, rng).Utilization
		faulty += RunMix(16, 16, mix, h, 40, rng).Utilization
	}
	healthy /= float64(n)
	faulty /= float64(n)
	if healthy < 0.85 {
		t.Errorf("healthy utilization %.2f below expectation", healthy)
	}
	// Fig. 10: even with 40 failed boards median utilization stays
	// above ~70%; it should also not exceed the healthy case.
	if faulty < 0.5 || faulty > healthy+0.05 {
		t.Errorf("faulty utilization %.2f outside (0.5, %.2f]", faulty, healthy)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.5, 0.7, 0.9, 1.0})
	if s.Min != 0.5 || s.Max != 1.0 {
		t.Errorf("min/max = %f/%f", s.Min, s.Max)
	}
	if s.Mean < 0.77 || s.Mean > 0.78 {
		t.Errorf("mean = %f", s.Mean)
	}
	if z := Summarize(nil); z.Mean != 0 {
		t.Error("empty summarize not zero")
	}
}

func TestFig8StacksComplete(t *testing.T) {
	stacks := Fig8Stacks()
	if len(stacks) != 6 {
		t.Fatalf("got %d stacks, want 6", len(stacks))
	}
	if !stacks[5].Sort || !stacks[5].Locality || !stacks[5].Transpose || !stacks[5].Aspect {
		t.Error("final stack must enable everything")
	}
}

// RunMix is deterministic under a fixed seed: the same mix, heuristics and
// failure RNG reproduce the identical result — the property the parallel
// sweeps in cmd/hxalloc and the scheduler's trace replays rely on.
func TestRunMixDeterministic(t *testing.T) {
	d := AlibabaLike()
	for _, h := range Fig8Stacks() {
		mix := NewSampler(d, 17).Mix(16*16, 4)
		mix2 := NewSampler(d, 17).Mix(16*16, 4)
		if !reflect.DeepEqual(mix, mix2) {
			t.Fatal("sampler mixes differ under one seed")
		}
		a := RunMix(16, 16, mix, h, 10, rand.New(rand.NewSource(99)))
		b := RunMix(16, 16, mix, h, 10, rand.New(rand.NewSource(99)))
		if a != b {
			t.Fatalf("%s: same seed produced %+v and %+v", h.Name, a, b)
		}
		c := RunMix(16, 16, mix, h, 10, rand.New(rand.NewSource(100)))
		if a == c && h.Name == Fig8Stacks()[0].Name {
			// Different failure draws should usually change the outcome;
			// only flag it for the first stack to avoid a flaky test.
			t.Logf("note: different failure seed reproduced the same result")
		}
	}
}
