package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxalloc's static allocation study (Fig. 8 mode) runs on a tiny
// grid and prints utilization for every heuristic stack.
func TestHxallocFig8Smoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-grid", "4x4", "-mixes", "3")
	cmdtest.MustContain(t, out, "grid 4x4 (16 boards)", "heuristics (Fig. 8)")
	cmdtest.Percents(t, out, 5)

	// The Fig. 7 CDF mode.
	out = cmdtest.Run(t, bin, "-cdf")
	cmdtest.MustContain(t, out, "board CDF (Fig. 7)")

	cmdtest.RunExpectError(t, bin, "-grid", "bogus")
	cmdtest.RunExpectError(t, bin, "-mode", "nosuchmode")
}

// Smoke: hxalloc's trace-driven scheduler mode sweeps the v2 axes
// (reservation x burst x defrag) on a tiny grid and prints one row per
// point.
func TestHxallocSchedSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-mode", "sched", "-grid", "4x4",
		"-jobs", "30", "-horizon", "20", "-mtbf", "0,40", "-ckpt", "2",
		"-policies", "firstfit", "-trials", "2",
		"-reserve", "0,1", "-burst", "0,0.1", "-burst-shape", "2x1", "-defrag", "0,0.35")
	cmdtest.MustContain(t, out, "scheduler sweep: 4x4 boards", "burst shape 2x1",
		"goodput", "maxWaitL")
	// 1 policy x 1 ckpt x 2 reservation x 2 defrag x 2 burst x 2 mtbf.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "firstfit") {
			rows++
		}
	}
	if rows != 16 {
		t.Fatalf("sweep printed %d point rows, want 16:\n%s", rows, out)
	}
	cmdtest.Percents(t, out, 16)

	cmdtest.RunExpectError(t, bin, "-mode", "sched", "-grid", "4x4", "-policies", "nosuchpolicy")
	cmdtest.RunExpectError(t, bin, "-mode", "sched", "-grid", "4x4", "-burst-shape", "bogus")
}

// Smoke: the scheduler-v3 axes (interference x elastic x priority) print
// one row per point with the on/off columns, and -trace-csv drives the
// sweep from an Alibaba/Philly-style CSV file.
func TestHxallocSchedV3AxesAndCSV(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-mode", "sched", "-grid", "4x4",
		"-jobs", "40", "-arrival", "8", "-service", "5", "-commfrac", "0.6",
		"-horizon", "20", "-mtbf", "0", "-ckpt", "2",
		"-policies", "bestfit", "-trials", "2",
		"-interference", "0,1", "-elastic", "0,1", "-priority", "0,1",
		"-switch-group", "2", "-taper", "0.25")
	cmdtest.MustContain(t, out, "scheduler sweep: 4x4 boards",
		"inf", "ela", "pre", "restr", "elast")
	// 1 policy x 1 ckpt x 2 interference x 2 elastic x 2 priority.
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "bestfit") {
			rows++
		}
	}
	if rows != 8 {
		t.Fatalf("sweep printed %d point rows, want 8:\n%s", rows, out)
	}

	// A CSV trace with aliased headers drives the same sweep.
	csv := filepath.Join(t.TempDir(), "jobs.csv")
	if err := os.WriteFile(csv, []byte(
		"job_id,submit_time_h,gpus,duration_h,comm_frac,min_boards,priority\n"+
			"0,0.0,16,2.0,0.5,2,1\n"+
			"1,0.5,8,1.5,0.3,1,2\n"+
			"2,1.0,4,3.0,0.4,,\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = cmdtest.Run(t, bin, "-mode", "sched", "-grid", "4x4",
		"-horizon", "20", "-mtbf", "0", "-ckpt", "2",
		"-policies", "bestfit", "-trials", "1", "-trace-csv", csv,
		"-elastic", "1", "-priority", "1")
	cmdtest.MustContain(t, out, "scheduler sweep: 4x4 boards", "bestfit")

	// -trace and -trace-csv are mutually exclusive; a bad CSV is rejected.
	errOut := cmdtest.RunExpectError(t, bin, "-mode", "sched", "-grid", "4x4",
		"-trace", csv, "-trace-csv", csv)
	cmdtest.MustContain(t, errOut, "only one of -trace and -trace-csv")
	cmdtest.RunExpectError(t, bin, "-mode", "sched", "-grid", "4x4",
		"-trace-csv", filepath.Join(t.TempDir(), "missing.csv"))
}

// The crash-resume contract at the process level for the scheduler sweep:
// a run killed by a real process death (-journal-crash fires os.Exit
// mid-write) at several distinct journal write boundaries resumes from its
// journal to byte-identical output vs an uninterrupted run.
func TestHxallocSchedJournalCrashResume(t *testing.T) {
	bin := cmdtest.Build(t)

	args := []string{"-mode", "sched", "-grid", "4x4",
		"-jobs", "30", "-horizon", "20", "-mtbf", "0,40", "-ckpt", "2",
		"-policies", "firstfit", "-trials", "2"}

	// sweepTable strips the journal status lines, which legitimately
	// differ between a fresh and a resumed run.
	sweepTable := func(out string) string {
		var keep []string
		for _, ln := range strings.Split(out, "\n") {
			if strings.HasPrefix(ln, "journal: resuming") {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	want := sweepTable(cmdtest.Run(t, bin, args...))

	// Rotation boundaries need tiny segments and are covered by the
	// in-process tests (internal/runner); at the CLI's default segment
	// size the sweep never rotates.
	for _, plan := range []string{"torn-write:2", "before-sync:1", "before-append:3"} {
		t.Run(plan, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "journal")
			crashed := cmdtest.RunExpectError(t, bin,
				append(args, "-journal", dir, "-journal-crash", plan)...)
			if strings.Contains(crashed, "scheduler sweep:") && strings.Contains(crashed, "goodput") {
				t.Fatalf("crashed run still printed the full sweep:\n%s", crashed)
			}
			resumed := cmdtest.Run(t, bin, append(args, "-journal", dir)...)
			cmdtest.MustContain(t, resumed, "journal: resuming")
			if got := sweepTable(resumed); got != want {
				t.Fatalf("resumed output differs from uninterrupted run (crash %s):\nwant:\n%s\ngot:\n%s", plan, want, got)
			}
		})
	}

	// A journal bound to different sweep parameters refuses to resume.
	dir := filepath.Join(t.TempDir(), "journal")
	cmdtest.Run(t, bin, append(args, "-journal", dir)...)
	out := cmdtest.RunExpectError(t, bin, "-mode", "sched", "-grid", "4x4",
		"-jobs", "30", "-horizon", "20", "-mtbf", "0,40", "-ckpt", "2",
		"-policies", "firstfit", "-trials", "3", "-journal", dir)
	cmdtest.MustContain(t, out, "different sweep")

	// -journal outside -mode sched is a usage error.
	cmdtest.RunExpectError(t, bin, "-grid", "4x4", "-mixes", "3", "-journal", dir)
}

// Smoke: -trace-out replays one representative scheduler run into a valid
// Chrome trace-event JSON file without changing the sweep's numbers.
func TestHxallocSchedTraceOut(t *testing.T) {
	bin := cmdtest.Build(t)

	args := []string{"-mode", "sched", "-grid", "4x4",
		"-jobs", "30", "-horizon", "20", "-mtbf", "0,40", "-ckpt", "2",
		"-policies", "firstfit", "-trials", "1"}
	want := cmdtest.Run(t, bin, args...)

	path := filepath.Join(t.TempDir(), "sched.json")
	out := cmdtest.Run(t, bin, append(args, "-trace-out", path)...)
	cmdtest.MustContain(t, out, "trace:", "Perfetto")
	for _, ln := range strings.Split(strings.TrimSpace(want), "\n") {
		if !strings.Contains(out, ln) {
			t.Errorf("sweep line changed under -trace-out: %q missing from:\n%s", ln, out)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		names[ev["name"].(string)] = true
	}
	for _, name := range []string{"queued", "run", "board-fail"} {
		if !names[name] {
			t.Errorf("no %q events in scheduler trace (got %v)", name, names)
		}
	}
}
