// Command hxalloc reproduces the allocation study of §IV-B: the job-size
// CDF (Fig. 7), system utilization under the heuristic stacks (Fig. 8),
// the upper-layer fat-tree traffic fractions (Fig. 9), and utilization
// under board failures (Fig. 10). The job mixes of each heuristic stack
// run as parallel jobs on the experiment runner with deterministic
// per-mix seeds; mixes are therefore sampled i.i.d. (each mix gets its
// own sampler, so an oversized job at the tail of one mix is dropped
// rather than carried into the next, unlike the previous sequential
// sampler — a deliberate trade for parallelism).
//
// -mode sched switches to the trace-driven cluster scheduler
// (internal/sched): jobs arrive over simulated time, queue, fail with the
// boards they run on and restart from checkpoints, sweeping utilization
// against per-board MTBF, checkpoint interval and placement policy.
//
// Usage:
//
//	hxalloc -grid 16x16 -mixes 100            # Fig. 8 on the small Hx2Mesh
//	hxalloc -grid 32x32 -mixes 50 -failures 100  # Fig. 10, large Hx4Mesh
//	hxalloc -cdf                               # Fig. 7 distribution
//	hxalloc -mode sched -grid 8x8 -jobs 200 -mtbf 0,120,40 -ckpt 1,4
//	hxalloc -mode sched -trace trace.json -mtbf 0,100
//	hxalloc -mode sched -grid 8x8 -reserve 0,1 -burst 0,0.1 -defrag 0,0.35
//
// The scheduler-v2 axes: -reserve sweeps EASY reservation backfill
// (bounding large-job wait), -burst adds correlated rack/row outages at
// the given rates (region set by -burst-shape, nested across rates within
// a trial), and -defrag sweeps the fragmentation threshold that triggers
// the checkpoint-migrate defragmentation pass (-defrag-cost hours of
// transfer overhead per migrated job, charged as lost work).
//
// The scheduler-v3 axes: -interference sweeps joint contention pricing
// (jobs are admitted and re-stretched at the slowdown a flow solve over
// the shared upper-layer fat-trees assigns them; -switch-group and -taper
// set the contention topology), -elastic sweeps malleable jobs (shrunk
// admission, regrow, failure trims; -elastic-frac marks synthetic jobs),
// and -priority sweeps checkpoint-evicting preemption (-priority-frac).
// -trace-csv loads Alibaba/Philly-style CSV traces:
//
//	hxalloc -mode sched -grid 8x8 -interference 0,1 -elastic 0,1 -switch-group 2 -taper 0.25
//	hxalloc -mode sched -trace-csv jobs.csv -mtbf 0,100
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"

	"hammingmesh/internal/core"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/runner"
	"hammingmesh/internal/sched"
	"hammingmesh/internal/workload"
)

func main() {
	mode := flag.String("mode", "fig8", "experiment: fig8 (static mixes) or sched (trace-driven scheduler)")
	grid := flag.String("grid", "16x16", "board grid (XxY)")
	mixes := flag.Int("mixes", 100, "number of random job mixes (paper: 1000)")
	failures := flag.Int("failures", 0, "randomly failed boards")
	seed := flag.Int64("seed", 1, "random seed")
	board := flag.Int("board", 4, "accelerators per board (4 for Hx2Mesh, 16 for Hx4Mesh)")
	cdf := flag.Bool("cdf", false, "print the job-size board CDF (Fig. 7) and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the mix sweep")

	// -mode sched flags.
	jobs := flag.Int("jobs", 200, "sched: synthetic trace length")
	arrival := flag.Float64("arrival", 4, "sched: Poisson arrival rate, jobs/hour")
	service := flag.Float64("service", 3, "sched: mean job service time, hours (Pareto tail)")
	commfrac := flag.Float64("commfrac", 0.3, "sched: communication share of each job")
	horizon := flag.Float64("horizon", 60, "sched: simulated horizon, hours")
	repair := flag.Float64("repair", 10, "sched: board repair time (MTTR), hours")
	mtbfList := flag.String("mtbf", "0,500,120,40", "sched: per-board MTBF values in hours (0 = no failures)")
	ckptList := flag.String("ckpt", "2", "sched: checkpoint intervals in hours (0 = continuous)")
	policyList := flag.String("policies", "firstfit,bestfit,fragaware", "sched: placement policies")
	trials := flag.Int("trials", 4, "sched: seeded trials per point")
	traceFile := flag.String("trace", "", "sched: JSON trace file (overrides the synthetic generator)")
	reserveList := flag.String("reserve", "0", "sched: EASY reservation backfill values to sweep (0=off, 1=on, e.g. 0,1)")
	burstList := flag.String("burst", "0", "sched: correlated-outage rates in bursts/hour (0 = independent only)")
	burstShape := flag.String("burst-shape", "4x1", "sched: burst region WxH in boards (rack segment / row outage)")
	defragList := flag.String("defrag", "0", "sched: fragmentation thresholds triggering checkpoint-migrate defrag (0 = off)")
	defragCost := flag.Float64("defrag-cost", 0.1, "sched: checkpoint-transfer overhead per migrated job, hours")
	interferenceList := flag.String("interference", "0", "sched: joint contention pricing values to sweep (0=off, 1=on, e.g. 0,1)")
	elasticList := flag.String("elastic", "0", "sched: malleable-job scheduling values to sweep (0=off, 1=on)")
	priorityList := flag.String("priority", "0", "sched: priority preemption values to sweep (0=off, 1=on)")
	elasticFrac := flag.Float64("elastic-frac", 0.3, "sched: fraction of synthetic jobs marked elastic when -elastic sweeps on")
	priorityFrac := flag.Float64("priority-frac", 0.2, "sched: fraction of synthetic jobs given elevated priority when -priority sweeps on")
	switchGroup := flag.Int("switch-group", 16, "sched: boards per upper-layer switch group (slowdown + contention models)")
	taper := flag.Float64("taper", 1, "sched: upper-layer fat-tree taper fraction for contention pricing")
	traceCSVFile := flag.String("trace-csv", "", "sched: CSV trace file, Alibaba/Philly-style columns (overrides the synthetic generator)")
	traceOut := flag.String("trace-out", "", "sched: write a Chrome trace-event JSON flight recording of one representative run to this file (open in Perfetto); -trace stays the input trace file")
	journalDir := flag.String("journal", "", "sched: checkpoint directory — completed sweep points are journaled crash-safely and rerunning the same command resumes")
	journalCrash := flag.String("journal-crash", "", "crash-injection plan <point>:<n> — die mid-write at that journal boundary (testing; see internal/journal)")
	flag.Parse()

	d := workload.AlibabaLike()
	if *cdf {
		fmt.Println("job size [boards]  P(size)   board CDF (Fig. 7)")
		c := d.BoardCDF()
		for i, s := range d.Sizes {
			fmt.Printf("%17d  %7.4f   %.3f\n", s, d.Probs[i], c[i])
		}
		fmt.Printf("\nboards allocated to jobs < 100 boards: %.0f%% (paper: 39%%)\n",
			100*d.BoardShareBelow(400))
		return
	}

	var x, y int
	if _, err := fmt.Sscanf(*grid, "%dx%d", &x, &y); err != nil || x < 1 || y < 1 {
		fmt.Fprintf(os.Stderr, "bad -grid %q\n", *grid)
		os.Exit(1)
	}
	pool := runner.NewSeeded(*parallel, *seed)

	if *mode == "sched" {
		runSched(pool, x, y, *board, schedFlags{
			jobs: *jobs, arrival: *arrival, service: *service, commfrac: *commfrac,
			horizon: *horizon, repair: *repair, mtbfs: *mtbfList, ckpts: *ckptList,
			policies: *policyList, trials: *trials, seed: *seed, traceFile: *traceFile,
			reserves: *reserveList, bursts: *burstList, burstShape: *burstShape,
			defrags: *defragList, defragCost: *defragCost, traceOut: *traceOut,
			journalDir: *journalDir, journalCrash: *journalCrash,
			interferences: *interferenceList, elastics: *elasticList, priorities: *priorityList,
			elasticFrac: *elasticFrac, priorityFrac: *priorityFrac,
			switchGroup: *switchGroup, taper: *taper, traceCSV: *traceCSVFile,
		})
		return
	}
	if *journalDir != "" {
		fmt.Fprintln(os.Stderr, "hxalloc: -journal only applies to -mode sched")
		os.Exit(2)
	}
	if *mode != "fig8" {
		fmt.Fprintf(os.Stderr, "bad -mode %q (fig8|sched)\n", *mode)
		os.Exit(1)
	}
	fmt.Printf("grid %dx%d (%d boards), %d mixes, %d failed boards, %d workers\n\n",
		x, y, x*y, *mixes, *failures, pool.Workers())
	fmt.Printf("%-42s %6s %6s %6s | %9s %9s\n", "heuristics (Fig. 8)", "mean", "median", "p99", "a2a-upper", "ar-upper")
	for _, h := range workload.Fig8Stacks() {
		jobs := make([]runner.Job, *mixes)
		for m := range jobs {
			jobs[m] = runner.Job{
				Name: fmt.Sprintf("%s/mix%d", h.Name, m),
				Run: func(ctx *runner.Ctx) (any, error) {
					// Every mix gets its own sampler and RNG derived from
					// the deterministic per-job seed, so results do not
					// depend on worker count or ordering.
					sampler := workload.NewSampler(d, ctx.Seed)
					rng := rand.New(rand.NewSource(ctx.Seed + 99))
					return workload.RunMix(x, y, sampler.Mix(x*y, *board), h, *failures, rng), nil
				},
			}
		}
		results := pool.Run(jobs)
		if err := runner.FirstErr(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		utils := make([]float64, 0, *mixes)
		a2a, ar := 0.0, 0.0
		for _, res := range results {
			r := res.Value.(workload.UtilizationResult)
			utils = append(utils, r.Utilization)
			a2a += r.UpperA2A
			ar += r.UpperAllred
		}
		s := workload.Summarize(utils)
		fmt.Printf("%-42s %5.1f%% %5.1f%% %5.1f%% | %8.1f%% %8.1f%%\n",
			h.Name, 100*s.Mean, 100*s.Median, 100*s.P99,
			100*a2a/float64(*mixes), 100*ar/float64(*mixes))
	}
}

type schedFlags struct {
	jobs                              int
	arrival, service, commfrac        float64
	horizon, repair                   float64
	mtbfs, ckpts, policies, traceFile string
	reserves, bursts, burstShape      string
	defrags, traceOut                 string
	journalDir, journalCrash          string
	interferences, elastics           string
	priorities, traceCSV              string
	elasticFrac, priorityFrac, taper  float64
	switchGroup                       int
	defragCost                        float64
	trials                            int
	seed                              int64
}

// runSched drives runner.SchedSweep: the utilization-vs-MTBF study on a
// live cluster with checkpoint/restart.
func runSched(pool *runner.Pool, x, y, accelsPerBoard int, f schedFlags) {
	side := int(math.Sqrt(float64(accelsPerBoard)))
	if side < 1 || side*side != accelsPerBoard {
		fatalf("bad -board %d: want a square accelerator count (4, 16, ...)", accelsPerBoard)
	}
	c := core.NewHxMesh(side, side, x, y)
	mtbfs := parseFloats(f.mtbfs, "-mtbf")
	ckpts := parseFloats(f.ckpts, "-ckpt")
	var policies []sched.Policy
	for _, s := range strings.Split(f.policies, ",") {
		p, err := sched.ParsePolicy(strings.TrimSpace(s))
		if err != nil {
			fatalf("%v", err)
		}
		policies = append(policies, p)
	}
	parseBools := func(s, flagName string) []bool {
		var out []bool
		for _, v := range parseFloats(s, flagName) {
			out = append(out, v != 0)
		}
		return out
	}
	anyTrue := func(bs []bool) bool {
		for _, b := range bs {
			if b {
				return true
			}
		}
		return false
	}
	reserves := parseBools(f.reserves, "-reserve")
	interferences := parseBools(f.interferences, "-interference")
	elastics := parseBools(f.elastics, "-elastic")
	priorities := parseBools(f.priorities, "-priority")
	var shapeW, shapeH int
	if _, err := fmt.Sscanf(f.burstShape, "%dx%d", &shapeW, &shapeH); err != nil || shapeW < 1 || shapeH < 1 {
		fatalf("bad -burst-shape %q (want WxH, e.g. 4x1)", f.burstShape)
	}
	traceCfg := sched.TraceConfig{
		Jobs: f.jobs, ArrivalRate: f.arrival, MeanService: f.service,
		AccelsPerBoard: accelsPerBoard, MaxBoards: x * y, CommFrac: f.commfrac,
	}
	if anyTrue(elastics) {
		traceCfg.ElasticFrac = f.elasticFrac
	}
	if anyTrue(priorities) {
		traceCfg.PriorityFrac = f.priorityFrac
	}
	// The slowdown model always carries the -switch-group topology (16
	// matches the model's default); the contention model is built only
	// when the interference axis sweeps on.
	baseCfg := sched.Config{
		HorizonH: f.horizon, RepairH: f.repair, DefragCostH: f.defragCost,
		Slowdown: &sched.CommSlowdown{BoardA: side, BoardB: side, GroupBoards: f.switchGroup},
	}
	if anyTrue(interferences) {
		baseCfg.Interference = &sched.Interference{
			BoardA: side, BoardB: side, GroupBoards: f.switchGroup, Taper: f.taper,
		}
	}
	cfg := runner.SchedSweepConfig{
		Trace:            traceCfg,
		Base:             baseCfg,
		MTBFs:            mtbfs,
		CheckpointsH:     ckpts,
		Policies:         policies,
		Reservations:     reserves,
		BurstRates:       parseFloats(f.bursts, "-burst"),
		Burst:            sched.BurstShape{W: shapeW, H: shapeH},
		DefragThresholds: parseFloats(f.defrags, "-defrag"),
		Interferences:    interferences,
		Elastics:         elastics,
		Preempts:         priorities,
		Trials:           f.trials,
		Seed:             f.seed,
	}
	if f.traceFile != "" && f.traceCSV != "" {
		fatalf("use only one of -trace and -trace-csv")
	}
	if f.traceFile != "" {
		file, err := os.Open(f.traceFile)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.FixedTrace, err = sched.LoadTrace(file)
		file.Close()
		if err != nil {
			fatalf("%v", err)
		}
	}
	if f.traceCSV != "" {
		file, err := os.Open(f.traceCSV)
		if err != nil {
			fatalf("%v", err)
		}
		cfg.FixedTrace, err = sched.ParseTraceCSV(file, sched.CSVOptions{
			AccelsPerBoard: accelsPerBoard, DefaultCommFrac: f.commfrac,
		})
		file.Close()
		if err != nil {
			fatalf("%v", err)
		}
	}
	// SIGINT/SIGTERM cancel the sweep: in-flight points finish and are
	// journaled, the rest of the grid is skipped, and rerunning the same
	// command resumes from the checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var ck *runner.Checkpoint
	if f.journalDir != "" {
		var err error
		ck, err = runner.OpenCheckpointCLI(f.journalDir, f.journalCrash, cfg.Fingerprint(c))
		if err != nil {
			fatalf("%v", err)
		}
		defer ck.Close()
		if n := ck.Len(); n > 0 {
			fmt.Printf("journal: resuming from %s, %d completed points loaded\n", f.journalDir, n)
		}
	}
	pts, err := pool.SchedSweepJournaled(ctx, c, cfg, ck)
	if err != nil {
		if ctx.Err() != nil {
			if ck != nil {
				ck.Close()
				fmt.Fprintln(os.Stderr, "hxalloc: interrupted; completed points are journaled — rerun the same command to resume")
			} else {
				fmt.Fprintln(os.Stderr, "hxalloc: interrupted")
			}
			os.Exit(130)
		}
		fatalf("%v", err)
	}
	fmt.Printf("scheduler sweep: %dx%d boards, horizon %gh, repair %gh, burst shape %dx%d, %d trials, %d workers\n\n",
		x, y, f.horizon, f.repair, shapeW, shapeH, f.trials, pool.Workers())
	fmt.Printf("%-9s %6s %3s %6s %3s %3s %3s %6s %7s | %8s %8s %6s | %7s %7s %8s | %6s %6s %6s %6s %6s\n",
		"policy", "ckpt-h", "res", "defrag", "inf", "ela", "pre", "burst", "mtbf-h",
		"goodput", "util", "lost", "waitP50", "waitP99", "maxWaitL", "done", "evict", "migr", "restr", "elast")
	onOff := func(b bool) string {
		if b {
			return "on"
		}
		return "off"
	}
	for i, pt := range pts {
		if i > 0 && (pt.Policy != pts[i-1].Policy || pt.CheckpointH != pts[i-1].CheckpointH ||
			pt.Reservation != pts[i-1].Reservation || pt.DefragThreshold != pts[i-1].DefragThreshold ||
			pt.Interference != pts[i-1].Interference || pt.Elastic != pts[i-1].Elastic ||
			pt.Preempt != pts[i-1].Preempt || pt.BurstRate != pts[i-1].BurstRate) {
			fmt.Println()
		}
		mtbf := "inf"
		if pt.MTBFh > 0 {
			mtbf = fmt.Sprintf("%g", pt.MTBFh)
		}
		fmt.Printf("%-9s %6g %3s %6g %3s %3s %3s %6g %7s | %7.1f%% %7.1f%% %5.1f%% | %7.2f %7.2f %8.2f | %6.0f %6.1f %6.1f %6.1f %6.1f\n",
			pt.Policy, pt.CheckpointH, onOff(pt.Reservation), pt.DefragThreshold,
			onOff(pt.Interference), onOff(pt.Elastic), onOff(pt.Preempt), pt.BurstRate, mtbf,
			100*pt.Goodput, 100*pt.Utilization, 100*pt.LostFrac,
			pt.WaitP50, pt.WaitP99, pt.MaxWaitLarge, pt.Completed, pt.Evictions, pt.Migrations,
			pt.Restretches, pt.Shrinks+pt.Regrows)
	}
	if f.traceOut != "" {
		writeSchedTrace(c, cfg, f.traceOut)
	}
}

// writeSchedTrace replays one representative scheduler run — the sweep's
// first (policy, checkpoint, reservation, defrag) point at trial 0, with
// the first positive MTBF's failure set — into a flight recorder and
// writes it as Chrome trace-event JSON: a queued/run/evicted span per job
// lane plus cluster-lane failure, repair and defrag instants. The replay
// is an extra observation pass over a run the sweep already scored; it
// alters none of the printed numbers.
func writeSchedTrace(c *core.Cluster, cfg runner.SchedSweepConfig, path string) {
	rec := obs.NewRecorder(0)
	runCfg := cfg.Base
	runCfg.Policy = cfg.Policies[0]
	runCfg.CheckpointH = cfg.CheckpointsH[0]
	if len(cfg.Reservations) > 0 {
		runCfg.Reservation = cfg.Reservations[0]
	}
	if len(cfg.DefragThresholds) > 0 {
		runCfg.DefragThreshold = cfg.DefragThresholds[0]
	}
	if runCfg.Slowdown == nil {
		runCfg.Slowdown = sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B)
	}
	runCfg.Trace = rec
	seed := runner.JobSeed(cfg.Seed, 0)
	trace := cfg.FixedTrace
	if trace == nil {
		trace = sched.Synthetic(cfg.Trace, seed)
	}
	mtbf := 0.0
	for _, m := range cfg.MTBFs {
		if m > 0 {
			mtbf = m
			break
		}
	}
	var fails []sched.FailEvent
	if mtbf > 0 {
		boards := sched.BoardSequence(c.Hx, c.Comp, seed)
		fails = sched.NewFailures(boards, runCfg.HorizonH, mtbf, seed).Thin(mtbf)
	}
	if _, err := sched.Run(c.Grid.X, c.Grid.Y, trace, fails, runCfg); err != nil {
		fatalf("trace run: %v", err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := rec.WriteJSON(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fatalf("trace write: %v", err)
	}
	fmt.Printf("\ntrace: %d events (%d dropped) -> %s (open in Perfetto / chrome://tracing)\n",
		rec.Len(), rec.Dropped(), path)
}

func parseFloats(s, flagName string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			fatalf("bad %s entry %q", flagName, part)
		}
		out = append(out, v)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
