// Command hxalloc reproduces the allocation study of §IV-B: the job-size
// CDF (Fig. 7), system utilization under the heuristic stacks (Fig. 8),
// the upper-layer fat-tree traffic fractions (Fig. 9), and utilization
// under board failures (Fig. 10). The job mixes of each heuristic stack
// run as parallel jobs on the experiment runner with deterministic
// per-mix seeds; mixes are therefore sampled i.i.d. (each mix gets its
// own sampler, so an oversized job at the tail of one mix is dropped
// rather than carried into the next, unlike the previous sequential
// sampler — a deliberate trade for parallelism).
//
// Usage:
//
//	hxalloc -grid 16x16 -mixes 100            # Fig. 8 on the small Hx2Mesh
//	hxalloc -grid 32x32 -mixes 50 -failures 100  # Fig. 10, large Hx4Mesh
//	hxalloc -cdf                               # Fig. 7 distribution
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"hammingmesh/internal/runner"
	"hammingmesh/internal/workload"
)

func main() {
	grid := flag.String("grid", "16x16", "board grid (XxY)")
	mixes := flag.Int("mixes", 100, "number of random job mixes (paper: 1000)")
	failures := flag.Int("failures", 0, "randomly failed boards")
	seed := flag.Int64("seed", 1, "random seed")
	board := flag.Int("board", 4, "accelerators per board (4 for Hx2Mesh, 16 for Hx4Mesh)")
	cdf := flag.Bool("cdf", false, "print the job-size board CDF (Fig. 7) and exit")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the mix sweep")
	flag.Parse()

	d := workload.AlibabaLike()
	if *cdf {
		fmt.Println("job size [boards]  P(size)   board CDF (Fig. 7)")
		c := d.BoardCDF()
		for i, s := range d.Sizes {
			fmt.Printf("%17d  %7.4f   %.3f\n", s, d.Probs[i], c[i])
		}
		fmt.Printf("\nboards allocated to jobs < 100 boards: %.0f%% (paper: 39%%)\n",
			100*d.BoardShareBelow(400))
		return
	}

	var x, y int
	if _, err := fmt.Sscanf(*grid, "%dx%d", &x, &y); err != nil || x < 1 || y < 1 {
		fmt.Fprintf(os.Stderr, "bad -grid %q\n", *grid)
		os.Exit(1)
	}
	pool := runner.NewSeeded(*parallel, *seed)
	fmt.Printf("grid %dx%d (%d boards), %d mixes, %d failed boards, %d workers\n\n",
		x, y, x*y, *mixes, *failures, pool.Workers())
	fmt.Printf("%-42s %6s %6s %6s | %9s %9s\n", "heuristics (Fig. 8)", "mean", "median", "p99", "a2a-upper", "ar-upper")
	for _, h := range workload.Fig8Stacks() {
		jobs := make([]runner.Job, *mixes)
		for m := range jobs {
			jobs[m] = runner.Job{
				Name: fmt.Sprintf("%s/mix%d", h.Name, m),
				Run: func(ctx *runner.Ctx) (any, error) {
					// Every mix gets its own sampler and RNG derived from
					// the deterministic per-job seed, so results do not
					// depend on worker count or ordering.
					sampler := workload.NewSampler(d, ctx.Seed)
					rng := rand.New(rand.NewSource(ctx.Seed + 99))
					return workload.RunMix(x, y, sampler.Mix(x*y, *board), h, *failures, rng), nil
				},
			}
		}
		results := pool.Run(jobs)
		if err := runner.FirstErr(results); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		utils := make([]float64, 0, *mixes)
		a2a, ar := 0.0, 0.0
		for _, res := range results {
			r := res.Value.(workload.UtilizationResult)
			utils = append(utils, r.Utilization)
			a2a += r.UpperA2A
			ar += r.UpperAllred
		}
		s := workload.Summarize(utils)
		fmt.Printf("%-42s %5.1f%% %5.1f%% %5.1f%% | %8.1f%% %8.1f%%\n",
			h.Name, 100*s.Mean, 100*s.Median, 100*s.P99,
			100*a2a/float64(*mixes), 100*ar/float64(*mixes))
	}
}
