package main

import (
	"strconv"
	"strings"
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxdnn prints the per-model iteration-time table and the Fig. 15
// savings, with parseable positive runtimes for every model row.
func TestHxdnnSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin)
	cmdtest.MustContain(t, out, "modeled iteration time [ms]",
		"ResNet-152", "CosmoFlow", "GPT-3", "DLRM", "hx2mesh", "hx4mesh")
	for _, model := range []string{"ResNet-152", "CosmoFlow", "GPT-3", "DLRM"} {
		line := ""
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, model) {
				line = l
				break
			}
		}
		if line == "" {
			t.Fatalf("no row for %s:\n%s", model, out)
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("row %q has no runtimes", line)
		}
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil || v <= 0 {
				t.Fatalf("row %q: runtime %q not a positive number", line, f)
			}
		}
	}

	// -paper adds the published reference rows.
	out = cmdtest.Run(t, bin, "-paper")
	cmdtest.MustContain(t, out, "paper-reported iteration time [ms]:", "Fig. 15")
}
