// Command hxdnn reproduces the DNN workload study of §V-B and Fig. 15:
// per-topology iteration times of ResNet-152, CosmoFlow, GPT-3, GPT-3 MoE
// and DLRM, and the relative cost savings of Hx2Mesh and Hx4Mesh against
// every other topology. The per-model rows are independent, so they are
// submitted to the experiment runner and evaluated on -parallel workers
// (results are collected in submission order, so output is unchanged).
//
// Usage:
//
//	hxdnn               # iteration-time table + Fig. 15 savings
//	hxdnn -paper        # also print the paper's reported runtimes
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"hammingmesh/internal/cost"
	"hammingmesh/internal/dnn"
	"hammingmesh/internal/runner"
)

func main() {
	paper := flag.Bool("paper", false, "include the paper's reported runtimes")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for the model sweep")
	flag.Parse()

	perfs := dnn.StandardPerf()
	models := dnn.Models()
	pool := runner.New(*parallel)

	// One job per model: a row of per-topology iteration times.
	rowJobs := make([]runner.Job, len(models))
	for i, m := range models {
		rowJobs[i] = runner.Job{
			Name: m.Name,
			Run: func(ctx *runner.Ctx) (any, error) {
				row := make([]float64, len(perfs))
				for j, p := range perfs {
					row[j] = dnn.IterationMS(m, p)
				}
				return row, nil
			},
		}
	}
	rows := pool.Run(rowJobs)
	if err := runner.FirstErr(rows); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("modeled iteration time [ms] (small-cluster effective bandwidths):")
	fmt.Printf("%-12s", "model")
	for _, p := range perfs {
		fmt.Printf(" %10s", p.Name)
	}
	fmt.Println()
	for i, m := range models {
		fmt.Printf("%-12s", m.Name)
		for _, v := range rows[i].Value.([]float64) {
			fmt.Printf(" %10.2f", v)
		}
		fmt.Println()
	}
	if *paper {
		fmt.Println("\npaper-reported iteration time [ms]:")
		for _, m := range models {
			fmt.Printf("%-12s", m.Name)
			for _, p := range perfs {
				if v, ok := dnn.PaperRuntimesMS[m.Name][p.Name]; ok {
					fmt.Printf(" %10.2f", v)
				} else {
					fmt.Printf(" %10s", "-")
				}
			}
			fmt.Println()
		}
	}

	// Fig. 15: cost savings of Hx2Mesh and Hx4Mesh vs the others, again one
	// job per model row.
	prices := cost.PaperPrices()
	costs := map[string]float64{}
	for _, inv := range cost.SmallCluster() {
		costs[invKey(inv.Name)] = inv.Cost(prices)
	}
	for _, hx := range []string{"hx2mesh", "hx4mesh"} {
		hxPerf, _ := dnn.PerfByName(hx)
		saveJobs := make([]runner.Job, len(models))
		for i, m := range models {
			saveJobs[i] = runner.Job{
				Name: hx + "/" + m.Name,
				Run: func(ctx *runner.Ctx) (any, error) {
					var row []float64
					for _, p := range perfs {
						if p.Name == hx {
							continue
						}
						row = append(row, dnn.CostSaving(m, costs[hx], costs[p.Name], hxPerf, p))
					}
					return row, nil
				},
			}
		}
		saved := pool.Run(saveJobs)
		if err := runner.FirstErr(saved); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nFig. 15 — relative cost saving of %s vs others (>1 favors %s):\n", hx, hx)
		fmt.Printf("%-12s", "model")
		for _, p := range perfs {
			if p.Name == hx {
				continue
			}
			fmt.Printf(" %10s", p.Name)
		}
		fmt.Println()
		for i, m := range models {
			fmt.Printf("%-12s", m.Name)
			for _, s := range saved[i].Value.([]float64) {
				fmt.Printf(" %10.1f", s)
			}
			fmt.Println()
		}
	}
}

// invKey maps inventory names to perf names.
func invKey(name string) string {
	switch name {
	case "nonblocking fat tree":
		return "fattree"
	case "50% tapered fat tree":
		return "fattree50"
	case "75% tapered fat tree":
		return "fattree75"
	case "2D hyperx":
		return "hyperx"
	case "2D torus":
		return "torus"
	}
	return name
}
