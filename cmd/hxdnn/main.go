// Command hxdnn reproduces the DNN workload study of §V-B and Fig. 15:
// per-topology iteration times of ResNet-152, CosmoFlow, GPT-3, GPT-3 MoE
// and DLRM, and the relative cost savings of Hx2Mesh and Hx4Mesh against
// every other topology.
//
// Usage:
//
//	hxdnn               # iteration-time table + Fig. 15 savings
//	hxdnn -paper        # also print the paper's reported runtimes
package main

import (
	"flag"
	"fmt"

	"hammingmesh/internal/cost"
	"hammingmesh/internal/dnn"
)

func main() {
	paper := flag.Bool("paper", false, "include the paper's reported runtimes")
	flag.Parse()

	perfs := dnn.StandardPerf()
	models := dnn.Models()

	fmt.Println("modeled iteration time [ms] (small-cluster effective bandwidths):")
	fmt.Printf("%-12s", "model")
	for _, p := range perfs {
		fmt.Printf(" %10s", p.Name)
	}
	fmt.Println()
	for _, m := range models {
		fmt.Printf("%-12s", m.Name)
		for _, p := range perfs {
			fmt.Printf(" %10.2f", dnn.IterationMS(m, p))
		}
		fmt.Println()
	}
	if *paper {
		fmt.Println("\npaper-reported iteration time [ms]:")
		for _, m := range models {
			fmt.Printf("%-12s", m.Name)
			for _, p := range perfs {
				if v, ok := dnn.PaperRuntimesMS[m.Name][p.Name]; ok {
					fmt.Printf(" %10.2f", v)
				} else {
					fmt.Printf(" %10s", "-")
				}
			}
			fmt.Println()
		}
	}

	// Fig. 15: cost savings of Hx2Mesh and Hx4Mesh vs the others.
	prices := cost.PaperPrices()
	costs := map[string]float64{}
	for _, inv := range cost.SmallCluster() {
		costs[invKey(inv.Name)] = inv.Cost(prices)
	}
	for _, hx := range []string{"hx2mesh", "hx4mesh"} {
		hxPerf, _ := dnn.PerfByName(hx)
		fmt.Printf("\nFig. 15 — relative cost saving of %s vs others (>1 favors %s):\n", hx, hx)
		fmt.Printf("%-12s", "model")
		for _, p := range perfs {
			if p.Name == hx {
				continue
			}
			fmt.Printf(" %10s", p.Name)
		}
		fmt.Println()
		for _, m := range models {
			fmt.Printf("%-12s", m.Name)
			for _, p := range perfs {
				if p.Name == hx {
					continue
				}
				s := dnn.CostSaving(m, costs[hx], costs[p.Name], hxPerf, p)
				fmt.Printf(" %10.1f", s)
			}
			fmt.Println()
		}
	}
}

// invKey maps inventory names to perf names.
func invKey(name string) string {
	switch name {
	case "nonblocking fat tree":
		return "fattree"
	case "50% tapered fat tree":
		return "fattree50"
	case "75% tapered fat tree":
		return "fattree75"
	case "2D hyperx":
		return "hyperx"
	case "2D torus":
		return "torus"
	}
	return name
}
