// Command hxsim runs the paper's microbenchmarks (§V-A) on any Table II
// topology: alltoall global bandwidth (Fig. 11 / Table II), random
// permutation bandwidth distributions (Fig. 12), and ring/torus allreduce
// (Figs. 13, 17 / Table II). Packet-level sweeps are submitted to the
// worker-pool experiment runner, so shift iterations and repeated
// permutations run concurrently on -parallel workers with deterministic
// results.
//
// Usage:
//
//	hxsim -topo hx2mesh -size tiny -pattern alltoall -bytes 262144
//	hxsim -topo fattree -size small -pattern allreduce
//	hxsim -topo hx4mesh -size tiny -pattern permutation -credit -parallel 8
//
// Degraded fabrics (§III-E): -fail-links fails a fraction of the cables
// and -fail-boards powers off whole boards (HxMesh only), both seeded by
// -fail-seed; every pattern then measures the degraded cluster. The
// resilience pattern sweeps the link-failure fraction from zero up to
// -fail-links (default 0.2) — on top of -fail-boards dead boards — and
// reports delivered bandwidth and makespan per point:
//
//	hxsim -topo hx2mesh -size tiny -pattern resilience -trials 4
//	hxsim -topo hx2mesh -size tiny -pattern alltoall -fail-links 0.1 -fail-seed 3
//
// Sizes: tiny (≈64 accels, packet-level), small (≈1k, flow-level where
// needed), large (≈16k, flow-level/analytic only). At -size large the
// alltoall pattern runs entirely on the flow path: the routing table is
// warmed in parallel and the per-shift max-min solves fan out on the
// worker pool, so the paper's headline 16,384-accelerator global-bandwidth
// numbers come back in seconds instead of SST core-hours:
//
//	hxsim -topo hx2mesh -size large -pattern alltoall -shifts 4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"syscall"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/runner"
)

func main() {
	topoName := flag.String("topo", "hx2mesh", "topology name (fattree, fattree50, fattree75, dragonfly, hyperx, hx2mesh, hx4mesh, torus)")
	size := flag.String("size", "tiny", "cluster size: tiny, small, large")
	pattern := flag.String("pattern", "alltoall", "traffic pattern: alltoall, permutation, allreduce, resilience")
	bytes := flag.Int64("bytes", 256<<10, "bytes per flow / per peer")
	shifts := flag.Int("shifts", 8, "sampled shift iterations for alltoall")
	perms := flag.Int("perms", 1, "sampled permutations for the permutation pattern")
	seed := flag.Int64("seed", 1, "random seed")
	credit := flag.Bool("credit", false, "use credit-based flow control instead of ideal buffers")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for experiment sweeps")
	simShards := flag.String("sim-shards", "1", "shards of the parallel packet engine per simulation (results are shard-count invariant; auto = GOMAXPROCS)")
	failLinks := flag.Float64("fail-links", 0, "fraction of cables to fail (resilience: sweep upper bound, default 0.2)")
	failBoards := flag.Int("fail-boards", 0, "number of whole boards to fail (HxMesh families)")
	failSeed := flag.Int64("fail-seed", 1, "seed of the fault samplers")
	trials := flag.Int("trials", 3, "seeded fault trials per resilience point")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON flight recording of one representative packet simulation to this file (open in Perfetto)")
	journalDir := flag.String("journal", "", "checkpoint directory for the resilience sweep: completed points are journaled crash-safely and rerunning the same command resumes")
	journalCrash := flag.String("journal-crash", "", "crash-injection plan <point>:<n> — die mid-write at that journal boundary (testing; see internal/journal)")
	flag.Parse()

	pool := runner.NewSeeded(*parallel, *seed)
	c, err := pool.Cluster(*topoName, core.ClusterSize(*size))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("topology %s (%s): %d endpoints, %d switches/plane, diameter %d, cost %.2f M$ (%d workers)\n",
		*topoName, *size, c.Net.NumEndpoints(), c.Net.NumSwitches(), c.Diameter(), c.CostMUSD(), pool.Workers())

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	if *credit {
		cfg.Mode = netsim.CreditFC
	}
	if *simShards == "auto" {
		cfg.Shards = runtime.GOMAXPROCS(0)
	} else if n, err := strconv.Atoi(*simShards); err == nil && n >= 1 {
		cfg.Shards = n
	} else {
		fmt.Fprintf(os.Stderr, "invalid -sim-shards %q (want a positive integer or auto)\n", *simShards)
		os.Exit(2)
	}
	if *traceOut != "" {
		// Deferred so the recording also happens on the resilience
		// pattern's early return, against the final (possibly degraded)
		// cluster view. The traced run is an extra observation pass and
		// alters none of the reported numbers.
		defer func() { writeTrace(c, cfg, *bytes, *traceOut) }()
	}

	if *journalDir != "" && *pattern != "resilience" {
		fmt.Fprintln(os.Stderr, "hxsim: -journal only applies to the resilience sweep")
		os.Exit(2)
	}

	if *pattern == "resilience" {
		maxFrac := *failLinks
		if maxFrac <= 0 {
			maxFrac = 0.2
		}
		const steps = 5
		fracs := make([]float64, 0, steps)
		for i := 0; i < steps; i++ {
			fracs = append(fracs, maxFrac*float64(i)/(steps-1))
		}
		// SIGINT/SIGTERM cancel the sweep: in-flight points finish and are
		// journaled, the rest of the grid is skipped, and rerunning the
		// same command resumes from the checkpoint.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		var ck *runner.Checkpoint
		if *journalDir != "" {
			fp := runner.ResilienceFingerprint(c, cfg, *bytes, fracs, *trials, *shifts, *failSeed, *failBoards)
			ck, err = runner.OpenCheckpointCLI(*journalDir, *journalCrash, fp)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer ck.Close()
			if n := ck.Len(); n > 0 {
				fmt.Printf("journal: resuming from %s, %d completed points loaded\n", *journalDir, n)
			}
		}
		pts, err := pool.ResilienceSweepJournaled(ctx, c, cfg, *bytes, fracs, *trials, *shifts, *failSeed, *failBoards, ck)
		if err != nil {
			if ctx.Err() != nil {
				if ck != nil {
					ck.Close()
					fmt.Fprintln(os.Stderr, "hxsim: interrupted; completed points are journaled — rerun the same command to resume")
				} else {
					fmt.Fprintln(os.Stderr, "hxsim: interrupted")
				}
				os.Exit(130)
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		boardNote := ""
		if *failBoards > 0 {
			boardNote = fmt.Sprintf(", on top of %d dead boards", *failBoards)
		}
		fmt.Printf("resilience sweep (%d trials x %d shifts per point, %d B/peer%s):\n", *trials, *shifts, *bytes, boardNote)
		fmt.Printf("  %-10s %-12s %-18s %-10s %s\n", "fail-frac", "links-down", "share-of-inject", "worst", "makespan")
		for _, p := range pts {
			fmt.Printf("  %-10.3f %-12.1f %-18s %-10s %.0f ns\n",
				p.FailFrac, p.FailedLinks,
				fmt.Sprintf("%.2f%%", 100*p.Share), fmt.Sprintf("%.2f%%", 100*p.MinShare), p.Makespan)
		}
		return
	}

	// Fixed fault scenario for the other patterns: the degraded cluster
	// view recomputes routing around the failures; dead boards drop out of
	// the traffic and the allocator.
	if *failLinks > 0 || *failBoards > 0 {
		fs, err := c.SampleFaults(*failLinks, *failBoards, *failSeed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c = c.WithFaults(fs)
		fmt.Printf("degraded fabric: %v, %d/%d endpoints alive\n",
			fs, len(c.AliveEndpoints()), c.Comp.NumEndpoints())
	}

	switch *pattern {
	case "alltoall":
		// Flow-level estimate (fast, pooled across workers — the only
		// tractable path at -size large) plus packet-level on tiny systems.
		shareFlow, err := pool.AlltoallFlowShare(c, c.FlowConfig(uint64(*seed)), *shifts, uint64(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("alltoall global bandwidth share (flow-level, %d shifts on %d workers): %.1f%% of injection\n",
			*shifts, pool.Workers(), 100*shareFlow)
		if *size == string(core.Tiny) {
			sharePkt, err := pool.AlltoallPacketShare(c, cfg, *bytes, *shifts, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("alltoall global bandwidth share (packet-level, %d B/peer): %.1f%%\n", *bytes, 100*sharePkt)
		}
	case "permutation":
		bws, err := pool.PermutationSweepGBps(c, cfg, *bytes, *perms, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sort.Float64s(bws)
		mean := 0.0
		for _, b := range bws {
			mean += b
		}
		mean /= float64(len(bws))
		fmt.Printf("permutation receive bandwidth per endpoint [GB/s]: min=%.1f p25=%.1f median=%.1f p75=%.1f max=%.1f mean=%.1f\n",
			bws[0], bws[len(bws)/4], bws[len(bws)/2], bws[3*len(bws)/4], bws[len(bws)-1], mean)
	case "allreduce":
		share, err := c.AllreduceShare(*bytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ring allreduce bandwidth: %.1f%% of the theoretical optimum (inj/2)\n", 100*share)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(1)
	}
}

// writeTrace records one representative single-shift alltoall packet
// simulation into a fresh flight recorder and writes it as Chrome
// trace-event JSON: per-link transmit spans, and with cfg.Shards > 1 the
// shard window lanes and lookahead barriers.
func writeTrace(c *core.Cluster, cfg netsim.Config, bytes int64, path string) {
	rec := obs.NewRecorder(0)
	cfg.Trace = rec
	eps := c.AliveEndpoints()
	if _, err := netsim.New(c.Comp, c.Table, cfg).Run(netsim.ShiftFlows(eps, 1, bytes)); err != nil {
		fmt.Fprintf(os.Stderr, "trace run: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := rec.WriteJSON(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace write: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("trace: %d events (%d dropped) -> %s (open in Perfetto / chrome://tracing)\n",
		rec.Len(), rec.Dropped(), path)
}
