// Command hxsim runs the paper's microbenchmarks (§V-A) on any Table II
// topology: alltoall global bandwidth (Fig. 11 / Table II), random
// permutation bandwidth distributions (Fig. 12), and ring/torus allreduce
// (Figs. 13, 17 / Table II). Packet-level sweeps are submitted to the
// worker-pool experiment runner, so shift iterations and repeated
// permutations run concurrently on -parallel workers with deterministic
// results.
//
// Usage:
//
//	hxsim -topo hx2mesh -size tiny -pattern alltoall -bytes 262144
//	hxsim -topo fattree -size small -pattern allreduce
//	hxsim -topo hx4mesh -size tiny -pattern permutation -credit -parallel 8
//
// Sizes: tiny (≈64 accels, packet-level), small (≈1k, flow-level where
// needed), large (≈16k, flow-level/analytic only).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"hammingmesh/internal/core"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/runner"
)

func main() {
	topoName := flag.String("topo", "hx2mesh", "topology name (fattree, fattree50, fattree75, dragonfly, hyperx, hx2mesh, hx4mesh, torus)")
	size := flag.String("size", "tiny", "cluster size: tiny, small, large")
	pattern := flag.String("pattern", "alltoall", "traffic pattern: alltoall, permutation, allreduce")
	bytes := flag.Int64("bytes", 256<<10, "bytes per flow / per peer")
	shifts := flag.Int("shifts", 8, "sampled shift iterations for alltoall")
	perms := flag.Int("perms", 1, "sampled permutations for the permutation pattern")
	seed := flag.Int64("seed", 1, "random seed")
	credit := flag.Bool("credit", false, "use credit-based flow control instead of ideal buffers")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size for experiment sweeps")
	flag.Parse()

	pool := runner.NewSeeded(*parallel, *seed)
	c, err := pool.Cluster(*topoName, core.ClusterSize(*size))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("topology %s (%s): %d endpoints, %d switches/plane, diameter %d, cost %.2f M$ (%d workers)\n",
		*topoName, *size, c.Net.NumEndpoints(), c.Net.NumSwitches(), c.Diameter(), c.CostMUSD(), pool.Workers())

	cfg := netsim.DefaultConfig()
	cfg.Seed = *seed
	if *credit {
		cfg.Mode = netsim.CreditFC
	}

	switch *pattern {
	case "alltoall":
		// Flow-level estimate (fast) plus packet-level on tiny systems.
		shareFlow, err := c.AlltoallShare(*shifts, uint64(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("alltoall global bandwidth share (flow-level): %.1f%% of injection\n", 100*shareFlow)
		if *size == string(core.Tiny) {
			sharePkt, err := pool.AlltoallPacketShare(c, cfg, *bytes, *shifts, *seed)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("alltoall global bandwidth share (packet-level, %d B/peer): %.1f%%\n", *bytes, 100*sharePkt)
		}
	case "permutation":
		bws, err := pool.PermutationSweepGBps(c, cfg, *bytes, *perms, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		sort.Float64s(bws)
		mean := 0.0
		for _, b := range bws {
			mean += b
		}
		mean /= float64(len(bws))
		fmt.Printf("permutation receive bandwidth per endpoint [GB/s]: min=%.1f p25=%.1f median=%.1f p75=%.1f max=%.1f mean=%.1f\n",
			bws[0], bws[len(bws)/4], bws[len(bws)/2], bws[3*len(bws)/4], bws[len(bws)-1], mean)
	case "allreduce":
		share, err := c.AllreduceShare(*bytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("ring allreduce bandwidth: %.1f%% of the theoretical optimum (inj/2)\n", 100*share)
	default:
		fmt.Fprintf(os.Stderr, "unknown pattern %q\n", *pattern)
		os.Exit(1)
	}
}
