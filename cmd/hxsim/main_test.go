package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxsim builds, runs the tiny packet-level alltoall, and reports
// sane bandwidth shares, both pristine and degraded.
func TestHxsimSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768")
	cmdtest.MustContain(t, out,
		"topology hx2mesh (tiny)",
		"alltoall global bandwidth share (flow-level",
		"alltoall global bandwidth share (packet-level")
	cmdtest.Percents(t, out, 2)

	// Degraded fabric: failed links and a dead board still produce a
	// measurement.
	out = cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768",
		"-fail-links", "0.05", "-fail-boards", "1", "-fail-seed", "3")
	cmdtest.MustContain(t, out, "alltoall global bandwidth share")
	cmdtest.Percents(t, out, 1)

	// Bad flags exit non-zero.
	cmdtest.RunExpectError(t, bin, "-topo", "nosuchtopo")
	cmdtest.RunExpectError(t, bin, "-sim-shards", "zero")
}

// Smoke: the sharded packet engine is wired through -sim-shards and its
// shard-count invariance holds at the CLI level — the packet-level line
// is byte-identical for 1 and 2 shards, and "auto" is accepted.
func TestHxsimSimShards(t *testing.T) {
	bin := cmdtest.Build(t)

	packetLine := func(out string) string {
		for _, ln := range strings.Split(out, "\n") {
			if strings.Contains(ln, "alltoall global bandwidth share (packet-level") {
				return ln
			}
		}
		t.Fatalf("no packet-level line in output:\n%s", out)
		return ""
	}

	args := []string{"-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768"}
	want := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "1")...))
	got := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "2")...))
	if got != want {
		t.Errorf("packet-level share differs across shard counts:\n1 shard:  %s\n2 shards: %s", want, got)
	}
	auto := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "auto")...))
	if auto != want {
		t.Errorf("auto shards differs from 1 shard:\nauto:    %s\n1 shard: %s", auto, want)
	}
}

// TestHxsimTrace pins the -trace contract: the flag writes a valid Chrome
// trace-event JSON file (the schema Perfetto loads), with sharded runs
// contributing shard-lane spans, and the measured numbers are untouched
// by the recording.
func TestHxsimTrace(t *testing.T) {
	bin := cmdtest.Build(t)

	args := []string{"-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768"}
	want := cmdtest.Run(t, bin, args...)

	path := filepath.Join(t.TempDir(), "trace.json")
	out := cmdtest.Run(t, bin, append(args, "-sim-shards", "2", "-trace", path)...)
	cmdtest.MustContain(t, out, "trace:", "Perfetto")
	// Observer contract at the CLI level: every measurement line is
	// byte-identical with the recorder attached.
	for _, ln := range strings.Split(strings.TrimSpace(want), "\n") {
		if !strings.Contains(out, ln) {
			t.Errorf("measurement line changed under -trace: %q missing from:\n%s", ln, out)
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("trace has no events")
	}
	phases := map[string]bool{}
	for i, ev := range doc.TraceEvents {
		for _, key := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %q: %v", i, key, ev)
			}
		}
		ph := ev["ph"].(string)
		phases[ph] = true
		if ph == "X" {
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("span %d missing ts: %v", i, ev)
			}
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("span %d missing dur: %v", i, ev)
			}
		}
	}
	// Metadata names the lanes; spans carry the actual work; the sharded
	// run adds coordinator barriers as instants.
	for _, ph := range []string{"M", "X", "i"} {
		if !phases[ph] {
			t.Errorf("no %q events in trace (got phases %v)", ph, phases)
		}
	}
}

// The crash-resume contract at the process level: a resilience sweep
// killed by a real process death (-journal-crash fires os.Exit mid-write)
// at several distinct journal write boundaries resumes from its journal
// to byte-identical output vs an uninterrupted run.
func TestHxsimJournalCrashResume(t *testing.T) {
	bin := cmdtest.Build(t)

	args := []string{"-topo", "hx2mesh", "-size", "tiny", "-pattern", "resilience",
		"-trials", "2", "-shifts", "2", "-bytes", "32768"}

	// sweepTable strips the journal status lines, which legitimately
	// differ between a fresh and a resumed run.
	sweepTable := func(out string) string {
		var keep []string
		for _, ln := range strings.Split(out, "\n") {
			if strings.HasPrefix(ln, "journal: resuming") {
				continue
			}
			keep = append(keep, ln)
		}
		return strings.Join(keep, "\n")
	}
	want := sweepTable(cmdtest.Run(t, bin, args...))

	// Rotation boundaries need tiny segments and are covered by the
	// in-process tests (internal/runner); at the CLI's default segment
	// size the sweep never rotates.
	for _, plan := range []string{"torn-write:2", "before-sync:1", "before-append:3"} {
		t.Run(plan, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "journal")
			crashed := cmdtest.RunExpectError(t, bin,
				append(args, "-journal", dir, "-journal-crash", plan)...)
			if strings.Contains(crashed, "resilience sweep (") {
				t.Fatalf("crashed run still printed the full sweep:\n%s", crashed)
			}
			resumed := cmdtest.Run(t, bin, append(args, "-journal", dir)...)
			cmdtest.MustContain(t, resumed, "journal: resuming")
			if got := sweepTable(resumed); got != want {
				t.Fatalf("resumed output differs from uninterrupted run (crash %s):\nwant:\n%s\ngot:\n%s", plan, want, got)
			}
		})
	}

	// A journal bound to different sweep parameters refuses to resume.
	dir := filepath.Join(t.TempDir(), "journal")
	cmdtest.Run(t, bin, append(args, "-journal", dir)...)
	out := cmdtest.RunExpectError(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "resilience", "-trials", "3", "-shifts", "2", "-bytes", "32768",
		"-journal", dir)
	cmdtest.MustContain(t, out, "different sweep")

	// -journal on a non-sweep pattern is a usage error.
	cmdtest.RunExpectError(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-journal", dir)
}
