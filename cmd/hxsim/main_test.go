package main

import (
	"strings"
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxsim builds, runs the tiny packet-level alltoall, and reports
// sane bandwidth shares, both pristine and degraded.
func TestHxsimSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768")
	cmdtest.MustContain(t, out,
		"topology hx2mesh (tiny)",
		"alltoall global bandwidth share (flow-level",
		"alltoall global bandwidth share (packet-level")
	cmdtest.Percents(t, out, 2)

	// Degraded fabric: failed links and a dead board still produce a
	// measurement.
	out = cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768",
		"-fail-links", "0.05", "-fail-boards", "1", "-fail-seed", "3")
	cmdtest.MustContain(t, out, "alltoall global bandwidth share")
	cmdtest.Percents(t, out, 1)

	// Bad flags exit non-zero.
	cmdtest.RunExpectError(t, bin, "-topo", "nosuchtopo")
	cmdtest.RunExpectError(t, bin, "-sim-shards", "zero")
}

// Smoke: the sharded packet engine is wired through -sim-shards and its
// shard-count invariance holds at the CLI level — the packet-level line
// is byte-identical for 1 and 2 shards, and "auto" is accepted.
func TestHxsimSimShards(t *testing.T) {
	bin := cmdtest.Build(t)

	packetLine := func(out string) string {
		for _, ln := range strings.Split(out, "\n") {
			if strings.Contains(ln, "alltoall global bandwidth share (packet-level") {
				return ln
			}
		}
		t.Fatalf("no packet-level line in output:\n%s", out)
		return ""
	}

	args := []string{"-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768"}
	want := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "1")...))
	got := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "2")...))
	if got != want {
		t.Errorf("packet-level share differs across shard counts:\n1 shard:  %s\n2 shards: %s", want, got)
	}
	auto := packetLine(cmdtest.Run(t, bin, append(args, "-sim-shards", "auto")...))
	if auto != want {
		t.Errorf("auto shards differs from 1 shard:\nauto:    %s\n1 shard: %s", auto, want)
	}
}
