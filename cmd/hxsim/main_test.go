package main

import (
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxsim builds, runs the tiny packet-level alltoall, and reports
// sane bandwidth shares, both pristine and degraded.
func TestHxsimSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768")
	cmdtest.MustContain(t, out,
		"topology hx2mesh (tiny)",
		"alltoall global bandwidth share (flow-level",
		"alltoall global bandwidth share (packet-level")
	cmdtest.Percents(t, out, 2)

	// Degraded fabric: failed links and a dead board still produce a
	// measurement.
	out = cmdtest.Run(t, bin, "-topo", "hx2mesh", "-size", "tiny",
		"-pattern", "alltoall", "-shifts", "2", "-bytes", "32768",
		"-fail-links", "0.05", "-fail-boards", "1", "-fail-seed", "3")
	cmdtest.MustContain(t, out, "alltoall global bandwidth share")
	cmdtest.Percents(t, out, 1)

	// Bad flags exit non-zero.
	cmdtest.RunExpectError(t, bin, "-topo", "nosuchtopo")
}
