// Command hxd is the simulation-as-a-service daemon: a long-lived HTTP
// front-end over the repo's experiment entry points. Clients POST
// experiment requests as JSON to /v1/experiments; the daemon
// canonicalizes each request (defaults filled, inert options stripped),
// hashes it into a content address and serves repeats from a
// byte-accounted LRU result cache. Concurrent identical requests coalesce
// onto one in-flight computation, and small distinct requests are batched
// onto the shared runner pool. /metrics exposes Prometheus-style
// counters, gauges and latency histograms; /healthz answers liveness
// probes.
//
// Usage:
//
//	hxd -addr 127.0.0.1:8080 -workers 8 -cache-bytes 67108864
//	curl -s -X POST -d '{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny"}' \
//	    http://127.0.0.1:8080/v1/experiments
//
// The cache-status of every response rides in the X-Hxd-Cache header
// (miss | hit | coalesced) next to the content address (X-Hxd-Key) and
// per-stage latencies, so response bodies stay byte-identical across
// cache hits and fresh computations. On SIGINT/SIGTERM the daemon drains
// gracefully: in-flight requests complete, new ones are refused.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hammingmesh/internal/journal"
	"hammingmesh/internal/obs"
	"hammingmesh/internal/runner"
	"hammingmesh/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port, printed on startup)")
	workers := flag.Int("workers", 0, "runner pool workers (0 = GOMAXPROCS; results are worker-count invariant)")
	seed := flag.Int64("seed", 1, "base seed of the runner pool's deterministic per-job seeds")
	cacheBytes := flag.Int64("cache-bytes", serve.DefaultCacheBytes, "result cache budget in bytes")
	clusterBytes := flag.Int64("cluster-cache-bytes", 0, "cluster cache budget in bytes (0 = unbounded)")
	batchSize := flag.Int("batch-size", serve.DefaultBatchSize, "requests per batch flush")
	maxWait := flag.Duration("max-wait", serve.DefaultMaxWait, "how long a partial batch waits before flushing")
	queueLen := flag.Int("queue", serve.DefaultQueueLen, "pending-request queue bound; beyond it requests get 429")
	drainWait := flag.Duration("drain-wait", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	pprofFlag := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	journalDir := flag.String("journal-dir", "", "durable job journal directory: accepted requests and results survive a crash; on restart results rewarm the cache and unserved requests re-run")
	journalCrash := flag.String("journal-crash", "", "crash-injection plan <point>:<n> — die mid-write at that journal boundary (testing; see internal/journal)")
	flag.Parse()

	pool := runner.NewSeeded(*workers, *seed)
	if *clusterBytes > 0 {
		pool.SetClusterBudget(*clusterBytes)
	}
	// The process default registry unifies the scrape: daemon request
	// counters, pool job/cache instruments and engine series all render on
	// the one /metrics page.
	reg := obs.Default()
	pool.EnableObs(reg)
	var jopts journal.Options
	if *journalCrash != "" {
		plan, err := journal.ParseCrashPlan(*journalCrash)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hxd: %v\n", err)
			os.Exit(2)
		}
		// A real process death at the boundary, not an in-process error:
		// the restart path must recover exactly as from a SIGKILL.
		plan.Fire = func() error { os.Exit(3); return nil }
		jopts.Crash = plan
	}
	s, err := serve.New(serve.Config{
		Pool:           pool,
		Registry:       reg,
		CacheBytes:     *cacheBytes,
		QueueLen:       *queueLen,
		BatchSize:      *batchSize,
		MaxWait:        *maxWait,
		Pprof:          *pprofFlag,
		JournalDir:     *journalDir,
		JournalOptions: jopts,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hxd: %v\n", err)
		os.Exit(1)
	}
	if *journalDir != "" {
		fmt.Printf("hxd journal: %d results rewarmed, %d pending requests replaying\n",
			s.ReplayedResults, s.ReplayedPending)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hxd: listen %s: %v\n", *addr, err)
		os.Exit(1)
	}
	// The actual address goes to stdout first thing so scripts (and the
	// smoke tests) can bind to :0 and parse the chosen port.
	fmt.Printf("hxd listening on %s\n", ln.Addr())

	srv := &http.Server{Handler: s}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("hxd: %v, draining\n", sig)
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "hxd: serve: %v\n", err)
		os.Exit(1)
	}

	// Graceful drain: stop accepting, let in-flight handlers finish, then
	// drain the batch queue so every accepted request still completes.
	ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "hxd: shutdown: %v\n", err)
		s.Close()
		os.Exit(1)
	}
	s.Close()
	fmt.Println("hxd: drained, bye")
}
