package main

import (
	"bufio"
	"bytes"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"hammingmesh/internal/cmdtest"
)

// Smoke: start the daemon on an ephemeral port, POST the same experiment
// twice (the second must be a byte-identical cache hit), scrape /metrics,
// then SIGTERM it and expect a clean graceful exit.
func TestHxdSmoke(t *testing.T) {
	bin := cmdtest.Build(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hxd: %v", err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the chosen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("hxd produced no output: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "hxd listening on "
	if !strings.HasPrefix(line, marker) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, marker)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	post := func() ([]byte, string) {
		resp, err := http.Post(base+"/v1/experiments", "application/json",
			strings.NewReader(`{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST: status %d, body %s", resp.StatusCode, body)
		}
		return body, resp.Header.Get("X-Hxd-Cache")
	}
	body1, cache1 := post()
	body2, cache2 := post()
	if cache1 == "hit" || cache2 != "hit" {
		t.Fatalf("cache statuses = %q, %q; want fresh then hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("hit body differs from computed body:\n%s\n%s", body1, body2)
	}
	cmdtest.MustContain(t, string(body1), `"kind":"allreduce"`, `"share"`)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cmdtest.MustContain(t, string(mb),
		"hxd_cache_hits_total 1",
		"hxd_computations_total 1",
		`hxd_requests_total{kind="allreduce",status="ok"} 2`)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hxd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hxd did not drain within 30s of SIGTERM")
	}
}
