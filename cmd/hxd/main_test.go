package main

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net/http"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"hammingmesh/internal/cmdtest"
)

// startHxd launches the daemon and parses startup lines: everything
// before the "hxd listening on" announcement (the journal replay report
// rides there) plus the base URL. The returned process still has its
// stdout drained in the background.
func startHxd(t *testing.T, bin string, args ...string) (*exec.Cmd, string, []string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hxd: %v", err)
	}
	sc := bufio.NewScanner(stdout)
	var preamble []string
	const marker = "hxd listening on "
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, marker) {
			go io.Copy(io.Discard, stdout) // keep the pipe drained
			return cmd, "http://" + strings.TrimPrefix(line, marker), preamble
		}
		preamble = append(preamble, line)
	}
	cmd.Process.Kill()
	t.Fatalf("hxd never announced its address; startup output: %q (%v)", preamble, sc.Err())
	return nil, "", nil
}

// Smoke: start the daemon on an ephemeral port, POST the same experiment
// twice (the second must be a byte-identical cache hit), scrape /metrics,
// then SIGTERM it and expect a clean graceful exit.
func TestHxdSmoke(t *testing.T) {
	bin := cmdtest.Build(t)
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start hxd: %v", err)
	}
	defer cmd.Process.Kill()

	// The first stdout line announces the chosen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("hxd produced no output: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "hxd listening on "
	if !strings.HasPrefix(line, marker) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, marker)
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	post := func() ([]byte, string) {
		resp, err := http.Post(base+"/v1/experiments", "application/json",
			strings.NewReader(`{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST: status %d, body %s", resp.StatusCode, body)
		}
		return body, resp.Header.Get("X-Hxd-Cache")
	}
	body1, cache1 := post()
	body2, cache2 := post()
	if cache1 == "hit" || cache2 != "hit" {
		t.Fatalf("cache statuses = %q, %q; want fresh then hit", cache1, cache2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("hit body differs from computed body:\n%s\n%s", body1, body2)
	}
	cmdtest.MustContain(t, string(body1), `"kind":"allreduce"`, `"share"`)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	cmdtest.MustContain(t, string(mb),
		"hxd_cache_hits_total 1",
		"hxd_computations_total 1",
		`hxd_requests_total{kind="allreduce",status="ok"} 2`)

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("hxd exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hxd did not drain within 30s of SIGTERM")
	}
}

// The daemon's durability contract at the process level: a journaled hxd
// that dies by a real process death mid-batch — after accepting a request
// but before its result record lands — loses nothing. The restart replays
// the accepted request through the batcher, and a later SIGKILL + restart
// rewarms the cache from the journaled result.
func TestHxdJournalKillRestart(t *testing.T) {
	bin := cmdtest.Build(t)
	dir := t.TempDir()
	req := `{"kind":"allreduce","topo":"hx2mesh","size":"tiny"}`

	post := func(base string) (int, []byte, string, error) {
		resp, err := http.Post(base+"/v1/experiments", "application/json", strings.NewReader(req))
		if err != nil {
			return 0, nil, "", err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header.Get("X-Hxd-Cache"), nil
	}

	// Crash plan: record 1 is the accept, record 2 is the result —
	// torn-write:1 tears the result frame mid-write (one record already
	// durable), exactly the state a SIGKILL mid-batch leaves on disk:
	// recovery truncates the torn result, keeping the accept. The POST
	// never gets its response.
	cmd, base, _ := startHxd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-journal-dir", dir, "-journal-crash", "torn-write:1")
	defer cmd.Process.Kill()
	if _, _, _, err := post(base); err == nil {
		t.Fatalf("POST survived the injected crash")
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		var ee *exec.ExitError
		if !errors.As(err, &ee) || ee.ExitCode() != 3 {
			t.Fatalf("crashed hxd exit: %v, want exit code 3", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hxd did not die at the injected crash point")
	}

	// Restart over the same journal: the accepted request must be pending
	// and replay to completion; the request then serves byte-identically.
	cmd2, base2, preamble := startHxd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-journal-dir", dir)
	defer cmd2.Process.Kill()
	wantReplay := "hxd journal: 0 results rewarmed, 1 pending requests replaying"
	if len(preamble) == 0 || preamble[0] != wantReplay {
		t.Fatalf("restart preamble %q, want %q", preamble, wantReplay)
	}
	code, body1, _, err := post(base2)
	if err != nil || code != http.StatusOK {
		t.Fatalf("post-restart request: %v status %d", err, code)
	}
	// Once the replay has landed, repeats are cache hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, body, cache, err := post(base2)
		if err == nil && code == http.StatusOK && cache == "hit" {
			if !bytes.Equal(body, body1) {
				t.Fatalf("replayed body differs:\n%s\n%s", body1, body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("request never became a cache hit after replay (status %d cache %q err %v)", code, cache, err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// A real SIGKILL — no drain, no cleanup — then a third restart: the
	// journaled result rewarms the cache, nothing is pending, and the very
	// first request is already a hit.
	cmd2.Process.Kill()
	cmd2.Wait()
	cmd3, base3, preamble3 := startHxd(t, bin, "-addr", "127.0.0.1:0", "-workers", "2",
		"-journal-dir", dir)
	defer func() {
		cmd3.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd3.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			cmd3.Process.Kill()
		}
	}()
	wantRewarm := "hxd journal: 1 results rewarmed, 0 pending requests replaying"
	if len(preamble3) == 0 || preamble3[0] != wantRewarm {
		t.Fatalf("post-SIGKILL preamble %q, want %q", preamble3, wantRewarm)
	}
	code, body3, cache3, err := post(base3)
	if err != nil || code != http.StatusOK || cache3 != "hit" {
		t.Fatalf("post-SIGKILL request: %v status %d cache %q, want an immediate hit", err, code, cache3)
	}
	if !bytes.Equal(body3, body1) {
		t.Fatalf("rewarmed body differs:\n%s\n%s", body1, body3)
	}
}
