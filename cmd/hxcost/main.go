// Command hxcost regenerates the cost-related columns of Table II: for the
// small (≈1k) and large (≈16k) clusters it prints, per topology, the
// switch/cable inventory (Appendix C), total capital cost at the paper's
// Colfaxdirect prices (Appendix E), and the raw cost savings of each
// HxMesh variant.
//
// Usage:
//
//	hxcost [-size small|large|both] [-verify]
//
// With -verify, the graph builders are instantiated and their derived
// inventories are compared against the Appendix C closed-form counts.
package main

import (
	"flag"
	"fmt"
	"os"

	"hammingmesh/internal/core"
	"hammingmesh/internal/cost"
)

func main() {
	size := flag.String("size", "both", "cluster size: small, large or both")
	verify := flag.Bool("verify", false, "cross-check inventories against built graphs (small cluster only)")
	flag.Parse()

	prices := cost.PaperPrices()
	fmt.Printf("unit prices: switch $%.0f, DAC $%.0f, AoC $%.0f\n\n", prices.SwitchUSD, prices.DACUSD, prices.AoCUSD)

	show := func(title string, invs []cost.Inventory, col int) {
		fmt.Printf("%s\n", title)
		fmt.Printf("%-22s %9s %9s %9s %7s %10s %10s\n",
			"topology", "sw/plane", "DAC/plane", "AoC/plane", "planes", "cost [M$]", "paper [M$]")
		for _, inv := range invs {
			paper := cost.TableIICostMUSD[inv.Name][col]
			fmt.Printf("%-22s %9d %9d %9d %7d %10.2f %10.1f\n",
				inv.Name, inv.SwitchesPerPlane, inv.DACPerPlane, inv.AoCPerPlane,
				inv.Planes, inv.CostMUSD(prices), paper)
		}
		fmt.Println()
	}
	if *size == "small" || *size == "both" {
		show("Small cluster (≈1,024 accelerators) — Table II left", cost.SmallCluster(), 0)
	}
	if *size == "large" || *size == "both" {
		show("Large cluster (≈16,384 accelerators) — Table II right", cost.LargeCluster(), 1)
	}

	if *verify {
		fmt.Println("graph-derived inventories (small cluster):")
		for _, name := range []string{"hyperx", "hx2mesh", "hx4mesh", "torus", "fattree"} {
			c, err := core.NewByName(name, core.Small)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			inv := c.Inventory()
			fmt.Printf("%-22s sw=%d DAC=%d AoC=%d planes=%d cost=%.2f M$\n",
				name, inv.SwitchesPerPlane, inv.DACPerPlane, inv.AoCPerPlane, inv.Planes,
				inv.CostMUSD(prices))
		}
	}
}
