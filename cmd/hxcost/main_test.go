package main

import (
	"strings"
	"testing"

	"hammingmesh/internal/cmdtest"
)

// Smoke: hxcost regenerates the Table II cost columns and, with -verify,
// cross-checks the closed-form inventories against built graphs.
func TestHxcostSmoke(t *testing.T) {
	bin := cmdtest.Build(t)

	out := cmdtest.Run(t, bin, "-size", "small")
	cmdtest.MustContain(t, out, "unit prices",
		"Small cluster", "hx2mesh", "hx4mesh", "cost [M$]", "paper [M$]")
	if strings.Contains(out, "Large cluster") {
		t.Fatalf("-size small printed the large cluster:\n%s", out)
	}

	out = cmdtest.Run(t, bin, "-size", "both")
	cmdtest.MustContain(t, out, "Small cluster", "Large cluster")

	// -verify instantiates the graph builders; the derived inventories
	// must appear for every verified topology.
	out = cmdtest.Run(t, bin, "-size", "small", "-verify")
	cmdtest.MustContain(t, out, "graph-derived inventories (small cluster):")
	for _, topo := range []string{"hyperx", "hx2mesh", "hx4mesh", "torus", "fattree"} {
		found := false
		for _, l := range strings.Split(out, "\n") {
			if strings.HasPrefix(l, topo) && strings.Contains(l, "sw=") {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("-verify printed no derived inventory for %s:\n%s", topo, out)
		}
	}
}
