// Allocation walkthrough: reproduces the scenarios of Figs. 4 and 5 —
// non-consecutive virtual sub-HxMeshes around failed boards, 3D job
// folding, defragmentation via checkpoint/restart, and the utilization
// impact of the heuristic stack.
package main

import (
	"fmt"
	"math/rand"

	"hammingmesh/internal/alloc"
	"hammingmesh/internal/workload"
)

func main() {
	// --- Fig. 5: subnetworks in the presence of failures ------------------
	fmt.Println("== Fig. 5: virtual sub-HxMeshes around failures ==")
	g := alloc.NewGrid(4, 4)
	// Fail three boards as in the left part of Fig. 5.
	g.Fail(1, 2) // (2,2) in paper coordinates
	g.Fail(2, 0)
	g.Fail(2, 3)
	// A 3x3 job fits around the holes (non-consecutive rows/columns form a
	// virtual sub-HxMesh, §III-E).
	if p, ok := g.Allocate(2, 3, 3, alloc.DefaultOptions()); ok {
		fmt.Printf("3x3 job -> rows %v, cols %v\n", p.Rows, p.Cols)
	}
	// A 2x4 job takes the remaining two columns.
	if p, ok := g.Allocate(1, 2, 4, alloc.DefaultOptions()); ok {
		fmt.Printf("2x4 job -> rows %v, cols %v (placed as %dx%d)\n", p.Rows, p.Cols, p.U(), p.V())
	} else {
		fmt.Println("2x4 job could not be placed after the 3x3 job")
	}
	fmt.Printf("utilization of working boards: %.0f%%\n\n", 100*g.Utilization())

	// --- Fig. 4: folding a 3D virtual topology ---------------------------
	fmt.Println("== Fig. 4: 4x4x2 virtual topology folded onto boards ==")
	u, v := alloc.FoldJob(4, 4, 2)
	fmt.Printf("3D 4x4x2 job folds to a %dx%d board request\n", u, v)
	big := alloc.NewGrid(8, 8)
	if p, ok := big.Allocate(1, u, v, alloc.DefaultOptions()); ok {
		fmt.Printf("placed on rows %v, cols %v\n\n", p.Rows, p.Cols)
	}

	// --- Defragmentation ---------------------------------------------------
	fmt.Println("== defragmentation (checkpoint/restart, §IV-A) ==")
	frag := alloc.NewGrid(8, 8)
	rng := rand.New(rand.NewSource(7))
	// Fill with random small jobs, then release every other one.
	var placed []int32
	for j := int32(0); j < 20; j++ {
		if _, ok := frag.Allocate(j, 1+rng.Intn(2), 1+rng.Intn(3), alloc.DefaultOptions()); ok {
			placed = append(placed, j)
		}
	}
	for i, j := range placed {
		if i%2 == 0 {
			frag.Release(j)
		}
	}
	_, okBefore := frag.Allocate(100, 4, 6, alloc.DefaultOptions())
	fmt.Printf("4x6 job on fragmented grid: placed=%v\n", okBefore)
	if !okBefore {
		frag.Reset() // checkpoint all, shuffle, restart
		for i, j := range placed {
			if i%2 == 1 {
				u, v := workload.ShapeFor(2)
				frag.Allocate(j, u, v, alloc.DefaultOptions())
			}
		}
		_, okAfter := frag.Allocate(100, 4, 6, alloc.DefaultOptions())
		fmt.Printf("4x6 job after defragmentation: placed=%v\n", okAfter)
	}
	fmt.Println()

	// --- Fig. 8 in miniature ------------------------------------------------
	fmt.Println("== heuristic stack impact (Fig. 8, 20 mixes on 16x16) ==")
	d := workload.AlibabaLike()
	for _, h := range workload.Fig8Stacks() {
		s := workload.NewSampler(d, 42)
		r := rand.New(rand.NewSource(43))
		utils := make([]float64, 0, 20)
		for m := 0; m < 20; m++ {
			utils = append(utils, workload.RunMix(16, 16, s.Mix(256, 4), h, 0, r).Utilization)
		}
		st := workload.Summarize(utils)
		fmt.Printf("%-42s mean=%.1f%% median=%.1f%%\n", h.Name, 100*st.Mean, 100*st.Median)
	}
}
