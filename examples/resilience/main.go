// Resilience: the paper's graceful-degradation story (§III-E) end to end —
// build a cluster, break it in increasingly severe ways, and watch routing,
// the simulators and the allocator work around the damage.
package main

import (
	"errors"
	"fmt"
	"log"

	"hammingmesh/internal/core"
	"hammingmesh/internal/faults"
	"hammingmesh/internal/netsim"
	"hammingmesh/internal/routing"
	"hammingmesh/internal/runner"
	"hammingmesh/internal/topo"
)

func main() {
	// A tiny Hx2Mesh: 4x4 boards of 2x2 accelerators.
	c := core.NewHxMesh(2, 2, 4, 4)
	fmt.Printf("pristine %s: %d accelerators, %d cables\n",
		c.Net.Name, c.Net.NumEndpoints(), len(faults.CableIDs(c.Comp)))

	// 1. Explicit faults: kill one row switch and one cable. The FaultSet
	// is an immutable port-mask overlay over the shared compiled network.
	fs := faults.NewBuilder(c.Comp).
		FailNode(c.Comp.Switches[0]).
		FailLink(c.Comp.PortID(int32(c.Net.Endpoints[0]), 0)).
		Build()
	fmt.Printf("scenario A: %v\n", fs)

	// A degraded cluster view recomputes routes around the damage; every
	// measurement works unchanged.
	dc := c.WithFaults(fs)
	share, err := dc.AlltoallShare(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  alltoall with a dead switch: %.0f%% of injection\n", 100*share)

	// 2. A dead board: its four accelerators drop out, the survivors keep
	// talking, and a flow aimed at the dead board fails with a typed error
	// instead of a panic.
	bfs, err := c.SampleBoardFaults(1, 7)
	if err != nil {
		log.Fatal(err)
	}
	bc := c.WithFaults(bfs)
	fmt.Printf("scenario B: %v, %d survivors\n", bfs, len(bc.AliveEndpoints()))
	deadEp := firstDead(bfs, c)
	_, err = netsim.New(bc.Comp, bc.Table, netsim.DefaultConfig()).Run(
		[]netsim.Flow{{Src: bc.AliveEndpoints()[0], Dst: deadEp, Bytes: 8192}})
	var unreach *routing.ErrUnreachable
	if errors.As(err, &unreach) {
		fmt.Printf("  flow to dead accelerator %d: %v (typed, catchable)\n", deadEp, err)
	}

	// The allocator skips the failed board: a job that needs the full grid
	// no longer fits, a 3x3 one places around the hole.
	if _, ok := bc.AllocateJob(1, 4, 4); !ok {
		fmt.Println("  4x4-board job correctly rejected (one board down)")
	}
	if p, ok := bc.AllocateJob(2, 3, 3); ok {
		fmt.Printf("  3x3-board job placed around the failure: rows %v cols %v\n", p.Rows, p.Cols)
	}

	// 3. The resilience sweep (the Fig. 10-style bandwidth axis): delivered
	// alltoall bandwidth vs link-failure fraction, trials in parallel on
	// the experiment runner. Fault sets are nested per trial, so the curve
	// is guaranteed to measure degradation, not sampling noise.
	pool := runner.NewSeeded(0, 1)
	pts, err := pool.ResilienceSweep(c, netsim.DefaultConfig(), 32<<10,
		[]float64{0, 0.05, 0.1, 0.2}, 3, 3, 42, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("resilience sweep (share of injection bandwidth):")
	for _, p := range pts {
		fmt.Printf("  %4.0f%% links down: %5.2f%% (worst trial %5.2f%%), makespan %6.0f ns\n",
			100*p.FailFrac, 100*p.Share, 100*p.MinShare, p.Makespan)
	}
}

// firstDead returns one endpoint of the failed board.
func firstDead(fs *faults.FaultSet, c *core.Cluster) topo.NodeID {
	for _, e := range c.Net.Endpoints {
		if fs.NodeDown(e) {
			return e
		}
	}
	return topo.None
}
