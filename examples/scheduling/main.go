// Scheduling: the trace-driven cluster scheduler end to end — synthesize a
// job trace, replay it on a board grid with a background failure process,
// watch jobs checkpoint, get evicted and restart, then sweep utilization
// against MTBF and checkpoint interval on the experiment runner.
package main

import (
	"fmt"
	"log"

	"hammingmesh/internal/runner"
	"hammingmesh/internal/sched"
)

func main() {
	// 1. A synthetic trace: Poisson arrivals, heavy-tailed durations,
	// DNN-style sizes from the Alibaba-like distribution.
	trace := sched.Synthetic(sched.TraceConfig{
		Jobs: 80, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3,
	}, 7)
	fmt.Printf("synthetic trace: %d jobs arriving over %.1f hours\n",
		len(trace), trace[len(trace)-1].Arrival)

	// Traces also load from JSON (e.g. exported from a real cluster).
	json := `[{"id":0,"arrival_h":0,"boards":4,"service_h":2.5,"comm_frac":0.4}]`
	if loaded, err := sched.ParseTrace([]byte(json)); err == nil {
		fmt.Printf("JSON loader: job %d wants %d boards for %.1fh\n\n",
			loaded[0].ID, loaded[0].Boards, loaded[0].Service)
	}

	// 2. One scheduler run on a 4x4-board Hx2Mesh: boards fail with MTBF
	// 30h (identities from the seeded faults board sampler), running jobs
	// are evicted and restart from their last 2h checkpoint, repairs take
	// 10h, and placements pay their communication slowdown.
	pool := runner.NewSeeded(0, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		log.Fatal(err)
	}
	fails := sched.NewFailures(sched.BoardSequence(c.Hx, c.Comp, 9), 40, 30, 9).Thin(30)
	m, err := sched.Run(c.Grid.X, c.Grid.Y, trace, fails, sched.Config{
		Policy: sched.BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown: sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B), RecordDecisions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one run (bestfit, MTBF 30h, 2h checkpoints):\n")
	fmt.Printf("  utilization %.1f%%, goodput %.1f%%, %d/%d jobs done, %d evictions, %.1f board-h lost\n",
		100*m.Utilization, 100*m.Goodput, m.Completed, m.Arrived, m.Evictions, m.LostBoardH)
	fmt.Println("  first decisions:")
	for _, d := range m.Decisions[:6] {
		fmt.Printf("    %s\n", d)
	}

	// 3. The utilization-vs-MTBF sweep: parallel seeded trials per
	// (policy, checkpoint, MTBF) point; failure sets are nested across
	// MTBFs within a trial, so the goodput curve measures degradation,
	// not sampling noise.
	pts, err := pool.SchedSweep(c, runner.SchedSweepConfig{
		Trace:        sched.TraceConfig{Jobs: 150, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3},
		Base:         sched.Config{HorizonH: 60, RepairH: 10},
		MTBFs:        []float64{0, 120, 40, 12},
		CheckpointsH: []float64{2},
		Policies:     []sched.Policy{sched.FirstFit, sched.BestFit, sched.FragAware},
		Trials:       4,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nutilization vs MTBF (goodput: useful board-hours / raw board-hours):")
	for i, pt := range pts {
		if i%4 == 0 {
			fmt.Printf("  %s:\n", pt.Policy)
		}
		mtbf := "   inf"
		if pt.MTBFh > 0 {
			mtbf = fmt.Sprintf("%6g", pt.MTBFh)
		}
		fmt.Printf("    mtbf %sh: goodput %5.1f%%  (lost to restarts %4.1f%%, %4.1f evictions/trial)\n",
			mtbf, 100*pt.Goodput, 100*pt.LostFrac, pt.Evictions)
	}
}
