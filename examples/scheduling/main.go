// Scheduling: the trace-driven cluster scheduler end to end — synthesize a
// job trace, replay it on a board grid with a background failure process,
// watch jobs checkpoint, get evicted and restart, then sweep utilization
// against MTBF and checkpoint interval on the experiment runner.
package main

import (
	"fmt"
	"log"
	"strings"

	"hammingmesh/internal/runner"
	"hammingmesh/internal/sched"
)

func main() {
	// 1. A synthetic trace: Poisson arrivals, heavy-tailed durations,
	// DNN-style sizes from the Alibaba-like distribution.
	trace := sched.Synthetic(sched.TraceConfig{
		Jobs: 80, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3,
	}, 7)
	fmt.Printf("synthetic trace: %d jobs arriving over %.1f hours\n",
		len(trace), trace[len(trace)-1].Arrival)

	// Traces also load from JSON (e.g. exported from a real cluster).
	json := `[{"id":0,"arrival_h":0,"boards":4,"service_h":2.5,"comm_frac":0.4}]`
	if loaded, err := sched.ParseTrace([]byte(json)); err == nil {
		fmt.Printf("JSON loader: job %d wants %d boards for %.1fh\n\n",
			loaded[0].ID, loaded[0].Boards, loaded[0].Service)
	}

	// 2. One scheduler run on a 4x4-board Hx2Mesh: boards fail with MTBF
	// 30h (identities from the seeded faults board sampler), running jobs
	// are evicted and restart from their last 2h checkpoint, repairs take
	// 10h, and placements pay their communication slowdown.
	pool := runner.NewSeeded(0, 1)
	c, err := pool.Cluster("hx2mesh", "tiny")
	if err != nil {
		log.Fatal(err)
	}
	fails := sched.NewFailures(sched.BoardSequence(c.Hx, c.Comp, 9), 40, 30, 9).Thin(30)
	m, err := sched.Run(c.Grid.X, c.Grid.Y, trace, fails, sched.Config{
		Policy: sched.BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown: sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B), RecordDecisions: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one run (bestfit, MTBF 30h, 2h checkpoints):\n")
	fmt.Printf("  utilization %.1f%%, goodput %.1f%%, %d/%d jobs done, %d evictions, %.1f board-h lost\n",
		100*m.Utilization, 100*m.Goodput, m.Completed, m.Arrived, m.Evictions, m.LostBoardH)
	fmt.Println("  first decisions:")
	for _, d := range m.Decisions[:6] {
		fmt.Printf("    %s\n", d)
	}

	// 3. The utilization-vs-MTBF sweep: parallel seeded trials per
	// (policy, checkpoint, MTBF) point; failure sets are nested across
	// MTBFs within a trial, so the goodput curve measures degradation,
	// not sampling noise.
	pts, err := pool.SchedSweep(c, runner.SchedSweepConfig{
		Trace:        sched.TraceConfig{Jobs: 150, ArrivalRate: 4, MeanService: 3, MaxBoards: 12, CommFrac: 0.3},
		Base:         sched.Config{HorizonH: 60, RepairH: 10},
		MTBFs:        []float64{0, 120, 40, 12},
		CheckpointsH: []float64{2},
		Policies:     []sched.Policy{sched.FirstFit, sched.BestFit, sched.FragAware},
		Trials:       4,
		Seed:         42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nutilization vs MTBF (goodput: useful board-hours / raw board-hours):")
	for i, pt := range pts {
		if i%4 == 0 {
			fmt.Printf("  %s:\n", pt.Policy)
		}
		mtbf := "   inf"
		if pt.MTBFh > 0 {
			mtbf = fmt.Sprintf("%6g", pt.MTBFh)
		}
		fmt.Printf("    mtbf %sh: goodput %5.1f%%  (lost to restarts %4.1f%%, %4.1f evictions/trial)\n",
			mtbf, 100*pt.Goodput, 100*pt.LostFrac, pt.Evictions)
	}

	// 4. Reservation vs greedy backfill: an adversarial trace — four small
	// jobs fill the grid, a 16-board job arrives behind them, and a steady
	// small-job stream keeps part of the grid busy for hours. Greedy
	// backfill starves the big job (all 16 boards are never simultaneously
	// free); an EASY reservation holds the projected boards and admits
	// small jobs only if they finish before it, so the big job starts the
	// moment the first wave completes.
	adversarial := []sched.TraceJob{}
	id := int32(0)
	add := func(arrival float64, boards int, service float64) {
		adversarial = append(adversarial, sched.TraceJob{ID: id, Arrival: arrival, Boards: boards, Service: service})
		id++
	}
	for i := 0; i < 4; i++ {
		add(0, 4, 3)
	}
	add(0.5, 16, 4) // the large job
	for i := 0; i < 20; i++ {
		add(1+0.7*float64(i), 4, 3)
	}
	fmt.Println("\nreservation vs greedy backfill (adversarial small-job stream, 16-board job):")
	for _, reservation := range []bool{false, true} {
		m, err := sched.Run(c.Grid.X, c.Grid.Y, adversarial, nil,
			sched.Config{Policy: sched.FirstFit, HorizonH: 60, Reservation: reservation})
		if err != nil {
			log.Fatal(err)
		}
		mode := "greedy     "
		if reservation {
			mode = "reservation"
		}
		fmt.Printf("  %s: max large-job wait %5.1fh, utilization %.1f%%, %d reservations\n",
			mode, m.MaxWaitLarge, 100*m.Utilization, m.Reservations)
	}

	// 5. Correlated bursts and defragmentation: a 2x1-rack burst process
	// merges with the independent failures, and a fragmentation threshold
	// triggers checkpoint-migrate repacking (migrated jobs pay the
	// transfer cost as lost work).
	bursts := sched.NewBursts(c.Grid.X, c.Grid.Y, sched.BurstShape{W: 2, H: 1}, 40, 0.08, 9)
	m2, err := sched.Run(c.Grid.X, c.Grid.Y, trace, sched.MergeFailures(fails, bursts.Thin(0.08)), sched.Config{
		Policy: sched.BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown:    sched.NewCommSlowdown(c.Hx.Cfg.A, c.Hx.Cfg.B),
		Reservation: true, DefragThreshold: 0.3, DefragCostH: 0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nburst+defrag run (%d bursts sampled, threshold 0.3):\n", bursts.Sampled())
	fmt.Printf("  goodput %.1f%%, %d evictions, %d defrag passes migrating %d jobs (%.1f board-h overhead)\n",
		100*m2.Goodput, m2.Evictions, m2.Defrags, m2.Migrations, m2.MigratedBoardH)

	// 6. Contention-aware scheduling with elastic jobs: the trace marks
	// half the jobs malleable and a third high-priority; the Interference
	// model prices every placement jointly (a flow solve over the shared
	// upper-layer fat-trees), so jobs whose columns interleave inside a
	// switch group run slower than the isolation estimate and are
	// re-stretched whenever the contention set changes. Elastic jobs admit
	// shrunk when their full shape will not fit and regrow later; priority
	// jobs may preempt (checkpoint-evict) strictly lower-priority ones.
	v3trace := sched.Synthetic(sched.TraceConfig{
		Jobs: 60, ArrivalRate: 8, MeanService: 5, MaxBoards: 24,
		CommFrac: 0.6, ElasticFrac: 0.5, PriorityFrac: 0.3,
	}, 2024)
	inf := &sched.Interference{GroupBoards: 2, Taper: 0.25}
	v3cfg := sched.Config{
		Policy: sched.BestFit, CheckpointH: 2, RepairH: 10, HorizonH: 40,
		Slowdown:     &sched.CommSlowdown{BoardA: c.Hx.Cfg.A, BoardB: c.Hx.Cfg.B, GroupBoards: 2},
		Interference: inf, Elastic: true, Preempt: true,
	}
	m3, err := sched.Run(c.Grid.X, c.Grid.Y, v3trace, nil, v3cfg)
	if err != nil {
		log.Fatal(err)
	}
	iso := v3cfg
	iso.Interference = nil
	mIso, err := sched.Run(c.Grid.X, c.Grid.Y, v3trace, nil, iso)
	if err != nil {
		log.Fatal(err)
	}
	st := inf.Stats()
	fmt.Println("\ncontention pricing + elastic jobs (vs isolation pricing, same trace):")
	fmt.Printf("  joint    : goodput %.1f%%, slowdown p99 %.2f, %d restretches, %d shrinks, %d regrows, %d preemptions\n",
		100*m3.Goodput, m3.SlowP99, m3.Restretches, m3.Shrinks, m3.Regrows, m3.Preemptions)
	fmt.Printf("  isolation: goodput %.1f%%, slowdown p99 %.2f (optimistic — ignores cross-job sharing)\n",
		100*mIso.Goodput, mIso.SlowP99)
	fmt.Printf("  flow solves %d, memoized %d (placement sets recur as the mix churns)\n", st.Solves, st.MemoHits)

	// 7. Real traces load from Alibaba/Philly-style CSV: columns are
	// matched by header name with the common aliases, GPU counts are
	// ceil-divided onto boards, and seconds convert to hours.
	csv := "job_id,submit_time_s,num_gpus,duration_s,min_gpus,priority\n" +
		"0,0,16,9000,4,1\n" +
		"1,1800,8,5400,,\n"
	csvJobs, err := sched.ParseTraceCSV(strings.NewReader(csv), sched.CSVOptions{
		AccelsPerBoard: c.Hx.Cfg.A * c.Hx.Cfg.B, DefaultCommFrac: 0.3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCSV loader (Philly-style headers, GPUs -> boards, seconds -> hours):")
	for _, j := range csvJobs {
		fmt.Printf("  job %d: %d boards (min %d, priority %d) for %.1fh arriving at %.1fh\n",
			j.ID, j.Boards, j.MinBoards, j.Priority, j.Service, j.Arrival)
	}
}
