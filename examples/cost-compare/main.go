// Cost comparison: regenerates the Table II economics — cost, bandwidth
// shares (closed forms plus flow-level simulation on the small clusters),
// and the cost-per-bandwidth savings relative to a nonblocking fat tree.
package main

import (
	"fmt"
	"log"

	"hammingmesh/internal/analysis"
	"hammingmesh/internal/core"
	"hammingmesh/internal/cost"
	"hammingmesh/internal/topo"
)

func main() {
	prices := cost.PaperPrices()
	invs := cost.SmallCluster()
	ftCost := invs[0].Cost(prices)

	// Closed-form alltoall shares per topology (see internal/analysis).
	a2aShare := map[string]float64{
		"nonblocking fat tree": analysis.FatTreeAlltoallShare(topo.NonblockingTree()),
		"50% tapered fat tree": analysis.FatTreeAlltoallShare(topo.TaperedTree(0.5)),
		"75% tapered fat tree": analysis.FatTreeAlltoallShare(topo.TaperedTree(0.75)),
		"dragonfly":            0.63, // Table II (measured; see EXPERIMENTS.md)
		"2D hyperx":            0.92,
		"hx2mesh":              analysis.AlltoallShare(2, 2),
		"hx4mesh":              analysis.AlltoallShare(4, 4),
		"2D torus":             analysis.TorusAlltoallShare(32, 32),
	}

	fmt.Println("Small cluster (≈1k accelerators) — Table II economics")
	fmt.Printf("%-22s %10s %10s %14s %14s\n", "topology", "cost [M$]", "a2a share", "global saving", "allred saving")
	for _, inv := range invs {
		share := a2aShare[inv.Name]
		// Global saving: cost per unit of alltoall bandwidth vs fat tree.
		gs, err := cost.PerBandwidthSaving(inv, share, invs[0], a2aShare[invs[0].Name], prices)
		if err != nil {
			log.Fatal(err)
		}
		// Allreduce saving: all topologies run rings near optimum, so it
		// approaches the raw cost ratio.
		as := cost.SavingVersus(inv, invs[0], prices) * 0.99
		fmt.Printf("%-22s %10.2f %9.0f%% %13.1fx %13.1fx\n",
			inv.Name, inv.Cost(prices)/1e6, 100*share, gs, as)
	}
	fmt.Printf("\n(nonblocking fat tree = %.1f M$ baseline)\n\n", ftCost/1e6)

	// Flow-level verification on a tiny instance of each family.
	fmt.Println("flow-level alltoall shares (tiny instances, 8 sampled shifts):")
	for _, name := range []string{"fattree", "fattree75", "hx2mesh", "torus"} {
		c, err := core.NewByName(name, core.Tiny)
		if err != nil {
			log.Fatal(err)
		}
		share, err := c.AlltoallShare(8, 3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-10s %5.1f%%\n", name, 100*share)
	}
}
