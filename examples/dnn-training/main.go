// DNN training walkthrough: models one training iteration of the paper's
// five workloads (§V-B) on every Table II topology, shows how collective
// algorithm selection works (Fig. 13), and computes the Fig. 15 cost
// savings for a model of the user's choice.
package main

import (
	"fmt"

	"hammingmesh/internal/collective"
	"hammingmesh/internal/cost"
	"hammingmesh/internal/dnn"
)

func main() {
	// --- Collective algorithm selection (Fig. 13) -------------------------
	fmt.Println("== allreduce algorithm selection on 4,096 accelerators ==")
	pr := collective.DefaultParams()
	for _, bytes := range []float64{1 << 10, 64 << 10, 1 << 20, 16 << 20, 1 << 30} {
		algo, t := collective.BestAllreduce(4096, bytes, pr)
		bw := collective.AllreduceBandwidth(bytes, t)
		fmt.Printf("S=%8.0f KiB: best=%-10s time=%8.1f us  bw=%6.1f GB/s\n",
			bytes/1024, algo, t/1000, bw)
	}
	fmt.Println()

	// --- Per-model iteration times (§V-B) ---------------------------------
	fmt.Println("== modeled iteration times [ms] ==")
	perfs := dnn.StandardPerf()
	for _, m := range dnn.Models() {
		fmt.Printf("%-12s (D=%d P=%d O=%d, compute %.1f ms)\n", m.Name, m.D, m.P, m.O, m.ComputeMS)
		for _, p := range perfs {
			it := dnn.IterationMS(m, p)
			overhead := 100 * (it - m.ComputeMS) / it
			fmt.Printf("   %-10s %8.2f ms (%4.1f%% communication)\n", p.Name, it, overhead)
		}
	}
	fmt.Println()

	// --- Fig. 15 for GPT-3 --------------------------------------------------
	fmt.Println("== Fig. 15: GPT-3 cost savings of Hx4Mesh ==")
	prices := cost.PaperPrices()
	var gpt dnn.Model
	for _, m := range dnn.Models() {
		if m.Name == "GPT-3" {
			gpt = m
		}
	}
	hx4, _ := dnn.PerfByName("hx4mesh")
	costOf := map[string]float64{
		"fattree": 25.3, "fattree50": 17.6, "fattree75": 13.2,
		"dragonfly": 27.9, "hyperx": 10.8, "hx2mesh": 5.4, "torus": 2.5,
	}
	_ = prices
	for _, p := range perfs {
		if p.Name == "hx4mesh" {
			continue
		}
		s := dnn.CostSaving(gpt, 2.7, costOf[p.Name], hx4, p)
		fmt.Printf("   vs %-10s %5.1fx\n", p.Name, s)
	}
}
