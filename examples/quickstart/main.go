// Quickstart: build a HammingMesh cluster, inspect its closed-form
// properties, measure its bandwidth with the packet simulator, and
// allocate a training job — the 60-second tour of the library.
package main

import (
	"fmt"
	"log"

	"hammingmesh/internal/core"
)

func main() {
	// An Hx2Mesh with 4x4 boards of 2x2 accelerators: 64 accelerators,
	// the tiny sibling of the paper's 16x16 small cluster.
	c := core.NewHxMesh(2, 2, 4, 4)

	fmt.Printf("built %s: %d accelerators, %d switches/plane\n",
		c.Net.Name, c.Net.NumEndpoints(), c.Net.NumSwitches())
	fmt.Printf("network cost: $%.2fM at April-2022 prices\n", c.CostMUSD())
	fmt.Printf("graph diameter: %d cables\n", c.Diameter())

	s, err := c.Summary()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("relative bisection bandwidth: %.0f%% (1/2a, §III-A)\n", 100*s.RelBisection)

	// Measure the two headline bandwidths of Table II.
	ar, err := c.AllreduceShare(256 << 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ring allreduce: %.0f%% of the theoretical optimum\n", 100*ar)

	a2a, err := c.AlltoallShare(8, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alltoall global bandwidth: %.0f%% of injection\n", 100*a2a)

	// Allocate a 2x2-board job (16 accelerators) — it receives a virtual
	// sub-HxMesh with full, isolated bandwidth.
	if p, ok := c.AllocateJob(1, 2, 2); ok {
		fmt.Printf("job 1 placed on rows %v x cols %v\n", p.Rows, p.Cols)
	} else {
		log.Fatal("allocation failed")
	}
}
