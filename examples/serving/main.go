// Serving: run the hxd simulation-as-a-service layer in-process and walk
// the request lifecycle — a fresh computation, a semantically-equal
// request served byte-identically from the content-addressed cache,
// concurrent identical requests coalescing onto one computation, and the
// metrics the daemon exposes. The same server speaks HTTP in cmd/hxd;
// here it is driven through Go's httptest to stay self-contained.
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"hammingmesh/internal/runner"
	"hammingmesh/internal/serve"
)

func main() {
	// The daemon core: canonicalize → SHA-256 content address → LRU
	// result cache → singleflight → batch onto the runner pool.
	s, err := serve.New(serve.Config{Pool: runner.New(0), CacheBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(body string) (string, http.Header) {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return string(b), resp.Header
	}

	// 1. A fresh request computes on the pool (X-Hxd-Cache: miss).
	body1, h1 := post(`{"kind":"alltoall_flow","topo":"hx2mesh","size":"tiny","shifts":4}`)
	fmt.Printf("first request:  %s  [%s, key %.12s…]\n", body1, h1.Get("X-Hxd-Cache"), h1.Get("X-Hxd-Key"))

	// 2. A semantically equal request — keys reordered, the default seed
	// spelled out, an inert workers option added — canonicalizes to the
	// same content address and is served from the cache, byte-identical.
	body2, h2 := post(`{"shifts":4,"seed":1,"workers":8,"size":"tiny","topo":"hx2mesh","kind":"alltoall_flow"}`)
	fmt.Printf("equal request:  %s  [%s, identical=%v]\n", body2, h2.Get("X-Hxd-Cache"), body1 == body2)

	// 3. Concurrent identical requests coalesce: the first becomes the
	// leader, the rest attach to its in-flight computation.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(`{"kind":"allreduce","topo":"hx4mesh","size":"tiny"}`)
		}()
	}
	wg.Wait()

	// 4. The registry tallies it all for /metrics.
	entries, bytes, hits, misses, _ := s.CacheStats()
	fmt.Printf("cache: %d entries, %d bytes, %d hits, %d misses\n", entries, bytes, hits, misses)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	metrics, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "hxd_cache_hits_total") ||
			strings.HasPrefix(line, "hxd_coalesced_total") ||
			strings.HasPrefix(line, "hxd_computations_total") {
			fmt.Println("metric:", line)
		}
	}
}
